// Mesh32 example: the active-set scheduler at scale. A 32×32 mesh —
// 1,024 routers, 16× the paper's evaluation network — runs a complete
// low-load measurement (the regime of zero-load latency points and
// sub-saturation probes) under both cycle engines and reports
// wall-clock time. The engines are byte-identical in every result; the
// only difference is who gets visited each cycle: the full scan touches
// all 1,024 routers and sources, the scheduler only the few hundred —
// or few dozen — with in-flight work, and its quiescence fast-forward
// skips dead cycles outright.
package main

import (
	"fmt"
	"log"
	"time"

	"routersim"
)

func run(load float64, fullScan bool) (routersim.SimResult, time.Duration) {
	cfg := routersim.DefaultSimConfig(routersim.SpecVCRouter)
	cfg.Topology = "mesh:k=32"
	cfg.LoadFraction = load
	cfg.WarmupCycles = 5000
	cfg.MeasurePackets = 2000
	cfg.FullScan = fullScan
	start := time.Now()
	res, err := routersim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res, time.Since(start)
}

func main() {
	fmt.Println("32x32 mesh, 1,024 speculative-VC routers, uniform traffic")
	fmt.Println()
	fmt.Printf("%-8s %-10s %10s %12s %12s %12s %9s\n",
		"load", "engine", "cycles", "mean lat", "accepted", "wall", "speedup")
	for _, load := range []float64{0.02, 0.05, 0.15} {
		full, fullWall := run(load, true)
		act, actWall := run(load, false)
		if full != act {
			log.Fatalf("engines diverged at load %v:\nfull-scan: %+v\nactive:    %+v", load, full, act)
		}
		fmt.Printf("%-8.2f %-10s %10d %9.1f cy %12.4f %12s %9s\n",
			load, "full-scan", full.Cycles, full.Latency.MeanLatency, full.AcceptedLoad,
			fullWall.Round(time.Millisecond), "")
		fmt.Printf("%-8.2f %-10s %10d %9.1f cy %12.4f %12s %8.1fx\n",
			load, "active", act.Cycles, act.Latency.MeanLatency, act.AcceptedLoad,
			actWall.Round(time.Millisecond), float64(fullWall)/float64(actWall))
	}
	fmt.Println()
	fmt.Println("Identical results (the example verifies every field), different cost:")
	fmt.Println("stepping cost scales with in-flight packets, not with the 1,024 nodes.")
	fmt.Println("The win grows as load falls — and on drain tails and warm-up gaps the")
	fmt.Println("scheduler's quiescence fast-forward jumps straight to the next event.")
}
