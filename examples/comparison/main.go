// Flow-control comparison: the paper's headline experiment in miniature.
// Sweeps offered load for wormhole, virtual-channel, and speculative
// virtual-channel routers with equal buffer budgets (16 flits per input
// port) and prints the latency-throughput series of Figure 14.
package main

import (
	"fmt"
	"log"

	"routersim"
)

func main() {
	loads := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}

	type entry struct {
		name string
		cfg  routersim.SimConfig
	}
	configs := []entry{
		{"WH (16 bufs)", mk(routersim.WormholeRouter, 1, 16)},
		{"VC (2vcsX8bufs)", mk(routersim.VCRouter, 2, 8)},
		{"specVC (2vcsX8bufs)", mk(routersim.SpecVCRouter, 2, 8)},
	}

	fmt.Printf("%-22s", "offered load:")
	for _, l := range loads {
		fmt.Printf("%8.2f", l)
	}
	fmt.Println()

	for _, e := range configs {
		pts, err := routersim.Sweep(e.cfg, loads)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s", e.name)
		for _, p := range pts {
			if p.Result.Saturated {
				fmt.Printf("%8s", "sat")
			} else {
				fmt.Printf("%8.1f", p.Result.Latency.MeanLatency)
			}
		}
		fmt.Printf("   saturation ≈ %.0f%% of capacity\n", 100*routersim.SaturationLoad(pts))
	}
	fmt.Println()
	fmt.Println("Expected shape (paper, Figure 14): WH ≈ 50%, VC ≈ 65%, specVC ≈ 70% —")
	fmt.Println("the speculative router matches wormhole latency at low load and beats")
	fmt.Println("wormhole throughput by ≈ 40%.")
}

func mk(kind routersim.RouterKind, vcs, buf int) routersim.SimConfig {
	cfg := routersim.DefaultSimConfig(kind)
	cfg.VCs = vcs
	cfg.BufPerVC = buf
	cfg.WarmupCycles = 3000
	cfg.MeasurePackets = 4000
	return cfg
}
