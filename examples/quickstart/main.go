// Quickstart: design a router pipeline with the delay model, then run a
// small network simulation with the prescribed router — the two halves
// of the Peh-Dally methodology in one program.
package main

import (
	"fmt"
	"log"

	"routersim"
)

func main() {
	// 1. Delay model: ask the model for the pipeline of a speculative
	// virtual-channel router at the paper's technology point.
	params := routersim.PaperDelayParams()
	params.Range = routersim.RangeVC // deterministic routing
	pipe, err := routersim.DesignPipeline(routersim.SpeculativeVCFlow, params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pipeline prescribed by the delay model:")
	fmt.Print(pipe)
	fmt.Println()

	// 2. Simulator: run the prescribed 3-stage speculative router on an
	// 8x8 mesh at 40% of capacity with uniform traffic.
	cfg := routersim.DefaultSimConfig(routersim.SpecVCRouter)
	cfg.LoadFraction = 0.40
	cfg.WarmupCycles = 3000
	cfg.MeasurePackets = 5000
	res, err := routersim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Simulated %d-stage speculative VC router on an 8x8 mesh at %.0f%% capacity:\n",
		pipe.Depth(), 100*cfg.LoadFraction)
	fmt.Printf("  mean latency    %.1f cycles\n", res.Latency.MeanLatency)
	fmt.Printf("  p95 latency     %d cycles\n", res.Latency.P95)
	fmt.Printf("  accepted load   %.2f of capacity\n", res.AcceptedLoad)
}
