// Ring example: the graph-general topology layer driving networks the
// paper never simulated. A bidirectional ring is the k-ary 1-cube torus
// — each router has only p = 3 ports (local, clockwise, counter-
// clockwise), the cheapest crossbar the delay model can be asked about,
// but its dateline VC classes and long diameter make it saturate early.
// The hypercube is the opposite corner: p grows with the network and
// the diameter shrinks to log₂ N. Same node count, same router
// microarchitecture, very different networks.
package main

import (
	"fmt"
	"log"

	"routersim"
)

func run(topo string, load float64) routersim.SimResult {
	cfg := routersim.DefaultSimConfig(routersim.SpecVCRouter)
	cfg.Topology = topo
	cfg.LoadFraction = load
	cfg.WarmupCycles = 2000
	cfg.MeasurePackets = 4000
	res, err := routersim.Simulate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("Speculative VC router (2 VCs x 4 bufs), 16 nodes, uniform traffic:")
	fmt.Println()
	fmt.Printf("%-14s %-9s %10s %12s %12s\n", "topology", "load", "accepted", "mean lat", "saturated")
	for _, topo := range []string{"ring:16", "mesh:k=4", "torus:k=4", "hypercube:16"} {
		for _, load := range []float64{0.2, 0.4} {
			res := run(topo, load)
			fmt.Printf("%-14s %-9.2f %10.3f %9.1f cy %12t\n",
				topo, load, res.AcceptedLoad, res.Latency.MeanLatency, res.Saturated)
		}
	}
	fmt.Println()

	// The delay model closes the loop: each topology's port count p
	// feeds the paper's pipeline packer, so the reported per-hop depth
	// is consistent with the router actually being simulated.
	fmt.Println("Delay model (EQ 1) at each topology's port count:")
	for _, topo := range []string{"ring:16", "mesh:k=4", "hypercube:16"} {
		sc := routersim.Scenario{Router: "spec-vc", Topology: topo, Load: 0.2}
		if m := sc.DelayModel(); m != nil {
			fmt.Printf("  %-14s p=%d v=%d -> %d pipeline stages\n", topo, m.Ports, m.VCs, m.Stages)
		}
	}
	fmt.Println()
	fmt.Println("The ring's 3-port router is the smallest crossbar the model prices;")
	fmt.Println("its early saturation comes from the network, not the router: capacity")
	fmt.Println("is bisection-limited at 8/N flits/node/cycle and dateline VC classes")
	fmt.Println("reserve half the VCs for wrapped packets.")
}
