// Delay-model walkthrough: use the model the way a router architect
// would — explore how physical channels, virtual channels, routing-
// function range, and clock period trade off against per-hop pipeline
// depth (the study of Section 4 of the paper).
package main

import (
	"fmt"
	"log"

	"routersim"
)

func main() {
	fmt.Println("Per-hop pipeline depth (cycles) prescribed by the delay model")
	fmt.Println()

	// Sweep VC count for a 5-port (2-D mesh) router at the typical
	// 20 τ4 clock, for each flow control method.
	fmt.Printf("%-22s", "router \\ vcs")
	vcs := []int{1, 2, 4, 8, 16, 32}
	for _, v := range vcs {
		fmt.Printf("%5d", v)
	}
	fmt.Println()
	for _, fc := range []routersim.FlowControl{
		routersim.WormholeFlow, routersim.VirtualChannelFlow, routersim.SpeculativeVCFlow,
	} {
		fmt.Printf("%-22s", fc.String())
		for _, v := range vcs {
			params := routersim.DelayParams{P: 5, V: v, W: 32, ClockTau4: 20, Range: routersim.RangeVC}
			if fc == routersim.WormholeFlow {
				params.V = 1
			}
			pipe, err := routersim.DesignPipeline(fc, params)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5d", pipe.Depth())
		}
		fmt.Println()
	}
	fmt.Println()

	// A slower clock absorbs more logic per stage: show the speculative
	// router's depth across clock periods (the "cycle time fixed,
	// stages variable" regime the paper argues real designs live in).
	fmt.Println("Speculative VC router (p=5, v=8, R->v) vs clock period:")
	for _, clk := range []float64{10, 14, 16, 20, 28, 40} {
		params := routersim.DelayParams{P: 5, V: 8, W: 32, ClockTau4: clk, Range: routersim.RangeVC}
		pipe, err := routersim.DesignPipeline(routersim.SpeculativeVCFlow, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  clk=%4.4g τ4  ->  %d stages\n", clk, pipe.Depth())
	}
	fmt.Println()

	// Routing-function range effect on the allocation stage (Figure 12).
	fmt.Println("Allocation stage of the speculative router under each routing range (p=5, v=8):")
	for _, r := range []routersim.RoutingRange{routersim.RangeVC, routersim.RangePC, routersim.RangeAll} {
		params := routersim.DelayParams{P: 5, V: 8, W: 32, ClockTau4: 20, Range: r}
		pipe, err := routersim.DesignPipeline(routersim.SpeculativeVCFlow, params)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s -> %d stages\n", r, pipe.Depth())
	}
}
