// Credit-loop study: reproduces the paper's Section 5.2 argument that
// buffer turnaround time — not just pipeline depth — governs throughput.
// Measures the architectural turnaround of each router kind with the
// Figure 16 probe, then shows the Figure 18 effect of stretching the
// credit propagation delay from 1 to 4 cycles.
package main

import (
	"fmt"
	"log"

	"routersim"
)

func main() {
	// Buffer turnaround per router kind (Figure 16 timeline).
	pr := routersim.QuickProtocol()
	turns, err := routersim.Turnarounds(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Buffer turnaround time (cycles from a flit freeing a buffer to the")
	fmt.Println("next flit occupying it):")
	for _, name := range []string{"wormhole", "vc", "specvc", "single-cycle"} {
		fmt.Printf("  %-14s %d cycles\n", name, turns[name])
	}
	fmt.Println()

	// Figure 18: speculative VC router, credit propagation 1 vs 4.
	fmt.Println("Speculative VC router (2 VCs x 4 bufs) with slow credits (Figure 18):")
	loads := []float64{0.2, 0.3, 0.4, 0.45, 0.5, 0.55, 0.6}
	for _, cd := range []int{1, 4} {
		cfg := routersim.DefaultSimConfig(routersim.SpecVCRouter)
		cfg.CreditDelay = cd
		cfg.WarmupCycles = 3000
		cfg.MeasurePackets = 4000
		pts, err := routersim.Sweep(cfg, loads)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  credit propagation %d cycle(s): saturation ≈ %.0f%% of capacity\n",
			cd, 100*routersim.SaturationLoad(pts))
	}
	fmt.Println()
	fmt.Println("Paper: 55% -> 45% of capacity, an 18% throughput loss from credit")
	fmt.Println("latency alone — why the credit path belongs in a router delay model.")
}
