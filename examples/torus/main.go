// Torus extension: the paper's future-work direction of "other
// topologies". Runs the speculative VC router on 2-D and 3-D tori with
// dateline virtual-channel classes for deadlock freedom, and compares
// traffic patterns (the flow-control comparison is pattern-insensitive,
// per the paper's footnote 13 — but topology and pattern interact).
package main

import (
	"fmt"
	"log"

	"routersim/internal/flit"
	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/topology"
	"routersim/internal/traffic"
)

func run(name string, pattern traffic.Pattern, topo topology.Topology, rate float64) {
	rc := router.DefaultConfig(router.SpeculativeVC)
	cfg := network.Config{
		Topo:          topo,
		Router:        rc,
		Pattern:       pattern,
		InjectionRate: rate,
		Seed:          5,
	}
	net, err := network.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	var sum, n float64
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		if now > 3000 { // past warm-up
			sum += float64(p.Latency())
			n++
		}
	}
	for now := int64(0); now < 15000; now++ {
		net.Step(now)
	}
	if n == 0 {
		fmt.Printf("  %-36s saturated\n", name)
		return
	}
	fmt.Printf("  %-36s mean latency %6.1f cycles (%d packets)\n", name, sum/n, int(n))
}

func main() {
	const rate = 0.1 * 1.0 / 5 // 0.1 flits/node/cycle in packets

	fmt.Println("Speculative VC router (2 VCs x 4 bufs), 4x4 mesh vs torus:")
	run("mesh, uniform", traffic.Uniform{}, topology.NewMesh(4), rate)
	run("torus (dateline VCs), uniform", traffic.Uniform{}, topology.NewTorus(4), rate)
	fmt.Println()
	fmt.Println("The torus halves the average hop count for edge-to-edge traffic, so")
	fmt.Println("uniform-traffic latency drops; the price is that dateline classes")
	fmt.Println("reserve half the VCs for wrapped packets.")
	fmt.Println()

	fmt.Println("Traffic patterns on the 4x4 torus:")
	for _, p := range []traffic.Pattern{
		traffic.Uniform{},
		traffic.Transpose{},
		traffic.BitComplement{},
		traffic.Hotspot{Node: 5, Frac: 0.2},
	} {
		run(p.Name(), p, topology.NewTorus(4), rate)
	}
	fmt.Println()

	// The same code drives a 4-ary 3-cube: 64 nodes of degree 7. The
	// mean hop count matches the 8x8 mesh's node count with a shorter
	// diameter, so zero-load latency drops — at the cost of the wider
	// 7-port crossbar the delay model charges for.
	cube, err := topology.New("torus:k=4,n=3", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("64 nodes, 3-D (%s, diameter %d):\n", cube.Name(), cube.Diameter())
	run("4x4x4 torus, uniform", traffic.Uniform{}, cube, rate)
	run("4x4x4 torus, bit-complement", traffic.BitComplement{}, cube, rate)
}
