// Command sweep runs experiment matrices over the simulator and
// regenerates the simulated figures of the paper's evaluation.
//
// Matrix mode expands the cross product of the axis flags into jobs and
// runs them on a bounded worker pool with per-job derived seeds; the
// same -seed yields byte-identical -json/-csv payloads regardless of
// -workers or GOMAXPROCS:
//
//	sweep -routers wormhole,vc,spec-vc -loads 0.1:0.9:0.1 -json -
//	sweep -patterns uniform,transpose,bit-complement -k 8 -csv out.csv
//	sweep -topos torus -routers spec-vc -vcs 2,4 -loads 0.2,0.4 -json -
//	sweep -topos mesh,torus:k=4:n=3,hypercube:64,ring:16 -routers spec-vc -json -
//	sweep -sources const,mmpp:on=20,off=60 -sizes bimodal:small=1,large=9,p=0.1 -csv -
//	sweep -overrides '|0:vcs=4,buf=8;3-5:delay=2' -routers vc -loads 0.2,0.4 -csv -
//	sweep -routing dor,adaptive:minimal -faults '|link:3-7@cycle=1000' -csv -
//
// Saturation mode replaces the loads axis with an adaptive bisection,
// emitting each scenario's knee (saturation load, delivered throughput,
// and search cost) as one row:
//
//	sweep -saturation -routers wormhole,vc,spec-vc -sat-tol 0.02 -csv -
//	sweep -saturation -topos mesh,torus -routers spec-vc -json -
//
// Figure mode reproduces the paper's simulated figures:
//
//	sweep -figure 13              # quick protocol (scaled sample)
//	sweep -figure 14 -full        # the paper's exact protocol
//	sweep -figure 18 -csv out.csv
//	sweep -all                    # all five simulated figures
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"routersim"
	"routersim/internal/topology"
)

func main() {
	// Figure mode.
	figure := flag.String("figure", "", "figure to regenerate: 13, 14, 15, 17, or 18")
	all := flag.Bool("all", false, "regenerate every simulated figure")
	full := flag.Bool("full", false, "use the paper's full protocol (10k warmup, 100k packets)")

	// Matrix axes.
	routers := flag.String("routers", "spec-vc", "comma-separated router kinds: wormhole, vc, spec-vc, wormhole-1cycle, vc-1cycle")
	topos := flag.String("topos", "mesh", "comma-separated topology specs: mesh, torus, ring, hypercube, parameterized as mesh:k=8, torus:k=4:n=3, hypercube:64, ring:16 (k=/n= params may separate with ':' or ',')")
	ks := flag.String("k", "8", "comma-separated network sizes: radix for mesh/torus, node count for ring/hypercube")
	patterns := flag.String("patterns", "uniform", "comma-separated traffic patterns: uniform, transpose, bit-reversal, bit-complement, hotspot[:NODE:FRAC]")
	vcs := flag.String("vcs", "2", "comma-separated VC counts per port")
	bufs := flag.String("bufs", "4", "comma-separated flit buffers per VC")
	pktSizes := flag.String("packetsize", "5", "comma-separated packet sizes (flits)")
	creditDelays := flag.String("credit-delays", "1", "comma-separated credit propagation delays (cycles)")
	stepWorkers := flag.String("step-workers", "0", "comma-separated parallel-stepper worker counts (0/1 = serial engine; results are identical for every value)")
	shards := flag.String("shards", "0", "comma-separated lookahead-shard counts (0/1 = single-range engine; results are identical for every value)")
	sources := flag.String("sources", "", "comma-separated injection processes: const, bernoulli, mmpp:on=X,off=Y, batch:size=N, trace:file=PATH (empty = const; a bare KEY=VALUE fragment continues the previous spec)")
	sizes := flag.String("sizes", "", "comma-separated packet-size distributions: fixed:N, uniform:min=A,max=B, bimodal:small=S,large=L,p=P (empty = every packet is -packetsize flits)")
	overrides := flag.String("overrides", "", "'|'-separated per-router override specs, each ';'-separated SEL:k=v groups, e.g. '0:vcs=4,buf=8;3-5:delay=2|*:buf=2' (empty list entry = uniform network)")
	routing := flag.String("routing", "", "comma-separated routing policies: dor, adaptive:minimal (empty = dor, the paper's deterministic dimension-order routing)")
	faults := flag.String("faults", "", "'|'-separated fault-injection specs, each ';'-separated events like 'link:3-7@cycle=1000;router:12@cycle=2000' or 'rand:links=2,seed=9@cycle=500' (empty list entry = fault-free network)")
	loads := flag.String("loads", "0.2", "loads as fractions of capacity: comma list or lo:hi:step range")

	// Saturation-search mode: replace the loads axis with an adaptive
	// bisection per scenario.
	saturation := flag.Bool("saturation", false, "find each scenario's saturation load by adaptive bisection instead of sweeping -loads; emits one row per scenario")
	satTol := flag.Float64("sat-tol", 0.01, "load resolution of the -saturation bisection (fraction of capacity)")

	// Crash safety: checkpoint/resume, invariant auditing, panic retry.
	ckptDir := flag.String("checkpoint", "", "persist each completed job to this directory (atomic, content-addressed); a killed sweep resumes with -resume")
	resume := flag.Bool("resume", false, "load completed jobs from the -checkpoint directory and run only the remainder (output stays byte-identical to an uninterrupted run)")
	audit := flag.Int("audit", 0, "check engine conservation invariants every N cycles in every job (0 = off; results are identical either way)")
	retries := flag.Int("retries", 0, "retry budget for panicking jobs (0 = one retry, negative = none); errors are never retried")

	// Profiling: hot-path investigation without ad-hoc harness hacking.
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")

	// Protocol and execution.
	warmup := flag.Int64("warmup", 2000, "warm-up cycles per job")
	packets := flag.Int("packets", 1500, "tagged sample size per job")
	exact := flag.Bool("exact", false, "store every latency sample for exact percentiles (default streams with O(1) memory per job)")
	ciTarget := flag.Float64("ci-target", 0, "end each job early once the relative 95% CI half-width of mean latency reaches this (0 = run the full sample)")
	seed := flag.Uint64("seed", 1, "base seed; each job derives its own seed from it")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); never affects results")
	jsonPath := flag.String("json", "", "write results as JSON to this file ('-' for stdout)")
	csvPath := flag.String("csv", "", "write results as CSV to this file ('-' for stdout)")
	quiet := flag.Bool("quiet", false, "suppress per-job progress lines on stderr")
	flag.Parse()

	startProfiles(*cpuProfile, *memProfile)
	defer stopProfiles()
	handleSignals()

	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint DIR (the store to resume from)"))
	}

	if *figure != "" || *all {
		// Figure mode reproduces the paper's fixed curves; the matrix
		// axes don't apply there. Reject explicitly-set matrix-only
		// flags rather than silently ignoring them.
		matrixOnly := map[string]bool{
			"routers": true, "topos": true, "k": true, "patterns": true,
			"vcs": true, "bufs": true, "packetsize": true, "credit-delays": true,
			"step-workers": true, "shards": true, "sources": true, "sizes": true, "overrides": true,
			"routing": true, "faults": true,
			"loads": true, "warmup": true, "packets": true,
			"workers": true, "json": true, "quiet": true,
			"saturation": true, "sat-tol": true, "exact": true, "ci-target": true,
			"checkpoint": true, "resume": true, "audit": true, "retries": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if matrixOnly[f.Name] {
				fatal(fmt.Errorf("-%s applies to matrix mode only, not -figure/-all (figure mode supports -full, -seed, -csv)", f.Name))
			}
		})
		runFigures(*figure, *all, *full, *seed, *csvPath)
		return
	}

	matrix := routersim.ScenarioMatrix{
		Routers:      splitList(*routers),
		Topologies:   splitSpecList(*topos),
		Ks:           parseInts("k", *ks),
		Patterns:     splitList(*patterns),
		VCs:          parseInts("vcs", *vcs),
		BufsPerVC:    parseInts("bufs", *bufs),
		PacketSizes:  parseInts("packetsize", *pktSizes),
		CreditDelays: parseInts("credit-delays", *creditDelays),
		StepWorkers:  parseInts("step-workers", *stepWorkers),
		Shards:       parseInts("shards", *shards),
		Sources:      splitWorkloadList(*sources),
		Sizes:        splitWorkloadList(*sizes),
		Overrides:    splitPipeList(*overrides),
		Routings:     splitList(*routing),
		Faults:       splitPipeList(*faults),
		Loads:        parseLoads(*loads),
	}
	opts := routersim.MatrixOptions{
		Workers: *workers,
		Seed:    *seed,
		Audit:   *audit,
		Retries: *retries,
		Protocol: routersim.MatrixProtocol{
			Warmup: *warmup, Packets: *packets,
			Exact: *exact, CITarget: *ciTarget,
		},
	}

	if *saturation {
		// The search owns the load axis; an explicit grid is a mode mix,
		// and a trace dictates its own rate, leaving nothing to bisect.
		// Checkpointing covers matrix jobs, not bisection probes.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "loads" {
				fatal(fmt.Errorf("-loads does not apply to -saturation (the bisection owns the load axis)"))
			}
			if f.Name == "checkpoint" || f.Name == "resume" {
				fatal(fmt.Errorf("-%s applies to matrix mode only, not -saturation (search probes are not checkpointed)", f.Name))
			}
		})
		for _, src := range matrix.Sources {
			if strings.HasPrefix(strings.TrimSpace(src), "trace") {
				fatal(fmt.Errorf("-saturation does not apply to trace sources (the trace dictates the injection rate; there is no load axis to bisect)"))
			}
		}
		runSaturation(matrix, opts, *satTol, *jsonPath, *csvPath, *quiet)
		return
	}

	// Invalid cells of the cross product are not fatal: the harness
	// records them per job, so one incompatible combination (say,
	// wormhole × torus in a routers × topologies sweep) doesn't discard
	// the rest of the matrix. Failures are summarized on stderr below.
	requested := len(matrix.Routers) * len(matrix.Topologies) * len(matrix.Ks) *
		len(matrix.Patterns) * len(matrix.VCs) * len(matrix.BufsPerVC) *
		len(matrix.PacketSizes) * len(matrix.CreditDelays) * len(matrix.StepWorkers) *
		len(matrix.Shards) *
		axisLen(matrix.Sources) * axisLen(matrix.Sizes) * axisLen(matrix.Overrides) *
		axisLen(matrix.Routings) * axisLen(matrix.Faults) *
		len(matrix.Loads)
	jobs := matrix.Size()
	if jobs < requested {
		fmt.Fprintf(os.Stderr, "note: %d duplicate scenario(s) collapsed (axes overlap after canonicalization)\n",
			requested-jobs)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "matrix: %d jobs (seed %d)\n", jobs, *seed)
		opts.Progress = routersim.MatrixProgressPrinter(os.Stderr)
	}

	var results []routersim.MatrixResult
	var err error
	if *ckptDir != "" {
		store, serr := routersim.OpenCheckpointStore(*ckptDir)
		if serr != nil {
			fatal(serr)
		}
		if n, lerr := store.Len(); lerr != nil {
			fatal(lerr)
		} else if n > 0 && !*resume {
			// An already-populated store means a prior (possibly killed)
			// sweep; continuing it must be an explicit choice, not an
			// accident of directory reuse.
			fatal(fmt.Errorf("checkpoint dir %s already holds %d completed job(s); pass -resume to continue that sweep, or point -checkpoint at an empty directory", *ckptDir, n))
		}
		results, err = routersim.RunMatrixResumable(matrix, opts, store)
	} else {
		results, err = routersim.RunMatrix(matrix, opts)
	}
	if err != nil {
		fatal(err)
	}

	emitResults(*jsonPath, *csvPath,
		func(w *os.File) error { return routersim.WriteMatrixJSON(w, results) },
		func(w *os.File) error { return routersim.WriteMatrixCSV(w, results) })
	exitOnFailures(len(results), func(i int) (string, string) {
		return results[i].Scenario.Label(), results[i].Error
	})
}

// emitResults routes a payload to -json and/or -csv files ('-' for
// stdout), falling back to CSV on stdout when neither was requested.
func emitResults(jsonPath, csvPath string, writeJSON, writeCSV func(*os.File) error) {
	wroteSomewhere := false
	if jsonPath != "" {
		writeTo(jsonPath, writeJSON)
		wroteSomewhere = true
	}
	if csvPath != "" {
		writeTo(csvPath, writeCSV)
		wroteSomewhere = true
	}
	if !wroteSomewhere {
		if err := writeCSV(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// exitOnFailures summarizes per-job failures on stderr and exits 1 if
// any occurred. errAt reports job i's label and error ("" = success).
func exitOnFailures(total int, errAt func(i int) (label, errMsg string)) {
	failed := 0
	firstErr := ""
	for i := 0; i < total; i++ {
		label, e := errAt(i)
		if e != "" {
			failed++
			if firstErr == "" {
				firstErr = label + ": " + e
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d jobs failed; first: %s\n", failed, total, firstErr)
		stopProfiles()
		os.Exit(1)
	}
}

// runSaturation is matrix mode with the load axis replaced by the
// adaptive bisection: one saturation row per scenario.
func runSaturation(matrix routersim.ScenarioMatrix, opts routersim.MatrixOptions, tol float64, jsonPath, csvPath string, quiet bool) {
	if !quiet {
		fmt.Fprintf(os.Stderr, "saturation search: tol %v (seed %d)\n", tol, opts.Seed)
	}
	results, err := routersim.FindSaturations(matrix, opts, routersim.SaturationSearch{Step: tol})
	if err != nil {
		fatal(err)
	}
	if !quiet {
		for _, r := range results {
			status := fmt.Sprintf("saturation=%.4f throughput=%.4f (%d probes, %d cycles)",
				r.Load, r.Throughput, len(r.Probes), r.Cycles)
			if r.Error != "" {
				status = "error: " + r.Error
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s\n", r.Index+1, len(results), r.Scenario.Label(), status)
		}
	}
	emitResults(jsonPath, csvPath,
		func(w *os.File) error { return routersim.WriteSaturationJSON(w, results) },
		func(w *os.File) error { return routersim.WriteSaturationCSV(w, results) })
	exitOnFailures(len(results), func(i int) (string, string) {
		return results[i].Scenario.Label(), results[i].Error
	})
}

func runFigures(figure string, all, full bool, seed uint64, csvPath string) {
	pr := routersim.QuickProtocol()
	if full {
		pr = routersim.PaperProtocol()
	}
	pr.Seed = seed

	var ids []string
	if all {
		ids = []string{"figure13", "figure14", "figure15", "figure17", "figure18"}
	} else {
		ids = []string{"figure" + figure}
	}

	var figs []routersim.FigureResult
	for _, id := range ids {
		fig, err := routersim.Reproduce(id, pr)
		if err != nil {
			fatal(err)
		}
		if err := routersim.WriteFigure(os.Stdout, fig); err != nil {
			fatal(err)
		}
		figs = append(figs, fig)
	}
	if csvPath != "" {
		// Same '-' = stdout convention as matrix mode.
		writeTo(csvPath, func(w *os.File) error {
			for _, fig := range figs {
				if err := routersim.WriteFigureCSV(w, fig); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// axisLen is an axis's contribution to the requested-job count: an
// empty axis normalizes to one default value.
func axisLen(vals []string) int {
	if len(vals) == 0 {
		return 1
	}
	return len(vals)
}

// splitWorkloadList splits a comma-separated list of workload specs
// (injection processes, size distributions) whose parameters themselves
// contain commas ("mmpp:on=20,off=60,batch:size=4"): a bare KEY=VALUE
// fragment continues the previous spec rather than starting a new one.
func splitWorkloadList(s string) []string {
	var out []string
	for _, f := range splitList(s) {
		if len(out) > 0 && strings.Contains(f, "=") && !strings.Contains(f, ":") {
			out[len(out)-1] += "," + f
			continue
		}
		out = append(out, f)
	}
	return out
}

// splitPipeList splits a '|'-separated list (per-router override specs
// use ',' and ';' internally), preserving empty entries so a sweep can
// cross a uniform network with override sets ("|0:vcs=4"). An all-empty
// flag value means the axis was not stated.
func splitPipeList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	fields := strings.Split(s, "|")
	out := make([]string, len(fields))
	for i, f := range fields {
		out[i] = strings.TrimSpace(f)
	}
	return out
}

// splitSpecList splits a comma-separated list of topology specs whose
// parameters may themselves contain commas ("torus:k=4,n=3,ring:16"):
// a fragment the spec grammar recognizes as pure parameters (k=4, n=3,
// or a bare integer) continues the previous spec rather than starting a
// new one.
func splitSpecList(s string) []string {
	var out []string
	for _, f := range splitList(s) {
		if len(out) > 0 && topology.IsParamFragment(f) {
			out[len(out)-1] += "," + f
			continue
		}
		out = append(out, f)
	}
	return out
}

func parseInts(name, s string) []int {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			fatal(fmt.Errorf("-%s: %v", name, err))
		}
		out = append(out, v)
	}
	return out
}

// parseLoads accepts a comma list ("0.1,0.2,0.3") or an inclusive range
// with step ("0.1:0.9:0.05").
func parseLoads(s string) []float64 {
	if lo, hi, step, ok := parseRange(s); ok {
		var out []float64
		// Walk an integer grid to dodge float accumulation drift.
		for i := 0; ; i++ {
			l := lo + float64(i)*step
			if l > hi+step/2 {
				break
			}
			out = append(out, roundLoad(l))
		}
		return out
	}
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			fatal(fmt.Errorf("-loads: %v", err))
		}
		out = append(out, v)
	}
	return out
}

func parseRange(s string) (lo, hi, step float64, ok bool) {
	fields := strings.Split(s, ":")
	if len(fields) != 3 {
		return 0, 0, 0, false
	}
	var vals [3]float64
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fatal(fmt.Errorf("-loads range %q: %v", s, err))
		}
		vals[i] = v
	}
	if vals[2] <= 0 || vals[1] < vals[0] {
		fatal(fmt.Errorf("-loads range %q: want lo:hi:step with step > 0", s))
	}
	return vals[0], vals[1], vals[2], true
}

// roundLoad snaps a swept load to 4 decimals so range-generated grids
// serialize cleanly.
func roundLoad(l float64) float64 { return float64(int(l*10000+0.5)) / 10000 }

func writeTo(path string, fn func(*os.File) error) {
	if path == "-" {
		if err := fn(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

// profileStop finalizes any active profiles; every exit path (including
// the os.Exit ones, which skip deferred calls) must run it so the
// profile files are complete. The mutex makes stopProfiles idempotent
// and safe to race from the signal handler against a normal exit.
var (
	profileMu   sync.Mutex
	profileStop func()
)

// startProfiles begins CPU profiling and arranges the heap snapshot.
func startProfiles(cpuPath, memPath string) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		cpuFile = f
	}
	profileMu.Lock()
	defer profileMu.Unlock()
	profileStop = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
}

func stopProfiles() {
	profileMu.Lock()
	fn := profileStop
	profileStop = nil
	profileMu.Unlock()
	if fn != nil {
		fn()
	}
}

// handleSignals converts SIGINT/SIGTERM into a graceful shutdown:
// active profiles are finalized before exiting with the conventional
// 128+signal code. Checkpoint entries need no flushing — each
// completed job was already persisted atomically — so a killed
// -checkpoint sweep loses only its in-flight jobs and a rerun with
// -resume picks up from the last completed one.
func handleSignals() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "sweep: caught %v; finalizing profiles and exiting\n", sig)
		stopProfiles()
		code := 130 // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	stopProfiles()
	os.Exit(1)
}
