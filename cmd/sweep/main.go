// Command sweep regenerates the simulated figures of the paper's
// evaluation (Figures 13, 14, 15, 17, 18): for each curve it sweeps the
// offered load and prints the latency-throughput series as a table, an
// ASCII plot, and optionally CSV.
//
// Usage:
//
//	sweep -figure 13              # quick protocol (scaled sample)
//	sweep -figure 14 -full        # the paper's exact protocol
//	sweep -figure 18 -csv out.csv
//	sweep -all                    # all five simulated figures
package main

import (
	"flag"
	"fmt"
	"os"

	"routersim"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate: 13, 14, 15, 17, or 18")
	all := flag.Bool("all", false, "regenerate every simulated figure")
	full := flag.Bool("full", false, "use the paper's full protocol (10k warmup, 100k packets)")
	csvPath := flag.String("csv", "", "also write the series as CSV to this file")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	pr := routersim.QuickProtocol()
	if *full {
		pr = routersim.PaperProtocol()
	}
	pr.Seed = *seed

	var ids []string
	switch {
	case *all:
		ids = []string{"figure13", "figure14", "figure15", "figure17", "figure18"}
	case *figure != "":
		ids = []string{"figure" + *figure}
	default:
		fmt.Fprintln(os.Stderr, "specify -figure N or -all")
		os.Exit(2)
	}

	var csvFile *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		csvFile = f
	}

	for _, id := range ids {
		fig, err := routersim.Reproduce(id, pr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := routersim.WriteFigure(os.Stdout, fig); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if csvFile != nil {
			if err := routersim.WriteFigureCSV(csvFile, fig); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
