// Command netsim runs one network simulation at a chosen load and
// prints the latency/throughput summary — a single-scenario run of the
// experiment harness.
//
// Usage:
//
//	netsim -router spec-vc -vcs 2 -buf 4 -load 0.4
//	netsim -router wormhole -buf 8 -load 0.45 -packets 100000
//	netsim -router spec-vc -pattern transpose -topo torus -load 0.3
//	netsim -router spec-vc -routing adaptive:minimal -faults 'link:3-7@cycle=1000' -load 0.3
//	netsim -router spec-vc -probe-turnaround -load 0.9
//	netsim -router vc -load 0.4 -json
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"routersim"
)

// handleSignals converts SIGINT/SIGTERM into a clean exit with the
// conventional 128+signal code (netsim holds no profiles or
// checkpoint state; the handler exists so scripted runs observe the
// standard termination status).
func handleSignals() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Fprintf(os.Stderr, "netsim: caught %v; exiting\n", sig)
		code := 130 // 128 + SIGINT
		if sig == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()
}

func main() {
	kindStr := flag.String("router", "spec-vc", "router: wormhole, vc, spec-vc, wormhole-1cycle, vc-1cycle")
	vcs := flag.Int("vcs", 0, "virtual channels per port (default: paper config)")
	buf := flag.Int("buf", 0, "flit buffers per VC (default: paper config)")
	load := flag.Float64("load", 0.4, "offered load as a fraction of capacity")
	k := flag.Int("k", 8, "network size: radix for mesh/torus, node count for ring/hypercube")
	topo := flag.String("topo", "mesh", "topology spec: mesh, torus, ring, hypercube, parameterized as mesh:k=8, torus:k=4,n=3, hypercube:64, ring:16")
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform, transpose, bit-reversal, bit-complement, hotspot[:NODE:FRAC]")
	pkt := flag.Int("packetsize", 5, "flits per packet")
	creditDelay := flag.Int("credit-delay", 1, "credit propagation delay (cycles)")
	source := flag.String("source", "", "injection process: const, bernoulli, mmpp:on=X,off=Y, batch:size=N, trace:file=PATH (replay; ignores -load)")
	sizes := flag.String("sizes", "", "packet-size distribution: fixed:N, uniform:min=A,max=B, bimodal:small=S,large=L,p=P (empty = every packet is -packetsize flits)")
	overrides := flag.String("overrides", "", "per-router overrides, ';'-separated SEL:k=v groups (SEL = id, LO-HI, or '*'): e.g. '0:vcs=4,buf=8;3-5:delay=2'")
	routing := flag.String("routing", "", "routing policy: dor (default, the paper's deterministic dimension-order routing) or adaptive:minimal")
	faults := flag.String("faults", "", "fault-injection spec, ';'-separated events: link:A-B@cycle=N, router:R@cycle=N, rand:links=K[,seed=S]@cycle=N, rand:routers=K[,seed=S]@cycle=N")
	record := flag.String("record", "", "record the run's packet workload to this trace file (.jsonl/.json = JSONL, else binary)")
	stepWorkers := flag.Int("step-workers", 0, "deterministic parallel stepper workers (0 or 1 = serial engine; results are identical for every value)")
	shards := flag.Int("shards", 0, "lookahead-sharded engine shard count (0 or 1 = single-range engine; results are identical for every value)")
	audit := flag.Int("audit", 0, "check engine conservation invariants every N cycles (0 = off; results are identical either way)")
	warmup := flag.Int64("warmup", 10000, "warm-up cycles")
	packets := flag.Int("packets", 20000, "tagged sample size")
	exact := flag.Bool("exact", false, "store every latency sample for exact percentiles (default streams with O(1) memory)")
	ciTarget := flag.Float64("ci-target", 0, "end the run early once the relative 95% CI half-width of mean latency reaches this (0 = run the full sample)")
	seed := flag.Uint64("seed", 1, "random seed")
	probe := flag.Bool("probe-turnaround", false, "measure the buffer turnaround time (Figure 16)")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of text")
	flag.Parse()
	handleSignals()

	kind, ok := routersim.ParseRouterKind(*kindStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown router %q\n", *kindStr)
		os.Exit(2)
	}
	// Resolve the paper defaults up front so the printed/serialized
	// configuration is the one that actually runs.
	defaults := routersim.DefaultSimConfig(kind)
	if *vcs == 0 {
		*vcs = defaults.VCs
	}
	if *buf == 0 {
		*buf = defaults.BufPerVC
	}
	if *vcs > 1 && !kind.UsesVCs() {
		fmt.Fprintf(os.Stderr, "%s routers have exactly 1 VC, got -vcs %d\n", *kindStr, *vcs)
		os.Exit(2)
	}

	if *probe {
		// The turnaround probe goes through the facade's probe path,
		// which supports neither alternate topologies/patterns, workload
		// specs, recording, nor JSON output; reject rather than silently
		// ignore those flags.
		if *topo != "mesh" || *pattern != "uniform" || *jsonOut ||
			*source != "" || *sizes != "" || *overrides != "" || *routing != "" || *faults != "" ||
			*record != "" || *stepWorkers != 0 || *shards != 0 {
			fmt.Fprintln(os.Stderr, "-probe-turnaround supports only -topo mesh, -pattern uniform, the default workload, and text output")
			os.Exit(2)
		}
		runProbe(*kindStr, *vcs, *buf, *k, *pkt, *creditDelay, *load, *warmup, *packets, *seed, *exact, *ciTarget, *audit)
		return
	}

	sc := routersim.Scenario{
		Router:      *kindStr,
		Topology:    *topo,
		K:           *k,
		Pattern:     *pattern,
		VCs:         *vcs,
		BufPerVC:    *buf,
		PacketSize:  *pkt,
		CreditDelay: *creditDelay,
		StepWorkers: *stepWorkers,
		Shards:      *shards,
		Source:      *source,
		Sizes:       *sizes,
		Overrides:   *overrides,
		Routing:     *routing,
		Faults:      *faults,
		Load:        *load,
	}
	opts := routersim.MatrixOptions{
		Seed:  *seed,
		Audit: *audit,
		Protocol: routersim.MatrixProtocol{
			Warmup: *warmup, Packets: *packets,
			Exact: *exact, CITarget: *ciTarget,
		},
	}
	var r routersim.MatrixResult
	var err error
	if *record != "" {
		r, err = routersim.RecordScenario(sc, opts, *record)
	} else {
		r, err = routersim.RunScenario(sc, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if r.Error != "" {
		fmt.Fprintln(os.Stderr, r.Error)
		os.Exit(1)
	}

	if *jsonOut {
		if err := routersim.WriteMatrixJSON(os.Stdout, []routersim.MatrixResult{r}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	res := *r.Result
	// Report the engine's canonicalized scenario and the derived job
	// seed: the configuration and RNG stream that actually ran.
	sc = r.Scenario
	fmt.Printf("router=%s topo=%s k=%d pattern=%s vcs=%d buf=%d load=%.2f seed=%d (job seed %d)\n",
		sc.Router, sc.Topology, sc.K, sc.Pattern, sc.VCs, sc.BufPerVC, sc.Load, *seed, r.Seed)
	if sc.Source != "" || sc.Sizes != "" || sc.Overrides != "" {
		fmt.Printf("  workload  source=%q sizes=%q overrides=%q\n", sc.Source, sc.Sizes, sc.Overrides)
	}
	if sc.Routing != "" || sc.Faults != "" {
		fmt.Printf("  routing   policy=%q faults=%q\n", sc.Routing, sc.Faults)
	}
	if *record != "" {
		fmt.Printf("  recorded  packet trace -> %s\n", *record)
	}
	fmt.Printf("  offered   %.3f of capacity\n", res.OfferedLoad)
	fmt.Printf("  accepted  %.3f ±%.3f of capacity\n", res.AcceptedLoad, res.AcceptedCI)
	fmt.Printf("  latency   mean=%.1f ±%.1f p50=%d p95=%d max=%d cycles (%d packets)\n",
		res.Latency.MeanLatency, res.Latency.MeanCI, res.Latency.P50, res.Latency.P95,
		res.Latency.MaxLatency, res.Latency.Packets)
	if res.Latency.Censored > 0 {
		fmt.Printf("  censored  %d tagged packets undrained: latency columns are lower bounds\n",
			res.Latency.Censored)
	}
	if res.Unroutable > 0 {
		fmt.Printf("  dropped   %d unroutable packets (%d flits) drained at discovery\n",
			res.Unroutable, res.DroppedFlits)
	}
	fmt.Printf("  cycles    %d (saturated=%t)\n", res.Cycles, res.Saturated)
	if r.Model != nil {
		fmt.Printf("  model     p=%d v=%d -> %d pipeline stages (EQ 1)\n",
			r.Model.Ports, r.Model.VCs, r.Model.Stages)
	}
}

// runProbe measures the buffer-turnaround time (the credit-loop length
// of Figure 16), which needs the probe path of the facade rather than a
// plain harness job.
func runProbe(kindStr string, vcs, buf, k, pkt, creditDelay int, load float64, warmup int64, packets int, seed uint64, exact bool, ciTarget float64, audit int) {
	kind, _ := routersim.ParseRouterKind(kindStr)
	cfg := routersim.DefaultSimConfig(kind)
	cfg.ExactLatency = exact
	cfg.CITarget = ciTarget
	cfg.Audit = audit
	if vcs > 0 {
		cfg.VCs = vcs
	}
	if buf > 0 {
		cfg.BufPerVC = buf
	}
	cfg.MeshRadix = k
	cfg.PacketSize = pkt
	cfg.CreditDelay = creditDelay
	cfg.LoadFraction = load
	cfg.WarmupCycles = warmup
	cfg.MeasurePackets = packets
	cfg.Seed = seed

	res, err := routersim.SimulateWithTurnaroundProbe(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("router=%s vcs=%d buf=%d load=%.2f seed=%d\n", kindStr, cfg.VCs, cfg.BufPerVC, load, seed)
	fmt.Printf("  buffer turnaround (min) %d cycles\n", res.MinTurnaround)
}
