// Command netsim runs one network simulation at a chosen load and
// prints the latency/throughput summary — the building block of the
// paper's latency-throughput curves.
//
// Usage:
//
//	netsim -router specvc -vcs 2 -buf 4 -load 0.4
//	netsim -router wormhole -buf 8 -load 0.45 -packets 100000
//	netsim -router specvc -probe-turnaround -load 0.9
package main

import (
	"flag"
	"fmt"
	"os"

	"routersim"
)

func kindFromString(s string) (routersim.RouterKind, bool) {
	switch s {
	case "wormhole":
		return routersim.WormholeRouter, true
	case "vc":
		return routersim.VCRouter, true
	case "specvc":
		return routersim.SpecVCRouter, true
	case "wormhole-1cycle":
		return routersim.SingleCycleWormhole, true
	case "vc-1cycle":
		return routersim.SingleCycleVC, true
	default:
		return 0, false
	}
}

func main() {
	kindStr := flag.String("router", "specvc", "router: wormhole, vc, specvc, wormhole-1cycle, vc-1cycle")
	vcs := flag.Int("vcs", 0, "virtual channels per port (default: paper config)")
	buf := flag.Int("buf", 0, "flit buffers per VC (default: paper config)")
	load := flag.Float64("load", 0.4, "offered load as a fraction of capacity")
	k := flag.Int("k", 8, "mesh radix")
	pkt := flag.Int("packetsize", 5, "flits per packet")
	creditDelay := flag.Int("credit-delay", 1, "credit propagation delay (cycles)")
	warmup := flag.Int64("warmup", 10000, "warm-up cycles")
	packets := flag.Int("packets", 20000, "tagged sample size")
	seed := flag.Uint64("seed", 1, "random seed")
	probe := flag.Bool("probe-turnaround", false, "measure the buffer turnaround time (Figure 16)")
	flag.Parse()

	kind, ok := kindFromString(*kindStr)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown router %q\n", *kindStr)
		os.Exit(2)
	}
	cfg := routersim.DefaultSimConfig(kind)
	if *vcs > 0 {
		cfg.VCs = *vcs
	}
	if *buf > 0 {
		cfg.BufPerVC = *buf
	}
	cfg.MeshRadix = *k
	cfg.PacketSize = *pkt
	cfg.CreditDelay = *creditDelay
	cfg.LoadFraction = *load
	cfg.WarmupCycles = *warmup
	cfg.MeasurePackets = *packets
	cfg.Seed = *seed

	var (
		res routersim.SimResult
		err error
	)
	if *probe {
		res, err = routersim.SimulateWithTurnaroundProbe(cfg)
	} else {
		res, err = routersim.Simulate(cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("router=%s vcs=%d buf=%d mesh=%dx%d load=%.2f seed=%d\n",
		*kindStr, cfg.VCs, cfg.BufPerVC, *k, *k, *load, *seed)
	fmt.Printf("  offered   %.3f of capacity\n", res.OfferedLoad)
	fmt.Printf("  accepted  %.3f of capacity\n", res.AcceptedLoad)
	fmt.Printf("  latency   mean=%.1f p50=%d p95=%d max=%d cycles (%d packets)\n",
		res.Latency.MeanLatency, res.Latency.P50, res.Latency.P95, res.Latency.MaxLatency, res.Latency.Packets)
	fmt.Printf("  cycles    %d (saturated=%t)\n", res.Cycles, res.Saturated)
	if *probe {
		fmt.Printf("  buffer turnaround (min) %d cycles\n", res.MinTurnaround)
	}
}
