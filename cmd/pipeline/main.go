// Command pipeline prints the router pipelines prescribed by the delay
// model (Figure 11 of the paper): the per-hop stage count and per-stage
// utilization for wormhole, virtual-channel, and speculative
// virtual-channel routers over the paper's (p, v) grid, or for a single
// configuration.
//
// Usage:
//
//	pipeline -router vc               # Figure 11(a), R->pv
//	pipeline -router specvc           # Figure 11(b), R->v
//	pipeline -router specvc -p 7 -v 8 -clk 20
package main

import (
	"flag"
	"fmt"
	"os"

	"routersim/internal/core"
	"routersim/internal/experiments"
)

func main() {
	kind := flag.String("router", "vc", "router: wormhole, vc, or specvc")
	p := flag.Int("p", 0, "physical channels (0 = sweep the paper's grid)")
	v := flag.Int("v", 2, "virtual channels per physical channel")
	w := flag.Int("w", 32, "channel width (bits)")
	clk := flag.Float64("clk", core.DefaultClockTau4, "clock cycle in τ4")
	rng := flag.String("range", "", "routing range: v, p, or pv (default: figure conventions)")
	flag.Parse()

	var fc core.FlowControl
	rrange := core.RangeAll
	switch *kind {
	case "wormhole":
		fc = core.Wormhole
	case "vc":
		fc = core.VirtualChannel
		rrange = core.RangeAll // Figure 11(a) uses the most general range
	case "specvc":
		fc = core.SpeculativeVC
		rrange = core.RangeVC // Figure 11(b) assumes R->v
	default:
		fmt.Fprintf(os.Stderr, "unknown router %q\n", *kind)
		os.Exit(2)
	}
	switch *rng {
	case "v":
		rrange = core.RangeVC
	case "p":
		rrange = core.RangePC
	case "pv":
		rrange = core.RangeAll
	case "":
	default:
		fmt.Fprintf(os.Stderr, "unknown routing range %q\n", *rng)
		os.Exit(2)
	}

	if *p != 0 {
		params := core.Params{P: *p, V: *v, W: *w, ClockTau4: *clk, Range: rrange}
		pl, err := core.DesignPipeline(fc, params, core.DefaultSpecOptions())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(pl)
		return
	}

	fmt.Printf("Pipelines for %v routers (clk=%.4g τ4, routing range %v)\n\n", fc, *clk, rrange)
	var pts []core.PipelinePoint
	if fc == core.SpeculativeVC {
		pts = core.Figure11b(*clk, rrange, *w, core.DefaultSpecOptions())
	} else {
		pts = core.Figure11a(*clk, rrange, *w)
	}
	ref := core.WormholeReference(*clk, 5, *w)
	if err := experiments.WriteFigure11(os.Stdout, pts, ref); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
