// Command allocdelay prints Figure 12 of the paper: the delay of the
// combined virtual-channel + speculative switch allocation stage of a
// speculative VC router, over the paper's (p, v) grid, for each
// routing-function range.
package main

import (
	"fmt"
	"os"

	"routersim/internal/experiments"
)

func main() {
	if err := experiments.WriteFigure12(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
