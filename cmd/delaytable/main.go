// Command delaytable prints Table 1 of the paper: the parameterized
// delay equations of every router atomic module evaluated at a chosen
// parameter point, alongside the values the paper reports.
//
// Usage:
//
//	delaytable            # the paper's point: p=5 w=32 v=2 clk=20τ4
//	delaytable -p 7 -v 4  # evaluate the equations elsewhere
package main

import (
	"flag"
	"fmt"
	"os"

	"routersim/internal/core"
	"routersim/internal/experiments"
	"routersim/internal/logicaleffort"
)

func main() {
	p := flag.Int("p", 5, "physical channels")
	v := flag.Int("v", 2, "virtual channels per physical channel")
	w := flag.Int("w", 32, "channel width (bits)")
	flag.Parse()

	if *p == 5 && *v == 2 && *w == 32 {
		if err := experiments.WriteTable1(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	t4 := logicaleffort.TauToTau4
	fmt.Printf("Module delays at p=%d, v=%d, w=%d (t+h, τ4)\n", *p, *v, *w)
	rows := []struct {
		name string
		t, h float64
	}{
		{"switch arbiter (SB)", core.TSwitchArbiterWH(*p), core.HSwitchArbiterWH(*p)},
		{"crossbar traversal (XB)", core.TCrossbar(*p, *w), core.HCrossbar(*p, *w)},
		{"vc allocator (R->v)", core.TVCAlloc(core.RangeVC, *p, *v), core.HVCAlloc(core.RangeVC, *p, *v)},
		{"vc allocator (R->p)", core.TVCAlloc(core.RangePC, *p, *v), core.HVCAlloc(core.RangePC, *p, *v)},
		{"vc allocator (R->pv)", core.TVCAlloc(core.RangeAll, *p, *v), core.HVCAlloc(core.RangeAll, *p, *v)},
		{"switch allocator (SL)", core.TSwitchAllocVC(*p, *v), core.HSwitchAllocVC(*p, *v)},
		{"spec switch allocator (SS)", core.TSpecSwitchAlloc(*p, *v), core.HSpecSwitchAlloc(*p, *v)},
		{"grant combine (CB)", core.TCombine(*p, *v), core.HCombine(*p, *v)},
		{"spec combined stage (R->v)", core.SpecAllocStageTau(core.RangeVC, *p, *v), 0},
		{"spec combined stage (R->p)", core.SpecAllocStageTau(core.RangePC, *p, *v), 0},
		{"spec combined stage (R->pv)", core.SpecAllocStageTau(core.RangeAll, *p, *v), 0},
	}
	for _, r := range rows {
		fmt.Printf("  %-30s %8.2f τ4\n", r.name, t4(r.t+r.h))
	}
}
