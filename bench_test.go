// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §5 for the experiment index), plus ablation studies of the
// design choices and micro-benchmarks of the hot simulator paths.
//
// The figure benchmarks run a scaled-down measurement protocol (the
// curve shapes match the paper; see EXPERIMENTS.md for full-protocol
// numbers) and report the reproduced quantities as custom metrics:
// zero-load latency in cycles and saturation load in percent of
// capacity.
package routersim_test

import (
	"fmt"
	"strings"
	"testing"

	"routersim"

	"routersim/internal/allocator"
	"routersim/internal/arbiter"
	"routersim/internal/core"
	"routersim/internal/experiments"
	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/sim"
	"routersim/internal/topology"
)

// benchProtocol is small enough for benchmarking while preserving the
// knee positions to within one 5%-of-capacity grid step.
func benchProtocol() routersim.Protocol {
	pr := routersim.QuickProtocol()
	pr.Warmup = 3000
	pr.Packets = 3000
	pr.Loads = []float64{0.1, 0.2, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8}
	return pr
}

// metricReplacer is hoisted to package level: strings.NewReplacer builds
// its lookup machinery on first use, so a fresh one per call would pay
// that cost for every reported metric.
var metricReplacer = strings.NewReplacer(" ", "_", "(", "", ")", "", ",", "")

func metricName(curve string, what string) string {
	return metricReplacer.Replace(curve) + "_" + what
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := routersim.Reproduce(id, benchProtocol())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 { // report metrics once, from the final run
			for _, c := range fig.Curves {
				b.ReportMetric(c.ZeroLoad, metricName(c.Name, "zeroload_cycles"))
				b.ReportMetric(100*c.Saturation, metricName(c.Name, "saturation_pct"))
			}
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (analytic delay equations).
func BenchmarkTable1(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, row := range routersim.Table1() {
			sink += row.Model
		}
	}
	rows := routersim.Table1()
	b.ReportMetric(rows[0].Model, "SB_tau4")
	b.ReportMetric(rows[1].Model, "XB_tau4")
	_ = sink
}

// BenchmarkFigure11a regenerates the non-speculative VC router pipelines.
func BenchmarkFigure11a(b *testing.B) {
	var depth4 int
	for i := 0; i < b.N; i++ {
		pts := core.Figure11a(20, core.RangeAll, 32)
		depth4 = 0
		for _, pt := range pts {
			if pt.Pipeline.Depth() == 4 {
				depth4++
			}
		}
	}
	b.ReportMetric(float64(depth4), "configs_fitting_4_stages")
}

// BenchmarkFigure11b regenerates the speculative VC router pipelines.
func BenchmarkFigure11b(b *testing.B) {
	var depth3 int
	for i := 0; i < b.N; i++ {
		pts := core.Figure11b(20, core.RangeVC, 32, core.DefaultSpecOptions())
		depth3 = 0
		for _, pt := range pts {
			if pt.Pipeline.Depth() == 3 {
				depth3++
			}
		}
	}
	// The paper: every configuration up to 16 VCs (8 of 10 grid points)
	// fits the wormhole router's 3 stages.
	b.ReportMetric(float64(depth3), "configs_fitting_3_stages")
}

// BenchmarkFigure12 regenerates the combined-allocation delay sweep.
func BenchmarkFigure12(b *testing.B) {
	var max float64
	for i := 0; i < b.N; i++ {
		for _, pt := range core.Figure12() {
			if pt.DelayRpv > max {
				max = pt.DelayRpv
			}
		}
	}
	b.ReportMetric(max, "max_Rpv_delay_tau4")
}

// BenchmarkFigure13 reproduces the 8-buffer latency-throughput curves.
// Paper: WH sat 40%, VC 50%, specVC 55%; zero-load 29/36/30 cycles.
func BenchmarkFigure13(b *testing.B) { benchFigure(b, "figure13") }

// BenchmarkFigure14 reproduces the 16-buffer, 2-VC curves.
// Paper: WH 50%, VC 65%, specVC 70%; zero-load 29/35/29 cycles.
func BenchmarkFigure14(b *testing.B) { benchFigure(b, "figure14") }

// BenchmarkFigure15 reproduces the 16-buffer, 4-VC curves.
// Paper: both VC routers saturate ≈70%.
func BenchmarkFigure15(b *testing.B) { benchFigure(b, "figure15") }

// BenchmarkFigure16 measures buffer turnaround per router kind.
// Paper: WH 4, VC 5, specVC 4, single-cycle 2 cycles.
func BenchmarkFigure16(b *testing.B) {
	var turns map[string]int64
	for i := 0; i < b.N; i++ {
		var err error
		turns, err = routersim.Turnarounds(benchProtocol())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, k := range experiments.SortedTurnaroundKeys(turns) {
		b.ReportMetric(float64(turns[k]), k+"_turnaround_cycles")
	}
}

// BenchmarkFigure17 reproduces the pipelined vs single-cycle comparison.
// Paper: single-cycle zero-load 16 cycles; single-cycle VC sat 65%.
func BenchmarkFigure17(b *testing.B) { benchFigure(b, "figure17") }

// BenchmarkFigure18 reproduces the credit-propagation-delay experiment.
// Paper: specVC saturation 55% → 45% when credits take 4 cycles.
func BenchmarkFigure18(b *testing.B) { benchFigure(b, "figure18") }

// ---------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md §6)
// ---------------------------------------------------------------------

func ablationConfig(kind router.Kind, vcs, buf int) sim.Config {
	rc := router.DefaultConfig(kind)
	rc.VCs = vcs
	rc.BufPerVC = buf
	return sim.Config{
		Net:            network.Config{K: 8, Router: rc, Seed: 1},
		WarmupCycles:   3000,
		MeasurePackets: 3000,
	}
}

func saturationOf(b *testing.B, cfg sim.Config) float64 {
	b.Helper()
	loads := []float64{0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75}
	pts, err := sim.SweepLoads(cfg, loads)
	if err != nil {
		b.Fatal(err)
	}
	return sim.SaturationLoad(pts, 140)
}

// BenchmarkAblationSpecPriority disables the non-speculative-over-
// speculative priority rule: the paper argues the rule is what makes
// speculation conservative.
func BenchmarkAblationSpecPriority(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig(router.SpeculativeVC, 2, 4)
		with = saturationOf(b, cfg)
		cfg.Net.Router.SpecPriority = false
		without = saturationOf(b, cfg)
	}
	b.ReportMetric(100*with, "with_priority_sat_pct")
	b.ReportMetric(100*without, "without_priority_sat_pct")
}

// BenchmarkAblationCreditPipeline sweeps the credit-processing pipeline
// depth of the speculative router (a continuous Figure 18).
func BenchmarkAblationCreditPipeline(b *testing.B) {
	sats := make([]float64, 4)
	for i := 0; i < b.N; i++ {
		for d := 0; d < 4; d++ {
			cfg := ablationConfig(router.SpeculativeVC, 2, 4)
			cfg.Net.Router.CreditProcess = d
			sats[d] = saturationOf(b, cfg)
		}
	}
	for d, s := range sats {
		b.ReportMetric(100*s, fmt.Sprintf("creditpipe%d_sat_pct", d))
	}
}

// BenchmarkAblationBuffers compares VC-count/buffer-depth splits at a
// fixed 16-flit input-port budget.
func BenchmarkAblationBuffers(b *testing.B) {
	splits := []struct {
		vcs, buf int
	}{{1, 16}, {2, 8}, {4, 4}, {8, 2}}
	sats := make([]float64, len(splits))
	for i := 0; i < b.N; i++ {
		for j, s := range splits {
			sats[j] = saturationOf(b, ablationConfig(router.SpeculativeVC, s.vcs, s.buf))
		}
	}
	for j, s := range splits {
		b.ReportMetric(100*sats[j], fmt.Sprintf("%dvcs_x_%dbufs_sat_pct", s.vcs, s.buf))
	}
}

// BenchmarkAblationArbiterPolicy swaps the matrix arbiters for
// round-robin and fixed-priority arbiters.
func BenchmarkAblationArbiterPolicy(b *testing.B) {
	policies := []struct {
		name string
		f    arbiter.Factory
	}{{"matrix", arbiter.MatrixFactory}, {"roundrobin", arbiter.RoundRobinFactory}, {"fixed", arbiter.FixedFactory}}
	sats := make([]float64, len(policies))
	for i := 0; i < b.N; i++ {
		for j, p := range policies {
			cfg := ablationConfig(router.SpeculativeVC, 2, 4)
			cfg.Net.Router.Arb = p.f
			sats[j] = saturationOf(b, cfg)
		}
	}
	for j, p := range policies {
		b.ReportMetric(100*sats[j], p.name+"_sat_pct")
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of hot paths
// ---------------------------------------------------------------------

func BenchmarkMatrixArbiterGrant(b *testing.B) {
	m := arbiter.NewMatrix(5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Grant(0b10111)
	}
}

func BenchmarkSeparableSwitchAllocate(b *testing.B) {
	s := allocator.NewSeparableSwitch(5, 2, nil)
	reqs := []allocator.SwitchRequest{
		{In: 0, VC: 0, Out: 3}, {In: 1, VC: 1, Out: 3},
		{In: 2, VC: 0, Out: 4}, {In: 3, VC: 1, Out: 0},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Allocate(reqs)
	}
}

func BenchmarkVCAllocatorAllocate(b *testing.B) {
	a := allocator.NewVCAllocator(5, 2, nil)
	reqs := []allocator.VCRequest{
		{In: 0, VC: 0, Out: 1, Candidates: 0b11},
		{In: 1, VC: 1, Out: 1, Candidates: 0b11},
		{In: 2, VC: 0, Out: 3, Candidates: 0b01},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Allocate(reqs)
	}
}

// benchCycles times steady-state Network.Step over a prebuilt config.
func benchCycles(b *testing.B, cfg network.Config, warm int64) {
	b.Helper()
	net, err := network.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(net.Close)
	for now := int64(0); now < warm; now++ {
		net.Step(now) // warm the network before timing
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Step(warm + int64(i))
	}
}

// BenchmarkNetworkCycle measures whole-network cycle cost (64 routers)
// at a moderate load — the simulator's inner loop.
func BenchmarkNetworkCycle(b *testing.B) {
	rc := router.DefaultConfig(router.SpeculativeVC)
	benchCycles(b, network.Config{K: 8, Router: rc, Seed: 1, InjectionRate: 0.4 * 0.5 / 5}, 2000)
}

// BenchmarkNetworkCycleAudit is the same network with the invariant
// auditor firing every 100 cycles — the amortized cost of a
// self-checking run. The audit-off benchmark above must stay at
// 0 allocs/op: with auditing disabled the only hot-path residue is
// two int64 counter increments.
func BenchmarkNetworkCycleAudit(b *testing.B) {
	rc := router.DefaultConfig(router.SpeculativeVC)
	benchCycles(b, network.Config{K: 8, Router: rc, Seed: 1, InjectionRate: 0.4 * 0.5 / 5, Audit: 100}, 2000)
}

// lowLoadCfg is a 1,024-router mesh at 5% load: the light-duty regime
// (zero-load latency points, sub-saturation saturation-search probes)
// where per-cycle cost should scale with in-flight work, not node
// count. TestNetworkStepZeroAllocLowLoad pins this exact config's
// steady-state allocation behaviour.
func lowLoadCfg(tb testing.TB) network.Config {
	tb.Helper()
	topo, err := topology.New("mesh:k=32", 0)
	if err != nil {
		tb.Fatal(err)
	}
	return network.Config{
		Topo:          topo,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          1,
		InjectionRate: 0.05 * topo.UniformCapacity() / 5,
	}
}

// BenchmarkNetworkCycleLowLoad measures the active-set scheduler where
// it matters: 1,024 routers, 5% load — only the few dozen routers with
// in-flight work are visited.
func BenchmarkNetworkCycleLowLoad(b *testing.B) {
	benchCycles(b, lowLoadCfg(b), 4000)
}

// BenchmarkNetworkCycleLowLoadFullScan is the same network on the
// legacy full-scan engine — the baseline the scheduler is measured
// against (every cycle pays 1,024 idle checks and 1,024 source steps).
func BenchmarkNetworkCycleLowLoadFullScan(b *testing.B) {
	cfg := lowLoadCfg(b)
	cfg.FullScan = true
	benchCycles(b, cfg, 4000)
}

// shardBenchCfg is a 4,096-router mesh at 30% load: large enough that
// the per-shard work dominates the per-window barrier, the regime the
// lookahead-sharded engine targets. The CI scaling smoke runs this same
// shape through netsim at shards=1 vs 4 and records wall-clock.
func shardBenchCfg(tb testing.TB) network.Config {
	tb.Helper()
	topo, err := topology.New("mesh:k=64", 0)
	if err != nil {
		tb.Fatal(err)
	}
	return network.Config{
		Topo:          topo,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          1,
		InjectionRate: 0.3 * topo.UniformCapacity() / 5,
	}
}

// shardBenchWarm: the 4,096-router ramp (in-flight population, packet
// pools, boundary rings reaching their high-water marks) takes several
// thousand cycles; timing from cycle 2,000 measured mid-ramp, where the
// network is still allocating and per-cycle work is still climbing.
// 8,000 cycles reaches the true steady state, so allocs/op reads 0 and
// ns/op is comparable across runs regardless of b.N.
const shardBenchWarm = 8000

// BenchmarkNetworkCycleSharded measures whole-network cycle cost with
// the network split into 4 lookahead shards stepping concurrently.
// On a multi-core machine this should approach a 4× speedup over
// BenchmarkNetworkCycleShardedBaseline; on one core it instead bounds
// the sharding overhead (window buffering + barrier exchange).
func BenchmarkNetworkCycleSharded(b *testing.B) {
	cfg := shardBenchCfg(b)
	cfg.Shards = 4
	benchCycles(b, cfg, shardBenchWarm)
}

// BenchmarkNetworkCycleShardedBaseline is the identical network on the
// single-range engine — the denominator of the scaling claim.
func BenchmarkNetworkCycleShardedBaseline(b *testing.B) {
	benchCycles(b, shardBenchCfg(b), shardBenchWarm)
}

// BenchmarkNetworkCycleShardedLowLoad composes the two scaling layers:
// the 1,024-router 5%-load mesh from BenchmarkNetworkCycleLowLoad,
// split into 4 lookahead shards. Each shard runs its own active-set
// scheduler — parked sources, wake wheel, shard-local quiescence skip —
// so per-cycle cost should track the in-flight work per shard, not node
// count, while the wide windows keep barrier crossings rare.
func BenchmarkNetworkCycleShardedLowLoad(b *testing.B) {
	cfg := lowLoadCfg(b)
	cfg.Shards = 4
	benchCycles(b, cfg, 4000)
}

// drainBench runs a complete ultra-low-load measurement through
// sim.Run on a 256-router mesh: at ~1 packet per source per 50,000
// cycles the run is dominated by quiescent gaps, zero-load warm-up
// idle, and the post-sample drain tail — exactly the spans the
// active-set engine's NextDue fast-forward collapses to a handful of
// stepped cycles.
func drainBench(b *testing.B, fullScan bool) {
	b.Helper()
	cfg := sim.Config{
		Net: network.Config{
			K:        16,
			Router:   router.DefaultConfig(router.SpeculativeVC),
			Seed:     1,
			FullScan: fullScan,
		},
		WarmupCycles:   10000,
		MeasurePackets: 100,
	}
	cfg.Net.InjectionRate = 0.00002
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "simulated_cycles")
}

// BenchmarkDrainTail measures the quiescence fast-forward on a
// drain-dominated run.
func BenchmarkDrainTail(b *testing.B) { drainBench(b, false) }

// BenchmarkDrainTailFullScan is the same run stepping every cycle.
func BenchmarkDrainTailFullScan(b *testing.B) { drainBench(b, true) }

// BenchmarkPipelineDesign measures the EQ-1 packer in its hot-sweep
// shape: one reused core.Packer across design points (the form the
// Figure 11/12 grids and the harness's per-scenario delay model use).
// A warm packer must not touch the heap.
func BenchmarkPipelineDesign(b *testing.B) {
	params := core.PaperParams()
	var pk core.Packer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pk.Design(core.SpeculativeVC, params, core.DefaultSpecOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
