// Allocation-regression tests: the simulator's steady-state hot paths
// must not touch the heap. These lock in the zero-allocation cycle
// engine — a regression here multiplies into every load sweep.
package routersim_test

import (
	"testing"

	"routersim/internal/allocator"
	"routersim/internal/arbiter"
	"routersim/internal/link"
	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/stats"
	"routersim/internal/topology"
	"routersim/internal/traffic"
)

// warmNetwork builds the benchmark network and steps it past warmup so
// every pool, ring, and scratch buffer has reached steady-state size.
func warmNetwork(t *testing.T, cycles int64) (*network.Network, int64) {
	t.Helper()
	rc := router.DefaultConfig(router.SpeculativeVC)
	cfg := network.Config{K: 8, Router: rc, Seed: 1, InjectionRate: 0.4 * 0.5 / 5}
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	for ; now < cycles; now++ {
		net.Step(now)
	}
	return net, now
}

// TestNetworkStepZeroAlloc: a steady-state Network.Step performs zero
// heap allocations — packets come from the pool, flit slices are
// reused, wires and FIFOs never grow, allocators return scratch. The
// default engine is the active-set scheduler, so this also pins its
// worklists (active/carry lists, wake wheel, source heap) at their
// steady-state sizes.
func TestNetworkStepZeroAlloc(t *testing.T) {
	net, now := warmNetwork(t, 6000)
	allocs := testing.AllocsPerRun(400, func() {
		net.Step(now)
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state Network.Step allocates %.2f times per cycle, want 0", allocs)
	}
}

// TestNetworkStepZeroAllocLowLoad extends the invariant to the regime
// the active-set scheduler exists for: a 1,024-router mesh at 5% load,
// where sources park and wake constantly and the worklists churn every
// cycle. Growth of any scheduler structure past warm-up would show here.
func TestNetworkStepZeroAllocLowLoad(t *testing.T) {
	// The exact config BenchmarkNetworkCycleLowLoad times, so the test
	// pins the benchmark's allocation behaviour.
	net, err := network.New(lowLoadCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	warm := int64(4000)
	if testing.Short() {
		warm = 2000
	}
	for ; now < warm; now++ {
		net.Step(now)
	}
	allocs := testing.AllocsPerRun(400, func() {
		net.Step(now)
		now++
	})
	if allocs != 0 {
		t.Fatalf("low-load active-set Network.Step allocates %.2f times per cycle, want 0", allocs)
	}
}

// TestNetworkStepZeroAllocSharded extends the invariant to the sharded
// engine's steady state: per-shard packet pools stay balanced (a
// finished packet returns to its source's shard), the boundary
// outbox/inbox rings and replay buffers are presized and compacted in
// place, and the barrier posts wakes through prebuilt closures — so a
// steady-state sharded Step, barriers included, performs zero heap
// allocations, matching the serial engine's gate above.
func TestNetworkStepZeroAllocSharded(t *testing.T) {
	rc := router.DefaultConfig(router.SpeculativeVC)
	cfg := network.Config{
		K:             16,
		Router:        rc,
		Seed:          1,
		InjectionRate: 0.3 * 0.5 / 5,
		Shards:        4,
	}
	net, err := network.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	now := int64(0)
	warm := int64(8000)
	if testing.Short() {
		warm = 4000
	}
	for ; now < warm; now++ {
		net.Step(now)
	}
	allocs := testing.AllocsPerRun(400, func() {
		net.Step(now)
		now++
	})
	if allocs != 0 {
		t.Fatalf("steady-state sharded Network.Step allocates %.2f times per cycle, want 0", allocs)
	}
}

// TestNetworkStepZeroAllocCrossTopology extends the zero-allocation
// invariant to every topology family the graph-general layer added:
// ring, 3-D torus, and hypercube steady-state cycles must also stay off
// the heap (same pools and tables, different graphs and port counts).
func TestNetworkStepZeroAllocCrossTopology(t *testing.T) {
	for _, spec := range []string{"ring:16", "torus:k=4,n=3", "hypercube:16"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			topo, err := topology.New(spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			rc := router.DefaultConfig(router.SpeculativeVC)
			// 15% of capacity: comfortably below saturation on every
			// wraparound topology (dateline classes halve the usable
			// VCs), so the packet pool and source queues reach a steady
			// state instead of growing without bound.
			cfg := network.Config{
				Topo:          topo,
				Router:        rc,
				Seed:          1,
				InjectionRate: 0.15 * topo.UniformCapacity() / 5,
			}
			net, err := network.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			now := int64(0)
			for ; now < 6000; now++ {
				net.Step(now)
			}
			allocs := testing.AllocsPerRun(400, func() {
				net.Step(now)
				now++
			})
			if allocs != 0 {
				t.Fatalf("%s: steady-state Network.Step allocates %.2f times per cycle, want 0", spec, allocs)
			}
		})
	}
}

// TestNetworkStepZeroAllocWorkloads extends the zero-allocation
// invariant to the bursty arrival processes, size distributions, and
// per-router heterogeneity: MMPP on/off bursts (dwell lengths are
// pre-sampled at each state entry), batch releases (a pending counter,
// not a queue), per-packet size draws into pooled packets, and
// heterogeneous VC/buffer/link-delay overrides (the wake wheel is sized
// at build time) must all run their steady state off the heap.
func TestNetworkStepZeroAllocWorkloads(t *testing.T) {
	cases := []struct {
		name, source, sizes, overrides string
	}{
		{"mmpp", "mmpp:on=20,off=60", "", ""},
		{"batch", "batch:size=4", "", ""},
		{"mmpp-bimodal", "mmpp:on=30,off=50", "bimodal:small=1,large=9,p=0.1", ""},
		{"hetero", "", "uniform:min=1,max=9", "0:vcs=4,buf=8;10:delay=3"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			src, err := traffic.ParseSource(tc.source)
			if err != nil {
				t.Fatal(err)
			}
			var sizer traffic.Sizer
			if tc.sizes != "" {
				if sizer, err = traffic.ParseSizes(tc.sizes); err != nil {
					t.Fatal(err)
				}
			}
			var ovs []network.RouterOverride
			if tc.overrides != "" {
				if ovs, err = network.ParseOverrides(tc.overrides, 64); err != nil {
					t.Fatal(err)
				}
			}
			rc := router.DefaultConfig(router.SpeculativeVC)
			cfg := network.Config{
				K: 8, Router: rc, Seed: 1,
				InjectionRate: 0.2 * 0.5 / 5,
				Source:        src,
				Sizes:         sizer,
				Overrides:     ovs,
			}
			net, err := network.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			now := int64(0)
			for ; now < 6000; now++ {
				net.Step(now)
			}
			allocs := testing.AllocsPerRun(400, func() {
				net.Step(now)
				now++
			})
			if allocs != 0 {
				t.Fatalf("%s: steady-state Network.Step allocates %.2f times per cycle, want 0", tc.name, allocs)
			}
		})
	}
}

// TestWireZeroAlloc: pushing and draining a wire at link bandwidth never
// allocates (the ring is preallocated from delay+bandwidth).
func TestWireZeroAlloc(t *testing.T) {
	w := link.NewWire[int](4)
	now := int64(0)
	allocs := testing.AllocsPerRun(400, func() {
		w.Push(now, int(now))
		for _, ok := w.Pop(now); ok; _, ok = w.Pop(now) {
		}
		now++
	})
	if allocs != 0 {
		t.Fatalf("Wire push/drain allocates %.2f times per cycle, want 0", allocs)
	}
}

// TestStreamAddZeroAlloc: the streaming latency accumulator's hot Add
// path — called once per tagged packet, for every job of a matrix —
// must never touch the heap (its histogram is a fixed-size array), and
// the batch-means accumulator must stay allocation-free once its
// preallocated batch slice is sized.
func TestStreamAddZeroAlloc(t *testing.T) {
	s := stats.NewStream()
	v := int64(1)
	allocs := testing.AllocsPerRun(1000, func() {
		v = (v*6364136223846793005 + 1442695040888963407) % 100000
		if v < 0 {
			v = -v
		}
		s.Add(v)
	})
	if allocs != 0 {
		t.Errorf("Stream.Add allocates %.2f times per sample, want 0", allocs)
	}

	// Unit batches force the pair-collapse path to run repeatedly
	// during the 1000+ observations: collapsing must also be heap-free.
	b := stats.NewBatchMeans(1)
	x := 0.0
	allocs = testing.AllocsPerRun(1000, func() {
		x += 1.5
		b.Add(x)
	})
	if allocs != 0 {
		t.Errorf("BatchMeans.Add allocates %.2f times per observation, want 0", allocs)
	}
}

// TestAllocatorZeroAlloc covers the three allocator micro-bench paths:
// matrix arbiter grant, separable switch allocation, VC allocation.
func TestAllocatorZeroAlloc(t *testing.T) {
	m := arbiter.NewMatrix(5)
	if allocs := testing.AllocsPerRun(400, func() { m.Grant(0b10111) }); allocs != 0 {
		t.Errorf("Matrix.Grant allocates %.2f times per call, want 0", allocs)
	}

	s := allocator.NewSeparableSwitch(5, 2, nil)
	swReqs := []allocator.SwitchRequest{
		{In: 0, VC: 0, Out: 3}, {In: 1, VC: 1, Out: 3},
		{In: 2, VC: 0, Out: 4}, {In: 3, VC: 1, Out: 0},
	}
	if allocs := testing.AllocsPerRun(400, func() { s.Allocate(swReqs) }); allocs != 0 {
		t.Errorf("SeparableSwitch.Allocate allocates %.2f times per call, want 0", allocs)
	}

	a := allocator.NewVCAllocator(5, 2, nil)
	vaReqs := []allocator.VCRequest{
		{In: 0, VC: 0, Out: 1, Candidates: 0b11},
		{In: 1, VC: 1, Out: 1, Candidates: 0b11},
		{In: 2, VC: 0, Out: 3, Candidates: 0b01},
	}
	if allocs := testing.AllocsPerRun(400, func() { a.Allocate(vaReqs) }); allocs != 0 {
		t.Errorf("VCAllocator.Allocate allocates %.2f times per call, want 0", allocs)
	}
}
