package routersim

import (
	"fmt"
	"io"

	"routersim/internal/experiments"
)

// Protocol selects the measurement scale when reproducing the paper's
// figures.
type Protocol = experiments.Protocol

// PaperProtocol is the paper's full protocol: 10,000 warm-up cycles and
// 100,000 tagged packets per load point.
func PaperProtocol() Protocol { return experiments.PaperProtocol() }

// QuickProtocol is a scaled-down protocol with the same curve shapes,
// suitable for tests and benchmarks.
func QuickProtocol() Protocol { return experiments.QuickProtocol() }

// FigureResult is one regenerated figure of the paper.
type FigureResult = experiments.FigureResult

// Reproduce regenerates a simulated figure of the paper by id:
// "figure13", "figure14", "figure15", "figure17", or "figure18".
// (Table 1 and Figures 11, 12 are analytic; see Table1 and
// DesignPipeline. Figure 16's turnaround measurement is available via
// Turnarounds.)
func Reproduce(id string, pr Protocol) (FigureResult, error) {
	switch id {
	case "figure13":
		return experiments.Figure13(pr)
	case "figure14":
		return experiments.Figure14(pr)
	case "figure15":
		return experiments.Figure15(pr)
	case "figure17":
		return experiments.Figure17(pr)
	case "figure18":
		return experiments.Figure18(pr)
	default:
		return FigureResult{}, fmt.Errorf("routersim: unknown figure %q (want figure13/14/15/17/18)", id)
	}
}

// Turnarounds measures the buffer-turnaround time of each router kind
// under congestion (Figure 16 / Section 5.2). Expected: wormhole 4,
// vc 5, specvc 4, single-cycle 2 cycles.
func Turnarounds(pr Protocol) (map[string]int64, error) {
	return experiments.Figure16Turnaround(pr)
}

// SaturationPoint is one adaptive saturation-search outcome for a
// paper router configuration.
type SaturationPoint = experiments.SaturationPoint

// SaturationTable locates the saturation point of each Figure 13
// router configuration by adaptive bisection (FindSaturation) at the
// given load resolution, instead of sweeping a fixed grid.
func SaturationTable(pr Protocol, step float64) ([]SaturationPoint, error) {
	return experiments.Saturations(pr, step)
}

// WriteSaturationTable renders a SaturationTable as text.
func WriteSaturationTable(w io.Writer, pts []SaturationPoint) error {
	return experiments.WriteSaturations(w, pts)
}

// WriteFigure renders a figure as a text table plus an ASCII plot.
func WriteFigure(w io.Writer, fig FigureResult) error {
	if err := experiments.WriteTable(w, fig); err != nil {
		return err
	}
	return experiments.PlotASCII(w, fig)
}

// WriteFigureCSV renders a figure's series as CSV.
func WriteFigureCSV(w io.Writer, fig FigureResult) error {
	return experiments.WriteCSV(w, fig)
}
