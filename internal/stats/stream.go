package stats

import (
	"math"
	"math/bits"
)

// Stream bin layout: values below 2^streamSubBits are counted exactly
// (one bin per value); above that, each power-of-two octave is split
// into 2^streamSubBits log-spaced sub-bins, bounding the relative
// quantile error at 2^-streamSubBits (≈1.6% at 6 sub-bits). Count, sum,
// min, and max are tracked exactly, so Mean and Max carry no binning
// error at all — only the percentiles are approximate.
const (
	streamSubBits = 6
	streamSubBins = 1 << streamSubBits
	// 63-bit values span octaves streamSubBits..62, one linear block
	// plus one block per octave above it.
	streamBins = streamSubBins * (64 - streamSubBits)
)

// Stream accumulates latency samples into a fixed-size log-binned
// histogram: O(1) memory however many samples arrive, with a hot Add
// path that never allocates. It is the measurement engine's default
// accumulator; the exact-sample Latency is retained for bit-identical
// paper-figure reproduction.
type Stream struct {
	bins  [streamBins]int64
	count int64
	sum   int64
	min   int64
	max   int64
}

// NewStream returns an empty streaming accumulator.
func NewStream() *Stream { return &Stream{} }

// streamBin maps a sample to its bin index.
func streamBin(v int64) int {
	u := uint64(v)
	if u < streamSubBins {
		return int(u)
	}
	msb := bits.Len64(u) - 1
	sub := int(u>>(uint(msb)-streamSubBits)) - streamSubBins
	return (msb-streamSubBits+1)*streamSubBins + sub
}

// streamRep returns a bin's representative value: exact below the
// linear/log boundary, the bin midpoint above it.
func streamRep(bin int) int64 {
	if bin < streamSubBins {
		return int64(bin)
	}
	octave := bin/streamSubBins - 1 + streamSubBits
	sub := bin % streamSubBins
	width := int64(1) << (uint(octave) - streamSubBits)
	lo := int64(1)<<uint(octave) + int64(sub)*width
	return lo + width>>1
}

// Add implements Accumulator. Negative samples are clamped to 0 (the
// simulator never produces them; the clamp keeps the bin index safe).
func (s *Stream) Add(cycles int64) {
	if cycles < 0 {
		cycles = 0
	}
	if s.count == 0 || cycles < s.min {
		s.min = cycles
	}
	if cycles > s.max {
		s.max = cycles
	}
	s.count++
	s.sum += cycles
	s.bins[streamBin(cycles)]++
}

// Count implements Accumulator.
func (s *Stream) Count() int { return int(s.count) }

// Mean implements Accumulator; it is exact (tracked as a running sum).
func (s *Stream) Mean() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return float64(s.sum) / float64(s.count)
}

// Max implements Accumulator; it is exact.
func (s *Stream) Max() int64 { return s.max }

// Min returns the smallest sample (exact), or 0 with no samples.
func (s *Stream) Min() int64 { return s.min }

// Percentile implements Accumulator by nearest rank over the binned
// distribution. The extreme ranks return the exactly-tracked min and
// max; interior ranks carry the bin's relative error (≤ 2^-6 ≈ 1.6%)
// and are clamped into [min, max], so the reported quantiles can never
// order impossibly against the exact extremes (e.g. p50 > max on a
// tightly clustered sample whose bin midpoint lies above every value).
func (s *Stream) Percentile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	rank := int64(nearestRank(q, int(s.count)))
	if rank <= 1 {
		return s.min
	}
	if rank >= s.count {
		return s.max
	}
	cum := int64(0)
	for b, n := range s.bins {
		cum += n
		if cum >= rank {
			rep := streamRep(b)
			if rep < s.min {
				rep = s.min
			}
			if rep > s.max {
				rep = s.max
			}
			return rep
		}
	}
	return s.max // unreachable: bins sum to count
}
