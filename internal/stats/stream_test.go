package stats

import (
	"math"
	"testing"
)

// TestNearestRankSmallN pins the standard nearest-rank formula ⌈q·n⌉ on
// the small sample sizes where it disagrees with the previous
// `int(q·(n−1)+0.5)` rank. Each case lists both expectations so the
// table documents exactly where the old formula was nonstandard.
func TestNearestRankSmallN(t *testing.T) {
	cases := []struct {
		n       int
		q       float64
		want    int // 1-based nearest rank ⌈q·n⌉
		oldRank int // what the old formula picked (1-based), for the record
	}{
		{n: 1, q: 0.5, want: 1, oldRank: 1},
		{n: 2, q: 0.5, want: 1, oldRank: 2}, // disagrees
		{n: 3, q: 0.5, want: 2, oldRank: 2},
		{n: 4, q: 0.5, want: 2, oldRank: 3},  // disagrees
		{n: 4, q: 0.25, want: 1, oldRank: 2}, // disagrees
		{n: 5, q: 0.95, want: 5, oldRank: 5},
		{n: 10, q: 0.95, want: 10, oldRank: 10},
		{n: 20, q: 0.95, want: 19, oldRank: 19},
		{n: 21, q: 0.95, want: 20, oldRank: 20},
		{n: 100, q: 0.95, want: 95, oldRank: 95},
		{n: 100, q: 0.5, want: 50, oldRank: 51}, // disagrees
		{n: 100, q: 0, want: 1, oldRank: 1},
		{n: 100, q: 1, want: 100, oldRank: 100},
		{n: 3, q: 1.0 / 3.0, want: 1, oldRank: 2}, // disagrees
		{n: 3, q: 2.0 / 3.0, want: 2, oldRank: 2}, // ⌈q·n⌉ must not float up to 3
	}
	for _, c := range cases {
		if got := nearestRank(c.q, c.n); got != c.want {
			t.Errorf("nearestRank(%v, %d) = %d, want %d", c.q, c.n, got, c.want)
		}
		// Sanity-check the documented old rank so the table stays honest.
		old := int(c.q*float64(c.n-1) + 0.5)
		if old < 0 {
			old = 0
		}
		if old >= c.n {
			old = c.n - 1
		}
		if old+1 != c.oldRank {
			t.Errorf("case n=%d q=%v: documented oldRank %d, formula gives %d", c.n, c.q, c.oldRank, old+1)
		}
	}
}

// TestLatencyPercentileNearestRank applies the rank table through the
// exact accumulator on distinguishable samples.
func TestLatencyPercentileNearestRank(t *testing.T) {
	var l Latency
	for i := int64(1); i <= 4; i++ {
		l.Add(i * 10)
	}
	cases := []struct {
		q    float64
		want int64
	}{{0, 10}, {0.25, 10}, {0.5, 20}, {0.75, 30}, {0.95, 40}, {1, 40}}
	for _, c := range cases {
		if got := l.Percentile(c.q); got != c.want {
			t.Errorf("P%v of {10,20,30,40} = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	s := NewStream()
	if !math.IsNaN(s.Mean()) {
		t.Error("empty stream mean should be NaN")
	}
	if s.Count() != 0 || s.Max() != 0 || s.Percentile(0.5) != 0 {
		t.Errorf("empty stream not zero-valued: count=%d max=%d p50=%d", s.Count(), s.Max(), s.Percentile(0.5))
	}
}

// TestStreamExactBelowLinearBoundary: values below 2^6 occupy one bin
// each, so every quantile is exact there.
func TestStreamExactBelowLinearBoundary(t *testing.T) {
	s := NewStream()
	var l Latency
	for i := int64(1); i <= 63; i++ {
		s.Add(i)
		l.Add(i)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		if got, want := s.Percentile(q), l.Percentile(q); got != want {
			t.Errorf("P%v = %d, want exact %d", q, got, want)
		}
	}
	if s.Mean() != l.Mean() || s.Max() != l.Max() || s.Count() != l.Count() {
		t.Errorf("stream moments diverge from exact: mean %v/%v max %d/%d",
			s.Mean(), l.Mean(), s.Max(), l.Max())
	}
}

// TestStreamQuantileTolerance: above the linear range, quantiles must
// stay within one sub-bin (2^-6 relative) of the exact value, while
// mean, max, and min stay exact.
func TestStreamQuantileTolerance(t *testing.T) {
	s := NewStream()
	var l Latency
	// Deterministic skewed samples spanning several octaves.
	v := int64(1)
	for i := 0; i < 10000; i++ {
		v = (v*2862933555777941757 + 3037000493) % 200000
		if v < 0 {
			v = -v
		}
		s.Add(v)
		l.Add(v)
	}
	if s.Mean() != l.Mean() || s.Max() != l.Max() {
		t.Fatalf("exact moments diverged: mean %v/%v max %d/%d", s.Mean(), l.Mean(), s.Max(), l.Max())
	}
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99} {
		exact := float64(l.Percentile(q))
		got := float64(s.Percentile(q))
		tol := exact/64 + 1 // one sub-bin of relative error
		if math.Abs(got-exact) > tol {
			t.Errorf("P%v = %v, want %v ± %v", q, got, exact, tol)
		}
	}
	if s.Percentile(0) != l.Percentile(0) || s.Percentile(1) != l.Percentile(1) {
		t.Errorf("extreme ranks should be exact: min %d/%d max %d/%d",
			s.Percentile(0), l.Percentile(0), s.Percentile(1), l.Percentile(1))
	}
}

// TestStreamPercentileClamped: a tightly clustered sample must never
// report an interior percentile outside the exact [min, max] — bin
// midpoints above the true max would otherwise order impossibly
// (p50 > max_latency) in serialized output.
func TestStreamPercentileClamped(t *testing.T) {
	s := NewStream()
	for i := 0; i < 100; i++ {
		s.Add(1000) // bin [1000, 1008): midpoint 1004 > max
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := s.Percentile(q); got != 1000 {
			t.Errorf("P%v of 100×{1000} = %d, want 1000", q, got)
		}
	}
	s2 := NewStream()
	s2.Add(1000)
	s2.Add(1001)
	for _, q := range []float64{0.25, 0.5, 0.75} {
		if got := s2.Percentile(q); got < 1000 || got > 1001 {
			t.Errorf("P%v of {1000,1001} = %d, want within [1000, 1001]", q, got)
		}
	}
}

// TestStreamBinRoundTrip: every bin's representative value must map
// back into the bin that produced it, across the whole value range.
func TestStreamBinRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, 63, 64, 65, 127, 128, 1000, 1 << 20, 1<<40 + 12345, 1<<62 + 99} {
		bin := streamBin(v)
		rep := streamRep(bin)
		if got := streamBin(rep); got != bin {
			t.Errorf("value %d: bin %d rep %d maps back to bin %d", v, bin, rep, got)
		}
		if rel := math.Abs(float64(rep-v)) / math.Max(float64(v), 1); rel > 1.0/64+1e-9 {
			t.Errorf("value %d: representative %d off by %.3f relative, want ≤ 1/64", v, rep, rel)
		}
	}
}

func TestBatchMeansCI(t *testing.T) {
	b := NewBatchMeans(10)
	if _, _, ok := b.CI(); ok {
		t.Error("empty accumulator must not report a CI")
	}
	// Constant observations: zero-width interval.
	for i := 0; i < 100; i++ {
		b.Add(42)
	}
	if b.Batches() != 10 {
		t.Fatalf("batches = %d, want 10", b.Batches())
	}
	mean, half, ok := b.CI()
	if !ok || mean != 42 || half != 0 {
		t.Errorf("constant series CI = %v ± %v (ok=%t), want 42 ± 0", mean, half, ok)
	}

	// Alternating batches of 0s and 10s: batch means alternate 0/10,
	// mean 5, batch std √(100/9·...) — just assert the bracket is sane
	// and covers the mean.
	b2 := NewBatchMeans(5)
	for i := 0; i < 100; i++ {
		if (i/5)%2 == 0 {
			b2.Add(0)
		} else {
			b2.Add(10)
		}
	}
	mean2, half2, ok2 := b2.CI()
	if !ok2 || mean2 != 5 || half2 <= 0 {
		t.Errorf("alternating series CI = %v ± %v (ok=%t), want mean 5 with positive width", mean2, half2, ok2)
	}
}

// TestBatchMeansPartialBatchExcluded: a trailing partial batch must not
// contribute (it would bias the variance).
func TestBatchMeansPartialBatchExcluded(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 25; i++ {
		b.Add(1)
	}
	if b.Batches() != 2 {
		t.Errorf("batches = %d, want 2 (partial third excluded)", b.Batches())
	}
	mean, _, ok := b.CI()
	if !ok || mean != 1 {
		t.Errorf("CI over complete batches = %v (ok=%t), want 1", mean, ok)
	}
}

// TestBatchMeansCollapse: past the batch cap, adjacent batches collapse
// pairwise into doubled-length batches — the batch count stays within
// [maxBatches/2, maxBatches] for any observation count, the mean is
// exactly preserved, and long runs get longer (less correlated)
// batches rather than a 1/√k-shrinking interval over correlated ones.
func TestBatchMeansCollapse(t *testing.T) {
	b := NewBatchMeans(1)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := float64(i % 7)
		sum += v
		b.Add(v)
	}
	if got := b.Batches(); got < maxBatches/2 || got > maxBatches {
		t.Fatalf("batches = %d, want within [%d, %d] after collapsing", got, maxBatches/2, maxBatches)
	}
	if b.BatchSize() <= 1 {
		t.Errorf("batch size %d should have doubled past the cap", b.BatchSize())
	}
	mean, half, ok := b.CI()
	if !ok {
		t.Fatal("no CI after 100k observations")
	}
	// Completed batches cover batches*size observations; their mean
	// must exactly equal the mean of that covered prefix.
	covered := int(b.BatchSize()) * b.Batches()
	var prefix float64
	for i := 0; i < covered; i++ {
		prefix += float64(i % 7)
	}
	prefix /= float64(covered)
	if math.Abs(mean-prefix) > 1e-9 {
		t.Errorf("collapsed mean %v != covered-prefix mean %v", mean, prefix)
	}
	if half <= 0 || half > 1 {
		t.Errorf("CI half-width %v implausible for a bounded periodic series", half)
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 2: 4.303, 30: 2.042, 31: 1.96, 1000: 1.96}
	for df, want := range cases {
		if got := tCritical95(df); got != want {
			t.Errorf("t(df=%d) = %v, want %v", df, got, want)
		}
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Error("df=0 should be unusable (infinite width)")
	}
}
