// Package stats collects the simulator's measurements: packet latency
// distributions, accepted throughput, and the buffer-turnaround probe
// used to validate the credit-loop timing of Figure 16.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator is a sink for per-packet latency samples (cycles). Two
// implementations exist: Latency stores every sample for exact
// percentiles (the paper-figure reproduction mode), Stream folds samples
// into a log-binned histogram with O(1) memory for large matrices.
type Accumulator interface {
	// Add records one sample. Samples must be >= 0.
	Add(cycles int64)
	// Count returns the number of samples.
	Count() int
	// Mean returns the average latency, or NaN with no samples.
	Mean() float64
	// Max returns the largest sample.
	Max() int64
	// Percentile returns the q-quantile (0 <= q <= 1) by nearest rank.
	Percentile(q float64) int64
}

// Latency accumulates per-packet latency samples (cycles), storing every
// sample: percentiles are exact. For memory-bounded accumulation over
// large job matrices use Stream instead.
type Latency struct {
	samples []int64
	sum     int64
	max     int64
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(cycles int64) {
	l.samples = append(l.samples, cycles)
	l.sum += cycles
	if cycles > l.max {
		l.max = cycles
	}
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average latency, or NaN with no samples.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return math.NaN()
	}
	return float64(l.sum) / float64(len(l.samples))
}

// Max returns the largest sample.
func (l *Latency) Max() int64 { return l.max }

// Percentile returns the q-quantile (0 ≤ q ≤ 1) by the standard
// nearest-rank definition: the smallest sample with at least ⌈q·n⌉
// samples at or below it.
func (l *Latency) Percentile(q float64) int64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	return l.samples[nearestRank(q, len(l.samples))-1]
}

// nearestRank returns the 1-based nearest rank ⌈q·n⌉ clamped to [1, n].
// The epsilon absorbs float dust: 0.95·100 must rank 95, not 96, even
// though float64(0.95)·100 lands a hair above 95.
func nearestRank(q float64, n int) int {
	rank := int(math.Ceil(q*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Histogram buckets the samples for distribution reports.
func (l *Latency) Histogram(bucketWidth int64) map[int64]int {
	h := make(map[int64]int)
	for _, s := range l.samples {
		h[(s/bucketWidth)*bucketWidth]++
	}
	return h
}

// Throughput measures accepted traffic: flits ejected per node per cycle
// over a measurement window.
type Throughput struct {
	flits  int64
	nodes  int
	start  int64
	end    int64
	opened bool
}

// NewThroughput returns a meter over the given number of nodes.
func NewThroughput(nodes int) *Throughput { return &Throughput{nodes: nodes} }

// Open starts the measurement window at the given cycle.
func (t *Throughput) Open(cycle int64) { t.start, t.opened = cycle, true }

// Eject records one ejected flit at the given cycle (counted only inside
// the window).
func (t *Throughput) Eject(cycle int64) {
	if t.opened && cycle >= t.start {
		t.flits++
		if cycle > t.end {
			t.end = cycle
		}
	}
}

// Flits returns the flits counted inside the window so far.
func (t *Throughput) Flits() int64 { return t.flits }

// Close fixes the end of the window.
func (t *Throughput) Close(cycle int64) {
	if cycle > t.end {
		t.end = cycle
	}
}

// FlitsPerNodeCycle returns accepted throughput in flits/node/cycle.
func (t *Throughput) FlitsPerNodeCycle() float64 {
	cycles := t.end - t.start
	if !t.opened || cycles <= 0 || t.nodes == 0 {
		return 0
	}
	return float64(t.flits) / float64(cycles) / float64(t.nodes)
}

// Turnaround records buffer reuse intervals for one monitored buffer
// slot: the cycles between a credit being freed (flit read out) and the
// next flit occupying the same slot — the buffer turnaround time of
// Figure 16.
type Turnaround struct {
	intervals []int64
}

// Record adds one observed turnaround interval.
func (t *Turnaround) Record(cycles int64) { t.intervals = append(t.intervals, cycles) }

// Min returns the smallest observed turnaround, or 0 with no samples.
// The minimum is the architectural turnaround: larger samples include
// queueing idle time on top of the credit loop.
func (t *Turnaround) Min() int64 {
	if len(t.intervals) == 0 {
		return 0
	}
	m := t.intervals[0]
	for _, v := range t.intervals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Count returns the number of recorded intervals.
func (t *Turnaround) Count() int { return len(t.intervals) }

// Summary is a compact, printable result view. The json tags keep the
// harness's serialized payloads in one consistent snake_case schema.
type Summary struct {
	MeanLatency float64 `json:"mean_latency"`
	// MeanCI is the 95% batch-means confidence half-width on the mean
	// latency, in cycles (0 when too few batches completed to estimate).
	MeanCI     float64 `json:"mean_ci,omitempty"`
	P50        int64   `json:"p50"`
	P95        int64   `json:"p95"`
	MaxLatency int64   `json:"max_latency"`
	Packets    int     `json:"packets"`
	// Censored counts tagged packets still undrained when the run hit
	// its cycle cap. A censored summary is biased low: the slowest
	// packets are missing from the sample, so the latency columns must
	// be read as a lower bound (renderers show such points as
	// saturated, not as valid latencies).
	Censored int     `json:"censored,omitempty"`
	Accepted float64 `json:"accepted"` // flits/node/cycle
}

// String renders the summary on one line.
func (s Summary) String() string {
	ci := ""
	if s.MeanCI > 0 {
		ci = fmt.Sprintf("±%.1f ", s.MeanCI)
	}
	censored := ""
	if s.Censored > 0 {
		censored = fmt.Sprintf(" censored=%d", s.Censored)
	}
	return fmt.Sprintf("packets=%d latency mean=%.1f %sp50=%d p95=%d max=%d%s accepted=%.4f flits/node/cycle",
		s.Packets, s.MeanLatency, ci, s.P50, s.P95, s.MaxLatency, censored, s.Accepted)
}
