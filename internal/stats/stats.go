// Package stats collects the simulator's measurements: packet latency
// distributions, accepted throughput, and the buffer-turnaround probe
// used to validate the credit-loop timing of Figure 16.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Latency accumulates per-packet latency samples (cycles).
type Latency struct {
	samples []int64
	sum     int64
	max     int64
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(cycles int64) {
	l.samples = append(l.samples, cycles)
	l.sum += cycles
	if cycles > l.max {
		l.max = cycles
	}
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average latency, or NaN with no samples.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return math.NaN()
	}
	return float64(l.sum) / float64(len(l.samples))
}

// Max returns the largest sample.
func (l *Latency) Max() int64 { return l.max }

// Percentile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank.
func (l *Latency) Percentile(q float64) int64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
	idx := int(q*float64(len(l.samples)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(l.samples) {
		idx = len(l.samples) - 1
	}
	return l.samples[idx]
}

// Histogram buckets the samples for distribution reports.
func (l *Latency) Histogram(bucketWidth int64) map[int64]int {
	h := make(map[int64]int)
	for _, s := range l.samples {
		h[(s/bucketWidth)*bucketWidth]++
	}
	return h
}

// Throughput measures accepted traffic: flits ejected per node per cycle
// over a measurement window.
type Throughput struct {
	flits  int64
	nodes  int
	start  int64
	end    int64
	opened bool
}

// NewThroughput returns a meter over the given number of nodes.
func NewThroughput(nodes int) *Throughput { return &Throughput{nodes: nodes} }

// Open starts the measurement window at the given cycle.
func (t *Throughput) Open(cycle int64) { t.start, t.opened = cycle, true }

// Eject records one ejected flit at the given cycle (counted only inside
// the window).
func (t *Throughput) Eject(cycle int64) {
	if t.opened && cycle >= t.start {
		t.flits++
		if cycle > t.end {
			t.end = cycle
		}
	}
}

// Close fixes the end of the window.
func (t *Throughput) Close(cycle int64) {
	if cycle > t.end {
		t.end = cycle
	}
}

// FlitsPerNodeCycle returns accepted throughput in flits/node/cycle.
func (t *Throughput) FlitsPerNodeCycle() float64 {
	cycles := t.end - t.start
	if !t.opened || cycles <= 0 || t.nodes == 0 {
		return 0
	}
	return float64(t.flits) / float64(cycles) / float64(t.nodes)
}

// Turnaround records buffer reuse intervals for one monitored buffer
// slot: the cycles between a credit being freed (flit read out) and the
// next flit occupying the same slot — the buffer turnaround time of
// Figure 16.
type Turnaround struct {
	intervals []int64
}

// Record adds one observed turnaround interval.
func (t *Turnaround) Record(cycles int64) { t.intervals = append(t.intervals, cycles) }

// Min returns the smallest observed turnaround, or 0 with no samples.
// The minimum is the architectural turnaround: larger samples include
// queueing idle time on top of the credit loop.
func (t *Turnaround) Min() int64 {
	if len(t.intervals) == 0 {
		return 0
	}
	m := t.intervals[0]
	for _, v := range t.intervals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Count returns the number of recorded intervals.
func (t *Turnaround) Count() int { return len(t.intervals) }

// Summary is a compact, printable result view. The json tags keep the
// harness's serialized payloads in one consistent snake_case schema.
type Summary struct {
	MeanLatency float64 `json:"mean_latency"`
	P50         int64   `json:"p50"`
	P95         int64   `json:"p95"`
	MaxLatency  int64   `json:"max_latency"`
	Packets     int     `json:"packets"`
	Accepted    float64 `json:"accepted"` // flits/node/cycle
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("packets=%d latency mean=%.1f p50=%d p95=%d max=%d accepted=%.4f flits/node/cycle",
		s.Packets, s.MeanLatency, s.P50, s.P95, s.MaxLatency, s.Accepted)
}
