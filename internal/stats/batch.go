package stats

import "math"

// maxBatches bounds the stored batch means. When the cap is reached,
// adjacent batches collapse pairwise into batches of twice the length —
// the classic streaming batch-means scheme — so the accumulator is O(1)
// memory for any observation count and long runs get *longer* batches
// (less serial correlation between them), not more batches (which would
// shrink the t-interval as 1/√k without the correlation decaying).
const maxBatches = 40

// BatchMeans estimates a 95% confidence interval on the mean of a
// correlated time series by the method of batch means: consecutive
// observations are folded into equal-length batches, and the batch
// means — far closer to independent than the raw samples, whose serial
// correlation (queue states persist across packets and cycles) would
// make a naive s/√n interval dishonestly tight — feed a Student-t
// interval over at most maxBatches batches.
//
// The accumulator is allocation-free after construction (the batch
// slice is preallocated at its fixed cap) and its Add path never
// touches the heap.
type BatchMeans struct {
	size  int64     // observations per batch (doubles on collapse)
	cur   float64   // running sum of the open batch
	n     int64     // observations in the open batch
	means []float64 // completed batch means, at most maxBatches
}

// NewBatchMeans returns an accumulator folding every size consecutive
// observations into one batch (sizes < 1 are treated as 1).
func NewBatchMeans(size int64) *BatchMeans {
	if size < 1 {
		size = 1
	}
	return &BatchMeans{size: size, means: make([]float64, 0, maxBatches)}
}

// Add records one observation.
func (b *BatchMeans) Add(v float64) {
	b.cur += v
	b.n++
	if b.n < b.size {
		return
	}
	if len(b.means) == maxBatches {
		// Collapse adjacent pairs: each stored mean now covers twice
		// the observations, halving the count without losing any.
		for i := 0; i < maxBatches/2; i++ {
			b.means[i] = (b.means[2*i] + b.means[2*i+1]) / 2
		}
		b.means = b.means[:maxBatches/2]
		b.size *= 2
		if b.n < b.size {
			return // the open batch continues at the doubled length
		}
	}
	b.means = append(b.means, b.cur/float64(b.n))
	b.cur, b.n = 0, 0
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() int { return len(b.means) }

// BatchSize returns the current observations-per-batch (it doubles each
// time the batch cap is reached).
func (b *BatchMeans) BatchSize() int64 { return b.size }

// CI returns the batch-means point estimate and 95% confidence
// half-width. ok is false with fewer than two completed batches (no
// variance estimate); a trailing partial batch is excluded.
func (b *BatchMeans) CI() (mean, half float64, ok bool) {
	k := len(b.means)
	if k < 2 {
		return 0, 0, false
	}
	for _, m := range b.means {
		mean += m
	}
	mean /= float64(k)
	var ss float64
	for _, m := range b.means {
		d := m - mean
		ss += d * d
	}
	s := math.Sqrt(ss / float64(k-1))
	return mean, tCritical95(k-1) * s / math.Sqrt(float64(k)), true
}

// tCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom (the normal 1.96 beyond the table).
func tCritical95(df int) float64 {
	if df < 1 {
		return math.Inf(1)
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// t95[df-1] is the two-sided 95% critical value of Student's t.
var t95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}
