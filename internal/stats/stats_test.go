package stats

import (
	"math"
	"strings"
	"testing"
)

func TestLatencyBasics(t *testing.T) {
	var l Latency
	if !math.IsNaN(l.Mean()) {
		t.Error("empty mean should be NaN")
	}
	for _, v := range []int64{10, 20, 30} {
		l.Add(v)
	}
	if l.Count() != 3 || l.Mean() != 20 || l.Max() != 30 {
		t.Fatalf("count=%d mean=%v max=%d", l.Count(), l.Mean(), l.Max())
	}
}

func TestLatencyPercentiles(t *testing.T) {
	var l Latency
	for i := int64(1); i <= 100; i++ {
		l.Add(i)
	}
	if p := l.Percentile(0.5); p < 49 || p > 52 {
		t.Errorf("p50 = %d", p)
	}
	if p := l.Percentile(0.95); p < 94 || p > 97 {
		t.Errorf("p95 = %d", p)
	}
	if p := l.Percentile(0); p != 1 {
		t.Errorf("p0 = %d, want 1", p)
	}
	if p := l.Percentile(1); p != 100 {
		t.Errorf("p100 = %d, want 100", p)
	}
}

func TestLatencyPercentileAfterAdd(t *testing.T) {
	// Adding after a percentile query must re-sort.
	var l Latency
	l.Add(50)
	_ = l.Percentile(0.5)
	l.Add(1)
	l.Add(100)
	if p := l.Percentile(0); p != 1 {
		t.Fatalf("p0 after re-add = %d, want 1", p)
	}
}

func TestLatencyHistogram(t *testing.T) {
	var l Latency
	for _, v := range []int64{3, 7, 12, 13, 29} {
		l.Add(v)
	}
	h := l.Histogram(10)
	if h[0] != 2 || h[10] != 2 || h[20] != 1 {
		t.Fatalf("histogram %v", h)
	}
}

func TestThroughputWindow(t *testing.T) {
	th := NewThroughput(64)
	th.Eject(5) // before Open: ignored
	th.Open(10)
	for c := int64(10); c < 110; c++ {
		th.Eject(c) // 1 flit/cycle network-wide
	}
	th.Close(110)
	got := th.FlitsPerNodeCycle()
	want := 100.0 / 100.0 / 64.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("throughput %v, want %v", got, want)
	}
}

func TestThroughputEmpty(t *testing.T) {
	th := NewThroughput(64)
	if th.FlitsPerNodeCycle() != 0 {
		t.Error("unopened meter must read 0")
	}
}

func TestTurnaroundMin(t *testing.T) {
	var tr Turnaround
	if tr.Min() != 0 {
		t.Error("empty turnaround min should be 0")
	}
	for _, v := range []int64{9, 4, 7, 4, 12} {
		tr.Record(v)
	}
	if tr.Min() != 4 || tr.Count() != 5 {
		t.Fatalf("min=%d count=%d", tr.Min(), tr.Count())
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{MeanLatency: 29.5, P50: 28, P95: 40, MaxLatency: 80, Packets: 1000, Accepted: 0.25}
	out := s.String()
	for _, want := range []string{"packets=1000", "mean=29.5", "accepted=0.2500"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}
