package core

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"routersim/internal/logicaleffort"
)

func mustPipeline(t *testing.T, fc FlowControl, p Params) Pipeline {
	t.Helper()
	pl, err := DesignPipeline(fc, p, DefaultSpecOptions())
	if err != nil {
		t.Fatalf("DesignPipeline(%v, %+v): %v", fc, p, err)
	}
	return pl
}

func TestWormholePipelineIsThreeStages(t *testing.T) {
	// Section 4: "a wormhole router fits within a 3-stage pipeline".
	for _, p := range []int{5, 7} {
		pl := mustPipeline(t, Wormhole, Params{P: p, V: 1, W: 32, ClockTau4: 20})
		if pl.Depth() != 3 {
			t.Errorf("wormhole p=%d: %d stages, want 3\n%s", p, pl.Depth(), pl)
		}
	}
}

func TestVCPipelineIsFourStagesAtPaperPoint(t *testing.T) {
	// Figure 11(a): the non-speculative VC router at p=5, v=2 requires
	// 4 stages (routing, VC alloc, switch alloc, crossbar).
	pl := mustPipeline(t, VirtualChannel, PaperParams())
	if pl.Depth() != 4 {
		t.Fatalf("VC router at paper point: %d stages, want 4\n%s", pl.Depth(), pl)
	}
	wantOrder := []ModuleKind{ModRouting, ModVCAlloc, ModSwitchAllocVC, ModCrossbar}
	for i, st := range pl.Stages {
		if len(st.Modules) != 1 || st.Modules[0].Kind != wantOrder[i] {
			t.Errorf("stage %d holds %v, want %v", i+1, st.Names(), wantOrder[i])
		}
	}
}

func TestSpecVCPipelineIsThreeStages(t *testing.T) {
	// Section 4 / Figure 11(b): with the R→v routing function and the
	// combine mux folded into the crossbar stage, a speculative VC
	// router with up to 16 VCs per PC (p ∈ {5,7}) fits 3 stages — the
	// same per-hop latency as a wormhole router.
	for _, p := range []int{5, 7} {
		for _, v := range []int{2, 4, 8, 16} {
			params := Params{P: p, V: v, W: 32, ClockTau4: 20, Range: RangeVC}
			pl := mustPipeline(t, SpeculativeVC, params)
			if pl.Depth() != 3 {
				t.Errorf("specVC p=%d v=%d: %d stages, want 3\n%s", p, v, pl.Depth(), pl)
			}
		}
	}
	// ...and 32 VCs no longer fits (the speculative switch allocator
	// exceeds the 20 τ4 cycle).
	for _, p := range []int{5, 7} {
		params := Params{P: p, V: 32, W: 32, ClockTau4: 20, Range: RangeVC}
		if pl := mustPipeline(t, SpeculativeVC, params); pl.Depth() != 4 {
			t.Errorf("specVC p=%d v=32: %d stages, want 4 (allocator split)\n%s", p, pl.Depth(), pl)
		}
	}
}

func TestVCPipelineGrowsWithVCs(t *testing.T) {
	// Figure 11(a): with the R→pv allocator, large VC counts force the
	// allocator across two stages, growing per-hop latency to 5 cycles.
	for _, v := range []int{16, 32} {
		params := Params{P: 5, V: v, W: 32, ClockTau4: 20, Range: RangeAll}
		pl := mustPipeline(t, VirtualChannel, params)
		if pl.Depth() < 5 {
			t.Errorf("VC router v=%d R->pv: %d stages, want ≥5\n%s", v, pl.Depth(), pl)
		}
	}
}

func TestEQ1StageBudgetsRespectClock(t *testing.T) {
	// Every stage must fit the clock except stages of split atomic
	// modules, which record Split > 1.
	cfgs := []struct {
		fc FlowControl
		r  RoutingRange
	}{{Wormhole, RangeVC}, {VirtualChannel, RangeVC}, {VirtualChannel, RangePC},
		{VirtualChannel, RangeAll}, {SpeculativeVC, RangeVC}, {SpeculativeVC, RangeAll}}
	for _, cfg := range cfgs {
		for _, p := range []int{2, 3, 5, 7, 9, 17} {
			for _, v := range []int{1, 2, 4, 8, 16, 32, 64} {
				params := Params{P: p, V: v, W: 32, ClockTau4: 20, Range: cfg.r}
				pl := mustPipeline(t, cfg.fc, params)
				clk := logicaleffort.Tau4ToTau(params.ClockTau4)
				for i, st := range pl.Stages {
					if st.Split == 1 && st.UsedTau > clk+1e-9 {
						t.Fatalf("%v p=%d v=%d %v: stage %d uses %.1fτ > clk %.1fτ",
							cfg.fc, p, v, cfg.r, i+1, st.UsedTau, clk)
					}
					if st.Split > 1 && len(st.Modules) != 1 {
						t.Fatalf("split stage %d holds %d modules, want 1", i+1, len(st.Modules))
					}
				}
			}
		}
	}
}

func TestEQ1PackingIsMaximal(t *testing.T) {
	// EQ 1's second condition: the packer must be greedy — module b+1
	// must not have fit in the stage that ends at b. We verify for the
	// VC router across a parameter sweep: for every stage boundary
	// between two non-full-stage modules, adding the next module would
	// overflow the clock.
	for _, p := range []int{3, 5, 7} {
		for _, v := range []int{1, 2, 4, 8} {
			params := Params{P: p, V: v, W: 32, ClockTau4: 20, Range: RangeAll}
			pl := mustPipeline(t, VirtualChannel, params)
			clk := logicaleffort.Tau4ToTau(params.ClockTau4)
			for i := 0; i+1 < len(pl.Stages); i++ {
				a, b := pl.Stages[i], pl.Stages[i+1]
				if a.Split > 1 || b.Split > 1 {
					continue
				}
				if a.Modules[0].FullStage || b.Modules[0].FullStage {
					continue
				}
				next := b.Modules[0]
				var sumT float64
				for _, m := range a.Modules {
					sumT += m.T
				}
				if sumT+next.T+next.H <= clk {
					t.Errorf("p=%d v=%d: module %v fit stage %d but was not packed (EQ 1 violated)",
						p, v, next.Kind, i+1)
				}
			}
		}
	}
}

func TestPipelinePreservesModuleOrder(t *testing.T) {
	// The packer must never reorder the critical path.
	params := PaperParams()
	for _, fc := range []FlowControl{Wormhole, VirtualChannel, SpeculativeVC} {
		pl := mustPipeline(t, fc, params)
		want := CriticalPath(fc, params, DefaultSpecOptions())
		var got []ModuleKind
		for _, st := range pl.Stages {
			for _, m := range st.Modules {
				if st.Split > 1 && len(got) > 0 && got[len(got)-1] == m.Kind {
					continue // split module appears once per stage
				}
				got = append(got, m.Kind)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d modules placed, want %d", fc, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i].Kind {
				t.Fatalf("%v: module %d is %v, want %v", fc, i, got[i], want[i].Kind)
			}
		}
	}
}

func TestDeeperClockMeansFewerStages(t *testing.T) {
	// Property: pipeline depth is nonincreasing in the clock period.
	prop := func(pRaw, vRaw uint8) bool {
		p := 2 + int(pRaw%8)
		v := 1 + int(vRaw%16)
		prev := math.MaxInt32
		for _, clk := range []float64{10, 15, 20, 30, 40, 80} {
			params := Params{P: p, V: v, W: 32, ClockTau4: clk, Range: RangeAll}
			pl, err := DesignPipeline(VirtualChannel, params, DefaultSpecOptions())
			if err != nil {
				return false
			}
			if pl.Depth() > prev {
				return false
			}
			prev = pl.Depth()
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSpecOptionsTable1Semantics(t *testing.T) {
	// With CombineInCrossbarStage=false the allocation stage carries the
	// full Table 1 combined delay, so fewer VC counts fit 3 stages.
	params := Params{P: 5, V: 16, W: 32, ClockTau4: 20, Range: RangeVC}
	strict, err := DesignPipeline(SpeculativeVC, params, SpecOptions{CombineInCrossbarStage: false})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Depth() != 4 {
		t.Errorf("strict spec pipeline v=16: %d stages, want 4 (23.5 τ4 allocator)\n%s", strict.Depth(), strict)
	}
	folded := MustDesignPipeline(SpeculativeVC, params, DefaultSpecOptions())
	if folded.Depth() != 3 {
		t.Errorf("folded spec pipeline v=16: %d stages, want 3", folded.Depth())
	}
}

func TestValidation(t *testing.T) {
	bad := []Params{
		{P: 1, V: 1, W: 32, ClockTau4: 20},
		{P: 5, V: 0, W: 32, ClockTau4: 20},
		{P: 5, V: 2, W: 0, ClockTau4: 20},
		{P: 5, V: 2, W: 32, ClockTau4: 0},
	}
	for _, b := range bad {
		if _, err := DesignPipeline(Wormhole, b, DefaultSpecOptions()); err == nil {
			t.Errorf("expected validation error for %+v", b)
		}
	}
}

func TestPipelineString(t *testing.T) {
	pl := mustPipeline(t, VirtualChannel, PaperParams())
	s := pl.String()
	for _, want := range []string{"virtual-channel", "vc allocation", "sw allocation", "crossbar", "stage 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("pipeline rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFigure11Generators(t *testing.T) {
	a := Figure11a(20, RangeAll, 32)
	if len(a) != len(Figure11Grid.P)*len(Figure11Grid.V) {
		t.Fatalf("Figure11a: %d points, want %d", len(a), len(Figure11Grid.P)*len(Figure11Grid.V))
	}
	b := Figure11b(20, RangeVC, 32, DefaultSpecOptions())
	for _, pt := range b {
		if pt.V <= 16 && pt.Pipeline.Depth() != 3 {
			t.Errorf("Figure11b p=%d v=%d: depth %d, want 3", pt.P, pt.V, pt.Pipeline.Depth())
		}
	}
	wh := WormholeReference(20, 5, 32)
	if wh.Depth() != 3 {
		t.Errorf("wormhole reference depth %d, want 3", wh.Depth())
	}
}

func TestFigure12Shape(t *testing.T) {
	pts := Figure12()
	if len(pts) == 0 {
		t.Fatal("empty figure 12")
	}
	for _, pt := range pts {
		// The three routing ranges must be ordered Rv ≤ Rp ≤ Rpv in
		// combined-stage delay (the SS arm is common to all three).
		if pt.DelayRv > pt.DelayRp+1e-9 || pt.DelayRp > pt.DelayRpv+1e-9 {
			t.Errorf("p=%d v=%d: ordering violated: %v %v %v", pt.P, pt.V, pt.DelayRv, pt.DelayRp, pt.DelayRpv)
		}
		// Figure 12's y-axis spans 0..40 τ4; all values must lie there.
		if pt.DelayRpv <= 0 || pt.DelayRpv > 40 {
			t.Errorf("p=%d v=%d: R->pv delay %.1f τ4 outside the figure's range", pt.P, pt.V, pt.DelayRpv)
		}
	}
}

// TestPackerMatchesDesignPipeline: the reused-scratch packer must
// produce exactly DesignPipeline's stages for every flow control across
// a clock range that exercises multi-module packing, full-stage
// modules, and oversized straddling modules — including back-to-back
// Design calls on one Packer (scratch reuse must not leak state).
func TestPackerMatchesDesignPipeline(t *testing.T) {
	var pk Packer
	for _, fc := range []FlowControl{Wormhole, VirtualChannel, SpeculativeVC} {
		for _, clk := range []float64{6, 10, 16, 20, 28, 40} {
			for _, v := range []int{1, 2, 8, 32} {
				params := Params{P: 5, V: v, W: 32, ClockTau4: clk, Range: RangePC}
				want, err := DesignPipeline(fc, params, DefaultSpecOptions())
				if err != nil {
					t.Fatal(err)
				}
				got, err := pk.Design(fc, params, DefaultSpecOptions())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v clk=%v v=%d: packer pipeline diverged:\ngot  %v\nwant %v", fc, clk, v, got, want)
				}
				clone := got.Clone()
				if !reflect.DeepEqual(clone, want) {
					t.Fatalf("%v clk=%v v=%d: clone diverged", fc, clk, v)
				}
			}
		}
	}
}

// TestPackerZeroAlloc: once warm, a Packer.Design call touches no heap
// — it runs once per design point in the delay-table sweeps.
func TestPackerZeroAlloc(t *testing.T) {
	var pk Packer
	params := PaperParams()
	if _, err := pk.Design(SpeculativeVC, params, DefaultSpecOptions()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := pk.Design(SpeculativeVC, params, DefaultSpecOptions()); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Packer.Design allocates %.2f times per call, want 0", allocs)
	}
}
