// Package core implements the paper's primary contribution: the router
// delay model of Peh and Dally, "A Delay Model and Speculative
// Architecture for Pipelined Routers" (HPCA 2001).
//
// The model has two parts:
//
//   - A specific router model: technology-independent parametric delay
//     equations (Table 1 of the paper) for each atomic module of a
//     wormhole, virtual-channel, or speculative virtual-channel router,
//     expressed in τ (1 τ4 = 5 τ). See equations.go.
//   - A general router model: given a clock cycle time, EQ 1 packs the
//     atomic modules on the router's critical path into pipeline stages,
//     prescribing the per-hop router latency in cycles. See pipeline.go.
package core

import "fmt"

// FlowControl selects the flow-control method and hence the canonical
// router architecture whose critical path the model evaluates.
type FlowControl int

const (
	// Wormhole is wormhole flow control (Figure 2): per-port input
	// queues, a switch arbiter that holds output ports for whole packets.
	Wormhole FlowControl = iota
	// VirtualChannel is virtual-channel flow control (Figure 3):
	// per-VC input queues, a VC allocator, and a cycle-by-cycle switch
	// allocator sharing one crossbar port per physical channel.
	VirtualChannel
	// SpeculativeVC is the paper's speculative virtual-channel router:
	// switch allocation proceeds in parallel with VC allocation
	// (Figure 4c), with non-speculative requests prioritized.
	SpeculativeVC
)

func (fc FlowControl) String() string {
	switch fc {
	case Wormhole:
		return "wormhole"
	case VirtualChannel:
		return "virtual-channel"
	case SpeculativeVC:
		return "speculative-vc"
	default:
		return fmt.Sprintf("FlowControl(%d)", int(fc))
	}
}

// RoutingRange is the range of the routing function, which determines
// the complexity of the virtual-channel allocator (Figure 8).
type RoutingRange int

const (
	// RangeVC (R→v): routing returns a single candidate output virtual
	// channel. The VC allocator needs one pv:1 arbiter per output VC.
	RangeVC RoutingRange = iota
	// RangePC (R→p): routing returns the candidate VCs of a single
	// physical channel — the most general range possible for a
	// deterministic router (footnote 14 of the paper).
	RangePC
	// RangeAll (R→pv): routing returns candidate VCs of any physical
	// channel; the allocator needs two stages of pv:1 arbiters.
	RangeAll
)

func (r RoutingRange) String() string {
	switch r {
	case RangeVC:
		return "R->v"
	case RangePC:
		return "R->p"
	case RangeAll:
		return "R->pv"
	default:
		return fmt.Sprintf("RoutingRange(%d)", int(r))
	}
}

// Params are the architectural parameters of the delay model.
type Params struct {
	// P is the number of physical channels (ports on the crossbar).
	// A 2-dimensional mesh router has P = 5 (4 directions + local).
	P int
	// V is the number of virtual channels per physical channel.
	// Ignored by the wormhole router.
	V int
	// W is the channel width in bits (phit/flit size).
	W int
	// ClockTau4 is the clock cycle time in τ4 units. The paper assumes
	// a typical cycle of 20 τ4 (≈2 ns at 0.18 µm, a 500 MHz clock).
	ClockTau4 float64
	// Range is the routing-function range, which sets the VC allocator
	// complexity. Ignored by the wormhole router.
	Range RoutingRange
}

// DefaultClockTau4 is the paper's typical clock cycle of 20 τ4.
const DefaultClockTau4 = 20.0

// Validate reports whether the parameters are usable by the model.
func (p Params) Validate() error {
	if p.P < 2 {
		return fmt.Errorf("core: P = %d physical channels; need at least 2", p.P)
	}
	if p.V < 1 {
		return fmt.Errorf("core: V = %d virtual channels; need at least 1", p.V)
	}
	if p.W < 1 {
		return fmt.Errorf("core: W = %d channel width; need at least 1 bit", p.W)
	}
	if p.ClockTau4 <= 0 {
		return fmt.Errorf("core: clock cycle %v τ4 must be positive", p.ClockTau4)
	}
	return nil
}

// PaperParams returns the parameter point at which Table 1 of the paper
// is evaluated: p=5, w=32, v=2, clk=20 τ4, routing range R→pv for the
// most complex allocator unless overridden.
func PaperParams() Params {
	return Params{P: 5, V: 2, W: 32, ClockTau4: DefaultClockTau4, Range: RangeAll}
}
