package core

import "routersim/internal/logicaleffort"

// This file regenerates the analytic tables and figures of the paper:
// Table 1 (module delays), Figure 11 (pipeline designs), and Figure 12
// (combined speculative-allocation stage delay).

// Table1Row is one row of Table 1: a module's computed (t+h) in τ4 at
// the paper's evaluation point, alongside the values the paper reports
// for its model and for the Synopsys timing analyzer.
type Table1Row struct {
	Router   string  // "wormhole", "virtual-channel", "speculative vc"
	Module   string  // module label as in the paper
	Tau      float64 // t in τ
	OverTau  float64 // h in τ
	Model    float64 // computed (t+h) in τ4
	Paper    float64 // value reported in the paper's Model column (τ4)
	Synopsys float64 // value reported in the paper's Synopsys column (τ4)
}

// Table1 evaluates the delay model at the paper's point (p=5, w=32, v=2)
// and returns every row of Table 1 with the paper's reference values.
func Table1() []Table1Row {
	const p, w, v = 5, 32, 2
	t4 := logicaleffort.TauToTau4
	rows := []Table1Row{
		{"wormhole", "switch arbiter (SB)", TSwitchArbiterWH(p), HSwitchArbiterWH(p), 0, 9.6, 9.9},
		{"wormhole", "crossbar traversal (XB)", TCrossbar(p, w), HCrossbar(p, w), 0, 8.4, 10.5},
		{"virtual-channel", "vc allocator (VC: R->v)", TVCAlloc(RangeVC, p, v), HVCAlloc(RangeVC, p, v), 0, 11.8, 11.0},
		{"virtual-channel", "vc allocator (VC: R->p)", TVCAlloc(RangePC, p, v), HVCAlloc(RangePC, p, v), 0, 13.1, 13.3},
		{"virtual-channel", "vc allocator (VC: R->pv)", TVCAlloc(RangeAll, p, v), HVCAlloc(RangeAll, p, v), 0, 16.9, 15.3},
		{"virtual-channel", "switch allocator (SL)", TSwitchAllocVC(p, v), HSwitchAllocVC(p, v), 0, 10.9, 12.0},
		{"speculative vc", "combined alloc stage (R->v)", SpecAllocStageTau(RangeVC, p, v), 0, 0, 14.6, 16.2},
		{"speculative vc", "combined alloc stage (R->p)", SpecAllocStageTau(RangePC, p, v), 0, 0, 14.6, 16.2},
		{"speculative vc", "combined alloc stage (R->pv)", SpecAllocStageTau(RangeAll, p, v), 0, 0, 18.3, 16.8},
	}
	for i := range rows {
		rows[i].Model = t4(rows[i].Tau + rows[i].OverTau)
	}
	return rows
}

// PipelinePoint is one bar of Figure 11: the pipeline prescribed for a
// (p, v) configuration.
type PipelinePoint struct {
	P, V     int
	Pipeline Pipeline
}

// Figure11Grid is the paper's sweep: p ∈ {5, 7} physical channels and
// v ∈ {2, 4, 8, 16, 32} virtual channels per physical channel.
var Figure11Grid = struct {
	P []int
	V []int
}{P: []int{5, 7}, V: []int{2, 4, 8, 16, 32}}

// Figure11a returns the pipelines of non-speculative virtual-channel
// routers over the paper's (p, v) grid at the given clock and routing
// range. The paper's figure uses clk = 20 τ4 and the most general range
// R→pv; the reference wormhole pipeline is returned separately by
// WormholeReference.
func Figure11a(clockTau4 float64, r RoutingRange, w int) []PipelinePoint {
	return sweepPipelines(VirtualChannel, clockTau4, r, w, DefaultSpecOptions())
}

// Figure11b returns the pipelines of speculative virtual-channel routers
// over the paper's grid. The paper's figure assumes the R→v routing
// function.
func Figure11b(clockTau4 float64, r RoutingRange, w int, spec SpecOptions) []PipelinePoint {
	return sweepPipelines(SpeculativeVC, clockTau4, r, w, spec)
}

func sweepPipelines(fc FlowControl, clockTau4 float64, r RoutingRange, w int, spec SpecOptions) []PipelinePoint {
	var pk Packer
	var out []PipelinePoint
	for _, p := range Figure11Grid.P {
		for _, v := range Figure11Grid.V {
			params := Params{P: p, V: v, W: w, ClockTau4: clockTau4, Range: r}
			pl, err := pk.Design(fc, params, spec)
			if err != nil {
				panic(err)
			}
			// The retained point needs its own storage; the packer's is
			// reused on the next grid cell.
			out = append(out, PipelinePoint{P: p, V: v, Pipeline: pl.Clone()})
		}
	}
	return out
}

// WormholeReference returns the wormhole pipeline graphed for reference
// in Figure 11 (3 stages at the paper's parameters).
func WormholeReference(clockTau4 float64, p, w int) Pipeline {
	params := Params{P: p, V: 1, W: w, ClockTau4: clockTau4, Range: RangeVC}
	return MustDesignPipeline(Wormhole, params, DefaultSpecOptions())
}

// Figure12Point is one group of bars in Figure 12: the delay of the
// combined VC + speculative switch allocation stage for a (p, v)
// configuration under each routing-function range, in τ4.
type Figure12Point struct {
	P, V     int
	DelayRv  float64 // R→v
	DelayRp  float64 // R→p
	DelayRpv float64 // R→pv
}

// Figure12 sweeps the combined allocation stage delay over the paper's
// (p, v) grid for the three routing-function ranges.
func Figure12() []Figure12Point {
	var out []Figure12Point
	for _, p := range Figure11Grid.P {
		for _, v := range Figure11Grid.V {
			out = append(out, Figure12Point{
				P: p, V: v,
				DelayRv:  SpecAllocStageTau4(RangeVC, p, v),
				DelayRp:  SpecAllocStageTau4(RangePC, p, v),
				DelayRpv: SpecAllocStageTau4(RangeAll, p, v),
			})
		}
	}
	return out
}
