package core

import (
	"fmt"
	"math"
	"strings"

	"routersim/internal/logicaleffort"
)

// Stage is one pipeline stage produced by the EQ-1 packer. A stage holds
// one or more whole atomic modules, or one share of an oversized atomic
// module that had to straddle multiple cycles.
type Stage struct {
	// Modules are the atomic modules resident in this stage, in critical
	// path order. For a straddling module the same module appears in
	// each of its stages with Split > 1.
	Modules []Module
	// UsedTau is Σ t_i (+ h of the last module) charged to this stage,
	// in τ. For split stages it is the per-stage share.
	UsedTau float64
	// ClockTau is the clock period in τ.
	ClockTau float64
	// Split is 1 for normal stages; for an atomic module that cannot fit
	// a single cycle, Split is the total number of stages it occupies.
	Split int
}

// Utilization returns the fraction of the clock cycle used by the stage.
func (s Stage) Utilization() float64 {
	if s.ClockTau == 0 {
		return 0
	}
	return s.UsedTau / s.ClockTau
}

// Names returns the module names resident in the stage.
func (s Stage) Names() []string {
	names := make([]string, len(s.Modules))
	for i, m := range s.Modules {
		names[i] = m.Kind.String()
	}
	return names
}

// Pipeline is the pipeline design prescribed by the general router model
// for a given flow control, parameters, and clock.
type Pipeline struct {
	FlowControl FlowControl
	Params      Params
	Stages      []Stage
}

// Depth returns the per-hop router latency in cycles (the number of
// pipeline stages).
func (p Pipeline) Depth() int { return len(p.Stages) }

// String renders the pipeline as one stage per line with utilization.
func (p Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s router, p=%d v=%d w=%d clk=%.4gτ4: %d stages\n",
		p.FlowControl, p.Params.P, p.Params.V, p.Params.W, p.Params.ClockTau4, p.Depth())
	for i, s := range p.Stages {
		fmt.Fprintf(&b, "  stage %d: %-40s %5.1f%% of cycle",
			i+1, strings.Join(s.Names(), " + "), 100*s.Utilization())
		if s.Split > 1 {
			fmt.Fprintf(&b, " (atomic module split over %d stages)", s.Split)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Packer packs critical-path modules into pipeline stages (EQ 1) with
// scratch reused across calls — the allocation-free engine behind
// sweeps that evaluate EQ 1 once per design point (the Figure 11/12
// grids, the harness's per-scenario delay model). The Pipeline returned
// by Design aliases the Packer's buffers: it is valid until the next
// Design call on the same Packer. Retain one past that with
// Pipeline.Clone. A Packer must not be shared between goroutines.
type Packer struct {
	modules []Module    // critical-path scratch
	spans   []stageSpan // packed stages as arena spans
	arena   []Module    // backing store for every stage's Modules
	stages  []Stage
}

// stageSpan is one packed stage before materialization: a half-open
// arena range plus the charged delay share.
type stageSpan struct {
	start, end int
	usedTau    float64
	split      int
}

// closeSpan ends the open multi-module stage [start, len(arena)), if
// any, charging Σ t_i plus the last module's overhead.
func (pk *Packer) closeSpan(start int, curT float64) {
	if start == len(pk.arena) {
		return
	}
	last := pk.arena[len(pk.arena)-1]
	pk.spans = append(pk.spans, stageSpan{
		start: start, end: len(pk.arena),
		usedTau: curT + last.H,
		split:   1,
	})
}

// Design applies EQ 1: starting from the first atomic module on the
// critical path, modules are packed greedily into a stage while
//
//	Σ_{i=a..b} t_i + h_b ≤ clk
//
// and a new stage begins at the first module that would overflow.
// Full-stage modules (routing, crossbar) always occupy exactly one whole
// stage. An atomic module with t+h > clk cannot be subdivided cleanly
// (Section 3.1); the model charges it ⌈(t+h)/clk⌉ consecutive stages.
func (pk *Packer) Design(fc FlowControl, p Params, spec SpecOptions) (Pipeline, error) {
	if err := p.Validate(); err != nil {
		return Pipeline{}, err
	}
	pk.modules = AppendCriticalPath(pk.modules[:0], fc, p, spec)
	clk := logicaleffort.Tau4ToTau(p.ClockTau4)
	pk.spans = pk.spans[:0]
	pk.arena = pk.arena[:0]

	curStart := 0 // arena index where the open multi-module stage began
	var curT float64
	for _, m := range pk.modules {
		if m.FullStage {
			pk.closeSpan(curStart, curT)
			pk.arena = append(pk.arena, m)
			// Full-stage modules own the whole cycle by convention:
			// routing is a one-cycle black box and the crossbar stage
			// absorbs unmodelled wire delay (Section 3.2).
			pk.spans = append(pk.spans, stageSpan{
				start: len(pk.arena) - 1, end: len(pk.arena),
				usedTau: clk, split: 1,
			})
			curStart, curT = len(pk.arena), 0
			continue
		}
		if m.T+m.H > clk {
			// Oversized atomic module: straddles multiple stages. The
			// module sits in the arena once; each of its stages spans it.
			pk.closeSpan(curStart, curT)
			pk.arena = append(pk.arena, m)
			n := int(math.Ceil((m.T + m.H) / clk))
			for i := 0; i < n; i++ {
				pk.spans = append(pk.spans, stageSpan{
					start: len(pk.arena) - 1, end: len(pk.arena),
					usedTau: (m.T + m.H) / float64(n),
					split:   n,
				})
			}
			curStart, curT = len(pk.arena), 0
			continue
		}
		if curStart < len(pk.arena) && curT+m.T+m.H > clk {
			pk.closeSpan(curStart, curT)
			curStart, curT = len(pk.arena), 0
		}
		pk.arena = append(pk.arena, m)
		curT += m.T
	}
	pk.closeSpan(curStart, curT)

	pk.stages = pk.stages[:0]
	for _, s := range pk.spans {
		pk.stages = append(pk.stages, Stage{
			Modules:  pk.arena[s.start:s.end:s.end],
			UsedTau:  s.usedTau,
			ClockTau: clk,
			Split:    s.split,
		})
	}
	return Pipeline{FlowControl: fc, Params: p, Stages: pk.stages}, nil
}

// Clone returns a Pipeline with its own backing storage — required to
// retain a Packer-built Pipeline past the Packer's next Design call.
func (p Pipeline) Clone() Pipeline {
	total := 0
	for _, s := range p.Stages {
		total += len(s.Modules)
	}
	arena := make([]Module, 0, total)
	stages := make([]Stage, len(p.Stages))
	for i, s := range p.Stages {
		start := len(arena)
		arena = append(arena, s.Modules...)
		s.Modules = arena[start:len(arena):len(arena)]
		stages[i] = s
	}
	p.Stages = stages
	return p
}

// DesignPipeline applies EQ 1 with a fresh Packer per call; the result
// owns its storage. Sweeps evaluating many design points should reuse
// one Packer instead.
func DesignPipeline(fc FlowControl, p Params, spec SpecOptions) (Pipeline, error) {
	var pk Packer
	return pk.Design(fc, p, spec)
}

// MustDesignPipeline is DesignPipeline for known-good parameters; it
// panics on validation errors. Intended for tables/figure generators
// whose parameter grids are fixed.
func MustDesignPipeline(fc FlowControl, p Params, spec SpecOptions) Pipeline {
	pl, err := DesignPipeline(fc, p, spec)
	if err != nil {
		panic(err)
	}
	return pl
}
