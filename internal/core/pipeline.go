package core

import (
	"fmt"
	"math"
	"strings"

	"routersim/internal/logicaleffort"
)

// Stage is one pipeline stage produced by the EQ-1 packer. A stage holds
// one or more whole atomic modules, or one share of an oversized atomic
// module that had to straddle multiple cycles.
type Stage struct {
	// Modules are the atomic modules resident in this stage, in critical
	// path order. For a straddling module the same module appears in
	// each of its stages with Split > 1.
	Modules []Module
	// UsedTau is Σ t_i (+ h of the last module) charged to this stage,
	// in τ. For split stages it is the per-stage share.
	UsedTau float64
	// ClockTau is the clock period in τ.
	ClockTau float64
	// Split is 1 for normal stages; for an atomic module that cannot fit
	// a single cycle, Split is the total number of stages it occupies.
	Split int
}

// Utilization returns the fraction of the clock cycle used by the stage.
func (s Stage) Utilization() float64 {
	if s.ClockTau == 0 {
		return 0
	}
	return s.UsedTau / s.ClockTau
}

// Names returns the module names resident in the stage.
func (s Stage) Names() []string {
	names := make([]string, len(s.Modules))
	for i, m := range s.Modules {
		names[i] = m.Kind.String()
	}
	return names
}

// Pipeline is the pipeline design prescribed by the general router model
// for a given flow control, parameters, and clock.
type Pipeline struct {
	FlowControl FlowControl
	Params      Params
	Stages      []Stage
}

// Depth returns the per-hop router latency in cycles (the number of
// pipeline stages).
func (p Pipeline) Depth() int { return len(p.Stages) }

// String renders the pipeline as one stage per line with utilization.
func (p Pipeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s router, p=%d v=%d w=%d clk=%.4gτ4: %d stages\n",
		p.FlowControl, p.Params.P, p.Params.V, p.Params.W, p.Params.ClockTau4, p.Depth())
	for i, s := range p.Stages {
		fmt.Fprintf(&b, "  stage %d: %-40s %5.1f%% of cycle",
			i+1, strings.Join(s.Names(), " + "), 100*s.Utilization())
		if s.Split > 1 {
			fmt.Fprintf(&b, " (atomic module split over %d stages)", s.Split)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DesignPipeline applies EQ 1: starting from the first atomic module on
// the critical path, modules are packed greedily into a stage while
//
//	Σ_{i=a..b} t_i + h_b ≤ clk
//
// and a new stage begins at the first module that would overflow.
// Full-stage modules (routing, crossbar) always occupy exactly one whole
// stage. An atomic module with t+h > clk cannot be subdivided cleanly
// (Section 3.1); the model charges it ⌈(t+h)/clk⌉ consecutive stages.
func DesignPipeline(fc FlowControl, p Params, spec SpecOptions) (Pipeline, error) {
	if err := p.Validate(); err != nil {
		return Pipeline{}, err
	}
	modules := CriticalPath(fc, p, spec)
	clk := logicaleffort.Tau4ToTau(p.ClockTau4)
	pl := Pipeline{FlowControl: fc, Params: p}

	var cur []Module
	var curT float64 // Σ t_i of modules in the open stage
	flush := func() {
		if len(cur) == 0 {
			return
		}
		last := cur[len(cur)-1]
		pl.Stages = append(pl.Stages, Stage{
			Modules:  append([]Module(nil), cur...),
			UsedTau:  curT + last.H,
			ClockTau: clk,
			Split:    1,
		})
		cur, curT = nil, 0
	}

	for _, m := range modules {
		if m.FullStage {
			flush()
			pl.Stages = append(pl.Stages, Stage{
				Modules: []Module{m},
				// Full-stage modules own the whole cycle by convention:
				// routing is a one-cycle black box and the crossbar
				// stage absorbs unmodelled wire delay (Section 3.2).
				UsedTau:  clk,
				ClockTau: clk,
				Split:    1,
			})
			continue
		}
		if m.T+m.H > clk {
			// Oversized atomic module: straddles multiple stages.
			flush()
			n := int(math.Ceil((m.T + m.H) / clk))
			for i := 0; i < n; i++ {
				pl.Stages = append(pl.Stages, Stage{
					Modules:  []Module{m},
					UsedTau:  (m.T + m.H) / float64(n),
					ClockTau: clk,
					Split:    n,
				})
			}
			continue
		}
		if len(cur) > 0 && curT+m.T+m.H > clk {
			flush()
		}
		cur = append(cur, m)
		curT += m.T
	}
	flush()
	return pl, nil
}

// MustDesignPipeline is DesignPipeline for known-good parameters; it
// panics on validation errors. Intended for tables/figure generators
// whose parameter grids are fixed.
func MustDesignPipeline(fc FlowControl, p Params, spec SpecOptions) Pipeline {
	pl, err := DesignPipeline(fc, p, spec)
	if err != nil {
		panic(err)
	}
	return pl
}
