package core

import (
	"math"

	"routersim/internal/logicaleffort"
)

// This file carries the parameterized delay equations of Table 1 of the
// paper, reconstructed from the derivations in Section 3.2 and validated
// against every evaluated cell of the table (p=5, w=32, v=2, clk=20 τ4).
// All latencies t and overheads h are in τ; 1 τ4 = 5 τ.
//
// Latency t spans from when a module's inputs are presented to when the
// outputs needed by the next module are stable; overhead h is the delay
// expended by additional circuitry (e.g. matrix-arbiter priority update)
// before the next set of inputs can be presented (Figure 5).

func log4(x float64) float64 { return logicaleffort.Log4(x) }

// TSwitchArbiterWH returns t_SB(p), the latency of the wormhole switch
// arbiter: p_o matrix arbiters of size p_i:1 with per-output-port status:
//
//	t_SB(p) = 21½·log4(p) + 14 1/12   (τ)
func TSwitchArbiterWH(p int) float64 {
	return 21.5*log4(float64(p)) + 14.0 + 1.0/12.0
}

// HSwitchArbiterWH returns h_SB = 9 τ, the matrix-arbiter priority
// update overhead.
func HSwitchArbiterWH(p int) float64 { return 9 }

// TCrossbar returns t_XB(p, w), the select→output latency of a p-port,
// w-bit crossbar:
//
//	t_XB(p,w) = 9·log8(w·p/2) + 6·log2(p) + 9   (τ)
//
// (equivalently 9·log8(w·p) + 6·log2(p) + 6). The model does not include
// crossbar wire delay; the pipeline builder therefore always grants the
// crossbar a full clock cycle (see CriticalPath).
func TCrossbar(p, w int) float64 {
	return 9*logicaleffort.Log8(float64(w*p)/2) + 6*logicaleffort.Log2(float64(p)) + 9
}

// HCrossbar returns h_XB = 0 τ.
func HCrossbar(p, w int) float64 { return 0 }

// TVCAlloc returns t_VC(p, v) for the virtual-channel allocator under
// the given routing-function range (Figure 8):
//
//	R→v : t = 21½·log4(p·v) + 14 1/12
//	R→p : t = 16½·log4(p·v) + 16½·log4(v) + 20 5/6
//	R→pv: t = 33·log4(p·v) + 20 5/6
func TVCAlloc(r RoutingRange, p, v int) float64 {
	pv := float64(p * v)
	switch r {
	case RangeVC:
		return 21.5*log4(pv) + 14.0 + 1.0/12.0
	case RangePC:
		return 16.5*log4(pv) + 16.5*log4(float64(v)) + 20.0 + 5.0/6.0
	default: // RangeAll
		return 33*log4(pv) + 20.0 + 5.0/6.0
	}
}

// HVCAlloc returns h_VC = 9 τ for all routing ranges.
func HVCAlloc(r RoutingRange, p, v int) float64 { return 9 }

// TSwitchAllocVC returns t_SL(p, v), the latency of the separable
// switch allocator of a non-speculative virtual-channel router
// (v:1 arbiters per input port, then p:1 arbiters per output port):
//
//	t_SL(p,v) = 11½·log4(p) + 23·log4(v) + 20 5/6   (τ)
func TSwitchAllocVC(p, v int) float64 {
	return 11.5*log4(float64(p)) + 23*log4(float64(v)) + 20.0 + 5.0/6.0
}

// HSwitchAllocVC returns h_SL = 9 τ.
func HSwitchAllocVC(p, v int) float64 { return 9 }

// TSpecSwitchAlloc returns t_SS(p, v), the latency of the speculative
// switch allocator (two parallel separable allocators, Figure 7c):
//
//	t_SS(p,v) = 18·log4(p) + 23·log4(v) + 24 5/6   (τ)
func TSpecSwitchAlloc(p, v int) float64 {
	return 18*log4(float64(p)) + 23*log4(float64(v)) + 24.0 + 5.0/6.0
}

// HSpecSwitchAlloc returns h_SS = 0 τ.
func HSpecSwitchAlloc(p, v int) float64 { return 0 }

// TCombine returns t_CB(p, v), the latency of the circuit that selects
// successful non-speculative switch grants over speculative ones:
//
//	t_CB(p,v) = 6½·log4(p·v) + 5 1/3   (τ)
func TCombine(p, v int) float64 {
	return 6.5*log4(float64(p*v)) + 5.0 + 1.0/3.0
}

// HCombine returns h_CB = 0 τ.
func HCombine(p, v int) float64 { return 0 }

// TRouting returns the decode+routing delay. The paper treats routing as
// a black box occupying one typical clock cycle of 20 τ4 (footnote 2).
func TRouting() float64 { return logicaleffort.Tau4ToTau(20) }

// SpecAllocStageTau returns the latency, in τ, of the combined
// VC-allocation + speculative-switch-allocation stage of a speculative
// virtual-channel router, as reported in Table 1 and swept in Figure 12:
//
//	max(t_VC:R(p,v), t_SS(p,v)) + t_CB(p,v)
//
// The VC allocator and the (dual) switch allocator operate in parallel;
// the combine circuit follows the slower of the two.
func SpecAllocStageTau(r RoutingRange, p, v int) float64 {
	return math.Max(TVCAlloc(r, p, v), TSpecSwitchAlloc(p, v)) + TCombine(p, v)
}

// SpecAllocStageTau4 is SpecAllocStageTau converted to τ4 units.
func SpecAllocStageTau4(r RoutingRange, p, v int) float64 {
	return logicaleffort.TauToTau4(SpecAllocStageTau(r, p, v))
}
