package core

// This file quantifies the paper's Section 2 critique of Chien's router
// model using our calibrated delay equations. Chien's canonical
// architecture (Figure 1 of the paper) differs from the paper's
// virtual-channel router in two ways that matter for delay:
//
//   - the crossbar provides a separate port per virtual channel (p·v
//     ports instead of p), because passage is arbitrated per packet and
//     held for its duration;
//   - switch arbitration happens over all p·v requestors.
//
// Evaluating the same gate-calibrated equations under those structural
// assumptions shows how quickly the Chien-style datapath slows down with
// the number of VCs — the motivation for the paper's shared-crossbar
// canonical architecture.

// ChienCrossbarDelay returns the crossbar traversal latency, in τ, of a
// Chien-style crossbar with one port per virtual channel: t_XB(p·v, w).
func ChienCrossbarDelay(p, v, w int) float64 {
	return TCrossbar(p*v, w)
}

// ChienSwitchArbiterDelay returns the switch arbitration latency, in τ,
// of a Chien-style arbiter over p·v requestors holding ports per
// packet: t_SB(p·v).
func ChienSwitchArbiterDelay(p, v int) float64 {
	return TSwitchArbiterWH(p * v)
}

// ChienComparison contrasts the Chien-style architecture against the
// paper's shared-crossbar architecture at one parameter point.
type ChienComparison struct {
	P, V, W int
	// Chien-style: p·v-port crossbar, p·v-requestor packet arbitration.
	ChienCrossbarTau4 float64
	ChienArbiterTau4  float64
	// The paper's architecture: p-port crossbar shared across VCs,
	// separable flit-by-flit switch allocation.
	SharedCrossbarTau4 float64
	SwitchAllocTau4    float64
}

// CompareWithChien evaluates both architectures with the same calibrated
// equations.
func CompareWithChien(p, v, w int) ChienComparison {
	const tau4 = 5.0
	return ChienComparison{
		P: p, V: v, W: w,
		ChienCrossbarTau4:  (ChienCrossbarDelay(p, v, w) + HCrossbar(p*v, w)) / tau4,
		ChienArbiterTau4:   (ChienSwitchArbiterDelay(p, v) + HSwitchArbiterWH(p*v)) / tau4,
		SharedCrossbarTau4: (TCrossbar(p, w) + HCrossbar(p, w)) / tau4,
		SwitchAllocTau4:    (TSwitchAllocVC(p, v) + HSwitchAllocVC(p, v)) / tau4,
	}
}

// ChienSweep evaluates the comparison over the paper's VC grid for a
// 5-port router, showing the divergence the paper's Section 2 describes:
// the per-VC-port crossbar and arbiter grow with p·v while the shared
// design grows only with v inside the allocator's first stage.
func ChienSweep(w int) []ChienComparison {
	var out []ChienComparison
	for _, v := range Figure11Grid.V {
		out = append(out, CompareWithChien(5, v, w))
	}
	return out
}
