package core

import "routersim/internal/logicaleffort"

// ModuleKind identifies an atomic module of the canonical router
// architectures (Figure 4).
type ModuleKind int

const (
	// ModRouting is decode + routing (black box, one full cycle).
	ModRouting ModuleKind = iota
	// ModSwitchArbiterWH is the wormhole switch arbiter (SB).
	ModSwitchArbiterWH
	// ModVCAlloc is the virtual-channel allocator (VC).
	ModVCAlloc
	// ModSwitchAllocVC is the VC-router switch allocator (SL).
	ModSwitchAllocVC
	// ModSpecAlloc is the combined VC + speculative switch allocation of
	// the speculative router (VC ‖ SS, followed by CB).
	ModSpecAlloc
	// ModCombine is the non-speculative-over-speculative grant selection
	// circuit (CB) when modelled as its own module.
	ModCombine
	// ModCrossbar is crossbar traversal (XB).
	ModCrossbar
)

func (k ModuleKind) String() string {
	switch k {
	case ModRouting:
		return "route+decode"
	case ModSwitchArbiterWH:
		return "sw arbitration"
	case ModVCAlloc:
		return "vc allocation"
	case ModSwitchAllocVC:
		return "sw allocation"
	case ModSpecAlloc:
		return "vc&sw allocation"
	case ModCombine:
		return "grant combine"
	case ModCrossbar:
		return "crossbar"
	default:
		return "unknown"
	}
}

// Module is one atomic module on a router's critical path, with the
// latency and overhead estimates produced by the specific router model.
// Atomic modules contain state dependent on their own outputs and are
// best kept intact within a single pipeline stage (Section 3.1).
type Module struct {
	Kind ModuleKind
	// T is the module latency in τ.
	T float64
	// H is the module overhead in τ (counted when the module is the
	// last in its pipeline stage, per EQ 1).
	H float64
	// FullStage marks modules the model always grants a whole pipeline
	// stage: routing (black-box convention) and the crossbar (wire-delay
	// allowance, Section 3.2).
	FullStage bool
}

// TotalTau4 returns (t+h) in τ4 units, the quantity tabulated in the
// "Model" column of Table 1.
func (m Module) TotalTau4() float64 { return logicaleffort.TauToTau4(m.T + m.H) }

// SpecOptions control how the speculative router's allocation stage is
// assembled (see DESIGN.md §3, "Interpretive choice").
type SpecOptions struct {
	// CombineInCrossbarStage folds the CB grant-selection mux into the
	// crossbar stage (which has slack, being a full-cycle stage) rather
	// than the allocation stage. This matches the paper's prose claim
	// that a speculative router with up to 16 VCs fits a 3-stage
	// pipeline; Table 1 and Figure 12 report the allocation stage WITH
	// CB included. Default true.
	CombineInCrossbarStage bool
}

// DefaultSpecOptions matches the paper's Figure 11(b) pipeline claims.
func DefaultSpecOptions() SpecOptions {
	return SpecOptions{CombineInCrossbarStage: true}
}

// CriticalPath returns the ordered atomic modules on the critical path
// of the canonical router for the given flow control (Figure 4):
//
//	wormhole:        routing → switch arbitration → crossbar
//	virtual-channel: routing → VC allocation → switch allocation → crossbar
//	speculative VC:  routing → (VC ‖ spec switch allocation) → crossbar
func CriticalPath(fc FlowControl, p Params, spec SpecOptions) []Module {
	return AppendCriticalPath(nil, fc, p, spec)
}

// AppendCriticalPath appends the critical-path modules to dst and
// returns the extended slice — the allocation-free form used by the
// pipeline Packer in per-design-point sweeps.
func AppendCriticalPath(dst []Module, fc FlowControl, p Params, spec SpecOptions) []Module {
	routing := Module{Kind: ModRouting, T: TRouting(), H: 0, FullStage: true}
	crossbar := Module{Kind: ModCrossbar, T: TCrossbar(p.P, p.W), H: HCrossbar(p.P, p.W), FullStage: true}

	switch fc {
	case Wormhole:
		return append(dst,
			routing,
			Module{Kind: ModSwitchArbiterWH, T: TSwitchArbiterWH(p.P), H: HSwitchArbiterWH(p.P)},
			crossbar,
		)
	case VirtualChannel:
		return append(dst,
			routing,
			Module{Kind: ModVCAlloc, T: TVCAlloc(p.Range, p.P, p.V), H: HVCAlloc(p.Range, p.P, p.V)},
			Module{Kind: ModSwitchAllocVC, T: TSwitchAllocVC(p.P, p.V), H: HSwitchAllocVC(p.P, p.V)},
			crossbar,
		)
	default: // SpeculativeVC
		alloc := Module{Kind: ModSpecAlloc}
		if spec.CombineInCrossbarStage {
			// The allocation stage is the slower of the parallel VC and
			// speculative-switch allocators; CB rides in the crossbar
			// stage's slack. Overhead: the VC allocator's matrix
			// priority update dominates (h = 9τ) when VC allocation is
			// the critical arm; the SS allocator has h = 0.
			tVC := TVCAlloc(p.Range, p.P, p.V)
			tSS := TSpecSwitchAlloc(p.P, p.V)
			if tVC >= tSS {
				alloc.T, alloc.H = tVC, HVCAlloc(p.Range, p.P, p.V)
			} else {
				alloc.T, alloc.H = tSS, HSpecSwitchAlloc(p.P, p.V)
			}
		} else {
			// Table 1 semantics: max(t_VC, t_SS) + t_CB, with the CB's
			// zero overhead terminating the stage.
			alloc.T = SpecAllocStageTau(p.Range, p.P, p.V)
			alloc.H = HCombine(p.P, p.V)
		}
		return append(dst, routing, alloc, crossbar)
	}
}
