package core

import (
	"math"
	"testing"

	"routersim/internal/logicaleffort"
)

// TestTable1Values validates the reconstructed parametric equations
// against every evaluated cell of Table 1 of the paper (p=5, w=32, v=2,
// clk=20τ4). The paper reports values to one decimal in τ4; we require
// agreement within 0.05 τ4 after rounding slack.
func TestTable1Values(t *testing.T) {
	for _, row := range Table1() {
		if math.Abs(row.Model-row.Paper) > 0.1 {
			t.Errorf("%s / %s: model %.2f τ4, paper %.1f τ4", row.Router, row.Module, row.Model, row.Paper)
		}
	}
}

func TestTable1AgainstSynopsys(t *testing.T) {
	// The paper states its projections are close to the Synopsys timing
	// analyzer (within ~2 τ4) in 0.18µm. Sanity-check our reconstruction
	// preserves that property.
	for _, row := range Table1() {
		if math.Abs(row.Model-row.Synopsys) > 2.2 {
			t.Errorf("%s / %s: model %.2f τ4 vs synopsys %.1f τ4 differ by more than the paper's validation bound",
				row.Router, row.Module, row.Model, row.Synopsys)
		}
	}
}

func TestEquationsMonotoneInPorts(t *testing.T) {
	// All module latencies must be nondecreasing in p and v: bigger
	// arbiters and wider fanouts are never faster.
	for p := 2; p <= 16; p++ {
		if TSwitchArbiterWH(p+1) < TSwitchArbiterWH(p) {
			t.Fatalf("t_SB not monotone at p=%d", p)
		}
		if TCrossbar(p+1, 32) < TCrossbar(p, 32) {
			t.Fatalf("t_XB not monotone in p at p=%d", p)
		}
		for v := 1; v <= 32; v *= 2 {
			for _, r := range []RoutingRange{RangeVC, RangePC, RangeAll} {
				if TVCAlloc(r, p+1, v) < TVCAlloc(r, p, v) {
					t.Fatalf("t_VC(%v) not monotone in p at p=%d v=%d", r, p, v)
				}
				if TVCAlloc(r, p, 2*v) < TVCAlloc(r, p, v) {
					t.Fatalf("t_VC(%v) not monotone in v at p=%d v=%d", r, p, v)
				}
			}
			if TSwitchAllocVC(p, 2*v) < TSwitchAllocVC(p, v) {
				t.Fatalf("t_SL not monotone in v at p=%d v=%d", p, v)
			}
			if TSpecSwitchAlloc(p, 2*v) < TSpecSwitchAlloc(p, v) {
				t.Fatalf("t_SS not monotone in v at p=%d v=%d", p, v)
			}
		}
	}
}

func TestVCAllocRangeOrdering(t *testing.T) {
	// More general routing functions require more complex allocators:
	// for v ≥ 2, t(R→v) ≤ t(R→p) ≤ t(R→pv).
	for _, p := range []int{3, 5, 7, 9} {
		for _, v := range []int{2, 4, 8, 16, 32} {
			rv, rp, rpv := TVCAlloc(RangeVC, p, v), TVCAlloc(RangePC, p, v), TVCAlloc(RangeAll, p, v)
			if rv > rp+1e-9 || rp > rpv+1e-9 {
				t.Errorf("p=%d v=%d: range ordering violated: Rv=%.1f Rp=%.1f Rpv=%.1f", p, v, rv, rp, rpv)
			}
		}
	}
}

func TestVCAllocDegeneratesAtV1(t *testing.T) {
	// With a single virtual channel the R→v and R→pv allocators reduce
	// to arbiters over p requestors; the switch allocator's first stage
	// disappears (log4(1)=0).
	if got, want := TVCAlloc(RangeVC, 5, 1), TSwitchArbiterWH(5); math.Abs(got-want) > 1e-9 {
		t.Errorf("R->v allocator at v=1 = %.2fτ, want switch-arbiter form %.2fτ", got, want)
	}
	sl1 := TSwitchAllocVC(5, 1)
	slWant := 11.5*logicaleffort.Log4(5) + 20.0 + 5.0/6.0
	if math.Abs(sl1-slWant) > 1e-9 {
		t.Errorf("t_SL(5,1) = %.3f, want %.3f", sl1, slWant)
	}
}

func TestRoutingIsOneFullCycle(t *testing.T) {
	if got := TRouting(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("routing black box = %vτ, want 100τ (20 τ4, footnote 2)", got)
	}
}

func TestSpecAllocStage(t *testing.T) {
	// At the paper's point the speculative switch allocator dominates
	// the VC allocator for R→v and R→p (hence the two identical 14.6
	// entries in Table 1), while the R→pv VC allocator dominates.
	const p, v = 5, 2
	tSS := TSpecSwitchAlloc(p, v)
	if TVCAlloc(RangeVC, p, v) > tSS || TVCAlloc(RangePC, p, v) > tSS {
		t.Error("expected t_SS to dominate Rv/Rp VC allocation at p=5,v=2")
	}
	if TVCAlloc(RangeAll, p, v) < tSS {
		t.Error("expected R->pv VC allocation to dominate t_SS at p=5,v=2")
	}
	if d := SpecAllocStageTau4(RangeVC, p, v); math.Abs(d-14.67) > 0.05 {
		t.Errorf("combined stage R->v = %.2f τ4, want 14.67", d)
	}
	if d := SpecAllocStageTau4(RangeAll, p, v); math.Abs(d-18.35) > 0.05 {
		t.Errorf("combined stage R->pv = %.2f τ4, want 18.35", d)
	}
}

func TestOverheads(t *testing.T) {
	// Matrix-arbiter based modules carry h = 9τ; pure combinational
	// modules (crossbar, speculative switch allocator output, combine
	// mux) carry h = 0.
	if HSwitchArbiterWH(5) != 9 || HVCAlloc(RangeAll, 5, 2) != 9 || HSwitchAllocVC(5, 2) != 9 {
		t.Error("arbiter-based overheads must be 9τ")
	}
	if HCrossbar(5, 32) != 0 || HSpecSwitchAlloc(5, 2) != 0 || HCombine(5, 2) != 0 {
		t.Error("combinational overheads must be 0τ")
	}
}
