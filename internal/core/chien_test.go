package core

import "testing"

// TestChienArchitectureSlowerWithVCs verifies the paper's Section 2
// argument quantitatively: under identical calibrated equations, the
// Chien-style per-VC-port crossbar and packet arbiter grow much faster
// with the VC count than the paper's shared-crossbar datapath.
func TestChienArchitectureSlowerWithVCs(t *testing.T) {
	cmp2 := CompareWithChien(5, 2, 32)
	cmp16 := CompareWithChien(5, 16, 32)

	// The shared crossbar is independent of v.
	if cmp2.SharedCrossbarTau4 != cmp16.SharedCrossbarTau4 {
		t.Errorf("shared crossbar delay should not depend on v: %v vs %v",
			cmp2.SharedCrossbarTau4, cmp16.SharedCrossbarTau4)
	}
	// The Chien crossbar grows with v.
	if cmp16.ChienCrossbarTau4 <= cmp2.ChienCrossbarTau4 {
		t.Errorf("Chien crossbar should grow with v: %v vs %v",
			cmp16.ChienCrossbarTau4, cmp2.ChienCrossbarTau4)
	}
	// At 16 VCs the Chien crossbar alone exceeds the paper's 20 τ4
	// clock cycle, while the shared crossbar still fits with slack.
	if cmp16.ChienCrossbarTau4 < 12 {
		t.Errorf("Chien crossbar at 16 VCs = %.1f τ4; expected a large penalty", cmp16.ChienCrossbarTau4)
	}
	if cmp16.SharedCrossbarTau4 > 10 {
		t.Errorf("shared crossbar = %.1f τ4; should fit easily", cmp16.SharedCrossbarTau4)
	}
	// Arbitration latency grows with v in both designs (Chien: a p·v
	// matrix arbiter; the paper: the separable allocator's v:1 first
	// stage) — the decisive difference is that Chien's arbitration is
	// per packet, holding the port for the whole packet, while the
	// separable allocator reallocates the switch every cycle. Assert
	// only the structural facts the equations encode.
	if cmp16.ChienArbiterTau4 <= cmp2.ChienArbiterTau4 {
		t.Errorf("Chien arbiter should grow with v: %v vs %v",
			cmp16.ChienArbiterTau4, cmp2.ChienArbiterTau4)
	}
	if cmp16.SwitchAllocTau4 <= cmp2.SwitchAllocTau4 {
		t.Errorf("separable allocator should grow with v: %v vs %v",
			cmp16.SwitchAllocTau4, cmp2.SwitchAllocTau4)
	}
}

func TestChienSweepShape(t *testing.T) {
	sweep := ChienSweep(32)
	if len(sweep) != len(Figure11Grid.V) {
		t.Fatalf("%d points, want %d", len(sweep), len(Figure11Grid.V))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i].ChienCrossbarTau4 <= sweep[i-1].ChienCrossbarTau4 {
			t.Errorf("Chien crossbar not monotone at v=%d", sweep[i].V)
		}
		if sweep[i].ChienArbiterTau4 <= sweep[i-1].ChienArbiterTau4 {
			t.Errorf("Chien arbiter not monotone at v=%d", sweep[i].V)
		}
	}
}
