package network

import (
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

func torusConfig(kind router.Kind, vcs int, rate float64) Config {
	rc := router.DefaultConfig(kind)
	rc.VCs = vcs
	rc.BufPerVC = 4
	return Config{
		K:             4,
		Topo:          topology.NewTorus(4),
		Router:        rc,
		InjectionRate: rate,
		Seed:          11,
	}
}

// TestTorusValidation: wormhole and odd VC counts are rejected.
func TestTorusValidation(t *testing.T) {
	bad := []Config{
		torusConfig(router.Wormhole, 1, 0.01),
		torusConfig(router.SingleCycleWormhole, 1, 0.01),
		torusConfig(router.VirtualChannel, 3, 0.01),
		torusConfig(router.VirtualChannel, 1, 0.01),
	}
	// The wormhole configs carry VCs != 1 from torusConfig; rebuild
	// them properly so only the torus rule trips.
	bad[0].Router.VCs = 1
	bad[1].Router.VCs = 1
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("bad torus config %d validated", i)
		}
	}
	good := torusConfig(router.SpeculativeVC, 2, 0.01)
	if err := good.Normalize(); err != nil {
		t.Errorf("valid torus config rejected: %v", err)
	}
}

// TestTorusDeliversAllTraffic: VC and speculative VC routers on a torus
// with dateline classes must deliver all traffic without deadlock, even
// under sustained load on the wraparound rings.
func TestTorusDeliversAllTraffic(t *testing.T) {
	for _, kind := range []router.Kind{router.VirtualChannel, router.SpeculativeVC} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			// 0.1 of torus capacity (= 0.2 flits/node/cycle). Dateline
			// classes leave non-wrapping traffic only half the VCs
			// (class 1), so the torus saturates well below its
			// bisection bound — the cost of this deadlock-avoidance
			// scheme. The point here is liveness, not peak throughput.
			net, err := New(torusConfig(kind, 2, 0.1*2.0/5))
			if err != nil {
				t.Fatal(err)
			}
			created, done := 0, 0
			net.OnPacketCreated = func(p *flit.Packet, now int64) { created++ }
			net.OnPacketDone = func(p *flit.Packet, now int64) { done++ }
			for now := int64(0); now < simCycles(20000); now++ {
				net.Step(now)
			}
			if created == 0 {
				t.Fatal("no packets created")
			}
			if float64(done) < 0.9*float64(created) {
				t.Fatalf("%v on torus: %d/%d packets delivered — possible deadlock",
					kind, done, created)
			}
		})
	}
}

// TestTorusUsesWrapLinks: with minimal routing on a torus, traffic
// between opposite edges must cross the wraparound links (shorter
// latency than the mesh path would give).
func TestTorusUsesWrapLinks(t *testing.T) {
	tor := topology.NewTorus(4)
	// Node (0,0) to (3,0): one hop west around the wrap.
	if d := tor.Distance(tor.Node(0, 0), tor.Node(3, 0)); d != 1 {
		t.Fatalf("wrap distance %d, want 1", d)
	}
	net, err := New(torusConfig(router.SpeculativeVC, 2, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	var maxLatency int64
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		if l := p.Latency(); l > maxLatency {
			maxLatency = l
		}
	}
	for now := int64(0); now < 8000; now++ {
		net.Step(now)
	}
	// On a 4x4 torus the diameter is 4 hops; with a 3-stage router the
	// worst zero-load packet latency must stay far below the 6-hop mesh
	// diameter equivalent (~40 cycles plus queueing).
	if maxLatency == 0 || maxLatency > 60 {
		t.Errorf("max latency %d cycles implausible for a 4x4 torus at near-zero load", maxLatency)
	}
}

// TestTorusVCMaskProperties: the dateline mask must always leave at
// least one candidate class, use class 0 only while the wrap is ahead,
// and use class 1 on and after the crossing hop.
func TestTorusVCMaskProperties(t *testing.T) {
	tor := topology.NewTorus(5)
	const v = 4
	class0 := topology.VCClassMask(v, false)
	class1 := topology.VCClassMask(v, true)
	for cur := 0; cur < tor.Nodes(); cur++ {
		for dst := 0; dst < tor.Nodes(); dst++ {
			if cur == dst {
				continue
			}
			// Walk the route, tracking when the wrap is crossed per
			// dimension.
			node := cur
			crossed := map[bool]bool{} // key: isYDim
			for node != dst {
				port := tor.Route(node, dst)
				mask := tor.VCMask(node, dst, port, v)
				if mask == 0 {
					t.Fatalf("empty VC mask at %d->%d via %s", node, dst, topology.PortName(port))
				}
				if mask != class0 && mask != class1 {
					t.Fatalf("mask %b is neither class at %d->%d", mask, node, dst)
				}
				isY := port == topology.PortNorth || port == topology.PortSouth
				wraps := tor.CrossesDateline(node, port)
				if crossed[isY] && mask != class1 {
					t.Fatalf("class 0 used after dateline at %d->%d", node, dst)
				}
				if wraps {
					// The crossing hop itself must already be class 1.
					if mask != class1 {
						t.Fatalf("crossing hop not class 1 at %d->%d", node, dst)
					}
					crossed[isY] = true
				}
				node, _ = tor.Neighbor(node, port)
			}
		}
	}
}
