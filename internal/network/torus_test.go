package network

import (
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

func torusConfig(kind router.Kind, vcs int, rate float64) Config {
	rc := router.DefaultConfig(kind)
	rc.VCs = vcs
	rc.BufPerVC = 4
	return Config{
		K:             4,
		Topo:          topology.NewTorus(4),
		Router:        rc,
		InjectionRate: rate,
		Seed:          11,
	}
}

// TestTorusValidation: wormhole and odd VC counts are rejected.
func TestTorusValidation(t *testing.T) {
	bad := []Config{
		torusConfig(router.Wormhole, 1, 0.01),
		torusConfig(router.SingleCycleWormhole, 1, 0.01),
		torusConfig(router.VirtualChannel, 3, 0.01),
		torusConfig(router.VirtualChannel, 1, 0.01),
	}
	// The wormhole configs carry VCs != 1 from torusConfig; rebuild
	// them properly so only the torus rule trips.
	bad[0].Router.VCs = 1
	bad[1].Router.VCs = 1
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("bad torus config %d validated", i)
		}
	}
	good := torusConfig(router.SpeculativeVC, 2, 0.01)
	if err := good.Normalize(); err != nil {
		t.Errorf("valid torus config rejected: %v", err)
	}
}

// TestTorusDeliversAllTraffic: VC and speculative VC routers on a torus
// with dateline classes must deliver all traffic without deadlock, even
// under sustained load on the wraparound rings.
func TestTorusDeliversAllTraffic(t *testing.T) {
	for _, kind := range []router.Kind{router.VirtualChannel, router.SpeculativeVC} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			// 0.2 flits/node/cycle. Dateline
			// classes leave non-wrapping traffic only half the VCs
			// (class 1), so the torus saturates well below its
			// bisection bound — the cost of this deadlock-avoidance
			// scheme. The point here is liveness, not peak throughput.
			net, err := New(torusConfig(kind, 2, 0.1*2.0/5))
			if err != nil {
				t.Fatal(err)
			}
			created, done := 0, 0
			net.OnPacketCreated = func(p *flit.Packet, now int64) { created++ }
			net.OnPacketDone = func(p *flit.Packet, now int64) { done++ }
			for now := int64(0); now < simCycles(20000); now++ {
				net.Step(now)
			}
			if created == 0 {
				t.Fatal("no packets created")
			}
			if float64(done) < 0.9*float64(created) {
				t.Fatalf("%v on torus: %d/%d packets delivered — possible deadlock",
					kind, done, created)
			}
		})
	}
}

// TestTorusUsesWrapLinks: with minimal routing on a torus, traffic
// between opposite edges must cross the wraparound links (shorter
// latency than the mesh path would give).
func TestTorusUsesWrapLinks(t *testing.T) {
	tor := topology.NewTorus(4)
	// Node (0,0) to (3,0): one hop west around the wrap.
	if d := tor.Distance(tor.Node(0, 0), tor.Node(3, 0)); d != 1 {
		t.Fatalf("wrap distance %d, want 1", d)
	}
	net, err := New(torusConfig(router.SpeculativeVC, 2, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	var maxLatency int64
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		if l := p.Latency(); l > maxLatency {
			maxLatency = l
		}
	}
	for now := int64(0); now < 8000; now++ {
		net.Step(now)
	}
	// On a 4x4 torus the diameter is 4 hops; with a 3-stage router the
	// worst zero-load packet latency must stay far below the 6-hop mesh
	// diameter equivalent (~40 cycles plus queueing).
	if maxLatency == 0 || maxLatency > 60 {
		t.Errorf("max latency %d cycles implausible for a 4x4 torus at near-zero load", maxLatency)
	}
}

// TestWrapTopologiesDeliverAllTraffic extends the torus liveness check
// to the other wraparound topology (the ring) and the hypercube, each
// built from its spec: sustained load must drain without deadlock.
func TestWrapTopologiesDeliverAllTraffic(t *testing.T) {
	specs := []string{"ring:12", "hypercube:16", "torus:k=3,n=3"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			topo, err := topology.New(spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			rc := router.DefaultConfig(router.SpeculativeVC)
			cfg := Config{
				Topo:          topo,
				Router:        rc,
				InjectionRate: 0.1 * topo.UniformCapacity() / 5,
				Seed:          11,
			}
			net, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			created, done := 0, 0
			net.OnPacketCreated = func(p *flit.Packet, now int64) { created++ }
			net.OnPacketDone = func(p *flit.Packet, now int64) { done++ }
			for now := int64(0); now < simCycles(20000); now++ {
				net.Step(now)
			}
			if created == 0 {
				t.Fatal("no packets created")
			}
			if float64(done) < 0.9*float64(created) {
				t.Fatalf("%s: %d/%d packets delivered — possible deadlock", spec, done, created)
			}
		})
	}
}

// TestWormholeRejectedOnWrapTopologies: the deadlock-avoidance rule now
// lives behind the topology interface — every topology with VC classes
// must reject wormhole flow control, not just the 2-D torus.
func TestWormholeRejectedOnWrapTopologies(t *testing.T) {
	for _, spec := range []string{"ring:8", "torus:k=4,n=3"} {
		topo, err := topology.New(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		rc := router.DefaultConfig(router.Wormhole)
		cfg := Config{Topo: topo, Router: rc, InjectionRate: 0.01, Seed: 1}
		if err := cfg.Normalize(); err == nil {
			t.Errorf("%s accepted a wormhole router", spec)
		}
	}
	// The hypercube has no VC classes: wormhole is legal there.
	topo, err := topology.New("hypercube:16", 0)
	if err != nil {
		t.Fatal(err)
	}
	rc := router.DefaultConfig(router.Wormhole)
	cfg := Config{Topo: topo, Router: rc, InjectionRate: 0.01, Seed: 1}
	if err := cfg.Normalize(); err != nil {
		t.Errorf("hypercube rejected a wormhole router: %v", err)
	}
}
