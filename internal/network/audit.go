package network

import (
	"fmt"
	"math/bits"
	"strings"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// This file implements the opt-in engine invariant auditor
// (Config.Audit): every K cycles the network verifies its conservation
// invariants and panics with a diagnostic snapshot on the first
// violation. The auditor is a self-checking oracle for fuzzing, CI, and
// long sweeps — any engine bug that leaks, duplicates, or strands a
// flit or credit trips it within K cycles instead of surfacing as a
// silently wrong curve.
//
// Invariants checked:
//
//  1. Flit conservation: every flit ever injected by a source is
//     either still in flight (an input FIFO or an input wire) or has
//     drained through an ejection port (delivered or dropped).
//  2. Per-wire credit conservation: for every inter-router link and
//     every allocatable VC, the upstream credit counter, the credits
//     committed by latched switch grants, the flits on the flit wire
//     and in the downstream FIFO, and the credits on the return wire
//     sum to exactly the downstream buffer depth. The same loop is
//     closed for every source's injection channel.
//  3. Buffer occupancy bounds: no input FIFO exceeds its router's
//     BufPerVC; no credit counter is negative or above its loop bound.
//
// Timing: the single-clock engines audit at the end of Network.Step
// (all routers stepped, ejections drained, sources stepped). The
// sharded engine audits at a barrier where every shard clock has
// converged on the audit deadline — runRound clamps each round's
// horizons to the deadline, exactly like the fault-application clamp,
// so no shard runs past it until all reach it and the boundary
// outboxes have been flushed. Faults never break the invariants: a
// fault only rewrites routing tables, so in-flight flits drain
// normally and every wire keeps its credit loop.

// runAudit verifies the invariants; now is the last completed cycle
// (for diagnostics only). It must be called with no shard running.
func (n *Network) runAudit(now int64) {
	injected, drained := n.auditCounters()

	// Sharded runs audit only at converged barriers: every boundary
	// outbox must have been moved, otherwise the wire census below
	// would miss in-flight items.
	if n.shards != nil {
		for i := range n.flitXfers {
			if l := n.flitXfers[i].out.Len(); l != 0 {
				n.auditFail(now, fmt.Sprintf("boundary flit outbox %d holds %d flits at a barrier audit", i, l))
			}
		}
		for i := range n.creditXfers {
			if l := n.creditXfers[i].out.Len(); l != 0 {
				n.auditFail(now, fmt.Sprintf("boundary credit outbox %d holds %d credits at a barrier audit", i, l))
			}
		}
	}

	// 1. Flit conservation.
	inflight := int64(0)
	for _, r := range n.routers {
		inflight += int64(r.BufferedTotal()) + int64(r.InputWireTotal())
	}
	if injected != drained+inflight {
		n.auditFail(now, fmt.Sprintf("flit conservation: injected %d != drained %d + in-flight %d",
			injected, drained, inflight))
	}

	// 2 + 3. Credit loops and occupancy bounds.
	ports := n.topo.Ports()
	var onWire, onCredit [64]int
	for id, u := range n.routers {
		for p := 1; p < ports; p++ {
			next, inPort, ok := n.topo.Neighbor(id, p)
			if !ok || !u.HasOutputWire(p) {
				continue
			}
			v := n.routers[next]
			for i := range onWire {
				onWire[i], onCredit[i] = 0, 0
			}
			v.ScanInputWire(inPort, func(f flit.Flit) { onWire[f.VC]++ })
			u.ScanCreditWire(p, func(c router.Credit) { onCredit[c.VC]++ })
			expected := v.Config().BufPerVC
			for m := u.OutVCMask(p); m != 0; m &= m - 1 {
				vc := bits.TrailingZeros64(m)
				credits := u.Credits(p, vc)
				if credits < 0 || credits > expected {
					n.auditFail(now, fmt.Sprintf("credit counter out of bounds: router %d out %d vc %d has %d credits (loop bound %d)",
						id, p, vc, credits, expected))
				}
				committed := u.CommittedCredits(p, vc)
				have := credits + committed + onWire[vc] + v.BufferedFlits(inPort, vc) + onCredit[vc]
				if have != expected {
					n.auditFail(now, fmt.Sprintf(
						"credit conservation on link %d:out%d → %d:in%d vc %d: credits=%d committed=%d flits-on-wire=%d buffered=%d credits-on-wire=%d, sum %d != downstream BufPerVC %d",
						id, p, next, inPort, vc, credits, committed, onWire[vc],
						v.BufferedFlits(inPort, vc), onCredit[vc], have, expected))
				}
			}
		}
		ucfg := u.Config()
		for p := 0; p < ports; p++ {
			for vc := 0; vc < ucfg.VCs; vc++ {
				if occ := u.BufferedFlits(p, vc); occ > ucfg.BufPerVC {
					n.auditFail(now, fmt.Sprintf("buffer overflow: router %d in %d vc %d holds %d flits (BufPerVC %d)",
						id, p, vc, occ, ucfg.BufPerVC))
				}
			}
		}
	}

	// 2b. Source injection channels (the upstream end of each local
	// input port's credit loop; the source consumes its credit in the
	// same cycle it pushes, so there is no committed-grant term).
	for id, s := range n.sources {
		r := n.routers[id]
		for i := range onWire {
			onWire[i], onCredit[i] = 0, 0
		}
		r.ScanInputWire(topology.PortLocal, func(f flit.Flit) { onWire[f.VC]++ })
		s.creditIn.Scan(func(c router.Credit) { onCredit[c.VC]++ })
		expected := r.Config().BufPerVC
		for vc := range s.credits {
			have := s.credits[vc] + onWire[vc] + r.BufferedFlits(topology.PortLocal, vc) + onCredit[vc]
			if have != expected {
				n.auditFail(now, fmt.Sprintf(
					"credit conservation on injection channel of node %d vc %d: credits=%d flits-on-wire=%d buffered=%d credits-on-wire=%d, sum %d != BufPerVC %d",
					id, vc, s.credits[vc], onWire[vc],
					r.BufferedFlits(topology.PortLocal, vc), onCredit[vc], have, expected))
			}
		}
	}
}

// auditCounters sums the injected/drained flit counters across the
// engine's counter homes (per-shard on sharded networks to keep the
// hot-path increments race-free).
func (n *Network) auditCounters() (injected, drained int64) {
	if n.shards != nil {
		for _, sh := range n.shards {
			injected += sh.injected
			drained += sh.drained
		}
		return injected, drained
	}
	return n.auditInjected, n.auditDrained
}

func (n *Network) auditFail(now int64, msg string) {
	panic(fmt.Sprintf("network: audit failed after cycle %d: %s\n%s", now, msg, n.DiagSnapshot()))
}

// DiagSnapshot formats a bounded diagnostic view of the network's
// in-flight state: how many routers are active, total buffered and
// on-wire flits, the injected/drained counters, and — for the first
// few active routers — per-output-port per-VC credit state. The sim
// layer's livelock watchdog attaches it to its abort error; the
// auditor attaches it to violation panics. It must be called with no
// shard running.
func (n *Network) DiagSnapshot() string {
	var b strings.Builder
	active, buffered, onWires := 0, 0, 0
	var activeIDs []int
	for id, r := range n.routers {
		buffered += r.BufferedTotal()
		onWires += r.InputWireTotal()
		if !r.Idle() {
			active++
			if len(activeIDs) < 16 {
				activeIDs = append(activeIDs, id)
			}
		}
	}
	injected, drained := n.auditCounters()
	fmt.Fprintf(&b, "%d/%d routers active; %d flits buffered, %d on wires; %d injected, %d drained",
		active, n.topo.Nodes(), buffered, onWires, injected, drained)
	if active > 0 {
		fmt.Fprintf(&b, "\nactive routers (first %d of %d): %v", len(activeIDs), active, activeIDs)
	}
	ports := n.topo.Ports()
	detail := activeIDs
	if len(detail) > 8 {
		detail = detail[:8]
	}
	for _, id := range detail {
		r := n.routers[id]
		fmt.Fprintf(&b, "\nrouter %4d: buffered=%d wire=%d credits", id, r.BufferedTotal(), r.InputWireTotal())
		for p := 1; p < ports; p++ {
			if !r.HasOutputWire(p) {
				continue
			}
			fmt.Fprintf(&b, " out%d[", p)
			first := true
			for m := r.OutVCMask(p); m != 0; m &= m - 1 {
				vc := bits.TrailingZeros64(m)
				if !first {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "%d", r.Credits(p, vc))
				first = false
			}
			b.WriteByte(']')
		}
	}
	return b.String()
}
