// Package network assembles routers into the paper's evaluation system:
// a topology graph (the paper's k×k mesh, or any topology.Topology —
// k-ary n-cube tori, hypercubes, rings) with dimension-ordered routing,
// credit-based flow control on every link, constant-rate traffic
// sources with infinite source queues, and immediate ejection at
// destinations (Section 5). The router port count and any
// deadlock-avoidance VC-class policy come from the topology itself.
package network

import (
	"fmt"

	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/pool"
	"routersim/internal/rng"
	"routersim/internal/router"
	"routersim/internal/stats"
	"routersim/internal/topology"
	"routersim/internal/traffic"
)

// Config parameterizes a network simulation instance.
type Config struct {
	// K is the mesh radix (the paper uses an 8×8 mesh). Ignored when
	// Topo is set.
	K int
	// Router configures every router in the mesh.
	Router router.Config
	// PacketSize is the packet length in flits (paper: 5).
	PacketSize int
	// InjectionRate is the offered load in packets per node per cycle.
	InjectionRate float64
	// Pattern chooses destinations (nil = uniform random).
	Pattern traffic.Pattern
	// Bernoulli switches the injection process from the paper's
	// constant-rate source to a Bernoulli process.
	Bernoulli bool
	// FlitDelay is the link propagation delay in cycles (paper: 1).
	FlitDelay int
	// CreditDelay is the credit propagation delay in cycles (paper: 1;
	// 4 in the Figure 18 experiment).
	CreditDelay int
	// Topo overrides the topology (nil = K×K mesh). A topology whose
	// VCClasses() > 1 (tori, rings) requires a VC router kind with a VC
	// count that is a positive multiple of the class count: deadlock
	// freedom on the wraparound rings comes from dateline VC classes,
	// which wormhole flow control cannot provide.
	Topo topology.Topology
	// StepWorkers selects the deterministic parallel stepper: with a
	// value > 1, Step runs the routers' deliver and compute phases on
	// that many persistent workers. Results are byte-identical to the
	// serial engine for any worker count; 0 or 1 is the serial engine.
	// Networks using the parallel stepper must be Closed after use.
	StepWorkers int
	// FullScan selects the legacy stepper that scans every router and
	// every source each cycle instead of the active-set scheduler.
	// Results are byte-identical either way; the full scan exists as
	// the reference engine for the scheduler's event-trace identity
	// tests and as the benchmark baseline. It also disables NextDue's
	// quiescence fast-forward (NextDue always answers now+1).
	FullScan bool
	// Seed makes the simulation exactly reproducible.
	Seed uint64
}

// Normalize fills defaults and validates.
func (c *Config) Normalize() error {
	if c.K == 0 {
		c.K = 8
	}
	if c.K < 2 {
		return fmt.Errorf("network: mesh radix %d; need >= 2", c.K)
	}
	if c.PacketSize == 0 {
		c.PacketSize = 5
	}
	if c.PacketSize < 1 {
		return fmt.Errorf("network: packet size %d; need >= 1", c.PacketSize)
	}
	if c.FlitDelay == 0 {
		c.FlitDelay = 1
	}
	if c.CreditDelay == 0 {
		c.CreditDelay = 1
	}
	if c.FlitDelay < 1 || c.CreditDelay < 1 {
		return fmt.Errorf("network: propagation delays must be >= 1 cycle")
	}
	if c.StepWorkers < 0 {
		return fmt.Errorf("network: negative step worker count %d", c.StepWorkers)
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
	if c.InjectionRate < 0 {
		return fmt.Errorf("network: negative injection rate")
	}
	if c.Topo == nil {
		mesh, err := topology.NewCube(c.K, 2, false)
		if err != nil {
			return fmt.Errorf("network: %w", err)
		}
		c.Topo = mesh
	}
	// The router port count is purely structural — the topology fully
	// determines it — so Normalize always derives it. (Router.Ports
	// stays a real parameter for direct router construction; here any
	// stated value, including DefaultConfig's 2-D mesh 5, is replaced.)
	c.Router.Ports = c.Topo.Ports()
	// Deadlock avoidance is the topology's call: a class count > 1
	// (dateline classes on wraparound rings) needs VC flow control with
	// the VCs split evenly across classes.
	if classes := c.Topo.VCClasses(); classes > 1 {
		if !c.Router.Kind.UsesVCs() {
			return fmt.Errorf("network: %v routers deadlock on a %s; use a VC router kind", c.Router.Kind, c.Topo.Name())
		}
		if c.Router.VCs < classes || c.Router.VCs%classes != 0 {
			return fmt.Errorf("network: %s VC classes need a positive multiple of %d VCs, got %d",
				c.Topo.Name(), classes, c.Router.VCs)
		}
	}
	return c.Router.Validate()
}

// Network is a running mesh or torus of routers, sources, and sinks.
type Network struct {
	cfg     Config
	topo    topology.Topology
	routers []*router.Router
	sources []*source

	// OnPacketCreated is called when a source generates a packet
	// (before queueing); the simulator uses it to tag the sample space.
	OnPacketCreated func(p *flit.Packet, now int64)
	// OnFlitEjected is called for every flit leaving the network.
	OnFlitEjected func(f flit.Flit, now int64)
	// OnPacketDone is called when a packet's last flit is ejected. The
	// packet is recycled when the callback returns: callbacks must not
	// retain p.
	OnPacketDone func(p *flit.Packet, now int64)

	nextPacketID int64

	// pktFree is the packet pool: packets are recycled when their last
	// flit is ejected, so a steady-state Step allocates nothing.
	pktFree []*flit.Packet

	// gang and the prebuilt phase closures implement the deterministic
	// parallel stepper. parNow carries the cycle into the closures
	// without a per-cycle allocation; the gang's run barrier orders the
	// write against the workers' reads.
	gang      *pool.Gang
	parNow    int64
	deliverFn func(i int)
	computeFn func(i int)
	probed    bool

	// sched is the active-set scheduler (nil when cfg.FullScan): the
	// per-cycle worklists that make Step cost O(in-flight work) instead
	// of O(nodes). See sched.go.
	sched *scheduler
}

// New builds the network. The configuration is normalized in place.
func New(cfg Config) (*Network, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, topo: cfg.Topo}
	nodes := n.topo.Nodes()
	master := rng.New(cfg.Seed)

	// Precompute per-router routing tables (dst → output port) and, on
	// topologies with deadlock-avoidance VC classes (tori, rings), the
	// candidate masks (dst, port) — the routing and VC-allocation stages
	// are table lookups, not calls.
	hasClasses := n.topo.VCClasses() > 1
	ports := cfg.Router.Ports
	n.routers = make([]*router.Router, nodes)
	for id := 0; id < nodes; id++ {
		routes := make([]uint8, nodes)
		for dst := 0; dst < nodes; dst++ {
			routes[dst] = uint8(n.topo.Route(id, dst))
		}
		n.routers[id] = router.New(id, cfg.Router, routes)
		if hasClasses {
			vcs := cfg.Router.VCs
			classTab := make([]uint64, nodes*ports)
			for dst := 0; dst < nodes; dst++ {
				for port := 0; port < ports; port++ {
					classTab[dst*ports+port] = n.topo.VCMask(id, dst, port, vcs)
				}
			}
			n.routers[id].SetVCClassTable(classTab)
		}
	}

	// Inter-router links: for every directional output port with a
	// neighbour, a flit wire (us → them) and a credit wire (them → us).
	// The topology names the input port the link lands on. Credit wires
	// are presized to the credit-loop bound (every buffer slot of the
	// fed input port can have a credit in flight at once): the
	// active-set scheduler drains a sleeping receiver's credit wires
	// only at its next wake, so the backlog is real, not a bug.
	creditCap := cfg.Router.VCs*cfg.Router.BufPerVC + cfg.CreditDelay
	for id := 0; id < nodes; id++ {
		for port := 1; port < ports; port++ {
			next, inPort, ok := n.topo.Neighbor(id, port)
			if !ok {
				continue
			}
			fw := link.NewWire[flit.Flit](cfg.FlitDelay)
			cw := link.NewWireCap[router.Credit](cfg.CreditDelay, creditCap)
			n.routers[id].ConnectOutput(port, fw, cw)
			n.routers[next].ConnectInput(inPort, fw, cw)
		}
	}

	// Sources: one per node, feeding the router's local input port
	// through an injection channel with the same propagation delays.
	n.sources = make([]*source, nodes)
	for id := 0; id < nodes; id++ {
		fw := link.NewWire[flit.Flit](cfg.FlitDelay)
		cw := link.NewWireCap[router.Credit](cfg.CreditDelay, creditCap)
		n.routers[id].ConnectInput(topology.PortLocal, fw, cw)
		nodeRNG := master.Split(uint64(id))
		var inj traffic.Injector
		if cfg.Bernoulli {
			inj = traffic.NewBernoulli(cfg.InjectionRate, nodeRNG.Split(1))
		} else {
			inj = traffic.NewConstantRate(cfg.InjectionRate, nodeRNG.Float64())
		}
		n.sources[id] = newSource(n, id, inj, nodeRNG, fw, cw)
	}

	if !cfg.FullScan {
		n.sched = newScheduler(n)
	}

	if cfg.StepWorkers > 1 {
		n.gang = pool.NewGang(cfg.StepWorkers)
		if cfg.FullScan {
			// In the deliver phase every router touches only its own
			// input wires, so the full Idle check is safe; in the
			// compute phase other routers push onto this router's input
			// wires, so only the router-local ComputeIdle check may be
			// used.
			n.deliverFn = func(i int) {
				if r := n.routers[i]; !r.Idle() {
					r.Deliver(n.parNow)
				}
			}
			n.computeFn = func(i int) {
				if r := n.routers[i]; !r.ComputeIdle() {
					r.Compute(n.parNow)
				}
			}
		} else {
			// The phases run over the active-list snapshot: every listed
			// router has an arrival due or router-local work, so no idle
			// filtering is needed.
			n.deliverFn = func(i int) { n.routers[n.sched.active[i]].Deliver(n.parNow) }
			n.computeFn = func(i int) { n.routers[n.sched.active[i]].Compute(n.parNow) }
		}
	}
	return n, nil
}

// Close releases the parallel stepper's workers. It is a no-op for
// serial networks and must not be called twice.
func (n *Network) Close() {
	if n.gang != nil {
		n.gang.Close()
		n.gang = nil
	}
}

// Config returns the (normalized) configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of network nodes.
func (n *Network) Nodes() int { return n.topo.Nodes() }

// Capacity returns the uniform-traffic capacity in flits/node/cycle.
func (n *Network) Capacity() float64 { return n.topo.UniformCapacity() }

// Topology returns the network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Router returns the router at a node (for tests and probes).
func (n *Network) Router(id int) *router.Router { return n.routers[id] }

// SourceQueueLen returns the source-queue depth at a node (for tests).
func (n *Network) SourceQueueLen(id int) int { return n.sources[id].queueLen() }

// SetProbes installs buffer-turnaround probes on every router. Probes
// share one accumulator, so a probed network always steps serially.
func (n *Network) SetProbes(t *stats.Turnaround) {
	n.probed = true
	for _, r := range n.routers {
		r.SetProbe(t)
	}
}

// Step advances the whole network one cycle. Routers exchange all state
// through ≥1-cycle wires, so the visit order within a cycle is
// immaterial — which is also what makes the two-phase parallel stepper
// exact: every Deliver only consumes items pushed in earlier cycles,
// and every Compute only pushes items deliverable in later cycles.
// Ejection callbacks and traffic sources always run serially, in node
// order, so callback order (and thus all derived measurement) is
// identical for any worker count.
func (n *Network) Step(now int64) {
	if n.sched != nil {
		n.stepActive(now)
		return
	}
	if n.gang != nil && !n.probed {
		n.parNow = now
		n.gang.Run(len(n.routers), n.deliverFn)
		n.gang.Run(len(n.routers), n.computeFn)
	} else {
		for _, r := range n.routers {
			// Skip routers with no buffered flits, latched grants, or
			// in-flight wire traffic: stepping them is a no-op.
			if r.Idle() {
				continue
			}
			r.Step(now)
		}
	}
	for id, r := range n.routers {
		ejected := r.Ejected()
		if len(ejected) == 0 {
			continue
		}
		for _, f := range ejected {
			n.handleEject(id, f, now)
		}
		r.ClearEjected()
	}
	for _, s := range n.sources {
		s.step(now)
	}
	// (Router flit-push masks are wake bookkeeping for the active-set
	// engine; the full scan visits everyone anyway and never reads
	// them, so the stale bits are simply ignored.)
}

func (n *Network) handleEject(at int, f flit.Flit, now int64) {
	if f.Pkt.Dst != at {
		panic(fmt.Sprintf("network: flit of packet %d (dst %d) ejected at node %d", f.Pkt.ID, f.Pkt.Dst, at))
	}
	if n.OnFlitEjected != nil {
		n.OnFlitEjected(f, now)
	}
	if f.Pkt.Done() {
		if n.OnPacketDone != nil {
			n.OnPacketDone(f.Pkt, now)
		}
		n.freePacket(f.Pkt)
	}
}

// allocPacket takes a zeroed packet from the pool (or allocates one).
func (n *Network) allocPacket() *flit.Packet {
	if len(n.pktFree) == 0 {
		return &flit.Packet{}
	}
	p := n.pktFree[len(n.pktFree)-1]
	n.pktFree = n.pktFree[:len(n.pktFree)-1]
	return p
}

// freePacket recycles a fully ejected packet.
func (n *Network) freePacket(p *flit.Packet) {
	p.Reset()
	n.pktFree = append(n.pktFree, p)
}
