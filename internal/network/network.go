// Package network assembles routers into the paper's evaluation system:
// a topology graph (the paper's k×k mesh, or any topology.Topology —
// k-ary n-cube tori, hypercubes, rings) with dimension-ordered routing,
// credit-based flow control on every link, constant-rate traffic
// sources with infinite source queues, and immediate ejection at
// destinations (Section 5). The router port count and any
// deadlock-avoidance VC-class policy come from the topology itself.
package network

import (
	"fmt"

	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/pool"
	"routersim/internal/rng"
	"routersim/internal/router"
	"routersim/internal/stats"
	"routersim/internal/topology"
	"routersim/internal/trace"
	"routersim/internal/traffic"
)

// Config parameterizes a network simulation instance.
type Config struct {
	// K is the mesh radix (the paper uses an 8×8 mesh). Ignored when
	// Topo is set.
	K int
	// Router configures every router in the mesh.
	Router router.Config
	// PacketSize is the packet length in flits (paper: 5).
	PacketSize int
	// InjectionRate is the offered load in packets per node per cycle.
	InjectionRate float64
	// Pattern chooses destinations (nil = uniform random).
	Pattern traffic.Pattern
	// Bernoulli switches the injection process from the paper's
	// constant-rate source to a Bernoulli process. It is the legacy
	// spelling of Source{Kind: "bernoulli"}; Normalize folds it in.
	Bernoulli bool
	// Source selects the arrival process each source runs (see
	// traffic.ParseSource). The zero value is the paper's constant-rate
	// source.
	Source traffic.SourceSpec
	// Sizes, when non-nil, draws each packet's size in flits instead of
	// the fixed PacketSize (see traffic.ParseSizes). Sampled from the
	// source's RNG stream, immediately after the destination draw.
	Sizes traffic.Sizer
	// Replay is the captured workload a "trace" Source re-injects. It
	// must be validated and match the topology's node count; Normalize
	// derives InjectionRate from it.
	Replay *trace.Trace
	// Overrides deviate individual routers from the global VCs,
	// BufPerVC, and link delay (see ParseOverrides). Later entries win
	// on conflict.
	Overrides []RouterOverride
	// Routing selects the routing policy: "" or "dor" for the paper's
	// deterministic dimension-order routing (precomputed tables,
	// bit-identical to every run before policies existed), or
	// "adaptive:minimal" for minimal-adaptive routing over escape VCs
	// (see routing.go). Adaptive routing needs a VC router kind, at
	// least VCClasses()+1 VCs, uniform VC counts, and a network small
	// enough for routing tables (topology.MaxNodes).
	Routing string
	// Faults is the deterministic fault-injection plan: ';'-separated
	// events like "link:3-7@cycle=1000", "router:12@cycle=0", or seeded
	// random draws "rand:links=2,seed=9@cycle=500" (see faults.go).
	// Empty means no faults. Faulted networks require routing tables.
	Faults string
	// FlitDelay is the link propagation delay in cycles (paper: 1).
	FlitDelay int
	// CreditDelay is the credit propagation delay in cycles (paper: 1;
	// 4 in the Figure 18 experiment).
	CreditDelay int
	// Topo overrides the topology (nil = K×K mesh). A topology whose
	// VCClasses() > 1 (tori, rings) requires a VC router kind with a VC
	// count that is a positive multiple of the class count: deadlock
	// freedom on the wraparound rings comes from dateline VC classes,
	// which wormhole flow control cannot provide.
	Topo topology.Topology
	// StepWorkers selects the deterministic parallel stepper: with a
	// value > 1, Step runs the routers' deliver and compute phases on
	// that many persistent workers. Results are byte-identical to the
	// serial engine for any worker count; 0 or 1 is the serial engine.
	// Networks using the parallel stepper must be Closed after use.
	StepWorkers int
	// FullScan selects the legacy stepper that scans every router and
	// every source each cycle instead of the active-set scheduler.
	// Results are byte-identical either way; the full scan exists as
	// the reference engine for the scheduler's event-trace identity
	// tests and as the benchmark baseline. It also disables NextDue's
	// quiescence fast-forward (NextDue always answers now+1).
	FullScan bool
	// Shards splits the network into that many balanced node sets
	// (boundary-minimizing partitions; cube-aligned slabs when those
	// are already optimal) that step independently, one goroutine
	// each, between bulk boundary exchanges, windows bounded per
	// neighbor pair by link delay and credit-loop slack (see
	// shard.go) — the engine for scaling wall-clock across cores on
	// large networks.
	// Results are byte-identical to the serial engine for any shard
	// count. 0 or 1 keeps the single-range engines; values > 1 require
	// the active-set scheduler (FullScan off) and at most one shard
	// per node, and the network must be Closed after use. Composes
	// with StepWorkers: each shard then runs its own worker gang.
	Shards int
	// Seed makes the simulation exactly reproducible.
	Seed uint64
	// Audit, when > 0, turns on the engine invariant auditor: every
	// Audit cycles the network verifies flit conservation, per-wire
	// credit conservation, and buffer occupancy bounds, and panics with
	// a diagnostic snapshot on the first violation (see audit.go). The
	// checks are observationally side-effect free — results are
	// byte-identical with auditing on or off, on every engine. 0 (the
	// default) keeps the audit entirely off the hot path.
	Audit int

	// routing and faultPlan are the parsed forms of Routing and Faults,
	// filled by Normalize.
	routing   routingMode
	faultPlan *FaultPlan
}

// Normalize fills defaults and validates.
func (c *Config) Normalize() error {
	if c.K == 0 {
		c.K = 8
	}
	if c.K < 2 {
		return fmt.Errorf("network: mesh radix %d; need >= 2", c.K)
	}
	if c.PacketSize == 0 {
		c.PacketSize = 5
	}
	if c.PacketSize < 1 {
		return fmt.Errorf("network: packet size %d; need >= 1", c.PacketSize)
	}
	if c.FlitDelay == 0 {
		c.FlitDelay = 1
	}
	if c.CreditDelay == 0 {
		c.CreditDelay = 1
	}
	if c.FlitDelay < 1 || c.CreditDelay < 1 {
		return fmt.Errorf("network: propagation delays must be >= 1 cycle")
	}
	if c.StepWorkers < 0 {
		return fmt.Errorf("network: negative step worker count %d", c.StepWorkers)
	}
	if c.Shards < 0 {
		return fmt.Errorf("network: negative shard count %d", c.Shards)
	}
	if c.Audit < 0 {
		return fmt.Errorf("network: negative audit interval %d", c.Audit)
	}
	if c.Pattern == nil {
		c.Pattern = traffic.Uniform{}
	}
	if c.InjectionRate < 0 {
		return fmt.Errorf("network: negative injection rate")
	}
	if c.Topo == nil {
		mesh, err := topology.NewCube(c.K, 2, false)
		if err != nil {
			return fmt.Errorf("network: %w", err)
		}
		c.Topo = mesh
	}
	if c.Shards > 1 {
		if c.FullScan {
			return fmt.Errorf("network: sharding requires the active-set scheduler; FullScan is the single-range reference engine")
		}
		if nodes := c.Topo.Nodes(); c.Shards > nodes {
			return fmt.Errorf("network: %d shards over %d nodes; need at most one shard per node", c.Shards, nodes)
		}
	}
	// The router port count is purely structural — the topology fully
	// determines it — so Normalize always derives it. (Router.Ports
	// stays a real parameter for direct router construction; here any
	// stated value, including DefaultConfig's 2-D mesh 5, is replaced.)
	c.Router.Ports = c.Topo.Ports()
	mode, err := ParseRouting(c.Routing)
	if err != nil {
		return fmt.Errorf("network: %w", err)
	}
	c.routing = mode
	fp, err := ParseFaults(c.Faults)
	if err != nil {
		return fmt.Errorf("network: %w", err)
	}
	c.faultPlan = fp
	// Both features route through the precomputed tables (the policy
	// candidate filter and the fault reroute rewrite them in place), so
	// neither composes with the functional routing of cap-raised
	// networks.
	if (c.routing != routeDOR || c.faultPlan != nil) && c.Topo.Nodes() > topology.MaxNodes {
		return fmt.Errorf("network: adaptive routing and fault injection need routing tables; %s has %d nodes (max %d)",
			c.Topo.Name(), c.Topo.Nodes(), topology.MaxNodes)
	}
	if c.routing == routeAdaptiveMinimal {
		if !c.Router.Kind.UsesVCs() {
			return fmt.Errorf("network: adaptive routing splits VCs into escape and adaptive layers; %v routers have no VCs", c.Router.Kind)
		}
		esc := c.Topo.VCClasses()
		if c.Router.VCs < esc+1 {
			return fmt.Errorf("network: adaptive routing on %s needs at least %d VCs (%d escape + 1 adaptive), got %d",
				c.Topo.Name(), esc+1, esc, c.Router.VCs)
		}
		for _, o := range c.Overrides {
			if o.VCs != 0 {
				return fmt.Errorf("network: adaptive routing needs a uniform escape/adaptive VC split; per-router VC overrides conflict")
			}
		}
	}
	if c.Bernoulli && (c.Source.Kind == "" || c.Source.Kind == "const") {
		c.Source = traffic.SourceSpec{Kind: "bernoulli"}
	}
	switch c.Source.Kind {
	case "", "const", "bernoulli", "mmpp", "batch":
		if c.Replay != nil {
			return fmt.Errorf("network: Replay is set but the source is %q, not a trace", c.Source.String())
		}
	case "trace":
		if c.Replay == nil {
			return fmt.Errorf("network: trace source needs a loaded trace in Config.Replay")
		}
		if err := c.Replay.Validate(); err != nil {
			return fmt.Errorf("network: %w", err)
		}
		if c.Replay.Nodes != c.Topo.Nodes() {
			return fmt.Errorf("network: trace recorded on %d nodes; topology %s has %d",
				c.Replay.Nodes, c.Topo.Name(), c.Topo.Nodes())
		}
		if len(c.Replay.Events) == 0 {
			return fmt.Errorf("network: trace is empty; nothing to replay")
		}
		if c.Sizes != nil {
			return fmt.Errorf("network: trace replay carries recorded packet sizes; a sizes distribution conflicts")
		}
		// Replay re-injects the recorded workload verbatim; the offered
		// load the measurement layer reports is the trace's own rate.
		c.InjectionRate = c.Replay.Rate()
	default:
		return fmt.Errorf("network: unknown source kind %q", c.Source.Kind)
	}
	if err := c.validateOverrides(); err != nil {
		return err
	}
	// Deadlock avoidance is the topology's call: a class count > 1
	// (dateline classes on wraparound rings) needs VC flow control with
	// the VCs split evenly across classes.
	if classes := c.Topo.VCClasses(); classes > 1 {
		if !c.Router.Kind.UsesVCs() {
			return fmt.Errorf("network: %v routers deadlock on a %s; use a VC router kind", c.Router.Kind, c.Topo.Name())
		}
		// Under adaptive routing the escape layer holds exactly one VC
		// per dateline class and the rest are adaptive, so any count
		// >= classes+1 (checked above) works; under dimension-order
		// routing all VCs are datelined and must split evenly.
		if c.routing != routeAdaptiveMinimal &&
			(c.Router.VCs < classes || c.Router.VCs%classes != 0) {
			return fmt.Errorf("network: %s VC classes need a positive multiple of %d VCs, got %d",
				c.Topo.Name(), classes, c.Router.VCs)
		}
	}
	return c.Router.Validate()
}

// MeanFlitsPerPacket is the expected packet size in flits under the
// configured workload: the size distribution's mean, the trace's mean,
// or the fixed PacketSize. The measurement layer uses it to convert
// packet rates to flit loads.
func (c *Config) MeanFlitsPerPacket() float64 {
	if c.Sizes != nil {
		return c.Sizes.Mean()
	}
	if c.Source.Kind == "trace" && c.Replay != nil {
		return c.Replay.MeanSize()
	}
	return float64(c.PacketSize)
}

// Network is a running mesh or torus of routers, sources, and sinks.
type Network struct {
	cfg     Config
	topo    topology.Topology
	routers []*router.Router
	sources []*source

	// OnPacketCreated is called when a source generates a packet
	// (before queueing); the simulator uses it to tag the sample space.
	OnPacketCreated func(p *flit.Packet, now int64)
	// OnFlitEjected is called for every flit leaving the network.
	OnFlitEjected func(f flit.Flit, now int64)
	// OnPacketDone is called when a packet's last flit is ejected. The
	// packet is recycled when the callback returns: callbacks must not
	// retain p.
	OnPacketDone func(p *flit.Packet, now int64)

	nextPacketID int64

	// delayAt is the per-router driven-link delay when overrides are in
	// effect (nil: every link uses cfg.FlitDelay). The scheduler's wake
	// wheel is sized from it.
	delayAt []int64

	// pktFree is the packet pool: packets are recycled when their last
	// flit is ejected, so a steady-state Step allocates nothing.
	pktFree []*flit.Packet

	// routeTab aliases every router's routing-table row (table mode
	// only): fault application rewrites the rows in place at engine
	// barriers, and the adaptive policies read them. deadOut is the
	// per-node dead-output-port mask (nil on unfaulted networks).
	// faults is the resolved fault plan with its application cursor.
	routeTab [][]uint8
	deadOut  []uint64
	faults   *faultState

	// unroutable counts packets dropped because fault injection left
	// their destination unreachable; droppedFlits counts their flits.
	unroutable   int64
	droppedFlits int64

	// gang and the prebuilt phase closures implement the deterministic
	// parallel stepper. parNow carries the cycle into the closures
	// without a per-cycle allocation; the gang's run barrier orders the
	// write against the workers' reads.
	gang      *pool.Gang
	parNow    int64
	deliverFn func(i int)
	computeFn func(i int)
	probed    bool

	// sched is the whole-network active-set scheduler (nil when
	// cfg.FullScan or when the network is sharded): the per-cycle
	// worklists that make Step cost O(in-flight work) instead of
	// O(nodes). See sched.go.
	sched *scheduler

	// Sharded-engine state (cfg.Shards > 1; see shard.go): the shards
	// and the node→shard map, the boundary wire pairs exchanged at
	// each barrier, the global lookahead floor (the minimum directed
	// shard-pair dependency bound — per-pair bounds live on the shards'
	// dep lists), whether the partition's concatenation is global node
	// order (replay fast path), and the gang that runs the shards.
	shards       []*shard
	shardAt      []int32
	flitXfers    []flitXfer
	creditXfers  []creditXfer
	lookahead    int64
	partsOrdered bool
	shardGang    *pool.Gang
	shardRunFn   func(i int)

	// Invariant-auditor state (audit.go). auditEvery is cfg.Audit as an
	// int64 (0 = off): the single branch the hot path pays when the
	// auditor is disabled. auditNextAt is the next audit deadline — a
	// cycle number on single-clock engines, a shard-clock value on the
	// sharded engine (MaxInt64 there when auditing is off, so the
	// round-horizon clamp is unconditional). auditInjected/auditDrained
	// are the single-clock engines' flit-conservation counters; the
	// sharded engine counts per shard so the increments stay race-free.
	auditEvery    int64
	auditNextAt   int64
	auditInjected int64
	auditDrained  int64
}

// New builds the network. The configuration is normalized in place.
func New(cfg Config) (*Network, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, topo: cfg.Topo}
	n.auditEvery = int64(cfg.Audit)
	nodes := n.topo.Nodes()
	master := rng.New(cfg.Seed)

	// Per-router parameters: nil slices mean the fully uniform network
	// (the common case — every wiring decision below then reads the
	// global config exactly as before overrides existed).
	vcsAt, bufAt, delayAt := cfg.nodeParams(nodes)
	n.delayAt = delayAt
	vcs := func(id int) int {
		if vcsAt != nil {
			return vcsAt[id]
		}
		return cfg.Router.VCs
	}
	buf := func(id int) int {
		if bufAt != nil {
			return bufAt[id]
		}
		return cfg.Router.BufPerVC
	}
	delay := func(id int) int {
		if delayAt != nil {
			return int(delayAt[id])
		}
		return cfg.FlitDelay
	}

	// Precompute per-router routing tables (dst → output port) and, on
	// topologies with deadlock-avoidance VC classes (tori, rings), the
	// candidate masks (dst, port) — the routing and VC-allocation stages
	// are table lookups, not calls. Beyond topology.MaxNodes the tables
	// would be quadratic in the node count (a 320×320 mesh's route
	// tables alone are ~10 GiB), so cap-raised networks switch to
	// functional routing: the topology's Route/VCMask called per
	// head-of-packet, keeping per-router state linear.
	hasClasses := n.topo.VCClasses() > 1
	useTables := nodes <= topology.MaxNodes
	ports := cfg.Router.Ports
	n.routers = make([]*router.Router, nodes)
	if useTables {
		n.routeTab = make([][]uint8, nodes)
	}
	for id := 0; id < nodes; id++ {
		rcfg := cfg.Router
		rcfg.VCs = vcs(id)
		rcfg.BufPerVC = buf(id)
		if !useTables {
			id := id
			n.routers[id] = router.New(id, rcfg, nil)
			n.routers[id].SetRouteFunc(func(dst int) int { return n.topo.Route(id, dst) })
			if hasClasses {
				n.routers[id].SetVCClassFunc(func(dst, port int) uint64 {
					return n.topo.VCMask(id, dst, port, cfg.Router.VCs)
				})
			}
			continue
		}
		routes := make([]uint8, nodes)
		for dst := 0; dst < nodes; dst++ {
			routes[dst] = uint8(n.topo.Route(id, dst))
		}
		n.routeTab[id] = routes
		n.routers[id] = router.New(id, rcfg, routes)
		if hasClasses && cfg.routing == routeDOR {
			// VC overrides are rejected on class topologies (Normalize),
			// so the class masks see one uniform VC count.
			classTab := make([]uint64, nodes*ports)
			for dst := 0; dst < nodes; dst++ {
				for port := 0; port < ports; port++ {
					classTab[dst*ports+port] = n.topo.VCMask(id, dst, port, cfg.Router.VCs)
				}
			}
			n.routers[id].SetVCClassTable(classTab)
		}
	}

	// Fault plans resolve against the concrete topology (seeded random
	// draws become named kills here, before any engine state exists, so
	// every engine sees the same plan); adaptive policies share the
	// routers' table rows and the dead-port mask.
	if cfg.faultPlan != nil {
		fs, err := resolveFaults(cfg.faultPlan, n.topo, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("network: %w", err)
		}
		n.faults = fs
		n.deadOut = make([]uint64, nodes)
	}
	if cfg.routing == routeAdaptiveMinimal {
		esc := n.topo.VCClasses()
		for id := 0; id < nodes; id++ {
			n.routers[id].SetRoutingPolicy(&adaptivePolicy{
				n:          n,
				id:         id,
				topo:       n.topo,
				routes:     n.routeTab[id],
				escClasses: esc,
				adaptMask:  topology.FullVCMask(cfg.Router.VCs) &^ topology.FullVCMask(esc),
				fullMask:   topology.FullVCMask(cfg.Router.VCs),
				wrap:       esc > 1,
			})
		}
	}

	// The node→shard map is needed before wiring: links whose endpoints
	// land in different shards are split into outbox/inbox pairs below.
	// depBound accumulates the minimum dependency bound per directed
	// shard pair {on, waiter}: the waiter may run ahead of `on`'s clock
	// by up to that many cycles (shard.go). xferCap presizes the
	// boundary exchange wires to the worst-case per-round traffic — a
	// shard's window never exceeds twice the largest pair bound, and a
	// wire additionally holds up to maxDelay in-flight items — so the
	// steady-state barrier never grows a ring.
	var shardParts [][]int32
	var depBound map[[2]int32]int64
	xferCap := 0
	if cfg.Shards > 1 {
		shardParts = partitionNodes(n.topo, cfg.Shards, delayAt, int64(cfg.FlitDelay))
		n.shardAt = make([]int32, nodes)
		for i, part := range shardParts {
			for _, id := range part {
				n.shardAt[id] = int32(i)
			}
		}
		depBound = make(map[[2]int32]int64)
		maxDelay := int64(cfg.FlitDelay)
		for _, d := range delayAt {
			if d > maxDelay {
				maxDelay = d
			}
		}
		maxBound := maxDelay
		if c := int64(cfg.CreditDelay) + int64(cfg.Router.CreditProcessDelay()); c > maxBound {
			maxBound = c
		}
		xferCap = int(2*maxBound + maxDelay + 2)
	}
	noteDep := func(on, waiter int32, bound int64) {
		k := [2]int32{on, waiter}
		if b, ok := depBound[k]; !ok || bound < b {
			depBound[k] = bound
		}
	}

	// Inter-router links: for every directional output port with a
	// neighbour, a flit wire (us → them) and a credit wire (them → us).
	// The topology names the input port the link lands on. The flit wire
	// takes the driving router's link delay; credit state at the driving
	// side is sized for the downstream router's input buffers. Credit
	// wires are presized to the credit-loop bound (every buffer slot of
	// the fed input port can have a credit in flight at once): the
	// active-set scheduler drains a sleeping receiver's credit wires
	// only at its next wake, so the backlog is real, not a bug.
	for id := 0; id < nodes; id++ {
		for port := 1; port < ports; port++ {
			next, inPort, ok := n.topo.Neighbor(id, port)
			if !ok {
				continue
			}
			if n.shardAt != nil && n.shardAt[id] != n.shardAt[next] {
				// Boundary link: both directions get an outbox written
				// only by the pushing shard and an inbox read only by
				// the receiving shard; the barrier moves entries over
				// (shard.go). All four wires are presized to the
				// worst-case window lead (xferCap) on top of the
				// credit-loop bound; the flit outbox-side dues are what
				// the receiver's wake wheel gets at the barrier. The
				// flit link (id → next) bounds how far next's shard may
				// outrun id's; its credit wire, popped by id's router
				// creditLag cycles late, bounds the reverse direction
				// at CreditDelay + creditLag.
				creditCap := vcs(next)*buf(next) + cfg.CreditDelay
				fOut := link.NewWireCap[flit.Flit](delay(id), xferCap)
				fIn := link.NewWireCap[flit.Flit](delay(id), xferCap)
				cOut := link.NewWireCap[router.Credit](cfg.CreditDelay, creditCap+xferCap)
				cIn := link.NewWireCap[router.Credit](cfg.CreditDelay, creditCap+xferCap)
				n.routers[id].ConnectOutput(port, fOut, cIn)
				n.routers[next].ConnectInput(inPort, fIn, cOut)
				n.flitXfers = append(n.flitXfers, flitXfer{out: fOut, in: fIn, dst: int32(next)})
				n.creditXfers = append(n.creditXfers, creditXfer{out: cOut, in: cIn})
				noteDep(n.shardAt[id], n.shardAt[next], int64(delay(id)))
				noteDep(n.shardAt[next], n.shardAt[id], int64(cfg.CreditDelay)+n.routers[id].CreditLag())
				if vcsAt != nil || bufAt != nil {
					n.routers[id].SetOutputPolicy(port, vcs(next), buf(next))
				}
				continue
			}
			fw := link.NewWire[flit.Flit](delay(id))
			cw := link.NewWireCap[router.Credit](cfg.CreditDelay, vcs(next)*buf(next)+cfg.CreditDelay)
			n.routers[id].ConnectOutput(port, fw, cw)
			n.routers[next].ConnectInput(inPort, fw, cw)
			if vcsAt != nil || bufAt != nil {
				n.routers[id].SetOutputPolicy(port, vcs(next), buf(next))
			}
		}
	}

	// Sources: one per node, feeding the router's local input port
	// through an injection channel with the same propagation delays.
	n.sources = make([]*source, nodes)
	for id := 0; id < nodes; id++ {
		fw := link.NewWire[flit.Flit](delay(id))
		cw := link.NewWireCap[router.Credit](cfg.CreditDelay, vcs(id)*buf(id)+cfg.CreditDelay)
		n.routers[id].ConnectInput(topology.PortLocal, fw, cw)
		// Every source owns one RNG stream split off the master; which
		// draws it makes (and in what order) is part of the schedule
		// contract, so the const path keeps its historical phase draw.
		nodeRNG := master.Split(uint64(id))
		var inj traffic.Injector
		switch cfg.Source.Kind {
		case "", "const":
			inj = traffic.NewConstantRate(cfg.InjectionRate, nodeRNG.Float64())
		case "trace":
			inj = trace.NewReplayer(cfg.Replay, id)
		default:
			var err error
			inj, err = cfg.Source.NewInjector(cfg.InjectionRate, nodeRNG.Split(1))
			if err != nil {
				return nil, fmt.Errorf("network: %w", err)
			}
		}
		n.sources[id] = newSource(n, id, inj, nodeRNG, fw, cw, vcs(id), buf(id))
	}

	if cfg.Shards > 1 {
		n.buildShards(shardParts, depBound)
		return n, nil
	}
	if !cfg.FullScan {
		n.sched = newScheduler(n, n.buildSchedTables(0), 0, nodes)
	}

	if cfg.StepWorkers > 1 {
		n.gang = pool.NewGang(cfg.StepWorkers)
		if cfg.FullScan {
			// In the deliver phase every router touches only its own
			// input wires, so the full Idle check is safe; in the
			// compute phase other routers push onto this router's input
			// wires, so only the router-local ComputeIdle check may be
			// used.
			n.deliverFn = func(i int) {
				if r := n.routers[i]; !r.Idle() {
					r.Deliver(n.parNow)
				}
			}
			n.computeFn = func(i int) {
				if r := n.routers[i]; !r.ComputeIdle() {
					r.Compute(n.parNow)
				}
			}
		} else {
			// The phases run over the active-list snapshot: every listed
			// router has an arrival due or router-local work, so no idle
			// filtering is needed.
			n.deliverFn = func(i int) { n.routers[n.sched.active[i]].Deliver(n.parNow) }
			n.computeFn = func(i int) { n.routers[n.sched.active[i]].Compute(n.parNow) }
		}
	}
	return n, nil
}

// Close releases the parallel steppers' workers. It is a no-op for
// serial networks and must not be called twice.
func (n *Network) Close() {
	if n.gang != nil {
		n.gang.Close()
		n.gang = nil
	}
	if n.shardGang != nil {
		n.shardGang.Close()
		n.shardGang = nil
	}
	for _, sh := range n.shards {
		if sh.gang != nil {
			sh.gang.Close()
			sh.gang = nil
		}
	}
}

// Config returns the (normalized) configuration.
func (n *Network) Config() Config { return n.cfg }

// Nodes returns the number of network nodes.
func (n *Network) Nodes() int { return n.topo.Nodes() }

// Capacity returns the uniform-traffic capacity in flits/node/cycle.
func (n *Network) Capacity() float64 { return n.topo.UniformCapacity() }

// Topology returns the network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Router returns the router at a node (for tests and probes).
func (n *Network) Router(id int) *router.Router { return n.routers[id] }

// SourceQueueLen returns the source-queue depth at a node (for tests).
func (n *Network) SourceQueueLen(id int) int { return n.sources[id].queueLen() }

// Unroutable returns the number of packets dropped because fault
// injection left their destination unreachable. Zero on unfaulted
// networks.
func (n *Network) Unroutable() int64 { return n.unroutable }

// DroppedFlits returns the number of flits belonging to unroutable
// packets that drained through ejection ports. Zero on unfaulted
// networks.
func (n *Network) DroppedFlits() int64 { return n.droppedFlits }

// SetProbes installs buffer-turnaround probes on every router. Probes
// share one accumulator, so a probed network always steps serially.
func (n *Network) SetProbes(t *stats.Turnaround) {
	n.probed = true
	for _, r := range n.routers {
		r.SetProbe(t)
	}
}

// Step advances the whole network one cycle. Routers exchange all state
// through ≥1-cycle wires, so the visit order within a cycle is
// immaterial — which is also what makes the two-phase parallel stepper
// exact: every Deliver only consumes items pushed in earlier cycles,
// and every Compute only pushes items deliverable in later cycles.
// Ejection callbacks and traffic sources always run serially, in node
// order, so callback order (and thus all derived measurement) is
// identical for any worker count.
func (n *Network) Step(now int64) {
	if n.shards != nil {
		n.stepSharded(now) // applies faults and audits at its shard barriers
		return
	}
	if n.faults != nil {
		// Single-clock engines apply faults lazily at the next executed
		// cycle: a quiescence fast-forward can only skip cycles with no
		// routing decisions, so applying on arrival is observationally
		// identical to applying exactly on the fault cycle.
		n.applyFaults(now)
	}
	if n.sched != nil {
		n.stepActive(now)
	} else {
		n.stepFullScan(now)
	}
	// Audit deadlines are absolute cycle numbers (not now%K) so the
	// sim layer's quiescence fast-forward advances toward the next
	// deadline instead of hopping over every multiple of K forever.
	if n.auditEvery > 0 && now >= n.auditNextAt {
		n.runAudit(now)
		n.auditNextAt = now + n.auditEvery
	}
}

func (n *Network) stepFullScan(now int64) {
	if n.gang != nil && !n.probed {
		n.parNow = now
		n.gang.Run(len(n.routers), n.deliverFn)
		n.gang.Run(len(n.routers), n.computeFn)
	} else {
		for _, r := range n.routers {
			// Skip routers with no buffered flits, latched grants, or
			// in-flight wire traffic: stepping them is a no-op.
			if r.Idle() {
				continue
			}
			r.Step(now)
		}
	}
	for id, r := range n.routers {
		ejected := r.Ejected()
		if len(ejected) == 0 {
			continue
		}
		for _, f := range ejected {
			n.handleEject(id, f, now)
		}
		r.ClearEjected()
	}
	for _, s := range n.sources {
		s.step(now)
	}
	// (Router flit-push masks are wake bookkeeping for the active-set
	// engine; the full scan visits everyone anyway and never reads
	// them, so the stale bits are simply ignored.)
}

func (n *Network) handleEject(at int, f flit.Flit, now int64) {
	n.auditDrained++ // every ejected flit — delivered or dropped — has left the network
	if f.Pkt.Dst != at {
		if !f.Pkt.Dropped {
			panic(fmt.Sprintf("network: flit of packet %d (dst %d) ejected at node %d", f.Pkt.ID, f.Pkt.Dst, at))
		}
		// Unroutable drain: a fault severed the destination, so the
		// packet drained through this router's ejection port. Its flits
		// count as dropped, not delivered (OnFlitEjected stays silent so
		// throughput excludes them); completion still fires OnPacketDone
		// so the measurement layer can retire tagged packets.
		n.droppedFlits++
		if f.Pkt.Done() {
			n.unroutable++
			if n.OnPacketDone != nil {
				n.OnPacketDone(f.Pkt, now)
			}
			n.freePacket(f.Pkt)
		}
		return
	}
	if n.OnFlitEjected != nil {
		n.OnFlitEjected(f, now)
	}
	if f.Pkt.Done() {
		if n.OnPacketDone != nil {
			n.OnPacketDone(f.Pkt, now)
		}
		n.freePacket(f.Pkt)
	}
}

// allocPacket takes a zeroed packet from the pool (or allocates one).
func (n *Network) allocPacket() *flit.Packet {
	if len(n.pktFree) == 0 {
		return &flit.Packet{}
	}
	p := n.pktFree[len(n.pktFree)-1]
	n.pktFree = n.pktFree[:len(n.pktFree)-1]
	return p
}

// freePacket recycles a fully ejected packet.
func (n *Network) freePacket(p *flit.Packet) {
	p.Reset()
	n.pktFree = append(n.pktFree, p)
}
