package network

import (
	"strings"
	"testing"

	"routersim/internal/router"
)

// TestAuditCleanRun steps every engine shape under load with the
// invariant auditor enabled at a small interval: a correct engine never
// trips it, on any router kind, through warmup, steady state, and
// drain.
func TestAuditCleanRun(t *testing.T) {
	shapes := []struct {
		name    string
		mutate  func(c *Config)
		needsVC bool
	}{
		{"fullscan", func(c *Config) { c.FullScan = true }, false},
		{"active", func(c *Config) {}, false},
		{"parallel2", func(c *Config) { c.StepWorkers = 2 }, false},
		{"sharded2", func(c *Config) { c.Shards = 2 }, false},
		{"sharded4-parallel2", func(c *Config) { c.Shards = 4; c.StepWorkers = 2 }, false},
	}
	kinds := []router.Kind{router.Wormhole, router.SpeculativeVC}
	for _, shape := range shapes {
		for _, kind := range kinds {
			shape, kind := shape, kind
			t.Run(shape.name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				cfg := testConfig(kind, 0.4*0.5/5)
				cfg.Audit = 7 // off-stride interval so deadlines land mid-burst
				shape.mutate(&cfg)
				net, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer net.Close()
				for now := int64(0); now < simCycles(6000); now++ {
					net.Step(now)
				}
			})
		}
	}
}

// expectAuditPanic steps the network until the next audit deadline and
// asserts it panics with an audit message containing want.
func expectAuditPanic(t *testing.T, net *Network, from int64, want string) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("audit did not fire on corrupted state")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "network: audit failed") || !strings.Contains(msg, want) {
			t.Fatalf("audit panic = %v, want message containing %q", r, want)
		}
	}()
	for now := from; now < from+3*int64(net.cfg.Audit)+3; now++ {
		net.Step(now)
	}
}

// TestAuditDetectsLeakedFlit corrupts the flit-conservation ledger (as
// an engine that lost or duplicated a flit would) and expects the next
// audit to abort with the conservation diagnostic.
func TestAuditDetectsLeakedFlit(t *testing.T) {
	cfg := testConfig(router.SpeculativeVC, 0.4*0.5/5)
	cfg.Audit = 8
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now int64
	for ; now < 200; now++ {
		net.Step(now)
	}
	net.auditInjected++ // one phantom flit that never entered the wires
	expectAuditPanic(t, net, now, "flit conservation")
}

// TestAuditDetectsLostCredit steals one credit from a source (as a
// flow-control bug dropping a credit on the floor would) and expects
// the injection-channel credit loop to come up short.
func TestAuditDetectsLostCredit(t *testing.T) {
	cfg := testConfig(router.SpeculativeVC, 0.4*0.5/5)
	cfg.Audit = 8
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var now int64
	for ; now < 200; now++ {
		net.Step(now)
	}
	net.sources[5].credits[0]--
	expectAuditPanic(t, net, now, "injection channel")
}

// TestAuditConfigValidation: negative intervals are rejected.
func TestAuditConfigValidation(t *testing.T) {
	cfg := testConfig(router.Wormhole, 0.01)
	cfg.Audit = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New accepted a negative audit interval")
	}
}
