package network

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"routersim/internal/rng"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// This file implements deterministic fault injection: a FaultPlan parsed
// from a compact spec string kills links or whole routers at given
// cycles. Faults follow a graceful-drain model — a kill changes only
// future routing decisions. At each fault cycle the routing tables are
// rebuilt as up*/down* routes over a BFS orientation of the live graph
// (deadlock-free for any fault pattern; see reroute), dead output ports
// are masked out of the adaptive candidate sets, and destinations
// severed from a source are marked with the router.Unroutable sentinel:
// packets to them drain through the ejection port of the router that
// discovered the partition and are counted, not delivered. Application
// points are barrier-synchronized in every engine (serial, gang,
// active-set, sharded), so a faulted run remains byte-identical across
// engines and worker counts.

// FaultEvent is one parsed entry of a fault plan. Exactly one of the
// kinds is active: a named link (Link), a named router (Router >= 0), or
// a seeded random draw (RandLinks/RandRouters > 0) resolved against the
// live topology when the network is built.
type FaultEvent struct {
	// Cycle is the simulation cycle the fault takes effect: routing
	// decisions at cycles >= Cycle see the post-fault network.
	Cycle int64
	// LinkA, LinkB name the endpoints of a link kill (every physical
	// channel between the pair dies, both directions). Valid when
	// IsLink.
	LinkA, LinkB int
	IsLink       bool
	// Router names a router kill (all its links die; it keeps draining
	// buffered flits). Valid when >= 0.
	Router int
	// RandLinks / RandRouters ask for that many distinct live links or
	// routers drawn with Seed at resolution time.
	RandLinks   int
	RandRouters int
	// Seed seeds a random event's draw; when HasSeed is false the
	// network's Config.Seed is used.
	Seed    uint64
	HasSeed bool
}

// FaultPlan is a parsed fault-injection spec: an ordered list of fault
// events. Parse with ParseFaults; the zero value means no faults.
type FaultPlan struct {
	Events []FaultEvent
}

// ParseFaults parses a fault-injection spec: ';'-separated events, each
// `link:A-B@cycle=N`, `router:R@cycle=N`, `rand:links=K[,seed=S]@cycle=N`,
// or `rand:routers=K[,seed=S]@cycle=N`. An empty spec returns nil.
// Structural validation against a concrete topology (endpoints exist,
// the named pair is actually linked) happens when the network is built.
func ParseFaults(spec string) (*FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var plan FaultPlan
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseFaultEvent(part)
		if err != nil {
			return nil, err
		}
		plan.Events = append(plan.Events, ev)
	}
	if len(plan.Events) == 0 {
		return nil, fmt.Errorf("faults: empty spec %q", spec)
	}
	return &plan, nil
}

func parseFaultEvent(s string) (FaultEvent, error) {
	ev := FaultEvent{Router: -1}
	head, tail, ok := strings.Cut(s, "@")
	if !ok {
		return ev, fmt.Errorf("faults: event %q needs @cycle=N", s)
	}
	cyc, ok := strings.CutPrefix(tail, "cycle=")
	if !ok {
		return ev, fmt.Errorf("faults: event %q: expected @cycle=N, got @%s", s, tail)
	}
	n, err := strconv.ParseInt(cyc, 10, 64)
	if err != nil || n < 0 {
		return ev, fmt.Errorf("faults: event %q: bad cycle %q", s, cyc)
	}
	ev.Cycle = n
	kind, params, ok := strings.Cut(head, ":")
	if !ok {
		return ev, fmt.Errorf("faults: event %q needs a kind (link:, router:, rand:)", s)
	}
	switch kind {
	case "link":
		a, b, ok := strings.Cut(params, "-")
		if !ok {
			return ev, fmt.Errorf("faults: link event %q needs endpoints A-B", s)
		}
		ev.LinkA, err = atoiNode(a)
		if err == nil {
			ev.LinkB, err = atoiNode(b)
		}
		if err != nil || ev.LinkA == ev.LinkB {
			return ev, fmt.Errorf("faults: link event %q: bad endpoints", s)
		}
		if ev.LinkA > ev.LinkB {
			ev.LinkA, ev.LinkB = ev.LinkB, ev.LinkA
		}
		ev.IsLink = true
	case "router":
		ev.Router, err = atoiNode(params)
		if err != nil {
			return ev, fmt.Errorf("faults: router event %q: bad id", s)
		}
	case "rand":
		for _, p := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(p, "=")
			if !ok {
				return ev, fmt.Errorf("faults: rand event %q: bad parameter %q", s, p)
			}
			switch key {
			case "links":
				ev.RandLinks, err = atoiNode(val)
			case "routers":
				ev.RandRouters, err = atoiNode(val)
			case "seed":
				ev.Seed, err = strconv.ParseUint(val, 10, 64)
				ev.HasSeed = true
			default:
				return ev, fmt.Errorf("faults: rand event %q: unknown parameter %q", s, key)
			}
			if err != nil {
				return ev, fmt.Errorf("faults: rand event %q: bad value %q", s, val)
			}
		}
		if (ev.RandLinks > 0) == (ev.RandRouters > 0) {
			return ev, fmt.Errorf("faults: rand event %q needs exactly one of links=K, routers=K (K > 0)", s)
		}
	default:
		return ev, fmt.Errorf("faults: unknown event kind %q in %q", kind, s)
	}
	return ev, nil
}

func atoiNode(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return n, nil
}

// Canonical returns the canonical spelling of the plan: each event in
// its normal form, joined by ';'. Two specs with equal canonical strings
// describe the same plan.
func (fp *FaultPlan) Canonical() string {
	if fp == nil || len(fp.Events) == 0 {
		return ""
	}
	parts := make([]string, len(fp.Events))
	for i, ev := range fp.Events {
		switch {
		case ev.IsLink:
			parts[i] = fmt.Sprintf("link:%d-%d@cycle=%d", ev.LinkA, ev.LinkB, ev.Cycle)
		case ev.Router >= 0:
			parts[i] = fmt.Sprintf("router:%d@cycle=%d", ev.Router, ev.Cycle)
		case ev.RandLinks > 0:
			parts[i] = randCanon("links", ev.RandLinks, ev)
		default:
			parts[i] = randCanon("routers", ev.RandRouters, ev)
		}
	}
	return strings.Join(parts, ";")
}

func randCanon(what string, k int, ev FaultEvent) string {
	if ev.HasSeed {
		return fmt.Sprintf("rand:%s=%d,seed=%d@cycle=%d", what, k, ev.Seed, ev.Cycle)
	}
	return fmt.Sprintf("rand:%s=%d@cycle=%d", what, k, ev.Cycle)
}

// CanonicalFaults parses a fault spec and returns its canonical
// spelling ("" for no faults). The harness uses it for scenario labels
// and dedup.
func CanonicalFaults(spec string) (string, error) {
	fp, err := ParseFaults(spec)
	if err != nil {
		return "", err
	}
	return fp.Canonical(), nil
}

// resolvedFault is one fault application: at Cycle, mark each (node,
// port) in kills dead. Reciprocal directions are already included.
type resolvedFault struct {
	cycle int64
	kills [][2]int32
}

// faultState is the runtime fault machinery on a Network: the resolved
// event list (sorted by cycle), the application cursor, the adjacency
// table the reroute BFS walks, and its scratch storage.
type faultState struct {
	events []resolvedFault
	idx    int
	adj    []int32 // nodes×ports: neighbor id, -1 where no link
	comp   []int32 // reroute scratch: live-component root per node
	level  []int32 // reroute scratch: BFS depth in the component
	order  []int32 // reroute scratch: nodes by ascending (level, id)
	cnt    []int32 // reroute scratch: counting-sort buckets
	ddown  []int32 // reroute scratch: down-only distance to dst
	fdist  []int32 // reroute scratch: committed up*/down* distance
	queue  []int32 // BFS scratch
}

// nextFaultCycle returns the cycle of the earliest unapplied fault, or
// maxInt64 when none remain.
func (fs *faultState) nextFaultCycle() int64 {
	if fs == nil || fs.idx >= len(fs.events) {
		return math.MaxInt64
	}
	return fs.events[fs.idx].cycle
}

// resolveFaults turns the parsed plan into concrete (node, port) kills
// against the topology, drawing random events from their seeds (default
// seed: the network seed). Events resolve in cycle order so a random
// draw's candidate pool excludes everything already dead. Structural
// errors (unknown node, pair not linked, more kills requested than live
// candidates) surface here.
func resolveFaults(fp *FaultPlan, topo topology.Topology, netSeed uint64) (*faultState, error) {
	nodes, ports := topo.Nodes(), topo.Ports()
	fs := &faultState{
		adj:   make([]int32, nodes*ports),
		comp:  make([]int32, nodes),
		level: make([]int32, nodes),
		order: make([]int32, nodes),
		cnt:   make([]int32, nodes+1),
		ddown: make([]int32, nodes),
		fdist: make([]int32, nodes),
		queue: make([]int32, 0, nodes),
	}
	for id := 0; id < nodes; id++ {
		for port := 0; port < ports; port++ {
			fs.adj[id*ports+port] = -1
			if port == topology.PortLocal {
				continue
			}
			if next, _, ok := topo.Neighbor(id, port); ok {
				fs.adj[id*ports+port] = int32(next)
			}
		}
	}

	// Stable sort by cycle keeps same-cycle events in spec order.
	events := make([]FaultEvent, len(fp.Events))
	copy(events, fp.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })

	dead := make([]uint64, nodes) // directed (node, port) already killed
	deadRouter := make([]bool, nodes)
	killLink := func(rf *resolvedFault, id int, port int) {
		// Kill both directions of the physical channel.
		next, inPort, ok := topo.Neighbor(id, port)
		if !ok {
			return
		}
		dead[id] |= 1 << uint(port)
		dead[next] |= 1 << uint(inPort)
		rf.kills = append(rf.kills, [2]int32{int32(id), int32(port)}, [2]int32{int32(next), int32(inPort)})
	}

	for _, ev := range events {
		rf := resolvedFault{cycle: ev.Cycle}
		switch {
		case ev.IsLink:
			if ev.LinkA >= nodes || ev.LinkB >= nodes {
				return nil, fmt.Errorf("faults: link %d-%d: node out of range (topology has %d nodes)", ev.LinkA, ev.LinkB, nodes)
			}
			found := false
			for port := 1; port < ports; port++ {
				if fs.adj[ev.LinkA*ports+port] == int32(ev.LinkB) {
					killLink(&rf, ev.LinkA, port)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("faults: nodes %d and %d are not linked on %s", ev.LinkA, ev.LinkB, topo.Name())
			}
		case ev.Router >= 0:
			if ev.Router >= nodes {
				return nil, fmt.Errorf("faults: router %d out of range (topology has %d nodes)", ev.Router, nodes)
			}
			deadRouter[ev.Router] = true
			for port := 1; port < ports; port++ {
				if fs.adj[ev.Router*ports+port] >= 0 && dead[ev.Router]&(1<<uint(port)) == 0 {
					killLink(&rf, ev.Router, port)
				}
			}
		default:
			seed := netSeed
			if ev.HasSeed {
				seed = ev.Seed
			}
			r := rng.New(seed)
			if ev.RandLinks > 0 {
				// Candidate pool: every live physical channel, once, in
				// canonical order (enumerated from its lower-id endpoint;
				// parallel channels between a pair count separately).
				var cands [][2]int32
				for id := 0; id < nodes; id++ {
					for port := 1; port < ports; port++ {
						next := fs.adj[id*ports+port]
						if next > int32(id) && dead[id]&(1<<uint(port)) == 0 {
							cands = append(cands, [2]int32{int32(id), int32(port)})
						}
					}
				}
				if ev.RandLinks > len(cands) {
					return nil, fmt.Errorf("faults: rand:links=%d but only %d live links remain", ev.RandLinks, len(cands))
				}
				for i := 0; i < ev.RandLinks; i++ {
					j := i + r.Intn(len(cands)-i)
					cands[i], cands[j] = cands[j], cands[i]
					killLink(&rf, int(cands[i][0]), int(cands[i][1]))
				}
			} else {
				var cands []int32
				for id := 0; id < nodes; id++ {
					if !deadRouter[id] {
						cands = append(cands, int32(id))
					}
				}
				if ev.RandRouters > len(cands) {
					return nil, fmt.Errorf("faults: rand:routers=%d but only %d live routers remain", ev.RandRouters, len(cands))
				}
				for i := 0; i < ev.RandRouters; i++ {
					j := i + r.Intn(len(cands)-i)
					cands[i], cands[j] = cands[j], cands[i]
					id := int(cands[i])
					deadRouter[id] = true
					for port := 1; port < ports; port++ {
						if fs.adj[id*ports+port] >= 0 && dead[id]&(1<<uint(port)) == 0 {
							killLink(&rf, id, port)
						}
					}
				}
			}
		}
		fs.events = append(fs.events, rf)
	}
	return fs, nil
}

// applyFaults applies every fault event due at or before now: dead
// output ports are ORed into deadOut (the adaptive policies read it) and
// the routing tables are rebuilt on the live graph. Callers hold the
// engine at a barrier (no router stepping concurrently); every engine
// applies a given fault before any routing decision of a cycle >= its
// fault cycle, which is what keeps faulted runs byte-identical across
// engines.
func (n *Network) applyFaults(now int64) {
	fs := n.faults
	if fs.idx >= len(fs.events) || fs.events[fs.idx].cycle > now {
		return
	}
	// The rebuilt tables depend only on the final live graph, so an
	// engine catching up on several fault cycles at once — which only
	// happens across decision-free spans, because every engine clamps
	// its stepping horizon to the next unapplied fault cycle — can fold
	// them into one rebuild and stay identical to an engine that applied
	// each fault on time.
	for fs.idx < len(fs.events) && fs.events[fs.idx].cycle <= now {
		for _, k := range fs.events[fs.idx].kills {
			n.deadOut[k[0]] |= 1 << uint(k[1])
		}
		fs.idx++
	}
	n.reroute()
}

// reroute rebuilds every routing-table column as up*/down* routes on
// the live graph. Every live edge is oriented by a BFS of each
// component (rooted at its lowest-numbered node): the direction toward
// the lower (level, id) endpoint is "up", the other "down", and a legal
// route takes all its up hops strictly before its down hops. Any such
// discipline is deadlock-free on every VC of every router kind — both
// phases move through the acyclic (level, id) order monotonically, so
// the channel dependency graph has no cycle for an arbitrary fault
// pattern — a guarantee no shortest-path repair can give once the
// dimension-order turn discipline is broken (a repaired shortest path
// may pair X→Y with Y→X turns and close a cycle). On an unfaulted mesh
// or hypercube the discipline costs nothing: it reduces to
// negative-first / e-cube order, and every route stays minimal.
//
// A single next-hop table cannot track which phase a packet is in, so
// the route construction is made phase-consistent by commitment: a node
// with any down-only path to dst takes the shortest one (ddown, a
// backward BFS over down edges — every hop of which lands on another
// committed-down node), and only nodes with no down-only path climb,
// taking the up edge minimizing the committed distance fdist. The climb
// strictly descends the (level, id) order and down hops strictly
// shrink ddown, so table routes are loop-free with bounded length.
// Sources in a different component than dst get the router.Unroutable
// sentinel. Tables are rewritten in place; the routers and adaptive
// policies alias the same rows.
func (n *Network) reroute() {
	fs := n.faults
	nodes := len(n.routeTab)
	ports := n.cfg.Router.Ports
	// BFS spanning forest of the live graph: component roots and levels
	// define the edge orientation.
	comp, level := fs.comp, fs.level
	for i := range comp {
		comp[i] = -1
	}
	q := fs.queue
	for root := 0; root < nodes; root++ {
		if comp[root] >= 0 {
			continue
		}
		comp[root], level[root] = int32(root), 0
		q = append(q[:0], int32(root))
		for qi := 0; qi < len(q); qi++ {
			u := int(q[qi])
			deadm := n.deadOut[u]
			for port := 1; port < ports; port++ {
				if deadm&(1<<uint(port)) != 0 {
					continue
				}
				v := fs.adj[u*ports+port]
				if v < 0 || comp[v] >= 0 {
					continue
				}
				comp[v], level[v] = comp[u], level[u]+1
				q = append(q, v)
			}
		}
	}
	// Counting sort into ascending (level, id) — a topological order of
	// the up orientation, so fdist[w] is final before any v above w.
	order, cnt := fs.order, fs.cnt
	for i := range cnt {
		cnt[i] = 0
	}
	for v := 0; v < nodes; v++ {
		cnt[level[v]+1]++
	}
	for l := 1; l <= nodes; l++ {
		cnt[l] += cnt[l-1]
	}
	for v := 0; v < nodes; v++ {
		order[cnt[level[v]]] = int32(v)
		cnt[level[v]]++
	}

	ddown, fdist := fs.ddown, fs.fdist
	for dst := 0; dst < nodes; dst++ {
		cdst := comp[dst]
		// Backward BFS from dst over down edges only: ddown[v] = length
		// of the shortest v→dst route of pure down hops (-1 = none).
		// v→x is a down hop iff (level, id) of x exceeds v's.
		for i := range ddown {
			ddown[i] = -1
		}
		ddown[dst] = 0
		q = append(q[:0], int32(dst))
		for qi := 0; qi < len(q); qi++ {
			x := int(q[qi])
			deadm := n.deadOut[x]
			for port := 1; port < ports; port++ {
				if deadm&(1<<uint(port)) != 0 {
					continue
				}
				v := fs.adj[x*ports+port]
				if v < 0 || ddown[v] >= 0 {
					continue
				}
				if level[v] < level[x] || (level[v] == level[x] && v < int32(x)) {
					ddown[v] = ddown[x] + 1
					q = append(q, v)
				}
			}
		}
		// Fill the column in (level, id) order: committed-down nodes
		// take their shortest down hop, the rest climb the up edge with
		// the smallest committed distance (the BFS-tree parent guarantees
		// one exists within the component).
		fdist[dst] = 0
		for _, vv := range order {
			v := int(vv)
			if v == dst {
				continue // routeTab[dst][dst] stays PortLocal
			}
			if comp[v] != cdst {
				n.routeTab[v][dst] = router.Unroutable
				continue
			}
			deadm := n.deadOut[v]
			if ddown[v] >= 0 {
				fdist[v] = ddown[v]
				for port := 1; port < ports; port++ {
					if deadm&(1<<uint(port)) != 0 {
						continue
					}
					x := fs.adj[v*ports+port]
					if x < 0 || ddown[x] != ddown[v]-1 {
						continue
					}
					if level[x] > level[v] || (level[x] == level[v] && x > int32(v)) {
						n.routeTab[v][dst] = uint8(port)
						break
					}
				}
				continue
			}
			best, bestPort := int32(-1), -1
			for port := 1; port < ports; port++ {
				if deadm&(1<<uint(port)) != 0 {
					continue
				}
				x := fs.adj[v*ports+port]
				if x < 0 || (level[x] > level[v] || (level[x] == level[v] && x > int32(v))) {
					continue // missing, or a down edge
				}
				if f := fdist[x]; best < 0 || f < best {
					best, bestPort = f, port
				}
			}
			if bestPort < 0 {
				panic("network: faults: no up*/down* route within a live component")
			}
			fdist[v] = best + 1
			n.routeTab[v][dst] = uint8(bestPort)
		}
	}
	fs.queue = q[:0]
}
