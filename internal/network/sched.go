package network

import (
	"math"
	"math/bits"
)

// This file implements the active-set scheduler: the default stepper
// whose per-cycle cost is O(in-flight work) instead of O(nodes).
//
// Routers are stepped only while they can possibly act. The invariant
// is maintained by two wake rules:
//
//  1. arrival wakes — whoever pushes a flit onto a router's input wire
//     at cycle t schedules that router for cycle t+FlitDelay, the exact
//     cycle the flit becomes deliverable. All flit wires share one
//     constant delay, so pending wakes live in a FlitDelay-slot wheel
//     of node bitmaps indexed by due-cycle mod FlitDelay.
//  2. self-sustain — a router that finishes a step with router-local
//     work left (occupied input VCs or latched switch grants, i.e.
//     !ComputeIdle) carries itself onto the next cycle's bitmap.
//
// Credits deliberately do NOT wake anyone: a credit only replenishes a
// counter that is read when the receiving side has an occupied VC — and
// a router (or source) with an occupied VC is already on the active
// list by rule 2, so it drains its credit wires on time; an idle one
// drains them at its next arrival wake, before its next Compute. That
// is why skipping a sleeping router is invisible: its Deliver would pop
// nothing that matters yet and its Compute is a no-op (the allocators
// are pure on empty request sets).
//
// The worklists are bitmaps, one bit per node: a wake is a single
// or-into-word, duplicates coalesce for free, and materializing the
// cycle's list walks set bits in ascending node order — the exact order
// the full scan visits routers in, which pins the ejection-callback
// order and therefore every derived measurement.
//
// Sources have their own list: a source stays active while its queue or
// an in-flight packet stream needs per-cycle attention, and otherwise
// parks in a min-heap keyed by its exact next injection cycle
// (traffic.ConstantRate exposes it; Bernoulli draws its RNG every cycle
// and therefore never parks, keeping its random stream untouched). A
// woken source applies the skipped injector ticks in one batch —
// replaying the identical floating-point accumulator sequence — so the
// injection schedule is bit-identical to the full-scan engine's.
//
// When the carry bitmap, the wake wheel, and the source worklist agree
// that nothing can happen before cycle T, NextDue reports T and the sim
// run loop fast-forwards straight to it (quiescence fast-forward).
//
// The sharded engine (shard.go) instantiates one scheduler per shard
// over an arbitrary node set: a contiguous range [base, base+count)
// keeps the bitmaps range-local (bit = id - base) with pure arithmetic
// index mapping, while a non-contiguous set (the boundary-minimizing
// partitioner, shard.go) carries an explicit local→global table (idOf)
// and shares the global→local table (tab.loc). The read-only link
// tables are shared through schedTables. The whole-network scheduler is
// the base=0, count=nodes special case.

// schedTables holds the read-only link structure every scheduler range
// of a network shares: built once at network.New, safe for concurrent
// reads from any shard.
type schedTables struct {
	// outDst maps (router*ports + port) to the downstream router id on
	// that output port, -1 for the ejection port and unconnected edges.
	outDst []int32
	ports  int
	// delay[id] is the propagation delay of every link driven by router
	// id. wheelSize is the largest delay — or, on sharded networks, at
	// least maxPairBound+maxDelay, because barrier-transferred arrivals
	// can land that far ahead of a lagging shard's clock (shard.go) —
	// and every wake wheel is sized to it. wheelMask is wheelSize-1 when
	// the size is a power of two (the uniform-delay common case, usually
	// 1), -1 otherwise: the slot computation runs on every flit push,
	// and an AND is far cheaper than an int64 division.
	delay     []int64
	wheelSize int64
	wheelMask int64
	// loc maps global node id → local index within its owning shard,
	// set only when some shard holds a non-contiguous node set.
	loc []int32
}

// buildSchedTables precomputes the shared downstream and delay tables.
// minWheel, when positive, raises the wake-wheel size above the largest
// link delay (the sharded engine's transfer-lead bound); 0 keeps the
// plain delay-sized wheel.
func (n *Network) buildSchedTables(minWheel int64) *schedTables {
	nodes := n.topo.Nodes()
	ports := n.cfg.Router.Ports
	d := int64(n.cfg.FlitDelay)
	for _, pd := range n.delayAt {
		if pd > d {
			d = pd
		}
	}
	if minWheel > d {
		d = minWheel
	}
	tab := &schedTables{
		outDst:    make([]int32, nodes*ports),
		ports:     ports,
		delay:     n.delayAt,
		wheelSize: d,
		wheelMask: -1,
	}
	if d&(d-1) == 0 {
		tab.wheelMask = d - 1
	}
	if tab.delay == nil {
		tab.delay = make([]int64, nodes)
		for i := range tab.delay {
			tab.delay[i] = int64(n.cfg.FlitDelay)
		}
	}
	for i := range tab.outDst {
		tab.outDst[i] = -1
	}
	for id := 0; id < nodes; id++ {
		for port := 1; port < ports; port++ {
			if next, _, ok := n.topo.Neighbor(id, port); ok {
				tab.outDst[id*ports+port] = int32(next)
			}
		}
	}
	return tab
}

// scheduler holds the active-set worklists of one node set — a
// contiguous range (idOf nil; local index = id - base) or an arbitrary
// ascending set (idOf maps local→global, tab.loc maps global→local).
type scheduler struct {
	tab   *schedTables
	base  int32 // first node of the range (contiguous sets)
	count int   // nodes covered
	words int   // ceil(count / 64)

	// Sharded-network ownership: self is the owning shard's index into
	// shardAt (the network's node→shard map); both nil/-1 on unsharded
	// networks, where ownership is the base/count range check.
	self    int32
	shardAt []int32
	// idOf, for non-contiguous node sets, maps local bitmap index →
	// global node id (ascending); loc aliases tab.loc for the reverse
	// map. Both nil for contiguous sets: the arithmetic fast path.
	idOf []int32
	loc  []int32

	// Hot fields of tab, copied at construction so the per-push wake
	// path (finishRouter) reads them without chasing the tab pointer.
	// The slice headers alias tab's read-only backing arrays.
	outDst    []int32
	delay     []int64
	ports     int
	wheelSize int64
	wheelMask int64

	// active is this cycle's materialized router worklist, ascending by
	// (global) id; carryBits accumulates next cycle's self-sustained
	// routers during the walk (carryCount tracks how many).
	active     []int32
	carryBits  []uint64
	carryCount int

	// wheelBits[due mod wheelSize] holds the routers with an arrival
	// due at cycle `due`; wheelCount counts per slot, wakeCount across
	// slots. A wake issued during cycle t for a link of delay d is due
	// at exactly t+d; every delay is >= 1 and <= wheelSize, so a due
	// slot is never drained before its cycle. Boundary arrivals injected
	// at a shard barrier land at most wheelSize-1 cycles ahead for the
	// same reason, so the absolute-due wakeAt is equally safe.
	wheelBits  [][]uint64
	wheelCount []int
	wakeCount  int
	now        int64 // cycle being stepped (set by buildActive)

	// Source worklist: srcBits/srcCount carry the busy sources;
	// srcActive is the materialized per-cycle list; srcHeap parks idle
	// sources by (next injection cycle, id). Heap entries use global
	// ids.
	srcBits   []uint64
	srcCount  int
	srcActive []int32
	srcHeap   []srcWake
}

// srcWake parks one idle source until its next injection cycle.
type srcWake struct {
	at int64
	id int32
}

func wakeLess(a, b srcWake) bool {
	return a.at < b.at || (a.at == b.at && a.id < b.id)
}

// newScheduler builds the scheduler for the node range [base,
// base+count) of a freshly wired network: every source in range either
// parked at its first injection cycle or, if its injector has no exact
// schedule, active from cycle 0.
func newScheduler(n *Network, tab *schedTables, base, count int) *scheduler {
	words := (count + 63) / 64
	sc := &scheduler{
		tab:        tab,
		base:       int32(base),
		count:      count,
		words:      words,
		self:       -1,
		outDst:     tab.outDst,
		delay:      tab.delay,
		ports:      tab.ports,
		wheelSize:  tab.wheelSize,
		wheelMask:  tab.wheelMask,
		carryBits:  make([]uint64, words),
		wheelBits:  make([][]uint64, tab.wheelSize),
		wheelCount: make([]int, tab.wheelSize),
		srcBits:    make([]uint64, words),
	}
	for i := range sc.wheelBits {
		sc.wheelBits[i] = make([]uint64, words)
	}
	sc.parkSources(n)
	return sc
}

// newShardScheduler builds the scheduler of shard `self` over its node
// set (ascending). A contiguous set keeps the arithmetic index mapping;
// anything else installs the explicit local↔global maps (tab.loc must
// already cover every node).
func newShardScheduler(n *Network, tab *schedTables, self int, part []int32) *scheduler {
	words := (len(part) + 63) / 64
	sc := &scheduler{
		tab:        tab,
		base:       part[0],
		count:      len(part),
		words:      words,
		self:       int32(self),
		shardAt:    n.shardAt,
		outDst:     tab.outDst,
		delay:      tab.delay,
		ports:      tab.ports,
		wheelSize:  tab.wheelSize,
		wheelMask:  tab.wheelMask,
		carryBits:  make([]uint64, words),
		wheelBits:  make([][]uint64, tab.wheelSize),
		wheelCount: make([]int, tab.wheelSize),
		srcBits:    make([]uint64, words),
	}
	if int(part[len(part)-1]-part[0]) != len(part)-1 {
		sc.idOf = part
		sc.loc = tab.loc
	}
	for i := range sc.wheelBits {
		sc.wheelBits[i] = make([]uint64, words)
	}
	sc.parkSources(n)
	return sc
}

// parkSources seeds the source worklist at construction.
func (sc *scheduler) parkSources(n *Network) {
	for li := 0; li < sc.count; li++ {
		id := sc.global(int32(li))
		s := n.sources[id]
		if s.adv == nil {
			sc.srcBits[li>>6] |= 1 << (uint(li) & 63)
			sc.srcCount++
			continue
		}
		// The first Tick lands on cycle 0, so consuming k ticks puts
		// the first injection at cycle k-1. A parked-forever answer
		// means the injector never fires (zero rate): the source is
		// never stepped — exactly the full-scan behaviour, where its
		// per-cycle Tick is a no-op.
		if at := s.park(); at >= 0 {
			sc.heapPush(srcWake{at: at, id: id})
		}
	}
}

// local maps a global node id (which must be owned) to its bitmap index.
func (sc *scheduler) local(id int32) int32 {
	if sc.loc != nil {
		return sc.loc[id]
	}
	return id - sc.base
}

// global maps a bitmap index back to the global node id.
func (sc *scheduler) global(li int32) int32 {
	if sc.idOf != nil {
		return sc.idOf[li]
	}
	return sc.base + li
}

// owns reports whether a (global) node id belongs to this scheduler's
// node set.
func (sc *scheduler) owns(id int32) bool {
	if sc.shardAt != nil {
		return sc.shardAt[id] == sc.self
	}
	return id >= sc.base && id < sc.base+int32(sc.count)
}

// busy reports whether any worklist entry or pending wake exists — the
// per-range quiescence check.
func (sc *scheduler) busy() bool {
	return sc.carryCount > 0 || sc.wakeCount > 0 || sc.srcCount > 0
}

// wakeAt schedules router id (which must be in range) to be stepped at
// the absolute cycle due. Duplicate wakes for the same (router, cycle)
// coalesce. due must be in (sc.now, sc.now+wheelSize] — guaranteed for
// arrival wakes (delay ∈ [1, wheelSize]) and for barrier-transferred
// boundary arrivals (pushed at most wheelSize-1 cycles before their
// due, at or after the receiving shard's current cycle).
func (sc *scheduler) wakeAt(id int32, due int64) {
	si := due
	if sc.wheelMask >= 0 {
		si &= sc.wheelMask
	} else {
		si %= sc.wheelSize
	}
	slot := sc.wheelBits[si]
	li := sc.local(id)
	w, b := int(li)>>6, uint64(1)<<(uint(li)&63)
	if slot[w]&b == 0 {
		slot[w] |= b
		sc.wheelCount[si]++
		sc.wakeCount++
	}
}

// wake schedules router id to be stepped at cycle now+d — the arrival
// cycle of a flit pushed this cycle on a link of delay d.
func (sc *scheduler) wake(id int32, d int64) { sc.wakeAt(id, sc.now+d) }

// carry marks router id (owned) self-sustained onto the next cycle.
// Callers run once per listed router, so the bit is always freshly set.
func (sc *scheduler) carry(id int32) {
	li := sc.local(id)
	sc.carryBits[li>>6] |= 1 << (uint(li) & 63)
	sc.carryCount++
}

// wakeRouter is the network-facing wake hook (used by sources when they
// inject — the injection channel has the driving node's link delay); it
// is a no-op on full-scan networks. The source and its router share a
// node, so on sharded networks the wake stays within the stepping
// shard's own scheduler.
func (n *Network) wakeRouter(id int32) {
	if n.sched != nil {
		n.sched.wake(id, n.sched.delay[id])
	} else if n.shards != nil {
		sc := n.shards[n.shardAt[id]].sc
		sc.wake(id, sc.delay[id])
	}
}

// buildActive assembles this cycle's router worklist: the carried-over
// routers or-merged with the wheel slot due now, walked in ascending
// node order.
func (sc *scheduler) buildActive(now int64) {
	sc.now = now
	slot := now
	if sc.wheelMask >= 0 {
		slot &= sc.wheelMask
	} else {
		slot %= sc.wheelSize
	}
	wb := sc.wheelBits[slot]
	sc.active = sc.active[:0]
	if sc.idOf == nil {
		for w := 0; w < sc.words; w++ {
			m := sc.carryBits[w] | wb[w]
			sc.carryBits[w] = 0
			wb[w] = 0
			base := sc.base + int32(w<<6)
			for ; m != 0; m &= m - 1 {
				sc.active = append(sc.active, base+int32(bits.TrailingZeros64(m)))
			}
		}
	} else {
		// Non-contiguous node set: local bits walk ascending local
		// index = ascending global id (idOf is sorted), so the active
		// list keeps the full scan's node order.
		for w := 0; w < sc.words; w++ {
			m := sc.carryBits[w] | wb[w]
			sc.carryBits[w] = 0
			wb[w] = 0
			lbase := int32(w << 6)
			for ; m != 0; m &= m - 1 {
				sc.active = append(sc.active, sc.idOf[lbase+int32(bits.TrailingZeros64(m))])
			}
		}
	}
	sc.carryCount = 0
	sc.wakeCount -= sc.wheelCount[slot]
	sc.wheelCount[slot] = 0
}

// stepActive advances the network one cycle under the active-set
// scheduler. Routers exchange all state through >= 1-cycle wires, so
// only listed routers can act this cycle; everything else is untouched.
func (n *Network) stepActive(now int64) {
	sc := n.sched
	sc.buildActive(now)
	if n.gang != nil && !n.probed {
		// Parallel: the two phases run over the active-list snapshot;
		// ejection callbacks, wake collection, and carry decisions run
		// serially afterwards, in node order, exactly like the serial
		// walk below — so the event trace is identical for any worker
		// count.
		n.parNow = now
		n.gang.Run(len(sc.active), n.deliverFn)
		n.gang.Run(len(sc.active), n.computeFn)
		for _, id := range sc.active {
			n.finishRouter(int(id), now)
		}
	} else {
		for _, id := range sc.active {
			n.routers[id].Step(now)
			n.finishRouter(int(id), now)
		}
	}
	n.stepActiveSources(now)
}

// finishRouter completes one stepped router's cycle: drain its ejected
// flits onto the network's callbacks, convert its flit pushes into
// arrival wakes for the downstream routers, and carry it to the next
// cycle if it still has router-local work.
func (n *Network) finishRouter(id int, now int64) {
	sc := n.sched
	r := n.routers[id]
	if ejected := r.Ejected(); len(ejected) > 0 {
		for _, f := range ejected {
			n.handleEject(id, f, now)
		}
		r.ClearEjected()
	}
	for m := r.TakeFlitPushes(); m != 0; m &= m - 1 {
		port := bits.TrailingZeros64(m)
		if dst := sc.outDst[id*sc.ports+port]; dst >= 0 {
			sc.wake(dst, sc.delay[id])
		}
	}
	if !r.ComputeIdle() {
		sc.carry(int32(id))
	}
}

// stepActiveSources steps the sources that can act this cycle — the
// carried-over busy sources plus the parked sources whose injection is
// due now — in node order. A source that goes idle parks at its exact
// next injection cycle.
func (n *Network) stepActiveSources(now int64) {
	n.sched.stepSources(n, now)
}

// stepSources is stepActiveSources over one scheduler's node range.
func (sc *scheduler) stepSources(n *Network, now int64) {
	for len(sc.srcHeap) > 0 && sc.srcHeap[0].at <= now {
		w := sc.heapPop()
		if w.at < now {
			// The run loop never skips past the heap minimum, so a
			// stale wake means the scheduler lost an injection cycle.
			panic("network: parked source woke past its injection cycle")
		}
		li := sc.local(w.id)
		sc.srcBits[li>>6] |= 1 << (uint(li) & 63)
		sc.srcCount++
	}
	if sc.srcCount == 0 {
		return
	}

	sc.srcActive = sc.srcActive[:0]
	if sc.idOf == nil {
		for w := 0; w < sc.words; w++ {
			m := sc.srcBits[w]
			sc.srcBits[w] = 0
			base := sc.base + int32(w<<6)
			for ; m != 0; m &= m - 1 {
				sc.srcActive = append(sc.srcActive, base+int32(bits.TrailingZeros64(m)))
			}
		}
	} else {
		for w := 0; w < sc.words; w++ {
			m := sc.srcBits[w]
			sc.srcBits[w] = 0
			lbase := int32(w << 6)
			for ; m != 0; m &= m - 1 {
				sc.srcActive = append(sc.srcActive, sc.idOf[lbase+int32(bits.TrailingZeros64(m))])
			}
		}
	}
	sc.srcCount = 0

	for _, id := range sc.srcActive {
		s := n.sources[id]
		s.step(now)
		if s.adv == nil || s.qlen > 0 || s.inFlight > 0 {
			li := sc.local(id)
			sc.srcBits[li>>6] |= 1 << (uint(li) & 63)
			sc.srcCount++
			continue
		}
		if at := s.park(); at >= 0 {
			sc.heapPush(srcWake{at: at, id: id})
		}
		// Parked forever (zero rate): the source never injects again;
		// leave it off every list.
	}
}

// NextDue returns the earliest future cycle at which stepping the
// network can have any observable effect. While any router or source
// worklist entry exists (or an arrival wake is pending) it answers
// now+1; when the network is fully quiescent it answers the earliest
// parked injection, or math.MaxInt64 if no source will ever inject
// again. The sim run loop uses it to fast-forward over quiescent spans.
// It must be called after Step(now) (the worklists describe now+1), and
// always answers now+1 on full-scan networks. On sharded networks it
// composes the per-shard due times with the buffered window events (see
// shard.go).
func (n *Network) NextDue(now int64) int64 {
	if n.shards != nil {
		return n.nextDueSharded(now)
	}
	sc := n.sched
	if sc == nil || sc.busy() {
		return now + 1
	}
	if len(sc.srcHeap) == 0 {
		return math.MaxInt64
	}
	if t := sc.srcHeap[0].at; t > now {
		return t
	}
	return now + 1
}

// heapPush / heapPop implement a plain slice min-heap over srcWake
// ordered by (cycle, id) — the id tiebreak makes equal-cycle pops come
// out in node order, which keeps source stepping deterministic.
func (sc *scheduler) heapPush(w srcWake) {
	h := append(sc.srcHeap, w)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !wakeLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	sc.srcHeap = h
}

func (sc *scheduler) heapPop() srcWake {
	h := sc.srcHeap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && wakeLess(h[l], h[min]) {
			min = l
		}
		if r < len(h) && wakeLess(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	sc.srcHeap = h
	return top
}
