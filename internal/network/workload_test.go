package network

import (
	"fmt"
	"strings"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
	"routersim/internal/trace"
	"routersim/internal/traffic"
)

// mustTopo builds a topology from its spec.
func mustTopo(t *testing.T, spec string) topology.Topology {
	t.Helper()
	topo, err := topology.New(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

// engineVariants runs cfg under every engine combination (full-scan
// serial is the reference; active serial, active parallel, full-scan
// parallel must match it event for event).
func engineVariants(t *testing.T, label string, cfg Config, cycles int64) []string {
	t.Helper()
	ref := cfg
	ref.FullScan = true
	refTrace := eventTrace(t, ref, cycles)
	if len(refTrace) == 0 {
		t.Fatalf("%s: no traffic in reference run", label)
	}
	variants := []struct {
		name     string
		fullScan bool
		workers  int
	}{
		{"active-serial", false, 0},
		{"active-parallel2", false, 2},
		{"active-parallel5", false, 5},
		{"fullscan-parallel2", true, 2},
	}
	for _, v := range variants {
		c := cfg
		c.FullScan = v.fullScan
		c.StepWorkers = v.workers
		compareTraces(t, label+"/"+v.name, refTrace, eventTrace(t, c, cycles))
	}
	return refTrace
}

// TestWorkloadIdentity is the identity gate for the new workload axes:
// bursty sources, size distributions, and per-router overrides must
// produce the full-scan reference engine's exact event sequence on the
// active-set scheduler, serial or parallel. The MMPP/batch cases
// specifically certify parked multi-packet wakes; the override cases
// certify the generalized wake wheel (per-router link delays) and the
// heterogeneous credit sizing.
func TestWorkloadIdentity(t *testing.T) {
	cycles := simCycles(5000)
	base := func(kind router.Kind) Config {
		return Config{K: 4, Router: router.DefaultConfig(kind), Seed: 23, InjectionRate: 0.5 * 1.0 / 5}
	}
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"mmpp", func() Config {
			c := base(router.SpeculativeVC)
			c.Source = traffic.SourceSpec{Kind: "mmpp", On: 20, Off: 60}
			return c
		}},
		{"batch", func() Config {
			c := base(router.VirtualChannel)
			c.Source = traffic.SourceSpec{Kind: "batch", BatchSize: 4}
			return c
		}},
		{"uniform-sizes", func() Config {
			c := base(router.SpeculativeVC)
			c.Sizes = traffic.UniformSize{Min: 1, Max: 9}
			return c
		}},
		{"bimodal-sizes-bernoulli", func() Config {
			c := base(router.VirtualChannel)
			c.Source = traffic.SourceSpec{Kind: "bernoulli"}
			c.Sizes = traffic.BimodalSize{Small: 1, Large: 9, P: 0.2}
			return c
		}},
		{"hetero-vcs-bufs", func() Config {
			c := base(router.SpeculativeVC)
			c.Overrides = []RouterOverride{
				{Node: 0, VCs: 4, BufPerVC: 8},
				{Node: 5, VCs: 1},
				{Node: 10, BufPerVC: 1},
			}
			return c
		}},
		{"hetero-link-delays", func() Config {
			c := base(router.VirtualChannel)
			c.Overrides = []RouterOverride{
				{Node: 3, LinkDelay: 3},
				{Node: 7, LinkDelay: 2},
				{Node: 12, LinkDelay: 5},
			}
			return c
		}},
		{"hetero-wormhole", func() Config {
			c := base(router.Wormhole)
			c.Overrides = []RouterOverride{
				{Node: 1, BufPerVC: 2, LinkDelay: 2},
				{Node: 9, BufPerVC: 16},
			}
			return c
		}},
		{"mmpp-sizes-overrides", func() Config {
			c := base(router.SpeculativeVC)
			c.Source = traffic.SourceSpec{Kind: "mmpp", On: 40, Off: 40}
			c.Sizes = traffic.BimodalSize{Small: 2, Large: 8, P: 0.3}
			c.Overrides = []RouterOverride{
				{Node: 2, VCs: 4, BufPerVC: 2, LinkDelay: 2},
				{Node: 13, BufPerVC: 8},
			}
			return c
		}},
		{"hetero-ring", func() Config {
			c := base(router.VirtualChannel)
			c.K = 0
			c.Topo = mustTopo(t, "ring:12")
			c.Overrides = []RouterOverride{
				{Node: 4, BufPerVC: 8, LinkDelay: 2},
			}
			return c
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			engineVariants(t, tc.name, tc.cfg(), cycles)
		})
	}
}

// TestTraceRecordReplayIdentity closes the record→replay loop at the
// event level: capture a bursty variable-size workload, replay it, and
// require the replay to reproduce the original run's complete event
// sequence — every creation, ejection, and completion at the same cycle
// in the same order — under every engine variant.
func TestTraceRecordReplayIdentity(t *testing.T) {
	cycles := simCycles(6000)
	cfg := Config{
		K:             4,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          77,
		InjectionRate: 0.4 * 1.0 / 5,
		Source:        traffic.SourceSpec{Kind: "mmpp", On: 30, Off: 50},
		Sizes:         traffic.BimodalSize{Small: 1, Large: 9, P: 0.25},
	}

	// Record while tracing the original run.
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.NewRecorder(net.Nodes())
	var original []string
	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		rec.Record(now, p.Src, p.Dst, p.Size, p.ID)
		original = append(original, fmt.Sprintf("c %d %d %d %d", now, p.ID, p.Src, p.Dst))
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		original = append(original, fmt.Sprintf("e %d %d %d", now, f.Pkt.ID, f.Seq))
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		original = append(original, fmt.Sprintf("d %d %d %d", now, p.ID, p.Latency()))
	}
	for now := int64(0); now < cycles; now++ {
		net.Step(now)
	}
	captured := rec.Trace()
	if err := captured.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(captured.Events) == 0 {
		t.Fatal("recorded no injections")
	}

	// A different seed must not matter during replay: the replayer
	// consumes no RNG.
	replayCfg := Config{
		K:      4,
		Router: cfg.Router,
		Seed:   cfg.Seed + 1000,
		Source: traffic.SourceSpec{Kind: "trace", File: "(in-memory)"},
		Replay: captured,
	}
	for _, v := range []struct {
		name     string
		fullScan bool
		workers  int
	}{
		{"fullscan-serial", true, 0},
		{"active-serial", false, 0},
		{"active-parallel4", false, 4},
	} {
		c := replayCfg
		c.FullScan = v.fullScan
		c.StepWorkers = v.workers
		compareTraces(t, "replay/"+v.name, original, eventTrace(t, c, cycles))
	}
}

// TestParseOverridesGrammar covers the override grammar: accepted forms
// (ids, ranges, '*', later-wins merging) and every rejection path.
func TestParseOverridesGrammar(t *testing.T) {
	good := []struct {
		spec string
		want []RouterOverride
	}{
		{"", nil},
		{"3:vcs=4", []RouterOverride{{Node: 3, VCs: 4}}},
		{"3:vcs=4,buf=8;5:delay=2", []RouterOverride{{Node: 3, VCs: 4, BufPerVC: 8}, {Node: 5, LinkDelay: 2}}},
		{"0-2:buf=8", []RouterOverride{{Node: 0, BufPerVC: 8}, {Node: 1, BufPerVC: 8}, {Node: 2, BufPerVC: 8}}},
		// Later groups win per key; untouched keys survive.
		{"1:vcs=2,buf=4;1:vcs=8", []RouterOverride{{Node: 1, VCs: 8, BufPerVC: 4}}},
		{"*:delay=2;0:delay=1", append([]RouterOverride{{Node: 0, LinkDelay: 1}}, func() []RouterOverride {
			var out []RouterOverride
			for i := 1; i < 6; i++ {
				out = append(out, RouterOverride{Node: i, LinkDelay: 2})
			}
			return out
		}()...)},
	}
	for _, tc := range good {
		got, err := ParseOverrides(tc.spec, 6)
		if err != nil {
			t.Fatalf("ParseOverrides(%q): %v", tc.spec, err)
		}
		if len(got) != len(tc.want) {
			t.Fatalf("ParseOverrides(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("ParseOverrides(%q)[%d] = %+v, want %+v", tc.spec, i, got[i], tc.want[i])
			}
		}
	}

	bad := []struct {
		spec, errLike string
	}{
		{"3", "has no ':'"},
		{"3:", "wants KEY=VALUE"},
		{"3:vcs", "wants KEY=VALUE"},
		{"3:banana=2", `unknown parameter "banana"`},
		{"3:vcs=x", "parameter vcs"},
		{"3:vcs=0", "need >= 1"},
		{"9:vcs=2", "outside nodes [0,6)"},
		{"-1:vcs=2", "not LO-HI"},
		{"4-2:buf=8", "empty (lo > hi)"},
		{"2-9:buf=8", "outside nodes [0,6)"},
		{"a-b:buf=8", "not LO-HI"},
		{"x:vcs=2", "not a node id"},
	}
	for _, tc := range bad {
		_, err := ParseOverrides(tc.spec, 6)
		if err == nil {
			t.Fatalf("ParseOverrides(%q): want error containing %q, got nil", tc.spec, tc.errLike)
		}
		if !strings.Contains(err.Error(), tc.errLike) {
			t.Fatalf("ParseOverrides(%q): error %q does not mention %q", tc.spec, err, tc.errLike)
		}
	}
}

// TestWorkloadConfigRejections covers Normalize's workload validation.
func TestWorkloadConfigRejections(t *testing.T) {
	base := func() Config {
		return Config{K: 4, Router: router.DefaultConfig(router.SpeculativeVC), InjectionRate: 0.05}
	}
	smallTrace := &trace.Trace{Nodes: 16, Events: []trace.Event{{Cycle: 0, Src: 0, Dst: 1, Size: 5}}}

	cases := []struct {
		name    string
		mutate  func(*Config)
		errLike string
	}{
		{"unknown source kind", func(c *Config) { c.Source.Kind = "poisson" }, "unknown source kind"},
		{"trace without replay", func(c *Config) { c.Source.Kind = "trace" }, "needs a loaded trace"},
		{"replay without trace source", func(c *Config) { c.Replay = smallTrace }, "Replay is set but"},
		{"node mismatch", func(c *Config) {
			c.Source.Kind = "trace"
			c.Replay = &trace.Trace{Nodes: 9, Events: []trace.Event{{Cycle: 0, Src: 0, Dst: 1, Size: 5}}}
		}, "recorded on 9 nodes"},
		{"empty trace", func(c *Config) {
			c.Source.Kind = "trace"
			c.Replay = &trace.Trace{Nodes: 16}
		}, "empty"},
		{"trace with sizes", func(c *Config) {
			c.Source.Kind = "trace"
			c.Replay = smallTrace
			c.Sizes = traffic.UniformSize{Min: 1, Max: 3}
		}, "sizes distribution conflicts"},
		{"invalid trace", func(c *Config) {
			c.Source.Kind = "trace"
			c.Replay = &trace.Trace{Nodes: 16, Events: []trace.Event{{Cycle: 0, Src: 0, Dst: 99, Size: 5}}}
		}, "destination 99"},
		{"override out of range", func(c *Config) { c.Overrides = []RouterOverride{{Node: 99, VCs: 2}} }, "outside nodes"},
		{"override negative", func(c *Config) { c.Overrides = []RouterOverride{{Node: 1, VCs: -1}} }, "negative field"},
		{"override huge delay", func(c *Config) { c.Overrides = []RouterOverride{{Node: 1, LinkDelay: 9999}} }, "max 1024"},
		{"wormhole vc override", func(c *Config) {
			c.Router = router.DefaultConfig(router.Wormhole)
			c.Overrides = []RouterOverride{{Node: 1, VCs: 2}}
		}, "must have exactly 1 VC"},
		{"vc override on dateline topology", func(c *Config) {
			c.Topo = mustTopo(t, "ring:12")
			c.Overrides = []RouterOverride{{Node: 1, VCs: 4}}
		}, "dateline VC classes"},
		{"infeasible mmpp rate", func(c *Config) {
			c.Source = traffic.SourceSpec{Kind: "mmpp", On: 1, Off: 99}
			c.InjectionRate = 0.5
		}, "cannot deliver"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(&cfg)
		_, err := New(cfg)
		if err == nil {
			t.Fatalf("%s: want error containing %q, got nil", tc.name, tc.errLike)
		}
		if !strings.Contains(err.Error(), tc.errLike) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.errLike)
		}
	}
}

// TestBernoulliLegacyFoldsToSource pins the legacy flag's equivalence:
// Config.Bernoulli and Source{Kind:"bernoulli"} are the same workload.
func TestBernoulliLegacyFoldsToSource(t *testing.T) {
	cycles := simCycles(3000)
	legacy := Config{K: 4, Router: router.DefaultConfig(router.VirtualChannel), Seed: 5, InjectionRate: 0.06, Bernoulli: true}
	spec := legacy
	spec.Bernoulli = false
	spec.Source = traffic.SourceSpec{Kind: "bernoulli"}
	compareTraces(t, "bernoulli-legacy", eventTrace(t, legacy, cycles), eventTrace(t, spec, cycles))
}
