package network

import (
	"fmt"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

func TestParseFaultsCanonical(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"link:3-7@cycle=1000", "link:3-7@cycle=1000"},
		{"link:7-3@cycle=1000", "link:3-7@cycle=1000"},
		{" link:0-1@cycle=0 ; router:12@cycle=5 ", "link:0-1@cycle=0;router:12@cycle=5"},
		{"rand:links=2@cycle=500", "rand:links=2@cycle=500"},
		{"rand:links=2,seed=9@cycle=500", "rand:links=2,seed=9@cycle=500"},
		{"rand:seed=9,links=2@cycle=500", "rand:links=2,seed=9@cycle=500"},
		{"rand:routers=3@cycle=42", "rand:routers=3@cycle=42"},
		{"router:0@cycle=0", "router:0@cycle=0"},
	}
	for _, c := range cases {
		got, err := CanonicalFaults(c.spec)
		if err != nil {
			t.Errorf("CanonicalFaults(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalFaults(%q) = %q, want %q", c.spec, got, c.want)
		}
		// Canonical forms are fixed points.
		again, err := CanonicalFaults(got)
		if err != nil || again != got {
			t.Errorf("CanonicalFaults(%q) not a fixed point: %q, %v", got, again, err)
		}
	}
	if got, err := CanonicalFaults("  "); err != nil || got != "" {
		t.Errorf("empty spec: got %q, %v", got, err)
	}
}

func TestParseFaultsErrors(t *testing.T) {
	bad := []string{
		"link:3-7",                       // no cycle
		"link:3-7@tick=5",                // wrong key
		"link:3@cycle=5",                 // missing endpoint
		"link:3-3@cycle=5",               // self link
		"link:3-x@cycle=5",               // non-numeric
		"link:-1-3@cycle=5",              // negative
		"router:@cycle=5",                // empty id
		"router:x@cycle=5",               // non-numeric
		"rand:links=2,routers=1@cycle=0", // both kinds
		"rand:seed=5@cycle=0",            // neither kind
		"rand:links=0@cycle=0",           // zero count
		"rand:bogus=1@cycle=0",           // unknown parameter
		"quench:3@cycle=5",               // unknown kind
		"link:1-2@cycle=-3",              // negative cycle
		"@cycle=5",                       // no kind
		";;",                             // nothing but separators
	}
	for _, spec := range bad {
		if _, err := ParseFaults(spec); err == nil {
			t.Errorf("ParseFaults(%q): expected error, got none", spec)
		}
	}
}

// TestFaultResolutionErrors pins structural validation against a
// concrete topology: naming a pair that is not linked, a node outside
// the network, or more random kills than live candidates fails at
// network construction, not mid-run.
func TestFaultResolutionErrors(t *testing.T) {
	bad := []string{
		"link:0-5@cycle=0",  // not adjacent on a 4×4 mesh
		"link:0-99@cycle=0", // out of range
		"router:16@cycle=0", // out of range
		"rand:links=1000@cycle=0",
		"rand:routers=17@cycle=0",
	}
	for _, spec := range bad {
		cfg := testConfig(router.VirtualChannel, 0.02)
		cfg.K = 4
		cfg.Faults = spec
		if err := cfg.Normalize(); err != nil {
			continue // already rejected at parse/validate time
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New with faults %q: expected error, got none", spec)
		}
	}
}

// TestRerouteTableSound checks the rebuilt tables after a link kill:
// every pair stays routable (one link cannot partition a mesh), table
// walks terminate at the destination without loops, and the up*/down*
// discipline keeps the detours small on a mesh (near-minimal paths, no
// tree-root funnel).
func TestRerouteTableSound(t *testing.T) {
	cfg := testConfig(router.VirtualChannel, 0.02)
	cfg.Faults = "link:3-4@cycle=0"
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.applyFaults(0)

	topo := cfg.Topo
	nodes := topo.Nodes()
	manhattan := func(a, b int) int {
		dx, dy := a%8-b%8, a/8-b/8
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	worst := 0
	for src := 0; src < nodes; src++ {
		for dst := 0; dst < nodes; dst++ {
			if src == dst {
				continue
			}
			hops, cur := 0, src
			for cur != dst {
				p := n.routeTab[cur][dst]
				if p == router.Unroutable {
					t.Fatalf("%d->%d unroutable after a single link kill", src, dst)
				}
				next, _, ok := topo.Neighbor(cur, int(p))
				if !ok {
					t.Fatalf("%d->%d: dead-end port %d at node %d", src, dst, p, cur)
				}
				if n.deadOut[cur]&(1<<uint(p)) != 0 {
					t.Fatalf("%d->%d: table routes through dead port %d at node %d", src, dst, p, cur)
				}
				cur = next
				if hops++; hops > 4*nodes {
					t.Fatalf("%d->%d: routing loop", src, dst)
				}
			}
			if d := hops - manhattan(src, dst); d > worst {
				worst = d
			}
		}
	}
	if worst > 4 {
		t.Errorf("worst post-fault detour = +%d hops over minimal, want <= 4", worst)
	}
}

// TestRouterKillPartition pins the unroutable accounting: killing a
// router strands exactly its own rows and everyone's column to it.
func TestRouterKillPartition(t *testing.T) {
	cfg := testConfig(router.VirtualChannel, 0.02)
	cfg.K = 4
	cfg.Faults = "router:5@cycle=0"
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.applyFaults(0)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			unroutable := n.routeTab[src][dst] == router.Unroutable
			want := src == 5 || dst == 5
			if unroutable != want {
				t.Errorf("routeTab[%d][%d] unroutable = %v, want %v", src, dst, unroutable, want)
			}
		}
	}
}

// TestUnfaultedDropCountersZero is the satellite regression gate: on a
// fault-free network — any routing policy — the Unroutable and
// DroppedFlits counters must stay exactly zero.
func TestUnfaultedDropCountersZero(t *testing.T) {
	for _, routing := range []string{"", "adaptive:minimal"} {
		cfg := testConfig(router.SpeculativeVC, 0.4*0.5/5)
		cfg.Routing = routing
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for now := int64(0); now < simCycles(3000); now++ {
			n.Step(now)
		}
		if u, d := n.Unroutable(), n.DroppedFlits(); u != 0 || d != 0 {
			t.Errorf("routing %q: unfaulted run counted unroutable=%d droppedFlits=%d, want 0/0", routing, u, d)
		}
		n.Close()
	}
}

// TestFaultRerouteDelivery is the satellite delivery gate: kill one
// non-partitioning link mid-run and every packet must still arrive —
// zero unroutable drops, and every packet injected with enough cycles
// left to drain completes. Run under -race in CI.
func TestFaultRerouteDelivery(t *testing.T) {
	cycles := simCycles(12000)
	for _, routing := range []string{"", "adaptive:minimal"} {
		routing := routing
		t.Run("routing="+routing, func(t *testing.T) {
			t.Parallel()
			cfg := testConfig(router.VirtualChannel, 0.12*0.5/5)
			cfg.Routing = routing
			cfg.Faults = fmt.Sprintf("link:3-4@cycle=%d", cycles/4)
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer n.Close()
			created := make(map[int64]int64) // packet id -> creation cycle
			n.OnPacketCreated = func(p *flit.Packet, now int64) {
				created[p.ID] = now
			}
			n.OnPacketDone = func(p *flit.Packet, now int64) {
				delete(created, p.ID)
			}
			for now := int64(0); now < cycles; now++ {
				n.Step(now)
			}
			if u := n.Unroutable(); u != 0 {
				t.Fatalf("one link kill cannot partition a mesh, yet %d packets dropped", u)
			}
			// Everything injected before the drain window must have
			// arrived; only the freshest packets may still be in flight.
			drainWindow := cycles / 4
			for id, at := range created {
				if at < cycles-drainWindow {
					t.Errorf("packet %d injected at cycle %d never arrived by cycle %d", id, at, cycles)
				}
			}
		})
	}
}

// TestFaultedEngineIdentity extends the engine identity matrix to
// adaptive routing and fault injection: for each config the full-scan
// serial engine is the reference, and the active-set scheduler, the
// parallel stepper, and the sharded engine (with and without worker
// gangs) must reproduce its exact event trace through link kills, a
// router kill, and a seeded random kill. Run under -race in CI.
func TestFaultedEngineIdentity(t *testing.T) {
	cycles := simCycles(6000)
	faults := fmt.Sprintf("link:0-1@cycle=%d;router:5@cycle=%d;rand:links=1@cycle=%d",
		cycles/8, cycles/4, cycles/2)
	cases := []struct {
		name    string
		spec    string
		vcs     int
		routing string
		faults  string
	}{
		{"mesh-dor-faulted", "mesh:k=4", 2, "", faults},
		{"mesh-adaptive", "mesh:k=4", 2, "adaptive:minimal", ""},
		{"mesh-adaptive-faulted", "mesh:k=4", 2, "adaptive:minimal", faults},
		{"torus-adaptive-faulted", "torus", 4, "adaptive:minimal", faults},
		{"hypercube-adaptive-faulted", "hypercube:16", 2, "adaptive:minimal", faults},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			topo, err := topology.New(tc.spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			rc := router.DefaultConfig(router.SpeculativeVC)
			rc.VCs = tc.vcs
			cfg := Config{
				Topo:          topo,
				Router:        rc,
				Seed:          17,
				InjectionRate: 0.3 * topo.UniformCapacity() / 5,
				Routing:       tc.routing,
				Faults:        tc.faults,
				FullScan:      true,
			}
			ref := eventTrace(t, cfg, cycles)
			if len(ref) == 0 {
				t.Fatal("no traffic in reference run")
			}
			variants := []struct {
				label           string
				fullScan        bool
				workers, shards int
			}{
				{"active serial", false, 0, 0},
				{"active workers=2", false, 2, 0},
				{"shards=2", false, 0, 2},
				{"shards=4", false, 0, 4},
				{"shards=2 workers=2", false, 2, 2},
			}
			for _, v := range variants {
				cfg := cfg
				cfg.FullScan = v.fullScan
				cfg.StepWorkers = v.workers
				cfg.Shards = v.shards
				got := eventTrace(t, cfg, cycles)
				compareTraces(t, v.label, ref, got)
			}
		})
	}
}
