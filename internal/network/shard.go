package network

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/pool"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// This file implements the lookahead-sharded engine: the network is
// split into node sets (shards) that step many cycles independently —
// one goroutine each — between barriers, instead of synchronizing every
// cycle like the two-phase parallel stepper.
//
// Each directed shard pair (a→b) with at least one boundary link gets
// its own conservative lookahead bound B(a→b) = min over those links of
//
//	delay(link)                    for flit links driven in a, and
//	CreditDelay + creditLag(rcvr)  for credit wires popped in b
//
// because a flit pushed at cycle t arrives at t+delay, and a credit
// pushed at t is popped at t+CreditDelay+creditLag (the receiving
// router drains its credit wires creditLag cycles late — the
// credit-processing pipeline, router.CreditLag). Shard b may therefore
// run ahead of shard a's clock by up to B(a→b) cycles: every cycle
// u < t_a + B(a→b) only consumes items a pushed strictly before t_a,
// which earlier barriers already moved over. PERF.md § PR 8 states the
// full safety argument.
//
// Stepping is round-based with per-shard clocks instead of one global
// window: shard s has completed every cycle < s.now, and each round
// computes its horizon
//
//	h_s = min( s.now + L,  min over incoming deps d of (d.on.now + d.bound) )
//
// from a snapshot of the clocks, steps [s.now, h_s) in parallel, then
// one barrier moves every non-empty boundary outbox and advances the
// clocks to their horizons. The global floor L = min over all pairs of
// B keeps the no-incoming-lag case moving; the shard at the minimum
// clock always satisfies every dep with at least +L, so each round
// advances the global completion point by at least L ≥ 1 cycles —
// heterogeneous delay overrides shrink only the pair windows they
// actually constrain, not everyone's.
//
// Boundary wires are split in two so no wire is ever touched by two
// shards: the driving router pushes onto a shard-local outbox, and the
// barrier moves the accumulated entries — dues intact, FIFO order
// intact — onto the receiving router's inbox and wakes the receiver in
// its own shard's wake wheel at each flit's exact arrival cycle. A
// moved flit was pushed at t ∈ [t_a, h_a) and is due at t+d, and the
// receiver's clock can lag the sender's horizon by at most B(b→a), so
// due − b.clock ≤ maxPairBound + maxDelay: the wake wheels are sized to
// that bound (buildSchedTables' minWheel), so an absolute-due wake
// never aliases another slot. Dues stay monotone per link across
// rounds (push cycles only grow), so the inbox stays due-ordered.
//
// Observable effects are replayed serially so the engine is
// byte-identical to the serial one. During its window each shard only
// buffers its ejections (with a packet-done flag captured at the
// ejection cycle, before later window cycles advance the count) and
// its packet creations; Step(now) then replays the buffered events of
// cycle `now` across shards. With contiguous slab partitions the
// ascending-shard concatenation is already global node order; with the
// boundary-minimizing partitioner's arbitrary node sets the replay
// k-way merges the per-shard buffers on node id instead (each shard
// buffers per cycle in ascending node order, so the merge reproduces
// the serial engine's exact callback sequence). Packet IDs are
// assigned at replay — the only global counter — so creation order,
// IDs, and every derived measurement match the serial engine bit for
// bit.

// ejectEvent is one buffered flit ejection. done is whether this flit
// completed its packet, captured at ejection time (the packet's
// running count keeps advancing through the rest of the window).
type ejectEvent struct {
	t int64
	f flit.Flit
	// at is the ejecting node: the destination for delivered flits, the
	// dropping router for unroutable drains. The replay merge orders on
	// it, matching the serial engine's ascending-node ejection order.
	at   int32
	done bool
}

// createEvent is one buffered packet creation, awaiting its serial
// replay (which assigns the global packet ID).
type createEvent struct {
	t int64
	p *flit.Packet
}

// flitXfer is one boundary flit link: the driving shard pushes onto
// out during the window; the barrier moves the entries onto in (the
// wire the receiving router reads) and wakes the receiver per entry.
type flitXfer struct {
	out, in *link.Wire[flit.Flit]
	dst     int32
	wake    func(due int64)
}

// creditXfer is one boundary credit link (reverse direction). Credits
// never wake anyone — see the scheduler invariant in sched.go.
type creditXfer struct {
	out, in *link.Wire[router.Credit]
}

// shardDep is one incoming dependency edge of a shard: the shard may
// not step cycle u unless u < on.now + bound.
type shardDep struct {
	on    *shard
	bound int64
}

// shard is one node set of the sharded engine: its own scheduler,
// clock, event buffers, packet pool, and (optionally) worker gang.
type shard struct {
	net *Network
	idx int
	sc  *scheduler

	// now is the shard's clock: every cycle < now is complete. horizon
	// is this round's step target, computed from the clock snapshot
	// before the shards run (see runRound).
	now     int64
	horizon int64
	// deps are the incoming dependency bounds, one per neighbouring
	// shard that drives flits or returns credits into this one.
	deps []shardDep

	// gang and the phase closures parallelize deliver/compute inside
	// the shard when StepWorkers > 1 (each shard owns its gang; Gang.Run
	// is not reentrant but distinct gangs are independent).
	gang      *pool.Gang
	parNow    int64
	deliverFn func(i int)
	computeFn func(i int)

	// Buffered window events, appended in (cycle, node) order; the
	// cursors track serial replay. run compacts the unreplayed tail to
	// the front of each buffer before appending more, so the slices
	// stop growing once the warmup high-water mark is reached.
	ejects  []ejectEvent
	ejCur   int
	creates []createEvent
	crCur   int

	// pktFree is the shard-local packet pool. Sources allocate from
	// their own shard's pool during the window; the serial replay frees
	// a finished packet back to its source's shard, so pools stay
	// balanced under asymmetric traffic.
	pktFree []*flit.Packet

	// injected/drained are this shard's flit-conservation counters
	// (audit.go): flits its sources pushed onto injection wires and
	// flits its routers ejected. Kept per shard so the window-time
	// increments are race-free; the auditor sums them at barriers.
	injected int64
	drained  int64
}

func (sh *shard) allocPacket() *flit.Packet {
	if len(sh.pktFree) == 0 {
		return &flit.Packet{}
	}
	p := sh.pktFree[len(sh.pktFree)-1]
	sh.pktFree = sh.pktFree[:len(sh.pktFree)-1]
	return p
}

// partitionNodes splits the nodes into `shards` non-empty sets, sizes
// balanced within ±1, each set ascending. On k-ary n-cubes whose
// balanced contiguous cuts align to the top dimension's stride (slabs
// of whole hyperplanes — the provably minimal cut for a slab
// decomposition) the contiguous slab split is returned directly. Any
// other topology runs recursive bisection with greedy Kernighan–Lin
// style refinement minimizing the cut weight Σ 1/delay over crossing
// directed links, and keeps whichever of {refined, contiguous}
// candidates cuts less — so the result is never worse than the old
// contiguous slab partition.
func partitionNodes(t topology.Topology, shards int, delayAt []int64, flitDelay int64) [][]int32 {
	nodes := t.Nodes()
	cuts, aligned := slabCuts(t, shards)
	slab := make([][]int32, shards)
	all := make([]int32, nodes)
	for i := range all {
		all[i] = int32(i)
	}
	for i := 0; i < shards; i++ {
		slab[i] = all[cuts[i]:cuts[i+1]]
	}
	if shards == 1 || aligned {
		return slab
	}
	g := newPartGraph(t, delayAt, flitDelay)
	refined := g.bisect(slab)
	if g.cutWeight(refined) < g.cutWeight(slab) {
		return refined
	}
	return slab
}

// slabCuts returns shards+1 cut points of the balanced contiguous
// split (sizes within ±1 by construction). aligned reports whether
// every interior cut lands on a hyperplane boundary of a
// multi-dimensional cube (a multiple of the top dimension's stride) —
// the case where the slab cut is already minimal and the graph
// partitioner is skipped.
func slabCuts(t topology.Topology, shards int) (cuts []int, aligned bool) {
	nodes := t.Nodes()
	stride := 0
	if c, ok := t.(topology.Cube); ok && c.N > 1 {
		stride = nodes / c.K
	}
	cuts = make([]int, shards+1)
	for i := 1; i < shards; i++ {
		cuts[i] = i * nodes / shards
	}
	cuts[shards] = nodes
	aligned = stride > 1
	for i := 1; i < shards && aligned; i++ {
		if cuts[i]%stride != 0 {
			aligned = false
		}
	}
	return cuts, aligned
}

// partGraph is the weighted adjacency the partitioner optimizes over:
// undirected edges between linked nodes, weighted by the total 1/delay
// of the directed links between them — the per-cycle barrier traffic a
// cut through that edge costs.
type partGraph struct {
	off []int32   // CSR row offsets, len nodes+1
	to  []int32   // neighbour ids
	w   []float64 // edge weights

	side []int8    // scratch: 1 = left, 2 = right, 0 = outside the group
	dval []float64 // scratch: KL gain potential per node
	tmp  []int32   // scratch: rebuild buffer
}

func newPartGraph(t topology.Topology, delayAt []int64, flitDelay int64) *partGraph {
	nodes := t.Nodes()
	ports := t.Ports()
	invDelay := func(id int32) float64 {
		if delayAt != nil {
			return 1 / float64(delayAt[id])
		}
		return 1 / float64(flitDelay)
	}
	deg := make([]int32, nodes+1)
	for id := 0; id < nodes; id++ {
		for port := 1; port < ports; port++ {
			if next, _, ok := t.Neighbor(id, port); ok {
				deg[id+1]++
				deg[next+1]++
			}
		}
	}
	for i := 0; i < nodes; i++ {
		deg[i+1] += deg[i]
	}
	g := &partGraph{
		off:  deg,
		to:   make([]int32, deg[nodes]),
		w:    make([]float64, deg[nodes]),
		side: make([]int8, nodes),
		dval: make([]float64, nodes),
		tmp:  make([]int32, nodes),
	}
	fill := make([]int32, nodes)
	for id := 0; id < nodes; id++ {
		for port := 1; port < ports; port++ {
			next, _, ok := t.Neighbor(id, port)
			if !ok {
				continue
			}
			// One directed link id→next: weight 1/delay(id), charged to
			// both endpoints (the reverse link, if any, adds its own).
			wgt := invDelay(int32(id))
			i := g.off[id] + fill[id]
			g.to[i], g.w[i] = int32(next), wgt
			fill[id]++
			j := g.off[next] + fill[next]
			g.to[j], g.w[j] = int32(id), wgt
			fill[next]++
		}
	}
	return g
}

// cutWeight sums the weight of every edge crossing the partition
// (each undirected entry pair counted once per direction, uniformly
// for both candidates, so comparisons are exact).
func (g *partGraph) cutWeight(parts [][]int32) float64 {
	at := g.tmp
	for i, part := range parts {
		for _, id := range part {
			at[id] = int32(i)
		}
	}
	var cut float64
	for id := range g.side {
		for i := g.off[id]; i < g.off[id+1]; i++ {
			if at[g.to[i]] != at[id] {
				cut += g.w[i]
			}
		}
	}
	return cut
}

// bisect recursively splits the node list into len(sizes) parts with
// the given target sizes, refining each two-way split with bounded
// greedy KL swaps. The node list is permuted in place; every returned
// part is sorted ascending.
func (g *partGraph) bisect(parts [][]int32) [][]int32 {
	sizes := make([]int, len(parts))
	total := 0
	for i, p := range parts {
		sizes[i] = len(p)
		total += len(p)
	}
	set := make([]int32, 0, total)
	for _, p := range parts {
		set = append(set, p...)
	}
	out := make([][]int32, 0, len(parts))
	g.bisectInto(set, sizes, &out)
	return out
}

func (g *partGraph) bisectInto(set []int32, sizes []int, out *[][]int32) {
	if len(sizes) == 1 {
		*out = append(*out, set)
		return
	}
	pl := (len(sizes) + 1) / 2
	nl := 0
	for _, s := range sizes[:pl] {
		nl += s
	}
	g.refine(set, nl)
	g.bisectInto(set[:nl], sizes[:pl], out)
	g.bisectInto(set[nl:], sizes[pl:], out)
}

// Refinement effort caps: candidate pool per side and swap rounds per
// bisection. The greedy pair search is O(klCand²) per round; both caps
// keep the partitioner linear-ish in practice while catching the large
// wins (rings, hypercubes, heterogeneous boundaries).
const (
	klCand  = 32
	klSwaps = 128
)

// refine improves the two-way split set[:nl] / set[nl:] with greedy
// same-size KL swaps, then rewrites both halves sorted ascending.
func (g *partGraph) refine(set []int32, nl int) {
	if nl <= 0 || nl >= len(set) {
		return
	}
	for i, id := range set {
		if i < nl {
			g.side[id] = 1
		} else {
			g.side[id] = 2
		}
	}
	for _, id := range set {
		g.dval[id] = g.gain(id)
	}

	var candA, candB []int32
	for round := 0; round < klSwaps; round++ {
		candA = g.topGain(set[:nl], candA[:0])
		candB = g.topGain(set[nl:], candB[:0])
		var bestA, bestB int32 = -1, -1
		best := 0.0
		for _, a := range candA {
			for _, b := range candB {
				gain := g.dval[a] + g.dval[b] - 2*g.weightBetween(a, b)
				if gain > best+1e-12 {
					best, bestA, bestB = gain, a, b
				}
			}
		}
		if bestA < 0 {
			break
		}
		g.side[bestA], g.side[bestB] = 2, 1
		g.recompute(bestA)
		g.recompute(bestB)
	}

	// Rebuild both halves: stash the right side in the scratch buffer,
	// compact the left side in place (the write cursor never passes the
	// read cursor), then append the stashed right side. Each half is
	// sorted ascending — the parts must come out in global node order
	// for the replay merge.
	right := g.tmp[:0]
	w := 0
	for _, id := range set {
		if g.side[id] == 1 {
			set[w] = id
			w++
		} else {
			right = append(right, id)
		}
	}
	copy(set[w:], right)
	sortInt32(set[:nl])
	sortInt32(set[nl:])
	for _, id := range set {
		g.side[id] = 0
	}
}

// gain is the KL D-value of a node: external minus internal edge
// weight within the current group.
func (g *partGraph) gain(id int32) float64 {
	s := g.side[id]
	var d float64
	for i := g.off[id]; i < g.off[id+1]; i++ {
		switch g.side[g.to[i]] {
		case 0:
		case s:
			d -= g.w[i]
		default:
			d += g.w[i]
		}
	}
	return d
}

// recompute refreshes the D-values of a moved node and its in-group
// neighbours.
func (g *partGraph) recompute(id int32) {
	g.dval[id] = g.gain(id)
	for i := g.off[id]; i < g.off[id+1]; i++ {
		if nb := g.to[i]; g.side[nb] != 0 {
			g.dval[nb] = g.gain(nb)
		}
	}
}

// topGain returns up to klCand node ids of one side with the highest
// D-values (ties broken by ascending id, deterministically).
func (g *partGraph) topGain(side []int32, cand []int32) []int32 {
	for _, id := range side {
		if len(cand) == klCand {
			worst := cand[klCand-1]
			if g.dval[id] < g.dval[worst] || (g.dval[id] == g.dval[worst] && id > worst) {
				continue
			}
		}
		cand = append(cand, id)
		for i := len(cand) - 1; i > 0; i-- {
			a, b := cand[i-1], cand[i]
			if g.dval[a] > g.dval[b] || (g.dval[a] == g.dval[b] && a < b) {
				break
			}
			cand[i-1], cand[i] = b, a
		}
		if len(cand) > klCand {
			cand = cand[:klCand]
		}
	}
	return cand
}

// weightBetween sums the edge weight between two specific nodes.
func (g *partGraph) weightBetween(a, b int32) float64 {
	var w float64
	for i := g.off[a]; i < g.off[a+1]; i++ {
		if g.to[i] == b {
			w += g.w[i]
		}
	}
	return w
}

func sortInt32(s []int32) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// buildShards finishes sharded-engine construction once routers, wires,
// and sources exist: per-shard schedulers over the shared tables, the
// dependency bounds collected during wiring, boundary wake closures,
// gangs, and the global lookahead floor.
func (n *Network) buildShards(parts [][]int32, depBound map[[2]int32]int64) {
	// The wake wheels must absorb barrier transfers landing up to
	// maxPairBound+maxDelay cycles ahead of a lagging receiver's clock;
	// rounding to a power of two keeps the slot computation an AND.
	maxDelay := int64(n.cfg.FlitDelay)
	for _, d := range n.delayAt {
		if d > maxDelay {
			maxDelay = d
		}
	}
	n.lookahead = int64(math.MaxInt64)
	maxBound := int64(0)
	for _, b := range depBound {
		if b < n.lookahead {
			n.lookahead = b
		}
		if b > maxBound {
			maxBound = b
		}
	}
	if len(depBound) == 0 {
		// No boundary at all (disconnected shards): any positive floor
		// works; keep the old single-window pace.
		n.lookahead = int64(n.cfg.CreditDelay)
	}
	minWheel := int64(1)
	for minWheel < maxBound+maxDelay {
		minWheel <<= 1
	}
	tab := n.buildSchedTables(minWheel)

	// partsOrdered: ascending concatenation of the parts is exactly
	// 0..nodes-1, so the replay can concatenate instead of merging.
	n.partsOrdered = true
	next := int32(0)
	for _, part := range parts {
		for _, id := range part {
			if id != next {
				n.partsOrdered = false
			}
			next++
		}
	}
	if !n.partsOrdered {
		tab.loc = make([]int32, n.topo.Nodes())
		for _, part := range parts {
			for li, id := range part {
				tab.loc[id] = int32(li)
			}
		}
	}

	n.shards = make([]*shard, len(parts))
	for i := range n.shards {
		sh := &shard{net: n, idx: i}
		sh.sc = newShardScheduler(n, tab, i, parts[i])
		sh.ejects = make([]ejectEvent, 0, 64)
		sh.creates = make([]createEvent, 0, 64)
		if n.cfg.StepWorkers > 1 {
			sh.gang = pool.NewGang(n.cfg.StepWorkers)
			sh.deliverFn = func(i int) { n.routers[sh.sc.active[i]].Deliver(sh.parNow) }
			sh.computeFn = func(i int) { n.routers[sh.sc.active[i]].Compute(sh.parNow) }
		}
		n.shards[i] = sh
	}
	// Dependency edges, sorted by source shard for a deterministic
	// horizon computation order.
	keys := make([][2]int32, 0, len(depBound))
	for k := range depBound {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	for _, k := range keys {
		on, waiter := k[0], k[1]
		n.shards[waiter].deps = append(n.shards[waiter].deps, shardDep{on: n.shards[on], bound: depBound[k]})
	}

	for id := range n.sources {
		n.sources[id].sh = n.shards[n.shardAt[id]]
	}
	for i := range n.flitXfers {
		x := &n.flitXfers[i]
		sc := n.shards[n.shardAt[x.dst]].sc
		dst := x.dst
		x.wake = func(due int64) { sc.wakeAt(dst, due) }
	}
	n.shardGang = pool.NewGang(len(n.shards))
	n.shardRunFn = func(i int) {
		sh := n.shards[i]
		sh.run(sh.now, sh.horizon)
	}
	// Audit deadlines on the sharded engine are shard-clock values; the
	// round-horizon clamp in runRound is unconditional, so a disabled
	// auditor parks the deadline at infinity like an exhausted fault
	// plan.
	n.auditNextAt = math.MaxInt64
	if n.auditEvery > 0 {
		n.auditNextAt = n.auditEvery
	}
}

// Lookahead returns the sharded engine's global window floor in cycles
// (0 on unsharded networks): the minimum dependency bound over every
// directed shard pair — each round advances the slowest shard by at
// least this much. Individual pairs may tolerate more; see
// PairLookahead.
func (n *Network) Lookahead() int64 { return n.lookahead }

// PairLookahead returns how many cycles shard `to` may run ahead of
// shard `from`'s clock — the minimum bound over the boundary links
// from `from` into `to` (flit links driven in `from`, credit wires of
// links driven in `to`) — or 0 when no such boundary exists. Exposed
// for tests of the per-pair heterogeneous lookahead rule.
func (n *Network) PairLookahead(from, to int) int64 {
	for _, d := range n.shards[to].deps {
		if d.on.idx == from {
			return d.bound
		}
	}
	return 0
}

// stepSharded advances the sharded engine to cycle now: rounds run
// until every shard's clock has passed now (with a quiescence
// fast-forward jumping the clocks over dead air), then cycle now's
// buffered events replay serially.
func (n *Network) stepSharded(now int64) {
	if n.minShardClock() <= now {
		n.advanceShards(now)
	}
	n.replaySharded(now)
}

// minShardClock is the global completion point: every cycle strictly
// below it is complete in every shard.
func (n *Network) minShardClock() int64 {
	m := n.shards[0].now
	for _, sh := range n.shards[1:] {
		if sh.now < m {
			m = sh.now
		}
	}
	return m
}

// advanceShards runs rounds until cycle now is complete everywhere.
// When every shard is quiescent (no worklist entries, no pending
// wakes) the clocks jump straight to the earliest parked injection (or
// past now), skipping the empty rounds; NextDue guarantees the run
// loop never steps past buffered events, and stepping a quiescent
// shard is a no-op regardless of them.
func (n *Network) advanceShards(now int64) {
	idle := true
	for _, sh := range n.shards {
		if sh.sc.busy() {
			idle = false
			break
		}
	}
	if idle {
		jump := now + 1
		for _, sh := range n.shards {
			if h := sh.sc.srcHeap; len(h) > 0 && h[0].at < jump {
				jump = h[0].at
			}
		}
		if n.faults != nil {
			// The skipped span is quiescent — no routing decisions — so
			// fault cycles inside it apply now (cycle by cycle, see
			// applyFaults), keeping the clocks-never-pass-an-unapplied-
			// fault invariant without running empty rounds.
			n.applyFaults(jump)
		}
		for _, sh := range n.shards {
			if sh.now < jump {
				sh.now = jump
			}
		}
		// A quiescence jump may overshoot the audit deadline; the skipped
		// span had no events, so skip the (trivially clean) audit and
		// move the deadline past the jump — a stale deadline would pin
		// every future horizon below the clocks.
		if n.auditEvery > 0 {
			if mc := n.minShardClock(); mc >= n.auditNextAt {
				n.auditNextAt = mc + n.auditEvery
			}
		}
	}
	for n.minShardClock() <= now {
		n.runRound()
	}
}

// runRound is one barrier round: horizons from the clock snapshot, all
// shards step their windows in parallel, then the barrier moves every
// non-empty boundary outbox and the clocks advance.
func (n *Network) runRound() {
	// Fault application is a barrier-only mutation: horizons below are
	// clamped to the next unapplied fault cycle, so no shard ever steps
	// a cycle whose routing decisions should already see the fault.
	// When the slowest clock reaches that cycle, every clock equals it
	// (the clamp pinned them there), and the tables rewrite here, with
	// no shard running.
	if n.faults != nil {
		n.applyFaults(n.minShardClock())
	}
	nextFault := n.faults.nextFaultCycle()
	for _, sh := range n.shards {
		h := sh.now + n.lookahead
		for _, d := range sh.deps {
			if t := d.on.now + d.bound; t < h {
				h = t
			}
		}
		if h > nextFault {
			h = nextFault
		}
		// The audit deadline pins horizons the same way a fault cycle
		// does: no shard steps past it, so when the slowest clock reaches
		// it every clock equals it, the barrier below has flushed the
		// boundary outboxes, and the auditor sees one consistent global
		// state. auditNextAt is MaxInt64 when auditing is off.
		if h > n.auditNextAt {
			h = n.auditNextAt
		}
		sh.horizon = h
	}
	if n.probed {
		// Probes share one accumulator across routers; a probed network
		// steps its shards serially, like the unsharded steppers.
		for _, sh := range n.shards {
			sh.run(sh.now, sh.horizon)
		}
	} else {
		n.shardGang.Run(len(n.shards), n.shardRunFn)
	}
	// The barrier: move boundary pushes to the receiving wires in
	// construction order (ascending driving node, then port) — a fixed
	// serial order, though order is immaterial across distinct wires
	// and preserved within each (single producer, monotone dues).
	// Empty outboxes — the common case once traffic localizes — skip
	// the move entirely.
	for i := range n.flitXfers {
		x := &n.flitXfers[i]
		if x.out.Len() > 0 {
			x.out.MoveTo(x.in, x.wake)
		}
	}
	for i := range n.creditXfers {
		x := &n.creditXfers[i]
		if x.out.Len() > 0 {
			x.out.MoveTo(x.in, nil)
		}
	}
	for _, sh := range n.shards {
		if sh.horizon > sh.now {
			sh.now = sh.horizon
		}
	}
	// Clocks never pass the audit deadline (the horizon clamp), so
	// reaching it means every clock equals it: audit the converged
	// barrier state, then release the pin.
	if n.auditEvery > 0 {
		if mc := n.minShardClock(); mc >= n.auditNextAt {
			n.runAudit(mc - 1)
			n.auditNextAt = mc + n.auditEvery
		}
	}
}

// run steps one shard through the window [start, end): the per-shard
// clone of stepActive, with ejections buffered instead of delivered,
// cross-shard pushes left for the barrier, and shard-local quiescent
// gaps skipped to the next parked injection.
func (sh *shard) run(start, end int64) {
	if end <= start {
		return
	}
	sh.compact()
	sc := sh.sc
	for t := start; t < end; t++ {
		if sc.carryCount == 0 && sc.wakeCount == 0 && sc.srcCount == 0 {
			// Shard-locally quiescent: nothing can happen before the
			// earliest parked injection (pending wakes cover every
			// in-flight arrival, including barrier transfers).
			if len(sc.srcHeap) == 0 {
				return
			}
			if at := sc.srcHeap[0].at; at > t {
				if at >= end {
					return
				}
				t = at
			}
		}
		sc.buildActive(t)
		if sh.gang != nil && !sh.net.probed {
			sh.parNow = t
			sh.gang.Run(len(sc.active), sh.deliverFn)
			sh.gang.Run(len(sc.active), sh.computeFn)
			for _, id := range sc.active {
				sh.finishRouter(int(id), t)
			}
		} else {
			for _, id := range sc.active {
				sh.net.routers[id].Step(t)
				sh.finishRouter(int(id), t)
			}
		}
		sc.stepSources(sh.net, t)
	}
}

// compact moves the unreplayed buffered events to the front of their
// slices, reclaiming the replayed prefix without reallocating.
func (sh *shard) compact() {
	if sh.ejCur > 0 {
		k := copy(sh.ejects, sh.ejects[sh.ejCur:])
		sh.ejects = sh.ejects[:k]
		sh.ejCur = 0
	}
	if sh.crCur > 0 {
		k := copy(sh.creates, sh.creates[sh.crCur:])
		sh.creates = sh.creates[:k]
		sh.crCur = 0
	}
}

// finishRouter completes one stepped router's cycle inside a window:
// ejections are buffered with their done flag, in-shard pushes wake the
// downstream router, and cross-shard pushes stay in their boundary
// outbox for the barrier to deliver and wake.
func (sh *shard) finishRouter(id int, now int64) {
	sc := sh.sc
	r := sh.net.routers[id]
	if ejected := r.Ejected(); len(ejected) > 0 {
		for _, f := range ejected {
			if f.Pkt.Dst != id && !f.Pkt.Dropped {
				panic(fmt.Sprintf("network: flit of packet to %d ejected at node %d", f.Pkt.Dst, id))
			}
			sh.ejects = append(sh.ejects, ejectEvent{t: now, f: f, at: int32(id), done: f.Pkt.Done()})
			sh.drained++ // counted at ejection, not replay: the flit left the wires here
		}
		r.ClearEjected()
	}
	for m := r.TakeFlitPushes(); m != 0; m &= m - 1 {
		port := bits.TrailingZeros64(m)
		if dst := sc.outDst[id*sc.ports+port]; dst >= 0 && sc.owns(dst) {
			sc.wake(dst, sc.delay[id])
		}
	}
	if !r.ComputeIdle() {
		sc.carry(int32(id))
	}
}

// fireEject replays one buffered ejection on the network callbacks,
// returning a finished packet to its source shard's pool. The source
// shard is read before Reset zeroes the packet.
func (n *Network) fireEject(e *ejectEvent, now int64) {
	if e.f.Pkt.Dropped {
		// Unroutable drain: counted, not delivered — OnFlitEjected stays
		// silent so throughput excludes the flits, mirroring the serial
		// engine's handleEject.
		n.droppedFlits++
		if !e.done {
			return
		}
		n.unroutable++
	} else if n.OnFlitEjected != nil {
		n.OnFlitEjected(e.f, now)
	}
	if e.done {
		p := e.f.Pkt
		if n.OnPacketDone != nil {
			n.OnPacketDone(p, now)
		}
		home := n.shards[n.shardAt[p.Src]]
		p.Reset()
		home.pktFree = append(home.pktFree, p)
	}
}

// fireCreate replays one buffered packet creation, assigning the
// global packet ID.
func (n *Network) fireCreate(e *createEvent, now int64) {
	e.p.ID = n.nextPacketID
	n.nextPacketID++
	if cb := n.OnPacketCreated; cb != nil {
		cb(e.p, now)
	}
}

// replaySharded fires cycle now's buffered events on the network's
// callbacks in the serial engine's exact per-cycle order: every
// ejection in ascending node order, then every creation. With ordered
// (contiguous slab) partitions, ascending shard order is ascending
// node order and the replay concatenates; otherwise the per-shard
// buffers — each already ascending by node within the cycle — k-way
// merge on node id.
func (n *Network) replaySharded(now int64) {
	if n.partsOrdered {
		for _, sh := range n.shards {
			for sh.ejCur < len(sh.ejects) {
				e := &sh.ejects[sh.ejCur]
				if e.t != now {
					if e.t < now {
						panic("network: sharded ejection missed its replay cycle")
					}
					break
				}
				sh.ejCur++
				n.fireEject(e, now)
			}
		}
		for _, sh := range n.shards {
			for sh.crCur < len(sh.creates) {
				e := &sh.creates[sh.crCur]
				if e.t != now {
					if e.t < now {
						panic("network: sharded creation missed its replay cycle")
					}
					break
				}
				sh.crCur++
				n.fireCreate(e, now)
			}
		}
		return
	}
	for {
		var best *shard
		bestNode := int32(math.MaxInt32)
		for _, sh := range n.shards {
			if sh.ejCur >= len(sh.ejects) {
				continue
			}
			e := &sh.ejects[sh.ejCur]
			if e.t != now {
				if e.t < now {
					panic("network: sharded ejection missed its replay cycle")
				}
				continue
			}
			if node := e.at; node < bestNode {
				bestNode, best = node, sh
			}
		}
		if best == nil {
			break
		}
		e := &best.ejects[best.ejCur]
		best.ejCur++
		n.fireEject(e, now)
	}
	for {
		var best *shard
		bestNode := int32(math.MaxInt32)
		for _, sh := range n.shards {
			if sh.crCur >= len(sh.creates) {
				continue
			}
			e := &sh.creates[sh.crCur]
			if e.t != now {
				if e.t < now {
					panic("network: sharded creation missed its replay cycle")
				}
				continue
			}
			if node := int32(e.p.Src); node < bestNode {
				bestNode, best = node, sh
			}
		}
		if best == nil {
			break
		}
		e := &best.creates[best.crCur]
		best.crCur++
		n.fireCreate(e, now)
	}
}

// nextDueSharded composes quiescence fast-forward with the per-shard
// clocks: the earliest unreplayed buffered event, else the earliest
// busy shard's next-unexecuted cycle (pending wakes cover
// barrier-transferred boundary flits), else the earliest parked
// injection across shards.
func (n *Network) nextDueSharded(now int64) int64 {
	due := int64(math.MaxInt64)
	for _, sh := range n.shards {
		if sh.ejCur < len(sh.ejects) && sh.ejects[sh.ejCur].t < due {
			due = sh.ejects[sh.ejCur].t
		}
		if sh.crCur < len(sh.creates) && sh.creates[sh.crCur].t < due {
			due = sh.creates[sh.crCur].t
		}
		if sh.sc.busy() {
			if sh.now < due {
				due = sh.now
			}
		} else if h := sh.sc.srcHeap; len(h) > 0 && h[0].at < due {
			due = h[0].at
		}
	}
	if due <= now {
		return now + 1
	}
	return due
}
