package network

import (
	"fmt"
	"math"
	"math/bits"

	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/pool"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// This file implements the lookahead-sharded engine: the network is
// split into contiguous node ranges (shards) that step several cycles
// independently — one goroutine each — between barriers, instead of
// synchronizing every cycle like the two-phase parallel stepper.
//
// The window length is the conservative lookahead
//
//	L = min( min over boundary links of the driving link's delay,
//	         CreditDelay )
//
// Every flit pushed by shard A during a window [T, T+L) onto a
// boundary link of delay d arrives at d >= L cycles later, i.e. at or
// after T+L — the next window — so shard B never needs it while the
// window runs. Credits cross every boundary in the reverse direction
// with delay CreditDelay >= L, so the same holds for them. (Receivers
// additionally process credits creditLag cycles late, so CreditDelay +
// creditLag would be an even larger credit bound; the engine keeps the
// simpler CreditDelay.) Everything else a router or source touches is
// shard-local: wires between same-shard routers, the injection channel,
// the per-shard packet pool, and the per-shard active-set scheduler.
//
// Boundary wires are split in two so no wire is ever touched by two
// shards: the driving router pushes onto a shard-local outbox, and the
// barrier moves the accumulated entries — dues intact, FIFO order
// intact — onto the receiving router's inbox and wakes the receiver in
// its own shard's wake wheel at each flit's exact arrival cycle. A
// moved flit was pushed at t in [T, T+L) and is due at t+d in
// [T+d, T+L-1+d] ⊆ [T+L, T+L+wheelSize-1]: inside the receiving
// wheel's next wheelSize cycles, so the absolute-due wake never
// aliases another slot, and due strictly above the previous window's
// transfers, so the inbox stays due-ordered.
//
// Observable effects are replayed serially so the engine is
// byte-identical to the serial one. During a window each shard only
// buffers its ejections (with a packet-done flag captured at the
// ejection cycle, before later window cycles advance the count) and
// its packet creations; Step(now) then replays the buffered events of
// cycle `now` across shards in ascending shard order. Shards are
// contiguous ascending node ranges and each shard buffers per cycle in
// ascending node order, so the concatenation reproduces the serial
// engine's node-order callback sequence exactly. Packet IDs are
// assigned at replay — the only global counter — so creation order,
// IDs, and every derived measurement match the serial engine bit for
// bit.

// ejectEvent is one buffered flit ejection. done is whether this flit
// completed its packet, captured at ejection time (the packet's
// running count keeps advancing through the rest of the window).
type ejectEvent struct {
	t    int64
	f    flit.Flit
	done bool
}

// createEvent is one buffered packet creation, awaiting its serial
// replay (which assigns the global packet ID).
type createEvent struct {
	t int64
	p *flit.Packet
}

// flitXfer is one boundary flit link: the driving shard pushes onto
// out during the window; the barrier moves the entries onto in (the
// wire the receiving router reads) and wakes the receiver per entry.
type flitXfer struct {
	out, in *link.Wire[flit.Flit]
	dst     int32
	wake    func(due int64)
}

// creditXfer is one boundary credit link (reverse direction). Credits
// never wake anyone — see the scheduler invariant in sched.go.
type creditXfer struct {
	out, in *link.Wire[router.Credit]
}

// shard is one contiguous node range of the sharded engine: its own
// scheduler, event buffers, packet pool, and (optionally) worker gang.
type shard struct {
	net *Network
	idx int
	sc  *scheduler

	// gang and the phase closures parallelize deliver/compute inside
	// the shard when StepWorkers > 1 (each shard owns its gang; Gang.Run
	// is not reentrant but distinct gangs are independent).
	gang      *pool.Gang
	parNow    int64
	deliverFn func(i int)
	computeFn func(i int)

	// Buffered window events, appended in (cycle, node) order; the
	// cursors track serial replay.
	ejects  []ejectEvent
	ejCur   int
	creates []createEvent
	crCur   int

	// pktFree is the shard-local packet pool. Sources allocate from
	// their own shard's pool during the window; the serial replay frees
	// a finished packet back to its source's shard, so pools stay
	// balanced under asymmetric traffic.
	pktFree []*flit.Packet
}

func (sh *shard) allocPacket() *flit.Packet {
	if len(sh.pktFree) == 0 {
		return &flit.Packet{}
	}
	p := sh.pktFree[len(sh.pktFree)-1]
	sh.pktFree = sh.pktFree[:len(sh.pktFree)-1]
	return p
}

// partitionNodes cuts the node range into `shards` contiguous,
// non-empty, balanced ranges, returning the shards+1 cut points. On
// k-ary n-cubes the cuts snap to the top dimension's stride (slabs of
// whole hyperplanes) when that still leaves every shard non-empty:
// only top-dimension links then cross shards, minimizing boundary
// traffic. Any other topology gets the plain balanced split — the
// engine is correct for arbitrary cuts, alignment is purely a
// boundary-count optimization.
func partitionNodes(t topology.Topology, shards int) []int {
	nodes := t.Nodes()
	stride := 0
	if c, ok := t.(topology.Cube); ok && c.N > 1 {
		if s := nodes / c.K; s*shards <= nodes {
			stride = s
		}
	}
	cuts := make([]int, shards+1)
	for i := 1; i < shards; i++ {
		b := i * nodes / shards
		if stride > 1 {
			b = (b + stride/2) / stride * stride
		}
		cuts[i] = b
	}
	cuts[shards] = nodes
	for i := 1; i < shards; i++ {
		if cuts[i] <= cuts[i-1] {
			cuts[i] = cuts[i-1] + 1
		}
	}
	for i := shards - 1; i >= 1; i-- {
		if cuts[i] >= cuts[i+1] {
			cuts[i] = cuts[i+1] - 1
		}
	}
	return cuts
}

// buildShards finishes sharded-engine construction once routers, wires,
// and sources exist: per-shard schedulers over the shared tables,
// boundary wake closures, gangs, and the lookahead window length.
func (n *Network) buildShards(cuts []int) {
	tab := n.buildSchedTables()
	n.shards = make([]*shard, len(cuts)-1)
	for i := range n.shards {
		sh := &shard{net: n, idx: i}
		sh.sc = newScheduler(n, tab, cuts[i], cuts[i+1]-cuts[i])
		if n.cfg.StepWorkers > 1 {
			sh.gang = pool.NewGang(n.cfg.StepWorkers)
			sh.deliverFn = func(i int) { n.routers[sh.sc.active[i]].Deliver(sh.parNow) }
			sh.computeFn = func(i int) { n.routers[sh.sc.active[i]].Compute(sh.parNow) }
		}
		n.shards[i] = sh
	}
	for id := range n.sources {
		n.sources[id].sh = n.shards[n.shardAt[id]]
	}
	for i := range n.flitXfers {
		x := &n.flitXfers[i]
		sc := n.shards[n.shardAt[x.dst]].sc
		dst := x.dst
		x.wake = func(due int64) { sc.wakeAt(dst, due) }
	}
	// The credit wires bound the lookahead whenever any boundary
	// exists; boundary flit links (recorded during wiring as the
	// minimum driving delay) can only lower it further.
	n.lookahead = int64(n.cfg.CreditDelay)
	if n.boundaryDelay > 0 && n.boundaryDelay < n.lookahead {
		n.lookahead = n.boundaryDelay
	}
	n.shardGang = pool.NewGang(len(n.shards))
	n.shardRunFn = func(i int) { n.shards[i].run(n.winStart, n.winEnd) }
}

// Lookahead returns the sharded engine's window length in cycles (0 on
// unsharded networks). Exposed for tests of the heterogeneous-delay
// lookahead rule.
func (n *Network) Lookahead() int64 { return n.lookahead }

// stepSharded advances the sharded engine to cycle now: when the
// current window is exhausted it runs the next window [now, now+L) —
// all shards in parallel, then the boundary exchange — and in every
// case it replays cycle now's buffered events serially.
func (n *Network) stepSharded(now int64) {
	if now >= n.winEnd {
		n.runWindow(now)
	}
	n.replaySharded(now)
}

// runWindow computes the window [start, start+L): every shard steps L
// cycles against frozen boundary inboxes, then the barrier moves the
// boundary outboxes over. Windows need no alignment — a quiescence
// fast-forward simply opens the next window later (NextDue guarantees
// nothing, buffered or scheduled, lives in the gap).
func (n *Network) runWindow(start int64) {
	for _, sh := range n.shards {
		if sh.ejCur != len(sh.ejects) || sh.crCur != len(sh.creates) {
			panic("network: sharded window opened with unreplayed events")
		}
		sh.ejects, sh.ejCur = sh.ejects[:0], 0
		sh.creates, sh.crCur = sh.creates[:0], 0
	}
	n.winStart = start
	n.winEnd = start + n.lookahead
	if n.probed {
		// Probes share one accumulator across routers; a probed network
		// steps its shards serially, like the unsharded steppers.
		for _, sh := range n.shards {
			sh.run(n.winStart, n.winEnd)
		}
	} else {
		n.shardGang.Run(len(n.shards), n.shardRunFn)
	}
	// The barrier: move boundary pushes to the receiving wires in
	// construction order (ascending driving node, then port) — a fixed
	// serial order, though order is immaterial across distinct wires
	// and preserved within each (single producer, monotone dues).
	for i := range n.flitXfers {
		x := &n.flitXfers[i]
		x.out.MoveTo(x.in, x.wake)
	}
	for i := range n.creditXfers {
		x := &n.creditXfers[i]
		x.out.MoveTo(x.in, nil)
	}
}

// run steps one shard through the window [start, end): the per-shard
// clone of stepActive, with ejections buffered instead of delivered and
// cross-shard pushes left for the barrier.
func (sh *shard) run(start, end int64) {
	sc := sh.sc
	for t := start; t < end; t++ {
		sc.buildActive(t)
		if sh.gang != nil && !sh.net.probed {
			sh.parNow = t
			sh.gang.Run(len(sc.active), sh.deliverFn)
			sh.gang.Run(len(sc.active), sh.computeFn)
			for _, id := range sc.active {
				sh.finishRouter(int(id), t)
			}
		} else {
			for _, id := range sc.active {
				sh.net.routers[id].Step(t)
				sh.finishRouter(int(id), t)
			}
		}
		sc.stepSources(sh.net, t)
	}
}

// finishRouter completes one stepped router's cycle inside a window:
// ejections are buffered with their done flag, in-shard pushes wake the
// downstream router, and cross-shard pushes stay in their boundary
// outbox for the barrier to deliver and wake.
func (sh *shard) finishRouter(id int, now int64) {
	sc := sh.sc
	r := sh.net.routers[id]
	if ejected := r.Ejected(); len(ejected) > 0 {
		for _, f := range ejected {
			if f.Pkt.Dst != id {
				panic(fmt.Sprintf("network: flit of packet to %d ejected at node %d", f.Pkt.Dst, id))
			}
			sh.ejects = append(sh.ejects, ejectEvent{t: now, f: f, done: f.Pkt.Done()})
		}
		r.ClearEjected()
	}
	for m := r.TakeFlitPushes(); m != 0; m &= m - 1 {
		port := bits.TrailingZeros64(m)
		if dst := sc.outDst[id*sc.ports+port]; dst >= 0 && sc.owns(dst) {
			sc.wake(dst, sc.delay[id])
		}
	}
	if !r.ComputeIdle() {
		sc.carry(int32(id))
	}
}

// replaySharded fires cycle now's buffered events on the network's
// callbacks: every shard's ejections in ascending shard (= node) order,
// then every shard's creations — the serial engine's exact per-cycle
// order. Creations assign the global packet ID here, so IDs follow
// creation order network-wide.
func (n *Network) replaySharded(now int64) {
	for _, sh := range n.shards {
		for sh.ejCur < len(sh.ejects) {
			e := &sh.ejects[sh.ejCur]
			if e.t != now {
				if e.t < now {
					panic("network: sharded ejection missed its replay cycle")
				}
				break
			}
			sh.ejCur++
			if n.OnFlitEjected != nil {
				n.OnFlitEjected(e.f, now)
			}
			if e.done {
				p := e.f.Pkt
				if n.OnPacketDone != nil {
					n.OnPacketDone(p, now)
				}
				p.Reset()
				src := n.shards[n.shardAt[p.Src]]
				src.pktFree = append(src.pktFree, p)
			}
		}
	}
	for _, sh := range n.shards {
		for sh.crCur < len(sh.creates) {
			e := &sh.creates[sh.crCur]
			if e.t != now {
				if e.t < now {
					panic("network: sharded creation missed its replay cycle")
				}
				break
			}
			sh.crCur++
			e.p.ID = n.nextPacketID
			n.nextPacketID++
			if cb := n.OnPacketCreated; cb != nil {
				cb(e.p, now)
			}
		}
	}
}

// nextDueSharded composes quiescence fast-forward with the windows: the
// earliest unreplayed buffered event, else the next window start while
// any shard still has scheduled work (worklist entries, pending wakes —
// which cover barrier-transferred boundary flits — or busy sources),
// else the earliest parked injection across shards.
func (n *Network) nextDueSharded(now int64) int64 {
	due := int64(math.MaxInt64)
	for _, sh := range n.shards {
		if sh.ejCur < len(sh.ejects) && sh.ejects[sh.ejCur].t < due {
			due = sh.ejects[sh.ejCur].t
		}
		if sh.crCur < len(sh.creates) && sh.creates[sh.crCur].t < due {
			due = sh.creates[sh.crCur].t
		}
		if sh.sc.busy() {
			if n.winEnd < due {
				due = n.winEnd
			}
		} else if h := sh.sc.srcHeap; len(h) > 0 && h[0].at < due {
			due = h[0].at
		}
	}
	if due <= now {
		return now + 1
	}
	return due
}
