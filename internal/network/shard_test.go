package network

import (
	"fmt"
	"strings"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// TestShardedMatchesFullScan is the sharded engine's identity matrix:
// every topology family × load regime × shard count × within-shard
// worker count must reproduce the full-scan reference engine's exact
// event trace — every packet creation, flit ejection, and completion at
// the same cycle in the same order with the same packet IDs. Run under
// -race in CI, this also certifies the window barriers.
func TestShardedMatchesFullScan(t *testing.T) {
	specs := []string{"mesh:k=4", "torus", "ring:12", "hypercube:16"}
	loads := []float64{0.1, 0.4, 0.8}
	cycles := simCycles(4000)
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			topo, err := topology.New(spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, load := range loads {
				cfg := Config{
					Topo:          topo,
					Router:        router.DefaultConfig(router.SpeculativeVC),
					Seed:          23,
					InjectionRate: load * topo.UniformCapacity() / 5,
					FullScan:      true,
				}
				ref := eventTrace(t, cfg, cycles)
				if len(ref) == 0 {
					t.Fatalf("load %.1f: no traffic in reference run", load)
				}
				for _, shards := range []int{1, 2, 4} {
					for _, workers := range []int{0, 2} {
						cfg := cfg
						cfg.FullScan = false
						cfg.Shards = shards
						cfg.StepWorkers = workers
						got := eventTrace(t, cfg, cycles)
						label := fmt.Sprintf("load %.1f shards %d workers %d", load, shards, workers)
						compareTraces(t, label, ref, got)
					}
				}
			}
		})
	}
}

// TestShardLookaheadHeterogeneous pins the PR 6 interaction: with
// per-router link-delay overrides the window length must come from the
// minimum boundary link delay, not the global FlitDelay. A 4×4 mesh
// split into two row-slabs has its boundary between rows 1 and 2; node
// 4 drives a delay-1 link north across it while every other link runs
// at delay 3, so the lookahead must shrink to 1 — and the event trace
// must still match the serial engine exactly.
func TestShardLookaheadHeterogeneous(t *testing.T) {
	base := Config{
		K:             4,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          7,
		InjectionRate: 0.4 * 0.5 / 5,
		FlitDelay:     3,
		CreditDelay:   3,
	}
	cycles := simCycles(5000)

	// Homogeneous delay-3 boundary: the full window.
	cfg := base
	cfg.Shards = 2
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Lookahead(); got != 3 {
		t.Fatalf("homogeneous lookahead = %d, want 3", got)
	}
	net.Close()

	// A delay-1 router on the boundary: the window must shrink.
	cfg = base
	cfg.Shards = 2
	cfg.Overrides = []RouterOverride{{Node: 4, VCs: base.Router.VCs, BufPerVC: base.Router.BufPerVC, LinkDelay: 1}}
	net, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Lookahead(); got != 1 {
		t.Fatalf("heterogeneous lookahead = %d, want 1 (node 4 drives a delay-1 boundary link)", got)
	}
	net.Close()

	// And the shrunk window must stay byte-identical to the serial
	// engine under the same overrides.
	serial := base
	serial.Overrides = cfg.Overrides
	ref := eventTrace(t, serial, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in reference run")
	}
	got := eventTrace(t, cfg, cycles)
	compareTraces(t, "hetero shards=2", ref, got)
}

// TestShardedFastForward drives the sharded engine the way the sim run
// loop does — jumping straight to NextDue over quiescent spans — and
// checks the event trace against the serial every-cycle engine: window
// buffering, barrier wakes, and parked sources must compose with
// quiescence fast-forward.
func TestShardedFastForward(t *testing.T) {
	base := Config{
		K:             4,
		Router:        router.DefaultConfig(router.VirtualChannel),
		Seed:          31,
		InjectionRate: 0.01, // sparse: long quiescent gaps between packets
	}
	cycles := simCycles(30000)
	ref := eventTrace(t, base, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in reference run")
	}

	cfg := base
	cfg.Shards = 4
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var got []string
	hookTrace(net, &got)
	steps := int64(0)
	for now := int64(0); now < cycles; steps++ {
		net.Step(now)
		next := net.NextDue(now)
		if next <= now {
			t.Fatalf("NextDue(%d) = %d; must be in the future", now, next)
		}
		now = next
	}
	compareTraces(t, "fast-forward shards=4", ref, got)
	if steps >= cycles {
		t.Fatalf("no fast-forward happened: %d steps over %d cycles", steps, cycles)
	}
}

// TestShardedConfigValidation pins the sharding knob's error cases.
func TestShardedConfigValidation(t *testing.T) {
	rc := router.DefaultConfig(router.Wormhole)
	cases := []struct {
		name    string
		cfg     Config
		wantSub string
	}{
		{"negative", Config{K: 4, Router: rc, Shards: -1}, "negative shard count"},
		{"fullscan", Config{K: 4, Router: rc, Shards: 2, FullScan: true}, "active-set"},
		{"too many", Config{K: 4, Router: rc, Shards: 17}, "at most one shard per node"},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// TestPartitionNodes pins the partitioner: slab-aligned balanced cuts
// on cubes, plain balanced cuts elsewhere, always contiguous and
// non-empty.
func TestPartitionNodes(t *testing.T) {
	mesh, err := topology.New("mesh:k=8", 8)
	if err != nil {
		t.Fatal(err)
	}
	got := partitionNodes(mesh, 4)
	want := []int{0, 16, 32, 48, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mesh:k=8 × 4 cuts = %v, want %v", got, want)
		}
	}
	hc, err := topology.New("hypercube:16", 8)
	if err != nil {
		t.Fatal(err)
	}
	got = partitionNodes(hc, 3)
	if got[0] != 0 || got[3] != 16 {
		t.Fatalf("hypercube cuts = %v: must span [0, 16]", got)
	}
	for i := 1; i <= 3; i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("hypercube cuts = %v: shard %d empty", got, i-1)
		}
	}
	// More shards than slabs: alignment must yield to non-emptiness.
	small, err := topology.New("mesh:k=4", 4)
	if err != nil {
		t.Fatal(err)
	}
	got = partitionNodes(small, 16)
	for i := 1; i <= 16; i++ {
		if got[i] != i {
			t.Fatalf("mesh:k=4 × 16 cuts = %v: want one node per shard", got)
		}
	}
}

// hookTrace attaches the eventTrace recording callbacks to an existing
// network (for tests that drive Step/NextDue by hand).
func hookTrace(net *Network, trace *[]string) {
	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		*trace = append(*trace, fmt.Sprintf("c %d %d %d %d", now, p.ID, p.Src, p.Dst))
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		*trace = append(*trace, fmt.Sprintf("e %d %d %d", now, f.Pkt.ID, f.Seq))
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		*trace = append(*trace, fmt.Sprintf("d %d %d %d", now, p.ID, p.Latency()))
	}
}
