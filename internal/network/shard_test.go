package network

import (
	"fmt"
	"strings"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// TestShardedMatchesFullScan is the sharded engine's identity matrix:
// every topology family × load regime × shard count × within-shard
// worker count must reproduce the full-scan reference engine's exact
// event trace — every packet creation, flit ejection, and completion at
// the same cycle in the same order with the same packet IDs. Run under
// -race in CI, this also certifies the window barriers.
func TestShardedMatchesFullScan(t *testing.T) {
	specs := []string{"mesh:k=4", "torus", "ring:12", "hypercube:16"}
	loads := []float64{0.1, 0.4, 0.8}
	cycles := simCycles(4000)
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			topo, err := topology.New(spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			for _, load := range loads {
				cfg := Config{
					Topo:          topo,
					Router:        router.DefaultConfig(router.SpeculativeVC),
					Seed:          23,
					InjectionRate: load * topo.UniformCapacity() / 5,
					FullScan:      true,
				}
				ref := eventTrace(t, cfg, cycles)
				if len(ref) == 0 {
					t.Fatalf("load %.1f: no traffic in reference run", load)
				}
				for _, shards := range []int{1, 2, 4} {
					for _, workers := range []int{0, 2} {
						cfg := cfg
						cfg.FullScan = false
						cfg.Shards = shards
						cfg.StepWorkers = workers
						got := eventTrace(t, cfg, cycles)
						label := fmt.Sprintf("load %.1f shards %d workers %d", load, shards, workers)
						compareTraces(t, label, ref, got)
					}
				}
			}
		})
	}
}

// TestShardLookaheadHeterogeneous pins the PR 6 interaction: with
// per-router link-delay overrides the window length must come from the
// minimum boundary link delay, not the global FlitDelay. A 4×4 mesh
// split into two row-slabs has its boundary between rows 1 and 2; node
// 4 drives a delay-1 link north across it while every other link runs
// at delay 3, so the lookahead must shrink to 1 — and the event trace
// must still match the serial engine exactly.
func TestShardLookaheadHeterogeneous(t *testing.T) {
	base := Config{
		K:             4,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          7,
		InjectionRate: 0.4 * 0.5 / 5,
		FlitDelay:     3,
		CreditDelay:   3,
	}
	cycles := simCycles(5000)

	// Homogeneous delay-3 boundary: the full window.
	cfg := base
	cfg.Shards = 2
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Lookahead(); got != 3 {
		t.Fatalf("homogeneous lookahead = %d, want 3", got)
	}
	net.Close()

	// A delay-1 router on the boundary: the window must shrink.
	cfg = base
	cfg.Shards = 2
	cfg.Overrides = []RouterOverride{{Node: 4, VCs: base.Router.VCs, BufPerVC: base.Router.BufPerVC, LinkDelay: 1}}
	net, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Lookahead(); got != 1 {
		t.Fatalf("heterogeneous lookahead = %d, want 1 (node 4 drives a delay-1 boundary link)", got)
	}
	net.Close()

	// And the shrunk window must stay byte-identical to the serial
	// engine under the same overrides.
	serial := base
	serial.Overrides = cfg.Overrides
	ref := eventTrace(t, serial, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in reference run")
	}
	got := eventTrace(t, cfg, cycles)
	compareTraces(t, "hetero shards=2", ref, got)
}

// TestShardLookaheadCreditLag pins the PR 8 widening: the credit-side
// dependency bound is CreditDelay + creditLag (the receiver pops its
// credit wires creditLag cycles late), not the bare CreditDelay the
// old engine clamped to. With FlitDelay=4, CreditDelay=2, and a
// credit-processing depth of 3, the bounds are flit 4 vs credit 2+3=5,
// so the window must be exactly 4 — the old min(4, 2)=2 rule would
// have halved it. The widened window must stay byte-identical to the
// serial engine.
func TestShardLookaheadCreditLag(t *testing.T) {
	rc := router.DefaultConfig(router.VirtualChannel)
	rc.CreditProcess = 3
	base := Config{
		K:             4,
		Router:        rc,
		Seed:          11,
		InjectionRate: 0.4 * 0.5 / 5,
		FlitDelay:     4,
		CreditDelay:   2,
	}
	cfg := base
	cfg.Shards = 2
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := net.Lookahead(); got != 4 {
		t.Fatalf("deep-credit-pipeline lookahead = %d, want 4 (flit bound 4 < credit bound 2+3)", got)
	}
	if got := net.PairLookahead(0, 1); got != 4 {
		t.Fatalf("PairLookahead(0,1) = %d, want 4", got)
	}
	net.Close()

	cycles := simCycles(5000)
	ref := eventTrace(t, base, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in reference run")
	}
	got := eventTrace(t, cfg, cycles)
	compareTraces(t, "credit-lag shards=2", ref, got)
}

// TestShardPairLookaheadHeterogeneous pins the per-pair windows: a
// delay-1 router on ONE boundary of an 8×8 mesh split into four
// row-slab shards must shrink only the pair window it constrains. Node
// 40 (row 5) drives a delay-1 link north across the shard-2/shard-3
// boundary, so that pair's bound drops to 1 while every other pair —
// including the reverse direction across the same boundary — keeps the
// full delay-3 flit bound. The global floor is the min pair bound.
func TestShardPairLookaheadHeterogeneous(t *testing.T) {
	base := Config{
		K:             8,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          13,
		InjectionRate: 0.3 * 0.5 / 5,
		FlitDelay:     3,
		CreditDelay:   3,
	}
	cfg := base
	cfg.Shards = 4
	cfg.Overrides = []RouterOverride{{Node: 40, VCs: base.Router.VCs, BufPerVC: base.Router.BufPerVC, LinkDelay: 1}}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Flit bound 3, credit bound 3+creditLag(1) = 4 on unconstrained
	// pairs; the delay-1 link pulls only (2→3) down to 1.
	wants := []struct {
		from, to int
		want     int64
	}{
		{0, 1, 3}, {1, 0, 3}, {1, 2, 3}, {2, 1, 3}, {3, 2, 3},
		{2, 3, 1},
	}
	for _, w := range wants {
		if got := net.PairLookahead(w.from, w.to); got != w.want {
			t.Errorf("PairLookahead(%d,%d) = %d, want %d", w.from, w.to, got, w.want)
		}
	}
	if got := net.PairLookahead(0, 2); got != 0 {
		t.Errorf("PairLookahead(0,2) = %d, want 0 (no shared boundary)", got)
	}
	if got := net.Lookahead(); got != 1 {
		t.Errorf("global lookahead floor = %d, want 1", got)
	}
	net.Close()

	// The per-pair windows must stay byte-identical to the serial
	// engine under the same overrides.
	cycles := simCycles(5000)
	serial := base
	serial.Overrides = cfg.Overrides
	ref := eventTrace(t, serial, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in reference run")
	}
	got := eventTrace(t, cfg, cycles)
	compareTraces(t, "per-pair hetero shards=4", ref, got)
}

// TestShardedFastForward drives the sharded engine the way the sim run
// loop does — jumping straight to NextDue over quiescent spans — and
// checks the event trace against the serial every-cycle engine: window
// buffering, barrier wakes, and parked sources must compose with
// quiescence fast-forward.
func TestShardedFastForward(t *testing.T) {
	base := Config{
		K:             4,
		Router:        router.DefaultConfig(router.VirtualChannel),
		Seed:          31,
		InjectionRate: 0.01, // sparse: long quiescent gaps between packets
	}
	cycles := simCycles(30000)
	ref := eventTrace(t, base, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in reference run")
	}

	cfg := base
	cfg.Shards = 4
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var got []string
	hookTrace(net, &got)
	steps := int64(0)
	for now := int64(0); now < cycles; steps++ {
		net.Step(now)
		next := net.NextDue(now)
		if next <= now {
			t.Fatalf("NextDue(%d) = %d; must be in the future", now, next)
		}
		now = next
	}
	compareTraces(t, "fast-forward shards=4", ref, got)
	if steps >= cycles {
		t.Fatalf("no fast-forward happened: %d steps over %d cycles", steps, cycles)
	}
}

// TestShardedConfigValidation pins the sharding knob's error cases.
func TestShardedConfigValidation(t *testing.T) {
	rc := router.DefaultConfig(router.Wormhole)
	cases := []struct {
		name    string
		cfg     Config
		wantSub string
	}{
		{"negative", Config{K: 4, Router: rc, Shards: -1}, "negative shard count"},
		{"fullscan", Config{K: 4, Router: rc, Shards: 2, FullScan: true}, "active-set"},
		{"too many", Config{K: 4, Router: rc, Shards: 17}, "at most one shard per node"},
	}
	for _, c := range cases {
		if _, err := New(c.cfg); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.wantSub)
		}
	}
}

// TestPartitionNodes pins the partitioner's fast path: slab-aligned
// balanced contiguous parts on multi-dimensional cubes (row slabs are
// the minimal cut there, so the graph partitioner is skipped), and one
// node per shard at the degenerate limit.
func TestPartitionNodes(t *testing.T) {
	mesh, err := topology.New("mesh:k=8", 8)
	if err != nil {
		t.Fatal(err)
	}
	got := partitionNodes(mesh, 4, nil, 1)
	for i, part := range got {
		if len(part) != 16 || int(part[0]) != 16*i || int(part[15]) != 16*i+15 {
			t.Fatalf("mesh:k=8 × 4 part %d = %v, want contiguous slab [%d, %d]", i, part, 16*i, 16*i+15)
		}
	}
	// More shards than slabs: alignment must yield to non-emptiness.
	small, err := topology.New("mesh:k=4", 4)
	if err != nil {
		t.Fatal(err)
	}
	got = partitionNodes(small, 16, nil, 1)
	for i, part := range got {
		if len(part) != 1 || int(part[0]) != i {
			t.Fatalf("mesh:k=4 × 16 part %d = %v: want exactly node %d", i, part, i)
		}
	}
}

// partitionCut counts the directed cut links and sums their 1/delay
// weight for a given partition.
func partitionCut(t *testing.T, topo topology.Topology, parts [][]int32, delayAt []int64, flitDelay int64) (edges int, weight float64) {
	t.Helper()
	at := make([]int32, topo.Nodes())
	seen := make([]bool, topo.Nodes())
	total := 0
	for i, part := range parts {
		for _, id := range part {
			if seen[id] {
				t.Fatalf("node %d assigned twice", id)
			}
			seen[id] = true
			at[id] = int32(i)
			total++
		}
	}
	if total != topo.Nodes() {
		t.Fatalf("partition covers %d of %d nodes", total, topo.Nodes())
	}
	for id := 0; id < topo.Nodes(); id++ {
		for port := 1; port < topo.Ports(); port++ {
			next, _, ok := topo.Neighbor(id, port)
			if !ok {
				continue
			}
			if at[id] != at[int32(next)] {
				edges++
				d := flitDelay
				if delayAt != nil {
					d = delayAt[id]
				}
				weight += 1 / float64(d)
			}
		}
	}
	return edges, weight
}

// contiguousParts is the legacy slab partition (the baseline the graph
// partitioner must never cut more than).
func contiguousParts(topo topology.Topology, shards int) [][]int32 {
	cuts, _ := slabCuts(topo, shards)
	all := make([]int32, topo.Nodes())
	for i := range all {
		all[i] = int32(i)
	}
	parts := make([][]int32, shards)
	for i := 0; i < shards; i++ {
		parts[i] = all[cuts[i]:cuts[i+1]]
	}
	return parts
}

// TestPartitionProperties is the partitioner's property test: on every
// topology family — and a heterogeneous-override graph — every
// partition covers all nodes exactly once, shard sizes balance within
// ±1, every shard's node list is ascending (the replay-merge
// invariant), and the 1/delay-weighted cut never exceeds the
// contiguous-slab cut.
func TestPartitionProperties(t *testing.T) {
	cases := []struct {
		spec    string
		hetero  bool
		shardsN []int
	}{
		{"mesh:k=6", false, []int{2, 3, 4, 7}},
		{"torus:k=4", false, []int{2, 3, 4}},
		{"hypercube:64", false, []int{2, 4, 8, 5}},
		{"ring:24", false, []int{2, 3, 6}},
		{"mesh:k=6", true, []int{2, 3, 4}},
	}
	for _, c := range cases {
		name := c.spec
		if c.hetero {
			name += "/hetero"
		}
		t.Run(name, func(t *testing.T) {
			topo, err := topology.New(c.spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			nodes := topo.Nodes()
			flitDelay := int64(1)
			var delayAt []int64
			if c.hetero {
				// A stripe of slow (delay-4) routers: cutting through
				// their links is cheap, so the weighted objective and
				// the raw edge count genuinely differ.
				delayAt = make([]int64, nodes)
				for id := range delayAt {
					delayAt[id] = 1
					if id%3 == 0 {
						delayAt[id] = 4
					}
				}
			}
			for _, shards := range c.shardsN {
				parts := partitionNodes(topo, shards, delayAt, flitDelay)
				if len(parts) != shards {
					t.Fatalf("%d shards: got %d parts", shards, len(parts))
				}
				lo, hi := nodes/shards, (nodes+shards-1)/shards
				for i, part := range parts {
					if len(part) < lo || len(part) > hi {
						t.Errorf("%d shards: part %d has %d nodes, want %d..%d", shards, i, len(part), lo, hi)
					}
					for j := 1; j < len(part); j++ {
						if part[j] <= part[j-1] {
							t.Fatalf("%d shards: part %d not ascending at %d: %v", shards, i, j, part)
						}
					}
				}
				slab := contiguousParts(topo, shards)
				gotEdges, gotW := partitionCut(t, topo, parts, delayAt, flitDelay)
				slabEdges, slabW := partitionCut(t, topo, slab, delayAt, flitDelay)
				if gotW > slabW {
					t.Errorf("%d shards: weighted cut %.3f exceeds slab cut %.3f", shards, gotW, slabW)
				}
				if delayAt == nil && gotEdges > slabEdges {
					// Uniform delays: weighted cut ∝ edge count, so the
					// edge-count property must hold too.
					t.Errorf("%d shards: cut edges %d exceed slab cut %d", shards, gotEdges, slabEdges)
				}
			}
		})
	}
}

// hookTrace attaches the eventTrace recording callbacks to an existing
// network (for tests that drive Step/NextDue by hand).
func hookTrace(net *Network, trace *[]string) {
	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		*trace = append(*trace, fmt.Sprintf("c %d %d %d %d", now, p.ID, p.Src, p.Dst))
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		*trace = append(*trace, fmt.Sprintf("e %d %d %d", now, f.Pkt.ID, f.Seq))
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		*trace = append(*trace, fmt.Sprintf("d %d %d %d", now, p.ID, p.Latency()))
	}
}
