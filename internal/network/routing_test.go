package network

import (
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
	"routersim/internal/traffic"
)

func TestParseRoutingCanonical(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"", ""},
		{"dor", ""},
		{"adaptive", "adaptive:minimal"},
		{"adaptive:minimal", "adaptive:minimal"},
	}
	for _, c := range cases {
		got, err := CanonicalRouting(c.spec)
		if err != nil {
			t.Errorf("CanonicalRouting(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("CanonicalRouting(%q) = %q, want %q", c.spec, got, c.want)
		}
	}
	for _, bad := range []string{"adaptive:full", "xy", "random"} {
		if _, err := ParseRouting(bad); err == nil {
			t.Errorf("ParseRouting(%q): expected error, got none", bad)
		}
	}
}

// TestAdaptiveConfigValidation pins the configuration gates: adaptive
// routing needs a VC router kind, room for at least one adaptive VC
// above the escape classes, and a uniform VC split.
func TestAdaptiveConfigValidation(t *testing.T) {
	// Wormhole routers have no VCs to split.
	cfg := testConfig(router.Wormhole, 0.02)
	cfg.Routing = "adaptive:minimal"
	if err := cfg.Normalize(); err == nil {
		t.Error("adaptive on wormhole: expected error, got none")
	}

	// A torus needs 2 escape classes + 1 adaptive VC; 2 VCs are too few.
	topo, err := topology.New("torus", 4)
	if err != nil {
		t.Fatal(err)
	}
	rc := router.DefaultConfig(router.VirtualChannel)
	rc.VCs = 2
	tcfg := Config{Topo: topo, Router: rc, InjectionRate: 0.02, Routing: "adaptive:minimal"}
	if err := tcfg.Normalize(); err == nil {
		t.Error("adaptive on torus with 2 VCs: expected error, got none")
	}

	// Per-router VC overrides break the uniform escape/adaptive split.
	ocfg := testConfig(router.VirtualChannel, 0.02)
	ocfg.Routing = "adaptive:minimal"
	ocfg.Overrides = []RouterOverride{{Node: 0, VCs: 4, BufPerVC: 4}}
	if err := ocfg.Normalize(); err == nil {
		t.Error("adaptive with per-router VC override: expected error, got none")
	}
}

// TestAdaptiveSoak is the satellite livelock/deadlock soak: adversarial
// patterns (hotspot, transpose) at 95% of capacity on a mesh, a torus,
// and a hypercube, all under adaptive routing. Far past saturation the
// network must keep delivering — a deadlock freezes completions and a
// livelock starves them, so the gate is sustained progress in every
// window of the run.
func TestAdaptiveSoak(t *testing.T) {
	cycles := simCycles(15000)
	window := cycles / 8
	topos := []struct {
		spec string
		vcs  int
	}{
		{"mesh:k=8", 2},
		{"torus:k=4", 4},
		{"hypercube:16", 2},
	}
	for _, tp := range topos {
		for _, pattern := range []string{"hotspot", "transpose"} {
			tp, pattern := tp, pattern
			t.Run(tp.spec+"/"+pattern, func(t *testing.T) {
				t.Parallel()
				topo, err := topology.New(tp.spec, 8)
				if err != nil {
					t.Fatal(err)
				}
				pat, err := traffic.New(pattern, topo.Nodes())
				if err != nil {
					t.Fatal(err)
				}
				rc := router.DefaultConfig(router.SpeculativeVC)
				rc.VCs = tp.vcs
				cfg := Config{
					Topo:          topo,
					Router:        rc,
					Seed:          29,
					Pattern:       pat,
					InjectionRate: 0.95 * topo.UniformCapacity() / 5,
					Routing:       "adaptive:minimal",
				}
				n, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				defer n.Close()
				var done, doneAtWindowStart int64
				n.OnPacketDone = func(p *flit.Packet, now int64) { done++ }
				for now := int64(0); now < cycles; now++ {
					n.Step(now)
					if now > 0 && now%window == 0 {
						if done == doneAtWindowStart {
							t.Fatalf("no packet completed in cycles [%d,%d): wedged at 95%% load", now-window, now)
						}
						doneAtWindowStart = done
					}
				}
				if done == 0 {
					t.Fatal("no packets completed at all")
				}
			})
		}
	}
}

// TestAdaptiveMatchesCapacityAtLowLoad sanity-checks that adaptive
// routing delivers everything a sub-saturation uniform workload offers:
// same packet count as dor, no drops, no stalls.
func TestAdaptiveDeliversAtLowLoad(t *testing.T) {
	cycles := simCycles(4000)
	for _, spec := range []string{"mesh:k=4", "torus", "hypercube:16"} {
		topo, err := topology.New(spec, 4)
		if err != nil {
			t.Fatal(err)
		}
		rc := router.DefaultConfig(router.VirtualChannel)
		if topo.VCClasses() > 1 {
			rc.VCs = 4
		}
		cfg := Config{
			Topo:          topo,
			Router:        rc,
			Seed:          7,
			InjectionRate: 0.2 * topo.UniformCapacity() / 5,
			Routing:       "adaptive:minimal",
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		created, done := 0, 0
		n.OnPacketCreated = func(p *flit.Packet, now int64) { created++ }
		n.OnPacketDone = func(p *flit.Packet, now int64) { done++ }
		for now := int64(0); now < cycles; now++ {
			n.Step(now)
		}
		n.Close()
		if created == 0 {
			t.Fatalf("%s: no traffic", spec)
		}
		// All but the in-flight tail must have completed.
		if done < created*9/10 {
			t.Errorf("%s: only %d of %d packets completed at 20%% load", spec, done, created)
		}
	}
}
