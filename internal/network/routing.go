package network

import (
	"fmt"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// This file implements the network-level routing policies behind
// Config.Routing. The default, "dor", is the paper's deterministic
// dimension-order routing and keeps the routers' precomputed scalar
// tables — bit-identical to every run before policies existed. The
// alternative, "adaptive:minimal", is minimal-adaptive routing with an
// escape layer (Duato's methodology): the VC space is split into escape
// VCs (the low topology.VCClasses() VCs, which run the deterministic
// table with its dateline classes) and adaptive VCs (the rest, free to
// take any productive port from topology.RouteCandidates). Head flits
// alternate VC-allocation attempts between the adaptive layer (even
// attempts, port chosen by emptiest-downstream credit count) and the
// escape layer (odd attempts, table port only); since a packet blocked
// on the adaptive layer always retries the escape layer next cycle, and
// the escape layer alone is deadlock-free, the whole network is.

// routingMode is the parsed form of Config.Routing.
type routingMode uint8

const (
	// routeDOR is deterministic dimension-order (table) routing.
	routeDOR routingMode = iota
	// routeAdaptiveMinimal is minimal-adaptive routing over escape VCs.
	routeAdaptiveMinimal
)

// ParseRouting parses a routing-policy spec: "" or "dor" for
// dimension-order routing, "adaptive" or "adaptive:minimal" for
// minimal-adaptive routing with escape VCs.
func ParseRouting(spec string) (routingMode, error) {
	switch spec {
	case "", "dor":
		return routeDOR, nil
	case "adaptive", "adaptive:minimal":
		return routeAdaptiveMinimal, nil
	default:
		return routeDOR, fmt.Errorf("routing: unknown policy %q (want dor or adaptive:minimal)", spec)
	}
}

// CanonicalRouting parses a routing spec and returns its canonical
// spelling ("" for the default dimension-order routing). The harness
// uses it for scenario labels and dedup.
func CanonicalRouting(spec string) (string, error) {
	mode, err := ParseRouting(spec)
	if err != nil {
		return "", err
	}
	if mode == routeAdaptiveMinimal {
		return "adaptive:minimal", nil
	}
	return "", nil
}

// adaptivePolicy is the per-router router.RoutingPolicy implementing
// minimal-adaptive routing with escape VCs. One instance per router; the
// scratch buffer makes Route allocation-free, and every field it reads
// is either router-local (credit counts), immutable (topology), or only
// rewritten at fault barriers while no router is stepping (routeTab,
// deadOut) — the determinism contract of router.RoutingPolicy.
type adaptivePolicy struct {
	n      *Network
	id     int
	topo   topology.Topology
	routes []uint8 // this router's live table row (aliases n.routeTab[id])

	escClasses int    // topology VC classes; escape layer = VCs [0, escClasses)
	adaptMask  uint64 // adaptive layer = VCs [escClasses, VCs)
	fullMask   uint64 // all VCs (used when draining unroutable packets)
	wrap       bool   // escape masks are per-hop dateline classes

	buf [topology.MaxPorts]uint8 // RouteCandidates scratch
}

// escMask returns the escape-layer VC mask for a hop through port: VC 0
// on classless topologies, the dateline class within the low escClasses
// VCs on wrap topologies.
func (ap *adaptivePolicy) escMask(dst, port int) uint64 {
	if !ap.wrap {
		return 1
	}
	return ap.topo.VCMask(ap.id, dst, port, ap.escClasses)
}

// Route implements router.RoutingPolicy.
func (ap *adaptivePolicy) Route(r *router.Router, p *flit.Packet, attempt int) (int, uint64) {
	dst := p.Dst
	table := ap.routes[dst]
	if table == router.Unroutable {
		// Destination unreachable on the live graph: drain through this
		// router's ejection port, counted as dropped.
		p.Dropped = true
		return topology.PortLocal, ap.fullMask
	}
	dead := ap.n.deadOut // nil on unfaulted networks
	if p.EscapeOnly || attempt&1 == 1 {
		// Escape attempt: the table port on the escape VCs. On a faulted
		// network the packet is pinned to the table from its first escape
		// attempt on: the rerouted tables are loop-free up*/down* routes,
		// so
		// the remaining hop count is bounded, whereas mixing table hops
		// (which may move away from dst in the original metric) with
		// adaptive hops (minimal in that metric) could orbit forever. On
		// an unfaulted network the table is itself minimal, so no pinning
		// is needed.
		if dead != nil {
			p.EscapeOnly = true
		}
		return int(table), ap.escMask(dst, int(table))
	}
	// Adaptive attempt: among the turn-model-legal productive ports,
	// pick the one with the most free downstream credits on the adaptive
	// layer (ties to the lowest port — deterministic). Under faults,
	// dead ports and next hops that lost their path to dst are skipped.
	cands := ap.topo.RouteCandidates(ap.id, dst, ap.buf[:0])
	best, bestCredits := -1, -1
	for _, port := range cands {
		if dead != nil {
			if dead[ap.id]&(1<<uint64(port)) != 0 {
				continue
			}
			if next, _, ok := ap.topo.Neighbor(ap.id, int(port)); !ok || ap.n.routeTab[next][dst] == router.Unroutable {
				continue
			}
		}
		if c := r.FreeCreditsMask(int(port), ap.adaptMask); c > bestCredits {
			best, bestCredits = int(port), c
		}
	}
	if best < 0 {
		// A fault severed every productive candidate: fall back to the
		// escape table for the rest of the packet's life.
		p.EscapeOnly = true
		return int(table), ap.escMask(dst, int(table))
	}
	mask := ap.adaptMask
	if best == int(table) {
		// The adaptive choice coincides with the escape direction: the
		// escape VCs of that hop are legal too, widening allocation.
		mask |= ap.escMask(dst, best)
	}
	return best, mask
}
