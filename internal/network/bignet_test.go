package network

import (
	"testing"

	"routersim/internal/router"
	"routersim/internal/topology"
)

// TestFunctionalRoutingAtScale exercises the above-MaxNodes regime,
// where the network skips the O(nodes²) routing tables and routes
// through per-router closures instead: a 129×129 mesh (16,641 nodes —
// just past the table cap) must build under a cap= opt-in, carry
// traffic, and stay event-trace-identical between the serial engine and
// the lookahead-sharded engine.
func TestFunctionalRoutingAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-node network build is not short-mode material")
	}
	topo, err := topology.New("mesh:k=129,cap=16641", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topo:          topo,
		Router:        router.DefaultConfig(router.Wormhole),
		Seed:          13,
		InjectionRate: 0.05 * topo.UniformCapacity() / 5,
	}
	cycles := int64(300)
	ref := eventTrace(t, cfg, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in functional-routing reference run")
	}
	ejected := false
	for _, ev := range ref {
		if ev[0] == 'e' {
			ejected = true
			break
		}
	}
	if !ejected {
		t.Fatal("no ejections: functional routing never delivered a flit")
	}
	cfg.Shards = 4
	got := eventTrace(t, cfg, cycles)
	compareTraces(t, "functional mesh:k=129 shards=4", ref, got)
}

// TestFunctionalRoutingClasses covers the functional VC-class path: a
// torus needs the dateline class function, which above MaxNodes is a
// closure rather than a table. The sharded engine must again match the
// serial trace exactly.
func TestFunctionalRoutingClasses(t *testing.T) {
	if testing.Short() {
		t.Skip("16k-node network build is not short-mode material")
	}
	topo, err := topology.New("torus:k=129,cap=16641", 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Topo:          topo,
		Router:        router.DefaultConfig(router.VirtualChannel),
		Seed:          17,
		InjectionRate: 0.05 * topo.UniformCapacity() / 5,
	}
	cycles := int64(150)
	ref := eventTrace(t, cfg, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in functional-class reference run")
	}
	cfg.Shards = 2
	got := eventTrace(t, cfg, cycles)
	compareTraces(t, "functional torus:k=129 shards=2", ref, got)
}
