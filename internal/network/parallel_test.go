package network

import (
	"fmt"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// eventTrace records every observable event of a run in order; two
// engines are equivalent only if their traces match exactly.
func eventTrace(t *testing.T, cfg Config, cycles int64) []string {
	t.Helper()
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	var trace []string
	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("c %d %d %d %d", now, p.ID, p.Src, p.Dst))
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		trace = append(trace, fmt.Sprintf("e %d %d %d", now, f.Pkt.ID, f.Seq))
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		trace = append(trace, fmt.Sprintf("d %d %d %d", now, p.ID, p.Latency()))
	}
	for now := int64(0); now < cycles; now++ {
		net.Step(now)
	}
	return trace
}

// TestParallelStepperMatchesSerial: the two-phase parallel stepper must
// produce the exact event sequence of the serial engine — every packet
// creation, flit ejection, and completion at the same cycle in the same
// order — for every router kind, for any worker count. Run under -race
// in CI, this also certifies the phase barriers.
func TestParallelStepperMatchesSerial(t *testing.T) {
	kinds := []router.Kind{
		router.Wormhole, router.VirtualChannel, router.SpeculativeVC,
		router.SingleCycleWormhole, router.SingleCycleVC,
	}
	cycles := simCycles(6000)
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{K: 4, Router: router.DefaultConfig(kind), Seed: 11, InjectionRate: 0.5 * 1.0 / 5}
			serial := eventTrace(t, cfg, cycles)
			if len(serial) == 0 {
				t.Fatal("no traffic in serial run")
			}
			for _, workers := range []int{2, 5} {
				cfg := cfg
				cfg.StepWorkers = workers
				par := eventTrace(t, cfg, cycles)
				if len(par) != len(serial) {
					t.Fatalf("%d workers: %d events vs %d serial", workers, len(par), len(serial))
				}
				for i := range serial {
					if par[i] != serial[i] {
						t.Fatalf("%d workers: event %d diverged: %q vs serial %q", workers, i, par[i], serial[i])
					}
				}
			}
		})
	}
}

// TestParallelStepperCrossTopology covers every topology family under
// the parallel stepper: the 2-D torus (dateline VC class tables), a 3-D
// torus, a ring, and a hypercube must each produce the serial engine's
// exact event trace for any worker count. Run under -race in CI.
func TestParallelStepperCrossTopology(t *testing.T) {
	specs := []string{"torus", "torus:k=3,n=3", "ring:12", "hypercube:16"}
	for _, spec := range specs {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			t.Parallel()
			topo, err := topology.New(spec, 4)
			if err != nil {
				t.Fatal(err)
			}
			rc := router.DefaultConfig(router.SpeculativeVC)
			cfg := Config{
				Topo:          topo,
				Router:        rc,
				Seed:          5,
				InjectionRate: 0.4 * topo.UniformCapacity() / 5,
			}
			cycles := simCycles(6000)
			serial := eventTrace(t, cfg, cycles)
			if len(serial) == 0 {
				t.Fatal("no traffic")
			}
			for _, workers := range []int{2, 3} {
				cfg := cfg
				cfg.StepWorkers = workers
				par := eventTrace(t, cfg, cycles)
				if len(par) != len(serial) {
					t.Fatalf("%d workers: %d events vs %d serial", workers, len(par), len(serial))
				}
				for i := range serial {
					if par[i] != serial[i] {
						t.Fatalf("%d workers: event %d diverged: %q vs %q", workers, i, par[i], serial[i])
					}
				}
			}
		})
	}
}
