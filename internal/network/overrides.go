package network

import (
	"fmt"
	"strconv"
	"strings"
)

// RouterOverride deviates one router from the global configuration.
// Zero-valued fields keep the global value.
type RouterOverride struct {
	// Node is the router id the override applies to.
	Node int
	// VCs overrides the router's virtual channels per port (>= 1).
	VCs int
	// BufPerVC overrides the flit buffers per VC (>= 1).
	BufPerVC int
	// LinkDelay overrides the propagation delay, in cycles, of every
	// link driven by this router (its output links and its own
	// injection channel).
	LinkDelay int
}

// maxLinkDelay bounds per-router link delays: the active-set
// scheduler's wake wheel has one slot per delay cycle.
const maxLinkDelay = 1024

// overridesForm renders the override grammar for error messages.
func overridesForm() string {
	return "NODE:vcs=V,buf=B,delay=D — groups ';'-separated, NODE an id, a LO-HI range, or '*'"
}

// ParseOverrides resolves a per-router override spec against a node
// count. The grammar is ';'-separated groups of SELECTOR:k=v,... where
// the selector is a node id, an inclusive LO-HI range, or '*' (every
// node), and the keys are vcs, buf, and delay. Later groups win on
// conflict. The result is merged per node and sorted by node id; an
// empty spec is nil.
func ParseOverrides(spec string, nodes int) ([]RouterOverride, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	type cell struct{ vcs, buf, delay int }
	cells := make(map[int]*cell)
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		selStr, args, ok := strings.Cut(group, ":")
		if !ok {
			return nil, fmt.Errorf("network: override %q has no ':' (form: %s)", group, overridesForm())
		}
		lo, hi, err := parseSelector(strings.TrimSpace(selStr), nodes)
		if err != nil {
			return nil, err
		}
		var c cell
		any := false
		for _, field := range strings.Split(args, ",") {
			k, vs, ok := strings.Cut(field, "=")
			k = strings.TrimSpace(k)
			if !ok || k == "" {
				return nil, fmt.Errorf("network: override %q wants KEY=VALUE parameters, got %q (form: %s)", group, field, overridesForm())
			}
			v, err := strconv.Atoi(strings.TrimSpace(vs))
			if err != nil {
				return nil, fmt.Errorf("network: override %q: parameter %s: %v", group, k, err)
			}
			switch k {
			case "vcs":
				c.vcs = v
			case "buf":
				c.buf = v
			case "delay":
				c.delay = v
			default:
				return nil, fmt.Errorf("network: override %q: unknown parameter %q (valid: vcs, buf, delay)", group, k)
			}
			if v < 1 {
				return nil, fmt.Errorf("network: override %q: %s=%d; need >= 1", group, k, v)
			}
			any = true
		}
		if !any {
			return nil, fmt.Errorf("network: override %q sets nothing (form: %s)", group, overridesForm())
		}
		for id := lo; id <= hi; id++ {
			dst := cells[id]
			if dst == nil {
				dst = &cell{}
				cells[id] = dst
			}
			if c.vcs != 0 {
				dst.vcs = c.vcs
			}
			if c.buf != 0 {
				dst.buf = c.buf
			}
			if c.delay != 0 {
				dst.delay = c.delay
			}
		}
	}
	out := make([]RouterOverride, 0, len(cells))
	for id := 0; id < nodes; id++ {
		if c, ok := cells[id]; ok {
			out = append(out, RouterOverride{Node: id, VCs: c.vcs, BufPerVC: c.buf, LinkDelay: c.delay})
		}
	}
	return out, nil
}

// parseSelector resolves an override node selector to an inclusive
// [lo, hi] id range.
func parseSelector(sel string, nodes int) (lo, hi int, err error) {
	if sel == "*" {
		return 0, nodes - 1, nil
	}
	if loStr, hiStr, ok := strings.Cut(sel, "-"); ok {
		lo, err1 := strconv.Atoi(strings.TrimSpace(loStr))
		hi, err2 := strconv.Atoi(strings.TrimSpace(hiStr))
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("network: override selector %q is not LO-HI (form: %s)", sel, overridesForm())
		}
		if lo > hi {
			return 0, 0, fmt.Errorf("network: override range %q is empty (lo > hi)", sel)
		}
		if lo < 0 || hi >= nodes {
			return 0, 0, fmt.Errorf("network: override range %q outside nodes [0,%d)", sel, nodes)
		}
		return lo, hi, nil
	}
	id, err2 := strconv.Atoi(sel)
	if err2 != nil {
		return 0, 0, fmt.Errorf("network: override selector %q is not a node id, LO-HI range, or '*'", sel)
	}
	if id < 0 || id >= nodes {
		return 0, 0, fmt.Errorf("network: override node %d outside nodes [0,%d)", id, nodes)
	}
	return id, id, nil
}

// validateOverrides checks the override list against the resolved
// topology and router kind: ids in range, sane values, and a valid
// effective router configuration at every overridden node. Called from
// Normalize once Topo and Router.Ports are resolved.
func (c *Config) validateOverrides() error {
	if len(c.Overrides) == 0 {
		return nil
	}
	nodes := c.Topo.Nodes()
	for _, o := range c.Overrides {
		if o.Node < 0 || o.Node >= nodes {
			return fmt.Errorf("network: override node %d outside nodes [0,%d)", o.Node, nodes)
		}
		if o.VCs < 0 || o.BufPerVC < 0 || o.LinkDelay < 0 {
			return fmt.Errorf("network: override node %d has a negative field (0 keeps the global value)", o.Node)
		}
		if o.VCs != 0 && c.Topo.VCClasses() > 1 {
			// Dateline deadlock freedom assumes one class partition on
			// every router of the ring; heterogeneous VC counts would
			// break the class masks.
			return fmt.Errorf("network: per-router VC overrides are not supported on %s (dateline VC classes)", c.Topo.Name())
		}
		if o.LinkDelay > maxLinkDelay {
			return fmt.Errorf("network: override node %d link delay %d; max %d", o.Node, o.LinkDelay, maxLinkDelay)
		}
	}
	vcs, buf, _ := c.nodeParams(nodes)
	for id := 0; id < nodes; id++ {
		rcfg := c.Router
		rcfg.VCs = vcs[id]
		rcfg.BufPerVC = buf[id]
		if err := rcfg.Validate(); err != nil {
			return fmt.Errorf("network: override node %d: %w", id, err)
		}
	}
	return nil
}

// nodeParams resolves the per-router VC count, buffer depth, and driven-
// link delay after overrides. The slices are nil when no overrides are
// set, signalling the fully uniform fast path.
func (c *Config) nodeParams(nodes int) (vcs, buf []int, delay []int64) {
	if len(c.Overrides) == 0 {
		return nil, nil, nil
	}
	vcs = make([]int, nodes)
	buf = make([]int, nodes)
	delay = make([]int64, nodes)
	for id := 0; id < nodes; id++ {
		vcs[id] = c.Router.VCs
		buf[id] = c.Router.BufPerVC
		delay[id] = int64(c.FlitDelay)
	}
	for _, o := range c.Overrides {
		if o.VCs != 0 {
			vcs[o.Node] = o.VCs
		}
		if o.BufPerVC != 0 {
			buf[o.Node] = o.BufPerVC
		}
		if o.LinkDelay != 0 {
			delay[o.Node] = int64(o.LinkDelay)
		}
	}
	return vcs, buf, delay
}
