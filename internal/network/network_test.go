package network

import (
	"testing"

	"routersim/internal/flit"
	"routersim/internal/router"
	"routersim/internal/topology"
)

func testConfig(kind router.Kind, rate float64) Config {
	return Config{
		K:             8,
		Router:        router.DefaultConfig(kind),
		InjectionRate: rate,
		Seed:          3,
	}
}

// simCycles scales a simulation length down under -short so the
// race-enabled CI loop stays fast; every assertion in this package holds
// at a third of the full run length (the thresholds have ≥3× margin).
func simCycles(full int64) int64 {
	if testing.Short() {
		return full / 3
	}
	return full
}

// TestFlitOrderAndConservation runs every router kind under load and
// checks, at every ejection, that flits of each packet arrive strictly
// in sequence, and that completed packets account for every flit.
func TestFlitOrderAndConservation(t *testing.T) {
	kinds := []router.Kind{
		router.Wormhole, router.VirtualChannel, router.SpeculativeVC,
		router.SingleCycleWormhole, router.SingleCycleVC,
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			net, err := New(testConfig(kind, 0.4*0.5/5))
			if err != nil {
				t.Fatal(err)
			}
			nextSeq := map[int64]int{}
			created, done, flits := 0, 0, 0
			net.OnPacketCreated = func(p *flit.Packet, now int64) { created++ }
			net.OnFlitEjected = func(f flit.Flit, now int64) {
				flits++
				if f.Seq != nextSeq[f.Pkt.ID] {
					t.Fatalf("packet %d: flit seq %d ejected, want %d", f.Pkt.ID, f.Seq, nextSeq[f.Pkt.ID])
				}
				nextSeq[f.Pkt.ID]++
			}
			net.OnPacketDone = func(p *flit.Packet, now int64) {
				done++
				if nextSeq[p.ID] != p.Size {
					t.Fatalf("packet %d done with %d/%d flits", p.ID, nextSeq[p.ID], p.Size)
				}
				if p.Latency() <= 0 {
					t.Fatalf("packet %d nonpositive latency %d", p.ID, p.Latency())
				}
			}
			for now := int64(0); now < simCycles(15000); now++ {
				net.Step(now)
			}
			if created == 0 || done == 0 {
				t.Fatalf("no traffic: created=%d done=%d", created, done)
			}
			// Below saturation nearly everything injected must drain.
			if float64(done) < 0.9*float64(created) {
				t.Errorf("only %d of %d packets completed at 40%% load", done, created)
			}
			if flits < done*5 {
				t.Errorf("flit count %d inconsistent with %d done packets", flits, done)
			}
		})
	}
}

// TestSourceQueueGrowsPastSaturation: offered load beyond capacity must
// back up in the source queues, not be dropped.
func TestSourceQueueGrowsPastSaturation(t *testing.T) {
	net, err := New(testConfig(router.Wormhole, 1.2*0.5/5))
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < simCycles(20000); now++ {
		net.Step(now)
	}
	total := 0
	for id := 0; id < net.Nodes(); id++ {
		total += net.SourceQueueLen(id)
	}
	if total < 1000 {
		t.Errorf("source queues hold %d packets at 120%% load; expected heavy backlog", total)
	}
}

// TestDeterministicReplay: two networks with the same seed evolve
// identically.
func TestDeterministicReplay(t *testing.T) {
	mk := func() (int, int64) {
		net, err := New(testConfig(router.SpeculativeVC, 0.5*0.5/5))
		if err != nil {
			t.Fatal(err)
		}
		done := 0
		var lastEject int64
		net.OnPacketDone = func(p *flit.Packet, now int64) { done++; lastEject = now }
		for now := int64(0); now < simCycles(9000); now++ {
			net.Step(now)
		}
		return done, lastEject
	}
	d1, e1 := mk()
	d2, e2 := mk()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", d1, e1, d2, e2)
	}
}

// TestBernoulliInjection exercises the alternative injection process.
func TestBernoulliInjection(t *testing.T) {
	cfg := testConfig(router.SpeculativeVC, 0.3*0.5/5)
	cfg.Bernoulli = true
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	created := 0
	net.OnPacketCreated = func(p *flit.Packet, now int64) { created++ }
	cycles := simCycles(12000)
	for now := int64(0); now < cycles; now++ {
		net.Step(now)
	}
	want := 0.3 * 0.5 / 5 * float64(cycles) * 64
	if float64(created) < 0.9*want || float64(created) > 1.1*want {
		t.Errorf("bernoulli created %d packets, want ≈%.0f", created, want)
	}
}

// TestNormalizeDefaultsAndErrors covers configuration validation.
func TestNormalizeDefaultsAndErrors(t *testing.T) {
	var c Config
	c.Router = router.DefaultConfig(router.Wormhole)
	if err := c.Normalize(); err != nil {
		t.Fatalf("defaults should validate: %v", err)
	}
	if c.K != 8 || c.PacketSize != 5 || c.FlitDelay != 1 || c.CreditDelay != 1 || c.Pattern == nil {
		t.Errorf("defaults not filled: %+v", c)
	}
	// The port count is derived from the topology, whatever was stated.
	if c.Router.Ports != 5 {
		t.Errorf("mesh ports not derived: %d", c.Router.Ports)
	}

	bad := []Config{
		{K: 1, Router: router.DefaultConfig(router.Wormhole)},
		{K: 8, PacketSize: -1, Router: router.DefaultConfig(router.Wormhole)},
		{K: 8, FlitDelay: -1, Router: router.DefaultConfig(router.Wormhole)},
		{K: 8, InjectionRate: -0.1, Router: router.DefaultConfig(router.Wormhole)},
		{K: 200, Router: router.DefaultConfig(router.Wormhole)}, // over topology.MaxNodes: an error, not a panic
		{K: 8, Router: router.Config{Kind: router.Wormhole, VCs: 0, BufPerVC: 4}},
	}
	for i, b := range bad {
		if err := b.Normalize(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, b)
		}
	}
}

// TestCreditConservation: for every link, credits held upstream plus
// flits buffered downstream plus in-flight traffic must equal the buffer
// capacity at all times.
func TestCreditConservation(t *testing.T) {
	// Conservation is enforced internally by panics (negative credits,
	// FIFO overflow); this test additionally checks the steady-state
	// books balance after a drain: with injection stopped and the
	// network idle, every credit counter must be back at capacity.
	cfg := testConfig(router.SpeculativeVC, 0.6*0.5/5)
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < simCycles(10000); now++ {
		net.Step(now)
	}
	// Stop injection by replacing the sources' rate: easiest is to keep
	// stepping without new packets — drain by running the existing
	// injectors dry is not possible, so instead verify invariants via a
	// fresh zero-rate network fed only by warm-up state: run a separate
	// near-zero-load network to idle and check counters.
	idle, err := New(testConfig(router.SpeculativeVC, 0))
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 100; now++ {
		idle.Step(now)
	}
	k := topology.NewMesh(8)
	for id := 0; id < idle.Nodes(); id++ {
		r := idle.Router(id)
		for port := topology.PortEast; port <= topology.PortSouth; port++ {
			if _, _, ok := k.Neighbor(id, port); !ok {
				continue
			}
			for vc := 0; vc < cfg.Router.VCs; vc++ {
				if got := r.Credits(port, vc); got != cfg.Router.BufPerVC {
					t.Fatalf("idle network: router %d out %d vc %d credits %d, want %d",
						id, port, vc, got, cfg.Router.BufPerVC)
				}
			}
		}
	}
}
