package network

import (
	"testing"

	"routersim/internal/flit"
	"routersim/internal/rng"
	"routersim/internal/router"
	"routersim/internal/topology"
	"routersim/internal/traffic"
)

// TestRandomConfigurationsRunClean drives randomly drawn configurations
// (radix, router kind, VC count, buffer depth, delays, pattern, load)
// for thousands of cycles each. The routers enforce their own safety
// invariants with panics (FIFO overflow, negative credits, misrouted
// ejection); surviving the run is the assertion. This is the simulator's
// failure-injection net: any credit-accounting or state-machine bug
// trips it.
func TestRandomConfigurationsRunClean(t *testing.T) {
	r := rng.New(99)
	kinds := []router.Kind{
		router.Wormhole, router.VirtualChannel, router.SpeculativeVC,
		router.SingleCycleWormhole, router.SingleCycleVC,
	}
	iters := 30
	if testing.Short() {
		iters = 8
	}
	for i := 0; i < iters; i++ {
		kind := kinds[r.Intn(len(kinds))]
		rc := router.DefaultConfig(kind)
		if kind.UsesVCs() {
			rc.VCs = 1 + r.Intn(4)
			rc.BufPerVC = 1 + r.Intn(8)
		} else {
			rc.BufPerVC = 1 + r.Intn(16)
		}
		k := 2 + r.Intn(4)
		var topo topology.Topology = topology.NewMesh(k)
		if kind.UsesVCs() && rc.VCs%2 == 0 && rc.VCs >= 2 && r.Intn(3) == 0 {
			// Wraparound topologies (dateline VC classes) and the
			// hypercube join the draw once the VC count permits them.
			switch r.Intn(3) {
			case 0:
				topo = topology.NewTorus(k)
			case 1:
				ring, err := topology.NewRing(3 + r.Intn(10))
				if err != nil {
					t.Fatal(err)
				}
				topo = ring
			case 2:
				hc, err := topology.NewHypercube(1 << (2 + r.Intn(3)))
				if err != nil {
					t.Fatal(err)
				}
				topo = hc
			}
		} else if r.Intn(4) == 0 {
			cube, err := topology.NewCube(k, 3, false)
			if err != nil {
				t.Fatal(err)
			}
			topo = cube
		}
		patterns := []traffic.Pattern{
			traffic.Uniform{},
			traffic.BitComplement{},
			traffic.Hotspot{Node: r.Intn(topo.Nodes()), Frac: 0.25},
		}
		cfg := Config{
			K:             k,
			Topo:          topo,
			Router:        rc,
			PacketSize:    1 + r.Intn(8),
			InjectionRate: r.Float64() * 0.15,
			Pattern:       patterns[r.Intn(len(patterns))],
			FlitDelay:     1 + r.Intn(2),
			CreditDelay:   1 + r.Intn(4),
			Bernoulli:     r.Intn(2) == 0,
			Seed:          r.Uint64(),
		}
		net, err := New(cfg)
		if err != nil {
			t.Fatalf("iter %d: config rejected: %v (%+v)", i, err, cfg)
		}
		done := 0
		nextSeq := map[int64]int{}
		net.OnFlitEjected = func(f flit.Flit, now int64) {
			if f.Seq != nextSeq[f.Pkt.ID] {
				t.Fatalf("iter %d: packet %d flit disorder", i, f.Pkt.ID)
			}
			nextSeq[f.Pkt.ID]++
		}
		net.OnPacketDone = func(p *flit.Packet, now int64) { done++ }
		cycles := int64(3000)
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("iter %d: invariant panic with %v k=%d vcs=%d buf=%d topo=%s pkt=%d: %v",
						i, kind, k, rc.VCs, rc.BufPerVC, topo.Name(), cfg.PacketSize, rec)
				}
			}()
			for now := int64(0); now < cycles; now++ {
				net.Step(now)
			}
		}()
		if cfg.InjectionRate > 0.01 && done == 0 {
			t.Errorf("iter %d: no packets completed (%v on %s at rate %.3f)",
				i, kind, topo.Name(), cfg.InjectionRate)
		}
	}
}
