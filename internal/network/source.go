package network

import (
	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/rng"
	"routersim/internal/router"
	"routersim/internal/traffic"
)

// source is a constant-rate traffic source with an infinite source
// queue, feeding the router's local input port over an injection channel
// with credit-based flow control. It acts as the upstream end of that
// channel: it tracks credits and VC busy state for the router's local
// input VCs, assigns queued packets to free VCs, and injects at most one
// flit per cycle (the injection channel has one flit of bandwidth, like
// every other physical channel).
type source struct {
	net  *Network
	node int
	inj  traffic.Injector
	rng  *rng.RNG
	// sh is the owning shard on sharded networks (nil otherwise):
	// packets then come from the shard-local pool and creation events
	// are buffered for the serial barrier replay, which assigns the
	// global packet ID (see shard.go).
	sh *shard

	// adv, when non-nil, lets the injector consume its idle gap in one
	// batch (ConstantRate, MMPP, Batch, trace replay). The active-set
	// scheduler uses it to park an idle source until precisely its next
	// generation cycle; an injector without it (Bernoulli draws its RNG
	// every cycle) keeps the source on the active list permanently, so
	// its random stream — and every figure metric derived from it — is
	// untouched.
	adv interface{ AdvanceToInjection() int64 }
	// cnt, when non-nil, reports how many packets the injection reached
	// by AdvanceToInjection carries (batch releases, trace cycles with
	// several packets). Absent, a pre-consumed injection is one packet.
	cnt interface{ PendingCount() int }
	// draw, when non-nil, dictates each generated packet's destination
	// and size (trace replay) instead of the pattern + size draws.
	draw interface{ NextPacket() (dst, size int) }
	// tickedTo is the last cycle whose injector Tick has been applied;
	// while parked it runs ahead of the simulation clock (the gap's
	// ticks were consumed at park time, replaying the full-scan
	// engine's exact accumulator sequence), and pendingAt holds the
	// cycle of the pre-consumed injection (-1 when none) with pendingN
	// packets due there.
	tickedTo  int64
	pendingAt int64
	pendingN  int

	flitOut  *link.Wire[flit.Flit]
	creditIn *link.Wire[router.Credit]
	credits  []int
	busy     []bool // VC assigned to an in-flight packet stream
	inFlight int    // number of busy VCs (skip the injection scan at 0)
	rrNext   int    // round-robin pointer over VCs for injection bandwidth
	streams  []stream

	// queue is an unbounded power-of-two ring of waiting packets.
	queue []*flit.Packet
	qhead int
	qlen  int
}

// stream is an in-progress packet being streamed onto one VC. The flit
// buffer is reused across packets, so steady-state packetization does
// not allocate.
type stream struct {
	flits []flit.Flit
	next  int
}

func newSource(net *Network, node int, inj traffic.Injector, r *rng.RNG,
	flitOut *link.Wire[flit.Flit], creditIn *link.Wire[router.Credit], vcs, bufPerVC int) *source {

	s := &source{
		net: net, node: node, inj: inj, rng: r,
		tickedTo: -1, pendingAt: -1,
		flitOut: flitOut, creditIn: creditIn,
		credits: make([]int, vcs),
		busy:    make([]bool, vcs),
		streams: make([]stream, vcs),
		queue:   make([]*flit.Packet, 8),
	}
	s.adv, _ = inj.(interface{ AdvanceToInjection() int64 })
	s.cnt, _ = inj.(interface{ PendingCount() int })
	s.draw, _ = inj.(interface{ NextPacket() (dst, size int) })
	for i := range s.credits {
		s.credits[i] = bufPerVC
	}
	return s
}

func (s *source) queueLen() int { return s.qlen }

// pushQueue appends a packet to the source queue, doubling the ring when
// full (source queues are unbounded, per the paper's infinite-queue
// model).
func (s *source) pushQueue(p *flit.Packet) {
	if s.qlen == len(s.queue) {
		grown := make([]*flit.Packet, 2*len(s.queue))
		mask := len(s.queue) - 1
		for i := 0; i < s.qlen; i++ {
			grown[i] = s.queue[(s.qhead+i)&mask]
		}
		s.queue = grown
		s.qhead = 0
	}
	s.queue[(s.qhead+s.qlen)&(len(s.queue)-1)] = p
	s.qlen++
}

// popQueue removes and returns the head-of-queue packet; the queue must
// be non-empty.
func (s *source) popQueue() *flit.Packet {
	p := s.queue[s.qhead]
	s.queue[s.qhead] = nil
	s.qhead = (s.qhead + 1) & (len(s.queue) - 1)
	s.qlen--
	return p
}

// step advances the source one cycle: receive returned credits, apply
// injector ticks (catching up, in one batch, any cycles skipped while
// the source was parked by the active-set scheduler), bind queued
// packets to free VCs, and inject one flit.
func (s *source) step(now int64) {
	for c, ok := s.creditIn.Pop(now); ok; c, ok = s.creditIn.Pop(now) {
		s.credits[c.VC]++
	}

	if s.pendingAt >= 0 {
		// Parked: the idle gap's ticks were consumed at park time and
		// the scheduler wakes the source on exactly the injection
		// cycle; any other cycle means the scheduler lost the wake.
		if s.pendingAt != now {
			panic("network: parked source stepped off its injection cycle")
		}
		s.pendingAt = -1
		for i := s.pendingN; i > 0; i-- {
			s.generate(now)
		}
		s.pendingN = 0
	} else {
		for t := s.tickedTo + 1; t <= now; t++ {
			for i := s.inj.Tick(); i > 0; i-- {
				if t != now {
					panic("network: source tick applied to a past cycle")
				}
				s.generate(now)
			}
		}
		s.tickedTo = now
	}

	// Bind head-of-queue packets to free virtual channels. A packet
	// holds its VC until its tail is injected (the source performs the
	// VC allocation of the injection channel). The scan exits as soon as
	// the queue drains, and is skipped entirely when it is empty.
	for vc := 0; vc < len(s.busy) && s.qlen > 0; vc++ {
		if s.busy[vc] {
			continue
		}
		p := s.popQueue()
		s.busy[vc] = true
		s.inFlight++
		st := &s.streams[vc]
		st.flits = flit.AppendPacketFlits(st.flits[:0], p)
		st.next = 0
	}

	// Inject at most one flit this cycle, round-robin over VCs with a
	// pending flit and a credit. Nothing in flight means nothing to
	// scan.
	if s.inFlight == 0 {
		return
	}
	v := len(s.busy)
	for k := 0; k < v; k++ {
		vc := (s.rrNext + k) % v
		if !s.busy[vc] || s.credits[vc] <= 0 {
			continue
		}
		st := &s.streams[vc]
		f := st.flits[st.next]
		f.VC = int8(vc)
		s.flitOut.Push(now, f)
		s.net.wakeRouter(int32(s.node))
		s.credits[vc]--
		// Flit-conservation census (audit.go): count at the push, the
		// moment the flit enters the network's wires. Sharded sources
		// count on their own shard to keep the increment race-free.
		if sh := s.sh; sh != nil {
			sh.injected++
		} else {
			s.net.auditInjected++
		}
		st.next++
		if st.next == len(st.flits) {
			s.busy[vc] = false
			s.inFlight--
			st.next = 0
		}
		s.rrNext = (vc + 1) % v
		return
	}
}

// park consumes the injector's idle gap in one batch and returns the
// wake cycle of the next injection, or -1 if the source never injects
// again. It must only be called on an idle source (empty queue, nothing
// in flight) whose ticks are applied through the current cycle; the
// injector's tick sequence is identical to per-cycle stepping, only
// executed early.
func (s *source) park() int64 {
	k := s.adv.AdvanceToInjection()
	if k < 1 {
		return -1
	}
	s.tickedTo += k
	s.pendingAt = s.tickedTo
	s.pendingN = 1
	if s.cnt != nil {
		s.pendingN = s.cnt.PendingCount()
	}
	return s.pendingAt
}

// generate creates one packet (from the network's pool) and appends it
// to the source queue. Trace replay dictates the destination and size;
// live workloads draw the destination from the pattern and, when a size
// distribution is configured, the size from the source's RNG stream.
func (s *source) generate(now int64) {
	var dst, size int
	if s.draw != nil {
		dst, size = s.draw.NextPacket()
	} else {
		dst = s.net.cfg.Pattern.Dest(s.node, s.net.Nodes(), s.rng)
		if s.net.cfg.Sizes != nil {
			size = s.net.cfg.Sizes.Sample(s.rng)
		} else {
			size = s.net.cfg.PacketSize
		}
	}
	if sh := s.sh; sh != nil {
		p := sh.allocPacket()
		p.Src = s.node
		p.Dst = dst
		p.Size = size
		p.CreatedAt = now
		sh.creates = append(sh.creates, createEvent{t: now, p: p})
		s.pushQueue(p)
		return
	}
	p := s.net.allocPacket()
	p.ID = s.net.nextPacketID
	p.Src = s.node
	p.Dst = dst
	p.Size = size
	p.CreatedAt = now
	s.net.nextPacketID++
	if cb := s.net.OnPacketCreated; cb != nil {
		cb(p, now)
	}
	s.pushQueue(p)
}
