package network

import (
	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/rng"
	"routersim/internal/router"
	"routersim/internal/traffic"
)

// source is a constant-rate traffic source with an infinite source
// queue, feeding the router's local input port over an injection channel
// with credit-based flow control. It acts as the upstream end of that
// channel: it tracks credits and VC busy state for the router's local
// input VCs, assigns queued packets to free VCs, and injects at most one
// flit per cycle (the injection channel has one flit of bandwidth, like
// every other physical channel).
type source struct {
	net  *Network
	node int
	inj  traffic.Injector
	rng  *rng.RNG

	flitOut   *link.Wire[flit.Flit]
	creditIn  *link.Wire[router.Credit]
	credits   []int
	busy      []bool // VC assigned to an in-flight packet stream
	streams   []stream
	rrNext    int // round-robin pointer over VCs for injection bandwidth
	queue     []*flit.Packet
	queueHead int
}

// stream is an in-progress packet being streamed onto one VC.
type stream struct {
	flits []flit.Flit
	next  int
}

func newSource(net *Network, node int, inj traffic.Injector, r *rng.RNG,
	flitOut *link.Wire[flit.Flit], creditIn *link.Wire[router.Credit]) *source {

	v := net.cfg.Router.VCs
	s := &source{
		net: net, node: node, inj: inj, rng: r,
		flitOut: flitOut, creditIn: creditIn,
		credits: make([]int, v),
		busy:    make([]bool, v),
		streams: make([]stream, v),
	}
	for i := range s.credits {
		s.credits[i] = net.cfg.Router.BufPerVC
	}
	return s
}

func (s *source) queueLen() int { return len(s.queue) - s.queueHead }

// step advances the source one cycle: receive returned credits, generate
// new packets, bind queued packets to free VCs, and inject one flit.
func (s *source) step(now int64) {
	s.creditIn.Deliver(now, func(c router.Credit) { s.credits[c.VC]++ })

	for i := s.inj.Tick(); i > 0; i-- {
		s.generate(now)
	}

	// Bind head-of-queue packets to free virtual channels. A packet
	// holds its VC until its tail is injected (the source performs the
	// VC allocation of the injection channel).
	for vc := range s.busy {
		if s.busy[vc] || s.queueLen() == 0 {
			continue
		}
		p := s.queue[s.queueHead]
		s.queue[s.queueHead] = nil
		s.queueHead++
		if s.queueHead > 1024 && s.queueHead*2 > len(s.queue) {
			s.queue = append(s.queue[:0], s.queue[s.queueHead:]...)
			s.queueHead = 0
		}
		s.busy[vc] = true
		s.streams[vc] = stream{flits: flit.NewPacketFlits(p)}
	}

	// Inject at most one flit this cycle, round-robin over VCs with a
	// pending flit and a credit.
	v := len(s.busy)
	for k := 0; k < v; k++ {
		vc := (s.rrNext + k) % v
		if !s.busy[vc] || s.credits[vc] <= 0 {
			continue
		}
		st := &s.streams[vc]
		f := st.flits[st.next]
		f.VC = int8(vc)
		s.flitOut.Push(now, f)
		s.credits[vc]--
		st.next++
		if st.next == len(st.flits) {
			s.busy[vc] = false
			s.streams[vc] = stream{}
		}
		s.rrNext = (vc + 1) % v
		return
	}
}

// generate creates one packet and appends it to the source queue.
func (s *source) generate(now int64) {
	dst := s.net.cfg.Pattern.Dest(s.node, s.net.Nodes(), s.rng)
	p := &flit.Packet{
		ID:        s.net.nextPacketID,
		Src:       s.node,
		Dst:       dst,
		Size:      s.net.cfg.PacketSize,
		CreatedAt: now,
	}
	s.net.nextPacketID++
	if cb := s.net.OnPacketCreated; cb != nil {
		cb(p, now)
	}
	s.queue = append(s.queue, p)
}
