package network

import (
	"fmt"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// compareTraces fails the test at the first diverging event.
func compareTraces(t *testing.T, label string, ref, got []string) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d events vs %d reference", label, len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("%s: event %d diverged: %q vs reference %q", label, i, got[i], ref[i])
		}
	}
}

// TestActiveSetMatchesFullScan is the scheduler's identity gate: across
// every topology family and the load regimes the paper's protocol
// visits (near zero-load, mid-load, at the knee), the active-set engine
// — serial and parallel — must produce the full-scan reference engine's
// exact event sequence: every packet creation, flit ejection, and
// completion at the same cycle in the same order. Run under -race in
// CI, which also certifies the snapshot-phase barriers.
func TestActiveSetMatchesFullScan(t *testing.T) {
	specs := []string{"mesh", "torus:k=3,n=3", "ring:12", "hypercube:16"}
	loads := []float64{0.02, 0.3, 0.55}
	cycles := simCycles(5000)
	for _, spec := range specs {
		for _, load := range loads {
			spec, load := spec, load
			t.Run(fmt.Sprintf("%s/load%v", spec, load), func(t *testing.T) {
				t.Parallel()
				topo, err := topology.New(spec, 4)
				if err != nil {
					t.Fatal(err)
				}
				cfg := Config{
					Topo:          topo,
					Router:        router.DefaultConfig(router.SpeculativeVC),
					Seed:          9,
					InjectionRate: load * topo.UniformCapacity() / 5,
				}
				fullScan := cfg
				fullScan.FullScan = true
				ref := eventTrace(t, fullScan, cycles)
				if len(ref) == 0 {
					t.Fatal("no traffic in full-scan reference run")
				}
				compareTraces(t, "active-set serial", ref, eventTrace(t, cfg, cycles))
				for _, workers := range []int{2, 5} {
					par := cfg
					par.StepWorkers = workers
					compareTraces(t, fmt.Sprintf("active-set %d workers", workers),
						ref, eventTrace(t, par, cycles))
				}
				parScan := fullScan
				parScan.StepWorkers = 2
				compareTraces(t, "full-scan 2 workers", ref, eventTrace(t, parScan, cycles))
			})
		}
	}
}

// TestActiveSetMatchesFullScanWormhole covers the wormhole and
// single-cycle router kinds (the VC kinds are covered cross-topology
// above): their port-holding state machines must survive being skipped
// while idle.
func TestActiveSetMatchesFullScanWormhole(t *testing.T) {
	kinds := []router.Kind{router.Wormhole, router.SingleCycleWormhole, router.SingleCycleVC}
	cycles := simCycles(5000)
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{K: 4, Router: router.DefaultConfig(kind), Seed: 3, InjectionRate: 0.3 * 1.0 / 5}
			fullScan := cfg
			fullScan.FullScan = true
			ref := eventTrace(t, fullScan, cycles)
			if len(ref) == 0 {
				t.Fatal("no traffic in full-scan reference run")
			}
			compareTraces(t, "active-set serial", ref, eventTrace(t, cfg, cycles))
		})
	}
}

// TestActiveSetMultiFlitDelay exercises the wake wheel with flit and
// credit propagation delays above one cycle (arrivals wake routers
// several cycles after the push).
func TestActiveSetMultiFlitDelay(t *testing.T) {
	cycles := simCycles(5000)
	cfg := Config{
		K:             4,
		Router:        router.DefaultConfig(router.SpeculativeVC),
		Seed:          21,
		InjectionRate: 0.3 * 1.0 / 5,
		FlitDelay:     3,
		CreditDelay:   4,
	}
	fullScan := cfg
	fullScan.FullScan = true
	ref := eventTrace(t, fullScan, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in full-scan reference run")
	}
	compareTraces(t, "active-set serial", ref, eventTrace(t, cfg, cycles))
	par := cfg
	par.StepWorkers = 3
	compareTraces(t, "active-set 3 workers", ref, eventTrace(t, par, cycles))
}

// TestActiveSetBernoulli pins the Bernoulli guarantee: sources that
// draw their RNG every cycle never park, so the random stream — and the
// whole event trace — is untouched by the scheduler.
func TestActiveSetBernoulli(t *testing.T) {
	cycles := simCycles(5000)
	cfg := Config{K: 4, Router: router.DefaultConfig(router.SpeculativeVC),
		Seed: 17, InjectionRate: 0.2 * 1.0 / 5, Bernoulli: true}
	fullScan := cfg
	fullScan.FullScan = true
	ref := eventTrace(t, fullScan, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in full-scan reference run")
	}
	compareTraces(t, "active-set serial", ref, eventTrace(t, cfg, cycles))

	// Bernoulli sources are permanently active, so the network never
	// reports a quiescent span.
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for now := int64(0); now < 200; now++ {
		net.Step(now)
		if next := net.NextDue(now); next != now+1 {
			t.Fatalf("Bernoulli network reported quiescence at cycle %d (next due %d)", now, next)
		}
	}
}

// TestFastForwardTraceIdentity drives a low-rate network by jumping
// straight between NextDue cycles and checks (a) the event trace is
// identical to stepping every cycle, (b) the jumps actually skip a
// large majority of the cycles, and (c) every claimed quiescent span is
// real — no router holds a deliverable flit (link.Wire due times) when
// the network reports quiescence.
func TestFastForwardTraceIdentity(t *testing.T) {
	// ~1 packet per source per 10,000 cycles: the network goes fully
	// quiescent between injection bursts.
	cfg := Config{K: 4, Router: router.DefaultConfig(router.SpeculativeVC),
		Seed: 13, InjectionRate: 0.0001}
	const cycles = 40000

	fullScan := cfg
	fullScan.FullScan = true
	ref := eventTrace(t, fullScan, cycles)
	if len(ref) == 0 {
		t.Fatal("no traffic in full-scan reference run")
	}

	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var trace []string
	attach(net, &trace)
	stepped := int64(0)
	for now := int64(0); now < cycles; {
		net.Step(now)
		stepped++
		next := net.NextDue(now)
		if next > now+1 {
			// Claimed quiescence: no router may hold a deliverable flit
			// before the claimed cycle.
			for id := 0; id < net.Nodes(); id++ {
				if due := net.Router(id).NextArrival(); due != link.NeverDue {
					t.Fatalf("cycle %d: claimed quiescent until %d but router %d has a flit due at %d",
						now, next, id, due)
				}
			}
		}
		if next > cycles {
			break
		}
		now = next
	}
	compareTraces(t, "fast-forward", ref, trace)
	if stepped > cycles/10 {
		t.Fatalf("fast-forward stepped %d of %d cycles; expected to skip most of them", stepped, cycles)
	}
}

// attach wires the same trace callbacks eventTrace uses onto an
// existing network.
func attach(net *Network, trace *[]string) {
	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		*trace = append(*trace, fmt.Sprintf("c %d %d %d %d", now, p.ID, p.Src, p.Dst))
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		*trace = append(*trace, fmt.Sprintf("e %d %d %d", now, f.Pkt.ID, f.Seq))
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		*trace = append(*trace, fmt.Sprintf("d %d %d %d", now, p.ID, p.Latency()))
	}
}
