package router

import (
	"math/bits"

	"routersim/internal/allocator"
)

// This file implements the non-speculative virtual-channel router's
// per-cycle behaviour: a 4-stage pipeline of routing, VC allocation,
// switch allocation (cycle-by-cycle, per flit), and switch traversal.

// allocVC performs the routing, VC-allocation, and switch-allocation
// stages of the 4-stage VC router. Stage order within the cycle is
// routing → VC allocation → switch allocation; the readyAt guards
// ensure a head flit takes one stage per cycle.
func (r *Router) allocVC(now int64) {
	r.routeHeads(now)
	r.allocateVCs(now)
	r.allocateSwitch(now)
}

// allocateVCs runs one cycle of the separable VC allocator over every
// input VC waiting for an output VC. Winners become active and may
// request the switch from the next cycle. Only occupied VCs are visited.
func (r *Router) allocateVCs(now int64) {
	r.vaReqs = r.vaReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		for m := r.in[in].occ; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			vc := &r.in[in].vcs[c]
			if vc.state != vcWaitVC || vc.readyAt > now {
				continue
			}
			r.repick(vc)
			r.vaReqs = append(r.vaReqs, allocator.VCRequest{
				In: in, VC: c, Out: vc.route, Candidates: r.vaCandidates(vc),
			})
		}
	}
	if len(r.vaReqs) == 0 {
		return
	}
	for _, g := range r.vcAlloc.Allocate(r.vaReqs) {
		vc := &r.in[g.In].vcs[g.VC]
		vc.state = vcActive
		vc.outVC = int8(g.OutVC)
		vc.readyAt = now + 1
		r.out[g.Out].vcBusy |= 1 << g.OutVC
	}
}

// allocateSwitch runs one cycle of the separable switch allocator over
// every active input VC with an eligible flit and a downstream credit.
func (r *Router) allocateSwitch(now int64) {
	r.swReqs = r.swReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		for m := r.in[in].occ; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			vc := &r.in[in].vcs[c]
			if !r.switchEligible(vc, now) {
				continue
			}
			r.swReqs = append(r.swReqs, allocator.SwitchRequest{In: in, VC: c, Out: vc.route})
		}
	}
	if len(r.swReqs) == 0 {
		return
	}
	for _, g := range r.swAlloc.Allocate(r.swReqs) {
		r.grantSwitch(g.In, g.VC, now)
	}
}

// switchEligible reports whether an input VC may request the switch this
// cycle: it holds an output VC, has a flit buffered before this cycle,
// and a downstream buffer credit exists (ejection ports have infinite
// buffering).
func (r *Router) switchEligible(vc *inputVC, now int64) bool {
	if vc.state != vcActive || vc.readyAt > now {
		return false
	}
	if vc.hoqEligible(now) == nil {
		return false
	}
	op := &r.out[vc.route]
	return op.ejection || op.credits[vc.outVC] > 0
}
