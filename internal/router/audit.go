package router

import (
	"routersim/internal/flit"
)

// Audit accessors: read-only views of the router's wires, counters, and
// latched grants for the network's invariant auditor (network/audit.go).
// They are called only between cycles (after a Step, or at a sharded
// barrier), never from the hot path.

// OutVCMask returns the allocatable-VC mask of output port out — the
// set of downstream VCs that actually carry credits (heterogeneous
// downstream routers may expose fewer VCs than this router has).
func (r *Router) OutVCMask(out int) uint64 { return r.out[out].vcMask }

// HasOutputWire reports whether output port out drives a flit wire
// (false for the ejection port).
func (r *Router) HasOutputWire(out int) bool { return r.out[out].flitOut != nil }

// ScanInputWire calls fn for every flit still in flight on input port
// port's wire (due or not), in FIFO order. A nil (unconnected) wire is
// an empty scan.
func (r *Router) ScanInputWire(port int, fn func(f flit.Flit)) {
	if w := r.in[port].flitIn; w != nil {
		w.Scan(fn)
	}
}

// ScanCreditWire calls fn for every credit still in flight toward
// output port out (pushed by the downstream router, not yet consumed by
// this one — including credits the credit-processing pipeline is
// holding back).
func (r *Router) ScanCreditWire(out int, fn func(c Credit)) {
	if w := r.out[out].creditIn; w != nil {
		w.Scan(fn)
	}
}

// CommittedCredits counts the credits consumed by this cycle's latched
// switch grants toward (out, vc): grantSwitch decrements the credit
// counter at grant time while the flit traverses the crossbar next
// cycle, so between cycles those credits are in neither the counter nor
// any wire or buffer. The auditor adds them back when closing the
// credit loop.
func (r *Router) CommittedCredits(out, vc int) int {
	n := 0
	for _, g := range r.next {
		gvc := &r.in[g.in].vcs[g.vc]
		if gvc.route != out || int(gvc.outVC) != vc {
			continue
		}
		if r.out[gvc.route].ejection {
			continue // ejection consumes no credit
		}
		n++
	}
	return n
}

// BufferedTotal returns the router's total input-FIFO occupancy across
// all ports and VCs.
func (r *Router) BufferedTotal() int {
	total := 0
	for p := range r.in {
		for c := range r.in[p].vcs {
			total += r.in[p].vcs[c].fifo.Len()
		}
	}
	return total
}

// InputWireTotal returns the total number of flits in flight on the
// router's input wires.
func (r *Router) InputWireTotal() int {
	total := 0
	for p := range r.in {
		if w := r.in[p].flitIn; w != nil {
			total += w.Len()
		}
	}
	return total
}
