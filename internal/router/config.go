// Package router implements the cycle-accurate router microarchitectures
// of the paper's evaluation (Section 5): the 3-stage wormhole router, the
// 4-stage virtual-channel router, the 3-stage speculative virtual-channel
// router, and the idealized single-cycle ("unit latency") routers used as
// the comparison baseline in Figure 17.
//
// Pipeline semantics are registered: a flit advances at most one stage
// per cycle. Credits are consumed at switch allocation, returned when a
// flit is read out of the downstream input buffer, and pass through a
// credit-processing pipeline of depth max(0, stages−2) on receipt, which
// reproduces the paper's buffer-turnaround times of 4 (wormhole),
// 5 (virtual-channel), 4 (speculative) and 2 (single-cycle) cycles.
package router

import (
	"fmt"

	"routersim/internal/arbiter"
)

// Kind selects the router microarchitecture.
type Kind int

const (
	// Wormhole is the canonical 3-stage wormhole router (Figure 2):
	// routing, switch arbitration (port held per packet), crossbar.
	Wormhole Kind = iota
	// VirtualChannel is the canonical 4-stage VC router (Figure 3):
	// routing, VC allocation, switch allocation, crossbar.
	VirtualChannel
	// SpeculativeVC is the paper's 3-stage speculative VC router:
	// switch allocation is performed speculatively in parallel with VC
	// allocation (Figure 4c).
	SpeculativeVC
	// SingleCycleWormhole is a wormhole router with unit latency: all
	// functions complete in one cycle (the commonly assumed model the
	// paper argues against, Section 5.2).
	SingleCycleWormhole
	// SingleCycleVC is a virtual-channel router with unit latency.
	SingleCycleVC
)

func (k Kind) String() string {
	switch k {
	case Wormhole:
		return "wormhole"
	case VirtualChannel:
		return "vc"
	case SpeculativeVC:
		return "spec-vc"
	case SingleCycleWormhole:
		return "wormhole-1cycle"
	case SingleCycleVC:
		return "vc-1cycle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a router kind from its canonical name (the String
// form) or the common aliases used by the CLIs ("specvc", "vc-1cycle").
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "wormhole", "wh":
		return Wormhole, true
	case "vc", "virtual-channel":
		return VirtualChannel, true
	case "spec-vc", "specvc":
		return SpeculativeVC, true
	case "wormhole-1cycle", "wh-1cycle":
		return SingleCycleWormhole, true
	case "vc-1cycle":
		return SingleCycleVC, true
	default:
		return 0, false
	}
}

// Kinds lists every simulated router microarchitecture.
func Kinds() []Kind {
	return []Kind{Wormhole, VirtualChannel, SpeculativeVC, SingleCycleWormhole, SingleCycleVC}
}

// Stages returns the router pipeline depth in cycles.
func (k Kind) Stages() int {
	switch k {
	case Wormhole, SpeculativeVC:
		return 3
	case VirtualChannel:
		return 4
	default:
		return 1
	}
}

// UsesVCs reports whether the microarchitecture has per-VC input state.
func (k Kind) UsesVCs() bool {
	return k == VirtualChannel || k == SpeculativeVC || k == SingleCycleVC
}

// Config parameterizes one router instance.
type Config struct {
	Kind Kind
	// Ports is the number of physical channels p (5 for a 2-D mesh; the
	// network layer derives it from the topology when left 0).
	Ports int
	// VCs is the number of virtual channels per physical channel
	// (must be 1 for wormhole kinds).
	VCs int
	// BufPerVC is the number of flit buffers per virtual channel (for
	// wormhole kinds, per input port).
	BufPerVC int
	// CreditProcess is the credit-processing pipeline depth in cycles:
	// a credit received at cycle t is visible to the allocators at
	// t+CreditProcess. Use -1 for the architectural default
	// max(0, Stages-2).
	CreditProcess int
	// Arb builds the arbiters inside the allocators (nil = matrix).
	Arb arbiter.Factory
	// SpecPriority enables non-speculative-over-speculative priority in
	// the speculative switch allocator (the paper's rule). Disabling it
	// is an ablation. Ignored by non-speculative kinds.
	SpecPriority bool
}

// DefaultConfig returns the paper's configuration for a kind on a 2-D
// mesh: 5 ports, 2 VCs × 4 buffers (8 buffers per port for wormhole).
func DefaultConfig(k Kind) Config {
	cfg := Config{
		Kind:          k,
		Ports:         5,
		VCs:           2,
		BufPerVC:      4,
		CreditProcess: -1,
		SpecPriority:  true,
	}
	if !k.UsesVCs() {
		cfg.VCs = 1
		cfg.BufPerVC = 8
	}
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Ports < 2 || c.Ports > 64 {
		// The allocation stages track port occupancy in a 64-bit mask.
		return fmt.Errorf("router: %d ports; need 2..64", c.Ports)
	}
	if c.VCs < 1 || c.VCs > 64 {
		return fmt.Errorf("router: %d VCs per port; need 1..64", c.VCs)
	}
	if !c.Kind.UsesVCs() && c.VCs != 1 {
		return fmt.Errorf("router: %v router must have exactly 1 VC, got %d", c.Kind, c.VCs)
	}
	if c.BufPerVC < 1 {
		return fmt.Errorf("router: %d buffers per VC; need at least 1", c.BufPerVC)
	}
	if c.CreditProcess < -1 {
		return fmt.Errorf("router: credit process delay %d; need -1 (auto) or >= 0", c.CreditProcess)
	}
	return nil
}

// CreditProcessDelay resolves the credit-processing pipeline depth.
func (c Config) CreditProcessDelay() int {
	if c.CreditProcess >= 0 {
		return c.CreditProcess
	}
	d := c.Kind.Stages() - 2
	if d < 0 {
		d = 0
	}
	return d
}

func (c Config) arb() arbiter.Factory {
	if c.Arb == nil {
		return arbiter.MatrixFactory
	}
	return c.Arb
}
