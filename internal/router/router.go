package router

import (
	"fmt"

	"routersim/internal/allocator"
	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/queue"
	"routersim/internal/stats"
)

// Credit is the unit of buffer flow control sent upstream when a flit is
// read out of an input buffer. VC identifies which virtual channel's
// buffer was freed.
type Credit struct{ VC int8 }

// vcState is the per-input-VC channel state (invc_state in the paper;
// inpc_state for wormhole routers, which have one VC per port).
type vcState uint8

const (
	// vcIdle: no packet, or waiting for the next head flit.
	vcIdle vcState = iota
	// vcWaitVC: routed; waiting for an output VC (VC allocation state).
	// For wormhole routers this state doubles as "waiting for switch
	// arbitration" since there is no VC allocation.
	vcWaitVC
	// vcActive: resources held; flits flow through switch allocation.
	vcActive
)

// inputVC is one virtual channel of an input controller: a flit FIFO
// plus channel state.
type inputVC struct {
	fifo    *queue.FIFO
	state   vcState
	route   int   // output port chosen by the routing stage
	outVC   int8  // allocated output VC (valid in vcActive)
	readyAt int64 // earliest cycle of the next pipeline action

	// turnaround probe bookkeeping (active only when probe != nil)
	popTimes  []int64
	popCount  int64
	pushCount int64
}

// inputPort is one physical input channel.
type inputPort struct {
	vcs       []inputVC
	flitIn    *link.Wire[flit.Flit] // upstream pushes flits here (nil: unconnected edge)
	creditOut *link.Wire[Credit]    // we push freed-buffer credits here (nil: unconnected)
}

// outputPort is one physical output channel: the downstream credit
// state (credits per VC, outvc_state) plus the outgoing flit wire.
type outputPort struct {
	flitOut    *link.Wire[flit.Flit] // nil for the ejection port
	creditIn   *link.Wire[Credit]    // downstream pushes returned credits here
	creditPipe *link.Wire[Credit]    // credit-processing pipeline (nil when depth 0)
	credits    []int                 // per downstream VC
	vcBusy     []bool                // outvc_state: VC allocated to a packet
	ejection   bool                  // local port: infinite buffering, immediate ejection
}

// stGrant is a latched switch grant: the head-of-queue flit of (in, vc)
// traverses the crossbar in the cycle after the grant.
type stGrant struct{ in, vc int }

// Router is one cycle-accurate router instance.
type Router struct {
	id  int
	cfg Config

	in  []inputPort
	out []outputPort

	// route maps a destination node to this router's output port.
	route func(dst int) int
	// eject consumes flits leaving through the local output port.
	eject func(f flit.Flit, now int64)
	// classMask, when set, restricts the output VCs a packet may be
	// allocated on a given output port (dateline deadlock avoidance on
	// tori). nil permits every VC.
	classMask func(dst, port int) uint64

	// allocators (which are instantiated depends on Kind)
	whArb     *allocator.WormholeSwitch
	swAlloc   *allocator.SeparableSwitch
	vcAlloc   *allocator.VCAllocator
	specAlloc *allocator.SpeculativeSwitch

	// pending holds grants issued last cycle, executed by this cycle's
	// switch-traversal phase; next accumulates this cycle's grants.
	pending []stGrant
	next    []stGrant

	// probe, when set, records buffer-turnaround intervals on the
	// directional (non-local) input ports.
	probe *stats.Turnaround

	// scratch request buffers, reused across cycles
	portReqs    []allocator.PortRequest
	swReqs      []allocator.SwitchRequest
	specReqs    []allocator.SwitchRequest
	vaReqs      []allocator.VCRequest
	vaGrantThis []int8 // per input-VC flat index: outVC granted this cycle, -1 otherwise
	whReleases  []int  // wormhole port releases registered this cycle
}

// New returns a router. route maps destination node to output port;
// eject consumes flits that leave through the local port.
func New(id int, cfg Config, route func(dst int) int, eject func(f flit.Flit, now int64)) *Router {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("router %d: %v", id, err))
	}
	r := &Router{id: id, cfg: cfg, route: route, eject: eject}
	p, v := cfg.Ports, cfg.VCs
	r.in = make([]inputPort, p)
	r.out = make([]outputPort, p)
	for i := 0; i < p; i++ {
		r.in[i].vcs = make([]inputVC, v)
		for c := 0; c < v; c++ {
			r.in[i].vcs[c] = inputVC{fifo: queue.NewFIFO(cfg.BufPerVC), outVC: -1}
		}
		r.out[i].credits = make([]int, v)
		r.out[i].vcBusy = make([]bool, v)
		for c := 0; c < v; c++ {
			r.out[i].credits[c] = cfg.BufPerVC
		}
		if d := cfg.CreditProcessDelay(); d > 0 {
			r.out[i].creditPipe = link.NewWire[Credit](d)
		}
	}
	r.out[0].ejection = true

	f := cfg.arb()
	switch cfg.Kind {
	case Wormhole, SingleCycleWormhole:
		r.whArb = allocator.NewWormholeSwitch(p, f)
	case VirtualChannel, SingleCycleVC:
		r.swAlloc = allocator.NewSeparableSwitch(p, v, f)
		r.vcAlloc = allocator.NewVCAllocator(p, v, f)
	case SpeculativeVC:
		r.vcAlloc = allocator.NewVCAllocator(p, v, f)
		r.specAlloc = allocator.NewSpeculativeSwitch(p, v, f)
		r.specAlloc.PrioritizeNonSpec = cfg.SpecPriority
	}
	r.vaGrantThis = make([]int8, p*v)
	return r
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// ConnectInput attaches the wires of input port port: flits arrive on
// flitIn; credits for freed buffers are pushed to creditOut.
func (r *Router) ConnectInput(port int, flitIn *link.Wire[flit.Flit], creditOut *link.Wire[Credit]) {
	r.in[port].flitIn = flitIn
	r.in[port].creditOut = creditOut
}

// ConnectOutput attaches the wires of output port port: departing flits
// are pushed to flitOut; returned credits arrive on creditIn.
func (r *Router) ConnectOutput(port int, flitOut *link.Wire[flit.Flit], creditIn *link.Wire[Credit]) {
	r.out[port].flitOut = flitOut
	r.out[port].creditIn = creditIn
}

// SetVCClassPolicy restricts VC-allocation candidates per (destination,
// output port) — used for dateline virtual-channel classes on tori. It
// must be set before the first Step.
func (r *Router) SetVCClassPolicy(mask func(dst, port int) uint64) {
	r.classMask = mask
}

// vaCandidates builds the VC-allocation candidate mask for an input VC:
// the free VCs of the routed output port, intersected with the class
// policy.
func (r *Router) vaCandidates(vc *inputVC) uint64 {
	cands := allocator.FreeCandidates(r.out[vc.route].vcBusy)
	if r.classMask != nil {
		hoq := vc.fifo.Peek()
		if hoq != nil {
			cands &= r.classMask(hoq.Pkt.Dst, vc.route)
		}
	}
	return cands
}

// SetProbe installs a buffer-turnaround probe on the directional input
// ports (Figure 16 measurement).
func (r *Router) SetProbe(p *stats.Turnaround) {
	r.probe = p
	for port := 1; port < r.cfg.Ports; port++ {
		for c := range r.in[port].vcs {
			r.in[port].vcs[c].popTimes = make([]int64, r.cfg.BufPerVC)
		}
	}
}

// Credits returns the credit counter of output port out toward
// downstream VC vc (for tests and invariant checks).
func (r *Router) Credits(out, vc int) int { return r.out[out].credits[vc] }

// BufferedFlits returns the occupancy of input (port, vc) (for tests).
func (r *Router) BufferedFlits(port, vc int) int { return r.in[port].vcs[vc].fifo.Len() }

// OutVCBusy reports outvc_state for (out, vc) (for tests).
func (r *Router) OutVCBusy(out, vc int) bool { return r.out[out].vcBusy[vc] }

// Step advances the router one cycle: deliver arrivals, execute latched
// switch traversals, then run routing and allocation. All inter-router
// communication crosses wires with >= 1 cycle delay, so routers may step
// in any order within a cycle.
func (r *Router) Step(now int64) {
	r.deliver(now)
	r.pending, r.next = r.next, r.pending[:0]

	switch r.cfg.Kind {
	case Wormhole:
		r.traverseWormholeGrants(now)
		r.allocWormhole(now)
		r.applyWormholeReleases()
	case VirtualChannel:
		r.traversePending(now)
		r.allocVC(now)
	case SpeculativeVC:
		r.traversePending(now)
		r.allocSpec(now)
	case SingleCycleWormhole:
		r.stepSingleCycleWH(now)
	case SingleCycleVC:
		r.stepSingleCycleVC(now)
	}
}

// deliver pops arriving flits into input FIFOs and moves credits through
// the credit-processing pipeline into the counters.
func (r *Router) deliver(now int64) {
	for port := range r.in {
		ip := &r.in[port]
		if ip.flitIn == nil {
			continue
		}
		ip.flitIn.Deliver(now, func(f flit.Flit) {
			r.enqueue(port, f, now)
		})
	}
	for o := range r.out {
		op := &r.out[o]
		if op.creditPipe != nil {
			op.creditPipe.Deliver(now, func(c Credit) { op.credits[c.VC]++ })
		}
		if op.creditIn == nil {
			continue
		}
		op.creditIn.Deliver(now, func(c Credit) {
			if op.creditPipe != nil {
				op.creditPipe.Push(now, c)
			} else {
				op.credits[c.VC]++
			}
		})
	}
}

func (r *Router) enqueue(port int, f flit.Flit, now int64) {
	if int(f.VC) >= len(r.in[port].vcs) {
		panic(fmt.Sprintf("router %d: flit arrived on VC %d of port %d (only %d VCs)",
			r.id, f.VC, port, len(r.in[port].vcs)))
	}
	vc := &r.in[port].vcs[f.VC]
	f.EnqueuedAt = now
	if r.probe != nil && port != 0 && vc.popTimes != nil {
		b := int64(len(vc.popTimes))
		if vc.pushCount >= b {
			r.probe.Record(now - vc.popTimes[vc.pushCount%b])
		}
		vc.pushCount++
	}
	if err := vc.fifo.Push(f); err != nil {
		panic(fmt.Sprintf("router %d: input %d vc %d: %v", r.id, port, f.VC, err))
	}
}

// send reads the head-of-queue flit of (in, vcIdx), rewrites its vcid to
// the allocated output VC, forwards it (wire or ejection), returns a
// credit upstream, and handles tail bookkeeping on the input side.
func (r *Router) send(in, vcIdx int, now int64) {
	vc := &r.in[in].vcs[vcIdx]
	f, ok := vc.fifo.Pop()
	if !ok {
		panic(fmt.Sprintf("router %d: switch traversal from empty input %d vc %d", r.id, in, vcIdx))
	}
	if r.probe != nil && in != 0 && vc.popTimes != nil {
		vc.popTimes[vc.popCount%int64(len(vc.popTimes))] = now
		vc.popCount++
	}
	out := vc.route
	f.VC = vc.outVC
	if op := &r.out[out]; op.ejection {
		f.Pkt.Ejected++
		if f.Pkt.Done() {
			f.Pkt.EjectedAt = now
		}
		if r.eject != nil {
			r.eject(f, now)
		}
	} else {
		op.flitOut.Push(now, f)
	}
	if co := r.in[in].creditOut; co != nil {
		co.Push(now, Credit{VC: int8(vcIdx)})
	}
	if f.Kind.IsTail() {
		vc.state = vcIdle
		vc.outVC = -1
		vc.readyAt = now
	}
}

// traversePending executes last cycle's switch grants (VC-style routers).
func (r *Router) traversePending(now int64) {
	for _, g := range r.pending {
		r.send(g.in, g.vc, now)
	}
}

// routeHeads performs the routing/decode stage for every idle input VC
// whose head-of-queue flit is a head flit buffered before this cycle.
func (r *Router) routeHeads(now int64) {
	for in := range r.in {
		for c := range r.in[in].vcs {
			vc := &r.in[in].vcs[c]
			if vc.state != vcIdle {
				continue
			}
			hoq := vc.fifo.Peek()
			if hoq == nil || !hoq.Kind.IsHead() || hoq.EnqueuedAt >= now || vc.readyAt > now {
				continue
			}
			vc.route = r.route(hoq.Pkt.Dst)
			vc.state = vcWaitVC
			vc.readyAt = now + 1
		}
	}
}

// hoqEligible returns the head-of-queue flit if it may traverse the
// switch no earlier than next cycle (it was buffered before this cycle).
func (vc *inputVC) hoqEligible(now int64) *flit.Flit {
	hoq := vc.fifo.Peek()
	if hoq == nil || hoq.EnqueuedAt >= now {
		return nil
	}
	return hoq
}

// grantSwitch consumes a credit (unless ejecting), latches the crossbar
// traversal for next cycle, and — when the granted flit is the packet's
// tail — releases the output VC at grant time, as the paper specifies
// ("once it is granted crossbar passage, it informs the virtual-channel
// allocator to release the reserved output VC").
func (r *Router) grantSwitch(in, vcIdx int, now int64) {
	vc := &r.in[in].vcs[vcIdx]
	op := &r.out[vc.route]
	if !op.ejection {
		op.credits[vc.outVC]--
		if op.credits[vc.outVC] < 0 {
			panic(fmt.Sprintf("router %d: negative credits at out %d vc %d", r.id, vc.route, vc.outVC))
		}
	}
	if hoq := vc.fifo.Peek(); hoq != nil && hoq.Kind.IsTail() {
		// Release the output VC at grant time so next cycle's VC
		// allocation can hand it to another packet; the input-side
		// release happens when the tail actually traverses (send).
		op.vcBusy[vc.outVC] = false
	}
	r.next = append(r.next, stGrant{in: in, vc: vcIdx})
	// Block further allocation actions for this VC until the traversal
	// completes; body flits re-arm via vcActive state next cycle.
	vc.readyAt = now + 1
}
