package router

import (
	"fmt"
	"math/bits"

	"routersim/internal/allocator"
	"routersim/internal/flit"
	"routersim/internal/link"
	"routersim/internal/queue"
	"routersim/internal/stats"
)

// Credit is the unit of buffer flow control sent upstream when a flit is
// read out of an input buffer. VC identifies which virtual channel's
// buffer was freed.
type Credit struct{ VC int8 }

// Unroutable is the routing-table sentinel for a destination with no
// live path (a fault partitioned the network). The routing stage sends
// such packets to the local ejection port with Pkt.Dropped set; the
// network counts them instead of delivering them. Port indices are < 64,
// so the sentinel can never collide with a real port.
const Unroutable = 0xFF

// RoutingPolicy chooses the output port and the output-VC candidate
// mask for a head flit, replacing the router's table/function lookup.
// Route is invoked when the head first reaches the routing stage
// (attempt 0) and again on every VC-allocation retry (attempt counts
// prior failed attempts), so a policy can adapt to congestion — e.g.
// re-pick by credit count, or alternate between adaptive candidates and
// a DOR escape class. It runs inside the router's compute phase and
// must only read router-local state (r's credit counters, p) plus
// immutable or barrier-synchronized shared tables; it must be
// deterministic and allocation-free. A policy that declares p
// unroutable must set p.Dropped and return the local port 0.
type RoutingPolicy interface {
	Route(r *Router, p *flit.Packet, attempt int) (port int, vcMask uint64)
}

// vcState is the per-input-VC channel state (invc_state in the paper;
// inpc_state for wormhole routers, which have one VC per port).
type vcState uint8

const (
	// vcIdle: no packet, or waiting for the next head flit.
	vcIdle vcState = iota
	// vcWaitVC: routed; waiting for an output VC (VC allocation state).
	// For wormhole routers this state doubles as "waiting for switch
	// arbitration" since there is no VC allocation.
	vcWaitVC
	// vcActive: resources held; flits flow through switch allocation.
	vcActive
)

// inputVC is one virtual channel of an input controller: a flit FIFO
// plus channel state.
type inputVC struct {
	fifo    *queue.FIFO
	state   vcState
	route   int   // output port chosen by the routing stage
	outVC   int8  // allocated output VC (valid in vcActive)
	readyAt int64 // earliest cycle of the next pipeline action

	// cands is the output-VC candidate mask chosen by the routing
	// policy together with route (policy mode only; the dor fast path
	// derives candidates from the class tables instead).
	cands uint64
	// attempts counts the VC-allocation attempts of the waiting head,
	// letting the policy alternate between adaptive and escape choices.
	attempts int32

	// turnaround probe bookkeeping (active only when probe != nil)
	popTimes  []int64
	popCount  int64
	pushCount int64
}

// inputPort is one physical input channel.
type inputPort struct {
	vcs       []inputVC
	flitIn    *link.Wire[flit.Flit] // upstream pushes flits here (nil: unconnected edge)
	creditOut *link.Wire[Credit]    // we push freed-buffer credits here (nil: unconnected)
	// occ has bit c set while input VC c needs allocation attention:
	// its FIFO is non-empty or its state is not idle. The allocation
	// stages iterate set bits instead of scanning every VC.
	occ uint64
}

// outputPort is one physical output channel: the downstream credit
// state (credits per VC, outvc_state) plus the outgoing flit wire.
type outputPort struct {
	flitOut  *link.Wire[flit.Flit] // nil for the ejection port
	creditIn *link.Wire[Credit]    // downstream pushes returned credits here
	credits  []int                 // per downstream VC
	vcBusy   uint64                // outvc_state bitmask: VC allocated to a packet
	vcMask   uint64                // allocatable VCs on this port (downstream may have fewer)
	ejection bool                  // local port: infinite buffering, immediate ejection
}

// stGrant is a latched switch grant: the head-of-queue flit of (in, vc)
// traverses the crossbar in the cycle after the grant.
type stGrant struct{ in, vc int }

// Router is one cycle-accurate router instance.
type Router struct {
	id  int
	cfg Config

	in  []inputPort
	out []outputPort

	// occPorts has bit p set while input port p has a non-zero occ mask,
	// letting the allocation stages (and the network's idle-router skip)
	// ignore quiet ports entirely.
	occPorts uint64

	// routes maps a destination node to this router's output port — the
	// dor policy's precomputed form. It is built once (network.New) and
	// only ever rewritten at fault-application barriers while no router
	// is stepping, so it is safe to share between concurrently stepping
	// routers. On networks too large for per-router tables it is nil and
	// routeFn computes the port on demand (a pure function of
	// (router, dst), equally safe to call concurrently).
	routes  []uint8
	routeFn func(dst int) int
	// policy, when set, replaces the routes/routeFn lookup for head
	// routing and VC-allocation retries (see RoutingPolicy). nil keeps
	// the dor fast path.
	policy RoutingPolicy
	// vcMaskAll has the low VCs bits set (the full candidate mask).
	vcMaskAll uint64
	// creditLag is the credit-processing pipeline depth in cycles,
	// applied by popping the credit wires that many cycles late.
	creditLag int64
	// classTab, when set, restricts the output VCs a packet may be
	// allocated on a given output port (dateline deadlock avoidance on
	// tori), indexed dst*Ports+port. nil permits every VC — unless
	// classFn is set, the functional equivalent for networks too large
	// for tables.
	classTab []uint64
	classFn  func(dst, port int) uint64

	// ejected collects the flits that left through the local output port
	// this cycle. The network drains it (in router-id order) after all
	// routers have stepped, which keeps ejection callbacks off the
	// parallel compute phase and their order deterministic.
	ejected []flit.Flit

	// flitPushes has bit p set for every output port this router pushed
	// a flit on since the last TakeFlitPushes. The network's active-set
	// scheduler reads it to wake exactly the downstream routers that
	// will have an arrival due, instead of scanning every router's
	// wires. (Credit pushes are deliberately not tracked: credits alone
	// never oblige a router to act — see the scheduler's wake rules.)
	flitPushes uint64

	// allocators (which are instantiated depends on Kind)
	whArb     *allocator.WormholeSwitch
	swAlloc   *allocator.SeparableSwitch
	vcAlloc   *allocator.VCAllocator
	specAlloc *allocator.SpeculativeSwitch

	// pending holds grants issued last cycle, executed by this cycle's
	// switch-traversal phase; next accumulates this cycle's grants.
	pending []stGrant
	next    []stGrant

	// probe, when set, records buffer-turnaround intervals on the
	// directional (non-local) input ports.
	probe *stats.Turnaround

	// scratch request buffers, reused across cycles
	portReqs    []allocator.PortRequest
	swReqs      []allocator.SwitchRequest
	specReqs    []allocator.SwitchRequest
	vaReqs      []allocator.VCRequest
	vaGrantThis []int8 // per input-VC flat index: outVC granted this cycle, -1 otherwise
	whReleases  []int  // wormhole port releases registered this cycle
}

// New returns a router. Routing is a three-tier policy layer, picked in
// this order at the routing stage:
//
//  1. SetRoutingPolicy installs a RoutingPolicy that chooses output
//     port and VC candidates per head flit and per retry (the adaptive
//     policies live in the network package).
//  2. Otherwise routes — destination node to output port
//     (routes[dst] = port) — is the default dimension-ordered ("dor")
//     policy in its precomputed form. The scalar table lookup IS the
//     dor policy: it stays a direct indexed load rather than an
//     interface call so the default path keeps its bit-identical,
//     zero-allocation behaviour. An entry of Unroutable marks a
//     destination severed by fault injection; such heads are routed to
//     the ejection port and dropped. The slice is retained; after New
//     it may only be rewritten while the network is barrier-stopped
//     (fault application).
//  3. A nil routes requires SetRouteFunc before the first Step (the
//     large-network functional dor mode).
//
// Flits routed to port 0 (the local port) are ejected: they accumulate
// in the buffer returned by Ejected until ClearEjected.
func New(id int, cfg Config, routes []uint8) *Router {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("router %d: %v", id, err))
	}
	r := &Router{id: id, cfg: cfg, routes: routes}
	p, v := cfg.Ports, cfg.VCs
	r.vcMaskAll = (uint64(1) << v) - 1
	r.in = make([]inputPort, p)
	r.out = make([]outputPort, p)
	for i := 0; i < p; i++ {
		r.in[i].vcs = make([]inputVC, v)
		for c := 0; c < v; c++ {
			r.in[i].vcs[c] = inputVC{fifo: queue.NewFIFO(cfg.BufPerVC), outVC: -1}
		}
		r.out[i].credits = make([]int, v)
		for c := 0; c < v; c++ {
			r.out[i].credits[c] = cfg.BufPerVC
		}
		r.out[i].vcMask = r.vcMaskAll
	}
	// The credit-processing pipeline of depth d (a credit received at t
	// is visible at t+d) is implemented by draining the credit wires d
	// cycles late — identical timing, no extra delay line.
	r.creditLag = int64(cfg.CreditProcessDelay())
	r.out[0].ejection = true

	f := cfg.arb()
	switch cfg.Kind {
	case Wormhole, SingleCycleWormhole:
		r.whArb = allocator.NewWormholeSwitch(p, f)
	case VirtualChannel, SingleCycleVC:
		r.swAlloc = allocator.NewSeparableSwitch(p, v, f)
		r.vcAlloc = allocator.NewVCAllocator(p, v, f)
	case SpeculativeVC:
		r.vcAlloc = allocator.NewVCAllocator(p, v, f)
		r.specAlloc = allocator.NewSpeculativeSwitch(p, v, f)
		r.specAlloc.PrioritizeNonSpec = cfg.SpecPriority
	}
	r.vaGrantThis = make([]int8, p*v)
	// Preallocate the scratch buffers to their worst-case sizes so the
	// steady-state cycle never grows a slice.
	r.pending = make([]stGrant, 0, p)
	r.next = make([]stGrant, 0, p)
	r.portReqs = make([]allocator.PortRequest, 0, p)
	r.swReqs = make([]allocator.SwitchRequest, 0, p*v)
	r.specReqs = make([]allocator.SwitchRequest, 0, p*v)
	r.vaReqs = make([]allocator.VCRequest, 0, p*v)
	r.whReleases = make([]int, 0, p)
	return r
}

// ID returns the router's node id.
func (r *Router) ID() int { return r.id }

// CreditLag returns the credit-processing pipeline depth in cycles: the
// router pops its credit wires that many cycles late (a credit due at t
// is consumed at t+CreditLag). The sharded engine reads it to widen its
// credit-side lookahead bound to CreditDelay+CreditLag per boundary
// link (see network/shard.go).
func (r *Router) CreditLag() int64 { return r.creditLag }

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// ConnectInput attaches the wires of input port port: flits arrive on
// flitIn; credits for freed buffers are pushed to creditOut.
func (r *Router) ConnectInput(port int, flitIn *link.Wire[flit.Flit], creditOut *link.Wire[Credit]) {
	r.in[port].flitIn = flitIn
	r.in[port].creditOut = creditOut
}

// ConnectOutput attaches the wires of output port port: departing flits
// are pushed to flitOut; returned credits arrive on creditIn.
func (r *Router) ConnectOutput(port int, flitOut *link.Wire[flit.Flit], creditIn *link.Wire[Credit]) {
	r.out[port].flitOut = flitOut
	r.out[port].creditIn = creditIn
}

// SetVCClassTable restricts VC-allocation candidates per (destination,
// output port), indexed dst*Ports+port — used for dateline virtual-
// channel classes on tori. The table is precomputed by the network and
// must be set before the first Step; it is read-only afterwards.
func (r *Router) SetVCClassTable(tab []uint64) {
	if tab != nil && len(tab)%r.cfg.Ports != 0 {
		panic(fmt.Sprintf("router %d: VC class table length %d not a multiple of %d ports", r.id, len(tab), r.cfg.Ports))
	}
	r.classTab = tab
}

// SetRouteFunc installs the functional form of the dor policy for
// networks too large for per-router routing tables (routes passed to
// New as nil): fn must be a pure function of the destination, returning
// the output port. It is the lowest policy tier — an installed
// RoutingPolicy takes precedence (see New). Must be set before the
// first Step.
func (r *Router) SetRouteFunc(fn func(dst int) int) { r.routeFn = fn }

// SetVCClassFunc is the functional counterpart of SetVCClassTable for
// networks too large for per-router tables: fn must be a pure function
// of (destination, output port) returning the candidate VC mask. Like
// the class table, it only applies on the dor fast path — a
// RoutingPolicy returns its own candidate mask per head instead.
func (r *Router) SetVCClassFunc(fn func(dst, port int) uint64) { r.classFn = fn }

// SetRoutingPolicy installs a per-head routing policy, overriding the
// routes/routeFn dor lookup (see RoutingPolicy and New). Only router
// kinds with per-VC input state support policies (the wormhole kinds
// have no VC-allocation stage to retry from); the network layer
// enforces this. Must be set before the first Step.
func (r *Router) SetRoutingPolicy(p RoutingPolicy) { r.policy = p }

// FreeCreditsMask returns output port out's downstream credits summed
// over the VCs in mask — the deterministic congestion signal adaptive
// policies break ties with.
func (r *Router) FreeCreditsMask(out int, mask uint64) int {
	op := &r.out[out]
	total := 0
	for m := mask & op.vcMask; m != 0; m &= m - 1 {
		total += op.credits[bits.TrailingZeros64(m)]
	}
	return total
}

// vaCandidates builds the VC-allocation candidate mask for an input VC:
// the free VCs of the routed output port (limited to the VCs the
// downstream router actually has), intersected with the class policy —
// the routing policy's per-head mask when one is installed, the
// precomputed dateline class tables otherwise.
func (r *Router) vaCandidates(vc *inputVC) uint64 {
	op := &r.out[vc.route]
	cands := ^op.vcBusy & op.vcMask
	if r.policy != nil {
		return cands & vc.cands
	}
	if r.classTab != nil {
		hoq := vc.fifo.Peek()
		if hoq != nil {
			cands &= r.classTab[hoq.Pkt.Dst*r.cfg.Ports+vc.route]
		}
	} else if r.classFn != nil {
		hoq := vc.fifo.Peek()
		if hoq != nil {
			cands &= r.classFn(hoq.Pkt.Dst, vc.route)
		}
	}
	return cands
}

// SetOutputPolicy sizes output port port's credit state for a
// heterogeneous downstream router: the allocatable VCs become
// min(local VCs, downVCs) and each carries downBufPerVC credits — the
// downstream input buffer it actually drains into. With matching
// parameters this reproduces New's defaults exactly, so uniform
// networks are unaffected. It must be called before the first Step.
func (r *Router) SetOutputPolicy(port, downVCs, downBufPerVC int) {
	if downVCs < 1 || downBufPerVC < 1 {
		panic(fmt.Sprintf("router %d: output %d policy %d VCs × %d buffers; need >= 1", r.id, port, downVCs, downBufPerVC))
	}
	op := &r.out[port]
	eff := downVCs
	if r.cfg.VCs < eff {
		eff = r.cfg.VCs
	}
	op.vcMask = (uint64(1) << eff) - 1
	for c := range op.credits {
		if c < eff {
			op.credits[c] = downBufPerVC
		} else {
			op.credits[c] = 0
		}
	}
}

// SetProbe installs a buffer-turnaround probe on the directional input
// ports (Figure 16 measurement).
func (r *Router) SetProbe(p *stats.Turnaround) {
	r.probe = p
	for port := 1; port < r.cfg.Ports; port++ {
		for c := range r.in[port].vcs {
			r.in[port].vcs[c].popTimes = make([]int64, r.cfg.BufPerVC)
		}
	}
}

// Credits returns the credit counter of output port out toward
// downstream VC vc (for tests and invariant checks).
func (r *Router) Credits(out, vc int) int { return r.out[out].credits[vc] }

// BufferedFlits returns the occupancy of input (port, vc) (for tests).
func (r *Router) BufferedFlits(port, vc int) int { return r.in[port].vcs[vc].fifo.Len() }

// OutVCBusy reports outvc_state for (out, vc) (for tests).
func (r *Router) OutVCBusy(out, vc int) bool { return r.out[out].vcBusy&(1<<vc) != 0 }

// Ejected returns the flits that left through the local port since the
// last ClearEjected, in ejection order.
func (r *Router) Ejected() []flit.Flit { return r.ejected }

// ClearEjected resets the ejection buffer (keeping its capacity).
func (r *Router) ClearEjected() { r.ejected = r.ejected[:0] }

// TakeFlitPushes returns and clears the bitmask of output ports this
// router pushed flits on since the last call. It must be called from
// the serial section of the network step (it mutates router state).
func (r *Router) TakeFlitPushes() uint64 {
	m := r.flitPushes
	r.flitPushes = 0
	return m
}

// markOcc flags input VC (port, c) as needing allocation attention.
func (r *Router) markOcc(port, c int) {
	r.in[port].occ |= 1 << c
	r.occPorts |= 1 << port
}

// syncOcc re-evaluates the occupancy bit of input VC (port, c) after a
// pop or state change: the bit clears only when the VC is idle with an
// empty FIFO.
func (r *Router) syncOcc(port, c int) {
	vc := &r.in[port].vcs[c]
	if vc.state == vcIdle && vc.fifo.Empty() {
		ip := &r.in[port]
		ip.occ &^= 1 << c
		if ip.occ == 0 {
			r.occPorts &^= 1 << port
		}
	}
}

// ComputeIdle reports whether the Compute phase would be a no-op: no
// occupied input VCs and no latched grants. Unlike Idle it reads only
// router-local state, so it is safe to call while other routers are
// concurrently pushing onto this router's input wires.
func (r *Router) ComputeIdle() bool {
	return r.occPorts == 0 && len(r.pending) == 0 && len(r.next) == 0
}

// Idle reports whether stepping the router this cycle would be a no-op:
// no buffered or in-flight flits, no non-idle VC state, no latched
// grants, and no credits in flight. The network uses it to skip quiet
// routers entirely at low load.
func (r *Router) Idle() bool {
	if !r.ComputeIdle() {
		return false
	}
	for port := range r.in {
		if w := r.in[port].flitIn; w != nil && w.Len() > 0 {
			return false
		}
	}
	for o := range r.out {
		op := &r.out[o]
		if op.creditIn != nil && op.creditIn.Len() > 0 {
			return false
		}
	}
	return true
}

// NextArrival returns the earliest due cycle over the router's input
// flit wires, or link.NeverDue when none carries anything — the
// scheduler's quiescence invariant checks use it (a network claiming
// quiescence must have no deliverable flit anywhere).
func (r *Router) NextArrival() int64 {
	min := link.NeverDue
	for port := range r.in {
		if w := r.in[port].flitIn; w != nil {
			if d := w.NextDue(); d < min {
				min = d
			}
		}
	}
	return min
}

// Step advances the router one cycle: deliver arrivals, execute latched
// switch traversals, then run routing and allocation. All inter-router
// communication crosses wires with >= 1 cycle delay, so routers may step
// in any order within a cycle — or concurrently, split into the Deliver
// and Compute phases (see the network's parallel stepper).
func (r *Router) Step(now int64) {
	r.Deliver(now)
	r.Compute(now)
}

// Deliver pops arriving flits into input FIFOs and moves credits through
// the credit-processing pipeline into the counters. It only consumes
// from the router's input wires and touches router-local state, so all
// routers' Deliver phases may run concurrently.
func (r *Router) Deliver(now int64) {
	for port := range r.in {
		ip := &r.in[port]
		if ip.flitIn == nil {
			continue
		}
		for f, ok := ip.flitIn.Pop(now); ok; f, ok = ip.flitIn.Pop(now) {
			r.enqueue(port, f, now)
		}
	}
	lagged := now - r.creditLag
	for o := range r.out {
		op := &r.out[o]
		if op.creditIn == nil {
			continue
		}
		for c, ok := op.creditIn.Pop(lagged); ok; c, ok = op.creditIn.Pop(lagged) {
			op.credits[c.VC]++
		}
	}
}

// Compute executes last cycle's latched traversals and this cycle's
// routing and allocation stages. It only pushes onto the router's
// output wires and touches router-local state, so all routers' Compute
// phases may run concurrently (after every Deliver has finished).
func (r *Router) Compute(now int64) {
	r.pending, r.next = r.next, r.pending[:0]

	switch r.cfg.Kind {
	case Wormhole:
		r.traverseWormholeGrants(now)
		r.allocWormhole(now)
		r.applyWormholeReleases()
	case VirtualChannel:
		r.traversePending(now)
		r.allocVC(now)
	case SpeculativeVC:
		r.traversePending(now)
		r.allocSpec(now)
	case SingleCycleWormhole:
		r.stepSingleCycleWH(now)
	case SingleCycleVC:
		r.stepSingleCycleVC(now)
	}
}

func (r *Router) enqueue(port int, f flit.Flit, now int64) {
	if int(f.VC) >= len(r.in[port].vcs) {
		panic(fmt.Sprintf("router %d: flit arrived on VC %d of port %d (only %d VCs)",
			r.id, f.VC, port, len(r.in[port].vcs)))
	}
	vc := &r.in[port].vcs[f.VC]
	f.EnqueuedAt = now
	if r.probe != nil && port != 0 && vc.popTimes != nil {
		b := int64(len(vc.popTimes))
		if vc.pushCount >= b {
			r.probe.Record(now - vc.popTimes[vc.pushCount%b])
		}
		vc.pushCount++
	}
	if err := vc.fifo.Push(f); err != nil {
		panic(fmt.Sprintf("router %d: input %d vc %d: %v", r.id, port, f.VC, err))
	}
	r.markOcc(port, int(f.VC))
}

// send reads the head-of-queue flit of (in, vcIdx), rewrites its vcid to
// the allocated output VC, forwards it (wire or ejection), returns a
// credit upstream, and handles tail bookkeeping on the input side.
func (r *Router) send(in, vcIdx int, now int64) {
	vc := &r.in[in].vcs[vcIdx]
	f, ok := vc.fifo.Pop()
	if !ok {
		panic(fmt.Sprintf("router %d: switch traversal from empty input %d vc %d", r.id, in, vcIdx))
	}
	if r.probe != nil && in != 0 && vc.popTimes != nil {
		vc.popTimes[vc.popCount%int64(len(vc.popTimes))] = now
		vc.popCount++
	}
	out := vc.route
	f.VC = vc.outVC
	if op := &r.out[out]; op.ejection {
		f.Pkt.Ejected++
		if f.Pkt.Done() {
			f.Pkt.EjectedAt = now
		}
		r.ejected = append(r.ejected, f)
	} else {
		op.flitOut.Push(now, f)
		r.flitPushes |= 1 << uint(out)
	}
	if co := r.in[in].creditOut; co != nil {
		co.Push(now, Credit{VC: int8(vcIdx)})
	}
	if f.Kind.IsTail() {
		vc.state = vcIdle
		vc.outVC = -1
		vc.readyAt = now
	}
	r.syncOcc(in, vcIdx)
}

// traversePending executes last cycle's switch grants (VC-style routers).
func (r *Router) traversePending(now int64) {
	for _, g := range r.pending {
		r.send(g.in, g.vc, now)
	}
}

// routeHead performs the routing/decode stage for one idle input VC if
// its head-of-queue flit is a head flit buffered before this cycle.
func (r *Router) routeHead(vc *inputVC, now int64) {
	hoq := vc.fifo.Peek()
	if hoq == nil || !hoq.Kind.IsHead() || hoq.EnqueuedAt >= now || vc.readyAt > now {
		return
	}
	switch {
	case r.policy != nil:
		vc.route, vc.cands = r.policy.Route(r, hoq.Pkt, 0)
		vc.attempts = 0
	case r.routes != nil:
		pt := r.routes[hoq.Pkt.Dst]
		if pt == Unroutable {
			pt = 0 // drain to the local port; counted, not delivered
			hoq.Pkt.Dropped = true
		}
		vc.route = int(pt)
	default:
		vc.route = r.routeFn(hoq.Pkt.Dst)
	}
	vc.state = vcWaitVC
	vc.readyAt = now + 1
}

// repick re-invokes the routing policy for a head still waiting on VC
// allocation, letting it adapt to the credit and busy state of this
// cycle (and alternate toward its escape class). A no-op on the dor
// fast path.
func (r *Router) repick(vc *inputVC) {
	if r.policy == nil {
		return
	}
	if hoq := vc.fifo.Peek(); hoq != nil {
		vc.route, vc.cands = r.policy.Route(r, hoq.Pkt, int(vc.attempts))
		vc.attempts++
	}
}

// routeHeads performs the routing/decode stage for every idle input VC.
// Only occupied VCs (occ bitmask) are visited. (The speculative router
// folds this pass into its allocation scan; see allocSpec.)
func (r *Router) routeHeads(now int64) {
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		for m := r.in[in].occ; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			vc := &r.in[in].vcs[c]
			if vc.state == vcIdle {
				r.routeHead(vc, now)
			}
		}
	}
}

// hoqEligible returns the head-of-queue flit if it may traverse the
// switch no earlier than next cycle (it was buffered before this cycle).
func (vc *inputVC) hoqEligible(now int64) *flit.Flit {
	hoq := vc.fifo.Peek()
	if hoq == nil || hoq.EnqueuedAt >= now {
		return nil
	}
	return hoq
}

// grantSwitch consumes a credit (unless ejecting), latches the crossbar
// traversal for next cycle, and — when the granted flit is the packet's
// tail — releases the output VC at grant time, as the paper specifies
// ("once it is granted crossbar passage, it informs the virtual-channel
// allocator to release the reserved output VC").
func (r *Router) grantSwitch(in, vcIdx int, now int64) {
	vc := &r.in[in].vcs[vcIdx]
	op := &r.out[vc.route]
	if !op.ejection {
		op.credits[vc.outVC]--
		if op.credits[vc.outVC] < 0 {
			panic(fmt.Sprintf("router %d: negative credits at out %d vc %d", r.id, vc.route, vc.outVC))
		}
	}
	if hoq := vc.fifo.Peek(); hoq != nil && hoq.Kind.IsTail() {
		// Release the output VC at grant time so next cycle's VC
		// allocation can hand it to another packet; the input-side
		// release happens when the tail actually traverses (send).
		op.vcBusy &^= 1 << vc.outVC
	}
	r.next = append(r.next, stGrant{in: in, vc: vcIdx})
	// Block further allocation actions for this VC until the traversal
	// completes; body flits re-arm via vcActive state next cycle.
	vc.readyAt = now + 1
}
