package router

import (
	"math/bits"

	"routersim/internal/allocator"
)

// This file implements the wormhole router's per-cycle behaviour:
// a 3-stage pipeline of routing, switch arbitration (the output port is
// held for the whole packet), and switch traversal. Body and tail flits
// skip routing and arbitration: once the port is held they stream
// through the crossbar one per cycle, gated only by credits. Like every
// pipelined path, a streaming flit is set up in one cycle (buffer read,
// credit check) and traverses the crossbar the next, which gives the
// wormhole router its 4-cycle buffer turnaround (Section 5.2).

// allocWormhole performs the routing and switch-arbitration stages, and
// issues the per-cycle crossbar passages for input ports that hold their
// output port. Only occupied ports (occ bitmask) are visited.
func (r *Router) allocWormhole(now int64) {
	r.routeHeads(now)

	// Switch arbitration: input ports in the waiting state bid for
	// their routed output port; winners hold the port until the tail
	// departs. The arbiter's status bits mask requests for held ports.
	r.portReqs = r.portReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		vc := &r.in[in].vcs[0]
		if vc.state != vcWaitVC || vc.readyAt > now {
			continue
		}
		r.portReqs = append(r.portReqs, allocator.PortRequest{In: in, Out: vc.route})
	}
	grants := r.whArb.Arbitrate(r.portReqs)
	for _, g := range grants {
		vc := &r.in[g.In].vcs[0]
		vc.state = vcActive
		vc.outVC = 0 // wormhole links carry a single VC
		vc.readyAt = now + 1
		// The head flit's crossbar passage is granted together with the
		// port (the arbitration stage covers both), so the head
		// traverses next cycle — unless the downstream buffer is full.
		r.grantWormholePassage(g.In, now)
	}

	// Streaming: every other input port holding its output sends one
	// flit per cycle, gated by credits.
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		vc := &r.in[in].vcs[0]
		if vc.state != vcActive || vc.readyAt > now {
			continue
		}
		r.grantWormholePassage(in, now)
	}
}

// grantWormholePassage issues a crossbar passage for the head-of-queue
// flit of input port in, if one is eligible and a credit is available.
func (r *Router) grantWormholePassage(in int, now int64) {
	vc := &r.in[in].vcs[0]
	if vc.hoqEligible(now) == nil {
		return
	}
	op := &r.out[vc.route]
	if !op.ejection && op.credits[0] <= 0 {
		return // buffer turnaround: wait for a credit
	}
	r.grantSwitch(in, 0, now)
}

// traverseWormholeGrants executes last cycle's passages. Unlike the VC
// router — which releases its output VC at switch-allocation time — the
// wormhole router frees the held output port only "when the tail flit
// departs the input queue" (Section 3.1), i.e. at traversal. The release
// signal updates the arbiter's status flip-flop at the end of the cycle,
// so the port becomes grantable one cycle after the tail traverses; the
// resulting per-packet hold bubble is what caps wormhole throughput
// below the flit-by-flit VC routers.
func (r *Router) traverseWormholeGrants(now int64) {
	for _, g := range r.pending {
		vc := &r.in[g.in].vcs[0]
		out := vc.route
		isTail := false
		if hoq := vc.fifo.Peek(); hoq != nil && hoq.Kind.IsTail() {
			isTail = true
		}
		r.send(g.in, g.vc, now)
		if isTail {
			r.whReleases = append(r.whReleases, out)
		}
	}
}

// applyWormholeReleases updates the port status flip-flops after this
// cycle's arbitration (registered release).
func (r *Router) applyWormholeReleases() {
	for _, out := range r.whReleases {
		r.whArb.Release(out)
	}
	r.whReleases = r.whReleases[:0]
}
