package router

import (
	"math/bits"

	"routersim/internal/allocator"
)

// This file implements the idealized single-cycle ("unit latency")
// routers used as the baseline in Figure 17: routing, allocation, and
// crossbar traversal all complete within one cycle, and credits are
// processed with no pipeline delay. The paper shows this commonly
// assumed model underestimates latency and overestimates throughput.

// stepSingleCycleWH is the single-cycle wormhole router: arbitration and
// traversal in the arrival-plus-one cycle.
func (r *Router) stepSingleCycleWH(now int64) {
	r.routeHeads(now)

	// Switch arbitration (port held per packet), same cycle as routing.
	r.portReqs = r.portReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		vc := &r.in[in].vcs[0]
		if vc.state == vcWaitVC {
			r.portReqs = append(r.portReqs, allocator.PortRequest{In: in, Out: vc.route})
		}
	}
	for _, g := range r.whArb.Arbitrate(r.portReqs) {
		vc := &r.in[g.In].vcs[0]
		vc.state = vcActive
		vc.outVC = 0
	}

	// Traversal in the same cycle.
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		vc := &r.in[in].vcs[0]
		if vc.state != vcActive {
			continue
		}
		hoq := vc.hoqEligible(now)
		if hoq == nil {
			continue
		}
		op := &r.out[vc.route]
		if !op.ejection && op.credits[0] <= 0 {
			continue
		}
		isTail := hoq.Kind.IsTail()
		out := vc.route
		if !op.ejection {
			op.credits[0]--
		}
		r.send(in, 0, now)
		if isTail {
			r.whArb.Release(out)
		}
	}
}

// stepSingleCycleVC is the single-cycle virtual-channel router: routing,
// VC allocation, switch allocation and traversal all in one cycle.
func (r *Router) stepSingleCycleVC(now int64) {
	r.routeHeads(now)

	// VC allocation, immediately usable this cycle.
	r.vaReqs = r.vaReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		for m := r.in[in].occ; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			vc := &r.in[in].vcs[c]
			if vc.state != vcWaitVC {
				continue
			}
			// Only heads already buffered may proceed this cycle.
			if vc.hoqEligible(now) == nil {
				continue
			}
			r.repick(vc)
			r.vaReqs = append(r.vaReqs, allocator.VCRequest{In: in, VC: c, Out: vc.route, Candidates: r.vaCandidates(vc)})
		}
	}
	for _, g := range r.vcAlloc.Allocate(r.vaReqs) {
		vc := &r.in[g.In].vcs[g.VC]
		vc.state = vcActive
		vc.outVC = int8(g.OutVC)
		r.out[g.Out].vcBusy |= 1 << g.OutVC
	}

	// Switch allocation and traversal in the same cycle.
	r.swReqs = r.swReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		for m := r.in[in].occ; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			vc := &r.in[in].vcs[c]
			if vc.state != vcActive || vc.hoqEligible(now) == nil {
				continue
			}
			op := &r.out[vc.route]
			if !op.ejection && op.credits[vc.outVC] <= 0 {
				continue
			}
			r.swReqs = append(r.swReqs, allocator.SwitchRequest{In: in, VC: c, Out: vc.route})
		}
	}
	for _, g := range r.swAlloc.Allocate(r.swReqs) {
		vc := &r.in[g.In].vcs[g.VC]
		op := &r.out[vc.route]
		if !op.ejection {
			op.credits[vc.outVC]--
		}
		if hoq := vc.fifo.Peek(); hoq != nil && hoq.Kind.IsTail() {
			op.vcBusy &^= 1 << vc.outVC
		}
		r.send(g.In, g.VC, now)
	}
}
