package router

import (
	"math/bits"

	"routersim/internal/allocator"
)

// This file implements the speculative virtual-channel router
// (Section 3.1, Figure 4c): a 3-stage pipeline in which a head flit
// requests the switch speculatively in the same cycle it requests an
// output VC. A speculative grant is used only if VC allocation succeeded
// in that cycle and the granted output VC has a credit; otherwise the
// reserved crossbar slot is wasted. Non-speculative requests always take
// priority, so speculation never reduces throughput.

// allocSpec performs routing, then the combined VC + speculative switch
// allocation stage. Requests for all three allocators are formed from
// the state at the start of the stage (the hardware evaluates them in
// parallel), then grants are combined. Only occupied VCs are visited.
func (r *Router) allocSpec(now int64) {
	// One pass over the occupied VCs does both the routing stage and
	// request formation: a head routed this cycle gets readyAt = now+1,
	// so it cannot also request allocation this cycle — exactly the
	// behaviour of separate scans, in one.
	r.vaReqs = r.vaReqs[:0]
	r.specReqs = r.specReqs[:0]
	r.swReqs = r.swReqs[:0]
	for pm := r.occPorts; pm != 0; pm &= pm - 1 {
		in := bits.TrailingZeros64(pm)
		for m := r.in[in].occ; m != 0; m &= m - 1 {
			c := bits.TrailingZeros64(m)
			vc := &r.in[in].vcs[c]
			if vc.state == vcIdle {
				r.routeHead(vc, now)
			}
			switch {
			case vc.state == vcWaitVC && vc.readyAt <= now:
				r.repick(vc)
				r.vaReqs = append(r.vaReqs, allocator.VCRequest{
					In: in, VC: c, Out: vc.route, Candidates: r.vaCandidates(vc),
				})
				// Speculative switch request in parallel with VC
				// allocation: the output VC (and hence its credit) is
				// not yet known; validity is checked at combine time.
				if vc.hoqEligible(now) != nil {
					r.specReqs = append(r.specReqs, allocator.SwitchRequest{In: in, VC: c, Out: vc.route})
				}
			case r.switchEligible(vc, now):
				r.swReqs = append(r.swReqs, allocator.SwitchRequest{In: in, VC: c, Out: vc.route})
			}
		}
	}

	// Run the VC allocator and the dual switch allocator "in parallel".
	vaGrants := r.vcAlloc.Allocate(r.vaReqs)
	nsGrants, spGrants := r.specAlloc.Allocate(r.swReqs, r.specReqs)

	// Apply VC allocation: winners hold an output VC and are
	// non-speculative from the next cycle on. The grant scoreboard only
	// needs clearing when VC requests were in play (speculative grants
	// can only exist alongside them).
	v := r.cfg.VCs
	if len(r.vaReqs) > 0 {
		for i := range r.vaGrantThis {
			r.vaGrantThis[i] = -1
		}
	}
	for _, g := range vaGrants {
		vc := &r.in[g.In].vcs[g.VC]
		vc.state = vcActive
		vc.outVC = int8(g.OutVC)
		vc.readyAt = now + 1
		r.out[g.Out].vcBusy |= 1 << g.OutVC
		r.vaGrantThis[g.In*v+g.VC] = int8(g.OutVC)
	}

	// Non-speculative grants proceed unconditionally.
	for _, g := range nsGrants {
		r.grantSwitch(g.In, g.VC, now)
	}

	// Speculative grants are valid only if the same input VC won VC
	// allocation this cycle and the granted output VC has a credit;
	// otherwise the crossbar passage is wasted (the port stays idle
	// this cycle — non-speculative requests already had priority).
	for _, g := range spGrants {
		w := r.vaGrantThis[g.In*v+g.VC]
		if w < 0 {
			continue // speculation failed: no output VC this cycle
		}
		op := &r.out[g.Out]
		if !op.ejection && op.credits[w] <= 0 {
			continue // no credit for the freshly allocated VC
		}
		r.grantSwitch(g.In, g.VC, now)
	}
}
