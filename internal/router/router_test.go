package router

import (
	"testing"

	"routersim/internal/flit"
	"routersim/internal/link"
)

// rig wires a single router with controllable inputs and observable
// outputs: flits pushed on the local input port, departures observed on
// the east output wire, all other ports unconnected (as at a mesh
// corner).
type rig struct {
	r        *Router
	in       *link.Wire[flit.Flit]
	inCred   *link.Wire[Credit]
	out      *link.Wire[flit.Flit]
	outCred  *link.Wire[Credit]
	arrivals []arrival
	ejected  []arrival
	now      int64
}

type arrival struct {
	f  flit.Flit
	at int64
}

// newRig builds a router whose routing table sends every packet to
// output port 1 (east), except packets destined to node 0, which eject.
func newRig(cfg Config) *rig {
	g := &rig{
		in:      link.NewWire[flit.Flit](1),
		inCred:  link.NewWire[Credit](1),
		out:     link.NewWire[flit.Flit](1),
		outCred: link.NewWire[Credit](1),
	}
	routes := make([]uint8, 128) // rig destinations are < 128
	for dst := range routes {
		if dst != 0 {
			routes[dst] = 1
		}
	}
	g.r = New(7, cfg, routes)
	g.r.ConnectInput(0, g.in, g.inCred)
	g.r.ConnectOutput(1, g.out, g.outCred)
	return g
}

// step advances one cycle, draining the output wire and the router's
// ejection buffer.
func (g *rig) step() {
	g.r.Step(g.now)
	for _, f := range g.r.Ejected() {
		g.ejected = append(g.ejected, arrival{f, g.now})
	}
	g.r.ClearEjected()
	for f, ok := g.out.Pop(g.now); ok; f, ok = g.out.Pop(g.now) {
		g.arrivals = append(g.arrivals, arrival{f, g.now})
	}
	g.now++
}

// inject pushes the packet's flits one per cycle starting now.
func (g *rig) packet(size int, dst int) *flit.Packet {
	return &flit.Packet{ID: 1, Src: 7, Dst: dst, Size: size, CreatedAt: g.now}
}

func (g *rig) run(cycles int) {
	for i := 0; i < cycles; i++ {
		g.step()
	}
}

func pushAll(g *rig, p *flit.Packet, startAt int64) {
	fl := flit.NewPacketFlits(p)
	for i, f := range fl {
		f.VC = 0
		g.in.Push(startAt+int64(i), f)
	}
}

// TestWormholeHeadTiming: head buffered at cycle 1 must appear on the
// output wire at cycle 5: routing at 2, switch arbitration at 3, switch
// traversal at 4, one cycle of link propagation — the 3-stage pipeline
// plus the wire.
func TestWormholeHeadTiming(t *testing.T) {
	g := newRig(DefaultConfig(Wormhole))
	pushAll(g, g.packet(5, 99), 0) // pushed at 0 → buffered at 1
	g.run(20)
	if len(g.arrivals) != 5 {
		t.Fatalf("%d flits delivered, want 5", len(g.arrivals))
	}
	if g.arrivals[0].at != 5 {
		t.Errorf("head delivered at cycle %d, want 5 (3-stage pipeline)", g.arrivals[0].at)
	}
	// Body flits stream one per cycle behind the head.
	for i := 1; i < 5; i++ {
		if g.arrivals[i].at != g.arrivals[i-1].at+1 {
			t.Errorf("flit %d delivered at %d, want %d", i, g.arrivals[i].at, g.arrivals[i-1].at+1)
		}
	}
}

// TestVCHeadTiming: the 4-stage VC router delivers the head one cycle
// later than wormhole (VC allocation stage).
func TestVCHeadTiming(t *testing.T) {
	cfg := DefaultConfig(VirtualChannel)
	cfg.BufPerVC = 8 // the rig pushes blind; size for 5 in-flight flits
	g := newRig(cfg)
	pushAll(g, g.packet(5, 99), 0)
	g.run(20)
	if len(g.arrivals) != 5 {
		t.Fatalf("%d flits delivered, want 5", len(g.arrivals))
	}
	if g.arrivals[0].at != 6 {
		t.Errorf("head delivered at cycle %d, want 6 (4-stage pipeline)", g.arrivals[0].at)
	}
}

// TestSpecHeadTiming: the speculative router collapses VC and switch
// allocation into one stage, restoring wormhole's timing.
func TestSpecHeadTiming(t *testing.T) {
	cfg := DefaultConfig(SpeculativeVC)
	cfg.BufPerVC = 8
	g := newRig(cfg)
	pushAll(g, g.packet(5, 99), 0)
	g.run(20)
	if len(g.arrivals) != 5 {
		t.Fatalf("%d flits delivered, want 5", len(g.arrivals))
	}
	if g.arrivals[0].at != 5 {
		t.Errorf("head delivered at cycle %d, want 5 (3-stage speculative pipeline)", g.arrivals[0].at)
	}
}

// TestSingleCycleTiming: the unit-latency router forwards a flit the
// cycle after it is buffered.
func TestSingleCycleTiming(t *testing.T) {
	for _, kind := range []Kind{SingleCycleWormhole, SingleCycleVC} {
		cfg := DefaultConfig(kind)
		cfg.BufPerVC = 8 // credits for all five blind-pushed flits
		g := newRig(cfg)
		pushAll(g, g.packet(5, 99), 0)
		g.run(20)
		if len(g.arrivals) != 5 {
			t.Fatalf("%v: %d flits delivered, want 5", kind, len(g.arrivals))
		}
		if g.arrivals[0].at != 3 {
			t.Errorf("%v: head delivered at %d, want 3 (1 router cycle + wire)", kind, g.arrivals[0].at)
		}
	}
}

// TestVCIDRewrittenOnDeparture: the switch-traversal stage must update
// the flit's vcid field to the allocated output VC (Section 3.1).
func TestVCIDRewrittenOnDeparture(t *testing.T) {
	cfg := DefaultConfig(VirtualChannel)
	cfg.BufPerVC = 8
	g := newRig(cfg)
	pushAll(g, g.packet(5, 99), 0)
	g.run(20)
	for _, a := range g.arrivals {
		if a.f.VC < 0 || int(a.f.VC) >= cfg.VCs {
			t.Fatalf("departing flit carries vcid %d outside [0,%d)", a.f.VC, cfg.VCs)
		}
	}
}

// TestEjection: packets routed to the local port leave through the
// eject callback with Ejected counts maintained.
func TestEjection(t *testing.T) {
	g := newRig(DefaultConfig(SpeculativeVC)) // ejection needs no credits
	p := g.packet(5, 0)                       // dst 0 → local port
	pushAll(g, p, 0)
	g.run(20)
	if len(g.ejected) != 5 {
		t.Fatalf("%d flits ejected, want 5", len(g.ejected))
	}
	if !p.Done() {
		t.Error("packet not marked done after full ejection")
	}
	if p.EjectedAt != g.ejected[4].at {
		t.Errorf("EjectedAt %d, want %d", p.EjectedAt, g.ejected[4].at)
	}
}

// TestTailReleasesOutputVC: after the tail departs, the allocated output
// VC must be free for the next packet.
func TestTailReleasesOutputVC(t *testing.T) {
	cfg := DefaultConfig(VirtualChannel)
	cfg.BufPerVC = 8
	g := newRig(cfg)
	pushAll(g, g.packet(3, 99), 0)
	g.run(20)
	for w := 0; w < 2; w++ {
		if g.r.OutVCBusy(1, w) {
			t.Errorf("output VC %d still busy after tail departed", w)
		}
	}
	// Input VC returns to idle.
	if st := g.r.in[0].vcs[0].state; st != vcIdle {
		t.Errorf("input VC state %v after packet, want idle", st)
	}
}

// TestCreditsDecrementAndRecover: credits are consumed as flits are
// granted and restored when the downstream returns them.
func TestCreditsDecrementAndRecover(t *testing.T) {
	cfg := DefaultConfig(SpeculativeVC) // 2 VCs × 4 buffers
	g := newRig(cfg)
	pushAll(g, g.packet(3, 99), 0)
	g.run(20)
	// All 3 flits departed on some VC; its credits must show 4-3=1.
	vcUsed := int(g.arrivals[0].f.VC)
	if got := g.r.Credits(1, vcUsed); got != cfg.BufPerVC-3 {
		t.Fatalf("credits after 3 departures = %d, want %d", got, cfg.BufPerVC-3)
	}
	// Downstream returns the credits.
	for i := 0; i < 3; i++ {
		g.outCred.Push(g.now, Credit{VC: int8(vcUsed)})
		g.step()
	}
	g.run(6) // credit propagation + processing pipeline
	if got := g.r.Credits(1, vcUsed); got != cfg.BufPerVC {
		t.Fatalf("credits after returns = %d, want %d", got, cfg.BufPerVC)
	}
}

// TestBackpressureStopsFlow: with zero credits remaining, flits must not
// depart until credits return. Pushes are paced so the rig never
// overruns the 2-slot input FIFO (the upstream source would be paced by
// its own credits the same way).
func TestBackpressureStopsFlow(t *testing.T) {
	cfg := DefaultConfig(SpeculativeVC)
	cfg.VCs = 1
	cfg.BufPerVC = 2
	g := newRig(cfg)
	p := g.packet(4, 99)
	fl := flit.NewPacketFlits(p)
	g.in.Push(0, fl[0])
	g.in.Push(1, fl[1])
	g.run(10) // both depart, consuming the 2 downstream credits
	g.in.Push(g.now, fl[2])
	g.in.Push(g.now+1, fl[3])
	g.run(15)
	if len(g.arrivals) != 2 {
		t.Fatalf("%d flits departed with 2 credits and no returns, want 2", len(g.arrivals))
	}
	// Return one credit: exactly one more flit departs.
	g.outCred.Push(g.now, Credit{VC: 0})
	g.run(10)
	if len(g.arrivals) != 3 {
		t.Fatalf("%d flits after one credit return, want 3", len(g.arrivals))
	}
}

// TestWormholePortHeldAgainstSecondPacket: while one packet holds an
// output port, another input's packet for the same port must wait until
// the tail departs.
func TestWormholePortHeldAgainstSecondPacket(t *testing.T) {
	cfg := DefaultConfig(Wormhole)
	cfg.BufPerVC = 16 // credits for both packets without returns
	g := newRig(cfg)
	// Second input port (west = 2) also routes to east; wire it up.
	in2 := link.NewWire[flit.Flit](1)
	cred2 := link.NewWire[Credit](1)
	g.r.ConnectInput(2, in2, cred2)

	p1 := g.packet(5, 99)
	pushAll(g, p1, 0)
	p2 := &flit.Packet{ID: 2, Src: 5, Dst: 99, Size: 5}
	fl2 := flit.NewPacketFlits(p2)
	for i, f := range fl2 {
		in2.Push(int64(i), f)
	}
	g.run(30)
	if len(g.arrivals) != 10 {
		t.Fatalf("%d flits delivered, want 10", len(g.arrivals))
	}
	// No interleaving: one packet's 5 flits fully precede the other's.
	first := g.arrivals[0].f.Pkt.ID
	for i := 0; i < 5; i++ {
		if g.arrivals[i].f.Pkt.ID != first {
			t.Fatalf("wormhole interleaved packets at position %d", i)
		}
	}
	// The second packet's head waits for the tail plus re-arbitration:
	// strictly after the first tail.
	if !(g.arrivals[5].at > g.arrivals[4].at) {
		t.Errorf("second head at %d not after first tail at %d", g.arrivals[5].at, g.arrivals[4].at)
	}
}

// TestVCRoutersInterleaveFlits: with two VCs, flits of two packets can
// interleave on the physical channel — the core benefit of VC flow
// control over wormhole.
func TestVCRoutersInterleaveFlits(t *testing.T) {
	cfg := DefaultConfig(VirtualChannel)
	cfg.BufPerVC = 8
	g := newRig(cfg)
	in2 := link.NewWire[flit.Flit](1)
	cred2 := link.NewWire[Credit](1)
	g.r.ConnectInput(2, in2, cred2)

	p1 := g.packet(5, 99)
	pushAll(g, p1, 0)
	p2 := &flit.Packet{ID: 2, Src: 5, Dst: 99, Size: 5}
	for i, f := range flit.NewPacketFlits(p2) {
		f.VC = 0
		in2.Push(int64(i), f)
	}
	g.run(30)
	if len(g.arrivals) != 10 {
		t.Fatalf("%d flits delivered, want 10", len(g.arrivals))
	}
	// Both packets should make progress concurrently: the first five
	// deliveries must not all belong to one packet.
	first := g.arrivals[0].f.Pkt.ID
	interleaved := false
	for i := 1; i < 5; i++ {
		if g.arrivals[i].f.Pkt.ID != first {
			interleaved = true
		}
	}
	if !interleaved {
		t.Error("VC router did not interleave two packets on the channel")
	}
}

// TestSpeculationWastedPassageHarmless: two heads arrive together and
// compete for the only free output VC; the speculation loser must not
// lose flits or credits, and both packets are delivered.
func TestSpeculationWastedPassageHarmless(t *testing.T) {
	cfg := DefaultConfig(SpeculativeVC)
	cfg.VCs = 1 // one VC → only one packet can win VC allocation
	cfg.BufPerVC = 8
	g := newRig(cfg)
	in2 := link.NewWire[flit.Flit](1)
	cred2 := link.NewWire[Credit](1)
	g.r.ConnectInput(2, in2, cred2)

	p1 := g.packet(3, 99)
	pushAll(g, p1, 0)
	p2 := &flit.Packet{ID: 2, Src: 5, Dst: 99, Size: 3}
	for i, f := range flit.NewPacketFlits(p2) {
		in2.Push(int64(i), f)
	}
	// Return credits for everything so the stream never stalls.
	for c := int64(0); c < 40; c++ {
		g.outCred.Push(c, Credit{VC: 0})
	}
	g.run(40)
	if len(g.arrivals) != 6 {
		t.Fatalf("%d flits delivered, want 6 (both packets)", len(g.arrivals))
	}
	// Strict per-packet flit ordering must hold.
	seq := map[int64]int{}
	for _, a := range g.arrivals {
		if a.f.Seq != seq[a.f.Pkt.ID] {
			t.Fatalf("packet %d flit out of order: got seq %d, want %d", a.f.Pkt.ID, a.f.Seq, seq[a.f.Pkt.ID])
		}
		seq[a.f.Pkt.ID]++
	}
}

// TestConfigValidation exercises the error paths.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: Wormhole, Ports: 1, VCs: 1, BufPerVC: 4},
		{Kind: Wormhole, Ports: 5, VCs: 2, BufPerVC: 4}, // WH needs 1 VC
		{Kind: VirtualChannel, Ports: 5, VCs: 0, BufPerVC: 4},
		{Kind: VirtualChannel, Ports: 5, VCs: 2, BufPerVC: 0},
		{Kind: VirtualChannel, Ports: 5, VCs: 2, BufPerVC: 4, CreditProcess: -2},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated but should not", cfg)
		}
	}
}

func TestCreditProcessDelayDefaults(t *testing.T) {
	cases := []struct {
		kind Kind
		want int
	}{
		{Wormhole, 1}, {VirtualChannel, 2}, {SpeculativeVC, 1},
		{SingleCycleWormhole, 0}, {SingleCycleVC, 0},
	}
	for _, c := range cases {
		if got := DefaultConfig(c.kind).CreditProcessDelay(); got != c.want {
			t.Errorf("%v: credit process delay %d, want %d", c.kind, got, c.want)
		}
	}
	cfg := DefaultConfig(VirtualChannel)
	cfg.CreditProcess = 3
	if cfg.CreditProcessDelay() != 3 {
		t.Error("explicit credit process delay not honored")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Wormhole, VirtualChannel, SpeculativeVC, SingleCycleWormhole, SingleCycleVC} {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", k)
		}
		if k.Stages() < 1 {
			t.Errorf("%v: %d stages", k, k.Stages())
		}
	}
}
