package sim

import (
	"errors"
	"strings"
	"testing"

	"routersim/internal/flit"
	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// spinPolicy never ejects: every head is routed out port 1 regardless
// of destination, so flits orbit the ring forever — a synthetic
// livelock for the progress watchdog to catch.
type spinPolicy struct{ mask uint64 }

func (p spinPolicy) Route(r *router.Router, pkt *flit.Packet, attempt int) (int, uint64) {
	return 1, p.mask
}

func spinConfig(t *testing.T) Config {
	t.Helper()
	ring, err := topology.NewCube(8, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	rc := router.DefaultConfig(router.VirtualChannel)
	rc.VCs = 2
	rc.BufPerVC = 4
	return Config{
		Net: network.Config{
			Topo:          ring,
			Router:        rc,
			InjectionRate: 0.02,
			Seed:          9,
		},
		WarmupCycles:   50,
		MeasurePackets: 10,
	}
}

// TestWatchdogAbortsLivelock installs the spin policy and expects the
// run to abort with a LivelockError carrying a diagnostic snapshot
// instead of spinning to the cycle cap.
func TestWatchdogAbortsLivelock(t *testing.T) {
	cfg := spinConfig(t)
	cfg.StallCycles = 400
	cfg.NetHook = func(n *network.Network) {
		for id := 0; id < n.Nodes(); id++ {
			n.Router(id).SetRoutingPolicy(spinPolicy{mask: topology.FullVCMask(2)})
		}
	}
	_, err := Run(cfg)
	var le *LivelockError
	if !errors.As(err, &le) {
		t.Fatalf("Run = %v, want LivelockError", err)
	}
	if le.Cycle-le.LastProgress <= le.Allowance {
		t.Errorf("fired at %d cycles stalled, allowance %d", le.Cycle-le.LastProgress, le.Allowance)
	}
	if le.Outstanding <= 0 {
		t.Errorf("Outstanding = %d, want > 0", le.Outstanding)
	}
	if !strings.Contains(le.Snapshot, "routers active") {
		t.Errorf("snapshot missing router census:\n%s", le.Snapshot)
	}
	if !strings.Contains(le.Error(), "no delivery progress") {
		t.Errorf("Error() = %q", le.Error())
	}
}

// TestWatchdogDisabled: a negative StallCycles turns the watchdog off —
// the same livelocked run then grinds to its cycle cap and comes back
// saturated rather than erroring.
func TestWatchdogDisabled(t *testing.T) {
	cfg := spinConfig(t)
	cfg.StallCycles = -1
	cfg.MaxCycles = 1500
	cfg.NetHook = func(n *network.Network) {
		for id := 0; id < n.Nodes(); id++ {
			n.Router(id).SetRoutingPolicy(spinPolicy{mask: topology.FullVCMask(2)})
		}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run with watchdog disabled = %v, want capped result", err)
	}
	if !res.Saturated {
		t.Error("livelocked run at its cap should report saturated")
	}
}

// TestWatchdogQuietOnHealthyRuns: the default allowance never trips on
// a healthy low-load run, including ones with long quiescent gaps
// between injections (the stall clock must reset across idle spans).
func TestWatchdogQuietOnHealthyRuns(t *testing.T) {
	cfg := lowLoadCfg(router.VirtualChannel, 4, 4)
	runLoad(t, cfg, 0.02) // fails the test if Run errors
}
