package sim

import (
	"math"
	"testing"

	"routersim/internal/network"
	"routersim/internal/router"
)

// lowLoadCfg builds a near-zero-load run used for zero-load latency
// measurements (paper Section 5.1). Small sample sizes keep unit tests
// fast — halved again under -short for the race-enabled CI loop; the
// latency bands hold at either scale. The experiment harness uses the
// paper's full protocol.
func lowLoadCfg(kind router.Kind, vcs, bufPerVC int) Config {
	rc := router.DefaultConfig(kind)
	rc.VCs = vcs
	rc.BufPerVC = bufPerVC
	cfg := Config{
		Net: network.Config{
			K:      8,
			Router: rc,
			Seed:   1,
		},
		WarmupCycles:   2000,
		MeasurePackets: 800,
	}
	if testing.Short() {
		cfg.WarmupCycles = 1200
		cfg.MeasurePackets = 400
	}
	return cfg
}

func runLoad(t *testing.T, cfg Config, loadFrac float64) Result {
	t.Helper()
	cfg.Net.InjectionRate = loadFrac * 0.5 / 5 // fraction of capacity → pkts/node/cycle
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatalf("unexpected saturation at load %.2f: %+v", loadFrac, res)
	}
	return res
}

// TestZeroLoadLatencies reproduces the zero-load latency comparison of
// Figures 13 and 14: wormhole ≈ 29 cycles, non-speculative VC ≈ 35–36
// (one extra pipeline stage per hop), speculative VC ≈ 29–30 (back to
// wormhole latency), and the single-cycle model ≈ 16. Tolerances allow
// for second-order credit-loop effects.
func TestZeroLoadLatencies(t *testing.T) {
	cases := []struct {
		name     string
		kind     router.Kind
		vcs, buf int
		min, max float64
	}{
		{"wormhole 8buf", router.Wormhole, 1, 8, 28, 30.5},
		{"vc 2x8", router.VirtualChannel, 2, 8, 34.5, 37},
		{"specvc 2x8", router.SpeculativeVC, 2, 8, 28, 30.5},
		{"vc 2x4", router.VirtualChannel, 2, 4, 34.5, 40.5},
		{"specvc 2x4", router.SpeculativeVC, 2, 4, 28, 32.5},
		{"single-cycle wh", router.SingleCycleWormhole, 1, 8, 15, 17.5},
		{"single-cycle vc 2x4", router.SingleCycleVC, 2, 4, 15, 17.5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res := runLoad(t, lowLoadCfg(c.kind, c.vcs, c.buf), 0.05)
			got := res.Latency.MeanLatency
			if got < c.min || got > c.max {
				t.Errorf("zero-load latency %.2f cycles, want in [%.1f, %.1f]", got, c.min, c.max)
			}
		})
	}
}

// TestSpeculativeMatchesWormholeAtZeroLoad is the paper's headline
// latency claim: the speculative VC router has the same per-hop latency
// as a wormhole router, while the non-speculative VC router pays one
// extra cycle per hop (≈ 6.3 cycles over the average 5.33-hop path plus
// one more traversal).
func TestSpeculativeMatchesWormholeAtZeroLoad(t *testing.T) {
	wh := runLoad(t, lowLoadCfg(router.Wormhole, 1, 8), 0.05).Latency.MeanLatency
	spec := runLoad(t, lowLoadCfg(router.SpeculativeVC, 2, 8), 0.05).Latency.MeanLatency
	vc := runLoad(t, lowLoadCfg(router.VirtualChannel, 2, 8), 0.05).Latency.MeanLatency
	if math.Abs(spec-wh) > 1.0 {
		t.Errorf("spec VC zero-load %.2f vs wormhole %.2f: want equal within 1 cycle", spec, wh)
	}
	if vc-wh < 4.5 || vc-wh > 8.5 {
		t.Errorf("non-spec VC %.2f vs wormhole %.2f: want ≈ +6.3 cycles (one stage/hop)", vc, wh)
	}
}

// TestCreditTurnaround reproduces the buffer-turnaround times of
// Section 5.2 / Figure 16: 4 cycles for wormhole and speculative VC
// routers, 5 for the non-speculative VC router, 2 for single-cycle
// routers. The probe records the reuse interval of each buffer slot; the
// minimum over a congested run is the architectural turnaround.
func TestCreditTurnaround(t *testing.T) {
	cases := []struct {
		name string
		kind router.Kind
		vcs  int
		buf  int
		want int64
	}{
		{"wormhole", router.Wormhole, 1, 4, 4},
		{"vc", router.VirtualChannel, 2, 4, 5},
		{"specvc", router.SpeculativeVC, 2, 4, 4},
		{"single-cycle wh", router.SingleCycleWormhole, 1, 4, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := lowLoadCfg(c.kind, c.vcs, c.buf)
			cfg.Probe = true
			cfg.WarmupCycles = 500
			cfg.MeasurePackets = 500
			// Drive hard enough to back-pressure buffers.
			cfg.Net.InjectionRate = 0.9 * 0.5 / 5
			cfg.MaxCycles = 30000
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.MinTurnaround != c.want {
				t.Errorf("min buffer turnaround %d cycles, want %d", res.MinTurnaround, c.want)
			}
		})
	}
}

// TestCreditPropagationDelayTurnaround verifies the Figure 18 setup: a
// 4-cycle credit propagation delay stretches the speculative router's
// credit loop from 4 to 7 cycles, as the paper states.
func TestCreditPropagationDelayTurnaround(t *testing.T) {
	cfg := lowLoadCfg(router.SpeculativeVC, 2, 4)
	cfg.Probe = true
	cfg.WarmupCycles = 500
	cfg.MeasurePackets = 500
	cfg.Net.CreditDelay = 4
	cfg.Net.InjectionRate = 0.9 * 0.5 / 5
	cfg.MaxCycles = 30000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinTurnaround != 7 {
		t.Errorf("min turnaround with 4-cycle credit propagation = %d, want 7", res.MinTurnaround)
	}
}

// TestDeterminism: identical seeds must give bit-identical results.
func TestDeterminism(t *testing.T) {
	cfg := lowLoadCfg(router.SpeculativeVC, 2, 4)
	cfg.Net.InjectionRate = 0.4 * 0.5 / 5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency.MeanLatency != b.Latency.MeanLatency || a.Cycles != b.Cycles ||
		a.TaggedDone != b.TaggedDone {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	cfg.Net.Seed = 999
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Latency.MeanLatency == a.Latency.MeanLatency && c.Cycles == a.Cycles {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

// TestAllTaggedPacketsDelivered: below saturation every tagged packet
// must be received (flit conservation end to end).
func TestAllTaggedPacketsDelivered(t *testing.T) {
	for _, kind := range []router.Kind{router.Wormhole, router.VirtualChannel, router.SpeculativeVC} {
		cfg := lowLoadCfg(kind, 1, 8)
		if kind.UsesVCs() {
			cfg = lowLoadCfg(kind, 2, 4)
		}
		cfg.Net.InjectionRate = 0.3 * 0.5 / 5
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.TaggedDone != res.Tagged || res.Tagged != cfg.MeasurePackets {
			t.Errorf("%v: %d/%d tagged packets delivered", kind, res.TaggedDone, res.Tagged)
		}
		if res.Latency.Packets != res.TaggedDone {
			t.Errorf("%v: latency samples %d != delivered %d", kind, res.Latency.Packets, res.TaggedDone)
		}
	}
}

// TestAcceptedMatchesOfferedBelowSaturation: in steady state below
// saturation, accepted throughput equals offered load.
func TestAcceptedMatchesOfferedBelowSaturation(t *testing.T) {
	cfg := lowLoadCfg(router.SpeculativeVC, 2, 4)
	cfg.MeasurePackets = 3000
	res := runLoad(t, cfg, 0.3)
	if math.Abs(res.AcceptedLoad-0.3) > 0.03 {
		t.Errorf("accepted %.3f, offered 0.30", res.AcceptedLoad)
	}
}

// TestSaturationDetection: far beyond capacity the run must hit its
// cycle cap and be flagged saturated.
func TestSaturationDetection(t *testing.T) {
	cfg := lowLoadCfg(router.Wormhole, 1, 8)
	cfg.MeasurePackets = 2000
	cfg.Net.InjectionRate = 0.95 * 0.5 / 5
	cfg.MaxCycles = 20000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Errorf("wormhole at 95%% capacity should saturate: %+v", res)
	}
	if res.AcceptedLoad >= 0.9 {
		t.Errorf("accepted %.3f should be well below offered 0.95", res.AcceptedLoad)
	}
}

func TestSweepLoads(t *testing.T) {
	cfg := lowLoadCfg(router.SpeculativeVC, 2, 4)
	cfg.MeasurePackets = 400
	cfg.WarmupCycles = 1000
	pts, err := SweepLoads(cfg, []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Load != 0.1 || pts[1].Load != 0.3 {
		t.Fatalf("sweep points wrong: %+v", pts)
	}
	if pts[1].Result.Latency.MeanLatency < pts[0].Result.Latency.MeanLatency-1 {
		t.Errorf("latency should not decrease with load: %.2f then %.2f",
			pts[0].Result.Latency.MeanLatency, pts[1].Result.Latency.MeanLatency)
	}
}

func TestSaturationLoadHelper(t *testing.T) {
	mk := func(mean float64, sat bool) Result {
		var r Result
		r.Latency.MeanLatency = mean
		r.Latency.Packets = 1
		r.Saturated = sat
		return r
	}
	pts := []LoadPoint{
		{Load: 0.2, Result: mk(30, false)},
		{Load: 0.4, Result: mk(45, false)},
		{Load: 0.6, Result: mk(500, true)},
	}
	if sat := SaturationLoad(pts, 140); sat != 0.4 {
		t.Fatalf("saturation %v, want 0.4", sat)
	}
}
