package sim

import (
	"reflect"
	"testing"

	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/topology"
	"routersim/internal/trace"
	"routersim/internal/traffic"
)

// TestGoldenReplayConformance is the conformance tier's cross-engine
// contract: replaying one checked-in captured trace must produce a
// sim.Result that is reflect.DeepEqual across every engine variant —
// full-scan vs active-set scheduler, serial vs parallel stepper vs
// lookahead-sharded engine — and
// independent of the RNG seed (a replayed workload consumes no
// randomness: destinations, sizes, and injection cycles all come from
// the trace). Any divergence in any Result field (latency percentiles,
// accepted-throughput CI, cycle count, saturation flag) fails.
//
// The fixture was captured on a 4×4 mesh with a bursty sized workload,
// exercising the MMPP and bimodal-size paths end to end:
//
//	go run ./cmd/netsim -router spec-vc -k 4 -load 0.15 \
//	  -source mmpp:on=30,off=50 -sizes bimodal:small=1,large=9,p=0.1 \
//	  -warmup 150 -packets 150 -seed 5 \
//	  -record internal/sim/testdata/replay_fixture.jsonl
//
// The measurement protocol below matches the capture's, so the replay
// drains every tagged packet; the assertions pin that (a censored or
// saturated replay would mean the replayer lost events).
func TestGoldenReplayConformance(t *testing.T) {
	tr, err := trace.ReadFile("testdata/replay_fixture.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name     string
		fullScan bool
		workers  int
		shards   int
	}{
		{"fullscan-serial", true, 0, 0},
		{"active-serial", false, 0, 0},
		{"fullscan-parallel2", true, 2, 0},
		{"active-parallel4", false, 4, 0},
		{"sharded2", false, 0, 2},
		{"sharded4-parallel2", false, 2, 4},
	}
	var ref Result
	for i, v := range variants {
		topo, err := topology.New("mesh", 4)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Net: network.Config{
				K:      4,
				Topo:   topo,
				Router: router.DefaultConfig(router.SpeculativeVC),
				Source: traffic.SourceSpec{Kind: "trace", File: "testdata/replay_fixture.jsonl"},
				Replay: tr,
				// Each variant runs a different seed on purpose: replay
				// results must not depend on it.
				Seed:        1000 + uint64(i)*77,
				FullScan:    v.fullScan,
				StepWorkers: v.workers,
				Shards:      v.shards,
			},
			WarmupCycles:   150,
			MeasurePackets: 150,
			ExactLatency:   true,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if res.Latency.Packets == 0 || res.Latency.Censored > 0 || res.Saturated {
			t.Fatalf("%s: replay did not drain cleanly: %+v", v.name, res)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Errorf("%s: replay result diverges from %s:\n got %+v\nwant %+v",
				v.name, variants[0].name, res, ref)
		}
	}
}
