package sim

import (
	"testing"

	"routersim/internal/network"
	"routersim/internal/router"
)

// This file asserts the paper's qualitative claims as executable tests,
// complementing the per-figure experiments.

func sweepSat(t *testing.T, kind router.Kind, vcs, buf int, creditDelay int) float64 {
	t.Helper()
	rc := router.DefaultConfig(kind)
	rc.VCs = vcs
	rc.BufPerVC = buf
	cfg := Config{
		Net:            network.Config{K: 8, Router: rc, CreditDelay: creditDelay, Seed: 2},
		WarmupCycles:   3000,
		MeasurePackets: 2500,
	}
	loads := []float64{0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75}
	pts, err := SweepLoads(cfg, loads)
	if err != nil {
		t.Fatal(err)
	}
	return SaturationLoad(pts, 140)
}

// TestSpeculationGainDisappearsWithDeepBuffers is Figure 15's finding:
// with 8 buffers per VC the credit loop is covered and the speculative
// router no longer beats the non-speculative one on throughput, whereas
// with 4 buffers per VC (Figure 13) it does.
func TestSpeculationGainDisappearsWithDeepBuffers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	shallowVC := sweepSat(t, router.VirtualChannel, 2, 4, 1)
	shallowSpec := sweepSat(t, router.SpeculativeVC, 2, 4, 1)
	if shallowSpec <= shallowVC {
		t.Errorf("with shallow buffers speculation should add throughput: VC %.2f vs spec %.2f",
			shallowVC, shallowSpec)
	}
	deepVC := sweepSat(t, router.VirtualChannel, 4, 4, 1)
	deepSpec := sweepSat(t, router.SpeculativeVC, 4, 4, 1)
	if diff := deepSpec - deepVC; diff > 0.051 || diff < -0.051 {
		t.Errorf("with 16 buffers/port both VC routers should saturate together: VC %.2f vs spec %.2f",
			deepVC, deepSpec)
	}
}

// TestVirtualChannelsBeatWormhole is the paper's contradiction of
// Chien's conclusion: at equal buffer budgets, virtual-channel flow
// control delivers substantially more throughput than wormhole.
func TestVirtualChannelsBeatWormhole(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	wh := sweepSat(t, router.Wormhole, 1, 16, 1)
	vc := sweepSat(t, router.VirtualChannel, 2, 8, 1)
	spec := sweepSat(t, router.SpeculativeVC, 2, 8, 1)
	if vc <= wh {
		t.Errorf("VC (%.2f) should beat wormhole (%.2f) at 16 bufs/port", vc, wh)
	}
	if spec < vc {
		t.Errorf("speculative (%.2f) should be at least VC (%.2f)", spec, vc)
	}
	// The paper's headline: up to ~40% over wormhole. Allow a wide band
	// around it for the scaled protocol.
	if gain := (spec - wh) / wh; gain < 0.15 {
		t.Errorf("speculative gain over wormhole %.0f%%, expected substantial (paper ≈40%%)", 100*gain)
	}
}

// TestCreditDelayCostsThroughput is Figure 18 as a claim: stretching
// credit propagation 1→4 cycles costs the speculative router roughly
// the paper's 18% of saturation throughput.
func TestCreditDelayCostsThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	fast := sweepSat(t, router.SpeculativeVC, 2, 4, 1)
	slow := sweepSat(t, router.SpeculativeVC, 2, 4, 4)
	if slow >= fast {
		t.Fatalf("slow credits should cost throughput: %.2f vs %.2f", slow, fast)
	}
	if drop := (fast - slow) / fast; drop < 0.08 || drop > 0.35 {
		t.Errorf("throughput drop %.0f%% outside the expected band (paper ≈18%%)", 100*drop)
	}
}

// TestSingleCycleModelOverestimates is the Section 5.2 claim: the
// unit-latency model underestimates latency and overestimates
// throughput relative to the realistic pipeline.
func TestSingleCycleModelOverestimates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	idealSat := sweepSat(t, router.SingleCycleVC, 2, 4, 1)
	realSat := sweepSat(t, router.VirtualChannel, 2, 4, 1)
	if idealSat <= realSat {
		t.Errorf("single-cycle model should overestimate throughput: %.2f vs %.2f", idealSat, realSat)
	}
	ideal := runLoad(t, lowLoadCfg(router.SingleCycleVC, 2, 4), 0.05).Latency.MeanLatency
	real := runLoad(t, lowLoadCfg(router.VirtualChannel, 2, 4), 0.05).Latency.MeanLatency
	// Paper: 16 vs 36 cycles — a ~56% underestimate.
	if ideal > 0.6*real {
		t.Errorf("single-cycle zero-load %.1f should be far below pipelined %.1f", ideal, real)
	}
}
