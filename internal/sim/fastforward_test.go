package sim

import (
	"reflect"
	"testing"

	"routersim/internal/network"
	"routersim/internal/router"
)

// TestFastForwardResultIdentity: a measurement run over the active-set
// engine — including its quiescence fast-forward jumps — must report
// exactly the result of the full-scan engine stepping every cycle: same
// latencies, same throughput, same confidence intervals, same cycle
// count. The ultra-low load case spends most of its span fully
// quiescent, so the jump path really executes; the mid-load case pins
// the busy path.
func TestFastForwardResultIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		load float64 // fraction of capacity
	}{
		{"quiescent-heavy", 0.01},
		{"mid-load", 0.4},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Net: network.Config{
					K:      4,
					Router: router.DefaultConfig(router.SpeculativeVC),
					Seed:   5,
				},
				WarmupCycles:   3000,
				MeasurePackets: 150,
			}
			cfg.Net.InjectionRate = RateForLoad(tc.load, cfg.Net)
			active, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Net.FullScan = true
			full, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(active, full) {
				t.Fatalf("active-set result diverged from full scan:\nactive: %+v\nfull:   %+v", active, full)
			}
		})
	}
}

// TestFastForwardCITarget: the jump path must coexist with early
// CI-target termination — the shortened sample and its intervals are
// identical across engines.
func TestFastForwardCITarget(t *testing.T) {
	cfg := Config{
		Net: network.Config{
			K:      4,
			Router: router.DefaultConfig(router.VirtualChannel),
			Seed:   23,
		},
		WarmupCycles:   2000,
		MeasurePackets: 2000,
		CITarget:       0.1,
	}
	cfg.Net.InjectionRate = RateForLoad(0.15, cfg.Net)
	active, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net.FullScan = true
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(active, full) {
		t.Fatalf("CI-target run diverged:\nactive: %+v\nfull:   %+v", active, full)
	}
}

// TestFastForwardMaxCyclesBelowWarmup: an explicit MaxCycles below the
// warm-up bound must end the run on its exact cycle under both engines
// — the pre-measurement jump is clamped to the cap, not just to the
// warm-up boundary.
func TestFastForwardMaxCyclesBelowWarmup(t *testing.T) {
	cfg := Config{
		Net: network.Config{
			K:      4,
			Router: router.DefaultConfig(router.SpeculativeVC),
			Seed:   3,
		},
		WarmupCycles:   10000,
		MeasurePackets: 10,
		MaxCycles:      50,
	}
	cfg.Net.InjectionRate = 0.0001
	active, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Net.FullScan = true
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(active, full) {
		t.Fatalf("capped-below-warmup run diverged:\nactive: %+v\nfull:   %+v", active, full)
	}
	if active.Cycles != 50 {
		t.Fatalf("Cycles = %d, want exactly MaxCycles = 50", active.Cycles)
	}
}
