package sim

import (
	"math"
	"testing"

	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// TestCensoredCountAtSaturation: past saturation the cycle cap cuts off
// the slowest tagged packets; the result must carry exactly how many,
// and stay flagged saturated (the surviving latency sample is biased
// low, never a valid measurement).
func TestCensoredCountAtSaturation(t *testing.T) {
	cfg := lowLoadCfg(router.Wormhole, 1, 8)
	cfg.MeasurePackets = 2000
	cfg.Net.InjectionRate = 0.95 * 0.5 / 5
	// At 95% load tagged latencies run to thousands of cycles; a cap
	// shortly after the injection window guarantees the slowest tagged
	// packets are still in flight when the run is cut off.
	cfg.MaxCycles = cfg.WarmupCycles + 2500
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("95%% load should saturate: %+v", res)
	}
	if res.Latency.Censored != res.Tagged-res.TaggedDone {
		t.Errorf("censored %d != tagged %d - done %d", res.Latency.Censored, res.Tagged, res.TaggedDone)
	}
	if res.Latency.Censored <= 0 {
		t.Errorf("a capped saturated run must report censored packets: %+v", res)
	}
	if IsSaturated(res, 140) != true {
		t.Error("censored result must be saturated under the knee predicate")
	}
}

// TestNoCensoringBelowSaturation: a clean run reports zero censored
// packets and positive CI half-widths on both measured quantities.
func TestNoCensoringBelowSaturation(t *testing.T) {
	cfg := lowLoadCfg(router.SpeculativeVC, 2, 4)
	cfg.MeasurePackets = 2000
	res := runLoad(t, cfg, 0.3)
	if res.Latency.Censored != 0 {
		t.Errorf("clean run reports %d censored packets", res.Latency.Censored)
	}
	if res.Latency.MeanCI <= 0 {
		t.Errorf("no latency CI on a full sample: %+v", res.Latency)
	}
	if res.AcceptedCI <= 0 {
		t.Errorf("no throughput CI on a full window: %+v", res)
	}
	// The CI must be plausible: a tight band around a stable mean, not
	// wider than the mean itself.
	if res.Latency.MeanCI > res.Latency.MeanLatency {
		t.Errorf("latency CI ±%.1f wider than the mean %.1f", res.Latency.MeanCI, res.Latency.MeanLatency)
	}
}

// TestStreamingMatchesExact: on identical seeds the streaming
// accumulator must agree with the exact-sample path exactly on every
// run-level quantity and on mean/max, and within one log-histogram
// sub-bin (1/64 relative) on percentiles.
func TestStreamingMatchesExact(t *testing.T) {
	base := lowLoadCfg(router.SpeculativeVC, 2, 4)
	base.MeasurePackets = 1500
	base.Net.InjectionRate = 0.4 * 0.5 / 5

	exact := base
	exact.ExactLatency = true
	er, err := Run(exact)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(base) // streaming is the default
	if err != nil {
		t.Fatal(err)
	}

	if er.Cycles != sr.Cycles || er.Tagged != sr.Tagged || er.TaggedDone != sr.TaggedDone ||
		er.Saturated != sr.Saturated || er.AcceptedLoad != sr.AcceptedLoad {
		t.Fatalf("accumulator choice changed the simulation itself:\nexact  %+v\nstream %+v", er, sr)
	}
	if er.Latency.MeanLatency != sr.Latency.MeanLatency || er.Latency.MaxLatency != sr.Latency.MaxLatency ||
		er.Latency.Packets != sr.Latency.Packets || er.Latency.MeanCI != sr.Latency.MeanCI {
		t.Errorf("exact moments diverged:\nexact  %+v\nstream %+v", er.Latency, sr.Latency)
	}
	for _, c := range []struct {
		name     string
		ex, strm int64
	}{{"p50", er.Latency.P50, sr.Latency.P50}, {"p95", er.Latency.P95, sr.Latency.P95}} {
		tol := float64(c.ex)/64 + 1
		if math.Abs(float64(c.strm-c.ex)) > tol {
			t.Errorf("%s: streaming %d vs exact %d, want within %.1f", c.name, c.strm, c.ex, tol)
		}
	}
}

// TestDrainAllowanceScalesWithDiameter is the regression for the fixed
// 30,000-cycle drain cap: the allowance must never shrink below the
// legacy floor (the paper's 8×8-mesh runs stay cycle-identical) and
// must grow with topology diameter and packet size, so a long ring's
// slowest in-flight packets are not falsely labeled saturated.
func TestDrainAllowanceScalesWithDiameter(t *testing.T) {
	mk := func(spec string, packetSize, creditDelay int) network.Config {
		topo, err := topology.New(spec, 0)
		if err != nil {
			t.Fatal(err)
		}
		return network.Config{Topo: topo, PacketSize: packetSize, CreditDelay: creditDelay}
	}
	mesh8, err := topology.New("mesh:k=8", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := drainAllowance(network.Config{Topo: mesh8, PacketSize: 5, CreditDelay: 1}); got != 30000 {
		t.Errorf("8×8 mesh allowance %d, want the legacy 30000 (cycle-identical paper runs)", got)
	}
	ring256 := drainAllowance(mk("ring:256", 5, 1))
	if ring256 <= 30000 {
		t.Errorf("256-ring allowance %d should exceed the fixed 30000", ring256)
	}
	ring512 := drainAllowance(mk("ring:512", 5, 1))
	if ring512 != 2*ring256 {
		t.Errorf("doubling the diameter should double the allowance: %d vs %d", ring512, ring256)
	}
	big := drainAllowance(mk("ring:256", 32, 1))
	if big <= ring256 {
		t.Errorf("8× packet size should grow the allowance: %d vs %d", big, ring256)
	}
}

// TestHighDiameterRingDrainsClean: a sub-saturation run on a
// high-diameter ring must complete unsaturated with zero censoring
// under the derived cap (the configuration whose drain the fixed
// allowance under-budgeted as diameters grow).
func TestHighDiameterRingDrainsClean(t *testing.T) {
	topo, err := topology.New("ring:64", 0)
	if err != nil {
		t.Fatal(err)
	}
	rc := router.DefaultConfig(router.SpeculativeVC)
	cfg := Config{
		Net: network.Config{
			Topo:   topo,
			Router: rc,
			Seed:   1,
		},
		WarmupCycles:   1500,
		MeasurePackets: 300,
	}
	// 15% of ring capacity: below the dateline-limited knee.
	cfg.Net.InjectionRate = RateForLoad(0.15, cfg.Net)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.Latency.Censored != 0 {
		t.Fatalf("sub-saturation 64-ring falsely saturated: %+v", res)
	}
	if res.TaggedDone != cfg.MeasurePackets {
		t.Errorf("%d/%d tagged packets drained", res.TaggedDone, cfg.MeasurePackets)
	}
}

// TestRateForLoadMatchesTopology: the nil-Topo default must route
// through the same Cube.UniformCapacity as an explicit topology — one
// source of truth for the capacity bound, including the
// injection-bandwidth cap on small radices.
func TestRateForLoadMatchesTopology(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		implicit := RateForLoad(0.6, network.Config{K: k, PacketSize: 5})
		explicit := RateForLoad(0.6, network.Config{Topo: topology.NewMesh(k), PacketSize: 5})
		if implicit != explicit {
			t.Errorf("k=%d: nil-Topo rate %v != explicit mesh rate %v", k, implicit, explicit)
		}
	}
	// k=0 means the default 8×8 mesh (capacity 0.5): 0.5·0.5/5.
	if got := RateForLoad(0.5, network.Config{}); got != 0.5*0.5/5 {
		t.Errorf("default-mesh rate %v, want %v", got, 0.5*0.5/5)
	}
	// The injection-bandwidth cap: a 2×2 mesh's bisection bound (4/2)
	// exceeds the 1 flit/node/cycle a local port can inject; capacity
	// must be capped at 1.
	if got, want := RateForLoad(1, network.Config{K: 2, PacketSize: 5}), 1.0/5; got != want {
		t.Errorf("small-radix rate %v, want injection-capped %v", got, want)
	}
}

// TestCITargetEndsRunEarly: with a loose CI target a stable
// sub-saturation run must stop tagging before the full sample, stay
// unsaturated, and censor nothing — and the shortened sample must
// still measure the same latency as the full one within its own CI.
func TestCITargetEndsRunEarly(t *testing.T) {
	full := lowLoadCfg(router.SpeculativeVC, 2, 4)
	full.MeasurePackets = 6000
	full.Net.InjectionRate = 0.2 * 0.5 / 5
	fr, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}

	capped := full
	capped.CITarget = 0.05
	cr, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Tagged >= fr.Tagged {
		t.Fatalf("CI target did not shorten the sample: %d vs %d packets", cr.Tagged, fr.Tagged)
	}
	if cr.Saturated || cr.Latency.Censored != 0 {
		t.Fatalf("early-terminated run mislabeled: %+v", cr)
	}
	if cr.TaggedDone != cr.Tagged {
		t.Errorf("early stop left %d tagged packets unaccounted", cr.Tagged-cr.TaggedDone)
	}
	if cr.Cycles >= fr.Cycles {
		t.Errorf("early stop did not save cycles: %d vs %d", cr.Cycles, fr.Cycles)
	}
	// The shortened estimate must be consistent with the full run.
	tol := 3*cr.Latency.MeanCI + 1
	if math.Abs(cr.Latency.MeanLatency-fr.Latency.MeanLatency) > tol {
		t.Errorf("early estimate %.2f vs full %.2f: outside ±%.2f", cr.Latency.MeanLatency, fr.Latency.MeanLatency, tol)
	}
}
