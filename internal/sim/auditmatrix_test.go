package sim

import (
	"reflect"
	"testing"

	"routersim/internal/network"
	"routersim/internal/router"
)

// TestAuditEngineMatrix runs a live workload across the full engine
// identity matrix — full-scan vs active-set, serial vs parallel
// stepper, 1/2/4 shards — with the invariant auditor enabled at a
// small interval, and checks two contracts at once: no engine trips an
// invariant, and auditing is observationally free (every audited
// result equals the audit-off reference bit for bit).
func TestAuditEngineMatrix(t *testing.T) {
	variants := []struct {
		name     string
		fullScan bool
		workers  int
		shards   int
	}{
		{"fullscan-serial", true, 0, 0},
		{"active-serial", false, 0, 0},
		{"fullscan-parallel2", true, 2, 0},
		{"active-parallel4", false, 4, 0},
		{"sharded2", false, 0, 2},
		{"sharded4-parallel2", false, 2, 4},
	}
	base := func(audit int, v struct {
		name     string
		fullScan bool
		workers  int
		shards   int
	}) Config {
		return Config{
			Net: network.Config{
				K:             8,
				Router:        router.DefaultConfig(router.SpeculativeVC),
				InjectionRate: 0.4 * 0.5 / 5,
				Seed:          1,
				FullScan:      v.fullScan,
				StepWorkers:   v.workers,
				Shards:        v.shards,
				Audit:         audit,
			},
			WarmupCycles:   800,
			MeasurePackets: 300,
			ExactLatency:   true,
		}
	}
	ref, err := Run(base(0, variants[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(base(7, v)) // off-stride interval: deadlines land mid-burst
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, ref) {
				t.Errorf("audited result diverges from audit-off reference:\n got %+v\nwant %+v", res, ref)
			}
		})
	}
}
