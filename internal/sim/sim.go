// Package sim runs network simulations using the paper's measurement
// protocol (Section 5): a warm-up phase, a tagged sample of injected
// packets, and a drain phase that runs until every tagged packet has
// been received. Latency is measured from packet creation (including
// source queueing) to last-flit ejection.
//
// The measurement engine is statistically honest about the two failure
// modes of that protocol. At or past saturation the drain phase hits
// its cycle cap with tagged packets still in flight; those undrained
// packets are the *slowest* of the sample, so the surviving latencies
// are biased low — the result carries the censored count and consumers
// must treat censored summaries as saturated, not as valid latencies.
// Below saturation, consecutive latency samples are serially correlated
// (queue states persist), so confidence intervals come from batch
// means, not the dishonestly tight s/√n of raw samples.
package sim

import (
	"fmt"

	"routersim/internal/flit"
	"routersim/internal/network"
	"routersim/internal/pool"
	"routersim/internal/stats"
	"routersim/internal/topology"
	"routersim/internal/trace"
)

// ciBatches is the number of batch-means batches a full tagged sample
// is divided into; minStopBatches is the least number of completed
// batches before CITarget may end a run early (a variance estimate over
// fewer batches is too noisy to stop on).
const (
	ciBatches      = 20
	minStopBatches = 8
)

// Config parameterizes one simulation run.
type Config struct {
	Net network.Config
	// WarmupCycles precede measurement (paper: 10,000).
	WarmupCycles int64
	// MeasurePackets is the tagged sample size (paper: 100,000).
	MeasurePackets int
	// MaxCycles caps the run for loads beyond saturation; 0 derives a
	// cap from the offered load, sample size, and topology diameter.
	MaxCycles int64
	// ExactLatency stores every tagged latency sample for exact
	// percentiles — the paper-figure reproduction mode. The default
	// streams samples into a fixed-size log-binned histogram (mean and
	// max stay exact; percentiles carry ≤ 1.6% relative error), so a
	// matrix of thousands of jobs holds no per-sample memory.
	ExactLatency bool
	// CITarget, when > 0, ends the tagged sample early once the 95%
	// batch-means confidence half-width of mean latency falls to
	// CITarget × mean (e.g. 0.02 for ±2%). Sub-saturation runs that
	// converge early skip the rest of their sample; saturated runs
	// never converge and still run to their cycle cap.
	CITarget float64
	// Probe enables the buffer-turnaround probe on all routers.
	Probe bool
	// Record, when non-nil, captures every packet injection of the run
	// (warm-up included) into the recorder — the record half of the
	// trace record/replay workflow. The capture sees the exact workload,
	// so replaying it reproduces the run event for event.
	Record *trace.Recorder
	// StallCycles tunes the progress watchdog: with packets outstanding
	// but no flit ejected for this many consecutive cycles, the run
	// aborts with a LivelockError carrying a diagnostic snapshot
	// instead of spinning to the cycle cap. 0 derives the allowance
	// from the topology's drain budget (drainAllowance — generous for
	// any configuration that can drain at all); a negative value
	// disables the watchdog.
	StallCycles int64
	// NetHook, when non-nil, observes the freshly built network before
	// the run starts — a seam for tests to install custom routing
	// policies or inspect engine state. It must not retain the network
	// past the run.
	NetHook func(*network.Network)
}

// Result reports one simulation run. The json tags keep the harness's
// serialized payloads in one consistent snake_case schema.
type Result struct {
	// OfferedLoad is the offered load as a fraction of capacity.
	OfferedLoad float64 `json:"offered_load"`
	// AcceptedLoad is the measured ejection rate as a fraction of
	// capacity.
	AcceptedLoad float64 `json:"accepted_load"`
	// AcceptedCI is the 95% batch-means confidence half-width on
	// AcceptedLoad, as a fraction of capacity (0 when the measurement
	// window closed before enough batches completed).
	AcceptedCI float64 `json:"accepted_ci,omitempty"`
	// Latency summarizes tagged-packet latency in cycles. Its Censored
	// field counts tagged packets still undrained at the cycle cap:
	// when nonzero the latency columns are biased low (the undrained
	// packets are the slowest) and must be read as saturated, not as
	// valid latencies.
	Latency stats.Summary `json:"latency"`
	// Saturated is true when the run hit MaxCycles before every tagged
	// packet was received, or accepted throughput fell short of the
	// offered load — the network is past its saturation point.
	Saturated bool `json:"saturated"`
	// Cycles is the number of simulated cycles.
	Cycles int64 `json:"cycles"`
	// TaggedDone / Tagged count the sample packets received vs created.
	TaggedDone int `json:"tagged_done"`
	Tagged     int `json:"tagged"`
	// MinTurnaround is the smallest observed buffer-turnaround interval
	// (0 unless Config.Probe).
	MinTurnaround int64 `json:"min_turnaround"`
	// Unroutable counts packets dropped because fault injection left
	// their destination unreachable; DroppedFlits counts their flits.
	// Both are always zero on unfaulted configurations. Dropped tagged
	// packets retire from the sample without contributing a latency.
	Unroutable   int64 `json:"unroutable,omitempty"`
	DroppedFlits int64 `json:"dropped_flits,omitempty"`
}

// Runner executes simulations from one base configuration. It is the
// reusable execution core shared by Run, SweepLoads, and the experiment
// harness: construct once, then Run as many times as needed (each Run
// builds a fresh network, so a Runner is safe to reuse; distinct Runners
// are safe to drive concurrently).
type Runner struct {
	cfg Config
}

// NewRunner returns a Runner over a base configuration.
func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg} }

// Config returns the Runner's base configuration.
func (r *Runner) Config() Config { return r.cfg }

// drainAllowance is the post-injection drain budget in cycles. It
// scales with the topology's diameter and the packet length — the
// dominant terms of worst-case packet latency — with a wide congestion
// multiplier, and never drops below the legacy fixed 30,000 cycles:
// the floor keeps the paper's 8×8-mesh runs cycle-identical, while
// high-diameter topologies (long rings, high-n tori) get the slack
// their longest routes actually need instead of being falsely labeled
// saturated when a clean run simply drains slowly.
func drainAllowance(ncfg network.Config) int64 {
	const floor = 30000
	if ncfg.Topo == nil {
		return floor // Normalize always sets Topo; defensive only
	}
	// The packet-length term uses the workload's mean flit count when a
	// size distribution or trace replay makes it differ from PacketSize.
	pkt := int64(ncfg.PacketSize)
	if m := int64(ncfg.MeanFlitsPerPacket() + 0.999999); m > pkt {
		pkt = m
	}
	scaled := 64 * int64(ncfg.Topo.Diameter()) * (pkt + int64(ncfg.CreditDelay) + 8)
	if scaled < floor {
		return floor
	}
	return scaled
}

// LivelockError reports a progress-watchdog abort: packets were
// outstanding but no flit left the network for the full stall
// allowance. Snapshot is the network's diagnostic state at the abort —
// active routers, in-flight flit totals, per-VC credit state — the
// evidence a deadlock/livelock report needs.
type LivelockError struct {
	// Cycle is the cycle the watchdog fired on; LastProgress is the
	// last cycle a flit was ejected (-1: never).
	Cycle        int64
	LastProgress int64
	// Allowance is the stall allowance that expired.
	Allowance int64
	// Outstanding is the number of packets created but not retired.
	Outstanding int64
	// Snapshot is the network's diagnostic state at the abort.
	Snapshot string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf("sim: no delivery progress for %d cycles (cycle %d, last progress %d, %d packets outstanding) — livelock or deadlock; network state:\n%s",
		e.Cycle-e.LastProgress, e.Cycle, e.LastProgress, e.Outstanding, e.Snapshot)
}

// Run executes one simulation to completion.
func (r *Runner) Run() (Result, error) {
	cfg := r.cfg
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 10000
	}
	if cfg.MeasurePackets == 0 {
		cfg.MeasurePackets = 100000
	}
	net, err := network.New(cfg.Net)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	ncfg := net.Config()
	if cfg.NetHook != nil {
		cfg.NetHook(net)
	}
	stall := cfg.StallCycles
	if stall == 0 {
		stall = drainAllowance(ncfg)
	}

	capacity := net.Capacity()
	offeredFlits := ncfg.InjectionRate * ncfg.MeanFlitsPerPacket()
	offeredFrac := offeredFlits / capacity

	pktPerCycle := ncfg.InjectionRate * float64(net.Nodes())
	var window int64
	if pktPerCycle > 0 {
		window = int64(float64(cfg.MeasurePackets)/pktPerCycle) + 1
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		if pktPerCycle <= 0 {
			return Result{}, fmt.Errorf("sim: zero injection rate; nothing to measure")
		}
		// Time to inject the sample at the offered rate, plus a drain
		// allowance scaled to the topology's diameter and packet size;
		// beyond saturation the cap ends the run.
		maxCycles = cfg.WarmupCycles + 4*window + drainAllowance(ncfg)
	}

	var lat stats.Accumulator
	if cfg.ExactLatency {
		lat = &stats.Latency{}
	} else {
		lat = stats.NewStream()
	}
	latBatchSize := int64(cfg.MeasurePackets / ciBatches)
	if latBatchSize < 1 {
		latBatchSize = 1
	}
	// Throughput batches are time-based: one observation per slice of
	// the measurement window (each observation enters as a unit batch;
	// the accumulator collapses adjacent slices into longer batches as
	// a capped run measures far past the injection window, keeping the
	// batch count bounded and the interval honest).
	thBatchLen := window / ciBatches
	if thBatchLen < 64 {
		thBatchLen = 64
	}
	var (
		latBatch     = stats.NewBatchMeans(latBatchSize)
		thBatch      = stats.NewBatchMeans(1)
		th           = stats.NewThroughput(net.Nodes())
		turn         stats.Turnaround
		tagged       int
		taggedDone   int
		sampleTarget = cfg.MeasurePackets
		measuring    = false
	)
	if cfg.Probe {
		net.SetProbes(&turn)
	}

	// Watchdog state: createdPkts/donePkts track outstanding work (done
	// includes dropped-packet retirements) and lastProgress the last
	// cycle a flit left the network. All maintained inside the existing
	// callbacks — the network hot path pays nothing for the watchdog.
	var (
		createdPkts  int64
		donePkts     int64
		lastProgress int64 = -1
	)

	rec := cfg.Record
	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		createdPkts++
		if rec != nil {
			rec.Record(now, p.Src, p.Dst, p.Size, p.ID)
		}
		if measuring && tagged < sampleTarget {
			p.Tagged = true
			tagged++
		}
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		lastProgress = now
		th.Eject(now)
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		donePkts++
		lastProgress = now // dropped-packet drains eject no flits but are progress
		if p.Tagged {
			taggedDone++
			// A dropped (unroutable) packet retires the sample slot but
			// never arrived, so it contributes no latency observation.
			if !p.Dropped {
				lat.Add(p.Latency())
				latBatch.Add(float64(p.Latency()))
			}
		}
	}

	var (
		measureStart int64
		lastFlits    int64
		checkedAt    int
	)
	now := int64(0)
	for ; now < maxCycles; now++ {
		if now == cfg.WarmupCycles {
			measuring = true
			measureStart = now
			th.Open(now)
		}
		if stall > 0 && createdPkts == donePkts {
			// Nothing outstanding: the stall clock starts fresh. Updated
			// before the Step so a packet created this cycle — possibly
			// after a long quiescence fast-forward — measures its stall
			// from here, not from the last delivery before the gap.
			lastProgress = now - 1
		}
		net.Step(now)
		if stall > 0 && createdPkts > donePkts && now-lastProgress > stall {
			return Result{}, &LivelockError{
				Cycle:        now,
				LastProgress: lastProgress,
				Allowance:    stall,
				Outstanding:  createdPkts - donePkts,
				Snapshot:     net.DiagSnapshot(),
			}
		}
		if !measuring {
			// Quiescence fast-forward: with no flit in any buffer or on
			// any wire and every source parked, nothing can happen until
			// the next scheduled injection — jump straight to it. The
			// warm-up boundary caps the jump so measurement opens on its
			// exact cycle.
			if next := net.NextDue(now); next > now+1 {
				if next > cfg.WarmupCycles {
					next = cfg.WarmupCycles
				}
				if next > maxCycles {
					// An explicit MaxCycles below the warm-up bound
					// still ends the run on its exact cycle.
					next = maxCycles
				}
				now = next - 1
			}
			continue
		}
		if (now-measureStart+1)%thBatchLen == 0 {
			f := th.Flits()
			thBatch.Add(float64(f-lastFlits) / float64(net.Nodes()) / float64(thBatchLen))
			lastFlits = f
		}
		if cfg.CITarget > 0 && sampleTarget == cfg.MeasurePackets {
			if b := latBatch.Batches(); b >= minStopBatches && b != checkedAt {
				checkedAt = b
				if mean, half, ok := latBatch.CI(); ok && mean > 0 && half <= cfg.CITarget*mean {
					// Enough precision: stop tagging, drain what is in
					// flight, and report the shortened sample.
					sampleTarget = tagged
				}
			}
		}
		if tagged >= sampleTarget && taggedDone == tagged {
			now++
			break
		}
		if next := net.NextDue(now); next > now+1 {
			// Quiescence fast-forward through the measurement window.
			// The skipped cycles are observationally empty — no flit
			// moves, no packet completes, no latency sample lands — so
			// the only bookkeeping they would have done is the
			// throughput-batch observation at each crossed batch
			// boundary. Replay those verbatim: the first flushes
			// whatever flit delta accrued since the previous boundary,
			// the rest record exact zeros, just as stepping would.
			if next > maxCycles {
				next = maxCycles
			}
			c := now + 1
			if off := (c - measureStart + 1) % thBatchLen; off != 0 {
				c += thBatchLen - off
			}
			for ; c < next; c += thBatchLen {
				f := th.Flits()
				thBatch.Add(float64(f-lastFlits) / float64(net.Nodes()) / float64(thBatchLen))
				lastFlits = f
			}
			now = next - 1
		}
	}
	th.Close(now)

	res := Result{
		OfferedLoad:   offeredFrac,
		AcceptedLoad:  th.FlitsPerNodeCycle() / capacity,
		Cycles:        now,
		Tagged:        tagged,
		TaggedDone:    taggedDone,
		MinTurnaround: turn.Min(),
		Unroutable:    net.Unroutable(),
		DroppedFlits:  net.DroppedFlits(),
	}
	if _, half, ok := thBatch.CI(); ok {
		res.AcceptedCI = half / capacity
	}
	// Past saturation, accepted throughput plateaus below the offered
	// load (source queues grow without bound); tagged packets injected
	// early may still drain, so completion alone is not the criterion.
	res.Saturated = taggedDone < sampleTarget ||
		res.AcceptedLoad < res.OfferedLoad*0.95-0.005
	if lat.Count() > 0 {
		res.Latency = stats.Summary{
			MeanLatency: lat.Mean(),
			P50:         lat.Percentile(0.5),
			P95:         lat.Percentile(0.95),
			MaxLatency:  lat.Max(),
			Packets:     lat.Count(),
			Accepted:    th.FlitsPerNodeCycle(),
		}
		if _, half, ok := latBatch.CI(); ok {
			res.Latency.MeanCI = half
		}
	}
	// Censored counts the tagged packets the cycle cap cut off — the
	// slowest of the sample, so any latency summary alongside a nonzero
	// censored count is a lower bound, not a measurement.
	res.Latency.Censored = tagged - taggedDone
	return res, nil
}

// Run executes one simulation to completion. It is shorthand for
// NewRunner(cfg).Run().
func Run(cfg Config) (Result, error) { return NewRunner(cfg).Run() }

// LoadPoint is one point of a latency-throughput curve.
type LoadPoint struct {
	Load   float64 // offered, fraction of capacity
	Result Result
}

// SweepLoads runs one simulation per offered load (fraction of capacity)
// on a bounded worker pool and returns the points in input order. The
// base config's InjectionRate is overwritten per point. It is a thin
// wrapper over Runner + pool; the experiment harness generalizes the
// same shape to full scenario matrices.
func SweepLoads(base Config, loads []float64) ([]LoadPoint, error) {
	pts := make([]LoadPoint, len(loads))
	errs := make([]error, len(loads))
	pool.Run(len(loads), 0, func(i int) {
		cfg := base
		cfg.Net.InjectionRate = RateForLoad(loads[i], cfg.Net)
		res, err := NewRunner(cfg).Run()
		pts[i] = LoadPoint{Load: loads[i], Result: res}
		errs[i] = err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// RateForLoad converts a fraction of network capacity into the injection
// rate in packets/node/cycle, using the configured topology's uniform
// capacity. A nil Topo means the default k×k mesh: the same topology
// network.Config.Normalize will construct, so the capacity bound has a
// single source of truth (Cube.UniformCapacity, including its
// injection-bandwidth cap) that cannot drift from the network layer's.
func RateForLoad(frac float64, ncfg network.Config) float64 {
	size := ncfg.MeanFlitsPerPacket()
	if size == 0 {
		size = 5
	}
	topo := ncfg.Topo
	if topo == nil {
		k := ncfg.K
		if k == 0 {
			k = 8
		}
		mesh, err := topology.NewCube(k, 2, false)
		if err != nil {
			// An invalid radix is Normalize's error to report; any
			// finite capacity keeps the conversion well-defined until
			// the simulation rejects the config.
			mesh = topology.NewMesh(8)
		}
		topo = mesh
	}
	return frac * topo.UniformCapacity() / size
}

// IsSaturated reports whether a result should be treated as past
// saturation for knee-finding: the run hit its cycle cap or a
// throughput shortfall (Result.Saturated), measured no packets, or its
// mean latency exceeds latencyCap (the paper's plots clip at 140
// cycles). It is the shared saturation predicate of the grid-sweep
// knee (SaturationLoad) and the harness's adaptive bisection.
func IsSaturated(r Result, latencyCap float64) bool {
	return r.Saturated || r.Latency.Packets == 0 || r.Latency.MeanLatency > latencyCap
}

// SaturationLoad estimates the saturation point from a swept curve: the
// highest offered load whose run completed with mean latency below
// latencyCap (the paper's plots clip at 140 cycles). It returns the last
// load before the curve blows up, or 0 if the first point is already
// saturated.
func SaturationLoad(pts []LoadPoint, latencyCap float64) float64 {
	sat := 0.0
	for _, pt := range pts {
		if IsSaturated(pt.Result, latencyCap) {
			break
		}
		sat = pt.Load
	}
	return sat
}
