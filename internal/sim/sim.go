// Package sim runs network simulations using the paper's measurement
// protocol (Section 5): a warm-up phase, a tagged sample of injected
// packets, and a drain phase that runs until every tagged packet has
// been received. Latency is measured from packet creation (including
// source queueing) to last-flit ejection.
package sim

import (
	"fmt"
	"math"

	"routersim/internal/flit"
	"routersim/internal/network"
	"routersim/internal/pool"
	"routersim/internal/stats"
)

// Config parameterizes one simulation run.
type Config struct {
	Net network.Config
	// WarmupCycles precede measurement (paper: 10,000).
	WarmupCycles int64
	// MeasurePackets is the tagged sample size (paper: 100,000).
	MeasurePackets int
	// MaxCycles caps the run for loads beyond saturation; 0 derives a
	// cap from the offered load and sample size.
	MaxCycles int64
	// Probe enables the buffer-turnaround probe on all routers.
	Probe bool
}

// Result reports one simulation run. The json tags keep the harness's
// serialized payloads in one consistent snake_case schema.
type Result struct {
	// OfferedLoad is the offered load as a fraction of capacity.
	OfferedLoad float64 `json:"offered_load"`
	// AcceptedLoad is the measured ejection rate as a fraction of
	// capacity.
	AcceptedLoad float64 `json:"accepted_load"`
	// Latency summarizes tagged-packet latency in cycles.
	Latency stats.Summary `json:"latency"`
	// Saturated is true when the run hit MaxCycles before every tagged
	// packet was received — the network is past its saturation point.
	Saturated bool `json:"saturated"`
	// Cycles is the number of simulated cycles.
	Cycles int64 `json:"cycles"`
	// TaggedDone / Tagged count the sample packets received vs created.
	TaggedDone int `json:"tagged_done"`
	Tagged     int `json:"tagged"`
	// MinTurnaround is the smallest observed buffer-turnaround interval
	// (0 unless Config.Probe).
	MinTurnaround int64 `json:"min_turnaround"`
}

// Runner executes simulations from one base configuration. It is the
// reusable execution core shared by Run, SweepLoads, and the experiment
// harness: construct once, then Run as many times as needed (each Run
// builds a fresh network, so a Runner is safe to reuse; distinct Runners
// are safe to drive concurrently).
type Runner struct {
	cfg Config
}

// NewRunner returns a Runner over a base configuration.
func NewRunner(cfg Config) *Runner { return &Runner{cfg: cfg} }

// Config returns the Runner's base configuration.
func (r *Runner) Config() Config { return r.cfg }

// Run executes one simulation to completion.
func (r *Runner) Run() (Result, error) {
	cfg := r.cfg
	if cfg.WarmupCycles == 0 {
		cfg.WarmupCycles = 10000
	}
	if cfg.MeasurePackets == 0 {
		cfg.MeasurePackets = 100000
	}
	net, err := network.New(cfg.Net)
	if err != nil {
		return Result{}, err
	}
	defer net.Close()
	ncfg := net.Config()

	capacity := net.Capacity()
	offeredFlits := ncfg.InjectionRate * float64(ncfg.PacketSize)
	offeredFrac := offeredFlits / capacity

	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		// Time to inject the sample at the offered rate, with generous
		// drain allowance; beyond saturation the cap ends the run.
		pktPerCycle := ncfg.InjectionRate * float64(net.Nodes())
		if pktPerCycle <= 0 {
			return Result{}, fmt.Errorf("sim: zero injection rate; nothing to measure")
		}
		window := int64(float64(cfg.MeasurePackets)/pktPerCycle) + 1
		maxCycles = cfg.WarmupCycles + 4*window + 30000
	}

	var (
		lat        stats.Latency
		th         = stats.NewThroughput(net.Nodes())
		turn       stats.Turnaround
		tagged     int
		taggedDone int
		measuring  = false
	)
	if cfg.Probe {
		net.SetProbes(&turn)
	}

	net.OnPacketCreated = func(p *flit.Packet, now int64) {
		if measuring && tagged < cfg.MeasurePackets {
			p.Tagged = true
			tagged++
		}
	}
	net.OnFlitEjected = func(f flit.Flit, now int64) {
		th.Eject(now)
	}
	net.OnPacketDone = func(p *flit.Packet, now int64) {
		if p.Tagged {
			taggedDone++
			lat.Add(p.Latency())
		}
	}

	now := int64(0)
	for ; now < maxCycles; now++ {
		if now == cfg.WarmupCycles {
			measuring = true
			th.Open(now)
		}
		net.Step(now)
		if measuring && tagged == cfg.MeasurePackets && taggedDone == tagged {
			now++
			break
		}
	}
	th.Close(now)

	res := Result{
		OfferedLoad:   offeredFrac,
		AcceptedLoad:  th.FlitsPerNodeCycle() / capacity,
		Cycles:        now,
		Tagged:        tagged,
		TaggedDone:    taggedDone,
		MinTurnaround: turn.Min(),
	}
	// Past saturation, accepted throughput plateaus below the offered
	// load (source queues grow without bound); tagged packets injected
	// early may still drain, so completion alone is not the criterion.
	res.Saturated = taggedDone < cfg.MeasurePackets ||
		res.AcceptedLoad < res.OfferedLoad*0.95-0.005
	if lat.Count() > 0 {
		res.Latency = stats.Summary{
			MeanLatency: lat.Mean(),
			P50:         lat.Percentile(0.5),
			P95:         lat.Percentile(0.95),
			MaxLatency:  lat.Max(),
			Packets:     lat.Count(),
			Accepted:    th.FlitsPerNodeCycle(),
		}
	}
	return res, nil
}

// Run executes one simulation to completion. It is shorthand for
// NewRunner(cfg).Run().
func Run(cfg Config) (Result, error) { return NewRunner(cfg).Run() }

// LoadPoint is one point of a latency-throughput curve.
type LoadPoint struct {
	Load   float64 // offered, fraction of capacity
	Result Result
}

// SweepLoads runs one simulation per offered load (fraction of capacity)
// on a bounded worker pool and returns the points in input order. The
// base config's InjectionRate is overwritten per point. It is a thin
// wrapper over Runner + pool; the experiment harness generalizes the
// same shape to full scenario matrices.
func SweepLoads(base Config, loads []float64) ([]LoadPoint, error) {
	pts := make([]LoadPoint, len(loads))
	errs := make([]error, len(loads))
	pool.Run(len(loads), 0, func(i int) {
		cfg := base
		cfg.Net.InjectionRate = RateForLoad(loads[i], cfg.Net)
		res, err := NewRunner(cfg).Run()
		pts[i] = LoadPoint{Load: loads[i], Result: res}
		errs[i] = err
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// RateForLoad converts a fraction of network capacity into the injection
// rate in packets/node/cycle, using the configured topology's uniform
// capacity (k-ary n-cube mesh: 4/k flits/node/cycle, torus/ring: 8/k,
// hypercube: 2; a nil Topo means the default k×k mesh).
func RateForLoad(frac float64, ncfg network.Config) float64 {
	k := ncfg.K
	if k == 0 {
		k = 8
	}
	size := ncfg.PacketSize
	if size == 0 {
		size = 5
	}
	// Same bound as Cube.UniformCapacity, including the injection-
	// bandwidth cap, for the nil-Topo default mesh.
	capacity := math.Min(4.0/float64(k), 1)
	if ncfg.Topo != nil {
		capacity = ncfg.Topo.UniformCapacity()
	}
	return frac * capacity / float64(size)
}

// SaturationLoad estimates the saturation point from a swept curve: the
// highest offered load whose run completed with mean latency below
// latencyCap (the paper's plots clip at 140 cycles). It returns the last
// load before the curve blows up, or 0 if the first point is already
// saturated.
func SaturationLoad(pts []LoadPoint, latencyCap float64) float64 {
	sat := 0.0
	for _, pt := range pts {
		if pt.Result.Saturated || pt.Result.Latency.MeanLatency > latencyCap ||
			pt.Result.Latency.Packets == 0 {
			break
		}
		sat = pt.Load
	}
	return sat
}
