package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	s0, s1 := parent.Split(0), parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide %d times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split(3)
	b := New(9).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("split not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	// Chi-square-ish sanity: each bucket within 10% of expectation.
	want := draws / 10
	for v, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Errorf("bucket %d: %d draws, want ≈%d", v, c, want)
		}
	}
}

func TestIntnPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(13)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v, want ≈0.5", mean)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}
