// Package rng provides a small, fast, deterministic pseudo-random number
// generator for the simulator. Simulations must be exactly reproducible
// from a seed across runs and platforms, and each traffic source needs
// its own independent stream; rng supports both with splitmix64-seeded
// xoshiro-style state.
package rng

// RNG is a deterministic 64-bit PRNG (xorshift64* with splitmix64
// seeding). The zero value is not valid; use New.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{state: splitmix64(seed + 0x9e3779b97f4a7c15)}
	if r.state == 0 {
		r.state = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent generator for stream i (e.g. one per
// traffic source), decorrelated from the parent via splitmix64.
func (r *RNG) Split(i uint64) *RNG {
	return New(splitmix64(r.state ^ (i+1)*0xbf58476d1ce4e5b9))
}

// Derive deterministically mixes a base seed with a stream index,
// producing an independent seed per stream. It is the pure-function form
// of Split for callers that need seeds (not generators), e.g. per-job
// seeds in an experiment matrix.
func Derive(seed, i uint64) uint64 {
	return splitmix64(splitmix64(seed+0x9e3779b97f4a7c15) ^ (i+1)*0xbf58476d1ce4e5b9)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling is overkill here;
	// modulo bias is negligible for the small n used by the simulator
	// (n ≤ number of network nodes), but reject to be exact anyway.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
