// Package pool provides a bounded worker pool for running n independent
// jobs indexed 0..n-1. Jobs write their results into caller-owned slices
// by index, so the output is deterministic regardless of the worker
// count or goroutine scheduling.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) once for every i in [0, n), using at most workers
// concurrent goroutines (workers <= 0 means GOMAXPROCS). It returns when
// every invocation has finished. fn must be safe to call concurrently
// for distinct indices.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Gang is a persistent pool of workers for running many small parallel
// phases without per-phase goroutine spawning — the engine under the
// network's parallel stepper, which dispatches two phases per simulated
// cycle. Jobs are claimed from a shared atomic counter, so which worker
// runs which index is scheduling-dependent; callers must make fn(i)
// write only state owned by index i, which is exactly the discipline
// that keeps the stepper deterministic.
type Gang struct {
	workers int
	work    chan gangPhase
	// next and wg are reused across phases (Run is not reentrant), so
	// dispatching a phase performs no heap allocation.
	next atomic.Int64
	wg   sync.WaitGroup
}

type gangPhase struct {
	n  int
	fn func(i int)
}

// NewGang starts a gang of the given size (<= 0 means GOMAXPROCS).
// Close must be called to release the workers.
func NewGang(workers int) *Gang {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	g := &Gang{workers: workers, work: make(chan gangPhase)}
	for w := 0; w < workers; w++ {
		go func() {
			for ph := range g.work {
				for {
					i := int(g.next.Add(1)) - 1
					if i >= ph.n {
						break
					}
					ph.fn(i)
				}
				g.wg.Done()
			}
		}()
	}
	return g
}

// Workers returns the gang size.
func (g *Gang) Workers() int { return g.workers }

// Run invokes fn(i) once for every i in [0, n) on the gang's workers and
// returns when all invocations have finished. It must not be called
// concurrently with itself.
func (g *Gang) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	g.next.Store(0)
	g.wg.Add(g.workers)
	ph := gangPhase{n: n, fn: fn}
	for w := 0; w < g.workers; w++ {
		g.work <- ph
	}
	g.wg.Wait()
}

// Close terminates the gang's workers. The gang must not be used after.
func (g *Gang) Close() { close(g.work) }
