// Package pool provides a bounded worker pool for running n independent
// jobs indexed 0..n-1. Jobs write their results into caller-owned slices
// by index, so the output is deterministic regardless of the worker
// count or goroutine scheduling.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run invokes fn(i) once for every i in [0, n), using at most workers
// concurrent goroutines (workers <= 0 means GOMAXPROCS). It returns when
// every invocation has finished. fn must be safe to call concurrently
// for distinct indices.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
