package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var counts [n]atomic.Int32
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	called := false
	Run(0, 4, func(i int) { called = true })
	if called {
		t.Error("fn called with n=0")
	}
}

func TestGangCoversEveryIndexOncePerPhase(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		g := NewGang(workers)
		const n, phases = 37, 50
		var counts [n]atomic.Int32
		for ph := 0; ph < phases; ph++ {
			g.Run(n, func(i int) { counts[i].Add(1) })
		}
		g.Close()
		for i := range counts {
			if c := counts[i].Load(); c != phases {
				t.Fatalf("workers=%d: index %d ran %d times over %d phases", workers, i, c, phases)
			}
		}
	}
}

func TestGangPhaseIsBarrier(t *testing.T) {
	// Everything written in phase k must be visible to phase k+1.
	g := NewGang(4)
	defer g.Close()
	const n = 64
	vals := make([]int, n)
	out := make([]int, n)
	g.Run(n, func(i int) { vals[i] = i * i })
	g.Run(n, func(i int) { out[i] = vals[i] + vals[(i+1)%n] })
	for i := 0; i < n; i++ {
		want := i*i + ((i+1)%n)*((i+1)%n)
		if out[i] != want {
			t.Fatalf("index %d = %d after two phases, want %d", i, out[i], want)
		}
	}
}

func TestGangZeroJobs(t *testing.T) {
	g := NewGang(2)
	defer g.Close()
	called := false
	g.Run(0, func(i int) { called = true })
	if called {
		t.Error("fn called with n=0")
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	Run(64, workers, func(i int) {
		if cur := inFlight.Add(1); cur > peak.Load() {
			peak.Store(cur)
		}
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, limit %d", p, workers)
	}
}
