package pool

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		const n = 100
		var counts [n]atomic.Int32
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	called := false
	Run(0, 4, func(i int) { called = true })
	if called {
		t.Error("fn called with n=0")
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	Run(64, workers, func(i int) {
		if cur := inFlight.Add(1); cur > peak.Load() {
			peak.Store(cur)
		}
		for j := 0; j < 1000; j++ {
			_ = j * j
		}
		inFlight.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent jobs, limit %d", p, workers)
	}
}
