package logicaleffort

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTau4IsFiveTau(t *testing.T) {
	// EQ 3 of the paper: an inverter driving four identical inverters
	// has delay g·h + p = 1·4 + 1 = 5τ.
	inv := Inverter(4)
	if got := inv.Delay(); got != 5 {
		t.Fatalf("inverter driving 4 inverters: got %vτ, want 5τ", got)
	}
	if Tau4 != 5 {
		t.Fatalf("Tau4 = %v, want 5", Tau4)
	}
}

func TestTauConversions(t *testing.T) {
	if got := TauToTau4(100); got != 20 {
		t.Errorf("TauToTau4(100) = %v, want 20", got)
	}
	if got := Tau4ToTau(20); got != 100 {
		t.Errorf("Tau4ToTau(20) = %v, want 100", got)
	}
	roundTrip := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return almostEqual(Tau4ToTau(TauToTau4(x)), x, 1e-9*math.Max(1, math.Abs(x)))
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Error(err)
	}
}

func TestPathDelayIsSumOfStageDelays(t *testing.T) {
	p := Path{Inverter(4), NAND(2, 3), NOR(2, 2), AOI(1)}
	var want float64
	for _, s := range p {
		want += s.Delay()
	}
	if got := p.Delay(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("path delay %v != sum of stages %v", got, want)
	}
	if got := p.EffortDelay() + p.ParasiticDelay(); !almostEqual(got, want, 1e-12) {
		t.Fatalf("T_eff+T_par = %v != %v", got, want)
	}
}

func TestGateEfforts(t *testing.T) {
	cases := []struct {
		s    Stage
		g, p float64
	}{
		{NAND(2, 1), 4.0 / 3, 2},
		{NAND(3, 1), 5.0 / 3, 3},
		{NOR(2, 1), 5.0 / 3, 2},
		{NOR(3, 1), 7.0 / 3, 3},
		{Inverter(1), 1, 1},
	}
	for _, c := range cases {
		if !almostEqual(c.s.G, c.g, 1e-12) || !almostEqual(c.s.P, c.p, 1e-12) {
			t.Errorf("%s: g=%v p=%v, want g=%v p=%v", c.s.Name, c.s.G, c.s.P, c.g, c.p)
		}
	}
}

func TestLogsClampAtOne(t *testing.T) {
	for _, f := range []func(float64) float64{Log2, Log4, Log8} {
		if got := f(1); got != 0 {
			t.Errorf("log(1) = %v, want 0", got)
		}
		if got := f(0.5); got != 0 {
			t.Errorf("log(0.5) = %v, want clamped 0", got)
		}
	}
	if !almostEqual(Log2(8), 3, 1e-12) || !almostEqual(Log4(16), 2, 1e-12) || !almostEqual(Log8(64), 2, 1e-12) {
		t.Error("log bases wrong")
	}
}

func TestFanoutChainDelay(t *testing.T) {
	// Driving fanout 4 with fanout-of-4 stages is exactly one τ4.
	if got := FanoutChainDelay(4, 4); !almostEqual(got, 5, 1e-12) {
		t.Errorf("FanoutChainDelay(4,4) = %v, want 5", got)
	}
	// Driving 64 with fanout-of-8 stages: 2 stages of 9τ.
	if got := FanoutChainDelay(64, 8); !almostEqual(got, 18, 1e-12) {
		t.Errorf("FanoutChainDelay(64,8) = %v, want 18", got)
	}
	if got := FanoutChainDelay(1, 4); got != 0 {
		t.Errorf("unit fanout should be free, got %v", got)
	}
	// Monotone in fanout.
	prev := 0.0
	for f := 2.0; f < 1000; f *= 1.7 {
		d := FanoutChainDelay(f, 4)
		if d < prev {
			t.Fatalf("fanout chain delay not monotone at f=%v", f)
		}
		prev = d
	}
}

func TestMatrixArbiterLatencyGrowth(t *testing.T) {
	// The arbiter latency must grow logarithmically: doubling n adds a
	// bounded increment, and latency is monotone in n.
	prev := MatrixArbiterLatency(2)
	for n := 4; n <= 256; n *= 2 {
		d := MatrixArbiterLatency(n)
		if d <= prev {
			t.Fatalf("arbiter latency not monotone at n=%d: %v <= %v", n, d, prev)
		}
		if d-prev > 25 {
			t.Fatalf("arbiter latency jump too large at n=%d: Δ=%v τ", n, d-prev)
		}
		prev = d
	}
	if got := MatrixArbiterLatency(1); got <= 0 {
		t.Errorf("1:1 arbiter should still have driver delay, got %v", got)
	}
}

func TestMatrixArbiterVsClosedForm(t *testing.T) {
	// Cross-check the gate-level composition against the paper's closed
	// form for the matrix-arbiter-based switch arbiter,
	// t_SB(n) = 21.5·log4(n) + 14 1/12 (τ). The gate composition is an
	// estimate, not the calibrated model; require agreement within 25%
	// over the realistic arbiter sizes (Table 1 validates the closed
	// form itself).
	for _, n := range []int{4, 5, 8, 10, 16, 32} {
		closed := 21.5*Log4(float64(n)) + 14.0 + 1.0/12.0
		gates := MatrixArbiterLatency(n)
		ratio := gates / closed
		if ratio < 0.75 || ratio > 1.25 {
			t.Errorf("n=%d: gate-level %.1fτ vs closed form %.1fτ (ratio %.2f) outside [0.6,1.4]",
				n, gates, closed, ratio)
		}
	}
}

func TestCrossbarLatencyVsClosedForm(t *testing.T) {
	// Same cross-check for the crossbar: closed form
	// 9·log8(wp/2) + 6·log2(p) + 9 (τ).
	for _, c := range []struct{ p, w int }{{5, 32}, {7, 32}, {5, 64}, {9, 16}} {
		closed := 9*Log8(float64(c.w*c.p)/2) + 6*Log2(float64(c.p)) + 9
		gates := CrossbarLatency(c.p, c.w)
		ratio := gates / closed
		if ratio < 0.5 || ratio > 1.6 {
			t.Errorf("p=%d w=%d: gate-level %.1fτ vs closed form %.1fτ (ratio %.2f)",
				c.p, c.w, gates, closed, ratio)
		}
	}
}

func TestNANDTreeDelay(t *testing.T) {
	if NANDTreeDelay(1) != 0 {
		t.Error("1-input tree should be free")
	}
	if NANDTreeDelay(2) <= 0 {
		t.Error("2-input tree must cost a gate")
	}
	// Tree depth grows with log2(n): delay(n²) ≈ 2·delay(n) for powers of two.
	d4, d16 := NANDTreeDelay(4), NANDTreeDelay(16)
	if !almostEqual(d16, 2*d4, 1e-9) {
		t.Errorf("NANDTreeDelay(16)=%v, want 2×NANDTreeDelay(4)=%v", d16, 2*d4)
	}
}

func TestArbiterOverheadProperties(t *testing.T) {
	if MatrixArbiterOverhead(1) != 0 {
		t.Error("no update needed for a single requestor")
	}
	// Overhead should be within a small factor of the paper's h = 9τ
	// for realistic arbiter sizes.
	for _, n := range []int{4, 5, 8, 10} {
		h := MatrixArbiterOverhead(n)
		if h < 3 || h > 20 {
			t.Errorf("n=%d: overhead %.1fτ implausible vs paper's 9τ", n, h)
		}
	}
}
