package logicaleffort

// This file contains a gate-level composition of the n:1 matrix arbiter
// sketched in Figure 10 of the paper, built from the primitive stages in
// this package. It is a cross-check for the closed-form Table 1
// equations carried by internal/core: the paper derived its closed forms
// from designs of this shape (EQ 4–6); we reproduce the structure and
// verify that both agree in growth rate and magnitude.

// MatrixArbiterLatency estimates, in τ, the request→grant latency of an
// n:1 matrix arbiter along the critical path of EQ 5 / Figure 10:
//
//   - the resource status latch fans out to the n request-qualification
//     circuits (buffered fanout-of-4 chain),
//   - a 2-input NAND qualifies each request with the status,
//   - the qualified request fans out to the n grant circuits,
//   - an AOI gate combines the matrix priority bit with each competing
//     request,
//   - a NAND/NOR tree of width n reduces "no higher-priority requestor"
//     to a single grant signal,
//   - the grant is driven out through an inverter.
func MatrixArbiterLatency(n int) float64 {
	if n <= 1 {
		// A single requestor is granted combinationally.
		return Inverter(1).Delay()
	}
	d := FanoutChainDelay(float64(n), 4) // status fanout to n request circuits
	d += NAND(2, 2).Delay()              // request qualification
	d += FanoutChainDelay(float64(n), 4) // request fanout to n grant circuits
	d += AOI(2).Delay()                  // priority compare
	d += NANDTreeDelay(n)                // grant reduction tree
	d += Inverter(4).Delay()             // grant driver
	return d
}

// MatrixArbiterOverhead estimates, in τ, the arbiter overhead h: the
// delay to update the matrix priority flip-flops after a grant (winner
// demoted to lowest priority) before the next set of requests can be
// arbitrated. The grant fans out to the n priority-update circuits; the
// update itself is a NOR pair into the flip-flop inputs. The paper's
// closed forms use h = 9τ for matrix-arbiter based modules.
func MatrixArbiterOverhead(n int) float64 {
	if n <= 1 {
		return 0
	}
	d := FanoutChainDelay(float64(n), 4) // grant fanout to update circuits
	d += NOR(2, 1).Delay()               // priority update gating
	return d
}

// CrossbarLatency estimates, in τ, the select→output latency of a p-port
// crossbar with w-bit ports (Figure 9): the select signal is buffered
// through a fanout-of-8 chain to the w bit-slice multiplexers of its
// output port, then passes through a log2(p)-deep tree of 2:1
// multiplexers.
func CrossbarLatency(p, w int) float64 {
	if p <= 0 || w <= 0 {
		return 0
	}
	d := FanoutChainDelay(float64(w*p)/2, 8) // select fanout to bit slices
	levels := int(Log2(float64(p)) + 0.999999)
	for i := 0; i < levels; i++ {
		d += Mux2(1).Delay()
	}
	return d
}
