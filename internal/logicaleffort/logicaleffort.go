// Package logicaleffort implements the method of logical effort used by
// the Peh–Dally router delay model (HPCA 2001, Section 3.2, EQ 2–3).
//
// All delays are expressed in units of τ, the delay of an inverter
// driving an identical inverter. The delay of a path is
//
//	T = T_eff + T_par = Σ g_i·h_i + Σ p_i
//
// where g is the logical effort of a stage (ratio of the gate's delay to
// that of an inverter with identical input capacitance), h the electrical
// effort (fanout), and p the parasitic delay (intrinsic delay relative to
// an inverter). The paper grounds its model in τ4, the delay of an
// inverter driving four identical inverters: τ4 = (1·4 + 1)τ = 5τ.
package logicaleffort

import "math"

// Tau4 is the delay, in τ, of an inverter driving four identical
// inverters (EQ 3 of the paper): g·h + p = 1·4 + 1 = 5.
const Tau4 = 5.0

// TauToTau4 converts a delay in τ to τ4 units.
func TauToTau4(tau float64) float64 { return tau / Tau4 }

// Tau4ToTau converts a delay in τ4 units to τ.
func Tau4ToTau(tau4 float64) float64 { return tau4 * Tau4 }

// Stage is one logic stage on a path: a gate with logical effort G and
// parasitic delay P, driving an electrical effort (fanout) H.
type Stage struct {
	Name string  // optional label for diagnostics
	G    float64 // logical effort
	H    float64 // electrical effort (fanout)
	P    float64 // parasitic delay
}

// Delay returns the stage delay g·h + p in τ.
func (s Stage) Delay() float64 { return s.G*s.H + s.P }

// Path is an ordered sequence of logic stages.
type Path []Stage

// EffortDelay returns Σ g_i·h_i in τ.
func (p Path) EffortDelay() float64 {
	var t float64
	for _, s := range p {
		t += s.G * s.H
	}
	return t
}

// ParasiticDelay returns Σ p_i in τ.
func (p Path) ParasiticDelay() float64 {
	var t float64
	for _, s := range p {
		t += s.P
	}
	return t
}

// Delay returns the total path delay T = T_eff + T_par in τ (EQ 2).
func (p Path) Delay() float64 { return p.EffortDelay() + p.ParasiticDelay() }

// Inverter returns an inverter stage driving fanout h.
func Inverter(h float64) Stage { return Stage{Name: "inv", G: 1, H: h, P: 1} }

// NAND returns an n-input static CMOS NAND driving fanout h.
// Logical effort (n+2)/3, parasitic n (Sutherland–Sproull).
func NAND(n int, h float64) Stage {
	return Stage{Name: "nand", G: float64(n+2) / 3, H: h, P: float64(n)}
}

// NOR returns an n-input static CMOS NOR driving fanout h.
// Logical effort (2n+1)/3, parasitic n.
func NOR(n int, h float64) Stage {
	return Stage{Name: "nor", G: float64(2*n+1) / 3, H: h, P: float64(n)}
}

// AOI returns a 2-wide AND-OR-INVERT gate stage driving fanout h, the
// gate the paper uses in the matrix-arbiter grant circuit. Logical
// effort 2, parasitic 4 (symmetric 2-2 AOI).
func AOI(h float64) Stage { return Stage{Name: "aoi", G: 2, H: h, P: 4} }

// Mux2 returns a 2:1 select multiplexer stage driving fanout h.
// Logical effort 2, parasitic 4 (transmission-gate mux with buffer).
func Mux2(h float64) Stage { return Stage{Name: "mux2", G: 2, H: h, P: 4} }

// Log2, Log4 and Log8 are real-valued logarithms used throughout the
// parametric delay equations. By convention in the model they are never
// negative: arguments ≤ 1 yield 0 (a 1-input "tree" has no stages).
func Log2(x float64) float64 { return logClamped(x, 2) }

// Log4 returns max(0, log base 4 of x).
func Log4(x float64) float64 { return logClamped(x, 4) }

// Log8 returns max(0, log base 8 of x).
func Log8(x float64) float64 { return logClamped(x, 8) }

func logClamped(x, base float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x) / math.Log(base)
}

// FanoutChainDelay returns the delay, in τ, of an optimally staged
// inverter chain driving a total fanout of f with a per-stage fanout of
// stageFanout. Each stage has delay stageFanout+1 (g=1 inverter); the
// number of stages is log_stageFanout(f). Fractional stage counts model
// the continuous approximation used by the paper (e.g. 9·log8(F) for
// fanout-of-8 buffering, 5·log4(F) for fanout-of-4 buffering).
func FanoutChainDelay(f, stageFanout float64) float64 {
	if f <= 1 {
		return 0
	}
	stages := math.Log(f) / math.Log(stageFanout)
	return stages * (stageFanout + 1)
}

// NANDTreeDelay returns the delay, in τ, of a balanced tree of 2-input
// NAND/NOR pairs reducing n inputs to one output, each stage driving a
// fanout of 1 internally. Used to estimate wide AND/OR reductions such
// as the "any request" and "no higher-priority request" terms in
// arbiters.
func NANDTreeDelay(n int) float64 {
	if n <= 1 {
		return 0
	}
	levels := math.Ceil(math.Log2(float64(n)))
	var d float64
	for i := 0; i < int(levels); i++ {
		if i%2 == 0 {
			d += NAND(2, 1).Delay()
		} else {
			d += NOR(2, 1).Delay()
		}
	}
	return d
}
