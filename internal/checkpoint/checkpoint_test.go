package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestKeyLengthPrefixed(t *testing.T) {
	a := Key([]byte("ab"), []byte("c"))
	b := Key([]byte("a"), []byte("bc"))
	if a == b {
		t.Fatal("Key must length-prefix parts: (ab,c) and (a,bc) collide")
	}
	if Key([]byte("ab"), []byte("c")) != a {
		t.Fatal("Key is not deterministic")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xA5}, 4096)} {
		got, err := Decode(Encode(payload))
		if err != nil {
			t.Fatalf("Decode(Encode(%d bytes)): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip lost data: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode([]byte("the quick brown fox"))
	cases := map[string][]byte{
		"empty":     {},
		"short":     valid[:headerSize-1],
		"truncated": valid[:len(valid)-3],
		"extended":  append(append([]byte{}, valid...), 0),
		"bad magic": append([]byte("JUNK"), valid[4:]...),
	}
	flip := append([]byte{}, valid...)
	flip[len(flip)-1] ^= 0x01
	cases["bit flip in payload"] = flip
	wrongVer := append([]byte{}, valid...)
	binary.BigEndian.PutUint16(wrongVer[4:], Version+1)
	cases["wrong version"] = wrongVer

	for name, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestStorePutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("job"))
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get on empty store = ok=%v err=%v, want miss", ok, err)
	}
	if err := s.Put(key, []byte("result")); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || string(got) != "result" {
		t.Fatalf("Get = %q ok=%v err=%v, want result", got, ok, err)
	}
	// Overwrite wins.
	if err := s.Put(key, []byte("result2")); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get(key); string(got) != "result2" {
		t.Fatalf("Get after overwrite = %q, want result2", got)
	}
	if n, err := s.Len(); n != 1 || err != nil {
		t.Fatalf("Len = %d, %v, want 1 entry", n, err)
	}
	// No temp droppings left behind.
	ents, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "tmp-") {
			t.Errorf("stray temp file %s after Put", e.Name())
		}
	}
}

// TestStoreQuarantinesCorruption: a corrupted entry is a miss, the bad
// file is renamed aside, and a subsequent Put repairs the slot.
func TestStoreQuarantinesCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("job"))
	if err := s.Put(key, []byte("result")); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit on disk.
	b, err := os.ReadFile(s.path(key))
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x80
	if err := os.WriteFile(s.path(key), b, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get of corrupt entry = ok=%v err=%v, want quiet miss", ok, err)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
	if _, err := os.Stat(s.path(key) + QuarantineExt); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(s.path(key)); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}

	// The slot is writable again and the quarantined copy survives.
	if err := s.Put(key, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	got, ok, _ := s.Get(key)
	if !ok || string(got) != "fresh" {
		t.Fatalf("Get after repair = %q ok=%v, want fresh", got, ok)
	}
	if _, err := os.Stat(s.path(key) + QuarantineExt); err != nil {
		t.Fatalf("quarantined copy removed by repair: %v", err)
	}
}

// TestStoreTruncatedEntry covers the crash shape the temp+rename
// protocol prevents for writes but a failing disk can still produce:
// an entry file shorter than its header claims.
func TestStoreTruncatedEntry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("job"))
	if err := s.Put(key, bytes.Repeat([]byte("r"), 256)); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(s.path(key))
	if err := os.WriteFile(s.path(key), b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); ok || err != nil {
		t.Fatalf("Get of truncated entry = ok=%v err=%v, want quiet miss", ok, err)
	}
	if s.Quarantined() != 1 {
		t.Fatalf("Quarantined = %d, want 1", s.Quarantined())
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key([]byte("k")), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkStorePut measures the per-job checkpoint write cost — the
// price a resumable sweep pays per completed job (encode, checksum,
// temp file, fsync, rename) at a typical serialized-JobResult size.
func BenchmarkStorePut(b *testing.B) {
	store, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte(`{"index":1,"latency":34.42} `), 32) // ~900 B, a typical JobResult
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		var key [32]byte
		binary.BigEndian.PutUint64(key[:], uint64(i))
		if err := store.Put(key, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures the per-entry load cost on resume.
func BenchmarkStoreGet(b *testing.B) {
	store, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte(`{"index":1,"latency":34.42} `), 32)
	var key [32]byte
	if err := store.Put(key, payload); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		got, ok, err := store.Get(key)
		if err != nil || !ok || len(got) != len(payload) {
			b.Fatalf("Get: %v %v %d", err, ok, len(got))
		}
	}
}
