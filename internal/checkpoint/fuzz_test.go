package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the store-entry
// decoder. The invariants: Decode never panics, anything it accepts
// survives an Encode→Decode round trip bit-exactly, and re-framing an
// accepted payload reproduces the input (the format has exactly one
// encoding per payload). Seeds cover the valid shape plus every
// rejection path — truncation, bit flips, wrong version, bad magic.
func FuzzCheckpointDecode(f *testing.F) {
	valid := Encode([]byte(`{"index":3,"seed":12345,"result":{"latency":29.84}}`))
	f.Add(valid)
	f.Add(Encode(nil))
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid[:headerSize])
	f.Add(valid[:len(valid)-1])
	flip := append([]byte{}, valid...)
	flip[headerSize+4] ^= 0x10
	f.Add(flip)
	wrongVer := append([]byte{}, valid...)
	binary.BigEndian.PutUint16(wrongVer[len(magic):], Version+7)
	f.Add(wrongVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			return // malformed input must error, not panic — reaching here is the pass
		}
		if again, err := Decode(Encode(payload)); err != nil || !bytes.Equal(again, payload) {
			t.Fatalf("round trip not identity: err=%v", err)
		}
		if !bytes.Equal(Encode(payload), data) {
			t.Fatalf("accepted entry is not the canonical encoding of its payload")
		}
	})
}
