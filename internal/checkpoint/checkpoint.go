// Package checkpoint is a content-addressed on-disk result store: one
// file per entry, named by the hex of a caller-derived sha256 key. It
// backs the harness's crash-safe sweeps — each completed job is
// persisted as it finishes, and a restarted sweep loads the completed
// entries and recomputes only the remainder.
//
// Durability and integrity rules:
//
//   - Writes are atomic: the entry is written to a temp file in the
//     store directory, fsynced, and renamed into place. A crash (or
//     SIGKILL) mid-write leaves either the old entry or a stray temp
//     file, never a torn entry.
//   - Every entry carries a magic string, a format version, and a
//     sha256 checksum of its payload. Get verifies all three.
//   - Corruption is quarantined, never fatal: a truncated, bit-flipped,
//     or wrong-version entry is renamed aside (<name>.quarantined) and
//     reported as a miss, so resume recomputes that job.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

const (
	// magic identifies a routersim checkpoint entry ("RouterSim
	// ChecKpoint").
	magic = "RSCK"
	// Version is the current on-disk entry format version. Entries
	// with any other version are rejected (and quarantined by Get):
	// a version bump invalidates the store wholesale, which is the
	// safe default for a cache of engine outputs.
	Version = 1
	// headerSize is magic + uint16 version + uint32 payload length +
	// sha256 payload checksum.
	headerSize = len(magic) + 2 + 4 + sha256.Size
	// entryExt names complete entries; temp files use a different
	// prefix so a crash never leaves something Get would read.
	entryExt = ".ck"
	// QuarantineExt is appended to a corrupt entry's name when Get
	// sets it aside.
	QuarantineExt = ".quarantined"
)

// ErrCorrupt wraps every decode failure so callers can distinguish
// corruption from I/O errors with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt entry")

// Key hashes the given parts into a store key. Each part is
// length-prefixed before hashing, so ("ab","c") and ("a","bc") derive
// different keys.
func Key(parts ...[]byte) [sha256.Size]byte {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write(p)
	}
	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// Encode frames a payload as a store entry: magic, version, payload
// length, payload sha256, payload.
func Encode(payload []byte) []byte {
	b := make([]byte, 0, headerSize+len(payload))
	b = append(b, magic...)
	b = binary.BigEndian.AppendUint16(b, Version)
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	sum := sha256.Sum256(payload)
	b = append(b, sum[:]...)
	return append(b, payload...)
}

// Decode validates an entry's framing and checksum and returns its
// payload. Malformed input of any kind — truncation, bad magic, an
// unsupported version, a length mismatch, a checksum mismatch — yields
// an error wrapping ErrCorrupt; Decode never panics.
func Decode(b []byte) ([]byte, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(b), headerSize)
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:len(magic)])
	}
	off := len(magic)
	if v := binary.BigEndian.Uint16(b[off:]); v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	off += 2
	n := binary.BigEndian.Uint32(b[off:])
	off += 4
	if uint64(len(b)-headerSize) != uint64(n) {
		return nil, fmt.Errorf("%w: payload length %d, header says %d", ErrCorrupt, len(b)-headerSize, n)
	}
	var want [sha256.Size]byte
	copy(want[:], b[off:])
	payload := b[headerSize:]
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Store is a directory of checkpoint entries. It is safe for
// concurrent use by multiple goroutines of one process (every write is
// an independent temp-file+rename); concurrent writers of the same key
// converge on one of the (identical, content-addressed) values.
type Store struct {
	dir         string
	quarantined int
}

// Open creates the store directory if needed and returns a handle.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Quarantined returns how many corrupt entries this handle has set
// aside so far.
func (s *Store) Quarantined() int { return s.quarantined }

// path returns the entry file for a key.
func (s *Store) path(key [sha256.Size]byte) string {
	return filepath.Join(s.dir, hex.EncodeToString(key[:])+entryExt)
}

// Put atomically writes payload under key, replacing any prior entry.
func (s *Store) Put(key [sha256.Size]byte, payload []byte) error {
	f, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, werr := f.Write(Encode(payload))
	if werr == nil {
		// Flush to stable storage before the rename publishes the
		// entry: resume must never trust a name that points at
		// unwritten data.
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, s.path(key))
	}
	if werr != nil {
		os.Remove(tmp)
		return werr
	}
	return nil
}

// Get returns the payload stored under key. A missing entry is
// (nil, false, nil). A corrupt entry is quarantined — renamed to
// <name>.quarantined for inspection — and reported as a miss, so the
// caller recomputes; only real I/O failures return an error.
func (s *Store) Get(key [sha256.Size]byte) ([]byte, bool, error) {
	p := s.path(key)
	b, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	payload, err := Decode(b)
	if err != nil {
		os.Rename(p, p+QuarantineExt)
		s.quarantined++
		return nil, false, nil
	}
	return payload, true, nil
}

// Len reports how many complete entries the store currently holds
// (quarantined and temp files excluded).
func (s *Store) Len() (int, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == entryExt {
			n++
		}
	}
	return n, nil
}
