package flit

import "testing"

func TestNewPacketFlits(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dst: 5, Size: 5}
	fl := NewPacketFlits(p)
	if len(fl) != 5 {
		t.Fatalf("%d flits, want 5", len(fl))
	}
	if fl[0].Kind != Head || !fl[0].Kind.IsHead() {
		t.Error("first flit must be head")
	}
	for i := 1; i < 4; i++ {
		if fl[i].Kind != Body {
			t.Errorf("flit %d is %v, want body", i, fl[i].Kind)
		}
	}
	if fl[4].Kind != Tail || !fl[4].Kind.IsTail() {
		t.Error("last flit must be tail")
	}
	for i, f := range fl {
		if f.Seq != i || f.Pkt != p {
			t.Errorf("flit %d: seq=%d pkt=%p", i, f.Seq, f.Pkt)
		}
	}
}

func TestSingleFlitPacket(t *testing.T) {
	fl := NewPacketFlits(&Packet{Size: 1})
	if len(fl) != 1 || fl[0].Kind != HeadTail {
		t.Fatalf("single-flit packet: %v", fl)
	}
	if !fl[0].Kind.IsHead() || !fl[0].Kind.IsTail() {
		t.Error("headtail must be both head and tail")
	}
}

func TestTwoFlitPacket(t *testing.T) {
	// The paper's running example: one head flit and one tail flit.
	fl := NewPacketFlits(&Packet{Size: 2})
	if fl[0].Kind != Head || fl[1].Kind != Tail {
		t.Fatalf("two-flit packet kinds: %v %v", fl[0].Kind, fl[1].Kind)
	}
}

func TestPacketCompletion(t *testing.T) {
	p := &Packet{Size: 3, CreatedAt: 100}
	if p.Done() {
		t.Fatal("new packet already done")
	}
	p.Ejected = 3
	p.EjectedAt = 142
	if !p.Done() || p.Latency() != 42 {
		t.Fatalf("done=%v latency=%d", p.Done(), p.Latency())
	}
}

func TestTypeStrings(t *testing.T) {
	for _, k := range []Type{Head, Body, Tail, HeadTail} {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
}
