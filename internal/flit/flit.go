// Package flit defines the packet and flit representation used by the
// cycle-accurate router simulator. A packet is broken into flits: a head
// flit carrying the destination, zero or more body flits, and a tail
// flit that releases the resources the head acquired (Section 3.1 of the
// paper). The paper's simulations use 5-flit packets.
package flit

import "fmt"

// Type classifies a flit within its packet.
type Type uint8

const (
	// Head is the first flit of a multi-flit packet; it performs
	// routing, VC allocation, and acquires the switch.
	Head Type = iota
	// Body is a middle flit; it inherits the resources of its head.
	Body
	// Tail is the last flit; on departure it releases the packet's
	// input VC, output VC (or held wormhole port).
	Tail
	// HeadTail is the only flit of a single-flit packet.
	HeadTail
)

func (t Type) String() string {
	switch t {
	case Head:
		return "head"
	case Body:
		return "body"
	case Tail:
		return "tail"
	case HeadTail:
		return "headtail"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsHead reports whether the flit opens a packet.
func (t Type) IsHead() bool { return t == Head || t == HeadTail }

// IsTail reports whether the flit closes a packet.
func (t Type) IsTail() bool { return t == Tail || t == HeadTail }

// Packet is the unit of routing. Flits reference their packet; per-packet
// bookkeeping (creation time, ejection progress) lives here.
type Packet struct {
	ID   int64
	Src  int // source node
	Dst  int // destination node
	Size int // number of flits

	// CreatedAt is the cycle the packet was generated at the source
	// (before source queueing); the paper measures latency from this
	// point to last-flit ejection.
	CreatedAt int64
	// Tagged marks packets in the measurement sample space.
	Tagged bool

	// Ejected counts flits delivered at the destination; EjectedAt
	// records the cycle the final flit was ejected.
	Ejected   int
	EjectedAt int64

	// Dropped marks a packet the routing stage declared unroutable (its
	// destination is unreachable on the live graph after faults). Its
	// flits drain through the nearest ejection port and are counted as
	// dropped, not delivered.
	Dropped bool
	// EscapeOnly pins the packet to table (escape-layer) routing for the
	// rest of its life. The adaptive policy sets it when a fault leaves
	// no live productive candidate: from then on every hop follows the
	// rerouted tables, whose strictly shortest live paths bound the
	// remaining hop count and rule out livelock.
	EscapeOnly bool
}

// Done reports whether every flit of the packet has been ejected.
func (p *Packet) Done() bool { return p.Ejected >= p.Size }

// Latency returns the packet latency in cycles (creation to last-flit
// ejection, including source queueing). Only valid once Done.
func (p *Packet) Latency() int64 { return p.EjectedAt - p.CreatedAt }

// Flit is the unit of flow control and buffer allocation.
type Flit struct {
	Pkt  *Packet
	Seq  int // position within the packet, 0-based
	Kind Type
	// VC is the virtual-channel id field of the flit on its current
	// link. The switch traversal stage rewrites it to the allocated
	// output VC as the flit leaves each router (Section 3.1).
	VC int8
	// EnqueuedAt is the cycle the flit was written into its current
	// input buffer; a flit may not be considered by allocation in its
	// arrival cycle (registered pipeline stages).
	EnqueuedAt int64
}

// NewPacketFlits breaks a packet into its flits with correct types.
func NewPacketFlits(p *Packet) []Flit {
	return AppendPacketFlits(nil, p)
}

// AppendPacketFlits appends the flits of a packet to dst and returns the
// extended slice. Passing a reused buffer (dst[:0]) keeps packetization
// allocation-free in steady state — the traffic sources lean on this.
func AppendPacketFlits(dst []Flit, p *Packet) []Flit {
	for i := 0; i < p.Size; i++ {
		k := Body
		switch {
		case p.Size == 1:
			k = HeadTail
		case i == 0:
			k = Head
		case i == p.Size-1:
			k = Tail
		}
		dst = append(dst, Flit{Pkt: p, Seq: i, Kind: k})
	}
	return dst
}

// Reset clears a packet for reuse from a pool, preserving nothing.
func (p *Packet) Reset() { *p = Packet{} }
