package experiments

import (
	"strings"
	"testing"
)

// tinyProtocol keeps unit tests fast; shape assertions use wide
// tolerances accordingly.
func tinyProtocol() Protocol {
	return Protocol{
		Warmup:  2000,
		Packets: 1500,
		Loads:   []float64{0.2, 0.4, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75},
		Seed:    1,
	}
}

func TestProtocols(t *testing.T) {
	p := PaperProtocol()
	if p.Warmup != 10000 || p.Packets != 100000 {
		t.Errorf("paper protocol wrong: %+v", p)
	}
	q := QuickProtocol()
	if q.Packets >= p.Packets {
		t.Error("quick protocol should be smaller than the paper's")
	}
	if len(p.Loads) == 0 || p.Loads[0] != 0.10 {
		t.Errorf("load grid should start at 0.10: %v", p.Loads)
	}
}

// TestFigure14Shape checks the paper's headline ordering on the
// 16-buffer configuration: speculative ≥ VC > wormhole in saturation
// throughput, and speculative ≈ wormhole in zero-load latency.
func TestFigure14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	fig, err := Figure14(tinyProtocol())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Curves) != 3 {
		t.Fatalf("%d curves, want 3", len(fig.Curves))
	}
	wh, vc, spec := fig.Curves[0], fig.Curves[1], fig.Curves[2]
	if !(spec.Saturation >= vc.Saturation && vc.Saturation > wh.Saturation) {
		t.Errorf("saturation ordering broken: WH %.2f, VC %.2f, spec %.2f",
			wh.Saturation, vc.Saturation, spec.Saturation)
	}
	if spec.Saturation < wh.Saturation*1.2 {
		t.Errorf("speculative VC should substantially beat wormhole: %.2f vs %.2f",
			spec.Saturation, wh.Saturation)
	}
	if diff := spec.ZeroLoad - wh.ZeroLoad; diff > 1.5 || diff < -1.5 {
		t.Errorf("speculative zero-load %.1f should match wormhole %.1f", spec.ZeroLoad, wh.ZeroLoad)
	}
	if vc.ZeroLoad < wh.ZeroLoad+4 {
		t.Errorf("non-spec VC zero-load %.1f should exceed wormhole %.1f by ≈1 cycle/hop",
			vc.ZeroLoad, wh.ZeroLoad)
	}
}

// TestFigure18Shape checks the credit-propagation experiment: the slow
// credit path must cost roughly the paper's 18% of throughput.
func TestFigure18Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	fig, err := Figure18(tinyProtocol())
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := fig.Curves[0], fig.Curves[1]
	if slow.Saturation >= fast.Saturation {
		t.Errorf("4-cycle credits should lower saturation: %.2f vs %.2f", slow.Saturation, fast.Saturation)
	}
	drop := (fast.Saturation - slow.Saturation) / fast.Saturation
	if drop < 0.08 || drop > 0.35 {
		t.Errorf("throughput drop %.0f%%, paper ≈18%%", 100*drop)
	}
}

func TestFigure16TurnaroundValues(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation probe")
	}
	turns, err := Figure16Turnaround(tinyProtocol())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"wormhole": 4, "vc": 5, "specvc": 4, "single-cycle": 2}
	for k, w := range want {
		if turns[k] != w {
			t.Errorf("%s turnaround %d, want %d", k, turns[k], w)
		}
	}
}

func TestRenderers(t *testing.T) {
	// Synthetic figure exercises the renderers without simulation.
	fig := FigureResult{
		ID:    "figureX",
		Title: "synthetic",
		Curves: []Curve{
			{Name: "a", Saturation: 0.5, ZeroLoad: 29},
			{Name: "b", Saturation: 0.7, ZeroLoad: 35},
		},
	}
	var tbl strings.Builder
	if err := WriteTable(&tbl, fig); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figureX", "a", "b", "50%", "70%"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "figure,curve,offered_load") {
		t.Errorf("csv header wrong: %q", csv.String())
	}
	var plot strings.Builder
	if err := PlotASCII(&plot, fig); err != nil {
		t.Fatal(err)
	}
	var t1 strings.Builder
	if err := WriteTable1(&t1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"switch arbiter", "9.6", "crossbar", "8.4"} {
		if !strings.Contains(t1.String(), want) {
			t.Errorf("table 1 rendering missing %q", want)
		}
	}
	var f12 strings.Builder
	if err := WriteFigure12(&f12); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f12.String(), "2vcs,5pcs") {
		t.Error("figure 12 rendering missing grid labels")
	}
}

// TestSaturationsOrdering runs the adaptive bisection for the Figure 13
// configurations and checks the paper's headline ordering: the
// speculative VC router saturates at or above the non-speculative VC
// router, which beats wormhole — the same ordering the grid sweep
// finds, at a fraction of the simulated cycles.
func TestSaturationsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation search")
	}
	pts, err := Saturations(tinyProtocol(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points, want 3", len(pts))
	}
	wh, vc, spec := pts[0], pts[1], pts[2]
	if !(spec.Load >= vc.Load && vc.Load > wh.Load) {
		t.Errorf("saturation ordering broken: WH %.2f, VC %.2f, spec %.2f", wh.Load, vc.Load, spec.Load)
	}
	for _, p := range pts {
		if p.Probes == 0 || p.Cycles == 0 {
			t.Errorf("%s: search ran nothing: %+v", p.Name, p)
		}
		if p.Load > 0 && p.Throughput <= 0 {
			t.Errorf("%s: knee %.2f carries no measured throughput", p.Name, p.Load)
		}
	}
	var buf strings.Builder
	if err := WriteSaturations(&buf, pts); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"WH (8 bufs)", "specVC", "probes"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("saturation table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSortedTurnaroundKeys(t *testing.T) {
	keys := SortedTurnaroundKeys(map[string]int64{"z": 1, "a": 2, "m": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "z" {
		t.Errorf("keys %v", keys)
	}
}
