// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment couples the exact workload and parameters
// of the paper with the modules that implement them, and reports the
// same rows/series the paper plots (see DESIGN.md §5 for the index).
package experiments

import (
	"fmt"

	"routersim/internal/harness"
	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/sim"
)

// Protocol is the measurement protocol of a simulation experiment.
type Protocol struct {
	// Warmup cycles before measurement begins.
	Warmup int64
	// Packets in the tagged sample.
	Packets int
	// Loads swept, as fractions of capacity.
	Loads []float64
	// Seed for reproducibility.
	Seed uint64
}

func defaultLoads() []float64 {
	var loads []float64
	for l := 0.10; l <= 0.901; l += 0.05 {
		loads = append(loads, float64(int(l*100+0.5))/100)
	}
	return loads
}

// PaperProtocol is the paper's protocol (Section 5): 10,000 warm-up
// cycles, 100,000 tagged packets, loads from 10% to 90% of capacity.
func PaperProtocol() Protocol {
	return Protocol{Warmup: 10000, Packets: 100000, Loads: defaultLoads(), Seed: 1}
}

// QuickProtocol is a scaled-down protocol for tests and benchmarks; the
// curves have the same shape with more sampling noise near saturation.
func QuickProtocol() Protocol {
	return Protocol{Warmup: 4000, Packets: 6000, Loads: defaultLoads(), Seed: 1}
}

// Curve is one latency-throughput series, matching one line of a figure.
type Curve struct {
	// Name is the legend label, matching the paper's (e.g.
	// "VC (2vcsX4bufs)").
	Name string
	// Points are the swept (offered load, result) pairs.
	Points []sim.LoadPoint
	// Saturation is the estimated saturation load (fraction of
	// capacity) using the paper's 140-cycle plot clip.
	Saturation float64
	// ZeroLoad is the latency of the lowest swept load, the curve's
	// left intercept.
	ZeroLoad float64
}

// FigureResult is one regenerated figure.
type FigureResult struct {
	ID     string // e.g. "figure13"
	Title  string
	Curves []Curve
}

// curveSpec describes one line of a simulated figure.
type curveSpec struct {
	name        string
	kind        router.Kind
	vcs, buf    int
	creditDelay int
}

func runCurves(pr Protocol, specs []curveSpec) ([]Curve, error) {
	curves := make([]Curve, len(specs))
	for i, cs := range specs {
		sc := harness.Scenario{
			Router:      cs.kind.String(),
			Topology:    "mesh",
			K:           8,
			Pattern:     "uniform",
			VCs:         cs.vcs,
			BufPerVC:    cs.buf,
			PacketSize:  5,
			CreditDelay: cs.creditDelay,
		}
		opts := harness.Options{
			Seed: pr.Seed,
			// Figures are the bit-identical reproduction path: exact
			// latency samples, no streaming approximation, no early
			// CI termination.
			Protocol: harness.Protocol{Warmup: pr.Warmup, Packets: pr.Packets, Exact: true},
		}
		pts, err := harness.Curve(sc, pr.Loads, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: curve %q: %w", cs.name, err)
		}
		curves[i] = Curve{
			Name:       cs.name,
			Points:     pts,
			Saturation: sim.SaturationLoad(pts, 140),
		}
		if len(pts) > 0 {
			curves[i].ZeroLoad = pts[0].Result.Latency.MeanLatency
		}
	}
	return curves, nil
}

// Figure13 compares wormhole, VC, and speculative VC routers with
// 8 flit buffers per input port (WH 8, VC/spec 2 VCs × 4 buffers).
// Paper: zero-load 29 / 36 / 30 cycles; saturation ≈ 0.40 / 0.50 / 0.55.
func Figure13(pr Protocol) (FigureResult, error) {
	curves, err := runCurves(pr, []curveSpec{
		{"WH (8 bufs)", router.Wormhole, 1, 8, 1},
		{"VC (2vcsX4bufs)", router.VirtualChannel, 2, 4, 1},
		{"specVC (2vcsX4bufs)", router.SpeculativeVC, 2, 4, 1},
	})
	return FigureResult{ID: "figure13", Title: "Latency-throughput, 8 buffers per input port", Curves: curves}, err
}

// Figure14 uses 16 buffers per port with 2 VCs × 8 buffers.
// Paper: zero-load 29 / 35 / 29; saturation ≈ 0.50 / 0.65 / 0.70 — the
// speculative router's 40% improvement over wormhole.
func Figure14(pr Protocol) (FigureResult, error) {
	curves, err := runCurves(pr, []curveSpec{
		{"WH (16 bufs)", router.Wormhole, 1, 16, 1},
		{"VC (2vcsX8bufs)", router.VirtualChannel, 2, 8, 1},
		{"specVC (2vcsX8bufs)", router.SpeculativeVC, 2, 8, 1},
	})
	return FigureResult{ID: "figure14", Title: "Latency-throughput, 16 buffers per input port, 2 VCs", Curves: curves}, err
}

// Figure15 uses 16 buffers per port with 4 VCs × 4 buffers.
// Paper: both VC routers saturate ≈ 0.70 — enough buffering covers the
// credit loop, so speculation no longer buys throughput.
func Figure15(pr Protocol) (FigureResult, error) {
	curves, err := runCurves(pr, []curveSpec{
		{"WH (16 bufs)", router.Wormhole, 1, 16, 1},
		{"VC (4vcsX4bufs)", router.VirtualChannel, 4, 4, 1},
		{"specVC (4vcsX4bufs)", router.SpeculativeVC, 4, 4, 1},
	})
	return FigureResult{ID: "figure15", Title: "Latency-throughput, 16 buffers per input port, 4 VCs", Curves: curves}, err
}

// Figure17 compares the pipelined model against the single-cycle
// ("unit latency") model with 8 buffers per port. Paper: single-cycle
// zero-load 16 for both; single-cycle VC saturates ≈ 0.65 vs 0.50/0.55
// for the realistically pipelined routers.
func Figure17(pr Protocol) (FigureResult, error) {
	curves, err := runCurves(pr, []curveSpec{
		{"WH (8 bufs)", router.Wormhole, 1, 8, 1},
		{"VC (2vcsX4bufs)", router.VirtualChannel, 2, 4, 1},
		{"specVC (2vcsX4bufs)", router.SpeculativeVC, 2, 4, 1},
		{"WH (8 bufs) (single-cycle)", router.SingleCycleWormhole, 1, 8, 1},
		{"VC (2vcsX4bufs) (single-cycle)", router.SingleCycleVC, 2, 4, 1},
	})
	return FigureResult{ID: "figure17", Title: "Pipelined model vs single-cycle router model", Curves: curves}, err
}

// Figure18 sweeps the speculative VC router (2 VCs × 4 buffers) with
// credit propagation delays of 1 and 4 cycles. Paper: saturation drops
// from ≈ 0.55 to ≈ 0.45, an 18% throughput reduction.
func Figure18(pr Protocol) (FigureResult, error) {
	curves, err := runCurves(pr, []curveSpec{
		{"specVC (1-cycle credit propagation)", router.SpeculativeVC, 2, 4, 1},
		{"specVC (4-cycle credit propagation)", router.SpeculativeVC, 2, 4, 4},
	})
	return FigureResult{ID: "figure18", Title: "Effect of credit propagation delay", Curves: curves}, err
}

// SaturationPoint is one adaptive saturation-search outcome: a router
// configuration's knee located by bisection instead of a load grid.
type SaturationPoint struct {
	// Name is the configuration label, matching the figure legends.
	Name string
	// Load is the saturation load (fraction of capacity); the true
	// knee lies within Step above it.
	Load float64
	// Throughput is the accepted load measured at the knee.
	Throughput float64
	// Probes and Cycles are the search's cost.
	Probes int
	Cycles int64
}

// Saturations locates the saturation point of each Figure 13 router
// configuration with the harness's adaptive bisection
// (harness.FindSaturation) at the given load resolution — the paper's
// headline comparison (WH / VC / specVC knees) without sweeping a
// fixed grid past saturation. The searches share the protocol's seed
// chain, so the table is deterministic.
func Saturations(pr Protocol, step float64) ([]SaturationPoint, error) {
	specs := []curveSpec{
		{"WH (8 bufs)", router.Wormhole, 1, 8, 1},
		{"VC (2vcsX4bufs)", router.VirtualChannel, 2, 4, 1},
		{"specVC (2vcsX4bufs)", router.SpeculativeVC, 2, 4, 1},
	}
	out := make([]SaturationPoint, len(specs))
	for i, cs := range specs {
		sc := harness.Scenario{
			Router:      cs.kind.String(),
			Topology:    "mesh",
			K:           8,
			Pattern:     "uniform",
			VCs:         cs.vcs,
			BufPerVC:    cs.buf,
			PacketSize:  5,
			CreditDelay: cs.creditDelay,
		}
		opts := harness.Options{
			Seed:     pr.Seed,
			Protocol: harness.Protocol{Warmup: pr.Warmup, Packets: pr.Packets},
		}
		sr, err := harness.FindSaturation(sc, opts, harness.SearchOptions{Step: step})
		if err != nil {
			return nil, fmt.Errorf("experiments: saturation %q: %w", cs.name, err)
		}
		if sr.Error != "" {
			return nil, fmt.Errorf("experiments: saturation %q: %s", cs.name, sr.Error)
		}
		out[i] = SaturationPoint{
			Name:       cs.name,
			Load:       sr.Load,
			Throughput: sr.Throughput,
			Probes:     len(sr.Probes),
			Cycles:     sr.Cycles,
		}
	}
	return out, nil
}

// Figure16Turnaround measures the buffer turnaround time of every
// router kind with a congested probe run, reproducing the credit-loop
// timeline of Figure 16 / Section 5.2: 4 cycles for wormhole and
// speculative VC routers, 5 for the non-speculative VC router, and 2
// for the single-cycle model.
func Figure16Turnaround(pr Protocol) (map[string]int64, error) {
	cases := []struct {
		name string
		kind router.Kind
		vcs  int
	}{
		{"wormhole", router.Wormhole, 1},
		{"vc", router.VirtualChannel, 2},
		{"specvc", router.SpeculativeVC, 2},
		{"single-cycle", router.SingleCycleWormhole, 1},
	}
	out := make(map[string]int64, len(cases))
	for _, c := range cases {
		rc := router.DefaultConfig(c.kind)
		rc.VCs = c.vcs
		rc.BufPerVC = 4
		cfg := sim.Config{
			Net:            network.Config{K: 8, Router: rc, Seed: pr.Seed},
			WarmupCycles:   500,
			MeasurePackets: 500,
			MaxCycles:      30000,
			Probe:          true,
		}
		cfg.Net.InjectionRate = 0.9 * 0.5 / 5
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		out[c.name] = res.MinTurnaround
	}
	return out, nil
}
