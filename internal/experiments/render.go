package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"routersim/internal/core"
	"routersim/internal/logicaleffort"
)

// WriteCSV emits a figure's curves as CSV: one row per (curve, load).
// The censored column counts tagged packets the cycle cap cut off; a
// nonzero count means the latency columns are survivor-biased lower
// bounds, so such rows must be read as saturated points.
func WriteCSV(w io.Writer, fig FigureResult) error {
	if _, err := fmt.Fprintln(w, "figure,curve,offered_load,mean_latency,p95_latency,accepted_load,censored,saturated"); err != nil {
		return err
	}
	for _, c := range fig.Curves {
		for _, p := range c.Points {
			lat := p.Result.Latency
			if _, err := fmt.Fprintf(w, "%s,%q,%.3f,%.2f,%d,%.4f,%d,%t\n",
				fig.ID, c.Name, p.Load, lat.MeanLatency, lat.P95, p.Result.AcceptedLoad,
				lat.Censored, p.Result.Saturated); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable renders a figure as an aligned text table with a summary
// line per curve (zero-load latency and saturation point), the quantities
// the paper's prose quotes from each figure.
func WriteTable(w io.Writer, fig FigureResult) error {
	fmt.Fprintf(w, "%s: %s\n", fig.ID, fig.Title)
	fmt.Fprintf(w, "%-36s %12s %12s\n", "curve", "zero-load", "saturation")
	for _, c := range fig.Curves {
		fmt.Fprintf(w, "%-36s %9.1f cy %11.0f%%\n", c.Name, c.ZeroLoad, 100*c.Saturation)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-36s", "offered load (frac. of capacity)")
	if len(fig.Curves) > 0 {
		for _, p := range fig.Curves[0].Points {
			fmt.Fprintf(w, "%7.2f", p.Load)
		}
	}
	fmt.Fprintln(w)
	for _, c := range fig.Curves {
		fmt.Fprintf(w, "%-36s", c.Name)
		for _, p := range c.Points {
			lat := p.Result.Latency.MeanLatency
			switch {
			case p.Result.Latency.Packets == 0 || math.IsNaN(lat):
				fmt.Fprintf(w, "%7s", "-")
			case p.Result.Saturated || lat > 999:
				fmt.Fprintf(w, "%7s", "sat")
			default:
				fmt.Fprintf(w, "%7.1f", lat)
			}
		}
		fmt.Fprintln(w)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// PlotASCII renders a figure as an ASCII latency-vs-load plot in the
// style of the paper's graphs (y clipped at 140 cycles).
func PlotASCII(w io.Writer, fig FigureResult) error {
	const (
		height = 20
		yMax   = 140.0
	)
	if len(fig.Curves) == 0 {
		return nil
	}
	cols := len(fig.Curves[0].Points)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*3))
	}
	marks := []byte{'W', 'V', 'S', 'w', 'v', 's', 'x', 'o'}
	for ci, c := range fig.Curves {
		for pi, p := range c.Points {
			lat := p.Result.Latency.MeanLatency
			if p.Result.Latency.Censored > 0 {
				// Survivor-biased sample: the true mean is off the top
				// of the plot, however low the surviving packets'
				// average looks — pin the point to the clip line. This
				// includes fully censored points (zero survivors),
				// which would otherwise vanish from the plot at their
				// most saturated loads.
				lat = yMax
			} else if p.Result.Latency.Packets == 0 || math.IsNaN(lat) {
				continue
			}
			if lat > yMax {
				lat = yMax
			}
			row := height - 1 - int((lat/yMax)*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			grid[row][pi*3+1] = marks[ci%len(marks)]
		}
	}
	fmt.Fprintf(w, "%s (y: latency 0..%v cycles, x: offered load)\n", fig.Title, yMax)
	for i, line := range grid {
		y := yMax * float64(height-1-i) / float64(height-1)
		fmt.Fprintf(w, "%5.0f |%s\n", y, line)
	}
	fmt.Fprintf(w, "      +%s\n       ", strings.Repeat("-", cols*3))
	for _, p := range fig.Curves[0].Points {
		fmt.Fprintf(w, "%-3.0f", p.Load*100)
	}
	fmt.Fprintln(w, " (% capacity)")
	for ci, c := range fig.Curves {
		fmt.Fprintf(w, "   %c = %s\n", marks[ci%len(marks)], c.Name)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteSaturations renders the adaptive saturation-search table: one
// row per router configuration with the knee, its delivered
// throughput, and what the search cost.
func WriteSaturations(w io.Writer, pts []SaturationPoint) error {
	fmt.Fprintln(w, "saturation search (adaptive bisection, paper's 140-cycle latency cap)")
	fmt.Fprintf(w, "%-36s %12s %12s %8s %12s\n", "config", "saturation", "throughput", "probes", "cycles")
	for _, p := range pts {
		fmt.Fprintf(w, "%-36s %11.0f%% %11.1f%% %8d %12d\n",
			p.Name, 100*p.Load, 100*p.Throughput, p.Probes, p.Cycles)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteTable1 renders the delay-model table with the paper's reference
// columns (Table 1 of the paper).
func WriteTable1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: parameterized delay equations evaluated at p=5, w=32, v=2, clk=20τ4")
	fmt.Fprintf(w, "%-18s %-30s %10s %10s %10s %10s\n",
		"router", "module", "t (τ)", "h (τ)", "model(τ4)", "paper(τ4)")
	for _, row := range core.Table1() {
		fmt.Fprintf(w, "%-18s %-30s %10.2f %10.1f %10.2f %10.1f\n",
			row.Router, row.Module, row.Tau, row.OverTau, row.Model, row.Paper)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteFigure11 renders the pipeline bars of Figure 11 for a router
// kind: per-(p, v) pipeline depth and per-stage utilization.
func WriteFigure11(w io.Writer, points []core.PipelinePoint, wormholeRef core.Pipeline) error {
	fmt.Fprintf(w, "%-14s %7s   %s\n", "config", "stages", "stage utilization (module: % of 20τ4 cycle)")
	fmt.Fprintf(w, "%-14s %7d   %s\n", "wormhole", wormholeRef.Depth(), stageSummary(wormholeRef))
	for _, pt := range points {
		name := fmt.Sprintf("%dvcs,%dpcs", pt.V, pt.P)
		fmt.Fprintf(w, "%-14s %7d   %s\n", name, pt.Pipeline.Depth(), stageSummary(pt.Pipeline))
	}
	_, err := fmt.Fprintln(w)
	return err
}

func stageSummary(p core.Pipeline) string {
	var parts []string
	for _, s := range p.Stages {
		parts = append(parts, fmt.Sprintf("%s:%.0f%%", strings.Join(s.Names(), "+"), 100*s.Utilization()))
	}
	return strings.Join(parts, " | ")
}

// WriteFigure12 renders the combined-allocation-stage delays per routing
// range, in τ4 (Figure 12), and flags configurations exceeding the
// paper's 20 τ4 clock.
func WriteFigure12(w io.Writer) error {
	pts := core.Figure12()
	fmt.Fprintf(w, "%-14s %10s %10s %10s   (delay of combined VC+SS allocation stage, τ4; clk=%.0f)\n",
		"config", "R->v", "R->p", "R->pv", core.DefaultClockTau4)
	for _, pt := range pts {
		fmt.Fprintf(w, "%-14s %10.1f %10.1f %10.1f\n",
			fmt.Sprintf("%dvcs,%dpcs", pt.V, pt.P), pt.DelayRv, pt.DelayRp, pt.DelayRpv)
	}
	_, err := fmt.Fprintln(w)
	return err
}

// SortedTurnaroundKeys returns map keys in stable order for rendering.
func SortedTurnaroundKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Tau4 re-exports the τ4 constant for presentation layers.
const Tau4 = logicaleffort.Tau4
