package allocator

import (
	"fmt"
	"math/bits"

	"routersim/internal/arbiter"
)

// VCRequest asks to allocate an output virtual channel for the packet at
// input port In, input VC VC. Candidates is a bitmask over the v output
// VCs of output port Out that the routing function permits and that are
// currently free (outvc_state). With the paper's R→p routing range —
// the most general possible for a deterministic router (footnote 14) —
// Candidates holds every free VC of the routed port.
type VCRequest struct {
	In, VC, Out int
	Candidates  uint64
}

// VCGrant reports a granted output virtual channel.
type VCGrant struct {
	In, VC, Out, OutVC int
}

// VCAllocator is the separable virtual-channel allocator of Figure 8(b):
// a first stage of v:1 arbiters (one per input VC) chooses which
// candidate output VC each input VC bids for, and a second stage of
// (p·v):1 arbiters (one per output VC) chooses among the bidders.
type VCAllocator struct {
	p, v      int
	stage1    []arbiter.Arbiter // per input VC (p·v of them), over v candidates
	stage2    []arbiter.Arbiter // per output VC (p·v of them), over p·v bidders
	bids      []uint64          // per output VC: bitmask of bidding input VCs
	bidder    []VCRequest       // request by flattened input-VC index
	hasBidder []bool
	grants    []VCGrant // scratch, reused across Allocate calls

	// touched lists the output-VC indices with bids and bidders the
	// input-VC indices that bid, so a call resets only the scratch it
	// dirtied — O(requests), not O(p·v).
	touched []int32
	bidders []int32
}

// NewVCAllocator returns a VC allocator for p ports and v VCs per port.
func NewVCAllocator(p, v int, factory arbiter.Factory) *VCAllocator {
	if factory == nil {
		factory = arbiter.MatrixFactory
	}
	if p < 1 || v < 1 {
		panic(fmt.Sprintf("allocator: invalid VC allocator size p=%d v=%d", p, v))
	}
	n := p * v
	a := &VCAllocator{
		p: p, v: v,
		stage1:    make([]arbiter.Arbiter, n),
		stage2:    make([]arbiter.Arbiter, n),
		bids:      make([]uint64, n),
		bidder:    make([]VCRequest, n),
		hasBidder: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		a.stage1[i] = factory(v)
		a.stage2[i] = factory(n)
	}
	return a
}

func (a *VCAllocator) ivc(in, vc int) int { return in*a.v + vc }
func (a *VCAllocator) ovc(out, w int) int { return out*a.v + w }

// Allocate performs one VC-allocation cycle. Each request bids for one
// of its candidate output VCs (stage 1); each output VC grants one
// bidder (stage 2). Losers simply retry in a later cycle. At most one
// output VC is granted per input VC and each output VC is granted to at
// most one input VC per cycle.
func (a *VCAllocator) Allocate(reqs []VCRequest) []VCGrant {
	if len(reqs) == 0 {
		// No requests grant nothing and touch no arbiter state.
		return a.grants[:0]
	}
	// Stage 1: each input VC picks one candidate output VC. The bids
	// and hasBidder scratch arrays are clean on entry (every call
	// resets exactly the entries it dirtied before returning), so the
	// whole call is O(requests), not O(p·v).
	a.touched = a.touched[:0]
	a.bidders = a.bidders[:0]
	for i := range reqs {
		r := &reqs[i]
		a.check(*r)
		cands := r.Candidates & mask64(a.v)
		if cands == 0 {
			continue // no free candidate VC this cycle
		}
		iIdx := a.ivc(r.In, r.VC)
		if a.hasBidder[iIdx] {
			panic(fmt.Sprintf("allocator: duplicate VC request from input %d vc %d", r.In, r.VC))
		}
		w, ok := a.stage1[iIdx].Grant(cands)
		if !ok {
			continue
		}
		a.hasBidder[iIdx] = true
		a.bidders = append(a.bidders, int32(iIdx))
		a.bidder[iIdx] = *r
		oIdx := a.ovc(r.Out, w)
		if a.bids[oIdx] == 0 {
			a.touched = append(a.touched, int32(oIdx))
		}
		a.bids[oIdx] |= 1 << iIdx
	}
	// Stage 2: each output VC with bids grants one bidding input VC, in
	// ascending output-VC order — the order a full (out, w) scan visits
	// them in, so every stage-2 arbiter sees the exact same call
	// sequence. The touched list is a handful of entries, so an inline
	// insertion sort beats a generic sort call. The returned slice is
	// scratch owned by the allocator, valid until the next Allocate.
	for i := 1; i < len(a.touched); i++ {
		for j := i; j > 0 && a.touched[j] < a.touched[j-1]; j-- {
			a.touched[j], a.touched[j-1] = a.touched[j-1], a.touched[j]
		}
	}
	a.grants = a.grants[:0]
	for _, oIdx := range a.touched {
		bids := a.bids[oIdx]
		a.bids[oIdx] = 0
		iIdx, ok := a.stage2[oIdx].Grant(bids)
		if !ok {
			continue
		}
		r := a.bidder[iIdx]
		a.grants = append(a.grants, VCGrant{In: r.In, VC: r.VC, Out: int(oIdx) / a.v, OutVC: int(oIdx) % a.v})
	}
	for _, iIdx := range a.bidders {
		a.hasBidder[iIdx] = false
	}
	return a.grants
}

func (a *VCAllocator) check(r VCRequest) {
	if r.In < 0 || r.In >= a.p || r.Out < 0 || r.Out >= a.p || r.VC < 0 || r.VC >= a.v {
		panic(fmt.Sprintf("allocator: VC request out of range: %+v (p=%d v=%d)", r, a.p, a.v))
	}
}

func mask64(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// PopcountCandidates reports the number of candidate VCs in a mask.
func PopcountCandidates(m uint64) int { return bits.OnesCount64(m) }
