package allocator

import "routersim/internal/arbiter"

// SpeculativeSwitch is the paper's speculative switch allocator
// (Figure 7c): two separable switch allocators run in parallel, one for
// non-speculative requests (packets that already hold an output VC) and
// one for speculative requests (packets still in VC allocation this
// cycle). The combine stage selects successful non-speculative grants
// over speculative ones, at both the output port and the input port, so
// speculation never takes bandwidth from a non-speculative flit — the
// property that makes the speculation conservative.
type SpeculativeSwitch struct {
	nonspec *SeparableSwitch
	spec    *SeparableSwitch

	// PrioritizeNonSpec enables the paper's priority rule. Disabling it
	// (ablation) resolves output conflicts in favour of the speculative
	// request, demonstrating the throughput cost the rule prevents.
	PrioritizeNonSpec bool

	// scratch, reused across Allocate calls
	outTaken []bool
	inTaken  []bool
}

// NewSpeculativeSwitch returns a speculative switch allocator for p
// ports and v VCs per port.
func NewSpeculativeSwitch(p, v int, factory arbiter.Factory) *SpeculativeSwitch {
	return &SpeculativeSwitch{
		nonspec:           NewSeparableSwitch(p, v, factory),
		spec:              NewSeparableSwitch(p, v, factory),
		PrioritizeNonSpec: true,
		outTaken:          make([]bool, p),
		inTaken:           make([]bool, p),
	}
}

// resetTaken clears the per-port conflict scratch.
func (s *SpeculativeSwitch) resetTaken() {
	for i := range s.outTaken {
		s.outTaken[i] = false
		s.inTaken[i] = false
	}
}

// Allocate runs both allocators on one cycle's requests and combines
// their grants. It returns the surviving non-speculative grants and the
// surviving speculative grants. A speculative grant that survives the
// combine stage is still conditional: the router must verify that VC
// allocation succeeded for that input VC in the same cycle (and that a
// credit exists) before using the crossbar slot; otherwise the slot is
// simply wasted, exactly as in the paper.
func (s *SpeculativeSwitch) Allocate(nonspecReqs, specReqs []SwitchRequest) (ns, sp []SwitchGrant) {
	ns = s.nonspec.Allocate(nonspecReqs)
	sp = s.spec.Allocate(specReqs)
	if len(sp) == 0 {
		return ns, sp
	}

	s.resetTaken()
	if s.PrioritizeNonSpec {
		for _, g := range ns {
			s.outTaken[g.Out] = true
			s.inTaken[g.In] = true
		}
	} else {
		// Ablation: speculative grants win conflicts; non-speculative
		// grants for contested resources are dropped instead.
		for _, g := range sp {
			s.outTaken[g.Out] = true
			s.inTaken[g.In] = true
		}
		kept := ns[:0]
		for _, g := range ns {
			if !s.outTaken[g.Out] && !s.inTaken[g.In] {
				kept = append(kept, g)
			}
		}
		// (spec grants are already mutually conflict-free.)
		return kept, sp
	}

	keptSp := sp[:0]
	for _, g := range sp {
		if s.outTaken[g.Out] || s.inTaken[g.In] {
			continue // non-speculative priority: spec grant discarded
		}
		keptSp = append(keptSp, g)
	}
	return ns, keptSp
}
