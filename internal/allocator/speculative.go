package allocator

import "routersim/internal/arbiter"

// SpeculativeSwitch is the paper's speculative switch allocator
// (Figure 7c): two separable switch allocators run in parallel, one for
// non-speculative requests (packets that already hold an output VC) and
// one for speculative requests (packets still in VC allocation this
// cycle). The combine stage selects successful non-speculative grants
// over speculative ones, at both the output port and the input port, so
// speculation never takes bandwidth from a non-speculative flit — the
// property that makes the speculation conservative.
type SpeculativeSwitch struct {
	nonspec *SeparableSwitch
	spec    *SeparableSwitch

	// PrioritizeNonSpec enables the paper's priority rule. Disabling it
	// (ablation) resolves output conflicts in favour of the speculative
	// request, demonstrating the throughput cost the rule prevents.
	PrioritizeNonSpec bool
}

// NewSpeculativeSwitch returns a speculative switch allocator for p
// ports and v VCs per port.
func NewSpeculativeSwitch(p, v int, factory arbiter.Factory) *SpeculativeSwitch {
	return &SpeculativeSwitch{
		nonspec:           NewSeparableSwitch(p, v, factory),
		spec:              NewSeparableSwitch(p, v, factory),
		PrioritizeNonSpec: true,
	}
}

// Allocate runs both allocators on one cycle's requests and combines
// their grants. It returns the surviving non-speculative grants and the
// surviving speculative grants. A speculative grant that survives the
// combine stage is still conditional: the router must verify that VC
// allocation succeeded for that input VC in the same cycle (and that a
// credit exists) before using the crossbar slot; otherwise the slot is
// simply wasted, exactly as in the paper.
func (s *SpeculativeSwitch) Allocate(nonspecReqs, specReqs []SwitchRequest) (ns, sp []SwitchGrant) {
	ns = s.nonspec.Allocate(nonspecReqs)
	sp = s.spec.Allocate(specReqs)
	if len(sp) == 0 {
		return ns, sp
	}

	outTaken := make(map[int]bool, len(ns))
	inTaken := make(map[int]bool, len(ns))
	if s.PrioritizeNonSpec {
		for _, g := range ns {
			outTaken[g.Out] = true
			inTaken[g.In] = true
		}
	} else {
		// Ablation: speculative grants win conflicts; non-speculative
		// grants for contested resources are dropped instead.
		for _, g := range sp {
			outTaken[g.Out] = true
			inTaken[g.In] = true
		}
		kept := ns[:0]
		for _, g := range ns {
			if !outTaken[g.Out] && !inTaken[g.In] {
				kept = append(kept, g)
			}
		}
		ns = kept
		outTaken = make(map[int]bool, len(ns))
		inTaken = make(map[int]bool, len(ns))
		for _, g := range ns {
			outTaken[g.Out] = true
			inTaken[g.In] = true
		}
		// fall through to filter speculative self-conflicts below
		// (spec grants are already mutually conflict-free).
		return ns, sp
	}

	keptSp := sp[:0]
	for _, g := range sp {
		if outTaken[g.Out] || inTaken[g.In] {
			continue // non-speculative priority: spec grant discarded
		}
		keptSp = append(keptSp, g)
	}
	return ns, keptSp
}
