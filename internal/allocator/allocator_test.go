package allocator

import (
	"testing"
	"testing/quick"

	"routersim/internal/rng"
)

// checkSwitchGrants verifies the structural invariants of any switch
// allocation: every grant matches a request, and no input or output is
// granted twice.
func checkSwitchGrants(t *testing.T, reqs []SwitchRequest, grants []SwitchGrant) {
	t.Helper()
	reqSet := make(map[SwitchRequest]bool, len(reqs))
	for _, r := range reqs {
		reqSet[r] = true
	}
	inSeen := make(map[int]bool)
	outSeen := make(map[int]bool)
	for _, g := range grants {
		if !reqSet[SwitchRequest(g)] {
			t.Fatalf("grant %+v has no matching request", g)
		}
		if inSeen[g.In] {
			t.Fatalf("input %d granted twice", g.In)
		}
		if outSeen[g.Out] {
			t.Fatalf("output %d granted twice", g.Out)
		}
		inSeen[g.In] = true
		outSeen[g.Out] = true
	}
}

func TestSeparableSwitchBasics(t *testing.T) {
	s := NewSeparableSwitch(5, 2, nil)
	reqs := []SwitchRequest{
		{In: 0, VC: 0, Out: 3},
		{In: 1, VC: 1, Out: 3}, // conflicts with input 0 on output 3
		{In: 2, VC: 0, Out: 4},
	}
	grants := s.Allocate(reqs)
	checkSwitchGrants(t, reqs, grants)
	if len(grants) != 2 {
		t.Fatalf("got %d grants, want 2 (one per free output)", len(grants))
	}
}

func TestSeparableSwitchSingleRequestAlwaysWins(t *testing.T) {
	s := NewSeparableSwitch(5, 4, nil)
	for i := 0; i < 20; i++ {
		req := []SwitchRequest{{In: i % 5, VC: i % 4, Out: (i + 1) % 5}}
		grants := s.Allocate(req)
		if len(grants) != 1 || grants[0] != SwitchGrant(req[0]) {
			t.Fatalf("uncontested request not granted: %+v -> %+v", req, grants)
		}
	}
}

func TestSeparableSwitchInputPicksOneVC(t *testing.T) {
	// Two VCs of the same input request different outputs: only one may
	// win (one crossbar input port per physical channel — the paper's
	// key argument against Chien's per-VC crossbar ports).
	s := NewSeparableSwitch(5, 2, nil)
	reqs := []SwitchRequest{
		{In: 0, VC: 0, Out: 1},
		{In: 0, VC: 1, Out: 2},
	}
	grants := s.Allocate(reqs)
	checkSwitchGrants(t, reqs, grants)
	if len(grants) != 1 {
		t.Fatalf("input port granted %d passages in one cycle, want 1", len(grants))
	}
}

func TestSeparableSwitchFairUnderContention(t *testing.T) {
	// With persistent conflicting requests, matrix arbiters must share
	// the output approximately evenly.
	s := NewSeparableSwitch(5, 2, nil)
	wins := make(map[int]int)
	reqs := []SwitchRequest{
		{In: 0, VC: 0, Out: 3},
		{In: 1, VC: 0, Out: 3},
		{In: 2, VC: 0, Out: 3},
	}
	const rounds = 300
	for i := 0; i < rounds; i++ {
		for _, g := range s.Allocate(reqs) {
			wins[g.In]++
		}
	}
	for in := 0; in <= 2; in++ {
		if wins[in] < rounds/3-5 || wins[in] > rounds/3+5 {
			t.Errorf("input %d won %d/%d, want ≈%d", in, wins[in], rounds, rounds/3)
		}
	}
}

func TestSeparableSwitchPropertyInvariants(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		s := NewSeparableSwitch(5, 2, nil)
		for round := 0; round < int(n%20)+1; round++ {
			var reqs []SwitchRequest
			used := map[[2]int]bool{}
			for i := 0; i < r.Intn(8); i++ {
				in, vc := r.Intn(5), r.Intn(2)
				if used[[2]int{in, vc}] {
					continue
				}
				used[[2]int{in, vc}] = true
				reqs = append(reqs, SwitchRequest{In: in, VC: vc, Out: r.Intn(5)})
			}
			grants := s.Allocate(reqs)
			inSeen, outSeen := map[int]bool{}, map[int]bool{}
			for _, g := range grants {
				if inSeen[g.In] || outSeen[g.Out] {
					return false
				}
				inSeen[g.In], outSeen[g.Out] = true, true
			}
			// Work conservation at the output stage: if exactly one
			// request targets an otherwise-unrequested output and its
			// input made no other request, it must be granted.
			if len(reqs) == 1 && len(grants) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSeparableSwitchDuplicateRequestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate (in,vc) request must panic")
		}
	}()
	s := NewSeparableSwitch(5, 2, nil)
	s.Allocate([]SwitchRequest{{In: 0, VC: 0, Out: 1}, {In: 0, VC: 0, Out: 2}})
}

func TestWormholeSwitchHoldAndRelease(t *testing.T) {
	w := NewWormholeSwitch(5, nil)
	grants := w.Arbitrate([]PortRequest{{In: 0, Out: 3}, {In: 1, Out: 3}})
	if len(grants) != 1 {
		t.Fatalf("got %d grants, want 1", len(grants))
	}
	winner := grants[0].In
	if !w.Held(3) || w.Holder(3) != winner {
		t.Fatalf("output 3 not held by winner %d", winner)
	}
	// While held, nobody can win the port — the status bit masks requests.
	for i := 0; i < 5; i++ {
		if g := w.Arbitrate([]PortRequest{{In: (winner + 1) % 5, Out: 3}}); len(g) != 0 {
			t.Fatalf("held port granted: %+v", g)
		}
	}
	w.Release(3)
	if w.Held(3) {
		t.Fatal("port still held after release")
	}
	if g := w.Arbitrate([]PortRequest{{In: 2, Out: 3}}); len(g) != 1 || g[0].In != 2 {
		t.Fatalf("released port not grantable: %+v", g)
	}
}

func TestWormholeSwitchDoubleReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double release must panic")
		}
	}()
	w := NewWormholeSwitch(5, nil)
	w.Arbitrate([]PortRequest{{In: 0, Out: 1}})
	w.Release(1)
	w.Release(1)
}

func TestWormholeSwitchIndependentOutputs(t *testing.T) {
	w := NewWormholeSwitch(5, nil)
	grants := w.Arbitrate([]PortRequest{{In: 0, Out: 1}, {In: 1, Out: 2}, {In: 2, Out: 3}})
	if len(grants) != 3 {
		t.Fatalf("independent outputs: got %d grants, want 3", len(grants))
	}
}

func TestVCAllocatorBasics(t *testing.T) {
	// Two input VCs request the two free VCs of output 1. A separable
	// allocator may grant only one in the first cycle (both stage-1
	// arbiters can pick the same candidate — the allocation-efficiency
	// sacrifice the paper notes); the loser retries with the remaining
	// candidate and must succeed by the second cycle.
	a := NewVCAllocator(5, 2, nil)
	reqs := []VCRequest{
		{In: 0, VC: 0, Out: 1, Candidates: 0b11},
		{In: 1, VC: 1, Out: 1, Candidates: 0b11},
	}
	grants := a.Allocate(reqs)
	if len(grants) == 0 || len(grants) > 2 {
		t.Fatalf("cycle 1: got %d grants, want 1 or 2", len(grants))
	}
	busy := make([]bool, 2)
	granted := map[[2]int]bool{}
	for _, g := range grants {
		if g.Out != 1 || g.OutVC < 0 || g.OutVC > 1 {
			t.Fatalf("bad grant %+v", g)
		}
		if busy[g.OutVC] {
			t.Fatalf("output VC %d double-allocated", g.OutVC)
		}
		busy[g.OutVC] = true
		granted[[2]int{g.In, g.VC}] = true
	}
	// Losers retry with the updated free mask (busy bits cleared), as
	// the router computes it from its outvc_state bitmask.
	var free uint64
	for i, b := range busy {
		if !b {
			free |= 1 << i
		}
	}
	var retry []VCRequest
	for _, r := range reqs {
		if !granted[[2]int{r.In, r.VC}] {
			r.Candidates = free
			retry = append(retry, r)
		}
	}
	grants2 := a.Allocate(retry)
	if len(grants2) != len(retry) {
		t.Fatalf("cycle 2: %d of %d retries granted", len(grants2), len(retry))
	}
	for _, g := range grants2 {
		if busy[g.OutVC] {
			t.Fatalf("retry granted an already-busy VC %d", g.OutVC)
		}
	}
}

func TestVCAllocatorSingleCandidateContention(t *testing.T) {
	// Two input VCs compete for the single free output VC: exactly one
	// wins per cycle, and over repeated cycles both are served.
	a := NewVCAllocator(5, 2, nil)
	wins := map[[2]int]int{}
	for i := 0; i < 100; i++ {
		reqs := []VCRequest{
			{In: 0, VC: 0, Out: 2, Candidates: 0b01},
			{In: 3, VC: 1, Out: 2, Candidates: 0b01},
		}
		grants := a.Allocate(reqs)
		if len(grants) != 1 {
			t.Fatalf("cycle %d: %d grants, want 1", i, len(grants))
		}
		g := grants[0]
		wins[[2]int{g.In, g.VC}]++
	}
	if wins[[2]int{0, 0}] < 40 || wins[[2]int{3, 1}] < 40 {
		t.Errorf("unfair VC allocation: %v", wins)
	}
}

func TestVCAllocatorNoCandidates(t *testing.T) {
	a := NewVCAllocator(5, 2, nil)
	if g := a.Allocate([]VCRequest{{In: 0, VC: 0, Out: 1, Candidates: 0}}); len(g) != 0 {
		t.Fatalf("no candidates but granted: %+v", g)
	}
}

func TestVCAllocatorGrantUniqueOutVC(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		a := NewVCAllocator(5, 4, nil)
		for round := 0; round < 10; round++ {
			var reqs []VCRequest
			used := map[[2]int]bool{}
			for i := 0; i < r.Intn(10); i++ {
				in, vc := r.Intn(5), r.Intn(4)
				if used[[2]int{in, vc}] {
					continue
				}
				used[[2]int{in, vc}] = true
				reqs = append(reqs, VCRequest{
					In: in, VC: vc, Out: r.Intn(5),
					Candidates: r.Uint64() & 0b1111,
				})
			}
			grants := a.Allocate(reqs)
			outVCSeen := map[[2]int]bool{}
			inVCSeen := map[[2]int]bool{}
			for _, g := range grants {
				if outVCSeen[[2]int{g.Out, g.OutVC}] || inVCSeen[[2]int{g.In, g.VC}] {
					return false
				}
				outVCSeen[[2]int{g.Out, g.OutVC}] = true
				inVCSeen[[2]int{g.In, g.VC}] = true
				// Grant must be among the request's candidates.
				var req *VCRequest
				for i := range reqs {
					if reqs[i].In == g.In && reqs[i].VC == g.VC {
						req = &reqs[i]
					}
				}
				if req == nil || req.Out != g.Out || req.Candidates&(1<<g.OutVC) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPopcountCandidates(t *testing.T) {
	if PopcountCandidates(0b0101) != 2 {
		t.Fatal("popcount wrong")
	}
}

func TestSpeculativeNonSpecPriorityOnOutput(t *testing.T) {
	s := NewSpeculativeSwitch(5, 2, nil)
	ns := []SwitchRequest{{In: 0, VC: 0, Out: 3}}
	sp := []SwitchRequest{{In: 1, VC: 0, Out: 3}}
	gNS, gSP := s.Allocate(ns, sp)
	if len(gNS) != 1 || gNS[0].In != 0 {
		t.Fatalf("non-speculative grant lost: %+v", gNS)
	}
	if len(gSP) != 0 {
		t.Fatalf("speculative grant survived an output conflict: %+v", gSP)
	}
}

func TestSpeculativeNonSpecPriorityOnInput(t *testing.T) {
	// The same input wins non-spec for one output and spec for another:
	// the input can send only one flit, so the speculative grant must
	// be discarded.
	s := NewSpeculativeSwitch(5, 2, nil)
	ns := []SwitchRequest{{In: 0, VC: 0, Out: 3}}
	sp := []SwitchRequest{{In: 0, VC: 1, Out: 4}}
	gNS, gSP := s.Allocate(ns, sp)
	if len(gNS) != 1 {
		t.Fatalf("non-spec grant missing: %+v", gNS)
	}
	if len(gSP) != 0 {
		t.Fatalf("speculative grant from the same input survived: %+v", gSP)
	}
}

func TestSpeculativeGrantsWhenNoConflict(t *testing.T) {
	s := NewSpeculativeSwitch(5, 2, nil)
	ns := []SwitchRequest{{In: 0, VC: 0, Out: 3}}
	sp := []SwitchRequest{{In: 1, VC: 0, Out: 4}}
	gNS, gSP := s.Allocate(ns, sp)
	if len(gNS) != 1 || len(gSP) != 1 {
		t.Fatalf("conflict-free spec grant dropped: ns=%+v sp=%+v", gNS, gSP)
	}
}

func TestSpeculativeOnlySpecRequests(t *testing.T) {
	// With no non-speculative traffic, speculation must succeed — this
	// is the zero-load case that gives the speculative router its
	// 3-stage latency.
	s := NewSpeculativeSwitch(5, 2, nil)
	gNS, gSP := s.Allocate(nil, []SwitchRequest{{In: 2, VC: 1, Out: 0}})
	if len(gNS) != 0 || len(gSP) != 1 {
		t.Fatalf("lone speculative request not granted: %+v %+v", gNS, gSP)
	}
}

func TestSpeculativeAblationSpecWins(t *testing.T) {
	s := NewSpeculativeSwitch(5, 2, nil)
	s.PrioritizeNonSpec = false
	ns := []SwitchRequest{{In: 0, VC: 0, Out: 3}}
	sp := []SwitchRequest{{In: 1, VC: 0, Out: 3}}
	gNS, gSP := s.Allocate(ns, sp)
	if len(gSP) != 1 || len(gNS) != 0 {
		t.Fatalf("ablation mode: spec should win output conflicts: ns=%+v sp=%+v", gNS, gSP)
	}
}
