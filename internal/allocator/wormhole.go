package allocator

import (
	"fmt"

	"routersim/internal/arbiter"
)

// PortRequest asks to acquire output port Out for the whole duration of
// a packet at input port In (wormhole flow control).
type PortRequest struct {
	In, Out int
}

// WormholeSwitch is the switch arbiter of a wormhole router (Figure 7a):
// one p:1 matrix arbiter per output port plus a status flip-flop; a
// granted output port is held by the winning input until released by the
// packet's tail flit.
type WormholeSwitch struct {
	p       int
	arbs    []arbiter.Arbiter
	holder  []int // input port holding each output, -1 if free
	reqBits []uint64
	grants  []PortRequest // scratch, reused across Arbitrate calls
}

// NewWormholeSwitch returns a wormhole switch arbiter over p ports.
func NewWormholeSwitch(p int, factory arbiter.Factory) *WormholeSwitch {
	if factory == nil {
		factory = arbiter.MatrixFactory
	}
	w := &WormholeSwitch{
		p:       p,
		arbs:    make([]arbiter.Arbiter, p),
		holder:  make([]int, p),
		reqBits: make([]uint64, p),
	}
	for i := range w.arbs {
		w.arbs[i] = factory(p)
		w.holder[i] = -1
	}
	return w
}

// Holder returns the input port currently holding output out, or -1.
func (w *WormholeSwitch) Holder(out int) int { return w.holder[out] }

// Held reports whether output out is held.
func (w *WormholeSwitch) Held(out int) bool { return w.holder[out] >= 0 }

// Arbitrate processes one cycle of port requests. Requests for held
// ports lose (the status flip-flop masks them); each free output port
// grants at most one input, which then holds the port until Release.
// The returned slice is scratch owned by the arbiter, valid until the
// next Arbitrate.
func (w *WormholeSwitch) Arbitrate(reqs []PortRequest) []PortRequest {
	if len(reqs) == 0 {
		// No requests grant nothing and touch no arbiter or holder
		// state; skip the scratch resets.
		return w.grants[:0]
	}
	for i := range w.reqBits {
		w.reqBits[i] = 0
	}
	for _, r := range reqs {
		if r.In < 0 || r.In >= w.p || r.Out < 0 || r.Out >= w.p {
			panic(fmt.Sprintf("allocator: wormhole request out of range: %+v (p=%d)", r, w.p))
		}
		if w.holder[r.Out] >= 0 {
			continue // port unavailable; status bit masks the request
		}
		w.reqBits[r.Out] |= 1 << r.In
	}
	w.grants = w.grants[:0]
	for out := 0; out < w.p; out++ {
		if w.reqBits[out] == 0 {
			continue
		}
		if in, ok := w.arbs[out].Grant(w.reqBits[out]); ok {
			w.holder[out] = in
			w.grants = append(w.grants, PortRequest{In: in, Out: out})
		}
	}
	return w.grants
}

// Release frees output port out when a tail flit departs. Releasing a
// free port panics: it indicates a double release in the router state
// machine.
func (w *WormholeSwitch) Release(out int) {
	if w.holder[out] < 0 {
		panic(fmt.Sprintf("allocator: release of free wormhole port %d", out))
	}
	w.holder[out] = -1
}
