// Package allocator implements the switch and virtual-channel allocators
// of the canonical router architectures (Figures 7 and 8 of the paper):
//
//   - the wormhole switch arbiter, which holds output ports for whole
//     packets (Figure 7a),
//   - the separable input-first switch allocator of a virtual-channel
//     router, which allocates crossbar passage flit by flit (Figure 7b),
//   - the separable virtual-channel allocator (Figure 8),
//   - the speculative switch allocator: two parallel separable
//     allocators with non-speculative priority (Figure 7c).
//
// All allocators are built from the arbiters in internal/arbiter; the
// arbiter policy is injectable (matrix arbiters by default, matching the
// paper's gate-level designs).
package allocator

import (
	"fmt"
	"math/bits"

	"routersim/internal/arbiter"
)

// SwitchRequest asks for one flit's passage from input port In (virtual
// channel VC) to output port Out.
type SwitchRequest struct {
	In, VC, Out int
}

// SwitchGrant reports a won switch passage.
type SwitchGrant struct {
	In, VC, Out int
}

// SeparableSwitch is the input-first separable switch allocator of a
// virtual-channel router (Figure 7b): a v:1 arbiter per input port
// selects which VC bids for its output port, then a p:1 arbiter per
// output port selects among the bidding inputs.
type SeparableSwitch struct {
	p, v       int
	inputArbs  []arbiter.Arbiter // one per input port, over v VCs
	outputArbs []arbiter.Arbiter // one per output port, over p inputs

	// scratch, reused across Allocate calls
	inReqs   []uint64
	inWinner []int // winning VC per input port, -1 if none
	outReqs  []uint64
	reqOut   []int // requested output by flattened (in, vc) index
	grants   []SwitchGrant
}

// NewSeparableSwitch returns an allocator for p ports and v VCs per
// port, using arbiters from factory (nil means matrix arbiters).
func NewSeparableSwitch(p, v int, factory arbiter.Factory) *SeparableSwitch {
	if factory == nil {
		factory = arbiter.MatrixFactory
	}
	if p < 1 || v < 1 {
		panic(fmt.Sprintf("allocator: invalid switch allocator size p=%d v=%d", p, v))
	}
	s := &SeparableSwitch{
		p: p, v: v,
		inputArbs:  make([]arbiter.Arbiter, p),
		outputArbs: make([]arbiter.Arbiter, p),
		inReqs:     make([]uint64, p),
		inWinner:   make([]int, p),
		outReqs:    make([]uint64, p),
		reqOut:     make([]int, p*v),
	}
	for i := 0; i < p; i++ {
		s.inputArbs[i] = factory(v)
		s.outputArbs[i] = factory(p)
	}
	return s
}

// Allocate performs one allocation cycle over the given requests and
// returns the grants. At most one request per (In, VC) pair and one Out
// per (In, VC) may be submitted; duplicate (In, VC) submissions panic,
// as they indicate a router state-machine bug. The returned slice is
// scratch owned by the allocator: it is valid until the next Allocate.
func (s *SeparableSwitch) Allocate(reqs []SwitchRequest) []SwitchGrant {
	if len(reqs) == 0 {
		// No requests grant nothing and touch no arbiter state; skip
		// the scratch resets (they rerun on the next non-empty call).
		return s.grants[:0]
	}
	// Stage 1: per input port, arbitrate among requesting VCs. The
	// touched-port bitmasks make the whole call O(requests), not
	// O(ports): scratch entries are reset lazily on first touch and
	// both stages walk only set bits — in ascending port order, so the
	// arbiter call sequence (and with it every arbiter's priority
	// state) is exactly that of a full port scan.
	var inMask, outMask uint64
	for i := range reqs {
		r := &reqs[i]
		s.check(*r)
		if inMask&(1<<r.In) == 0 {
			inMask |= 1 << r.In
			s.inReqs[r.In] = 0
		}
		if s.inReqs[r.In]&(1<<r.VC) != 0 {
			panic(fmt.Sprintf("allocator: duplicate switch request from input %d vc %d", r.In, r.VC))
		}
		s.inReqs[r.In] |= 1 << r.VC
		s.reqOut[r.In*s.v+r.VC] = r.Out
	}
	for m := inMask; m != 0; m &= m - 1 {
		in := bits.TrailingZeros64(m)
		if w, ok := s.inputArbs[in].Grant(s.inReqs[in]); ok {
			s.inWinner[in] = w
			out := s.reqOut[in*s.v+w]
			if outMask&(1<<out) == 0 {
				outMask |= 1 << out
				s.outReqs[out] = 0
			}
			s.outReqs[out] |= 1 << in
		}
	}
	// Stage 2: per output port, arbitrate among winning inputs.
	s.grants = s.grants[:0]
	for m := outMask; m != 0; m &= m - 1 {
		out := bits.TrailingZeros64(m)
		if in, ok := s.outputArbs[out].Grant(s.outReqs[out]); ok {
			s.grants = append(s.grants, SwitchGrant{In: in, VC: s.inWinner[in], Out: out})
		}
	}
	return s.grants
}

func (s *SeparableSwitch) check(r SwitchRequest) {
	if r.In < 0 || r.In >= s.p || r.Out < 0 || r.Out >= s.p || r.VC < 0 || r.VC >= s.v {
		panic(fmt.Sprintf("allocator: switch request out of range: %+v (p=%d v=%d)", r, s.p, s.v))
	}
}
