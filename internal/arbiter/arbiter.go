// Package arbiter implements the arbiters used by the router allocators:
// the matrix (least-recently-served) arbiter the paper's gate-level
// model is built on (Figure 10), plus round-robin and fixed-priority
// arbiters for ablation studies.
//
// Requests are presented as a bitmask; Grant returns the winning
// requestor and updates the arbiter's internal priority state, exactly
// as the hardware would on a grant cycle (the priority update is the
// h = 9τ overhead in the delay model).
package arbiter

import (
	"fmt"
	"math/bits"
)

// Arbiter selects one winner among up to N requestors per grant cycle.
type Arbiter interface {
	// Grant arbitrates among the set bits of requests (bit i =
	// requestor i). It returns the winner and true, or (-1, false) when
	// requests is empty. A successful grant updates priority state.
	Grant(requests uint64) (winner int, ok bool)
	// N returns the number of requestor slots.
	N() int
}

func checkN(n int) {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("arbiter: n = %d outside [1, 64]", n))
	}
}

// Matrix is an n:1 matrix arbiter: an upper-triangular matrix of
// priority bits records a strict total order between requestors; the
// winner is the requestor that beats all other requestors, and is then
// demoted to the lowest priority (least-recently-served policy).
type Matrix struct {
	n    int
	mask uint64
	// beats[i] has bit j set when i has priority over j.
	beats []uint64
}

// NewMatrix returns a matrix arbiter over n requestors, initialized with
// requestor 0 at the highest priority.
func NewMatrix(n int) *Matrix {
	checkN(n)
	m := &Matrix{n: n, mask: mask(n), beats: make([]uint64, n)}
	for i := 0; i < n; i++ {
		// i beats all j > i initially (upper triangular).
		m.beats[i] = (^uint64(0) << (i + 1)) & m.mask
	}
	return m
}

func mask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// N returns the number of requestor slots.
func (m *Matrix) N() int { return m.n }

// Grant implements Arbiter.
func (m *Matrix) Grant(requests uint64) (int, bool) {
	requests &= m.mask
	if requests == 0 {
		return -1, false
	}
	// Walk only the set bits: requestors that did not bid cannot win.
	for rem := requests; rem != 0; rem &= rem - 1 {
		i := bits.TrailingZeros64(rem)
		// i wins if it beats every other requestor.
		others := requests &^ (1 << i)
		if m.beats[i]&others == others {
			m.demote(i)
			return i, true
		}
	}
	// Unreachable while the matrix encodes a total order.
	panic("arbiter: matrix order corrupted; no winner among requestors")
}

// demote moves winner to the bottom of the priority order: everyone now
// beats the winner, and the winner beats no one.
func (m *Matrix) demote(winner int) {
	m.beats[winner] = 0
	for j := 0; j < m.n; j++ {
		if j != winner {
			m.beats[j] |= 1 << winner
		}
	}
}

// RoundRobin is a rotating-priority arbiter: after a grant, the slot
// after the winner becomes the highest priority.
type RoundRobin struct {
	n    int
	next int
}

// NewRoundRobin returns a round-robin arbiter over n requestors.
func NewRoundRobin(n int) *RoundRobin {
	checkN(n)
	return &RoundRobin{n: n}
}

// N returns the number of requestor slots.
func (r *RoundRobin) N() int { return r.n }

// Grant implements Arbiter.
func (r *RoundRobin) Grant(requests uint64) (int, bool) {
	requests &= mask(r.n)
	if requests == 0 {
		return -1, false
	}
	for k := 0; k < r.n; k++ {
		i := (r.next + k) % r.n
		if requests&(1<<i) != 0 {
			r.next = (i + 1) % r.n
			return i, true
		}
	}
	return -1, false
}

// Fixed is a static-priority arbiter: lower indices always win. It
// exists to demonstrate (in ablation benches) the starvation a
// priority-updating arbiter avoids.
type Fixed struct{ n int }

// NewFixed returns a fixed-priority arbiter over n requestors.
func NewFixed(n int) *Fixed {
	checkN(n)
	return &Fixed{n: n}
}

// N returns the number of requestor slots.
func (f *Fixed) N() int { return f.n }

// Grant implements Arbiter.
func (f *Fixed) Grant(requests uint64) (int, bool) {
	requests &= mask(f.n)
	if requests == 0 {
		return -1, false
	}
	for i := 0; i < f.n; i++ {
		if requests&(1<<i) != 0 {
			return i, true
		}
	}
	return -1, false
}

// Factory builds an arbiter of a given size; allocators take a Factory
// so the arbiter policy is swappable.
type Factory func(n int) Arbiter

// MatrixFactory builds matrix arbiters (the paper's design).
func MatrixFactory(n int) Arbiter { return NewMatrix(n) }

// RoundRobinFactory builds round-robin arbiters.
func RoundRobinFactory(n int) Arbiter { return NewRoundRobin(n) }

// FixedFactory builds fixed-priority arbiters.
func FixedFactory(n int) Arbiter { return NewFixed(n) }
