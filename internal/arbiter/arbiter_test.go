package arbiter

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestMatrixGrantIsRequester(t *testing.T) {
	prop := func(nRaw uint8, reqSeq []uint64) bool {
		n := 1 + int(nRaw%16)
		m := NewMatrix(n)
		for _, reqs := range reqSeq {
			reqs &= mask(n)
			w, ok := m.Grant(reqs)
			if reqs == 0 {
				if ok || w != -1 {
					return false
				}
				continue
			}
			if !ok || w < 0 || w >= n || reqs&(1<<w) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMatrixStaysTotalOrder(t *testing.T) {
	// The matrix must always encode a strict total order: for i != j,
	// exactly one of beats[i][j], beats[j][i]; and the "beats" counts
	// must be a permutation of 0..n-1 (a linear order).
	checkOrder := func(m *Matrix) bool {
		seen := make([]bool, m.n)
		for i := 0; i < m.n; i++ {
			c := bits.OnesCount64(m.beats[i])
			if c >= m.n || seen[c] {
				return false
			}
			seen[c] = true
			for j := 0; j < m.n; j++ {
				if i == j {
					continue
				}
				iBj := m.beats[i]&(1<<j) != 0
				jBi := m.beats[j]&(1<<i) != 0
				if iBj == jBi {
					return false
				}
			}
		}
		return true
	}
	prop := func(nRaw uint8, reqSeq []uint64) bool {
		n := 2 + int(nRaw%15)
		m := NewMatrix(n)
		if !checkOrder(m) {
			return false
		}
		for _, reqs := range reqSeq {
			m.Grant(reqs & mask(n))
			if !checkOrder(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatrixLeastRecentlyServed(t *testing.T) {
	// With all requestors always requesting, the matrix arbiter must
	// serve them round-robin-fairly: in n consecutive grants every
	// requestor wins exactly once.
	for _, n := range []int{2, 3, 5, 8} {
		m := NewMatrix(n)
		all := mask(n)
		for round := 0; round < 4; round++ {
			won := make([]bool, n)
			for k := 0; k < n; k++ {
				w, ok := m.Grant(all)
				if !ok || won[w] {
					t.Fatalf("n=%d round %d: winner %d repeated", n, round, w)
				}
				won[w] = true
			}
		}
	}
}

func TestMatrixWinnerDemoted(t *testing.T) {
	// Requestor 0 starts at the highest priority and wins the first
	// grant; immediately afterwards it must lose any head-to-head.
	for j := 1; j < 4; j++ {
		m := NewMatrix(4)
		w1, _ := m.Grant(0b1111)
		if w1 != 0 {
			t.Fatalf("initial winner %d, want 0 (upper-triangular init)", w1)
		}
		if w, _ := m.Grant(1<<0 | 1<<j); w == 0 {
			t.Fatalf("demoted winner 0 beat requestor %d", j)
		}
	}
}

func TestMatrixNoStarvationUnderContention(t *testing.T) {
	// Every persistent requestor must be served within n grants.
	n := 8
	m := NewMatrix(n)
	reqs := uint64(0b10110101)
	last := make(map[int]int)
	for c := 0; c < 200; c++ {
		w, ok := m.Grant(reqs)
		if !ok {
			t.Fatal("no grant with pending requests")
		}
		if prev, seen := last[w]; seen && c-prev > bits.OnesCount64(reqs) {
			t.Fatalf("requestor %d waited %d grants", w, c-prev)
		}
		last[w] = c
	}
}

func TestRoundRobinRotation(t *testing.T) {
	r := NewRoundRobin(4)
	var got []int
	for i := 0; i < 8; i++ {
		w, ok := r.Grant(0b1111)
		if !ok {
			t.Fatal("no grant")
		}
		got = append(got, w)
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotation %v, want %v", got, want)
		}
	}
}

func TestRoundRobinSkipsNonRequestors(t *testing.T) {
	r := NewRoundRobin(4)
	w, ok := r.Grant(0b1000)
	if !ok || w != 3 {
		t.Fatalf("got %d, want 3", w)
	}
	w, ok = r.Grant(0b0101)
	if !ok || w != 0 {
		t.Fatalf("after wrap got %d, want 0", w)
	}
}

func TestFixedPriority(t *testing.T) {
	f := NewFixed(4)
	for i := 0; i < 10; i++ {
		if w, _ := f.Grant(0b1110); w != 1 {
			t.Fatalf("fixed arbiter must always grant lowest index, got %d", w)
		}
	}
}

func TestEmptyRequests(t *testing.T) {
	for _, a := range []Arbiter{NewMatrix(4), NewRoundRobin(4), NewFixed(4)} {
		if w, ok := a.Grant(0); ok || w != -1 {
			t.Errorf("%T: empty request set granted %d", a, w)
		}
	}
}

func TestFactories(t *testing.T) {
	for _, f := range []Factory{MatrixFactory, RoundRobinFactory, FixedFactory} {
		a := f(5)
		if a.N() != 5 {
			t.Errorf("factory produced N=%d, want 5", a.N())
		}
	}
}

func TestRequestsAboveNIgnored(t *testing.T) {
	m := NewMatrix(3)
	// Bits outside the arbiter width must be masked off.
	if w, ok := m.Grant(0b11000); ok || w != -1 {
		t.Fatalf("out-of-range-only requests granted %d", w)
	}
	if w, ok := m.Grant(0b1001); !ok || w != 0 {
		t.Fatalf("got %d, want in-range requestor 0", w)
	}
}
