// Package trace defines the versioned workload-trace format: a capture
// of every packet injection in a run (cycle, source, destination, size,
// flow id), writable as canonical binary or JSONL and replayable as a
// traffic source. Because the simulator is deterministic, a recorded
// trace replayed through any engine variant (full-scan or active-set,
// serial or parallel) reproduces the original workload byte-identically,
// which makes any captured workload a permanent regression fixture.
//
// # Format versioning
//
// Both encodings carry format version 1. The compatibility rule is
// exact-match: a decoder accepts only the version it was built for, and
// any change to the event layout or semantics bumps the version byte,
// so a trace can never be silently misread. Unknown versions are
// errors, never best-effort parses.
package trace

import (
	"fmt"
	"sort"
)

// FormatVersion is the trace format version this package reads and
// writes. Decoders reject every other version.
const FormatVersion = 1

// Event is one recorded packet injection.
type Event struct {
	// Cycle is the simulation cycle the packet was generated on.
	Cycle int64 `json:"cycle"`
	// Src and Dst are node ids in [0, Nodes).
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
	// Size is the packet length in flits (>= 1).
	Size int32 `json:"size"`
	// Flow is the packet/flow id assigned at creation.
	Flow int64 `json:"flow"`
}

// Trace is a captured workload: the node count it was recorded against
// and every injection in canonical order (non-decreasing cycle, then
// source id — the order a serial step produces them in).
type Trace struct {
	Nodes  int
	Events []Event
}

// Validate checks structural invariants: a positive node count, every
// event in range, and canonical (Cycle, Src) ordering. Decoders call it
// so a malformed file is an error at load time, not a panic at replay
// time.
func (t *Trace) Validate() error {
	if t.Nodes < 1 {
		return fmt.Errorf("trace: node count %d; need >= 1", t.Nodes)
	}
	for i, e := range t.Events {
		if e.Cycle < 0 {
			return fmt.Errorf("trace: event %d: negative cycle %d", i, e.Cycle)
		}
		if e.Src < 0 || int(e.Src) >= t.Nodes {
			return fmt.Errorf("trace: event %d: source %d outside [0,%d)", i, e.Src, t.Nodes)
		}
		if e.Dst < 0 || int(e.Dst) >= t.Nodes {
			return fmt.Errorf("trace: event %d: destination %d outside [0,%d)", i, e.Dst, t.Nodes)
		}
		if e.Size < 1 {
			return fmt.Errorf("trace: event %d: size %d flits; need >= 1", i, e.Size)
		}
		if i > 0 {
			prev := t.Events[i-1]
			if e.Cycle < prev.Cycle || (e.Cycle == prev.Cycle && e.Src < prev.Src) {
				return fmt.Errorf("trace: event %d out of canonical (cycle, src) order", i)
			}
		}
	}
	return nil
}

// Span is the recorded horizon in cycles: last injection cycle + 1
// (0 for an empty trace).
func (t *Trace) Span() int64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Cycle + 1
}

// Rate is the trace's aggregate injection rate in packets per node per
// cycle — the value the measurement layer uses in place of a configured
// injection rate during replay.
func (t *Trace) Rate() float64 {
	span := t.Span()
	if span == 0 || t.Nodes == 0 {
		return 0
	}
	return float64(len(t.Events)) / (float64(span) * float64(t.Nodes))
}

// MeanSize is the mean packet size in flits (0 for an empty trace).
func (t *Trace) MeanSize() float64 {
	if len(t.Events) == 0 {
		return 0
	}
	var sum int64
	for _, e := range t.Events {
		sum += int64(e.Size)
	}
	return float64(sum) / float64(len(t.Events))
}

// Recorder captures injections during a run. The simulator steps
// sources serially in every engine variant, so Record needs no locking
// and events arrive already in canonical order; Trace sorts defensively
// anyway so a recorder fed out of order still yields a valid trace.
type Recorder struct {
	nodes  int
	events []Event
}

// NewRecorder returns a recorder for a network of the given node count.
func NewRecorder(nodes int) *Recorder {
	return &Recorder{nodes: nodes}
}

// Record appends one injection.
func (r *Recorder) Record(cycle int64, src, dst, size int, flow int64) {
	r.events = append(r.events, Event{Cycle: cycle, Src: int32(src), Dst: int32(dst), Size: int32(size), Flow: flow})
}

// Len reports the number of injections captured so far.
func (r *Recorder) Len() int { return len(r.events) }

// Trace returns the captured workload in canonical order. The recorder
// keeps ownership of the event slice; call once, when recording is done.
func (r *Recorder) Trace() *Trace {
	sort.SliceStable(r.events, func(i, j int) bool {
		if r.events[i].Cycle != r.events[j].Cycle {
			return r.events[i].Cycle < r.events[j].Cycle
		}
		return r.events[i].Src < r.events[j].Src
	})
	return &Trace{Nodes: r.nodes, Events: r.events}
}

// Replayer re-injects one node's slice of a trace. It implements the
// traffic Injector contract plus the optional parking extensions: Tick
// for per-cycle engines, AdvanceToInjection/PendingCount for the
// active-set scheduler, and NextPacket for the recorded (dst, size) of
// each packet. It consumes no RNG, so replay is schedule-exact by
// construction.
type Replayer struct {
	events  []Event // this node's events, cycle-ascending
	cycle   int64   // next cycle Tick will account for
	next    int     // next event to release
	drawPos int     // next event NextPacket describes
	pending int     // events at the cycle the last Advance reached
}

// NewReplayer returns a replayer for the given node's injections. The
// trace must already be validated.
func NewReplayer(t *Trace, node int) *Replayer {
	var evs []Event
	for _, e := range t.Events {
		if int(e.Src) == node {
			evs = append(evs, e)
		}
	}
	return &Replayer{events: evs}
}

// Tick implements Injector: the number of packets recorded at the
// replayer's current cycle.
func (p *Replayer) Tick() int {
	c := p.cycle
	p.cycle++
	n := 0
	for p.next < len(p.events) && p.events[p.next].Cycle == c {
		n++
		p.next++
	}
	return n
}

// AdvanceToInjection jumps to the next recorded injection and returns
// the number of ticks consumed (>= 1; the last lands on the injection
// cycle), or -1 if the node's trace is exhausted. All events sharing
// that cycle are consumed; PendingCount reports how many.
func (p *Replayer) AdvanceToInjection() int64 {
	if p.next >= len(p.events) {
		return -1
	}
	at := p.events[p.next].Cycle
	k := at - p.cycle + 1
	p.cycle = at + 1
	n := 0
	for p.next < len(p.events) && p.events[p.next].Cycle == at {
		n++
		p.next++
	}
	p.pending = n
	return k
}

// PendingCount reports how many packets the injection reached by the
// last AdvanceToInjection carries.
func (p *Replayer) PendingCount() int { return p.pending }

// NextPacket returns the recorded destination and size of the next
// generated packet, in injection order.
func (p *Replayer) NextPacket() (dst, size int) {
	e := p.events[p.drawPos]
	p.drawPos++
	return int(e.Dst), int(e.Size)
}

// Remaining reports how many packets NextPacket has not yet described.
func (p *Replayer) Remaining() int { return len(p.events) - p.drawPos }
