package trace

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *Trace {
	return &Trace{
		Nodes: 9,
		Events: []Event{
			{Cycle: 0, Src: 2, Dst: 7, Size: 5, Flow: 0},
			{Cycle: 0, Src: 5, Dst: 1, Size: 1, Flow: 1},
			{Cycle: 3, Src: 2, Dst: 0, Size: 9, Flow: 2},
			{Cycle: 3, Src: 2, Dst: 4, Size: 5, Flow: 3},
			{Cycle: 12, Src: 8, Dst: 8, Size: 2, Flow: 4},
		},
	}
}

// TestBinaryRoundTrip: decode(encode(t)) == t, byte-deterministic.
func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf, buf2 bytes.Buffer
	if err := tr.EncodeBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeBinary(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("binary encoding is not deterministic")
	}
	got, err := DecodeBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
	}
}

// TestJSONLRoundTrip: same for the JSONL encoding, plus empty traces.
func TestJSONLRoundTrip(t *testing.T) {
	for _, tr := range []*Trace{sampleTrace(), {Nodes: 4}} {
		var buf bytes.Buffer
		if err := tr.EncodeJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if got.Nodes != tr.Nodes || !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, tr)
		}
	}
}

// TestDecodeDetectsFormat: Decode picks the right codec from the first
// byte.
func TestDecodeDetectsFormat(t *testing.T) {
	tr := sampleTrace()
	var bin, jl bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	for _, enc := range [][]byte{bin.Bytes(), jl.Bytes()} {
		got, err := Decode(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) {
			t.Fatal("decoded events differ")
		}
	}
}

// TestFileRoundTrip: WriteFile/ReadFile choose encodings by extension
// and agree with each other.
func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tr := sampleTrace()
	for _, name := range []string{"w.trace", "w.jsonl"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, tr); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Events, tr.Events) || got.Nodes != tr.Nodes {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// TestDecodeRejections: every malformed-input class errors with a
// useful message and never panics.
func TestDecodeRejections(t *testing.T) {
	tr := sampleTrace()
	var bin bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		t.Fatal(err)
	}
	good := bin.Bytes()

	futureVersion := append([]byte(nil), good...)
	futureVersion[5] = 2

	truncated := good[:len(good)-5]

	trailing := append(append([]byte(nil), good...), 0)

	badSrc := append([]byte(nil), good...)
	badSrc[headerSize+8] = 0xFF // first event's src -> out of range

	// Huge declared count with no payload must error fast, not allocate.
	hugeCount := append([]byte(nil), good[:headerSize]...)
	for i := 10; i < 18; i++ {
		hugeCount[i] = 0xFF
	}

	cases := []struct {
		name, errLike string
		data          []byte
	}{
		{"empty", "empty input", nil},
		{"bad magic", "bad magic", []byte("NOTATRACEFILE padding padding")},
		{"future version", "reads exactly version 1", futureVersion},
		{"truncated", "truncated", truncated},
		{"trailing", "trailing bytes", trailing},
		{"src out of range", "outside [0,9)", badSrc},
		{"huge count", "truncated", hugeCount},
		{"jsonl wrong format", `format "elsewhere"`, []byte(`{"format":"elsewhere","version":1,"nodes":2}` + "\n")},
		{"jsonl future version", "reads exactly version 1", []byte(`{"format":"routersim-trace","version":9,"nodes":2}` + "\n")},
		{"jsonl bad header", "malformed JSONL header", []byte("{nope\n")},
		{"jsonl bad event", "line 2", []byte(`{"format":"routersim-trace","version":1,"nodes":2}` + "\n{bad\n")},
		{"jsonl bad nodes", "node count 0", []byte(`{"format":"routersim-trace","version":1,"nodes":0}` + "\n")},
		{"jsonl unsorted", "canonical (cycle, src) order", []byte(`{"format":"routersim-trace","version":1,"nodes":4}` + "\n" +
			`{"cycle":5,"src":1,"dst":0,"size":1,"flow":0}` + "\n" +
			`{"cycle":2,"src":1,"dst":0,"size":1,"flow":1}` + "\n")},
	}
	for _, tc := range cases {
		_, err := Decode(bytes.NewReader(tc.data))
		if err == nil {
			t.Fatalf("%s: want error containing %q, got nil", tc.name, tc.errLike)
		}
		if !strings.Contains(err.Error(), tc.errLike) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.errLike)
		}
	}
}

// TestTraceStats pins Span/Rate/MeanSize.
func TestTraceStats(t *testing.T) {
	tr := sampleTrace()
	if tr.Span() != 13 {
		t.Fatalf("Span = %d, want 13", tr.Span())
	}
	if want := 5.0 / (13 * 9); tr.Rate() != want {
		t.Fatalf("Rate = %v, want %v", tr.Rate(), want)
	}
	if want := (5 + 1 + 9 + 5 + 2) / 5.0; tr.MeanSize() != want {
		t.Fatalf("MeanSize = %v, want %v", tr.MeanSize(), want)
	}
	empty := &Trace{Nodes: 3}
	if empty.Span() != 0 || empty.Rate() != 0 || empty.MeanSize() != 0 {
		t.Fatal("empty trace stats not zero")
	}
}

// TestRecorderCanonicalizes: a recorder fed out of canonical order
// still yields a valid trace.
func TestRecorderCanonicalizes(t *testing.T) {
	r := NewRecorder(4)
	r.Record(7, 3, 0, 5, 1)
	r.Record(7, 1, 2, 5, 0)
	r.Record(2, 2, 2, 1, 2)
	tr := r.Trace()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Cycle: 2, Src: 2, Dst: 2, Size: 1, Flow: 2},
		{Cycle: 7, Src: 1, Dst: 2, Size: 5, Flow: 0},
		{Cycle: 7, Src: 3, Dst: 0, Size: 5, Flow: 1},
	}
	if !reflect.DeepEqual(tr.Events, want) {
		t.Fatalf("events = %+v, want %+v", tr.Events, want)
	}
}

// TestReplayerTickMatchesAdvance: the replayer's per-cycle and parked
// paths enumerate the same injections, with recorded (dst, size) pairs
// delivered in order.
func TestReplayerTickMatchesAdvance(t *testing.T) {
	tr := sampleTrace()
	for node := 0; node < tr.Nodes; node++ {
		ticked := NewReplayer(tr, node)
		var at []int64
		var counts []int
		for c := int64(0); c < tr.Span(); c++ {
			if n := ticked.Tick(); n > 0 {
				at = append(at, c)
				counts = append(counts, n)
			}
		}
		adv := NewReplayer(tr, node)
		cursor := int64(-1)
		for i, want := range at {
			k := adv.AdvanceToInjection()
			if k < 1 {
				t.Fatalf("node %d: advance ended after %d of %d injections", node, i, len(at))
			}
			cursor += k
			if cursor != want {
				t.Fatalf("node %d: injection %d at %d via advance, %d via tick", node, i, cursor, want)
			}
			if adv.PendingCount() != counts[i] {
				t.Fatalf("node %d: PendingCount %d, want %d", node, adv.PendingCount(), counts[i])
			}
		}
		if adv.AdvanceToInjection() != -1 {
			t.Fatalf("node %d: exhausted replayer did not park forever", node)
		}
	}
	// Node 2 has three events; NextPacket yields them in order.
	p := NewReplayer(tr, 2)
	if p.Remaining() != 3 {
		t.Fatalf("Remaining = %d, want 3", p.Remaining())
	}
	wantDst := []int{7, 0, 4}
	wantSize := []int{5, 9, 5}
	for i := range wantDst {
		d, s := p.NextPacket()
		if d != wantDst[i] || s != wantSize[i] {
			t.Fatalf("NextPacket %d = (%d,%d), want (%d,%d)", i, d, s, wantDst[i], wantSize[i])
		}
	}
}
