package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Binary layout (all integers little-endian):
//
//	offset  size  field
//	0       5     magic "RSTRC"
//	5       1     format version (currently 1)
//	6       4     node count (uint32)
//	10      8     event count (uint64)
//	18      28×n  events: cycle int64, src int32, dst int32, size int32, flow int64
//
// The JSONL encoding is one header object followed by one event object
// per line:
//
//	{"format":"routersim-trace","version":1,"nodes":64}
//	{"cycle":12,"src":3,"dst":40,"size":5,"flow":0}

const (
	binaryMagic = "RSTRC"
	headerSize  = len(binaryMagic) + 1 + 4 + 8
	eventSize   = 28
	jsonlFormat = "routersim-trace"
)

type jsonlHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Nodes   int    `json:"nodes"`
}

// EncodeBinary writes the trace in the canonical binary encoding.
func (t *Trace) EncodeBinary(w io.Writer) error {
	buf := make([]byte, headerSize, headerSize+eventSize*len(t.Events))
	copy(buf, binaryMagic)
	buf[len(binaryMagic)] = FormatVersion
	binary.LittleEndian.PutUint32(buf[6:], uint32(t.Nodes))
	binary.LittleEndian.PutUint64(buf[10:], uint64(len(t.Events)))
	var ev [eventSize]byte
	for _, e := range t.Events {
		binary.LittleEndian.PutUint64(ev[0:], uint64(e.Cycle))
		binary.LittleEndian.PutUint32(ev[8:], uint32(e.Src))
		binary.LittleEndian.PutUint32(ev[12:], uint32(e.Dst))
		binary.LittleEndian.PutUint32(ev[16:], uint32(e.Size))
		binary.LittleEndian.PutUint64(ev[20:], uint64(e.Flow))
		buf = append(buf, ev[:]...)
	}
	_, err := w.Write(buf)
	return err
}

// DecodeBinary reads a binary-encoded trace. Malformed input — bad
// magic, unknown version, truncated events, out-of-range fields — is an
// error, never a panic, and the declared event count is not trusted for
// allocation, so a hostile header cannot force a huge allocation.
func DecodeBinary(r io.Reader) (*Trace, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short binary header: %v", err)
	}
	if string(hdr[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q; not a trace file", hdr[:len(binaryMagic)])
	}
	if v := hdr[len(binaryMagic)]; v != FormatVersion {
		return nil, fmt.Errorf("trace: format version %d; this build reads exactly version %d", v, FormatVersion)
	}
	nodes := binary.LittleEndian.Uint32(hdr[6:])
	count := binary.LittleEndian.Uint64(hdr[10:])
	t := &Trace{Nodes: int(nodes)}
	if count > 0 {
		// Grow by appending as bytes actually arrive rather than
		// trusting count, which an adversarial header can inflate.
		prealloc := count
		if prealloc > 4096 {
			prealloc = 4096
		}
		t.Events = make([]Event, 0, prealloc)
	}
	var ev [eventSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(r, ev[:]); err != nil {
			return nil, fmt.Errorf("trace: truncated after %d of %d events: %v", i, count, err)
		}
		t.Events = append(t.Events, Event{
			Cycle: int64(binary.LittleEndian.Uint64(ev[0:])),
			Src:   int32(binary.LittleEndian.Uint32(ev[8:])),
			Dst:   int32(binary.LittleEndian.Uint32(ev[12:])),
			Size:  int32(binary.LittleEndian.Uint32(ev[16:])),
			Flow:  int64(binary.LittleEndian.Uint64(ev[20:])),
		})
	}
	if extra, err := io.CopyN(io.Discard, r, 1); extra > 0 || err != io.EOF {
		return nil, fmt.Errorf("trace: trailing bytes after %d declared events", count)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodeJSONL writes the trace as JSON lines: a header object then one
// event object per line.
func (t *Trace) EncodeJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Format: jsonlFormat, Version: FormatVersion, Nodes: t.Nodes}); err != nil {
		return err
	}
	for i := range t.Events {
		if err := enc.Encode(&t.Events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL reads a JSONL-encoded trace, with the same exact-version
// and never-panic guarantees as DecodeBinary.
func DecodeJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: reading JSONL header: %v", err)
		}
		return nil, fmt.Errorf("trace: empty JSONL input")
	}
	var hdr jsonlHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("trace: malformed JSONL header: %v", err)
	}
	if hdr.Format != jsonlFormat {
		return nil, fmt.Errorf("trace: JSONL format %q; want %q", hdr.Format, jsonlFormat)
	}
	if hdr.Version != FormatVersion {
		return nil, fmt.Errorf("trace: format version %d; this build reads exactly version %d", hdr.Version, FormatVersion)
	}
	t := &Trace{Nodes: hdr.Nodes}
	line := 1
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(strings.TrimSpace(string(b))) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		t.Events = append(t.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL events: %v", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Decode reads a trace in either encoding, detected by the first byte
// ('{' is JSONL, the binary magic otherwise).
func Decode(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("trace: empty input: %v", err)
	}
	if first[0] == '{' {
		return DecodeJSONL(br)
	}
	return DecodeBinary(br)
}

// WriteFile writes the trace to path, choosing the encoding by
// extension: ".jsonl" (or ".json") writes JSON lines, anything else the
// binary encoding.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".json") {
		err = t.EncodeJSONL(f)
	} else {
		err = t.EncodeBinary(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile loads and validates a trace from path in either encoding.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}
