package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the format-detecting decoder.
// The invariants: decoding never panics, and anything that decodes
// successfully survives an encode→decode round trip in both encodings
// (decode(encode(t)) == t). Seed corpus under testdata/fuzz/FuzzDecode
// covers both encodings and the rejection paths.
func FuzzDecode(f *testing.F) {
	tr := sampleTrace()
	var bin, jl bytes.Buffer
	if err := tr.EncodeBinary(&bin); err != nil {
		f.Fatal(err)
	}
	if err := tr.EncodeJSONL(&jl); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add(jl.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte(`{"format":"routersim-trace","version":1,"nodes":3}` + "\n"))
	f.Add(bin.Bytes()[:headerSize])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // malformed input must error, not panic — reaching here is the pass
		}
		for _, enc := range []func(*Trace, *bytes.Buffer) error{
			func(tr *Trace, b *bytes.Buffer) error { return tr.EncodeBinary(b) },
			func(tr *Trace, b *bytes.Buffer) error { return tr.EncodeJSONL(b) },
		} {
			var buf bytes.Buffer
			if err := enc(decoded, &buf); err != nil {
				t.Fatalf("re-encoding a valid trace failed: %v", err)
			}
			again, err := Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-decoding our own encoding failed: %v", err)
			}
			if again.Nodes != decoded.Nodes || !reflect.DeepEqual(again.Events, decoded.Events) {
				t.Fatalf("round trip not identity:\nfirst  %+v\nsecond %+v", decoded, again)
			}
		}
	})
}
