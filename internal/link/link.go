// Package link models the wires between routers: fixed-delay pipelines
// carrying flits downstream and credits upstream. The paper assumes a
// one-cycle flit propagation delay; credit propagation is one cycle
// except in the Figure 18 experiment, where it is four.
package link

import "fmt"

// Wire is a fixed-latency delay line. Items pushed during cycle t become
// deliverable at cycle t+delay. Because the delay is constant, arrivals
// are FIFO-ordered and the implementation is a simple ring of pending
// entries.
type Wire[T any] struct {
	delay int64
	buf   []entry[T]
	head  int
	n     int
}

type entry[T any] struct {
	due int64
	v   T
}

// NewWire returns a wire with the given propagation delay in cycles
// (must be ≥ 1: combinational links would break the simulator's
// registered-stage semantics).
func NewWire[T any](delay int) *Wire[T] {
	if delay < 1 {
		panic(fmt.Sprintf("link: wire delay %d; need >= 1 cycle", delay))
	}
	return &Wire[T]{delay: int64(delay), buf: make([]entry[T], 8)}
}

// Delay returns the propagation delay in cycles.
func (w *Wire[T]) Delay() int { return int(w.delay) }

// Len returns the number of items in flight.
func (w *Wire[T]) Len() int { return w.n }

// Push places v on the wire during cycle now; it arrives at now+delay.
// Calls must use nondecreasing now values (the simulator advances cycle
// by cycle), which keeps arrivals FIFO-ordered.
func (w *Wire[T]) Push(now int64, v T) {
	if w.n == len(w.buf) {
		grown := make([]entry[T], 2*len(w.buf))
		for i := 0; i < w.n; i++ {
			grown[i] = w.buf[(w.head+i)%len(w.buf)]
		}
		w.buf = grown
		w.head = 0
	}
	w.buf[(w.head+w.n)%len(w.buf)] = entry[T]{due: now + w.delay, v: v}
	w.n++
}

// Deliver invokes fn for every item due at or before cycle now, in
// arrival order, removing them from the wire.
func (w *Wire[T]) Deliver(now int64, fn func(T)) {
	for w.n > 0 {
		e := w.buf[w.head]
		if e.due > now {
			return
		}
		w.buf[w.head] = entry[T]{}
		w.head = (w.head + 1) % len(w.buf)
		w.n--
		fn(e.v)
	}
}
