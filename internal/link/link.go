// Package link models the wires between routers: fixed-delay pipelines
// carrying flits downstream and credits upstream. The paper assumes a
// one-cycle flit propagation delay; credit propagation is one cycle
// except in the Figure 18 experiment, where it is four.
package link

import (
	"fmt"
	"math"
)

// neverDue marks the head slot of an empty ring: a single due-time
// compare then rejects the (common) empty-wire Pop without consulting
// the length.
const neverDue = math.MaxInt64

// Wire is a fixed-latency delay line. Items pushed during cycle t become
// deliverable at cycle t+delay. Because the delay is constant, arrivals
// are FIFO-ordered and the implementation is a power-of-two ring of
// pending entries indexed with a mask.
//
// A wire has exactly one producer (Push) and one consumer (Pop); the
// parallel network stepper relies on those two never running in the same
// phase, which is what makes a Wire safe without locks.
type Wire[T any] struct {
	delay int64
	buf   []entry[T]
	mask  int
	head  int
	n     int
}

type entry[T any] struct {
	due int64
	v   T
}

// NewWire returns a wire with the given propagation delay in cycles
// (must be ≥ 1: combinational links would break the simulator's
// registered-stage semantics). Capacity is preallocated from the delay
// and the one-item-per-cycle link bandwidth, so a wire never grows in
// steady state.
func NewWire[T any](delay int) *Wire[T] {
	return NewWireCap[T](delay, 0)
}

// NewWireCap is NewWire with a minimum item capacity for wires whose
// consumer may lag the producer: the active-set scheduler drains a
// sleeping router's (or parked source's) credit wires only at its next
// wake, so those wires are presized to the credit-loop bound (the
// upstream buffer slot count) instead of growing on first sleep.
func NewWireCap[T any](delay, minCapacity int) *Wire[T] {
	if delay < 1 {
		panic(fmt.Sprintf("link: wire delay %d; need >= 1 cycle", delay))
	}
	// At one push per cycle, at most delay+1 items are in flight between
	// a push at t and the drain at t+delay (inclusive).
	capacity := delay + 1
	if minCapacity > capacity {
		capacity = minCapacity
	}
	capacity = ceilPow2(capacity)
	w := &Wire[T]{delay: int64(delay), buf: make([]entry[T], capacity), mask: capacity - 1}
	w.buf[0].due = neverDue
	return w
}

func ceilPow2(n int) int {
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}

// Delay returns the propagation delay in cycles.
func (w *Wire[T]) Delay() int { return int(w.delay) }

// NextDue returns the arrival cycle of the oldest in-flight item, or
// NeverDue for an empty wire — one load, no branch. The active-set
// scheduler's quiescence check uses it to assert that a wire carrying
// no scheduled wake really holds nothing deliverable.
func (w *Wire[T]) NextDue() int64 { return w.buf[w.head].due }

// NeverDue is the NextDue value of an empty wire.
const NeverDue = int64(neverDue)

// Len returns the number of items in flight.
func (w *Wire[T]) Len() int { return w.n }

// Push places v on the wire during cycle now; it arrives at now+delay.
// Calls must use nondecreasing now values (the simulator advances cycle
// by cycle), which keeps arrivals FIFO-ordered.
func (w *Wire[T]) Push(now int64, v T) {
	if w.n == len(w.buf) {
		w.grow()
	}
	w.buf[(w.head+w.n)&w.mask] = entry[T]{due: now + w.delay, v: v}
	w.n++
}

// grow doubles the ring. Preallocation makes this unreachable for
// bandwidth-1 links whose consumer keeps up (flit wires) or whose
// backlog bound was given to NewWireCap (credit wires under the
// active-set scheduler); it is kept as the safety net for anything
// else.
func (w *Wire[T]) grow() {
	grown := make([]entry[T], 2*len(w.buf))
	for i := 0; i < w.n; i++ {
		grown[i] = w.buf[(w.head+i)&w.mask]
	}
	w.buf = grown
	w.mask = len(grown) - 1
	w.head = 0
}

// MoveTo appends every in-flight item of w to dst, preserving due
// times, and leaves w empty. It is the boundary-exchange primitive of
// the sharded engine: a shard pushes onto a private outbox wire during
// its window, and the barrier moves the batch onto the receiving
// router's real input wire. The caller guarantees dues are appended in
// nondecreasing order relative to dst's existing tail (the lookahead
// bound: everything already in dst was pushed at least one window
// earlier on the same single-producer link), so FIFO pop order is
// preserved. onItem, when non-nil, observes each moved item's due cycle
// — the barrier uses it to schedule arrival wakes.
func (w *Wire[T]) MoveTo(dst *Wire[T], onItem func(due int64)) {
	for w.n > 0 {
		h := w.head
		e := w.buf[h]
		w.buf[h] = entry[T]{}
		w.head = (h + 1) & w.mask
		w.n--
		if dst.n == len(dst.buf) {
			dst.grow()
		}
		dst.buf[(dst.head+dst.n)&dst.mask] = e
		dst.n++
		if onItem != nil {
			onItem(e.due)
		}
	}
	w.buf[w.head].due = neverDue
}

// Scan calls fn for every in-flight item in FIFO order without
// consuming anything. It is the audit mode's census primitive: the
// invariant checker counts flits and credits still on the wire — due
// or not — without perturbing delivery.
func (w *Wire[T]) Scan(fn func(v T)) {
	for i := 0; i < w.n; i++ {
		fn(w.buf[(w.head+i)&w.mask].v)
	}
}

// Pop removes and returns the oldest item due at or before cycle now.
// It returns ok=false when nothing (more) is due. Draining a wire is a
// loop over Pop, which keeps the hot path free of closure calls:
//
//	for v, ok := w.Pop(now); ok; v, ok = w.Pop(now) { ... }
func (w *Wire[T]) Pop(now int64) (T, bool) {
	h := w.head
	// The empty ring keeps neverDue in its head slot, so one compare
	// covers both "empty" and "nothing due yet".
	if w.buf[h].due > now {
		var zero T
		return zero, false
	}
	v := w.buf[h].v
	w.buf[h] = entry[T]{}
	w.head = (h + 1) & w.mask
	w.n--
	if w.n == 0 {
		w.buf[w.head].due = neverDue
	}
	return v, true
}
