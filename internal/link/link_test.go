package link

import (
	"sort"
	"testing"
	"testing/quick"
)

func drain(w *Wire[int], now int64) []int {
	var got []int
	for v, ok := w.Pop(now); ok; v, ok = w.Pop(now) {
		got = append(got, v)
	}
	return got
}

func TestWireDelay(t *testing.T) {
	w := NewWire[int](3)
	w.Push(10, 42)
	for now := int64(10); now < 13; now++ {
		if got := drain(w, now); len(got) != 0 {
			t.Fatalf("cycle %d: early delivery %v", now, got)
		}
	}
	if got := drain(w, 13); len(got) != 1 || got[0] != 42 {
		t.Fatalf("cycle 13: got %v, want [42]", got)
	}
}

func TestWireFIFOOrder(t *testing.T) {
	w := NewWire[int](1)
	for i := 0; i < 10; i++ {
		w.Push(int64(i), i)
	}
	var got []int
	for now := int64(0); now < 12; now++ {
		got = append(got, drain(w, now)...)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d, want 10", len(got))
	}
}

func TestWireGrowth(t *testing.T) {
	// Push far more than the initial ring capacity in one cycle.
	w := NewWire[int](2)
	for i := 0; i < 1000; i++ {
		w.Push(5, i)
	}
	if w.Len() != 1000 {
		t.Fatalf("in flight %d, want 1000", w.Len())
	}
	got := drain(w, 7)
	if len(got) != 1000 {
		t.Fatalf("delivered %d, want 1000", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("growth broke FIFO order at %d: %d", i, v)
		}
	}
}

func TestWirePropertyConservation(t *testing.T) {
	// Everything pushed is delivered exactly once, at push time + delay.
	// Pushes must be at nondecreasing cycles (simulator invariant).
	prop := func(pushCycles []uint8, delayRaw uint8) bool {
		delay := 1 + int(delayRaw%5)
		w := NewWire[int](delay)
		sort.Slice(pushCycles, func(i, j int) bool { return pushCycles[i] < pushCycles[j] })
		type ev struct{ due int64 }
		var evs []ev
		for i, c := range pushCycles {
			w.Push(int64(c), i)
			evs = append(evs, ev{due: int64(c) + int64(delay)})
		}
		delivered := 0
		for now := int64(0); now <= 300; now++ {
			for v, ok := w.Pop(now); ok; v, ok = w.Pop(now) {
				if evs[v].due > now {
					t.Errorf("item %d delivered at %d before due %d", v, now, evs[v].due)
				}
				delivered++
			}
		}
		return delivered == len(pushCycles) && w.Len() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWireValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delay wire must panic")
		}
	}()
	NewWire[int](0)
}

func TestWireNextDue(t *testing.T) {
	w := NewWire[int](3)
	if w.NextDue() != NeverDue {
		t.Fatalf("empty wire NextDue = %d, want NeverDue", w.NextDue())
	}
	w.Push(10, 1)
	w.Push(11, 2)
	if w.NextDue() != 13 {
		t.Fatalf("NextDue = %d, want 13 (oldest push + delay)", w.NextDue())
	}
	if _, ok := w.Pop(12); ok {
		t.Fatal("popped before due")
	}
	if v, ok := w.Pop(13); !ok || v != 1 {
		t.Fatalf("Pop(13) = %v %v, want 1 true", v, ok)
	}
	if w.NextDue() != 14 {
		t.Fatalf("NextDue after pop = %d, want 14", w.NextDue())
	}
	w.Pop(14)
	if w.NextDue() != NeverDue {
		t.Fatalf("drained wire NextDue = %d, want NeverDue", w.NextDue())
	}
}
