package traffic

import (
	"math"
	"strings"
	"testing"

	"routersim/internal/rng"
)

// tickSchedule runs inj per-cycle for cycles ticks and returns the
// (cycle, count) pairs of every nonzero return.
func tickSchedule(inj Injector, cycles int64) (at []int64, counts []int) {
	for t := int64(0); t < cycles; t++ {
		if n := inj.Tick(); n > 0 {
			at = append(at, t)
			counts = append(counts, n)
		}
	}
	return at, counts
}

// TestMMPPAdvanceMatchesTick: AdvanceToInjection must enumerate exactly
// the injection cycles per-cycle ticking produces — same cycles, same
// RNG draw sequence — for a spread of burst shapes. This is the parking
// contract the active-set scheduler relies on.
func TestMMPPAdvanceMatchesTick(t *testing.T) {
	cases := []struct {
		rate, on, off float64
	}{
		{0.02, 50, 150},
		{0.1, 10, 30},
		{0.25, 100, 100},
		{0.5, 1, 1}, // mean dwell 1: state flips every cycle
	}
	for _, tc := range cases {
		ticked, err := NewMMPP(tc.rate, tc.on, tc.off, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		advanced, err := NewMMPP(tc.rate, tc.on, tc.off, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		const cycles = 20000
		at, counts := tickSchedule(ticked, cycles)
		if len(at) == 0 {
			t.Fatalf("rate=%v on=%v off=%v: no injections in %d cycles", tc.rate, tc.on, tc.off, cycles)
		}
		for _, n := range counts {
			if n != 1 {
				t.Fatalf("MMPP Tick returned %d, want 1", n)
			}
		}
		cursor := int64(-1)
		for i, want := range at {
			k := advanced.AdvanceToInjection()
			if k < 1 {
				t.Fatalf("rate=%v on=%v off=%v: AdvanceToInjection ended after %d of %d injections",
					tc.rate, tc.on, tc.off, i, len(at))
			}
			cursor += k
			if cursor != want {
				t.Fatalf("rate=%v on=%v off=%v: injection %d at cycle %d via advance, %d via tick",
					tc.rate, tc.on, tc.off, i, cursor, want)
			}
		}
	}
}

// TestBatchAdvanceMatchesTick: the batch process's advance path must
// reproduce per-cycle ticking's release cycles, and every release must
// carry the whole batch (Tick count and PendingCount agree).
func TestBatchAdvanceMatchesTick(t *testing.T) {
	for _, size := range []int{1, 4, 16} {
		ticked, err := NewBatch(0.05, size, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		advanced, err := NewBatch(0.05, size, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		const cycles = 20000
		at, counts := tickSchedule(ticked, cycles)
		if len(at) == 0 {
			t.Fatalf("size=%d: no releases in %d cycles", size, cycles)
		}
		for _, n := range counts {
			if n != size {
				t.Fatalf("size=%d: Tick returned %d at a release", size, n)
			}
		}
		if advanced.PendingCount() != size {
			t.Fatalf("PendingCount = %d, want %d", advanced.PendingCount(), size)
		}
		cursor := int64(-1)
		for i, want := range at {
			k := advanced.AdvanceToInjection()
			if k < 1 {
				t.Fatalf("size=%d: AdvanceToInjection ended after %d of %d releases", size, i, len(at))
			}
			cursor += k
			if cursor != want {
				t.Fatalf("size=%d: release %d at cycle %d via advance, %d via tick", size, i, cursor, want)
			}
		}
	}
}

// TestBurstyZeroRate: zero-rate bursty injectors never fire and park
// forever, exactly like the zero-rate constant source.
func TestBurstyZeroRate(t *testing.T) {
	m, err := NewMMPP(0, 10, 30, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(0, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if m.Tick() != 0 || b.Tick() != 0 {
			t.Fatal("zero-rate injector fired")
		}
	}
	if m.AdvanceToInjection() != -1 {
		t.Fatal("zero-rate MMPP did not park forever")
	}
	if b.AdvanceToInjection() != -1 {
		t.Fatal("zero-rate batch did not park forever")
	}
}

// TestMMPPMeanRate is the statistical sanity gate: over a pinned seed,
// the empirical MMPP rate must sit within a batch-means confidence
// interval of the configured rate. Batches are far longer than the
// burst timescale (on+off), so batch rates are close to independent and
// the interval is honest about burst-induced variance.
func TestMMPPMeanRate(t *testing.T) {
	const (
		rate     = 0.02
		batches  = 100
		batchLen = 10000
	)
	m, err := NewMMPP(rate, 50, 150, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for b := 0; b < batches; b++ {
		count := 0
		for i := 0; i < batchLen; i++ {
			count += m.Tick()
		}
		r := float64(count) / batchLen
		sum += r
		sumSq += r * r
	}
	mean := sum / batches
	variance := (sumSq - sum*sum/batches) / (batches - 1)
	sem := math.Sqrt(variance / batches)
	if diff := math.Abs(mean - rate); diff > 4*sem+1e-9 {
		t.Fatalf("empirical rate %.5f vs configured %.5f: off by %.5f (> 4 sem = %.5f)", mean, rate, diff, 4*sem)
	}
}

// TestBatchMeanRate: same gate for the batch process (mean packets per
// cycle equals the configured rate, not rate × size).
func TestBatchMeanRate(t *testing.T) {
	const (
		rate     = 0.08
		size     = 8
		batches  = 100
		batchLen = 10000
	)
	b, err := NewBatch(rate, size, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumSq float64
	for i := 0; i < batches; i++ {
		count := 0
		for c := 0; c < batchLen; c++ {
			count += b.Tick()
		}
		r := float64(count) / batchLen
		sum += r
		sumSq += r * r
	}
	mean := sum / batches
	variance := (sumSq - sum*sum/batches) / (batches - 1)
	sem := math.Sqrt(variance / batches)
	if diff := math.Abs(mean - rate); diff > 4*sem+1e-9 {
		t.Fatalf("empirical rate %.5f vs configured %.5f: off by %.5f (> 4 sem = %.5f)", mean, rate, diff, 4*sem)
	}
}

// TestBurstyInfeasibleRates: loads the burst shape cannot deliver are
// construction errors, never silent clamps.
func TestBurstyInfeasibleRates(t *testing.T) {
	// ON-state probability 0.9*(10+90)/10 = 9 > 1.
	if _, err := NewMMPP(0.9, 10, 90, rng.New(1)); err == nil {
		t.Fatal("MMPP accepted an undeliverable rate")
	}
	// Release probability 3/2 > 1.
	if _, err := NewBatch(3, 2, rng.New(1)); err == nil {
		t.Fatal("Batch accepted an undeliverable rate")
	}
	if _, err := NewMMPP(0.1, 0.5, 30, rng.New(1)); err == nil {
		t.Fatal("MMPP accepted a sub-cycle dwell time")
	}
	if _, err := NewBatch(0.1, 0, rng.New(1)); err == nil {
		t.Fatal("Batch accepted size 0")
	}
}

// TestSizerDistributions checks each size distribution's support and
// mean.
func TestSizerDistributions(t *testing.T) {
	r := rng.New(3)
	f := FixedSize{N: 5}
	if f.Sample(r) != 5 || f.Mean() != 5 {
		t.Fatal("FixedSize broken")
	}
	u := UniformSize{Min: 2, Max: 9}
	if u.Mean() != 5.5 {
		t.Fatalf("UniformSize mean %v, want 5.5", u.Mean())
	}
	seen := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		s := u.Sample(r)
		if s < 2 || s > 9 {
			t.Fatalf("uniform sample %d outside [2,9]", s)
		}
		seen[s] = true
	}
	if len(seen) != 8 {
		t.Fatalf("uniform support covered %d of 8 values", len(seen))
	}
	b := BimodalSize{Small: 1, Large: 9, P: 0.25}
	if got, want := b.Mean(), 1*0.75+9*0.25; math.Abs(got-want) > 1e-12 {
		t.Fatalf("BimodalSize mean %v, want %v", got, want)
	}
	large := 0
	const n = 20000
	for i := 0; i < n; i++ {
		switch b.Sample(r) {
		case 9:
			large++
		case 1:
		default:
			t.Fatal("bimodal sample outside support")
		}
	}
	if frac := float64(large) / n; math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("bimodal large fraction %.3f, want ~0.25", frac)
	}
}

// TestParseSource covers the accepted forms and every rejection path of
// the source grammar; error messages must point at the valid specs or
// the offending parameter.
func TestParseSource(t *testing.T) {
	good := []struct {
		spec string
		want SourceSpec
	}{
		{"", SourceSpec{Kind: "const"}},
		{"const", SourceSpec{Kind: "const"}},
		{"bernoulli", SourceSpec{Kind: "bernoulli"}},
		{"mmpp:on=40,off=160", SourceSpec{Kind: "mmpp", On: 40, Off: 160}},
		{"mmpp:off=160,on=40", SourceSpec{Kind: "mmpp", On: 40, Off: 160}},
		{"batch:size=8", SourceSpec{Kind: "batch", BatchSize: 8}},
		{"trace:file=foo/bar.trace", SourceSpec{Kind: "trace", File: "foo/bar.trace"}},
	}
	for _, tc := range good {
		got, err := ParseSource(tc.spec)
		if err != nil {
			t.Fatalf("ParseSource(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSource(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}

	bad := []struct {
		spec    string
		errLike string
	}{
		{"poisson", "unknown source"},
		{"const:x=1", "takes no parameters"},
		{"bernoulli:p=0.5", "takes no parameters"},
		{"mmpp", "missing required parameter \"on\""},
		{"mmpp:on=40", "missing required parameter \"off\""},
		{"mmpp:on=40,off=160,on=40", "duplicate parameter"},
		{"mmpp:on=40,off=160,burst=3", "unknown parameter"},
		{"mmpp:on=x,off=160", "parameter on"},
		{"mmpp:on", "KEY=VALUE"},
		{"mmpp:on=0.2,off=160", ">= 1 cycle"},
		{"batch", "missing required parameter \"size\""},
		{"batch:size=0", "need >= 1"},
		{"batch:size=two", "parameter size"},
		{"trace", "missing required parameter \"file\""},
		{"trace:file=", "non-empty file path"},
	}
	for _, tc := range bad {
		_, err := ParseSource(tc.spec)
		if err == nil {
			t.Fatalf("ParseSource(%q): want error containing %q, got nil", tc.spec, tc.errLike)
		}
		if !strings.Contains(err.Error(), tc.errLike) {
			t.Fatalf("ParseSource(%q): error %q does not mention %q", tc.spec, err, tc.errLike)
		}
	}
}

// TestParseSizes covers the size-distribution grammar the same way.
func TestParseSizes(t *testing.T) {
	if s, err := ParseSizes(""); err != nil || s != nil {
		t.Fatalf("ParseSizes(\"\") = %v, %v; want nil, nil", s, err)
	}
	good := []struct {
		spec string
		want Sizer
	}{
		{"fixed:7", FixedSize{N: 7}},
		{"uniform:min=1,max=9", UniformSize{Min: 1, Max: 9}},
		{"bimodal:small=1,large=9,p=0.1", BimodalSize{Small: 1, Large: 9, P: 0.1}},
	}
	for _, tc := range good {
		got, err := ParseSizes(tc.spec)
		if err != nil {
			t.Fatalf("ParseSizes(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSizes(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}

	bad := []struct {
		spec    string
		errLike string
	}{
		{"pareto:a=2", "unknown size distribution"},
		{"fixed:0", "need >= 1"},
		{"fixed:x", "fixed"},
		{"uniform:min=3", "missing required parameter \"max\""},
		{"uniform:min=5,max=2", "1 <= min <= max"},
		{"uniform:min=0,max=4", "1 <= min <= max"},
		{"uniform:min=1,max=4,skew=2", "unknown parameter"},
		{"bimodal:small=1,large=9", "missing required parameter \"p\""},
		{"bimodal:small=9,large=1,p=0.1", "1 <= small <= large"},
		{"bimodal:small=1,large=9,p=1.5", "outside [0,1]"},
	}
	for _, tc := range bad {
		_, err := ParseSizes(tc.spec)
		if err == nil {
			t.Fatalf("ParseSizes(%q): want error containing %q, got nil", tc.spec, tc.errLike)
		}
		if !strings.Contains(err.Error(), tc.errLike) {
			t.Fatalf("ParseSizes(%q): error %q does not mention %q", tc.spec, err, tc.errLike)
		}
	}
}

// TestSourceSpecString pins the canonical re-rendering used by labels.
func TestSourceSpecString(t *testing.T) {
	for _, spec := range []string{"const", "bernoulli", "mmpp:on=40,off=160", "batch:size=8", "trace:file=w.trace"} {
		parsed, err := ParseSource(spec)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.String() != spec {
			t.Fatalf("SourceSpec(%q).String() = %q", spec, parsed.String())
		}
	}
}
