// Package traffic generates the workloads of the paper's evaluation:
// uniformly distributed traffic to random destinations injected by
// constant-rate sources (Section 5), plus the standard synthetic
// patterns (transpose, bit-complement, bit-reversal, hotspot) as
// extensions for sensitivity studies.
package traffic

import (
	"fmt"
	"math/bits"

	"routersim/internal/rng"
)

// Pattern chooses a destination for each generated packet.
type Pattern interface {
	// Dest returns the destination node for a packet created at src in
	// a network of n nodes. Implementations must return a value in
	// [0, n) different from src when possible.
	Dest(src, n int, r *rng.RNG) int
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform sends each packet to a destination drawn uniformly from all
// other nodes — the paper's workload, chosen because flow control is
// relatively invariant to traffic pattern (footnote 13).
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(src, n int, r *rng.RNG) int {
	if n < 2 {
		return src
	}
	d := r.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Transpose swaps the two halves of the node index's bits — on a k×k
// network with power-of-two k this is the matrix transpose
// (x, y) → (y, x). It is defined for any node count that is an even
// power of two (so the index splits into two equal halves), which lets
// the same pattern run on meshes, tori, rings, and hypercubes alike.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(src, n int, r *rng.RNG) int {
	half := (bits.Len(uint(n)) - 1) / 2
	lo := src & ((1 << half) - 1)
	return lo<<half | src>>half
}

// BitComplement sends node i to node (n-1)-i.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bit-complement" }

// Dest implements Pattern.
func (BitComplement) Dest(src, n int, r *rng.RNG) int { return n - 1 - src }

// BitReversal sends node i to the bit-reversal of i (n must be a power
// of two).
type BitReversal struct{}

// Name implements Pattern.
func (BitReversal) Name() string { return "bit-reversal" }

// Dest implements Pattern.
func (BitReversal) Dest(src, n int, r *rng.RNG) int {
	width := bits.Len(uint(n)) - 1
	return int(bits.Reverse(uint(src)) >> (bits.UintSize - width))
}

// Hotspot sends a fraction of traffic to one hot node and the rest
// uniformly.
type Hotspot struct {
	Node int
	// Frac is the probability a packet targets Node.
	Frac float64
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%.2f)", h.Node, h.Frac) }

// Dest implements Pattern.
func (h Hotspot) Dest(src, n int, r *rng.RNG) int {
	if src != h.Node && r.Float64() < h.Frac {
		return h.Node
	}
	return Uniform{}.Dest(src, n, r)
}

// Injector decides how many packets a source creates each cycle.
type Injector interface {
	// Tick advances one cycle and returns the number of packets to
	// create (0 or 1 for the paper's processes).
	Tick() int
}

// ConstantRate is the paper's "constant rate source": a deterministic
// token-accumulator process generating a packet every 1/rate cycles. A
// random initial phase decorrelates the sources so all nodes do not
// inject on the same cycle.
type ConstantRate struct {
	rate float64
	acc  float64
}

// NewConstantRate returns a constant-rate injector at rate packets per
// cycle with initial phase in [0, 1) (fraction of the interarrival
// interval already elapsed).
func NewConstantRate(rate, phase float64) *ConstantRate {
	if rate < 0 {
		panic("traffic: negative injection rate")
	}
	if phase < 0 || phase >= 1 {
		phase = 0
	}
	return &ConstantRate{rate: rate, acc: phase}
}

// Tick implements Injector.
func (c *ConstantRate) Tick() int {
	c.acc += c.rate
	if c.acc >= 1 {
		c.acc--
		return 1
	}
	return 0
}

// NextInjection returns the number of future Tick calls until Tick next
// returns nonzero (>= 1), or -1 if it never will (zero rate). It does
// not advance the injector: it replays the exact floating-point
// accumulator sequence Tick would execute on a copy.
func (c *ConstantRate) NextInjection() int64 {
	if c.rate <= 0 {
		return -1
	}
	acc := c.acc
	var k int64
	for {
		next := acc + c.rate
		if next == acc {
			// The accumulator stalled below 1 (rate < ulp(acc)/2): the
			// addition is a floating-point no-op now and forever, so
			// Tick can never fire again.
			return -1
		}
		acc = next
		k++
		if acc >= 1 {
			return k
		}
	}
}

// AdvanceToInjection runs Tick until it returns nonzero and reports the
// number of ticks consumed (>= 1; the last one is the injection), or -1
// — consuming nothing — if the injector can never fire (zero rate). The
// consumed ticks execute the exact floating-point accumulator sequence
// per-cycle ticking would, so a caller that parks the source and wakes
// it after exactly that many cycles observes a bit-identical injection
// schedule. This is what lets the network's active-set scheduler skip
// idle constant-rate sources entirely.
func (c *ConstantRate) AdvanceToInjection() int64 {
	if c.rate <= 0 {
		return -1
	}
	// The loop body performs exactly Tick's float operations (add,
	// compare, subtract) on register-resident copies, so the schedule
	// is bit-identical to per-cycle ticking at a fraction of the cost —
	// at very low rates this loop is most of what a parked source does.
	acc, rate := c.acc, c.rate
	var k int64
	for {
		next := acc + rate
		if next == acc {
			// Stalled below 1 (see NextInjection): every further Tick
			// is a no-op, so the injector can never fire again. The
			// ticks consumed so far stay consumed — a permanently
			// parked source's state is never observed again.
			c.acc = acc
			return -1
		}
		acc = next
		k++
		if acc >= 1 {
			c.acc = acc - 1
			return k
		}
	}
}

// Bernoulli injects a packet each cycle with independent probability p.
type Bernoulli struct {
	p float64
	r *rng.RNG
}

// NewBernoulli returns a Bernoulli injection process.
func NewBernoulli(p float64, r *rng.RNG) *Bernoulli {
	return &Bernoulli{p: p, r: r}
}

// Tick implements Injector.
func (b *Bernoulli) Tick() int {
	if b.r.Float64() < b.p {
		return 1
	}
	return 0
}
