package traffic

import (
	"fmt"
	"math"

	"routersim/internal/rng"
)

// This file adds the bursty arrival processes: an on/off MMPP (Markov-
// modulated Poisson process, the standard two-state burst model) and a
// batch-arrival process. Both are built so that every random draw
// happens at an *event* boundary — a state transition, an injection, a
// batch release — never per cycle. That is what makes them parkable:
// AdvanceToInjection can jump from event to event executing exactly the
// draws per-cycle Tick would, so the active-set scheduler skips the
// idle gaps while the injection schedule (and the RNG stream) stays
// bit-identical to the full-scan engine's.

// geometric samples a geometric dwell: the number of cycles (>= 1)
// until the first success of a per-cycle Bernoulli(p) trial, by
// inverting the geometric CDF on one uniform draw. p >= 1 collapses to
// 1 cycle; the caller guards p <= 0 (the event never fires).
func geometric(p float64, r *rng.RNG) int64 {
	if p >= 1 {
		r.Float64() // keep the draw count independent of p
		return 1
	}
	u := r.Float64()
	// ceil(log(1-u)/log(1-p)) via floor+1; u in [0,1) keeps log finite.
	k := int64(math.Log(1-u)/math.Log(1-p)) + 1
	if k < 1 {
		k = 1
	}
	return k
}

// MMPP is a two-state on/off Markov-modulated injection process: the
// source alternates between an ON state that injects with per-cycle
// probability pOn and a silent OFF state. State holding times are
// geometric with the configured means, so the process is the discrete-
// time MMPP-2 burst model. The long-run mean rate equals the configured
// rate: pOn = rate × (on+off)/on.
//
// All draws (state holding times, within-burst gaps) are pre-sampled
// geometrics consumed at event boundaries, so MMPP supports exact
// parking via AdvanceToInjection.
type MMPP struct {
	pOn      float64 // injection probability per ON cycle
	pExitOn  float64 // 1/mean ON dwell
	pExitOff float64 // 1/mean OFF dwell
	r        *rng.RNG

	on    bool
	dwell int64 // remaining cycles in the current state (>= 1)
	gap   int64 // remaining ON cycles until the next injection (-1: never)
}

// NewMMPP returns an on/off MMPP injector with the given long-run mean
// rate (packets/cycle) and mean ON/OFF dwell times (cycles, each >= 1).
// The required ON-state injection probability rate×(on+off)/on must not
// exceed 1 — a rate the duty cycle cannot deliver is an error, not a
// silent clamp.
func NewMMPP(rate, onMean, offMean float64, r *rng.RNG) (*MMPP, error) {
	if rate < 0 {
		return nil, fmt.Errorf("traffic: mmpp: negative rate %v", rate)
	}
	if onMean < 1 || offMean < 1 {
		return nil, fmt.Errorf("traffic: mmpp: mean dwell times must be >= 1 cycle, got on=%v off=%v", onMean, offMean)
	}
	pOn := rate * (onMean + offMean) / onMean
	if pOn > 1 {
		return nil, fmt.Errorf("traffic: mmpp: rate %v needs ON-state injection probability %.3g > 1 (burst duty cycle %v/%v cannot deliver it)",
			rate, pOn, onMean, onMean+offMean)
	}
	m := &MMPP{pOn: pOn, pExitOn: 1 / onMean, pExitOff: 1 / offMean, r: r}
	// Start OFF: the first burst begins after one geometric OFF dwell,
	// which also decorrelates sources (each has its own RNG stream).
	m.on = false
	m.dwell = geometric(m.pExitOff, r)
	m.gap = -1
	return m, nil
}

// enterOn transitions OFF→ON, drawing the ON holding time and then the
// first within-burst injection gap (that draw order is part of the
// schedule contract shared with AdvanceToInjection).
func (m *MMPP) enterOn() {
	m.on = true
	m.dwell = geometric(m.pExitOn, m.r)
	if m.pOn > 0 {
		m.gap = geometric(m.pOn, m.r)
	} else {
		m.gap = -1
	}
}

// enterOff transitions ON→OFF, drawing the OFF holding time. Any
// remaining injection gap is discarded: the next burst draws a fresh
// one (the gap is memoryless, so the process is still exactly MMPP).
func (m *MMPP) enterOff() {
	m.on = false
	m.dwell = geometric(m.pExitOff, m.r)
	m.gap = -1
}

// Tick implements Injector.
func (m *MMPP) Tick() int {
	if !m.on {
		m.dwell--
		if m.dwell == 0 {
			m.enterOn()
		}
		return 0
	}
	inj := 0
	if m.gap > 0 {
		m.gap--
		if m.gap == 0 {
			inj = 1
			m.gap = geometric(m.pOn, m.r)
		}
	}
	m.dwell--
	if m.dwell == 0 {
		m.enterOff()
	}
	return inj
}

// AdvanceToInjection runs Tick until it returns nonzero and reports the
// number of ticks consumed (>= 1; the last one is the injection), or -1
// — consuming nothing — if the injector can never fire (zero rate). It
// jumps event to event (state transitions and injections), performing
// exactly the draws per-cycle ticking would in the same order, so a
// parked source's schedule is bit-identical to full-scan stepping.
func (m *MMPP) AdvanceToInjection() int64 {
	if m.pOn <= 0 {
		return -1
	}
	var k int64
	for {
		if !m.on {
			k += m.dwell
			m.enterOn()
			continue
		}
		if m.gap <= m.dwell {
			// The next injection lands before (or on) the state exit.
			k += m.gap
			m.dwell -= m.gap
			m.gap = geometric(m.pOn, m.r)
			if m.dwell == 0 {
				m.enterOff()
			}
			return k
		}
		// The burst ends first; the partial gap is discarded exactly as
		// Tick's enterOff does.
		k += m.dwell
		m.enterOff()
	}
}

// Batch is a batch-arrival process: at geometrically spaced release
// events the source emits a whole batch of Size packets at once (think
// cache-line or DMA bursts). The per-event probability is rate/Size, so
// the long-run mean rate equals the configured rate.
type Batch struct {
	size int
	q    float64 // release probability per cycle
	gap  int64   // cycles until the next release
	r    *rng.RNG
}

// NewBatch returns a batch-arrival injector with the given long-run
// mean rate (packets/cycle) and batch size. The release probability
// rate/size must not exceed 1.
func NewBatch(rate float64, size int, r *rng.RNG) (*Batch, error) {
	if rate < 0 {
		return nil, fmt.Errorf("traffic: batch: negative rate %v", rate)
	}
	if size < 1 {
		return nil, fmt.Errorf("traffic: batch: size %d; need >= 1", size)
	}
	q := rate / float64(size)
	if q > 1 {
		return nil, fmt.Errorf("traffic: batch: rate %v exceeds one size-%d batch per cycle", rate, size)
	}
	b := &Batch{size: size, q: q, r: r}
	if q > 0 {
		b.gap = geometric(q, r)
	} else {
		b.gap = -1
	}
	return b, nil
}

// Tick implements Injector: 0 on quiet cycles, the whole batch size on
// release cycles.
func (b *Batch) Tick() int {
	if b.gap < 0 {
		return 0
	}
	b.gap--
	if b.gap == 0 {
		b.gap = geometric(b.q, b.r)
		return b.size
	}
	return 0
}

// AdvanceToInjection consumes the gap to the next release in one batch
// and returns it (>= 1), or -1 if the injector can never fire (zero
// rate). The release's Tick would return the batch size; callers use
// PendingCount to learn it.
func (b *Batch) AdvanceToInjection() int64 {
	if b.gap < 0 {
		return -1
	}
	k := b.gap
	b.gap = geometric(b.q, b.r)
	return k
}

// PendingCount reports how many packets the injection reached by the
// last AdvanceToInjection carries — the whole batch.
func (b *Batch) PendingCount() int { return b.size }
