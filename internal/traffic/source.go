package traffic

import (
	"fmt"
	"strconv"
	"strings"

	"routersim/internal/rng"
)

// SourceSpec is a parsed injection-process spec: which arrival process
// a source runs, plus its process parameters. The zero value is the
// paper's constant-rate source. The rate itself is not part of the
// spec — it comes from the offered load — so one spec serves a whole
// load sweep; NewInjector binds the two.
type SourceSpec struct {
	// Kind is the process name: "" or "const", "bernoulli", "mmpp",
	// "batch", or "trace".
	Kind string
	// On and Off are the MMPP mean dwell times in cycles (Kind "mmpp").
	On, Off float64
	// BatchSize is the packets per release event (Kind "batch").
	BatchSize int
	// File is the trace path (Kind "trace"); the caller loads it — the
	// traffic layer performs no IO.
	File string
}

// validSourceSpecs renders the accepted source-spec forms for error
// messages.
func validSourceSpecs() string {
	return "const, bernoulli, mmpp:on=CYCLES,off=CYCLES, batch:size=N, trace:file=PATH"
}

// ParseSource resolves an injection-process spec:
//
//	const (or "")            the paper's constant-rate source
//	bernoulli                independent per-cycle coin flips
//	mmpp:on=X,off=Y          on/off bursts: mean burst X cycles, mean gap Y cycles
//	batch:size=N             whole batches of N packets at geometric intervals
//	trace:file=PATH          replay a recorded workload (see internal/trace)
//
// Structural and range errors (unknown names, malformed or missing
// parameters, dwell times < 1 cycle, batch size < 1) are reported here;
// rate-dependent feasibility (a burst duty cycle or batch size that
// cannot deliver the offered load) is NewInjector's to report, since
// the spec is parsed before the load is known.
func ParseSource(spec string) (SourceSpec, error) {
	name, args, hasArgs := cutSpec(spec)
	switch name {
	case "", "const", "constant":
		if hasArgs {
			return SourceSpec{}, fmt.Errorf("traffic: source %q takes no parameters (valid specs: %s)", spec, validSourceSpecs())
		}
		return SourceSpec{Kind: "const"}, nil
	case "bernoulli":
		if hasArgs {
			return SourceSpec{}, fmt.Errorf("traffic: source %q takes no parameters (valid specs: %s)", spec, validSourceSpecs())
		}
		return SourceSpec{Kind: "bernoulli"}, nil
	case "mmpp":
		kv, err := parseKVArgs("source: mmpp", args, []string{"on", "off"}, []string{"on", "off"})
		if err != nil {
			return SourceSpec{}, err
		}
		on, err := kvFloat("source: mmpp", kv, "on")
		if err != nil {
			return SourceSpec{}, err
		}
		off, err := kvFloat("source: mmpp", kv, "off")
		if err != nil {
			return SourceSpec{}, err
		}
		if on < 1 || off < 1 {
			return SourceSpec{}, fmt.Errorf("traffic: source: mmpp mean dwell times must be >= 1 cycle, got on=%v off=%v", on, off)
		}
		return SourceSpec{Kind: "mmpp", On: on, Off: off}, nil
	case "batch":
		kv, err := parseKVArgs("source: batch", args, []string{"size"}, []string{"size"})
		if err != nil {
			return SourceSpec{}, err
		}
		size, err := kvInt("source: batch", kv, "size")
		if err != nil {
			return SourceSpec{}, err
		}
		if size < 1 {
			return SourceSpec{}, fmt.Errorf("traffic: source: batch size %d; need >= 1", size)
		}
		return SourceSpec{Kind: "batch", BatchSize: size}, nil
	case "trace":
		kv, err := parseKVArgs("source: trace", args, []string{"file"}, []string{"file"})
		if err != nil {
			return SourceSpec{}, err
		}
		if kv["file"] == "" {
			return SourceSpec{}, fmt.Errorf("traffic: source: trace wants a non-empty file path")
		}
		return SourceSpec{Kind: "trace", File: kv["file"]}, nil
	default:
		return SourceSpec{}, fmt.Errorf("traffic: unknown source %q (valid specs: %s)", spec, validSourceSpecs())
	}
}

// String renders the spec back in its canonical spelling.
func (s SourceSpec) String() string {
	switch s.Kind {
	case "", "const":
		return "const"
	case "mmpp":
		return fmt.Sprintf("mmpp:on=%v,off=%v", s.On, s.Off)
	case "batch":
		return fmt.Sprintf("batch:size=%d", s.BatchSize)
	case "trace":
		return "trace:file=" + s.File
	default:
		return s.Kind
	}
}

// NewInjector instantiates the spec's arrival process at the given mean
// rate (packets/cycle) on the given RNG stream. Trace specs have no
// standalone injector — replay is wired by the network layer — and are
// an error here.
func (s SourceSpec) NewInjector(rate float64, r *rng.RNG) (Injector, error) {
	switch s.Kind {
	case "", "const":
		return NewConstantRate(rate, r.Float64()), nil
	case "bernoulli":
		return NewBernoulli(rate, r), nil
	case "mmpp":
		return NewMMPP(rate, s.On, s.Off, r)
	case "batch":
		return NewBatch(rate, s.BatchSize, r)
	case "trace":
		return nil, fmt.Errorf("traffic: trace sources replay a recorded workload; the network layer wires them")
	default:
		return nil, fmt.Errorf("traffic: unknown source kind %q (valid specs: %s)", s.Kind, validSourceSpecs())
	}
}

// cutSpec splits "name:args" at the first ':'.
func cutSpec(spec string) (name, args string, hasArgs bool) {
	return strings.Cut(spec, ":")
}

// parseKVArgs parses "k=v,k=v" parameter lists shared by the source and
// size grammars: every key must be known and stated exactly once, and
// every required key must be present. ctx names the spec in errors
// ("source: mmpp").
func parseKVArgs(ctx, args string, valid, required []string) (map[string]string, error) {
	kv := make(map[string]string, len(valid))
	if strings.TrimSpace(args) != "" {
		for _, field := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(field, "=")
			k = strings.TrimSpace(k)
			if !ok || k == "" {
				return nil, fmt.Errorf("traffic: %s wants KEY=VALUE parameters, got %q", ctx, field)
			}
			known := false
			for _, name := range valid {
				if k == name {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("traffic: %s: unknown parameter %q (valid: %s)", ctx, k, strings.Join(valid, ", "))
			}
			if _, dup := kv[k]; dup {
				return nil, fmt.Errorf("traffic: %s: duplicate parameter %q", ctx, k)
			}
			kv[k] = strings.TrimSpace(v)
		}
	}
	for _, name := range required {
		if _, ok := kv[name]; !ok {
			return nil, fmt.Errorf("traffic: %s: missing required parameter %q", ctx, name)
		}
	}
	return kv, nil
}

// kvInt resolves an integer parameter from a parsed KV set.
func kvInt(ctx string, kv map[string]string, key string) (int, error) {
	v, err := strconv.Atoi(kv[key])
	if err != nil {
		return 0, fmt.Errorf("traffic: %s: parameter %s: %v", ctx, key, err)
	}
	return v, nil
}

// kvFloat resolves a float parameter from a parsed KV set.
func kvFloat(ctx string, kv map[string]string, key string) (float64, error) {
	v, err := strconv.ParseFloat(kv[key], 64)
	if err != nil {
		return 0, fmt.Errorf("traffic: %s: parameter %s: %v", ctx, key, err)
	}
	return v, nil
}

// parseIntArg parses a single bare-integer argument ("fixed:7").
func parseIntArg(ctx, args string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(args))
	if err != nil {
		return 0, fmt.Errorf("traffic: %s: %v", ctx, err)
	}
	return v, nil
}
