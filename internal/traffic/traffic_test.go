package traffic

import (
	"math"
	"strings"
	"testing"

	"routersim/internal/rng"
)

func TestUniformExcludesSelfAndCoversAll(t *testing.T) {
	r := rng.New(3)
	u := Uniform{}
	const n = 16
	counts := make([]int, n)
	const draws = 64000
	for i := 0; i < draws; i++ {
		d := u.Dest(5, n, r)
		if d == 5 {
			t.Fatal("uniform pattern returned self")
		}
		if d < 0 || d >= n {
			t.Fatalf("destination %d out of range", d)
		}
		counts[d]++
	}
	want := draws / (n - 1)
	for d, c := range counts {
		if d == 5 {
			continue
		}
		if math.Abs(float64(c-want)) > 0.15*float64(want) {
			t.Errorf("destination %d drawn %d times, want ≈%d", d, c, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	p := Transpose{}
	// node (x,y)=(3,5) = 5*8+3 = 43 -> (5,3) = 3*8+5 = 29
	if d := p.Dest(43, 64, nil); d != 29 {
		t.Fatalf("transpose(43) = %d, want 29", d)
	}
	// On a 16-node network (ring, hypercube, or 4x4 mesh alike) the
	// pattern swaps 2-bit halves: 9 = 0b1001 -> 0b0110 = 6.
	if d := p.Dest(9, 16, nil); d != 6 {
		t.Fatalf("transpose(9) on 16 nodes = %d, want 6", d)
	}
}

func TestBitComplement(t *testing.T) {
	if d := (BitComplement{}).Dest(0, 64, nil); d != 63 {
		t.Fatalf("bit-complement(0) = %d, want 63", d)
	}
	if d := (BitComplement{}).Dest(63, 64, nil); d != 0 {
		t.Fatalf("bit-complement(63) = %d, want 0", d)
	}
}

func TestBitReversal(t *testing.T) {
	// 64 nodes = 6 bits: 0b000001 -> 0b100000 = 32.
	if d := (BitReversal{}).Dest(1, 64, nil); d != 32 {
		t.Fatalf("bit-reversal(1) = %d, want 32", d)
	}
	if d := (BitReversal{}).Dest(0, 64, nil); d != 0 {
		t.Fatalf("bit-reversal(0) = %d, want 0", d)
	}
}

func TestHotspotFraction(t *testing.T) {
	r := rng.New(4)
	h := Hotspot{Node: 7, Frac: 0.3}
	hot := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if h.Dest(2, 64, r) == 7 {
			hot++
		}
	}
	frac := float64(hot) / draws
	// Hot traffic = 0.3 plus the uniform share that happens to hit 7.
	wantMin, wantMax := 0.3, 0.32
	if frac < wantMin || frac > wantMax {
		t.Errorf("hotspot fraction %v, want in [%v,%v]", frac, wantMin, wantMax)
	}
}

func TestConstantRateExactness(t *testing.T) {
	// Over many cycles, a constant-rate source must emit exactly
	// floor(rate · cycles) ± 1 packets, deterministically.
	for _, rate := range []float64{0.01, 0.05, 0.125, 0.33, 0.5, 1.0} {
		inj := NewConstantRate(rate, 0)
		const cycles = 10000
		total := 0
		for i := 0; i < cycles; i++ {
			n := inj.Tick()
			if n < 0 || n > 1 {
				t.Fatalf("rate %v: Tick returned %d", rate, n)
			}
			total += n
		}
		want := rate * cycles
		if math.Abs(float64(total)-want) > 1.0 {
			t.Errorf("rate %v: %d packets over %d cycles, want ≈%.0f", rate, total, cycles, want)
		}
	}
}

func TestConstantRateSpacing(t *testing.T) {
	// At rate 0.25 the interarrival time must be exactly 4 cycles.
	inj := NewConstantRate(0.25, 0)
	var gaps []int
	last := -1
	for c := 0; c < 100; c++ {
		if inj.Tick() == 1 {
			if last >= 0 {
				gaps = append(gaps, c-last)
			}
			last = c
		}
	}
	for _, g := range gaps {
		if g != 4 {
			t.Fatalf("interarrival gaps %v, want all 4", gaps)
		}
	}
}

func TestConstantRatePhaseShifts(t *testing.T) {
	a := NewConstantRate(0.2, 0)
	b := NewConstantRate(0.2, 0.99)
	// Different phases must emit on different cycles (decorrelation).
	firstA, firstB := -1, -1
	for c := 0; c < 20; c++ {
		if firstA < 0 && a.Tick() == 1 {
			firstA = c
		}
		if firstB < 0 && b.Tick() == 1 {
			firstB = c
		}
	}
	if firstA == firstB {
		t.Errorf("phases did not shift first emission (both at %d)", firstA)
	}
}

func TestBernoulliRate(t *testing.T) {
	inj := NewBernoulli(0.3, rng.New(5))
	total := 0
	const cycles = 100000
	for i := 0; i < cycles; i++ {
		total += inj.Tick()
	}
	if got := float64(total) / cycles; math.Abs(got-0.3) > 0.01 {
		t.Errorf("bernoulli rate %v, want ≈0.3", got)
	}
}

// TestPermutationPatterns: every deterministic pattern must be a
// bijection over the n nodes — each destination hit exactly once — or
// the pattern would concentrate load the analyses don't model.
func TestPermutationPatterns(t *testing.T) {
	cases := []struct {
		name string
		p    Pattern
		n    int
	}{
		{"transpose 64", Transpose{}, 64},
		{"transpose 16", Transpose{}, 16},
		{"bit-reversal 64", BitReversal{}, 64},
		{"bit-reversal 16", BitReversal{}, 16},
		{"bit-complement 64", BitComplement{}, 64},
		{"bit-complement 16", BitComplement{}, 16},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			hit := make([]bool, c.n)
			for src := 0; src < c.n; src++ {
				d := c.p.Dest(src, c.n, nil)
				if d < 0 || d >= c.n {
					t.Fatalf("Dest(%d) = %d out of range [0,%d)", src, d, c.n)
				}
				if hit[d] {
					t.Fatalf("destination %d hit twice: not a permutation", d)
				}
				hit[d] = true
			}
		})
	}
}

// TestUniformNeverSelf: Uniform.Dest must exclude the source for every
// source node, not just one.
func TestUniformNeverSelf(t *testing.T) {
	r := rng.New(11)
	u := Uniform{}
	for _, n := range []int{2, 3, 16, 64} {
		for src := 0; src < n; src++ {
			for i := 0; i < 50; i++ {
				if d := u.Dest(src, n, r); d == src {
					t.Fatalf("n=%d: uniform returned src %d", n, src)
				}
			}
		}
	}
	// Degenerate single-node network: self is the only option.
	if d := u.Dest(0, 1, r); d != 0 {
		t.Errorf("n=1: Dest = %d, want 0", d)
	}
}

// TestHotspotEmpiricalFraction: the hot node must receive ≈ Frac of
// traffic (plus the uniform share), for several fractions.
func TestHotspotEmpiricalFraction(t *testing.T) {
	const n, draws = 64, 40000
	for _, frac := range []float64{0.05, 0.2, 0.5} {
		r := rng.New(9)
		h := Hotspot{Node: 5, Frac: frac}
		hot := 0
		for i := 0; i < draws; i++ {
			if h.Dest(12, n, r) == 5 {
				hot++
			}
		}
		got := float64(hot) / draws
		// Hot traffic is frac plus (1-frac)/(n-1) uniform spillover.
		want := frac + (1-frac)/float64(n-1)
		if math.Abs(got-want) > 0.015 {
			t.Errorf("frac %v: hot share %.3f, want ≈%.3f", frac, got, want)
		}
	}
}

func TestNewPatternSpecs(t *testing.T) {
	good := []struct {
		spec  string
		nodes int
		want  string
	}{
		{"uniform", 64, "uniform"},
		{"transpose", 64, "transpose"},
		{"transpose", 16, "transpose"}, // 16-node ring or hypercube alike
		{"bit-reversal", 64, "bit-reversal"},
		{"bitrev", 16, "bit-reversal"},
		{"bit-reversal", 32, "bit-reversal"}, // any power of two, square or not
		{"bit-complement", 36, "bit-complement"},
		{"hotspot", 64, "hotspot(0,0.10)"},
		{"hotspot:3:0.25", 64, "hotspot(3,0.25)"},
	}
	for _, c := range good {
		p, err := New(c.spec, c.nodes)
		if err != nil {
			t.Errorf("New(%q, %d): %v", c.spec, c.nodes, err)
			continue
		}
		if p.Name() != c.want {
			t.Errorf("New(%q, %d).Name() = %q, want %q", c.spec, c.nodes, p.Name(), c.want)
		}
	}
	bad := []struct {
		spec  string
		nodes int
	}{
		{"nonsense", 64},
		{"bit-reversal", 36}, // not a power of two
		{"transpose", 36},    // not a power of two
		{"transpose", 32},    // odd bit count: no equal halves to swap
		{"hotspot:99999:0.1", 64},
		{"hotspot:0:1.5", 64},
		{"hotspot:zero:0.1", 64},
		{"hotspot:0", 64},
		{"transpose:4", 64}, // only hotspot takes parameters
		{"uniform:0.5", 64},
	}
	for _, c := range bad {
		if _, err := New(c.spec, c.nodes); err == nil {
			t.Errorf("New(%q, %d) should fail", c.spec, c.nodes)
		}
	}
	// Error messages must name the valid specs.
	_, err := New("nonsense", 64)
	if err == nil || !strings.Contains(err.Error(), "bit-reversal") {
		t.Errorf("unknown-pattern error should list valid specs, got %v", err)
	}
}

func TestPatternNames(t *testing.T) {
	pats := []Pattern{Uniform{}, Transpose{}, BitComplement{}, BitReversal{}, Hotspot{Node: 1, Frac: 0.1}}
	seen := map[string]bool{}
	for _, p := range pats {
		name := p.Name()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate pattern name %q", name)
		}
		seen[name] = true
	}
}

func TestConstantRateNextInjection(t *testing.T) {
	// NextInjection must be a pure peek that names exactly the Tick that
	// fires next: k-1 zero ticks, then a one — for any rate and phase.
	for _, rate := range []float64{0.001, 0.01, 0.125, 0.33, 0.5, 1.0} {
		for _, phase := range []float64{0, 0.25, 0.9} {
			inj := NewConstantRate(rate, phase)
			for round := 0; round < 20; round++ {
				k := inj.NextInjection()
				if k < 1 {
					t.Fatalf("rate %v phase %v: NextInjection = %d, want >= 1", rate, phase, k)
				}
				for i := int64(1); i < k; i++ {
					if got := inj.Tick(); got != 0 {
						t.Fatalf("rate %v phase %v: tick %d/%d returned %d, want 0", rate, phase, i, k, got)
					}
				}
				if got := inj.Tick(); got != 1 {
					t.Fatalf("rate %v phase %v: tick %d returned %d, want 1", rate, phase, k, got)
				}
			}
		}
	}
	if got := NewConstantRate(0, 0).NextInjection(); got != -1 {
		t.Fatalf("zero-rate NextInjection = %d, want -1", got)
	}
}

func TestConstantRateAdvanceToInjection(t *testing.T) {
	// The mutating advance must agree with the pure peek and leave the
	// injector exactly where per-cycle ticking would.
	for _, rate := range []float64{0.001, 0.01, 0.125, 0.33, 1.0} {
		a := NewConstantRate(rate, 0.4)
		b := NewConstantRate(rate, 0.4)
		for round := 0; round < 20; round++ {
			want := a.NextInjection()
			got := a.AdvanceToInjection()
			if got != want {
				t.Fatalf("rate %v round %d: AdvanceToInjection = %d, peek said %d", rate, round, got, want)
			}
			for i := int64(1); i < got; i++ {
				if b.Tick() != 0 {
					t.Fatalf("rate %v round %d: reference injected early", rate, round)
				}
			}
			if b.Tick() != 1 {
				t.Fatalf("rate %v round %d: reference did not inject at tick %d", rate, round, got)
			}
		}
	}
	if got := NewConstantRate(0, 0).AdvanceToInjection(); got != -1 {
		t.Fatalf("zero-rate AdvanceToInjection = %d, want -1", got)
	}
}

func TestConstantRateStalledAccumulator(t *testing.T) {
	// A rate below the accumulator's float resolution makes every
	// further Tick a no-op; the peek and the advance must both report
	// "never" instead of spinning forever.
	inj := NewConstantRate(1e-18, 0.5)
	if got := inj.NextInjection(); got != -1 {
		t.Fatalf("stalled NextInjection = %d, want -1", got)
	}
	if got := inj.AdvanceToInjection(); got != -1 {
		t.Fatalf("stalled AdvanceToInjection = %d, want -1", got)
	}
	// (A rate that stalls only after progress is not testable here: the
	// accumulator takes ~rate/ulp steps to reach its stall point, which
	// for any stallable rate is astronomically many. The guard above
	// catches the stall whenever the walk arrives at it.)
}
