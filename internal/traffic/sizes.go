package traffic

import (
	"fmt"

	"routersim/internal/rng"
)

// Sizer draws per-packet sizes (in flits) for a flow. A nil Sizer means
// every packet uses the network's fixed global packet size; a non-nil
// one is sampled once per generated packet, from the source's own RNG
// stream, right after the destination draw.
type Sizer interface {
	// Sample returns the next packet's size in flits (>= 1).
	Sample(r *rng.RNG) int
	// Mean returns the distribution's mean size in flits — the value
	// the measurement layer uses to convert packet rates to flit loads.
	Mean() float64
	// Name identifies the distribution in reports.
	Name() string
}

// FixedSize is the degenerate distribution: every packet is N flits.
// Sample draws nothing, so "fixed:N" is schedule-identical to the plain
// global packet size.
type FixedSize struct{ N int }

// Sample implements Sizer.
func (f FixedSize) Sample(r *rng.RNG) int { return f.N }

// Mean implements Sizer.
func (f FixedSize) Mean() float64 { return float64(f.N) }

// Name implements Sizer.
func (f FixedSize) Name() string { return fmt.Sprintf("fixed:%d", f.N) }

// UniformSize draws sizes uniformly from [Min, Max] flits.
type UniformSize struct{ Min, Max int }

// Sample implements Sizer.
func (u UniformSize) Sample(r *rng.RNG) int { return u.Min + r.Intn(u.Max-u.Min+1) }

// Mean implements Sizer.
func (u UniformSize) Mean() float64 { return float64(u.Min+u.Max) / 2 }

// Name implements Sizer.
func (u UniformSize) Name() string { return fmt.Sprintf("uniform:min=%d,max=%d", u.Min, u.Max) }

// BimodalSize is the classic NoC workload mix: short control packets
// (Small flits) with probability 1-P, long data packets (Large flits)
// with probability P.
type BimodalSize struct {
	Small, Large int
	P            float64 // probability of a Large packet
}

// Sample implements Sizer.
func (b BimodalSize) Sample(r *rng.RNG) int {
	if r.Float64() < b.P {
		return b.Large
	}
	return b.Small
}

// Mean implements Sizer.
func (b BimodalSize) Mean() float64 {
	return float64(b.Small)*(1-b.P) + float64(b.Large)*b.P
}

// Name implements Sizer.
func (b BimodalSize) Name() string {
	return fmt.Sprintf("bimodal:small=%d,large=%d,p=%v", b.Small, b.Large, b.P)
}

// validSizeSpecs renders the accepted size-spec forms for error
// messages.
func validSizeSpecs() string {
	return "fixed:N, uniform:min=A,max=B, bimodal:small=S,large=L,p=P"
}

// ParseSizes resolves a packet-size distribution spec:
//
//	""                              no distribution (fixed global packet size)
//	fixed:N                         every packet N flits
//	uniform:min=A,max=B             uniform over [A, B] flits
//	bimodal:small=S,large=L,p=P     S flits with prob 1-P, L flits with prob P
//
// An empty spec returns a nil Sizer. Unknown names, malformed or
// missing parameters, and sizes < 1 flit are errors naming the valid
// specs.
func ParseSizes(spec string) (Sizer, error) {
	if spec == "" {
		return nil, nil
	}
	name, args, _ := cutSpec(spec)
	switch name {
	case "fixed":
		n, err := parseIntArg("sizes: fixed", args)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("traffic: sizes: fixed size %d flits; need >= 1", n)
		}
		return FixedSize{N: n}, nil
	case "uniform":
		kv, err := parseKVArgs("sizes: uniform", args, []string{"min", "max"}, []string{"min", "max"})
		if err != nil {
			return nil, err
		}
		min, err := kvInt("sizes: uniform", kv, "min")
		if err != nil {
			return nil, err
		}
		max, err := kvInt("sizes: uniform", kv, "max")
		if err != nil {
			return nil, err
		}
		if min < 1 || max < min {
			return nil, fmt.Errorf("traffic: sizes: uniform wants 1 <= min <= max, got min=%d max=%d", min, max)
		}
		return UniformSize{Min: min, Max: max}, nil
	case "bimodal":
		kv, err := parseKVArgs("sizes: bimodal", args, []string{"small", "large", "p"}, []string{"small", "large", "p"})
		if err != nil {
			return nil, err
		}
		small, err := kvInt("sizes: bimodal", kv, "small")
		if err != nil {
			return nil, err
		}
		large, err := kvInt("sizes: bimodal", kv, "large")
		if err != nil {
			return nil, err
		}
		p, err := kvFloat("sizes: bimodal", kv, "p")
		if err != nil {
			return nil, err
		}
		if small < 1 || large < small {
			return nil, fmt.Errorf("traffic: sizes: bimodal wants 1 <= small <= large, got small=%d large=%d", small, large)
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("traffic: sizes: bimodal probability %v outside [0,1]", p)
		}
		return BimodalSize{Small: small, Large: large, P: p}, nil
	default:
		return nil, fmt.Errorf("traffic: unknown size distribution %q (valid specs: %s)", spec, validSizeSpecs())
	}
}
