package traffic

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Names lists the pattern names New understands, in canonical order.
// "hotspot" also accepts parameters as "hotspot:NODE:FRAC".
func Names() []string {
	return []string{"uniform", "transpose", "bit-reversal", "bit-complement", "hotspot"}
}

// New resolves a traffic pattern by name for a k×k network (n = k²
// nodes). Recognized specs:
//
//	uniform               the paper's workload
//	transpose             (x,y) → (y,x)
//	bit-reversal          i → reverse of i's bits (n must be a power of two)
//	bit-complement        i → n-1-i
//	hotspot               10% of traffic to node 0, rest uniform
//	hotspot:NODE:FRAC     e.g. hotspot:0:0.2
//
// Parameterized specs separate fields with ':'. Unknown names and
// parameters that cannot apply to the network size are errors.
func New(spec string, k int) (Pattern, error) {
	n := k * k
	name, args, hasArgs := strings.Cut(spec, ":")
	if hasArgs && name != "hotspot" {
		return nil, fmt.Errorf("traffic: pattern %q takes no parameters (only hotspot:NODE:FRAC does)", spec)
	}
	switch name {
	case "uniform", "":
		return Uniform{}, nil
	case "transpose":
		return Transpose{K: k}, nil
	case "bit-reversal", "bitrev":
		if n <= 0 || bits.OnesCount(uint(n)) != 1 {
			return nil, fmt.Errorf("traffic: bit-reversal needs a power-of-two node count, got %d (k=%d)", n, k)
		}
		return BitReversal{}, nil
	case "bit-complement", "bitcomp":
		return BitComplement{}, nil
	case "hotspot":
		h := Hotspot{Node: 0, Frac: 0.1}
		if args != "" {
			fields := strings.Split(args, ":")
			if len(fields) != 2 {
				return nil, fmt.Errorf("traffic: hotspot wants NODE:FRAC, got %q", args)
			}
			node, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("traffic: hotspot node: %v", err)
			}
			frac, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: hotspot fraction: %v", err)
			}
			h = Hotspot{Node: node, Frac: frac}
		}
		if h.Node < 0 || h.Node >= n {
			return nil, fmt.Errorf("traffic: hotspot node %d outside [0,%d)", h.Node, n)
		}
		if h.Frac < 0 || h.Frac > 1 {
			return nil, fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", h.Frac)
		}
		return h, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (want one of %s)", spec, strings.Join(Names(), ", "))
	}
}
