package traffic

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Names lists the pattern names New understands, in canonical order.
// "hotspot" also accepts parameters as "hotspot:NODE:FRAC".
func Names() []string {
	return []string{"uniform", "transpose", "bit-reversal", "bit-complement", "hotspot"}
}

// validSpecs renders the accepted spec forms for error messages.
func validSpecs() string {
	return "uniform, transpose, bit-reversal, bit-complement, hotspot, hotspot:NODE:FRAC"
}

// New resolves a traffic pattern by name for a network of nodes nodes
// (any topology — patterns are defined over node indices, not grid
// coordinates). Recognized specs:
//
//	uniform               the paper's workload
//	transpose             swap the index's bit halves ((x,y) → (y,x) on a
//	                      power-of-two mesh); nodes must be 4^m
//	bit-reversal          i → reverse of i's bits (nodes must be a power of two)
//	bit-complement        i → nodes-1-i
//	hotspot               10% of traffic to node 0, rest uniform
//	hotspot:NODE:FRAC     e.g. hotspot:0:0.2
//
// Parameterized specs separate fields with ':'. Unknown names and
// parameters that cannot apply to the network size are errors that name
// the valid specs.
func New(spec string, nodes int) (Pattern, error) {
	name, args, hasArgs := strings.Cut(spec, ":")
	if hasArgs && name != "hotspot" {
		return nil, fmt.Errorf("traffic: pattern %q takes no parameters (valid specs: %s)", spec, validSpecs())
	}
	switch name {
	case "uniform", "":
		return Uniform{}, nil
	case "transpose":
		if nodes <= 0 || bits.OnesCount(uint(nodes)) != 1 || (bits.Len(uint(nodes))-1)%2 != 0 {
			return nil, fmt.Errorf("traffic: transpose needs a node count that is an even power of two (4, 16, 64, ...), got %d", nodes)
		}
		return Transpose{}, nil
	case "bit-reversal", "bitrev":
		if nodes <= 0 || bits.OnesCount(uint(nodes)) != 1 {
			return nil, fmt.Errorf("traffic: bit-reversal needs a power-of-two node count, got %d", nodes)
		}
		return BitReversal{}, nil
	case "bit-complement", "bitcomp":
		return BitComplement{}, nil
	case "hotspot":
		h := Hotspot{Node: 0, Frac: 0.1}
		if args != "" {
			fields := strings.Split(args, ":")
			if len(fields) != 2 {
				return nil, fmt.Errorf("traffic: hotspot wants NODE:FRAC, got %q (valid specs: %s)", args, validSpecs())
			}
			node, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("traffic: hotspot node: %v", err)
			}
			frac, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("traffic: hotspot fraction: %v", err)
			}
			h = Hotspot{Node: node, Frac: frac}
		}
		if h.Node < 0 || h.Node >= nodes {
			return nil, fmt.Errorf("traffic: hotspot node %d outside [0,%d)", h.Node, nodes)
		}
		if h.Frac < 0 || h.Frac > 1 {
			return nil, fmt.Errorf("traffic: hotspot fraction %v outside [0,1]", h.Frac)
		}
		return h, nil
	default:
		return nil, fmt.Errorf("traffic: unknown pattern %q (valid specs: %s)", spec, validSpecs())
	}
}
