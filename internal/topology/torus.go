package topology

import "fmt"

// Torus is a k×k 2-D torus with wraparound links — one of the "other
// topologies" the paper names as future work. Dimension-ordered routing
// on a torus requires virtual-channel classes to break the cyclic
// channel dependency in each ring: packets start in VC class 0 and move
// to class 1 after crossing the wraparound (dateline) link of the
// dimension being traversed. VCClassMask exposes the legal classes so VC
// and speculative-VC routers can restrict VC allocation candidates.
type Torus struct{ K int }

// NewTorus returns a k×k torus topology.
func NewTorus(k int) Torus {
	if k < 2 {
		panic("topology: torus needs k >= 2")
	}
	return Torus{K: k}
}

// Name implements Topology.
func (t Torus) Name() string { return fmt.Sprintf("%dx%d torus", t.K, t.K) }

// Nodes implements Topology.
func (t Torus) Nodes() int { return t.K * t.K }

// XY returns the coordinates of a node.
func (t Torus) XY(node int) (x, y int) { return node % t.K, node / t.K }

// Node returns the node at coordinates (x, y).
func (t Torus) Node(x, y int) int { return y*t.K + x }

// Neighbor implements Topology; every directional port is connected.
func (t Torus) Neighbor(node, port int) (int, bool) {
	x, y := t.XY(node)
	switch port {
	case PortEast:
		return t.Node((x+1)%t.K, y), true
	case PortWest:
		return t.Node((x-1+t.K)%t.K, y), true
	case PortNorth:
		return t.Node(x, (y+1)%t.K), true
	case PortSouth:
		return t.Node(x, (y-1+t.K)%t.K), true
	default:
		return 0, false
	}
}

// Route implements minimal dimension-ordered routing with wraparound:
// the shorter way around each ring, ties broken toward the positive
// direction.
func (t Torus) Route(cur, dst int) int {
	cx, cy := t.XY(cur)
	dx, dy := t.XY(dst)
	if cx != dx {
		if forward(cx, dx, t.K) {
			return PortEast
		}
		return PortWest
	}
	if cy != dy {
		if forward(cy, dy, t.K) {
			return PortNorth
		}
		return PortSouth
	}
	return PortLocal
}

// forward reports whether the positive direction is (weakly) shorter.
func forward(c, d, k int) bool {
	fwd := (d - c + k) % k
	return fwd <= k-fwd
}

// Distance returns the minimal hop count between two nodes.
func (t Torus) Distance(a, b int) int {
	ax, ay := t.XY(a)
	bx, by := t.XY(b)
	return ringDist(ax, bx, t.K) + ringDist(ay, by, t.K)
}

func ringDist(a, b, k int) int {
	d := abs(a - b)
	if k-d < d {
		return k - d
	}
	return d
}

// UniformCapacity implements Topology: a torus has twice the mesh's
// bisection (2k channels per direction), so λ·k²/4 ≤ 2k gives 8/k
// flits/node/cycle.
func (t Torus) UniformCapacity() float64 { return 8 / float64(t.K) }

// VCMask returns the virtual channels (as a candidate bitmask over v
// VCs) that a packet at node cur heading to dst may allocate on the hop
// through port, under dateline deadlock avoidance: the hop's channel is
// class 0 while the remaining route in the current dimension still has
// the wraparound link ahead, and class 1 from the crossing hop onward
// (including routes that never wrap). Each class owns half the VCs.
// v must be even and ≥ 2.
func (t Torus) VCMask(cur, dst, port, v int) uint64 {
	if port == PortLocal {
		return (uint64(1) << v) - 1 // ejection: any VC
	}
	cx, cy := t.XY(cur)
	dx, dy := t.XY(dst)
	var wrapAhead bool
	switch port {
	case PortEast:
		next := (cx + 1) % t.K
		wrapAhead = cx+1 < t.K && dx < next
	case PortWest:
		next := (cx - 1 + t.K) % t.K
		wrapAhead = cx-1 >= 0 && dx > next
	case PortNorth:
		next := (cy + 1) % t.K
		wrapAhead = cy+1 < t.K && dy < next
	case PortSouth:
		next := (cy - 1 + t.K) % t.K
		wrapAhead = cy-1 >= 0 && dy > next
	}
	return VCClassMask(v, !wrapAhead)
}

// CrossesDateline reports whether the hop from node through port crosses
// the wraparound link of its dimension (the dateline is between
// coordinate k−1 and 0).
func (t Torus) CrossesDateline(node, port int) bool {
	x, y := t.XY(node)
	switch port {
	case PortEast:
		return x == t.K-1
	case PortWest:
		return x == 0
	case PortNorth:
		return y == t.K-1
	case PortSouth:
		return y == 0
	default:
		return false
	}
}

// VCClassMask returns the bitmask of virtual channels a packet may
// request on its next hop, given v VCs per port split into two dateline
// classes (low half = class 0, high half = class 1). crossed reports
// whether the packet has already crossed the dateline in the dimension
// it is currently traversing. v must be even and ≥ 2 for a torus.
func VCClassMask(v int, crossed bool) uint64 {
	half := v / 2
	low := (uint64(1) << half) - 1
	if crossed {
		return low << half
	}
	return low
}
