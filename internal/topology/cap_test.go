package topology

import (
	"strings"
	"testing"
)

// TestSpecCapOptIn: cap=N in a spec raises the MaxNodes default, so
// topologies far past the table-routing regime (mesh:k=320 is the
// 102,400-node target from the scaling work) construct successfully.
func TestSpecCapOptIn(t *testing.T) {
	topo, err := New("mesh:k=320,cap=102400", 8)
	if err != nil {
		t.Fatalf("New(mesh:k=320,cap=102400): %v", err)
	}
	if topo.Nodes() != 320*320 {
		t.Fatalf("nodes = %d, want %d", topo.Nodes(), 320*320)
	}
	// Spot-check routing at scale: a dimension-ordered mesh hop from the
	// corner toward the far corner moves +x first.
	if got := topo.Route(0, 320*320-1); got != 1 {
		t.Errorf("Route(0, far corner) = port %d, want 1 (+x)", got)
	}

	s, err := Parse("mesh:k=320,cap=102400")
	if err != nil {
		t.Fatal(err)
	}
	shape, k := s.Canonical()
	if shape != "mesh:cap=102400" || k != 320 {
		t.Errorf("Canonical = (%q, %d), want (%q, 320)", shape, k, "mesh:cap=102400")
	}
	// The canonical form must round-trip through the parser.
	s2, err := Parse(shape)
	if err != nil {
		t.Fatalf("Parse(%q): %v", shape, err)
	}
	if s2.Cap != 102400 {
		t.Errorf("round-tripped Cap = %d, want 102400", s2.Cap)
	}
}

// TestCapErrorGuidance: building past MaxNodes without an opt-in must
// fail with an error that states the memory stake and names the exact
// cap= parameter that unlocks it.
func TestCapErrorGuidance(t *testing.T) {
	_, err := New("mesh:k=320", 8)
	if err == nil {
		t.Fatal("mesh:k=320 without cap= should fail")
	}
	for _, sub := range []string{"cap=102400", "iB"} {
		if !strings.Contains(err.Error(), sub) {
			t.Errorf("error %q does not mention %q", err, sub)
		}
	}

	// The stated cap must actually gate: a cap below the node count
	// still fails, and no cap can pass the absolute limit.
	if _, err := New("mesh:k=320,cap=1000", 8); err == nil {
		t.Error("cap below the node count should still fail")
	}
	if _, err := New("mesh:k=3000,cap=4194305", 8); err == nil {
		t.Error("cap above MaxNodesLimit should fail")
	} else if !strings.Contains(err.Error(), "nodes") {
		t.Errorf("over-limit error %q does not mention nodes", err)
	}
}

// TestCapConstructors: the *Cap constructors honor an explicit limit
// without a spec string in the loop.
func TestCapConstructors(t *testing.T) {
	if _, err := NewCubeCap(320, 2, false, 0); err == nil {
		t.Error("NewCubeCap with default cap should reject 102,400 nodes")
	}
	c, err := NewCubeCap(320, 2, false, 102400)
	if err != nil {
		t.Fatalf("NewCubeCap(320, 2, false, 102400): %v", err)
	}
	if c.Nodes() != 102400 {
		t.Errorf("nodes = %d, want 102400", c.Nodes())
	}
	r, err := NewRingCap(20000, 20000)
	if err != nil {
		t.Fatalf("NewRingCap(20000, 20000): %v", err)
	}
	if r.Nodes() != 20000 {
		t.Errorf("ring nodes = %d, want 20000", r.Nodes())
	}
	if _, err := NewHypercubeCap(1<<15, 0); err == nil {
		t.Error("NewHypercubeCap with default cap should reject 2^15 nodes")
	}
	h, err := NewHypercubeCap(1<<15, 1<<15)
	if err != nil {
		t.Fatalf("NewHypercubeCap(1<<15, 1<<15): %v", err)
	}
	if h.Nodes() != 1<<15 {
		t.Errorf("hypercube nodes = %d, want %d", h.Nodes(), 1<<15)
	}
}
