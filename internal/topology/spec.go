package topology

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements the topology spec grammar used by the harness
// and CLIs:
//
//	mesh                    k×k mesh, k from the radix axis
//	mesh:k=8                8×8 mesh
//	torus:k=4,n=3           4-ary 3-cube torus (64 nodes)
//	mesh:n=3                k-ary 3-cube mesh, k from the radix axis
//	hypercube:64            6-dimensional hypercube (64 nodes)
//	hypercube:n=6           the same, by dimension
//	ring:16                 16-node bidirectional ring
//	mesh:k=320,cap=102400   102,400-node mesh (cap= opts past MaxNodes)
//
// A bare "hypercube" or "ring" takes its node count from the radix
// axis. Parameters separate with "," or ":" interchangeably, so specs
// survive comma-splitting CLIs when written with ":".

// Names lists the base topology names New understands.
func Names() []string { return []string{"mesh", "torus", "ring", "hypercube"} }

// specParamKeys is the single registry of spec parameter keys, shared
// by Parse and IsParamFragment so the grammar and the CLI re-join
// heuristic cannot drift apart. cap=N raises the MaxNodes default for
// that spec (the explicit opt-in for 100k-router networks, e.g.
// "mesh:k=320,cap=102400").
var specParamKeys = map[string]bool{"k": true, "n": true, "cap": true}

// hypercubeDimLimit bounds 1<<N against integer overflow before Build's
// real MaxNodes check; PinnedK and Build must agree on it.
const hypercubeDimLimit = 30

// IsParamFragment reports whether a comma-separated list fragment is a
// spec parameter ("k=4", "n=3", or a bare size) rather than the start
// of a new topology spec. CLIs that split axis lists on commas use it
// to re-join specs written with comma-separated parameters.
func IsParamFragment(f string) bool {
	if _, err := strconv.Atoi(f); err == nil {
		return true
	}
	key, _, ok := strings.Cut(f, "=")
	return ok && specParamKeys[key]
}

// Spec is a parsed topology spec, before sizes from context are
// applied. Zero fields mean "not stated".
type Spec struct {
	// Base is the topology family: "mesh", "torus", "ring", "hypercube".
	Base string
	// K is the stated radix (mesh/torus) or node count (ring/hypercube).
	K int
	// N is the stated dimension count (mesh/torus/hypercube).
	N int
	// Cap is the stated node-count cap (0: the MaxNodes default) — the
	// explicit opt-in for networks beyond the default bound.
	Cap int
}

// Parse parses a topology spec without applying context defaults.
func Parse(spec string) (Spec, error) {
	base, args, hasArgs := strings.Cut(spec, ":")
	s := Spec{Base: base}
	switch base {
	case "mesh", "torus", "ring", "hypercube":
	case "":
		s.Base = "mesh"
	default:
		return Spec{}, fmt.Errorf("topology: unknown topology %q (want one of %s; e.g. mesh:k=8, torus:k=4,n=3, hypercube:64, ring:16)",
			base, strings.Join(Names(), ", "))
	}
	if !hasArgs {
		return s, nil
	}
	for _, field := range strings.FieldsFunc(args, func(r rune) bool { return r == ',' || r == ':' }) {
		key, val, hasKey := strings.Cut(field, "=")
		if !hasKey {
			// A bare integer is the size: radix for mesh/torus, node
			// count for ring/hypercube.
			key, val = "k", field
		}
		if !specParamKeys[key] {
			return Spec{}, fmt.Errorf("topology: %s: unknown parameter %q (want k=INT, n=INT, cap=INT, or a bare size)", spec, field)
		}
		v, err := strconv.Atoi(val)
		if err != nil || v <= 0 {
			return Spec{}, fmt.Errorf("topology: %s: parameter %q wants a positive integer", spec, field)
		}
		switch key {
		case "k":
			s.K = v
		case "n":
			if s.Base == "ring" {
				return Spec{}, fmt.Errorf("topology: %s: a ring has no dimension parameter (it is the k-ary 1-cube)", spec)
			}
			s.N = v
		case "cap":
			if v > MaxNodesLimit {
				return Spec{}, fmt.Errorf("topology: %s: cap %d exceeds the absolute limit of %d nodes", spec, v, MaxNodesLimit)
			}
			s.Cap = v
		}
	}
	return s, nil
}

// PinnedK returns the size the spec states explicitly (radix for
// mesh/torus, node count for ring/hypercube), or 0 when the spec defers
// to the context's radix axis. A hypercube pinned by dimension reports
// its node count.
func (s Spec) PinnedK() int {
	if s.K != 0 {
		return s.K
	}
	if s.Base == "hypercube" && s.N != 0 && s.N < hypercubeDimLimit {
		return 1 << s.N
	}
	return 0
}

// Canonical factors any stated size out of the spec: it returns the
// shape string — the base name plus non-default, non-size parameters,
// e.g. "mesh", "torus:n=3", "hypercube" — and the pinned size (0 when
// the spec defers to context). Two specs of the same network always
// canonicalize identically ("hypercube:16" ≡ "hypercube:n=4"), which is
// what lets the harness deduplicate equivalent scenarios.
func (s Spec) Canonical() (shape string, pinnedK int) {
	shape = s.Base
	if (s.Base == "mesh" || s.Base == "torus") && s.N != 0 && s.N != 2 {
		shape = fmt.Sprintf("%s:n=%d", s.Base, s.N)
	}
	if s.Cap != 0 {
		shape = fmt.Sprintf("%s:cap=%d", shape, s.Cap)
	}
	return shape, s.PinnedK()
}

// Build constructs the topology, taking unstated sizes from defaultK
// (the harness's radix axis).
func (s Spec) Build(defaultK int) (Topology, error) {
	k := s.K
	if k == 0 {
		k = defaultK
	}
	switch s.Base {
	case "mesh", "torus", "":
		n := s.N
		if n == 0 {
			n = 2
		}
		return NewCubeCap(k, n, s.Base == "torus", s.Cap)
	case "ring":
		return NewRingCap(k, s.Cap)
	case "hypercube":
		if s.N != 0 {
			if s.K != 0 && s.K != 1<<s.N {
				return nil, fmt.Errorf("topology: hypercube size %d conflicts with n=%d (2^%d = %d nodes)", s.K, s.N, s.N, 1<<s.N)
			}
			if s.N >= hypercubeDimLimit {
				return nil, fmt.Errorf("topology: hypercube dimension %d too large", s.N)
			}
			k = 1 << s.N
		}
		return NewHypercubeCap(k, s.Cap)
	default:
		return nil, fmt.Errorf("topology: unknown topology %q", s.Base)
	}
}

// New resolves a topology spec, taking unstated sizes from defaultK.
// See the grammar at the top of this file.
func New(spec string, defaultK int) (Topology, error) {
	s, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(defaultK)
}
