package topology

import (
	"fmt"
	"math/bits"
)

// Hypercube is the binary n-cube: 2ⁿ nodes, each linked to the n nodes
// whose index differs in exactly one bit. It is the 2-ary n-cube with a
// single channel per neighbor pair, so the router degree is n+1 — the
// topology family that stresses the delay model's p-dependence hardest
// (p grows with the network instead of staying 5).
//
// Port numbering: port 0 is local; port 1+d flips address bit d. E-cube
// (dimension-ordered) routing corrects the lowest differing bit first;
// like mesh routing it is deadlock-free without VC classes.
type Hypercube struct {
	// N is the dimension count (log₂ of the node count).
	N int
}

// NewHypercube returns the hypercube with the given node count, which
// must be a power of two ≥ 2.
func NewHypercube(nodes int) (Hypercube, error) {
	return NewHypercubeCap(nodes, 0)
}

// NewHypercubeCap is NewHypercube with an explicit node-count cap (see
// NewCubeCap).
func NewHypercubeCap(nodes, maxNodes int) (Hypercube, error) {
	if nodes < 2 || bits.OnesCount(uint(nodes)) != 1 {
		return Hypercube{}, fmt.Errorf("topology: hypercube needs a power-of-two node count >= 2, got %d", nodes)
	}
	h := Hypercube{N: bits.Len(uint(nodes)) - 1}
	if err := checkSize(h.Name(), nodes, h.Ports(), maxNodes); err != nil {
		return Hypercube{}, err
	}
	return h, nil
}

// Name implements Topology.
func (h Hypercube) Name() string {
	return fmt.Sprintf("%d-cube (%d nodes)", h.N, h.Nodes())
}

// Nodes implements Topology.
func (h Hypercube) Nodes() int { return 1 << h.N }

// Ports implements Topology: one link per dimension plus local.
func (h Hypercube) Ports() int { return h.N + 1 }

// Degree implements Topology: every node has full degree.
func (h Hypercube) Degree(node int) int { return h.Ports() }

// Neighbor implements Topology: port 1+d flips bit d, and the link is
// symmetric, so the flit arrives on the same port number.
func (h Hypercube) Neighbor(node, port int) (next, inPort int, ok bool) {
	if port < 1 || port >= h.Ports() {
		return 0, 0, false
	}
	return node ^ (1 << (port - 1)), port, true
}

// Route implements e-cube routing: correct the lowest differing address
// bit. The strictly increasing dimension order makes the channel
// dependency graph acyclic, so no VC classes are needed.
func (h Hypercube) Route(cur, dst int) int {
	diff := cur ^ dst
	if diff == 0 {
		return PortLocal
	}
	return 1 + bits.TrailingZeros(uint(diff))
}

// PortName implements Topology.
func (h Hypercube) PortName(port int) string {
	if port == PortLocal {
		return "local"
	}
	if port < 0 || port >= h.Ports() {
		return fmt.Sprintf("port%d", port)
	}
	return fmt.Sprintf("d%d", port-1)
}

// Distance returns the Hamming distance between two nodes.
func (h Hypercube) Distance(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// Diameter implements Topology.
func (h Hypercube) Diameter() int { return h.N }

// AvgDistance returns the mean hop distance under uniform traffic with
// self excluded: each of n bits differs with probability ½, so
// E = n/2 · Nodes/(Nodes−1).
func (h Hypercube) AvgDistance() float64 {
	n := float64(h.Nodes())
	return float64(h.N) / 2 * n / (n - 1)
}

// UniformCapacity implements Topology: the bisection is 2^(n−1) = N/2
// channels per direction, so λ·N/4 ≤ N/2 allows 2 flits/node/cycle at
// every hypercube size — but each node injects through a single local
// channel of 1 flit/cycle, so the reachable capacity is 1.
func (h Hypercube) UniformCapacity() float64 { return 1 }

// VCClasses implements Topology: e-cube routing is deadlock-free.
func (h Hypercube) VCClasses() int { return 1 }

// VCMask implements Topology: no class restriction.
func (h Hypercube) VCMask(cur, dst, port, v int) uint64 { return FullVCMask(v) }

// RouteCandidates implements Topology: every differing address bit is a
// productive hop, and a minimal-adaptive packet may correct them in any
// order. The arbitrary order can close dependency cycles among the
// adaptive channels, so deadlock freedom rests on the escape layer,
// which runs pure e-cube (strictly increasing dimension) order.
func (h Hypercube) RouteCandidates(cur, dst int, buf []uint8) []uint8 {
	for diff := uint(cur ^ dst); diff != 0; diff &= diff - 1 {
		buf = append(buf, uint8(1+bits.TrailingZeros(diff)))
	}
	return buf
}
