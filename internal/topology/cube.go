package topology

import (
	"fmt"
	"strings"
)

// Cube is a k-ary n-cube: an n-dimensional grid of radix k, either a
// mesh (open boundaries) or, with Wrap, a torus (wraparound links).
// Dimension 0 is the innermost coordinate (node % K), so the 2-D cube
// reproduces the paper's mesh node numbering and port layout exactly.
//
// Port numbering: port 0 is local; dimension d owns ports 1+2d
// (positive direction) and 2+2d (negative direction). For n = 2 these
// are the mesh constants PortEast/West/North/South.
//
// Dimension-ordered routing on a mesh is deadlock-free without virtual
// channels — which is why the paper can compare wormhole routers (no
// VCs) against VC routers on equal terms. A torus additionally needs
// dateline VC classes to break the cyclic channel dependency of each
// wraparound ring: packets use class 0 while the dateline of the
// dimension being traversed is still ahead, class 1 from the crossing
// hop onward (see VCMask).
type Cube struct {
	// K is the radix (nodes per dimension), N the dimension count.
	K, N int
	// Wrap closes every dimension into a ring (torus).
	Wrap bool

	// ring marks a Cube built by NewRing, for display only.
	ring bool
}

// NewCube returns a k-ary n-cube mesh or torus, validating the size
// against the default package bounds.
func NewCube(k, n int, wrap bool) (Cube, error) {
	return NewCubeCap(k, n, wrap, 0)
}

// NewCubeCap is NewCube with an explicit node-count cap: maxNodes <= 0
// applies the MaxNodes default, anything larger opts in to big networks
// up to MaxNodesLimit (spec parameter cap=N routes here).
func NewCubeCap(k, n int, wrap bool, maxNodes int) (Cube, error) {
	if k < 2 {
		return Cube{}, fmt.Errorf("topology: cube radix %d; need k >= 2", k)
	}
	if n < 1 {
		return Cube{}, fmt.Errorf("topology: cube dimension %d; need n >= 1", n)
	}
	nodes := 1
	for i := 0; i < n; i++ {
		nodes *= k
		if nodes > MaxNodesLimit {
			return Cube{}, fmt.Errorf("topology: %d-ary %d-cube exceeds the absolute limit of %d nodes", k, n, MaxNodesLimit)
		}
	}
	c := Cube{K: k, N: n, Wrap: wrap}
	if err := checkSize(c.Name(), nodes, c.Ports(), maxNodes); err != nil {
		return Cube{}, err
	}
	return c, nil
}

// NewMesh returns a k×k mesh, the paper's topology. It panics on k < 2
// (programmer error); spec-driven configuration goes through New, which
// returns errors instead.
func NewMesh(k int) Cube {
	c, err := NewCube(k, 2, false)
	if err != nil {
		panic(err)
	}
	return c
}

// NewTorus returns a k×k torus with dateline VC classes.
// It panics on k < 2 (programmer error), like NewMesh.
func NewTorus(k int) Cube {
	c, err := NewCube(k, 2, true)
	if err != nil {
		panic(err)
	}
	return c
}

// NewRing returns a bidirectional ring of the given node count — the
// k-ary 1-cube torus, so it inherits the dateline VC classes.
func NewRing(nodes int) (Cube, error) {
	return NewRingCap(nodes, 0)
}

// NewRingCap is NewRing with an explicit node-count cap (see
// NewCubeCap).
func NewRingCap(nodes, maxNodes int) (Cube, error) {
	c, err := NewCubeCap(nodes, 1, true, maxNodes)
	if err != nil {
		return Cube{}, fmt.Errorf("topology: ring: %w", err)
	}
	c.ring = true
	return c, nil
}

// Name implements Topology.
func (c Cube) Name() string {
	if c.ring {
		return fmt.Sprintf("%d-node ring", c.K)
	}
	kind := "mesh"
	if c.Wrap {
		kind = "torus"
	}
	dims := make([]string, c.N)
	for i := range dims {
		dims[i] = fmt.Sprint(c.K)
	}
	return fmt.Sprintf("%s %s", strings.Join(dims, "x"), kind)
}

// Nodes implements Topology.
func (c Cube) Nodes() int {
	n := 1
	for i := 0; i < c.N; i++ {
		n *= c.K
	}
	return n
}

// Ports implements Topology: local plus two directions per dimension.
func (c Cube) Ports() int { return 1 + 2*c.N }

// Degree implements Topology.
func (c Cube) Degree(node int) int {
	if c.Wrap {
		return c.Ports()
	}
	deg := 1
	for d := 0; d < c.N; d++ {
		x := c.Coord(node, d)
		if x > 0 {
			deg++
		}
		if x < c.K-1 {
			deg++
		}
	}
	return deg
}

// Coord returns the node's coordinate in dimension d.
func (c Cube) Coord(node, d int) int {
	for i := 0; i < d; i++ {
		node /= c.K
	}
	return node % c.K
}

// XY returns the coordinates of a node of a 2-D cube.
func (c Cube) XY(node int) (x, y int) { return node % c.K, node / c.K % c.K }

// Node returns the node at coordinates (x, y) of a 2-D cube.
func (c Cube) Node(x, y int) int { return y*c.K + x }

// stride returns the node-index stride of dimension d.
func (c Cube) stride(d int) int {
	s := 1
	for i := 0; i < d; i++ {
		s *= c.K
	}
	return s
}

// dimOf decodes a directional port into its dimension and direction.
func dimOf(port int) (d int, plus bool) { return (port - 1) / 2, (port-1)%2 == 0 }

// Neighbor implements Topology.
func (c Cube) Neighbor(node, port int) (next, inPort int, ok bool) {
	if port < 1 || port >= c.Ports() {
		return 0, 0, false
	}
	d, plus := dimOf(port)
	x := c.Coord(node, d)
	s := c.stride(d)
	if plus {
		if x == c.K-1 {
			if !c.Wrap {
				return 0, 0, false
			}
			return node - x*s, port + 1, true
		}
		return node + s, port + 1, true
	}
	if x == 0 {
		if !c.Wrap {
			return 0, 0, false
		}
		return node + (c.K-1)*s, port - 1, true
	}
	return node - s, port - 1, true
}

// Route implements dimension-ordered routing, lowest dimension first
// (XY routing for n = 2): correct each dimension fully, then eject. On
// a torus each ring is traversed the shorter way around, ties broken
// toward the positive direction.
func (c Cube) Route(cur, dst int) int {
	for d := 0; d < c.N; d++ {
		x, t := c.Coord(cur, d), c.Coord(dst, d)
		if x == t {
			continue
		}
		if c.Wrap {
			if forward(x, t, c.K) {
				return 1 + 2*d
			}
			return 2 + 2*d
		}
		if t > x {
			return 1 + 2*d
		}
		return 2 + 2*d
	}
	return PortLocal
}

// forward reports whether the positive direction is (weakly) shorter.
func forward(c, d, k int) bool {
	fwd := (d - c + k) % k
	return fwd <= k-fwd
}

// RouteCandidates implements Topology. On a mesh the set follows the
// negative-first turn model: while any dimension still needs a negative
// correction, only the productive negative ports are offered (a packet
// may pick any order among them); once every remaining correction is
// positive, all productive positive ports are offered. Negative-first
// forbids every positive→negative turn, which leaves the channel
// dependency graph acyclic, so even the adaptive layer alone cannot
// deadlock on a mesh. On a torus or ring each unmatched dimension
// offers its shorter-way port (ties toward positive, matching Route);
// the ring cycles this leaves are broken by the dateline VC classes on
// the escape layer, not by turn restrictions.
func (c Cube) RouteCandidates(cur, dst int, buf []uint8) []uint8 {
	if c.Wrap {
		for d := 0; d < c.N; d++ {
			x, t := c.Coord(cur, d), c.Coord(dst, d)
			if x == t {
				continue
			}
			if forward(x, t, c.K) {
				buf = append(buf, uint8(1+2*d))
			} else {
				buf = append(buf, uint8(2+2*d))
			}
		}
		return buf
	}
	n := len(buf)
	neg := false
	for d := 0; d < c.N; d++ {
		x, t := c.Coord(cur, d), c.Coord(dst, d)
		if x == t {
			continue
		}
		if t < x {
			if !neg {
				buf = buf[:n] // drop buffered positive ports
				neg = true
			}
			buf = append(buf, uint8(2+2*d))
		} else if !neg {
			buf = append(buf, uint8(1+2*d))
		}
	}
	return buf
}

// PortName implements Topology. 2-D cubes keep the paper's compass
// labels; higher dimensions use x/y/z then d<i> with +/- direction.
func (c Cube) PortName(port int) string {
	if port == PortLocal {
		return "local"
	}
	if port < 0 || port >= c.Ports() {
		return fmt.Sprintf("port%d", port)
	}
	d, plus := dimOf(port)
	if c.N == 2 {
		switch port {
		case PortEast:
			return "east"
		case PortWest:
			return "west"
		case PortNorth:
			return "north"
		case PortSouth:
			return "south"
		}
	}
	dim := [...]string{"x", "y", "z"}
	name := fmt.Sprintf("d%d", d)
	if d < len(dim) {
		name = dim[d]
	}
	if plus {
		return name + "+"
	}
	return name + "-"
}

// Distance returns the minimal hop count between two nodes.
func (c Cube) Distance(a, b int) int {
	total := 0
	for d := 0; d < c.N; d++ {
		x, y := c.Coord(a, d), c.Coord(b, d)
		if c.Wrap {
			total += ringDist(x, y, c.K)
		} else {
			total += abs(x - y)
		}
	}
	return total
}

func ringDist(a, b, k int) int {
	d := abs(a - b)
	if k-d < d {
		return k - d
	}
	return d
}

// Diameter implements Topology.
func (c Cube) Diameter() int {
	if c.Wrap {
		return c.N * (c.K / 2)
	}
	return c.N * (c.K - 1)
}

// AvgDistance returns the mean hop distance under uniform traffic with
// self-addressed packets excluded: n · E[per-dimension distance] ·
// Nodes/(Nodes−1). Per dimension, a mesh has E[|Δ|] = (k²−1)/(3k); a
// torus ring has E[dist] = k/4 for even k and (k²−1)/(4k) for odd k.
func (c Cube) AvgDistance() float64 {
	k := float64(c.K)
	var perDim float64
	if c.Wrap {
		if c.K%2 == 0 {
			perDim = k / 4
		} else {
			perDim = (k*k - 1) / (4 * k)
		}
	} else {
		perDim = (k*k - 1) / (3 * k)
	}
	n := float64(c.Nodes())
	return float64(c.N) * perDim * n / (n - 1)
}

// UniformCapacity implements Topology. The bisection of a k-ary n-cube
// mesh is k^(n−1) channels per direction; uniform traffic sends half of
// all λ·kⁿ flits across it, so λ·kⁿ/4 ≤ k^(n−1), i.e. capacity = 4/k
// flits/node/cycle (0.5 for the paper's 8×8 mesh) independent of n. A
// torus has twice the bisection: 8/k. Either bound is additionally
// capped at the injection-channel bandwidth of 1 flit/node/cycle —
// on small-radix cubes the bisection outruns what a single local port
// can ever offer, and load fractions must stay physically reachable.
func (c Cube) UniformCapacity() float64 {
	cap := 4 / float64(c.K)
	if c.Wrap {
		cap = 8 / float64(c.K)
	}
	return min(cap, 1)
}

// VCClasses implements Topology: tori need the two dateline classes.
func (c Cube) VCClasses() int {
	if c.Wrap {
		return 2
	}
	return 1
}

// VCMask implements Topology. On a mesh every VC is a candidate. On a
// torus the hop's channel is class 0 while the remaining route in the
// current dimension still has the wraparound (dateline) link ahead, and
// class 1 from the crossing hop onward (including routes that never
// wrap). Each class owns half the v VCs; v must be even and ≥ 2.
func (c Cube) VCMask(cur, dst, port, v int) uint64 {
	if !c.Wrap || port == PortLocal || port >= c.Ports() {
		return FullVCMask(v) // ejection, or no class policy at all
	}
	d, plus := dimOf(port)
	x, t := c.Coord(cur, d), c.Coord(dst, d)
	var wrapAhead bool
	if plus {
		next := (x + 1) % c.K
		wrapAhead = x+1 < c.K && t < next
	} else {
		next := (x - 1 + c.K) % c.K
		wrapAhead = x-1 >= 0 && t > next
	}
	return VCClassMask(v, !wrapAhead)
}

// CrossesDateline reports whether the hop from node through port crosses
// the wraparound link of its dimension (the dateline is between
// coordinate k−1 and 0). Always false on a mesh.
func (c Cube) CrossesDateline(node, port int) bool {
	if !c.Wrap || port < 1 || port >= c.Ports() {
		return false
	}
	d, plus := dimOf(port)
	x := c.Coord(node, d)
	if plus {
		return x == c.K-1
	}
	return x == 0
}
