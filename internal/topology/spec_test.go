package topology

import (
	"strings"
	"testing"
)

func TestSpecGrammar(t *testing.T) {
	cases := []struct {
		spec     string
		defaultK int
		name     string
		nodes    int
		ports    int
	}{
		{"mesh", 8, "8x8 mesh", 64, 5},
		{"", 8, "8x8 mesh", 64, 5},
		{"mesh:k=4", 9, "4x4 mesh", 16, 5},
		{"mesh:4", 9, "4x4 mesh", 16, 5},
		{"torus", 4, "4x4 torus", 16, 5},
		{"torus:k=4,n=3", 8, "4x4x4 torus", 64, 7},
		{"torus:k=4:n=3", 8, "4x4x4 torus", 64, 7}, // ':' separator survives comma-splitting CLIs
		{"mesh:n=3", 4, "4x4x4 mesh", 64, 7},
		{"hypercube:64", 8, "6-cube (64 nodes)", 64, 7},
		{"hypercube:n=6", 8, "6-cube (64 nodes)", 64, 7},
		{"hypercube", 16, "4-cube (16 nodes)", 16, 5},
		{"ring:16", 8, "16-node ring", 16, 3},
		{"ring", 12, "12-node ring", 12, 3},
	}
	for _, c := range cases {
		topo, err := New(c.spec, c.defaultK)
		if err != nil {
			t.Errorf("New(%q, %d): %v", c.spec, c.defaultK, err)
			continue
		}
		if topo.Name() != c.name || topo.Nodes() != c.nodes || topo.Ports() != c.ports {
			t.Errorf("New(%q, %d) = %s (%d nodes, %d ports), want %s (%d, %d)",
				c.spec, c.defaultK, topo.Name(), topo.Nodes(), topo.Ports(), c.name, c.nodes, c.ports)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	bad := []struct {
		spec     string
		defaultK int
		wantSub  string
	}{
		{"klein-bottle", 8, "unknown topology"},
		{"mesh:q=3", 8, "unknown parameter"},
		{"mesh:k=zero", 8, "positive integer"},
		{"mesh:k=-4", 8, "positive integer"},
		{"ring:n=2", 8, "no dimension parameter"},
		{"hypercube:48", 8, "power-of-two"},
		{"hypercube", 9, "power-of-two"},
		{"hypercube:64,n=5", 8, "conflicts"},
		{"mesh:k=1", 8, "k >= 2"},
		{"torus:k=2,n=30", 8, "nodes"},
	}
	for _, c := range bad {
		_, err := New(c.spec, c.defaultK)
		if err == nil {
			t.Errorf("New(%q, %d) should fail", c.spec, c.defaultK)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("New(%q, %d) error %q does not mention %q", c.spec, c.defaultK, err, c.wantSub)
		}
	}
}

func TestSpecCanonical(t *testing.T) {
	cases := map[string]struct {
		shape string
		k     int
	}{
		"mesh":          {"mesh", 0},
		"mesh:k=8":      {"mesh", 8},
		"mesh:n=2":      {"mesh", 0}, // n=2 is the default shape
		"torus:k=4,n=3": {"torus:n=3", 4},
		"hypercube:16":  {"hypercube", 16},
		"hypercube:n=4": {"hypercube", 16},
		"ring:16":       {"ring", 16},
	}
	for spec, want := range cases {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		shape, k := s.Canonical()
		if shape != want.shape || k != want.k {
			t.Errorf("Canonical(%q) = (%q, %d), want (%q, %d)", spec, shape, k, want.shape, want.k)
		}
	}
}

func TestIsParamFragment(t *testing.T) {
	for _, f := range []string{"k=4", "n=3", "16"} {
		if !IsParamFragment(f) {
			t.Errorf("IsParamFragment(%q) = false", f)
		}
	}
	for _, f := range []string{"mesh", "torus:k=4", "ring:16", "q=2"} {
		if IsParamFragment(f) {
			t.Errorf("IsParamFragment(%q) = true", f)
		}
	}
}

func TestSpecPinnedK(t *testing.T) {
	cases := map[string]int{
		"mesh":          0,
		"mesh:k=4":      4,
		"torus:k=4,n=3": 4,
		"hypercube:64":  64,
		"hypercube:n=6": 64,
		"hypercube":     0,
		"ring:16":       16,
		"ring":          0,
	}
	for spec, want := range cases {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.PinnedK(); got != want {
			t.Errorf("PinnedK(%q) = %d, want %d", spec, got, want)
		}
	}
}
