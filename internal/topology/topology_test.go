package topology

import (
	"math"
	"testing"
	"testing/quick"
)

// testTopologies is the cross-topology test set: the paper's mesh, the
// 2-D torus, a 3-D mesh and torus, odd-radix cases, a hypercube, and a
// ring.
func testTopologies(t *testing.T) []Topology {
	t.Helper()
	hc, err := NewHypercube(32)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(9)
	if err != nil {
		t.Fatal(err)
	}
	cube3m, err := NewCube(4, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	cube3t, err := NewCube(3, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	return []Topology{
		NewMesh(8), NewMesh(5), NewTorus(4), NewTorus(5),
		cube3m, cube3t, hc, ring,
	}
}

// TestNeighborsReciprocal: every connected output port must arrive on
// an input port whose own wiring leads straight back — the invariant the
// network layer's link construction relies on.
func TestNeighborsReciprocal(t *testing.T) {
	for _, topo := range testTopologies(t) {
		for n := 0; n < topo.Nodes(); n++ {
			connected := 1 // local port
			for port := 1; port < topo.Ports(); port++ {
				next, inPort, ok := topo.Neighbor(n, port)
				if !ok {
					continue
				}
				connected++
				back, backPort, ok2 := topo.Neighbor(next, inPort)
				if !ok2 || back != n || backPort != port {
					t.Fatalf("%s: neighbor not reciprocal: %d --%s--> %d (in %s) --> %d (in %s)",
						topo.Name(), n, topo.PortName(port), next, topo.PortName(inPort), back, topo.PortName(backPort))
				}
			}
			if got := topo.Degree(n); got != connected {
				t.Fatalf("%s: node %d Degree() = %d, counted %d connected ports",
					topo.Name(), n, got, connected)
			}
		}
	}
}

// TestRouteDeliversWithinDiameter: for every (src, dst) pair of every
// topology, the routing function must reach dst in exactly the minimal
// distance, which never exceeds the diameter.
func TestRouteDeliversWithinDiameter(t *testing.T) {
	type distancer interface{ Distance(a, b int) int }
	for _, topo := range testTopologies(t) {
		diam := topo.Diameter()
		maxSeen := 0
		for src := 0; src < topo.Nodes(); src++ {
			for dst := 0; dst < topo.Nodes(); dst++ {
				cur, hops := src, 0
				for cur != dst {
					port := topo.Route(cur, dst)
					if port == PortLocal {
						t.Fatalf("%s: premature ejection at %d routing to %d", topo.Name(), cur, dst)
					}
					next, _, ok := topo.Neighbor(cur, port)
					if !ok {
						t.Fatalf("%s: route walked off an edge at %d toward %d via %s",
							topo.Name(), cur, dst, topo.PortName(port))
					}
					cur = next
					hops++
					if hops > diam {
						t.Fatalf("%s: route %d->%d exceeds diameter %d", topo.Name(), src, dst, diam)
					}
				}
				if d := topo.(distancer).Distance(src, dst); hops != d {
					t.Fatalf("%s: %d->%d took %d hops, minimal %d", topo.Name(), src, dst, hops, d)
				}
				if hops > maxSeen {
					maxSeen = hops
				}
				if topo.Route(dst, dst) != PortLocal {
					t.Fatalf("%s: Route(dst,dst) != local", topo.Name())
				}
			}
		}
		if maxSeen != diam {
			t.Errorf("%s: worst routed pair is %d hops, Diameter() says %d", topo.Name(), maxSeen, diam)
		}
	}
}

func TestXYRouteXFirst(t *testing.T) {
	// Dimension order: x must be fully corrected before y moves.
	m := NewMesh(8)
	src, dst := m.Node(0, 0), m.Node(3, 5)
	cur := src
	for {
		port := m.Route(cur, dst)
		if port == PortLocal {
			break
		}
		x, _ := m.XY(cur)
		dx, _ := m.XY(dst)
		if x != dx && (port == PortNorth || port == PortSouth) {
			t.Fatalf("moved in y at %d before x corrected", cur)
		}
		cur, _, _ = m.Neighbor(cur, port)
	}
}

func TestMeshEdges(t *testing.T) {
	m := NewMesh(4)
	if _, _, ok := m.Neighbor(m.Node(3, 0), PortEast); ok {
		t.Error("east edge should be open")
	}
	if _, _, ok := m.Neighbor(m.Node(0, 0), PortWest); ok {
		t.Error("west edge should be open")
	}
	if _, _, ok := m.Neighbor(m.Node(0, 3), PortNorth); ok {
		t.Error("north edge should be open")
	}
	if _, _, ok := m.Neighbor(m.Node(0, 0), PortSouth); ok {
		t.Error("south edge should be open")
	}
	if deg := m.Degree(m.Node(0, 0)); deg != 3 {
		t.Errorf("mesh corner degree %d, want 3", deg)
	}
	if deg := m.Degree(m.Node(1, 1)); deg != 5 {
		t.Errorf("mesh interior degree %d, want 5", deg)
	}
}

// TestAvgDistance: the closed forms must match exhaustive computation
// on every test topology.
func TestAvgDistance(t *testing.T) {
	type avg interface {
		Distance(a, b int) int
		AvgDistance() float64
	}
	for _, topo := range testTopologies(t) {
		a := topo.(avg)
		var sum, n float64
		for i := 0; i < topo.Nodes(); i++ {
			for j := 0; j < topo.Nodes(); j++ {
				if i == j {
					continue
				}
				sum += float64(a.Distance(i, j))
				n++
			}
		}
		if got, want := a.AvgDistance(), sum/n; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: AvgDistance = %v, exhaustive %v", topo.Name(), got, want)
		}
	}
	// The paper's 8×8 mesh: ≈5.33 hops.
	if got := NewMesh(8).AvgDistance(); math.Abs(got-5.333) > 0.01 {
		t.Errorf("8x8 mean distance %v, want ≈5.33", got)
	}
}

func TestUniformCapacity(t *testing.T) {
	cases := []struct {
		spec string
		k    int
		want float64
	}{
		{"mesh", 8, 0.5},
		{"mesh", 4, 1.0},
		{"torus", 8, 1.0},     // 8/k, at the injection-bandwidth cap
		{"torus", 4, 1.0},     // bisection allows 2, injection caps at 1
		{"mesh:n=3", 4, 1.0},  // 4/k independent of n
		{"torus:n=3", 8, 1.0}, // 8/k independent of n
		{"ring:16", 0, 0.5},   // 8/16
		{"ring:32", 0, 0.25},
		{"hypercube:64", 0, 1.0}, // bisection allows 2 at every size; injection caps at 1
	}
	for _, c := range cases {
		topo, err := New(c.spec, c.k)
		if err != nil {
			t.Fatalf("New(%q, %d): %v", c.spec, c.k, err)
		}
		if got := topo.UniformCapacity(); got != c.want {
			t.Errorf("%s (k=%d) capacity %v, want %v", c.spec, c.k, got, c.want)
		}
	}
}

func TestTorusDateline(t *testing.T) {
	tor := NewTorus(4)
	if !tor.CrossesDateline(tor.Node(3, 0), PortEast) {
		t.Error("east wrap from x=3 must cross dateline")
	}
	if tor.CrossesDateline(tor.Node(2, 0), PortEast) {
		t.Error("interior east hop must not cross dateline")
	}
	if !tor.CrossesDateline(tor.Node(0, 0), PortWest) {
		t.Error("west wrap from x=0 must cross dateline")
	}
	if NewMesh(4).CrossesDateline(0, PortWest) {
		t.Error("mesh has no dateline")
	}
}

func TestVCClassMask(t *testing.T) {
	if m := VCClassMask(4, false); m != 0b0011 {
		t.Fatalf("class 0 mask %b", m)
	}
	if m := VCClassMask(4, true); m != 0b1100 {
		t.Fatalf("class 1 mask %b", m)
	}
	if m := FullVCMask(3); m != 0b111 {
		t.Fatalf("full mask %b", m)
	}
}

// TestVCMaskProperties: on every wraparound topology the dateline mask
// must always leave at least one candidate class, use class 0 only
// while the wrap is ahead, and use class 1 on and after the crossing
// hop. Topologies without classes must never restrict candidates.
func TestVCMaskProperties(t *testing.T) {
	const v = 4
	class0 := VCClassMask(v, false)
	class1 := VCClassMask(v, true)
	for _, topo := range testTopologies(t) {
		if topo.VCClasses() == 1 {
			for cur := 0; cur < topo.Nodes(); cur++ {
				for port := 0; port < topo.Ports(); port++ {
					if m := topo.VCMask(cur, (cur+1)%topo.Nodes(), port, v); m != FullVCMask(v) {
						t.Fatalf("%s: classless topology restricted VCs: %b", topo.Name(), m)
					}
				}
			}
			continue
		}
		cube := topo.(Cube)
		for cur := 0; cur < topo.Nodes(); cur++ {
			for dst := 0; dst < topo.Nodes(); dst++ {
				if cur == dst {
					continue
				}
				node := cur
				crossed := make([]bool, cube.N) // per dimension
				for node != dst {
					port := topo.Route(node, dst)
					mask := topo.VCMask(node, dst, port, v)
					if mask == 0 {
						t.Fatalf("%s: empty VC mask at %d->%d via %s", topo.Name(), node, dst, topo.PortName(port))
					}
					if mask != class0 && mask != class1 {
						t.Fatalf("%s: mask %b is neither class at %d->%d", topo.Name(), mask, node, dst)
					}
					d, _ := dimOf(port)
					wraps := cube.CrossesDateline(node, port)
					if crossed[d] && mask != class1 {
						t.Fatalf("%s: class 0 used after dateline at %d->%d", topo.Name(), node, dst)
					}
					if wraps {
						// The crossing hop itself must already be class 1.
						if mask != class1 {
							t.Fatalf("%s: crossing hop not class 1 at %d->%d", topo.Name(), node, dst)
						}
						crossed[d] = true
					}
					node, _, _ = topo.Neighbor(node, port)
				}
			}
		}
	}
}

func TestPortNames(t *testing.T) {
	m := NewMesh(4)
	for port, want := range []string{"local", "east", "west", "north", "south"} {
		if got := m.PortName(port); got != want {
			t.Errorf("mesh port %d named %q, want %q", port, got, want)
		}
	}
	// No panic paths: out-of-range ports get a generic label.
	if got := m.PortName(99); got != "port99" {
		t.Errorf("out-of-range port named %q", got)
	}
	// Per-topology names are unique within each topology.
	for _, topo := range testTopologies(t) {
		seen := map[string]bool{}
		for port := 0; port < topo.Ports(); port++ {
			name := topo.PortName(port)
			if name == "" || seen[name] {
				t.Errorf("%s: bad or duplicate port name %q", topo.Name(), name)
			}
			seen[name] = true
		}
	}
}

func TestCubeNodeXYRoundTrip(t *testing.T) {
	prop := func(kRaw, nRaw uint8) bool {
		k := 2 + int(kRaw%14)
		m := NewMesh(k)
		n := int(nRaw) % m.Nodes()
		x, y := m.XY(n)
		return m.Node(x, y) == n && x >= 0 && x < k && y >= 0 && y < k
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCoordStride(t *testing.T) {
	c, err := NewCube(4, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// node = x + 4y + 16z
	node := 1 + 4*2 + 16*3
	for d, want := range []int{1, 2, 3} {
		if got := c.Coord(node, d); got != want {
			t.Errorf("coord %d of %d = %d, want %d", d, node, got, want)
		}
	}
	if c.Nodes() != 64 || c.Ports() != 7 || c.Diameter() != 6 {
		t.Errorf("4-ary 3-torus: nodes=%d ports=%d diameter=%d", c.Nodes(), c.Ports(), c.Diameter())
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewCube(1, 2, false); err == nil {
		t.Error("radix 1 accepted")
	}
	if _, err := NewCube(4, 0, false); err == nil {
		t.Error("dimension 0 accepted")
	}
	if _, err := NewCube(2, 20, true); err == nil {
		t.Error("2^20-node cube accepted (over MaxNodes)")
	}
	if _, err := NewHypercube(48); err == nil {
		t.Error("non-power-of-two hypercube accepted")
	}
	if _, err := NewRing(1); err == nil {
		t.Error("1-node ring accepted")
	}
}
