package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeshNeighborsReciprocal(t *testing.T) {
	m := NewMesh(8)
	for n := 0; n < m.Nodes(); n++ {
		for port := PortEast; port <= PortSouth; port++ {
			next, ok := m.Neighbor(n, port)
			if !ok {
				continue
			}
			back, ok2 := m.Neighbor(next, Opposite(port))
			if !ok2 || back != n {
				t.Fatalf("neighbor not reciprocal: %d --%s--> %d --%s--> %d",
					n, PortName(port), next, PortName(Opposite(port)), back)
			}
		}
	}
}

func TestMeshEdges(t *testing.T) {
	m := NewMesh(4)
	if _, ok := m.Neighbor(m.Node(3, 0), PortEast); ok {
		t.Error("east edge should be open")
	}
	if _, ok := m.Neighbor(m.Node(0, 0), PortWest); ok {
		t.Error("west edge should be open")
	}
	if _, ok := m.Neighbor(m.Node(0, 3), PortNorth); ok {
		t.Error("north edge should be open")
	}
	if _, ok := m.Neighbor(m.Node(0, 0), PortSouth); ok {
		t.Error("south edge should be open")
	}
}

func TestXYRouteDeliversAndIsMinimal(t *testing.T) {
	m := NewMesh(8)
	for src := 0; src < m.Nodes(); src++ {
		for dst := 0; dst < m.Nodes(); dst++ {
			cur, hops := src, 0
			for cur != dst {
				port := m.Route(cur, dst)
				if port == PortLocal {
					t.Fatalf("premature ejection at %d routing to %d", cur, dst)
				}
				next, ok := m.Neighbor(cur, port)
				if !ok {
					t.Fatalf("route walked off the mesh at %d toward %d", cur, dst)
				}
				cur = next
				hops++
				if hops > 2*m.K {
					t.Fatalf("livelock routing %d->%d", src, dst)
				}
			}
			if hops != m.Distance(src, dst) {
				t.Fatalf("%d->%d took %d hops, manhattan %d", src, dst, hops, m.Distance(src, dst))
			}
			if m.Route(dst, dst) != PortLocal {
				t.Fatalf("Route(dst,dst) != local")
			}
		}
	}
}

func TestXYRouteXFirst(t *testing.T) {
	// Dimension order: x must be fully corrected before y moves.
	m := NewMesh(8)
	src, dst := m.Node(0, 0), m.Node(3, 5)
	cur := src
	for {
		port := m.Route(cur, dst)
		if port == PortLocal {
			break
		}
		x, _ := m.XY(cur)
		dx, _ := m.XY(dst)
		if x != dx && (port == PortNorth || port == PortSouth) {
			t.Fatalf("moved in y at %d before x corrected", cur)
		}
		cur, _ = m.Neighbor(cur, port)
	}
}

func TestMeshAvgDistance(t *testing.T) {
	// Exhaustively computed mean hop distance (self excluded) must match
	// the closed form.
	m := NewMesh(8)
	var sum, n float64
	for a := 0; a < m.Nodes(); a++ {
		for b := 0; b < m.Nodes(); b++ {
			if a == b {
				continue
			}
			sum += float64(m.Distance(a, b))
			n++
		}
	}
	want := sum / n
	if got := m.AvgDistance(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("AvgDistance = %v, exhaustive %v", got, want)
	}
	// The paper's 8×8 mesh: ≈5.33 hops.
	if got := m.AvgDistance(); math.Abs(got-5.333) > 0.01 {
		t.Errorf("8x8 mean distance %v, want ≈5.33", got)
	}
}

func TestUniformCapacity(t *testing.T) {
	if got := NewMesh(8).UniformCapacity(); got != 0.5 {
		t.Fatalf("8x8 uniform capacity = %v, want 0.5 flits/node/cycle", got)
	}
	if got := NewMesh(4).UniformCapacity(); got != 1.0 {
		t.Fatalf("4x4 uniform capacity = %v, want 1.0", got)
	}
}

func TestTorusNeighborsAlwaysConnected(t *testing.T) {
	tor := NewTorus(4)
	for n := 0; n < tor.Nodes(); n++ {
		for port := PortEast; port <= PortSouth; port++ {
			next, ok := tor.Neighbor(n, port)
			if !ok {
				t.Fatalf("torus port %s of %d unconnected", PortName(port), n)
			}
			back, _ := tor.Neighbor(next, Opposite(port))
			if back != n {
				t.Fatalf("torus neighbor not reciprocal at %d", n)
			}
		}
	}
}

func TestTorusRouteMinimal(t *testing.T) {
	tor := NewTorus(5)
	for src := 0; src < tor.Nodes(); src++ {
		for dst := 0; dst < tor.Nodes(); dst++ {
			cur, hops := src, 0
			for cur != dst {
				port := tor.Route(cur, dst)
				next, ok := tor.Neighbor(cur, port)
				if !ok || port == PortLocal {
					t.Fatalf("bad torus route at %d toward %d", cur, dst)
				}
				cur = next
				hops++
				if hops > 2*tor.K {
					t.Fatalf("torus livelock %d->%d", src, dst)
				}
			}
			if hops != tor.Distance(src, dst) {
				t.Fatalf("torus %d->%d: %d hops, minimal %d", src, dst, hops, tor.Distance(src, dst))
			}
		}
	}
}

func TestTorusDateline(t *testing.T) {
	tor := NewTorus(4)
	if !tor.CrossesDateline(tor.Node(3, 0), PortEast) {
		t.Error("east wrap from x=3 must cross dateline")
	}
	if tor.CrossesDateline(tor.Node(2, 0), PortEast) {
		t.Error("interior east hop must not cross dateline")
	}
	if !tor.CrossesDateline(tor.Node(0, 0), PortWest) {
		t.Error("west wrap from x=0 must cross dateline")
	}
}

func TestVCClassMask(t *testing.T) {
	if m := VCClassMask(4, false); m != 0b0011 {
		t.Fatalf("class 0 mask %b", m)
	}
	if m := VCClassMask(4, true); m != 0b1100 {
		t.Fatalf("class 1 mask %b", m)
	}
}

func TestMeshNodeXYRoundTrip(t *testing.T) {
	prop := func(kRaw, nRaw uint8) bool {
		k := 2 + int(kRaw%14)
		m := NewMesh(k)
		n := int(nRaw) % m.Nodes()
		x, y := m.XY(n)
		return m.Node(x, y) == n && x >= 0 && x < k && y >= 0 && y < k
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestOppositePanicsOnLocal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Opposite(local) must panic")
		}
	}()
	Opposite(PortLocal)
}
