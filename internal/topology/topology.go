// Package topology defines network topologies and deterministic routing
// for the simulator as a graph-general abstraction: any topology that
// can name its ports, wire its neighbors, route deterministically, and
// state its deadlock-avoidance virtual-channel policy plugs into the
// network layer unchanged.
//
// The paper evaluates an 8×8 mesh with dimension-ordered (XY) routing —
// a R→p routing function, the most general possible for deterministic
// routing (footnote 14). This package generalizes that to k-ary n-cubes
// of arbitrary dimension (meshes and tori), the hypercube (the 2-ary
// n-cube), and the bidirectional ring (the k-ary 1-cube torus), each
// with its own port count p — which is exactly the parameter the
// paper's delay model is most sensitive to.
package topology

import "fmt"

// Port 0 is always the local (injection/ejection) port. For 2-D cubes
// the four directional ports keep the paper's mesh numbering; they are
// provided for readability in 2-D-specific code and tests.
const (
	PortLocal = 0
	PortEast  = 1 // dimension 0, positive
	PortWest  = 2 // dimension 0, negative
	PortNorth = 3 // dimension 1, positive
	PortSouth = 4 // dimension 1, negative
)

// MaxPorts bounds the router port count of any topology: the router's
// allocation stages index ports through 64-bit occupancy bitmasks.
const MaxPorts = 64

// MaxNodes bounds the node count of any topology: routing tables are
// precomputed per router (O(nodes) bytes each, O(nodes²) total), so an
// unbounded spec would silently ask for gigabytes.
const MaxNodes = 1 << 14

// Topology describes a network graph over routers with local ports. All
// methods are pure functions of the topology's parameters: the network
// layer precomputes routing and VC-class tables from them once, so none
// of these are on the simulation hot path.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Nodes returns the number of routers.
	Nodes() int
	// Ports returns the number of router ports p, including the local
	// port 0 — the maximum degree; edge routers of a mesh leave some
	// ports unconnected. This is the p of the paper's delay model.
	Ports() int
	// Degree returns the number of connected ports at node, including
	// the local port (Degree == Ports away from mesh edges).
	Degree(node int) int
	// Neighbor returns the router reached from node through output port
	// port and the input port it arrives on there, or ok=false if the
	// port faces an edge (mesh boundary) or is the local port. The
	// wiring is reciprocal: Neighbor(a, p) = (b, q, true) implies
	// Neighbor(b, q) = (a, p, true).
	Neighbor(node, port int) (next, inPort int, ok bool)
	// Route returns the output port a packet at node cur should take
	// toward dst (dimension-ordered). Route(cur, cur) is PortLocal.
	Route(cur, dst int) int
	// PortName returns a human-readable label for a port.
	PortName(port int) string
	// Diameter returns the maximum routed hop count between any pair.
	Diameter() int
	// UniformCapacity returns the bisection-limited network capacity
	// under uniform random traffic, in flits per node per cycle.
	UniformCapacity() float64
	// VCClasses returns the number of virtual-channel classes
	// dimension-ordered routing needs for deadlock freedom: 1 when the
	// channel dependency graph is already acyclic (meshes, hypercubes),
	// 2 for dateline classes on wraparound rings (tori, rings). The
	// router's VC count must be a positive multiple of VCClasses.
	VCClasses() int
	// VCMask returns the virtual channels (as a candidate bitmask over
	// v VCs) that a packet at node cur heading to dst may allocate on
	// the hop through port. Topologies with VCClasses() == 1 return the
	// full mask; v must be a positive multiple of VCClasses().
	VCMask(cur, dst, port, v int) uint64
}

// FullVCMask returns the unrestricted candidate mask over v VCs.
func FullVCMask(v int) uint64 { return (uint64(1) << v) - 1 }

// VCClassMask returns the bitmask of virtual channels a packet may
// request on its next hop, given v VCs per port split into two dateline
// classes (low half = class 0, high half = class 1). crossed reports
// whether the packet has already crossed the dateline in the dimension
// it is currently traversing. v must be even and ≥ 2.
func VCClassMask(v int, crossed bool) uint64 {
	half := v / 2
	low := (uint64(1) << half) - 1
	if crossed {
		return low << half
	}
	return low
}

// checkSize validates a topology's node and port counts against the
// package bounds.
func checkSize(name string, nodes, ports int) error {
	if nodes > MaxNodes {
		return fmt.Errorf("topology: %s has %d nodes; max %d (routing tables are per-router)", name, nodes, MaxNodes)
	}
	if ports > MaxPorts {
		return fmt.Errorf("topology: %s needs %d router ports; max %d", name, ports, MaxPorts)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
