// Package topology defines network topologies and deterministic routing
// for the simulator as a graph-general abstraction: any topology that
// can name its ports, wire its neighbors, route deterministically, and
// state its deadlock-avoidance virtual-channel policy plugs into the
// network layer unchanged.
//
// The paper evaluates an 8×8 mesh with dimension-ordered (XY) routing —
// a R→p routing function, the most general possible for deterministic
// routing (footnote 14). This package generalizes that to k-ary n-cubes
// of arbitrary dimension (meshes and tori), the hypercube (the 2-ary
// n-cube), and the bidirectional ring (the k-ary 1-cube torus), each
// with its own port count p — which is exactly the parameter the
// paper's delay model is most sensitive to.
package topology

import "fmt"

// Port 0 is always the local (injection/ejection) port. For 2-D cubes
// the four directional ports keep the paper's mesh numbering; they are
// provided for readability in 2-D-specific code and tests.
const (
	PortLocal = 0
	PortEast  = 1 // dimension 0, positive
	PortWest  = 2 // dimension 0, negative
	PortNorth = 3 // dimension 1, positive
	PortSouth = 4 // dimension 1, negative
)

// MaxPorts bounds the router port count of any topology: the router's
// allocation stages index ports through 64-bit occupancy bitmasks.
const MaxPorts = 64

// MaxNodes is the default node-count cap of any topology: routing
// tables are precomputed per router (O(nodes) bytes each, O(nodes²)
// total), so an unbounded spec would silently ask for gigabytes. A spec
// can raise the cap explicitly with a cap=N parameter (the network
// layer switches to functional routing above MaxNodes, so the O(nodes²)
// tables are never built for opted-in large networks).
const MaxNodes = 1 << 14

// MaxNodesLimit is the absolute ceiling no cap= opt-in can exceed:
// above MaxNodes routing is functional (no quadratic tables), but the
// O(nodes) router, wire, and source state still has to be addressable.
const MaxNodesLimit = 1 << 22

// Topology describes a network graph over routers with local ports. All
// methods are pure functions of the topology's parameters: the network
// layer precomputes routing and VC-class tables from them once, so none
// of these are on the simulation hot path.
type Topology interface {
	// Name identifies the topology for reports.
	Name() string
	// Nodes returns the number of routers.
	Nodes() int
	// Ports returns the number of router ports p, including the local
	// port 0 — the maximum degree; edge routers of a mesh leave some
	// ports unconnected. This is the p of the paper's delay model.
	Ports() int
	// Degree returns the number of connected ports at node, including
	// the local port (Degree == Ports away from mesh edges).
	Degree(node int) int
	// Neighbor returns the router reached from node through output port
	// port and the input port it arrives on there, or ok=false if the
	// port faces an edge (mesh boundary) or is the local port. The
	// wiring is reciprocal: Neighbor(a, p) = (b, q, true) implies
	// Neighbor(b, q) = (a, p, true).
	Neighbor(node, port int) (next, inPort int, ok bool)
	// Route returns the output port a packet at node cur should take
	// toward dst (dimension-ordered). Route(cur, cur) is PortLocal.
	Route(cur, dst int) int
	// PortName returns a human-readable label for a port.
	PortName(port int) string
	// Diameter returns the maximum routed hop count between any pair.
	Diameter() int
	// UniformCapacity returns the bisection-limited network capacity
	// under uniform random traffic, in flits per node per cycle.
	UniformCapacity() float64
	// VCClasses returns the number of virtual-channel classes
	// dimension-ordered routing needs for deadlock freedom: 1 when the
	// channel dependency graph is already acyclic (meshes, hypercubes),
	// 2 for dateline classes on wraparound rings (tori, rings). The
	// router's VC count must be a positive multiple of VCClasses.
	VCClasses() int
	// VCMask returns the virtual channels (as a candidate bitmask over
	// v VCs) that a packet at node cur heading to dst may allocate on
	// the hop through port. Topologies with VCClasses() == 1 return the
	// full mask; v must be a positive multiple of VCClasses().
	VCMask(cur, dst, port, v int) uint64
	// RouteCandidates appends to buf the output ports an adaptive
	// minimal router at cur may legally offer a packet heading to dst,
	// and returns the extended slice (pass buf[:0] to reuse storage; no
	// allocation when capacity suffices). Every candidate is productive
	// (it lies on some minimal path), and the set obeys the family's
	// turn-model legality so that adaptive choice can never close a
	// dependency cycle outside the escape layer: meshes restrict to the
	// negative-first turn model (all productive negative-direction
	// ports, or — only when none remain — the productive positive
	// ports), wrap topologies offer the shorter way around each
	// unmatched ring (dateline VC classes break the remaining ring
	// cycles on the escape layer), and hypercubes offer every differing
	// dimension (the escape layer runs pure e-cube order). The set is
	// non-empty whenever cur != dst; RouteCandidates(cur, cur, buf)
	// returns buf with nothing appended.
	RouteCandidates(cur, dst int, buf []uint8) []uint8
}

// FullVCMask returns the unrestricted candidate mask over v VCs.
func FullVCMask(v int) uint64 { return (uint64(1) << v) - 1 }

// VCClassMask returns the bitmask of virtual channels a packet may
// request on its next hop, given v VCs per port split into two dateline
// classes (low half = class 0, high half = class 1). crossed reports
// whether the packet has already crossed the dateline in the dimension
// it is currently traversing. v must be even and ≥ 2.
func VCClassMask(v int, crossed bool) uint64 {
	half := v / 2
	low := (uint64(1) << half) - 1
	if crossed {
		return low << half
	}
	return low
}

// checkSize validates a topology's node and port counts against the
// package bounds. maxNodes <= 0 applies the MaxNodes default; any
// stated cap is itself clamped to MaxNodesLimit.
func checkSize(name string, nodes, ports, maxNodes int) error {
	limit := maxNodes
	if limit <= 0 {
		limit = MaxNodes
	}
	if limit > MaxNodesLimit {
		limit = MaxNodesLimit
	}
	if nodes > limit {
		if nodes > MaxNodesLimit {
			return fmt.Errorf("topology: %s has %d nodes; absolute limit %d", name, nodes, MaxNodesLimit)
		}
		return fmt.Errorf("topology: %s has %d nodes; max %d — building it preallocates ≈%s of simulator state; opt in by adding cap=%d to the topology spec",
			name, nodes, limit, MemEstimate(nodes), nodes)
	}
	if ports > MaxPorts {
		return fmt.Errorf("topology: %s needs %d router ports; max %d", name, ports, MaxPorts)
	}
	return nil
}

// MemEstimate is a rough preallocation estimate for a network of this
// many nodes at the paper's parameters: a few KiB of router buffers,
// wires, and allocator state per node, plus the O(nodes²) routing
// tables when the network is small enough to build them (above MaxNodes
// the network layer routes functionally instead).
func MemEstimate(nodes int) string {
	b := int64(nodes) * (4 << 10)
	if nodes <= MaxNodes {
		b += int64(nodes) * int64(nodes)
	}
	if b >= 1<<30 {
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	}
	return fmt.Sprintf("%.0f MiB", float64(b)/(1<<20))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
