// Package topology defines network topologies and deterministic routing
// for the simulator. The paper evaluates an 8×8 mesh with
// dimension-ordered (XY) routing — a R→p routing function, the most
// general possible for deterministic routing (footnote 14). A torus with
// dateline virtual-channel classes is provided as an extension.
package topology

import "fmt"

// Router port indices. Port 0 is the local (injection/ejection) port;
// the four mesh directions follow. A 2-D mesh router therefore has
// p = 5 physical channels, the paper's primary configuration.
const (
	PortLocal = 0
	PortEast  = 1 // +x
	PortWest  = 2 // -x
	PortNorth = 3 // +y
	PortSouth = 4 // -y
	NumPorts  = 5
)

// PortName returns a human-readable port label.
func PortName(p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortEast:
		return "east"
	case PortWest:
		return "west"
	case PortNorth:
		return "north"
	case PortSouth:
		return "south"
	default:
		return fmt.Sprintf("port%d", p)
	}
}

// Opposite returns the port on the neighbouring router that a given
// output port connects to (east connects to the neighbour's west input,
// and so on).
func Opposite(p int) int {
	switch p {
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	default:
		panic(fmt.Sprintf("topology: port %d has no opposite", p))
	}
}

// Topology describes a network graph over k×k routers with local ports.
type Topology interface {
	// Nodes returns the number of routers.
	Nodes() int
	// Neighbor returns the router reached from node through output port
	// port, or ok=false if the port faces an edge (mesh boundary).
	Neighbor(node, port int) (next int, ok bool)
	// Route returns the output port a packet at node cur should take
	// toward dst (dimension-ordered). Route(cur, cur) is PortLocal.
	Route(cur, dst int) int
	// UniformCapacity returns the bisection-limited network capacity
	// under uniform random traffic, in flits per node per cycle.
	UniformCapacity() float64
	// Name identifies the topology for reports.
	Name() string
}

// Mesh is a k×k 2-D mesh.
type Mesh struct{ K int }

// NewMesh returns a k×k mesh topology.
func NewMesh(k int) Mesh {
	if k < 2 {
		panic("topology: mesh needs k >= 2")
	}
	return Mesh{K: k}
}

// Name implements Topology.
func (m Mesh) Name() string { return fmt.Sprintf("%dx%d mesh", m.K, m.K) }

// Nodes implements Topology.
func (m Mesh) Nodes() int { return m.K * m.K }

// XY returns the coordinates of a node.
func (m Mesh) XY(node int) (x, y int) { return node % m.K, node / m.K }

// Node returns the node at coordinates (x, y).
func (m Mesh) Node(x, y int) int { return y*m.K + x }

// Neighbor implements Topology.
func (m Mesh) Neighbor(node, port int) (int, bool) {
	x, y := m.XY(node)
	switch port {
	case PortEast:
		if x == m.K-1 {
			return 0, false
		}
		return m.Node(x+1, y), true
	case PortWest:
		if x == 0 {
			return 0, false
		}
		return m.Node(x-1, y), true
	case PortNorth:
		if y == m.K-1 {
			return 0, false
		}
		return m.Node(x, y+1), true
	case PortSouth:
		if y == 0 {
			return 0, false
		}
		return m.Node(x, y-1), true
	default:
		return 0, false
	}
}

// Route implements dimension-ordered XY routing: correct x first, then
// y, then eject. XY routing on a mesh is deadlock-free without virtual
// channels, which is why the paper can compare wormhole routers (no VCs)
// against VC routers on equal terms.
func (m Mesh) Route(cur, dst int) int {
	cx, cy := m.XY(cur)
	dx, dy := m.XY(dst)
	switch {
	case dx > cx:
		return PortEast
	case dx < cx:
		return PortWest
	case dy > cy:
		return PortNorth
	case dy < cy:
		return PortSouth
	default:
		return PortLocal
	}
}

// Distance returns the hop count between two nodes.
func (m Mesh) Distance(a, b int) int {
	ax, ay := m.XY(a)
	bx, by := m.XY(b)
	return abs(ax-bx) + abs(ay-by)
}

// AvgDistance returns the mean hop distance under uniform traffic with
// self-addressed packets excluded: E[|Δx|+|Δy|] · N/(N−1), where
// E[|Δ|] = (k²−1)/(3k) per dimension.
func (m Mesh) AvgDistance() float64 {
	k := float64(m.K)
	n := k * k
	perDim := (k*k - 1) / (3 * k)
	return 2 * perDim * n / (n - 1)
}

// UniformCapacity returns the network capacity per node, in flits per
// cycle, for uniform random traffic on a k×k mesh: the bisection of k
// channels per direction carries half the traffic of half the nodes, so
// λ·k²/4 ≤ k, i.e. capacity = 4/k flits/node/cycle (0.5 for the paper's
// 8×8 mesh). Offered load in the experiments is expressed as a fraction
// of this capacity.
func (m Mesh) UniformCapacity() float64 { return 4 / float64(m.K) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
