package queue

import (
	"testing"
	"testing/quick"

	"routersim/internal/flit"
)

func mkFlit(seq int) flit.Flit {
	return flit.Flit{Seq: seq, Kind: flit.Body}
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(4)
	for i := 0; i < 4; i++ {
		if err := q.Push(mkFlit(i)); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		f, ok := q.Pop()
		if !ok || f.Seq != i {
			t.Fatalf("pop %d: got %v ok=%v", i, f.Seq, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("pop from empty succeeded")
	}
}

func TestFIFOFull(t *testing.T) {
	q := NewFIFO(2)
	q.Push(mkFlit(0))
	q.Push(mkFlit(1))
	if err := q.Push(mkFlit(2)); err != ErrFull {
		t.Fatalf("expected ErrFull, got %v", err)
	}
	if !q.Full() || q.Len() != 2 {
		t.Fatal("full state wrong")
	}
}

func TestFIFOWraparound(t *testing.T) {
	q := NewFIFO(3)
	seq := 0
	// Interleave pushes and pops to exercise ring wrap.
	for round := 0; round < 50; round++ {
		for q.Len() < q.Cap() {
			if err := q.Push(mkFlit(seq)); err != nil {
				t.Fatal(err)
			}
			seq++
		}
		f, _ := q.Pop()
		g, _ := q.Pop()
		if g.Seq != f.Seq+1 {
			t.Fatalf("order broken across wrap: %d then %d", f.Seq, g.Seq)
		}
	}
}

func TestFIFOPeek(t *testing.T) {
	q := NewFIFO(2)
	if q.Peek() != nil {
		t.Fatal("peek on empty should be nil")
	}
	q.Push(mkFlit(7))
	p := q.Peek()
	if p == nil || p.Seq != 7 {
		t.Fatalf("peek = %+v, want seq 7", p)
	}
	if q.Len() != 1 {
		t.Fatal("peek must not consume")
	}
	// Peek returns a pointer into the buffer: mutation is visible (used
	// by the router for in-place guard updates).
	p.Seq = 9
	f, _ := q.Pop()
	if f.Seq != 9 {
		t.Fatal("peek pointer not aliased to storage")
	}
}

func TestFIFOPropertyFIFOOrder(t *testing.T) {
	prop := func(ops []bool, capRaw uint8) bool {
		capacity := 1 + int(capRaw%8)
		q := NewFIFO(capacity)
		next, expect := 0, 0
		for _, push := range ops {
			if push {
				if q.Full() {
					continue
				}
				if err := q.Push(mkFlit(next)); err != nil {
					return false
				}
				next++
			} else {
				if q.Empty() {
					continue
				}
				f, ok := q.Pop()
				if !ok || f.Seq != expect {
					return false
				}
				expect++
			}
			if q.Len() != next-expect {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNewFIFOValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 must panic")
		}
	}()
	NewFIFO(0)
}
