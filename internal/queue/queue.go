// Package queue implements the fixed-capacity flit FIFOs used as router
// input buffers. Capacity is enforced by credit-based flow control; an
// attempted push into a full queue indicates a credit-accounting bug and
// is reported as an error so the simulator can fail loudly.
package queue

import (
	"errors"

	"routersim/internal/flit"
)

// ErrFull is returned by Push when the FIFO has no free slot; under
// correct credit flow control this never happens.
var ErrFull = errors.New("queue: push into full flit FIFO (credit accounting violated)")

// FIFO is a fixed-capacity ring buffer of flits. The ring is sized to a
// power of two so head/tail wrap with a mask instead of a modulo; the
// logical capacity (credit accounting) stays exactly what was asked for.
type FIFO struct {
	buf  []flit.Flit
	mask int
	cap  int
	head int
	n    int
}

// NewFIFO returns a FIFO holding at most capacity flits.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic("queue: FIFO capacity must be at least 1")
	}
	ring := 1
	for ring < capacity {
		ring <<= 1
	}
	return &FIFO{buf: make([]flit.Flit, ring), mask: ring - 1, cap: capacity}
}

// Cap returns the FIFO capacity in flits.
func (q *FIFO) Cap() int { return q.cap }

// Len returns the number of buffered flits.
func (q *FIFO) Len() int { return q.n }

// Empty reports whether no flits are buffered.
func (q *FIFO) Empty() bool { return q.n == 0 }

// Full reports whether every slot is occupied.
func (q *FIFO) Full() bool { return q.n == q.cap }

// Push appends a flit; it returns ErrFull if no slot is free.
func (q *FIFO) Push(f flit.Flit) error {
	if q.n == q.cap {
		return ErrFull
	}
	q.buf[(q.head+q.n)&q.mask] = f
	q.n++
	return nil
}

// Peek returns a pointer to the head-of-queue flit without removing it.
// The pointer is invalidated by the next Push or Pop. It returns nil if
// the FIFO is empty.
func (q *FIFO) Peek() *flit.Flit {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

// Pop removes and returns the head-of-queue flit. The boolean is false
// if the FIFO was empty.
func (q *FIFO) Pop() (flit.Flit, bool) {
	if q.n == 0 {
		return flit.Flit{}, false
	}
	f := q.buf[q.head]
	q.buf[q.head] = flit.Flit{}
	q.head = (q.head + 1) & q.mask
	q.n--
	return f, true
}
