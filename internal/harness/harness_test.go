package harness

import (
	"strings"
	"testing"
)

func tinyOptions() Options {
	return Options{Seed: 1, Protocol: Protocol{Warmup: 300, Packets: 150}}
}

func TestMatrixExpandOrderAndSize(t *testing.T) {
	m := Matrix{
		Routers:  []string{"wormhole", "spec-vc"},
		Patterns: []string{"uniform", "transpose"},
		Loads:    []float64{0.1, 0.2, 0.3},
	}
	scs := m.Expand()
	if len(scs) != m.Size() || len(scs) != 12 {
		t.Fatalf("expanded %d scenarios, Size()=%d, want 12", len(scs), m.Size())
	}
	// Loads are the innermost axis, routers the outermost.
	if scs[0].Load != 0.1 || scs[1].Load != 0.2 || scs[2].Load != 0.3 {
		t.Errorf("loads not innermost: %+v", scs[:3])
	}
	if scs[0].Router != "wormhole" || scs[11].Router != "spec-vc" {
		t.Errorf("routers not outermost: first %+v last %+v", scs[0], scs[11])
	}
	if scs[0].Pattern != "uniform" || scs[3].Pattern != "transpose" {
		t.Errorf("pattern axis misordered: %+v %+v", scs[0], scs[3])
	}
	// Defaults fill the unspecified axes.
	if scs[0].K != 8 || scs[0].Topology != "mesh" || scs[0].PacketSize != 5 {
		t.Errorf("defaults not applied: %+v", scs[0])
	}
}

// TestExpandCanonicalizesWormholeVCs: the VCs axis does not apply to
// non-VC router kinds; expansion must pin them to 1 VC (so labels and
// serialized results state the configuration that actually runs) and
// collapse the duplicates this creates.
func TestExpandCanonicalizesWormholeVCs(t *testing.T) {
	m := Matrix{
		Routers: []string{"wormhole", "vc"},
		VCs:     []int{2, 4},
		Loads:   []float64{0.1},
	}
	scs := m.Expand()
	// wormhole×{2,4} collapses to one vcs=1 job; vc keeps both.
	if len(scs) != 3 || m.Size() != 3 {
		t.Fatalf("expanded %d scenarios, want 3: %+v", len(scs), scs)
	}
	if scs[0].Router != "wormhole" || scs[0].VCs != 1 {
		t.Errorf("wormhole not canonicalized to 1 VC: %+v", scs[0])
	}
	if scs[1].VCs != 2 || scs[2].VCs != 4 {
		t.Errorf("vc axis lost: %+v %+v", scs[1], scs[2])
	}
}

// TestExpandCanonicalizesZeroAxisValues: a zero axis value means "the
// default" — the expanded scenario must state the value that actually
// runs, never serialize the placeholder 0.
func TestExpandCanonicalizesZeroAxisValues(t *testing.T) {
	m := Matrix{
		Ks:           []int{0},
		VCs:          []int{0},
		BufsPerVC:    []int{0},
		PacketSizes:  []int{0},
		CreditDelays: []int{0},
		Loads:        []float64{0.1},
	}
	scs := m.Expand()
	if len(scs) != 1 {
		t.Fatalf("expanded %d scenarios, want 1", len(scs))
	}
	sc := scs[0]
	if sc.K != 8 || sc.VCs != 2 || sc.BufPerVC != 4 || sc.PacketSize != 5 || sc.CreditDelay != 1 {
		t.Errorf("zero axis values not canonicalized to the running defaults: %+v", sc)
	}
}

// TestSimConfigRejectsNonpositiveResources: negative axis values are
// errors, not silent substitutions.
func TestSimConfigRejectsNonpositiveResources(t *testing.T) {
	bad := []Scenario{
		{Router: "vc", VCs: -1, Load: 0.1},
		{Router: "vc", BufPerVC: -4, Load: 0.1},
		{Router: "vc", PacketSize: -5, Load: 0.1},
		{Router: "vc", K: 1, Load: 0.1},
	}
	for i, sc := range bad {
		if _, err := sc.SimConfig(1, Protocol{Warmup: 1, Packets: 1}); err == nil {
			t.Errorf("case %d: invalid scenario accepted: %+v", i, sc)
		}
	}
}

// TestRunScenarioStrict: an explicit single scenario is validated
// strictly — the matrix pin must not silently rewrite it.
func TestRunScenarioStrict(t *testing.T) {
	if _, err := RunScenario(Scenario{Router: "wormhole", VCs: 4, Load: 0.1}, tinyOptions()); err == nil {
		t.Error("RunScenario should reject wormhole with 4 VCs")
	}
	r, err := RunScenario(Scenario{Router: "spec-vc", K: 4, Load: 0.1}, tinyOptions())
	if err != nil || r.Error != "" {
		t.Fatalf("valid scenario failed: %v %q", err, r.Error)
	}
	if r.Scenario.VCs != 2 || r.Scenario.BufPerVC != 4 {
		t.Errorf("result scenario not canonicalized: %+v", r.Scenario)
	}
}

// TestCurveRejectsDuplicateLoads: duplicate loads would be collapsed by
// matrix dedup, silently shortening the curve.
func TestCurveRejectsDuplicateLoads(t *testing.T) {
	sc := Scenario{Router: "spec-vc", K: 4}
	if _, err := Curve(sc, []float64{0.1, 0.1}, tinyOptions()); err == nil {
		t.Error("duplicate loads should be rejected")
	}
}

// TestSimConfigRejectsWormholeVCs: a hand-built scenario must not run
// a different configuration than it states.
func TestSimConfigRejectsWormholeVCs(t *testing.T) {
	sc := Scenario{Router: "wormhole", VCs: 4, BufPerVC: 8, Load: 0.1}
	if _, err := sc.SimConfig(1, Protocol{Warmup: 1, Packets: 1}); err == nil {
		t.Error("wormhole with 4 VCs should be rejected")
	}
}

func TestMatrixValidate(t *testing.T) {
	good := Matrix{Routers: []string{"vc"}, Patterns: []string{"bit-reversal"}, Ks: []int{4}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
	cases := []Matrix{
		{Routers: []string{"nonsense"}},
		{Topologies: []string{"klein-bottle"}},
		{Topologies: []string{"hypercube"}, Ks: []int{6}}, // 6 nodes: not a power of two
		{Patterns: []string{"nonsense"}},
		{Patterns: []string{"bit-reversal"}, Ks: []int{6}},             // 36 nodes: not a power of two
		{Topologies: []string{"torus"}, Routers: []string{"wormhole"}}, // torus needs VCs
		{Topologies: []string{"ring:8"}, Routers: []string{"wormhole"}},
		{Topologies: []string{"torus"}, VCs: []int{3}}, // dateline classes need even VCs
		{Loads: []float64{-0.5}},
	}
	for i, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid matrix validated: %+v", i, m)
		}
	}
}

func TestRunRecordsPerJobErrors(t *testing.T) {
	// One good pattern and one that cannot exist on a 6×6 network; the
	// bad job must fail alone without sinking the run.
	m := Matrix{
		Ks:       []int{6},
		Patterns: []string{"uniform", "bit-reversal"},
		Loads:    []float64{0.1},
	}
	results, err := Run(m, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	if results[0].Error != "" || results[0].Result == nil {
		t.Errorf("good job failed: %+v", results[0])
	}
	if results[1].Error == "" || results[1].Result != nil {
		t.Errorf("bad job succeeded: %+v", results[1])
	}
}

func TestRunEmptyMatrix(t *testing.T) {
	if _, err := Run(Matrix{Loads: []float64{}, Routers: []string{}}.Normalize(), tinyOptions()); err != nil {
		t.Errorf("normalized empty matrix should run defaults: %v", err)
	}
}

func TestPerJobSeedsDiffer(t *testing.T) {
	m := Matrix{Loads: []float64{0.1, 0.15, 0.2}}
	results, err := Run(m, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Seed == results[1].Seed || results[1].Seed == results[2].Seed {
		t.Errorf("derived seeds collide: %d %d %d", results[0].Seed, results[1].Seed, results[2].Seed)
	}
}

// TestExpandDedupesRepeatedAxisValues: listing the same axis value
// twice must not double the jobs.
func TestExpandDedupesRepeatedAxisValues(t *testing.T) {
	m := Matrix{Loads: []float64{0.1, 0.1, 0.1}}
	if scs := m.Expand(); len(scs) != 1 {
		t.Fatalf("expanded %d scenarios from a repeated load, want 1", len(scs))
	}
}

func TestProgressAndOrderedStreaming(t *testing.T) {
	m := Matrix{Loads: []float64{0.05, 0.1, 0.15, 0.2}}
	opts := tinyOptions()
	opts.Workers = 4
	var progressed int
	var streamed []int
	opts.Progress = func(done, total int, r JobResult) {
		progressed++
		if total != 4 {
			t.Errorf("total %d, want 4", total)
		}
		if r.Wall < 0 {
			t.Errorf("negative wall time")
		}
	}
	opts.OnResult = func(r JobResult) { streamed = append(streamed, r.Index) }
	if _, err := Run(m, opts); err != nil {
		t.Fatal(err)
	}
	if progressed != 4 {
		t.Errorf("progress called %d times, want 4", progressed)
	}
	for i, idx := range streamed {
		if idx != i {
			t.Fatalf("OnResult out of order: %v", streamed)
		}
	}
	if len(streamed) != 4 {
		t.Fatalf("streamed %d results, want 4", len(streamed))
	}
}

func TestCurveMatchesScenario(t *testing.T) {
	sc := Scenario{Router: "spec-vc", Topology: "mesh", K: 4, Pattern: "uniform",
		VCs: 2, BufPerVC: 4, PacketSize: 5, CreditDelay: 1}
	pts, err := Curve(sc, []float64{0.1, 0.2}, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Load != 0.1 || pts[1].Load != 0.2 {
		t.Fatalf("curve points wrong: %+v", pts)
	}
	if pts[0].Result.Latency.Packets == 0 {
		t.Error("curve point carries no measurements")
	}
}

func TestTorusScenario(t *testing.T) {
	m := Matrix{
		Topologies: []string{"torus"},
		Routers:    []string{"spec-vc"},
		Ks:         []int{4},
		Loads:      []float64{0.1},
	}
	results, err := Run(m, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Error != "" {
		t.Fatalf("torus job failed: %s", results[0].Error)
	}
	if results[0].Result.Latency.Packets == 0 {
		t.Error("torus job measured nothing")
	}
}

// TestMultiTopologyMatrix: one matrix crossing all four topology
// families must run every job and report the delay model evaluated at
// each topology's actual port count.
func TestMultiTopologyMatrix(t *testing.T) {
	m := Matrix{
		Topologies: []string{"mesh", "torus", "ring:16", "hypercube:16", "torus:k=4,n=3"},
		Routers:    []string{"spec-vc"},
		Ks:         []int{4},
		Loads:      []float64{0.1},
	}
	results, err := Run(m, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d jobs, want 5", len(results))
	}
	// Canonicalization factors sizes out of the spec strings.
	wantPorts := map[string]int{
		"mesh": 5, "torus": 5, "ring": 3, "hypercube": 5, "torus:n=3": 7,
	}
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("%s failed: %s", r.Scenario.Label(), r.Error)
		}
		if r.Result.Latency.Packets == 0 {
			t.Errorf("%s measured nothing", r.Scenario.Label())
		}
		if r.Model == nil {
			t.Fatalf("%s carries no delay model", r.Scenario.Label())
		}
		if want := wantPorts[r.Scenario.Topology]; r.Model.Ports != want {
			t.Errorf("%s: model ports %d, want %d", r.Scenario.Label(), r.Model.Ports, want)
		}
		if r.Model.Stages < 1 {
			t.Errorf("%s: model stages %d", r.Scenario.Label(), r.Model.Stages)
		}
	}
}

// TestPinnedTopologySizeCanonicalizesK: a spec that states its own size
// must override the K axis (and collapse duplicates across K values).
func TestPinnedTopologySizeCanonicalizesK(t *testing.T) {
	m := Matrix{
		Topologies: []string{"hypercube:64"},
		Ks:         []int{4, 8},
		Loads:      []float64{0.1},
	}
	scs := m.Expand()
	if len(scs) != 1 {
		t.Fatalf("pinned-size spec expanded to %d jobs across the K axis, want 1", len(scs))
	}
	if scs[0].K != 64 || scs[0].Topology != "hypercube" {
		t.Errorf("pinned size not factored into K: %+v", scs[0])
	}
	if got := scs[0].Label(); strings.Contains(got, "hypercube:6464") {
		t.Errorf("label duplicates the pinned size: %q", got)
	}
}

// TestEquivalentSpecsDeduplicate: every spelling of the same network —
// bare spec + K axis, pinned node count, pinned dimension — must
// canonicalize to one scenario and run once.
func TestEquivalentSpecsDeduplicate(t *testing.T) {
	m := Matrix{
		Topologies: []string{"hypercube", "hypercube:16", "hypercube:n=4"},
		Ks:         []int{16},
		Loads:      []float64{0.1},
	}
	scs := m.Expand()
	if len(scs) != 1 {
		t.Fatalf("equivalent spec spellings expanded to %d jobs, want 1: %+v", len(scs), scs)
	}
	if scs[0].Topology != "hypercube" || scs[0].K != 16 {
		t.Errorf("canonical scenario wrong: %+v", scs[0])
	}
}

// TestDelayModelPerKind: the delay model describes the three paper
// routers but not the single-cycle baselines, and its depth matches the
// paper's pipelines at the mesh point (WH 3 / VC 4 / specVC 3 with the
// deterministic R→p allocator).
func TestDelayModelPerKind(t *testing.T) {
	wantStages := map[string]int{"wormhole": 3, "vc": 4, "spec-vc": 3}
	for kind, want := range wantStages {
		sc := Scenario{Router: kind, Load: 0.1}
		m := sc.DelayModel()
		if m == nil {
			t.Fatalf("%s: no delay model", kind)
		}
		if m.Ports != 5 || m.Stages != want {
			t.Errorf("%s: model p=%d stages=%d, want p=5 stages=%d", kind, m.Ports, m.Stages, want)
		}
	}
	if m := (Scenario{Router: "wormhole-1cycle", Load: 0.1}).DelayModel(); m != nil {
		t.Errorf("single-cycle kind carries a delay model: %+v", m)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty result set should serialize as []: %q", b.String())
	}
}

func TestWriteCSVShape(t *testing.T) {
	m := Matrix{Loads: []float64{0.1, 0.2}}
	results, err := Run(m, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != CSVHeader {
		t.Errorf("header mismatch: %q", lines[0])
	}
	wantCols := len(strings.Split(CSVHeader, ","))
	for _, l := range lines[1:] {
		if got := len(strings.Split(l, ",")); got != wantCols {
			t.Errorf("row has %d columns, want %d: %q", got, wantCols, l)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"a,b":        `"a,b"`,
		`say "hi"`:   `"say ""hi"""`,
		"line\nfeed": "\"line\nfeed\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}
