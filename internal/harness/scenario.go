// Package harness is a deterministic, sharded experiment engine over
// the simulator: it expands a declarative scenario matrix (router ×
// topology × traffic pattern × VCs × buffering × load) into jobs, runs
// them on a bounded worker pool with per-job derived RNG seeds, and
// serializes the results as JSON or CSV. A matrix run with the same
// seed produces byte-identical output regardless of the worker count —
// the property every scaling layer above this one relies on.
package harness

import (
	"fmt"
	"strings"

	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/sim"
	"routersim/internal/topology"
	"routersim/internal/trace"
	"routersim/internal/traffic"
)

// Scenario is one fully-specified simulation job: a single point of the
// matrix. All fields are plain values so a Scenario round-trips through
// JSON and CSV unchanged.
type Scenario struct {
	// Router is the microarchitecture name (router.ParseKind).
	Router string `json:"router"`
	// Topology is a topology spec (topology.New): "mesh", "torus",
	// "ring", "hypercube", optionally parameterized — "mesh:k=8",
	// "torus:k=4,n=3", "hypercube:64", "ring:16". A spec that pins its
	// own size overrides the K axis (and canonicalization records the
	// pinned size in K).
	Topology string `json:"topology"`
	// K is the network radix for mesh/torus specs, and the node count
	// for ring/hypercube specs that don't state their own size.
	K int `json:"k"`
	// Pattern is the traffic pattern spec (traffic.New).
	Pattern string `json:"pattern"`
	// VCs is the virtual channel count per port (ignored by wormhole
	// kinds, which always have 1).
	VCs int `json:"vcs"`
	// BufPerVC is the flit buffers per VC (per port for wormhole).
	BufPerVC int `json:"buf_per_vc"`
	// PacketSize is the packet length in flits.
	PacketSize int `json:"packet_size"`
	// CreditDelay is the credit propagation delay in cycles.
	CreditDelay int `json:"credit_delay"`
	// StepWorkers selects the network's deterministic parallel stepper
	// (0 or 1 = serial engine; > 1 = that many stepper workers). It is
	// an execution axis: results are byte-identical for every value.
	StepWorkers int `json:"step_workers"`
	// Shards selects the network's lookahead-sharded engine (0 or 1 =
	// single-range engines; > 1 = that many shards stepping windows
	// concurrently). Like StepWorkers it is an execution axis: results
	// are byte-identical for every value, and the two compose.
	Shards int `json:"shards"`
	// Source is the injection-process spec (traffic.ParseSource): empty
	// or "const" is the paper's constant-rate source; "bernoulli",
	// "mmpp:on=X,off=Y", and "batch:size=N" are live arrival processes;
	// "trace:file=PATH" replays a recorded workload (the trace dictates
	// the injection rate, so Load is pinned to 0).
	Source string `json:"source,omitempty"`
	// Sizes is the per-packet size-distribution spec (traffic.ParseSizes);
	// empty means every packet is exactly PacketSize flits.
	Sizes string `json:"sizes,omitempty"`
	// Overrides is the per-router heterogeneity spec
	// (network.ParseOverrides): ';'-separated SEL:k=v,... groups, e.g.
	// "0:vcs=4,buf=8;3-5:delay=2". Empty means a uniform network.
	Overrides string `json:"overrides,omitempty"`
	// Routing is the routing-policy spec (network.ParseRouting): empty
	// or "dor" is deterministic dimension-order routing;
	// "adaptive:minimal" is minimal-adaptive routing over escape VCs.
	Routing string `json:"routing,omitempty"`
	// Faults is the fault-injection spec (network.ParseFaults):
	// ';'-separated events like "link:3-7@cycle=1000", "router:12@cycle=0",
	// "rand:links=2,seed=9@cycle=500". Empty means no faults.
	Faults string `json:"faults,omitempty"`
	// Load is the offered load as a fraction of capacity.
	Load float64 `json:"load"`
}

// Matrix is a declarative scenario matrix: the cross product of every
// axis. Empty axes take the paper's defaults (see Normalize). Expansion
// order is fixed — routers outermost, loads innermost — so job indices,
// and therefore derived seeds and serialized output, are deterministic.
type Matrix struct {
	Routers      []string  `json:"routers"`
	Topologies   []string  `json:"topologies"`
	Ks           []int     `json:"ks"`
	Patterns     []string  `json:"patterns"`
	VCs          []int     `json:"vcs"`
	BufsPerVC    []int     `json:"bufs_per_vc"`
	PacketSizes  []int     `json:"packet_sizes"`
	CreditDelays []int     `json:"credit_delays"`
	StepWorkers  []int     `json:"step_workers"`
	Shards       []int     `json:"shards,omitempty"`
	Sources      []string  `json:"sources,omitempty"`
	Sizes        []string  `json:"sizes,omitempty"`
	Overrides    []string  `json:"overrides,omitempty"`
	Routings     []string  `json:"routings,omitempty"`
	Faults       []string  `json:"faults,omitempty"`
	Loads        []float64 `json:"loads"`
}

// Normalize fills empty axes with the paper's evaluation defaults:
// speculative VC router, 8×8 mesh, uniform traffic, 2 VCs × 4 buffers,
// 5-flit packets, 1-cycle credits, 20% load.
func (m Matrix) Normalize() Matrix {
	if len(m.Routers) == 0 {
		m.Routers = []string{router.SpeculativeVC.String()}
	}
	if len(m.Topologies) == 0 {
		m.Topologies = []string{"mesh"}
	}
	if len(m.Ks) == 0 {
		m.Ks = []int{8}
	}
	if len(m.Patterns) == 0 {
		m.Patterns = []string{"uniform"}
	}
	if len(m.VCs) == 0 {
		m.VCs = []int{2}
	}
	if len(m.BufsPerVC) == 0 {
		m.BufsPerVC = []int{4}
	}
	if len(m.PacketSizes) == 0 {
		m.PacketSizes = []int{5}
	}
	if len(m.CreditDelays) == 0 {
		m.CreditDelays = []int{1}
	}
	if len(m.StepWorkers) == 0 {
		m.StepWorkers = []int{0}
	}
	if len(m.Shards) == 0 {
		m.Shards = []int{0}
	}
	if len(m.Sources) == 0 {
		m.Sources = []string{""}
	}
	if len(m.Sizes) == 0 {
		m.Sizes = []string{""}
	}
	if len(m.Overrides) == 0 {
		m.Overrides = []string{""}
	}
	if len(m.Routings) == 0 {
		m.Routings = []string{""}
	}
	if len(m.Faults) == 0 {
		m.Faults = []string{""}
	}
	if len(m.Loads) == 0 {
		m.Loads = []float64{0.2}
	}
	return m
}

// Size returns the number of jobs the matrix expands to (after
// canonicalization and deduplication).
func (m Matrix) Size() int { return len(m.Expand()) }

// Expand enumerates every scenario of the (normalized) matrix in the
// fixed axis order. Scenarios are canonicalized — a non-VC router kind
// always has VCs = 1, whatever the VCs axis says, so labels and
// serialized results never misstate the configuration that ran — and
// exact duplicates produced by canonicalization (e.g. a wormhole
// router crossed with several VC counts) appear once.
func (m Matrix) Expand() []Scenario {
	m = m.Normalize()
	// One odometer digit per axis, routers outermost, loads innermost —
	// the same fixed expansion order the nested loops always had, so job
	// indices, derived seeds, and serialized output are unchanged.
	axes := []int{
		len(m.Routers), len(m.Topologies), len(m.Ks), len(m.Patterns),
		len(m.VCs), len(m.BufsPerVC), len(m.PacketSizes), len(m.CreditDelays),
		len(m.StepWorkers), len(m.Shards), len(m.Sources), len(m.Sizes),
		len(m.Overrides), len(m.Routings), len(m.Faults), len(m.Loads),
	}
	total := 1
	for _, n := range axes {
		total *= n
	}
	var out []Scenario
	seen := make(map[Scenario]bool)
	idx := make([]int, len(axes))
	for j := 0; j < total; j++ {
		sc := Scenario{
			Router:      m.Routers[idx[0]],
			Topology:    m.Topologies[idx[1]],
			K:           m.Ks[idx[2]],
			Pattern:     m.Patterns[idx[3]],
			VCs:         m.VCs[idx[4]],
			BufPerVC:    m.BufsPerVC[idx[5]],
			PacketSize:  m.PacketSizes[idx[6]],
			CreditDelay: m.CreditDelays[idx[7]],
			StepWorkers: m.StepWorkers[idx[8]],
			Shards:      m.Shards[idx[9]],
			Source:      m.Sources[idx[10]],
			Sizes:       m.Sizes[idx[11]],
			Overrides:   m.Overrides[idx[12]],
			Routing:     m.Routings[idx[13]],
			Faults:      m.Faults[idx[14]],
			Load:        m.Loads[idx[15]],
		}
		sc = sc.canonical()
		// The VCs axis does not apply to non-VC kinds: pin to 1 so the
		// label is truthful (a hand-built Scenario skips this and is
		// rejected by SimConfig instead).
		if kind, ok := router.ParseKind(sc.Router); ok && !kind.UsesVCs() {
			sc.VCs = 1
		}
		if !seen[sc] {
			seen[sc] = true
			out = append(out, sc)
		}
		for a := len(idx) - 1; a >= 0; a-- {
			if idx[a]++; idx[a] < axes[a] {
				break
			}
			idx[a] = 0
		}
	}
	return out
}

// Validate expands the matrix and checks that every scenario lowers to
// a valid simulation configuration, so configuration errors surface
// before any job runs.
func (m Matrix) Validate() error {
	for i, sc := range m.Expand() {
		if _, err := sc.SimConfig(1, Protocol{Warmup: 1, Packets: 1}); err != nil {
			return fmt.Errorf("harness: job %d (%s): %w", i, sc.Label(), err)
		}
	}
	return nil
}

// canonical resolves every zero-valued field to the default that will
// actually run (the paper's configuration, or the router kind's own
// defaults). Expansion emits only canonical scenarios so labels and
// serialized results always state the configuration that ran. Negative
// values are left for SimConfig to reject.
func (s Scenario) canonical() Scenario {
	if s.Topology == "" {
		s.Topology = "mesh"
	}
	if s.K == 0 {
		s.K = 8
	}
	// Factor any stated size out of the topology spec: the canonical
	// shape ("torus:n=3") goes back into Topology and a pinned size
	// ("hypercube:64", "torus:k=4,n=3") overrides the K axis — so
	// equivalent spellings of one network ("hypercube:16" at any K,
	// "hypercube:n=4", "hypercube" at K=16) deduplicate to one job and
	// labels state the size that runs. Parse errors are left for
	// SimConfig to report.
	if spec, err := topology.Parse(s.Topology); err == nil {
		shape, pinned := spec.Canonical()
		s.Topology = shape
		if pinned != 0 {
			s.K = pinned
		}
	}
	if s.Pattern == "" {
		s.Pattern = "uniform"
	}
	if s.PacketSize == 0 {
		s.PacketSize = 5
	}
	if s.CreditDelay == 0 {
		s.CreditDelay = 1
	}
	if kind, ok := router.ParseKind(s.Router); ok {
		rc := router.DefaultConfig(kind)
		if s.VCs == 0 {
			s.VCs = rc.VCs
		}
		if s.BufPerVC == 0 {
			s.BufPerVC = rc.BufPerVC
		}
	}
	// Workload specs canonicalize to their one spelling ("mmpp:off=60,
	// on=20" → "mmpp:on=20,off=60"), the paper's constant-rate source to
	// the empty string, and a trace pins the load axis to 0 — the trace
	// dictates its own injection rate, so a load sweep collapses to one
	// job per trace. Parse errors are left for SimConfig to report.
	if spec, err := traffic.ParseSource(s.Source); err == nil {
		if spec.Kind == "const" {
			s.Source = ""
		} else {
			s.Source = spec.String()
		}
		if spec.Kind == "trace" {
			s.Load = 0
		}
	}
	if s.Sizes != "" {
		if sizer, err := traffic.ParseSizes(s.Sizes); err == nil {
			s.Sizes = sizer.Name()
		}
	}
	// Routing and fault specs canonicalize to their one spelling ("dor"
	// → "", "adaptive" → "adaptive:minimal", link endpoints low-high).
	// Parse errors are left for SimConfig to report.
	if canon, err := network.CanonicalRouting(s.Routing); err == nil {
		s.Routing = canon
	}
	if canon, err := network.CanonicalFaults(s.Faults); err == nil {
		s.Faults = canon
	}
	return s
}

// Matrix returns the one-element matrix containing exactly this
// scenario — the bridge from single-run callers (netsim, Curve) to the
// matrix engine, keeping the axis list in one place.
func (s Scenario) Matrix() Matrix {
	return Matrix{
		Routers:      []string{s.Router},
		Topologies:   []string{s.Topology},
		Ks:           []int{s.K},
		Patterns:     []string{s.Pattern},
		VCs:          []int{s.VCs},
		BufsPerVC:    []int{s.BufPerVC},
		PacketSizes:  []int{s.PacketSize},
		CreditDelays: []int{s.CreditDelay},
		StepWorkers:  []int{s.StepWorkers},
		Shards:       []int{s.Shards},
		Sources:      []string{s.Source},
		Sizes:        []string{s.Sizes},
		Overrides:    []string{s.Overrides},
		Routings:     []string{s.Routing},
		Faults:       []string{s.Faults},
		Loads:        []float64{s.Load},
	}
}

// Label returns a compact human-readable scenario identifier for
// progress lines and error messages.
func (s Scenario) Label() string {
	stepper := ""
	if s.StepWorkers > 1 {
		stepper = fmt.Sprintf("/par%d", s.StepWorkers)
	}
	if s.Shards > 1 {
		stepper += fmt.Sprintf("/sh%d", s.Shards)
	}
	// Canonical specs never pin their own size (canonical() factors it
	// into K), but a hand-built scenario might; only size-unpinned specs
	// get the K axis appended, so every label states the size exactly
	// once (e.g. "mesh:n=3,k=4" at k=4 vs k=8).
	topo := s.Topology
	if spec, err := topology.Parse(topo); err != nil || spec.PinnedK() == 0 {
		if strings.Contains(topo, ":") {
			topo = fmt.Sprintf("%s,k=%d", topo, s.K)
		} else {
			topo = fmt.Sprintf("%s%d", topo, s.K)
		}
	}
	extra := ""
	if s.Source != "" {
		extra += "/" + s.Source
	}
	if s.Sizes != "" {
		extra += "/" + s.Sizes
	}
	if s.Overrides != "" {
		extra += "/hetero[" + s.Overrides + "]"
	}
	if s.Routing != "" {
		extra += "/" + s.Routing
	}
	if s.Faults != "" {
		extra += "/faults[" + s.Faults + "]"
	}
	return fmt.Sprintf("%s/%s/%s/%dvcs×%dbuf%s%s/load=%.2f",
		s.Router, topo, s.Pattern, s.VCs, s.BufPerVC, stepper, extra, s.Load)
}

// SimConfig lowers the scenario to a runnable simulation configuration
// with the given RNG seed and measurement protocol. Zero-valued fields
// take their canonical defaults; a stated value the simulation cannot
// honor exactly (wormhole with >1 VC, nonpositive resources) is an
// error rather than a silent substitution.
func (s Scenario) SimConfig(seed uint64, pr Protocol) (sim.Config, error) {
	s = s.canonical()
	kind, ok := router.ParseKind(s.Router)
	if !ok {
		return sim.Config{}, fmt.Errorf("unknown router kind %q", s.Router)
	}
	if s.VCs > 1 && !kind.UsesVCs() {
		// canonical pins matrix-expanded scenarios to 1 VC; a
		// hand-built Scenario must not run a different configuration
		// than it states (the pre-harness facade made this a hard
		// error too).
		return sim.Config{}, fmt.Errorf("%v routers have exactly 1 VC, got %d", kind, s.VCs)
	}
	if s.VCs < 1 || s.BufPerVC < 1 || s.PacketSize < 1 || s.CreditDelay < 1 {
		return sim.Config{}, fmt.Errorf("nonpositive VC, buffer, packet size, or credit delay")
	}
	if s.StepWorkers < 0 {
		return sim.Config{}, fmt.Errorf("negative step worker count %d", s.StepWorkers)
	}
	if s.Shards < 0 {
		return sim.Config{}, fmt.Errorf("negative shard count %d", s.Shards)
	}
	if s.K < 2 {
		return sim.Config{}, fmt.Errorf("network radix %d; need >= 2", s.K)
	}
	rc := router.DefaultConfig(kind)
	rc.VCs = s.VCs
	rc.BufPerVC = s.BufPerVC
	topo, err := topology.New(s.Topology, s.K)
	if err != nil {
		return sim.Config{}, err
	}
	pat, err := traffic.New(s.Pattern, topo.Nodes())
	if err != nil {
		return sim.Config{}, err
	}
	if s.Load < 0 {
		return sim.Config{}, fmt.Errorf("negative load %v", s.Load)
	}
	srcSpec, err := traffic.ParseSource(s.Source)
	if err != nil {
		return sim.Config{}, err
	}
	var sizer traffic.Sizer
	if s.Sizes != "" {
		if sizer, err = traffic.ParseSizes(s.Sizes); err != nil {
			return sim.Config{}, err
		}
	}
	overrides, err := network.ParseOverrides(s.Overrides, topo.Nodes())
	if err != nil {
		return sim.Config{}, err
	}
	ncfg := network.Config{
		K:           s.K,
		Router:      rc,
		PacketSize:  s.PacketSize,
		Pattern:     pat,
		CreditDelay: s.CreditDelay,
		StepWorkers: s.StepWorkers,
		Shards:      s.Shards,
		Source:      srcSpec,
		Sizes:       sizer,
		Overrides:   overrides,
		Routing:     s.Routing,
		Faults:      s.Faults,
		Topo:        topo,
		Seed:        seed,
	}
	if srcSpec.Kind == "trace" {
		// A trace dictates destinations, sizes, and the injection rate;
		// the load axis does not apply (canonical pinned Load to 0, and
		// network.Config.Normalize derives the rate from the trace).
		if ncfg.Replay, err = trace.ReadFile(srcSpec.File); err != nil {
			return sim.Config{}, err
		}
	} else {
		ncfg.InjectionRate = sim.RateForLoad(s.Load, ncfg)
	}
	cfg := sim.Config{
		Net:            ncfg,
		WarmupCycles:   pr.Warmup,
		MeasurePackets: pr.Packets,
		ExactLatency:   pr.Exact,
		CITarget:       pr.CITarget,
	}
	if err := cfg.Net.Normalize(); err != nil {
		return sim.Config{}, err
	}
	return cfg, nil
}
