package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON serializes results as one JSON array, in job-index order.
// The payload is deterministic: same matrix + same seed → identical
// bytes, regardless of the worker count that produced the results.
func WriteJSON(w io.Writer, results []JobResult) error {
	js := NewJSONStream(w)
	for _, r := range results {
		if err := js.Write(r); err != nil {
			return err
		}
	}
	return js.Close()
}

// JSONStream incrementally writes a JSON array of results, one element
// per Write. Feed it from Options.OnResult to stream a large matrix
// without holding the serialized form in memory.
type JSONStream struct {
	w     io.Writer
	wrote bool
	err   error
}

// NewJSONStream returns a stream writing to w.
func NewJSONStream(w io.Writer) *JSONStream { return &JSONStream{w: w} }

// Write appends one result to the array.
func (s *JSONStream) Write(r JobResult) error {
	if s.err != nil {
		return s.err
	}
	sep := "[\n "
	if s.wrote {
		sep = ",\n "
	}
	var b []byte
	if b, s.err = json.Marshal(r); s.err != nil {
		return s.err
	}
	if _, s.err = io.WriteString(s.w, sep); s.err != nil {
		return s.err
	}
	if _, s.err = s.w.Write(b); s.err != nil {
		return s.err
	}
	s.wrote = true
	return nil
}

// Close terminates the array. The stream is not reusable afterwards.
func (s *JSONStream) Close() error {
	if s.err != nil {
		return s.err
	}
	if !s.wrote {
		_, s.err = io.WriteString(s.w, "[]\n")
		return s.err
	}
	_, s.err = io.WriteString(s.w, "\n]\n")
	return s.err
}

// CSVHeader is the column set of WriteCSV, one row per job. censored
// counts tagged packets the cycle cap cut off (nonzero ⇒ the latency
// columns are lower bounds, not measurements); mean_ci and accepted_ci
// are 95% batch-means confidence half-widths.
const CSVHeader = "index,router,topology,k,pattern,vcs,buf_per_vc,packet_size,credit_delay,step_workers,shards,source,sizes,overrides,routing,faults,load,seed," +
	"ports,model_stages,offered,accepted,accepted_ci,mean_latency,mean_ci,p50,p95,max_latency,packets,censored,unroutable,dropped_flits,cycles,saturated,error"

// WriteCSV serializes results as CSV in job-index order, with the same
// determinism guarantee as WriteJSON.
func WriteCSV(w io.Writer, results []JobResult) error {
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return err
	}
	for _, r := range results {
		if err := writeCSVRow(w, r); err != nil {
			return err
		}
	}
	return nil
}

func writeCSVRow(w io.Writer, r JobResult) error {
	sc := r.Scenario
	var offered, accepted, acceptedCI, mean, meanCI float64
	var p50, p95, max, cycles, unroutable, droppedFlits int64
	var packets, censored int
	saturated := false
	if r.Result != nil {
		offered = r.Result.OfferedLoad
		accepted = r.Result.AcceptedLoad
		acceptedCI = r.Result.AcceptedCI
		mean = r.Result.Latency.MeanLatency
		meanCI = r.Result.Latency.MeanCI
		p50, p95, max = r.Result.Latency.P50, r.Result.Latency.P95, r.Result.Latency.MaxLatency
		packets = r.Result.Latency.Packets
		censored = r.Result.Latency.Censored
		unroutable = r.Result.Unroutable
		droppedFlits = r.Result.DroppedFlits
		cycles = r.Result.Cycles
		saturated = r.Result.Saturated
	}
	// Delay-model columns: topology port count and EQ-1 pipeline depth
	// (0 for kinds the model does not describe, and for failed jobs).
	var ports, modelStages int
	if r.Model != nil {
		ports, modelStages = r.Model.Ports, r.Model.Stages
	}
	_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%d,%d,%d,%s,%s,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%t,%s\n",
		r.Index, csvEscape(sc.Router), csvEscape(sc.Topology), sc.K, csvEscape(sc.Pattern), sc.VCs, sc.BufPerVC,
		sc.PacketSize, sc.CreditDelay, sc.StepWorkers, sc.Shards,
		csvEscape(sc.Source), csvEscape(sc.Sizes), csvEscape(sc.Overrides), csvEscape(sc.Routing), csvEscape(sc.Faults), fmtFloat(sc.Load), r.Seed,
		ports, modelStages,
		fmtFloat(offered), fmtFloat(accepted), fmtFloat(acceptedCI), fmtFloat(mean), fmtFloat(meanCI),
		p50, p95, max, packets, censored, unroutable, droppedFlits, cycles, saturated, csvEscape(r.Error))
	return err
}

// fmtFloat renders floats exactly as encoding/json does, so CSV and
// JSON agree byte-for-byte on every value (the thresholds for exponent
// form differ between json and strconv's 'g' format, so this must go
// through the json encoder itself).
func fmtFloat(f float64) string {
	b, err := json.Marshal(f)
	if err != nil {
		// Only non-finite values can fail; the simulator never emits
		// them, but render something greppable rather than panic.
		return "NaN"
	}
	return string(b)
}

// csvEscape quotes a field if it contains CSV metacharacters.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
