package harness

import (
	"fmt"
	"regexp"
	"runtime/debug"
	"strings"
	"time"

	"routersim/internal/rng"
)

// JobError is the structured record of a recovered job panic: one bad
// scenario (or an engine invariant tripping under the auditor) must
// not take down a thousand-job sweep, so the panic becomes a result
// row the consumer can triage.
type JobError struct {
	// Scenario is the failing job's human-readable label.
	Scenario string `json:"scenario"`
	// Message is the panic value, formatted.
	Message string `json:"message"`
	// Stack is the recovering goroutine's stack, normalized for
	// determinism: the goroutine header and hex addresses are masked so
	// identical failures serialize identically across runs and worker
	// counts.
	Stack string `json:"stack"`
	// Attempts is how many times the job ran before this failure was
	// recorded (1 = failed on the first try with retries disabled).
	Attempts int `json:"attempts"`
}

// retryBackoff returns the capped exponential delay before retry
// attempt n (n=1 is the first retry).
func retryBackoff(n int) time.Duration {
	d := 10 * time.Millisecond << (n - 1)
	if d > time.Second {
		d = time.Second
	}
	return d
}

// executeJob runs one job with panic isolation and bounded retry: a
// recover() turns any panic into a structured JobError result, and
// panicking jobs are retried up to the Options.Retries budget with a
// capped backoff (transient failures — OOM-killed cgroup neighbors,
// flaky disk — deserve a second chance; deterministic panics fail
// identically and land in the result row).
func executeJob(i int, sc Scenario, opts Options) JobResult {
	run := opts.runFn
	if run == nil {
		run = runJob
	}
	retries := opts.Retries
	switch {
	case retries == 0:
		retries = 1
	case retries < 0:
		retries = 0
	}
	for attempt := 1; ; attempt++ {
		jr, panicked := recoverJob(run, i, sc, opts, attempt)
		if !panicked || attempt > retries {
			return jr
		}
		time.Sleep(retryBackoff(attempt))
	}
}

// recoverJob is one isolated attempt: the deferred recover converts a
// panic anywhere under the job into a JobError-carrying result.
func recoverJob(run func(int, Scenario, Options) JobResult, i int, sc Scenario, opts Options, attempt int) (jr JobResult, panicked bool) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		panicked = true
		msg := fmt.Sprint(r)
		jr = JobResult{
			Index:    i,
			Scenario: sc,
			Seed:     rng.Derive(opts.Seed, uint64(i)),
			Error:    "panic: " + msg,
			Failure: &JobError{
				Scenario: sc.Label(),
				Message:  msg,
				Stack:    normalizeStack(debug.Stack()),
				Attempts: attempt,
			},
		}
	}()
	return run(i, sc, opts), false
}

var (
	hexAddr     = regexp.MustCompile(`0x[0-9a-f]+`)
	goroutine   = regexp.MustCompile(`(?m)^goroutine \d+ \[[^\]]*\]:\n`)
	goroutineID = regexp.MustCompile(`goroutine \d+`)
)

// normalizeStack strips the run-dependent parts of a stack trace — the
// goroutine header, every hex address, and goroutine IDs in "created
// by" trailers — so the same failure produces the same serialized
// bytes on every run and worker count.
func normalizeStack(stack []byte) string {
	s := goroutine.ReplaceAllString(string(stack), "")
	s = hexAddr.ReplaceAllString(s, "0x…")
	s = goroutineID.ReplaceAllString(s, "goroutine …")
	return strings.TrimRight(s, "\n")
}
