package harness

import (
	"routersim/internal/core"
	"routersim/internal/router"
	"routersim/internal/topology"
)

// DelayModel summarizes the paper's delay model evaluated at a
// scenario's actual parameter point: the topology's router port count p
// and the scenario's VC count v, at the paper's channel width (32 bits)
// and clock (20 τ4), with the R→p routing range of a deterministic
// router (footnote 14). Stages is the per-hop pipeline depth EQ 1
// prescribes — so a sweep over topologies reports delay-model-consistent
// pipeline depths, closing the loop between the cycle-accurate
// simulation and the analytic model.
type DelayModel struct {
	// Ports is the router port count p (5 for the paper's mesh).
	Ports int `json:"ports"`
	// VCs is the virtual-channel count v the model was evaluated at.
	VCs int `json:"vcs"`
	// Stages is the pipeline depth prescribed by EQ 1.
	Stages int `json:"stages"`
}

// flowControlOf maps a simulated router kind onto the delay model's
// flow-control method. The single-cycle kinds are the unit-latency
// abstraction the paper argues against — the delay model does not
// describe them, so they have no mapping.
func flowControlOf(kind router.Kind) (core.FlowControl, bool) {
	switch kind {
	case router.Wormhole:
		return core.Wormhole, true
	case router.VirtualChannel:
		return core.VirtualChannel, true
	case router.SpeculativeVC:
		return core.SpeculativeVC, true
	default:
		return 0, false
	}
}

// DelayModel evaluates the paper's delay model at the scenario's
// topology and router parameters. It returns nil for single-cycle
// router kinds (which the model does not describe) and for scenarios
// whose topology or router spec does not resolve.
func (s Scenario) DelayModel() *DelayModel {
	s = s.canonical()
	kind, ok := router.ParseKind(s.Router)
	if !ok {
		return nil
	}
	fc, ok := flowControlOf(kind)
	if !ok {
		return nil
	}
	topo, err := topology.New(s.Topology, s.K)
	if err != nil || s.VCs < 1 {
		return nil
	}
	params := core.Params{
		P:         topo.Ports(),
		V:         s.VCs,
		W:         32,
		ClockTau4: core.DefaultClockTau4,
		Range:     core.RangePC,
	}
	// Only the depth is retained, so a local Packer's aliased result is
	// fine — no clone, no per-stage allocations.
	var pk core.Packer
	pl, err := pk.Design(fc, params, core.DefaultSpecOptions())
	if err != nil {
		return nil
	}
	return &DelayModel{Ports: params.P, VCs: params.V, Stages: pl.Depth()}
}
