package harness

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"routersim/internal/sim"
)

// satOptions is the scaled-down protocol the saturation-search tests
// share; large enough that the knee estimate is stable per seed.
func satOptions() Options {
	return Options{Seed: 2, Protocol: Protocol{Warmup: 2000, Packets: 1500}}
}

// TestFindSaturationAgreesWithGrid is the engine's acceptance check on
// the paper's 8×8 mesh: the adaptive bisection must land within one
// grid step of the fixed-grid knee while simulating fewer total cycles
// than the grid sweep it replaces.
func TestFindSaturationAgreesWithGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	sc := Scenario{Router: "spec-vc", Topology: "mesh", K: 8}
	opts := satOptions()
	const step = 0.05

	var loads []float64
	for l := step; l < 1.0-1e-9; l += step {
		loads = append(loads, math.Round(l*100)/100)
	}
	pts, err := Curve(sc, loads, opts)
	if err != nil {
		t.Fatal(err)
	}
	gridKnee := sim.SaturationLoad(pts, 140)
	var gridCycles int64
	for _, p := range pts {
		gridCycles += p.Result.Cycles
	}

	sr, err := FindSaturation(sc, opts, SearchOptions{Step: step})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Error != "" {
		t.Fatal(sr.Error)
	}
	if math.Abs(sr.Load-gridKnee) > step+1e-9 {
		t.Errorf("bisection knee %.2f vs grid knee %.2f: want within one %.2f step", sr.Load, gridKnee, step)
	}
	if sr.Cycles >= gridCycles {
		t.Errorf("bisection simulated %d cycles, grid %d: the search must be cheaper", sr.Cycles, gridCycles)
	}
	if len(sr.Probes) >= len(loads) {
		t.Errorf("bisection ran %d probes, grid %d points: want fewer", len(sr.Probes), len(loads))
	}
	if sr.Upper-sr.Load > step+1e-9 {
		t.Errorf("final bracket (%.3f, %.3f] wider than one step", sr.Load, sr.Upper)
	}
	if sr.Load > 0 && sr.Throughput <= 0 {
		t.Errorf("stable knee %.2f carries no measured throughput", sr.Load)
	}
	t.Logf("grid knee %.2f (%d cycles, %d runs) vs bisection %.2f (%d cycles, %d probes)",
		gridKnee, gridCycles, len(loads), sr.Load, sr.Cycles, len(sr.Probes))
}

// TestFindSaturationDeterministic: same scenario + seed ⇒ identical
// probes and knee, any time.
func TestFindSaturationDeterministic(t *testing.T) {
	sc := Scenario{Router: "spec-vc", K: 4}
	so := SearchOptions{Step: 0.1, MaxProbes: 4}
	a, err := FindSaturation(sc, satOptions(), so)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FindSaturation(sc, satOptions(), so)
	if err != nil {
		t.Fatal(err)
	}
	if a.Load != b.Load || a.Cycles != b.Cycles || len(a.Probes) != len(b.Probes) {
		t.Fatalf("search diverged across runs: %+v vs %+v", a, b)
	}
	for i := range a.Probes {
		if a.Probes[i].Load != b.Probes[i].Load || a.Probes[i].Saturated != b.Probes[i].Saturated {
			t.Errorf("probe %d diverged", i)
		}
	}
}

// TestFindSaturationBracket: the reported knee is always inside the
// bracket, on the step grid, and the probe count respects MaxProbes.
func TestFindSaturationBracket(t *testing.T) {
	sc := Scenario{Router: "spec-vc", K: 4}
	so := SearchOptions{Lo: 0.1, Hi: 0.9, Step: 0.1, MaxProbes: 3}
	sr, err := FindSaturation(sc, satOptions(), so)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Load < so.Lo-1e-9 || sr.Upper > so.Hi+1e-9 || sr.Load >= sr.Upper {
		t.Errorf("bracket [%v, %v] escaped [%v, %v]", sr.Load, sr.Upper, so.Lo, so.Hi)
	}
	if len(sr.Probes) > so.MaxProbes {
		t.Errorf("%d probes exceed MaxProbes %d", len(sr.Probes), so.MaxProbes)
	}
}

func TestFindSaturationRejectsBadInput(t *testing.T) {
	opts := satOptions()
	if _, err := FindSaturation(Scenario{Router: "nonsense"}, opts, SearchOptions{}); err == nil {
		t.Error("unknown router should fail up front")
	}
	if _, err := FindSaturation(Scenario{Router: "spec-vc", K: 4}, opts, SearchOptions{Lo: 0.9, Hi: 0.2}); err == nil {
		t.Error("inverted bracket should be rejected")
	}
	if _, err := FindSaturations(Matrix{Routers: []string{"spec-vc"}}, opts, SearchOptions{Lo: -1}); err == nil {
		t.Error("negative Lo should be rejected")
	}
}

// TestFindSaturationsMatrix: the matrix form searches every scenario,
// records per-scenario errors without sinking the run, and is
// deterministic across worker counts.
func TestFindSaturationsMatrix(t *testing.T) {
	m := Matrix{
		Routers: []string{"spec-vc"},
		Ks:      []int{6},
		// bit-reversal cannot exist on a 36-node network: job 1 must
		// fail alone.
		Patterns: []string{"uniform", "bit-reversal"},
		Loads:    []float64{0.3, 0.7}, // ignored: the search owns the load axis
	}
	so := SearchOptions{Step: 0.2, MaxProbes: 3}
	run := func(workers int) []SaturationResult {
		opts := satOptions()
		opts.Workers = workers
		results, err := FindSaturations(m, opts, so)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	results := run(1)
	if len(results) != 2 {
		t.Fatalf("%d results, want 2 (loads axis must collapse)", len(results))
	}
	if results[0].Error != "" {
		t.Errorf("uniform search failed: %s", results[0].Error)
	}
	if len(results[0].Probes) == 0 || results[0].Cycles == 0 {
		t.Errorf("uniform search ran no probes: %+v", results[0])
	}
	if results[1].Error == "" {
		t.Error("bit-reversal on 36 nodes should record an error")
	}
	if results[0].Seed == results[1].Seed {
		t.Error("per-scenario seeds must differ")
	}

	var a, b strings.Builder
	if err := WriteSaturationCSV(&a, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteSaturationCSV(&b, run(4)); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("saturation CSV diverged across worker counts")
	}
	if !strings.HasPrefix(a.String(), SaturationCSVHeader+"\n") {
		t.Fatalf("CSV header wrong:\n%s", a.String())
	}
	rows, err := csv.NewReader(strings.NewReader(a.String())).ReadAll()
	if err != nil {
		t.Fatalf("CSV does not parse: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d CSV rows, want header + 2:\n%s", len(rows), a.String())
	}
	wantCols := len(strings.Split(SaturationCSVHeader, ","))
	for _, row := range rows {
		if len(row) != wantCols {
			t.Errorf("row has %d columns, want %d: %q", len(row), wantCols, row)
		}
	}

	var js strings.Builder
	if err := WriteSaturationJSON(&js, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"saturation_load"`) {
		t.Errorf("JSON missing saturation_load: %s", js.String())
	}
	var empty strings.Builder
	if err := WriteSaturationJSON(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(empty.String()) != "[]" {
		t.Errorf("empty result set should serialize as []: %q", empty.String())
	}
}

// TestProtocolModesLower: Exact and CITarget must reach the simulation
// config, and a CI-capped sub-saturation run may legitimately shorten
// its sample — but must never be marked saturated for it.
func TestProtocolModesLower(t *testing.T) {
	sc := Scenario{Router: "spec-vc", K: 4, Load: 0.2}
	cfg, err := sc.SimConfig(1, Protocol{Warmup: 100, Packets: 100, Exact: true, CITarget: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.ExactLatency || cfg.CITarget != 0.05 {
		t.Fatalf("protocol modes not lowered: %+v", cfg)
	}

	opts := Options{Seed: 1, Protocol: Protocol{Warmup: 2000, Packets: 4000, CITarget: 0.05}}
	r, err := RunScenario(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Error != "" {
		t.Fatal(r.Error)
	}
	res := r.Result
	if res.Saturated {
		t.Errorf("CI-terminated run marked saturated: %+v", res)
	}
	if res.Latency.Censored != 0 {
		t.Errorf("clean early stop reports %d censored packets", res.Latency.Censored)
	}
	if res.Tagged > 4000 || res.Tagged < 1 {
		t.Errorf("tagged sample %d outside (0, 4000]", res.Tagged)
	}
	if res.Tagged == 4000 {
		t.Logf("note: CI target not reached before the full sample at this seed")
	}
}
