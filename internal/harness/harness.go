package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"routersim/internal/pool"
	"routersim/internal/rng"
	"routersim/internal/sim"
	"routersim/internal/trace"
)

// Protocol is the measurement protocol applied to every job of a run.
type Protocol struct {
	// Warmup cycles before measurement begins (0 = paper's 10,000).
	Warmup int64 `json:"warmup"`
	// Packets in the tagged sample (0 = paper's 100,000).
	Packets int `json:"packets"`
	// Exact stores every latency sample per job for exact percentiles —
	// the bit-identical paper-figure reproduction mode. The default
	// streams samples into a log-binned histogram with O(1) memory per
	// job (exact mean/max, ≤ 1.6% percentile error).
	Exact bool `json:"exact,omitempty"`
	// CITarget, when > 0, ends each job's tagged sample early once the
	// relative 95% batch-means CI half-width of mean latency reaches it
	// (e.g. 0.02 for ±2%) — a speed win on long sub-saturation runs.
	CITarget float64 `json:"ci_target,omitempty"`
}

// QuickProtocol is a scaled-down protocol for smoke runs and tests.
func QuickProtocol() Protocol { return Protocol{Warmup: 2000, Packets: 1500} }

// PaperProtocol is the paper's full measurement protocol (Section 5).
func PaperProtocol() Protocol { return Protocol{Warmup: 10000, Packets: 100000} }

// Options parameterize one matrix run.
type Options struct {
	// Workers bounds the worker pool (0 = GOMAXPROCS). The worker count
	// affects only wall time, never results.
	Workers int
	// Seed is the base seed; every job derives its own independent seed
	// from it and the job index.
	Seed uint64
	// Protocol is the per-job measurement protocol.
	Protocol Protocol
	// Progress, when non-nil, is called after each job completes, in
	// completion order, with the running done count. It is called from
	// worker goroutines but never concurrently.
	Progress func(done, total int, r JobResult)
	// OnResult, when non-nil, streams results in job-index order as soon
	// as every earlier job has finished. It is never called concurrently.
	OnResult func(r JobResult)
	// Audit, when > 0, enables the network engine's invariant auditor
	// in every job at that cycle interval (network.Config.Audit). It is
	// an execution option: results are byte-identical with auditing on
	// or off, so audited jobs share checkpoint entries with unaudited
	// ones.
	Audit int
	// Retries bounds how many times a panicking job is retried before
	// its failure is recorded as a structured JobError result: 0 means
	// the default single retry, a negative value disables retries, and
	// a positive value allows that many. Retries back off with a capped
	// exponential delay. Jobs that return an error (rather than panic)
	// are never retried — config errors are deterministic.
	Retries int

	// runFn replaces the job executor (tests only: deterministic panic
	// and retry injection). nil runs the real simulation.
	runFn func(i int, sc Scenario, opts Options) JobResult
}

// JobResult is the outcome of one scenario job. Wall is excluded from
// serialization: it is the only nondeterministic field, and the
// serialized payload must be byte-identical across runs and worker
// counts.
type JobResult struct {
	// Index is the job's position in the expanded matrix.
	Index int `json:"index"`
	// Scenario is the job's point of the matrix.
	Scenario Scenario `json:"scenario"`
	// Seed is the job's derived RNG seed.
	Seed uint64 `json:"seed"`
	// Result holds the simulation outcome (nil on error).
	Result *sim.Result `json:"result,omitempty"`
	// Model is the paper's delay model evaluated at the scenario's
	// topology port count and VC count (nil for router kinds the model
	// does not describe, i.e. the single-cycle baselines).
	Model *DelayModel `json:"delay_model,omitempty"`
	// Error is the job's failure, if any. A recovered panic reports as
	// "panic: <message>" here (so every error-display path works
	// unchanged) with the structured details in Failure.
	Error string `json:"error,omitempty"`
	// Failure carries the structured record of a recovered panic:
	// message, normalized stack, scenario label, attempt count. nil for
	// successful jobs and plain (non-panic) errors.
	Failure *JobError `json:"failure,omitempty"`
	// Wall is the job's wall-clock run time (progress reporting only).
	Wall time.Duration `json:"-"`
}

// Run expands the matrix and executes every job on a bounded worker
// pool. Results are returned in job-index order. Job failures are
// recorded per job, not returned: a bad scenario must not discard the
// rest of a large matrix. Run itself fails only on an empty matrix.
func Run(m Matrix, opts Options) ([]JobResult, error) {
	scenarios := m.Expand()
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("harness: empty matrix")
	}
	results := make([]JobResult, len(scenarios))

	var (
		mu     sync.Mutex
		done   int
		ready  = make([]bool, len(scenarios))
		cursor int
	)
	pool.Run(len(scenarios), opts.Workers, func(i int) {
		results[i] = executeJob(i, scenarios[i], opts)
		if opts.Progress == nil && opts.OnResult == nil {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		if opts.Progress != nil {
			opts.Progress(done, len(scenarios), results[i])
		}
		ready[i] = true
		for opts.OnResult != nil && cursor < len(ready) && ready[cursor] {
			opts.OnResult(results[cursor])
			cursor++
		}
	})
	return results, nil
}

// RunScenario runs a single scenario through the matrix engine and
// returns its one result. Unlike matrix expansion — which canonicalizes
// inapplicable axis values, e.g. a VC count crossed with a wormhole
// router — an explicitly stated scenario is validated strictly: a
// configuration the simulation cannot honor as stated is an error.
func RunScenario(sc Scenario, opts Options) (JobResult, error) {
	if _, err := sc.SimConfig(1, Protocol{Warmup: 1, Packets: 1}); err != nil {
		return JobResult{}, fmt.Errorf("harness: %s: %w", sc.Label(), err)
	}
	results, err := Run(sc.Matrix(), opts)
	if err != nil {
		return JobResult{}, err
	}
	return results[0], nil
}

// RunScenarioRecorded runs a single scenario with a workload recorder
// attached and writes the captured trace to path (trace.WriteFile:
// ".jsonl"/".json" extensions select the JSONL encoding, anything else
// the binary one) — the record half of the trace record/replay
// workflow. The capture includes every injection of the run, warm-up
// and drain included, so replaying the file via a "trace:file=PATH"
// source reproduces the run's packet workload event for event. The job
// uses the same derived seed as RunScenario, so the recorded run IS the
// plain run, plus the capture. Recording a scenario that itself replays
// a trace is an error.
func RunScenarioRecorded(sc Scenario, opts Options, path string) (JobResult, error) {
	seed := rng.Derive(opts.Seed, 0)
	cfg, err := sc.SimConfig(seed, opts.Protocol)
	if err != nil {
		return JobResult{}, fmt.Errorf("harness: %s: %w", sc.Label(), err)
	}
	if cfg.Net.Replay != nil {
		return JobResult{}, fmt.Errorf("harness: %s: recording a trace-replay scenario would copy the input trace; record a live workload instead", sc.Label())
	}
	sc = sc.canonical()
	jr := JobResult{Index: 0, Scenario: sc, Seed: seed}
	rec := trace.NewRecorder(cfg.Net.Topo.Nodes())
	cfg.Record = rec
	start := time.Now()
	res, err := sim.NewRunner(cfg).Run()
	jr.Wall = time.Since(start)
	if err != nil {
		return JobResult{}, fmt.Errorf("harness: %s: %w", sc.Label(), err)
	}
	jr.Result = &res
	jr.Model = sc.DelayModel()
	if err := trace.WriteFile(path, rec.Trace()); err != nil {
		return JobResult{}, fmt.Errorf("harness: %s: %w", sc.Label(), err)
	}
	return jr, nil
}

// runJob executes one scenario with its derived seed.
func runJob(i int, sc Scenario, opts Options) (jr JobResult) {
	seed := rng.Derive(opts.Seed, uint64(i))
	jr = JobResult{Index: i, Scenario: sc, Seed: seed}
	start := time.Now()
	defer func() { jr.Wall = time.Since(start) }()

	cfg, err := sc.SimConfig(seed, opts.Protocol)
	if err != nil {
		jr.Error = err.Error()
		return jr
	}
	cfg.Net.Audit = opts.Audit
	res, err := sim.NewRunner(cfg).Run()
	if err != nil {
		jr.Error = err.Error()
		return jr
	}
	jr.Result = &res
	jr.Model = sc.DelayModel()
	return jr
}

// ProgressPrinter returns a Progress callback that writes one line per
// completed job to w, including the per-job wall time. Wall time goes to
// the progress stream, never the result payload, to keep payloads
// deterministic.
func ProgressPrinter(w io.Writer) func(done, total int, r JobResult) {
	return func(done, total int, r JobResult) {
		status := "ok"
		if r.Error != "" {
			status = "error: " + r.Error
		} else if r.Result.Saturated {
			status = "saturated"
		}
		fmt.Fprintf(w, "[%d/%d] %s (%.2fs) %s\n",
			done, total, r.Scenario.Label(), r.Wall.Seconds(), status)
	}
}
