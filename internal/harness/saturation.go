package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"routersim/internal/pool"
	"routersim/internal/rng"
	"routersim/internal/sim"
)

// SearchOptions parameterize the adaptive saturation search.
type SearchOptions struct {
	// Lo and Hi bracket the search in offered-load fractions of
	// capacity. Lo is assumed stable and Hi saturated without probing
	// (0 and 1 when zero: a network cannot beat its bisection
	// capacity). The reported knee is always inside [Lo, Hi].
	Lo, Hi float64
	// Step is the load resolution the search refines to (0 = 0.01).
	// The bisection needs ~log2((Hi-Lo)/Step) probes — 7 at defaults —
	// against a fixed grid's (Hi-Lo)/Step runs for the same resolution.
	Step float64
	// LatencyCap is the mean latency treated as saturated even when
	// the run completes (0 = the paper's 140-cycle plot clip).
	LatencyCap float64
	// MaxProbes bounds the number of simulations (0 = 24, far above
	// what any bracket at a sane Step needs; a safety stop, not a
	// tuning knob).
	MaxProbes int
}

// normalized fills the zero-value defaults.
func (so SearchOptions) normalized() SearchOptions {
	if so.Hi == 0 {
		so.Hi = 1
	}
	if so.Step == 0 {
		so.Step = 0.01
	}
	if so.LatencyCap == 0 {
		so.LatencyCap = 140
	}
	if so.MaxProbes == 0 {
		so.MaxProbes = 24
	}
	return so
}

// Probe is one simulation of a saturation search.
type Probe struct {
	// Load is the probed offered load (fraction of capacity).
	Load float64 `json:"load"`
	// Saturated is the probe's verdict under the search predicate.
	Saturated bool `json:"saturated"`
	// Result is the full simulation outcome.
	Result *sim.Result `json:"result,omitempty"`
}

// SaturationResult is the outcome of one adaptive saturation search.
type SaturationResult struct {
	// Index is the scenario's position in the expanded matrix (0 for a
	// single-scenario search).
	Index int `json:"index"`
	// Scenario is the searched scenario; its Load field is ignored (the
	// search owns the load axis).
	Scenario Scenario `json:"scenario"`
	// Seed is the search's base seed; each probe derives its own.
	Seed uint64 `json:"seed"`
	// Load is the saturation load: the highest probed load that
	// measured stable (0 if the first probe above Lo already
	// saturated). The true knee lies in (Load, Upper].
	Load float64 `json:"saturation_load"`
	// Upper is the lowest probed load found saturated (Hi if every
	// probe was stable). Load and Upper differ by at most Step when
	// the search ran to completion.
	Upper float64 `json:"upper_bound"`
	// Throughput is the accepted load (fraction of capacity) measured
	// at the saturation load — the knee's delivered throughput (0 if no
	// stable probe exists).
	Throughput float64 `json:"throughput"`
	// Probes are the simulations the bisection ran, in probe order.
	Probes []Probe `json:"probes"`
	// Cycles is the total simulated cycles across all probes — the
	// search's cost, directly comparable to a grid sweep's total.
	Cycles int64 `json:"cycles"`
	// Error is the search's failure, if any (per scenario, like
	// JobResult.Error: one bad scenario must not discard a matrix).
	Error string `json:"error,omitempty"`
}

// FindSaturation locates a scenario's saturation point by adaptive
// bisection on offered load, replacing fixed load grids for
// knee-finding. The invariant is the standard bracket: Lo is stable, Hi
// is saturated; each probe runs one simulation at the bracket midpoint
// (snapped to the Step grid) under the run's saturation predicate
// (sim.IsSaturated: cycle-cap censoring, throughput shortfall, or the
// latency cap) and halves the bracket. Each probe derives its own seed
// from opts.Seed, so the search is deterministic end to end.
func FindSaturation(sc Scenario, opts Options, so SearchOptions) (SaturationResult, error) {
	if _, err := sc.SimConfig(1, Protocol{Warmup: 1, Packets: 1}); err != nil {
		return SaturationResult{}, fmt.Errorf("harness: %s: %w", sc.Label(), err)
	}
	so = so.normalized()
	if so.Lo < 0 || so.Hi <= so.Lo || so.Step <= 0 {
		return SaturationResult{}, fmt.Errorf("harness: bad search bracket [%v, %v] step %v", so.Lo, so.Hi, so.Step)
	}
	return findSaturation(0, sc, opts, so), nil
}

// findSaturation is the per-scenario search core; scenario validity was
// checked by the caller, so failures land in SaturationResult.Error.
func findSaturation(index int, sc Scenario, opts Options, so SearchOptions) SaturationResult {
	sr := SaturationResult{
		Index:    index,
		Scenario: sc.canonical(),
		Seed:     opts.Seed,
		Load:     so.Lo,
		Upper:    so.Hi,
	}
	lo, hi := so.Lo, so.Hi
	for probe := 0; hi-lo > so.Step+1e-9 && probe < so.MaxProbes; probe++ {
		mid := snapLoad((lo+hi)/2, so.Step)
		if mid <= lo || mid >= hi {
			break // bracket tighter than the Step grid can split
		}
		job := sc
		job.Load = mid
		seed := rng.Derive(opts.Seed, uint64(probe))
		cfg, err := job.SimConfig(seed, opts.Protocol)
		if err != nil {
			sr.Error = err.Error()
			return sr
		}
		cfg.Net.Audit = opts.Audit
		res, err := sim.NewRunner(cfg).Run()
		if err != nil {
			sr.Error = err.Error()
			return sr
		}
		sr.Cycles += res.Cycles
		saturated := sim.IsSaturated(res, so.LatencyCap)
		sr.Probes = append(sr.Probes, Probe{Load: mid, Saturated: saturated, Result: &res})
		if saturated {
			hi = mid
		} else {
			lo = mid
			sr.Throughput = res.AcceptedLoad
		}
	}
	sr.Load, sr.Upper = lo, hi
	return sr
}

// snapLoad rounds a load onto the Step grid (and to 4 decimals, so
// serialized probe loads stay clean like the sweep CLI's grids).
func snapLoad(load, step float64) float64 {
	snapped := math.Round(load/step) * step
	return math.Round(snapped*10000) / 10000
}

// FindSaturations runs the adaptive saturation search for every
// scenario of the matrix (the Loads axis is ignored: the search owns
// the load axis) on a bounded worker pool. Results come back in
// scenario order; per-scenario failures are recorded, not returned, and
// every scenario derives an independent seed chain from opts.Seed —
// the same determinism contract as Run.
func FindSaturations(m Matrix, opts Options, so SearchOptions) ([]SaturationResult, error) {
	m.Loads = []float64{0} // collapse the unused axis to one placeholder
	scenarios := m.Expand()
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("harness: empty matrix")
	}
	so = so.normalized()
	if so.Lo < 0 || so.Hi <= so.Lo || so.Step <= 0 {
		return nil, fmt.Errorf("harness: bad search bracket [%v, %v] step %v", so.Lo, so.Hi, so.Step)
	}
	results := make([]SaturationResult, len(scenarios))
	pool.Run(len(scenarios), opts.Workers, func(i int) {
		scOpts := opts
		scOpts.Seed = rng.Derive(opts.Seed, uint64(i))
		results[i] = findSaturation(i, scenarios[i], scOpts, so)
	})
	return results, nil
}

// SaturationCSVHeader is the column set of WriteSaturationCSV.
const SaturationCSVHeader = "index,router,topology,k,pattern,vcs,buf_per_vc,packet_size,credit_delay,step_workers,shards,routing,faults,seed," +
	"saturation_load,upper_bound,throughput,probes,cycles,error"

// WriteSaturationCSV serializes saturation-search results as CSV, one
// row per scenario, with the same determinism guarantee as WriteCSV.
func WriteSaturationCSV(w io.Writer, results []SaturationResult) error {
	if _, err := fmt.Fprintln(w, SaturationCSVHeader); err != nil {
		return err
	}
	for _, r := range results {
		sc := r.Scenario
		_, err := fmt.Fprintf(w, "%d,%s,%s,%d,%s,%d,%d,%d,%d,%d,%d,%s,%s,%d,%s,%s,%s,%d,%d,%s\n",
			r.Index, csvEscape(sc.Router), csvEscape(sc.Topology), sc.K, csvEscape(sc.Pattern),
			sc.VCs, sc.BufPerVC, sc.PacketSize, sc.CreditDelay, sc.StepWorkers, sc.Shards,
			csvEscape(sc.Routing), csvEscape(sc.Faults), r.Seed,
			fmtFloat(r.Load), fmtFloat(r.Upper), fmtFloat(r.Throughput),
			len(r.Probes), r.Cycles, csvEscape(r.Error))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteSaturationJSON serializes saturation-search results as one JSON
// array (byte-deterministic: same matrix + seed → identical bytes).
func WriteSaturationJSON(w io.Writer, results []SaturationResult) error {
	if len(results) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	for i, r := range results {
		sep := "[\n "
		if i > 0 {
			sep = ",\n "
		}
		b, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(w, sep); err != nil {
			return err
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
