package harness

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"routersim/internal/checkpoint"
	"routersim/internal/pool"
	"routersim/internal/rng"
)

// EngineVersion tags checkpoint keys with the simulator's
// result-affecting revision. Bump it whenever a change alters any
// serialized result bit (router timing, measurement protocol, RNG
// streams, serialization schema): stored entries from the old engine
// then miss instead of resuming wrong numbers into a new sweep.
const EngineVersion = "routersim-engine-1"

// jobKey is the content address of one job's result: engine version,
// canonicalized scenario, derived seed, and measurement protocol. Two
// sweeps that expand to the same job — whatever matrix spelled it —
// share the entry; anything that could change the result changes the
// key. Execution options (worker count, audit interval, retry budget)
// are deliberately excluded: they never change result bytes.
func jobKey(sc Scenario, seed uint64, pr Protocol) [32]byte {
	scJSON, err := json.Marshal(sc.canonical())
	if err != nil {
		panic(fmt.Sprintf("harness: scenario not serializable: %v", err)) // plain-value struct; unreachable
	}
	prJSON, err := json.Marshal(pr)
	if err != nil {
		panic(fmt.Sprintf("harness: protocol not serializable: %v", err))
	}
	var seedB [8]byte
	binary.BigEndian.PutUint64(seedB[:], seed)
	return checkpoint.Key([]byte(EngineVersion), scJSON, seedB[:], prJSON)
}

// RunResumable is Run with crash-safe persistence: every successful
// job's result is written to the checkpoint store as it finishes
// (atomically — a kill mid-write leaves a temp file, never a torn
// entry), and jobs whose results are already stored are loaded instead
// of re-run. An interrupted sweep resumed against the same store
// produces byte-identical output to an uninterrupted one, at any
// worker count, because the loaded payloads ARE the bytes the original
// jobs serialized to. Failed jobs (errors and recovered panics) are
// never persisted, so a resume retries them.
//
// Corrupt store entries are quarantined by the store and count as
// misses — the job simply re-runs. The first persistence error is
// returned alongside the complete results: the sweep's numbers are
// good even when the disk is not.
func RunResumable(m Matrix, opts Options, store *checkpoint.Store) ([]JobResult, error) {
	scenarios := m.Expand()
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("harness: empty matrix")
	}
	results := make([]JobResult, len(scenarios))
	keys := make([][32]byte, len(scenarios))
	ready := make([]bool, len(scenarios))
	loaded := 0
	for i, sc := range scenarios {
		seed := rng.Derive(opts.Seed, uint64(i))
		keys[i] = jobKey(sc, seed, opts.Protocol)
		payload, ok, err := store.Get(keys[i])
		if err != nil || !ok {
			continue // miss, quarantined, or unreadable: run the job
		}
		var jr JobResult
		// Trust but verify: a decoded entry must be a successful result
		// for exactly this job, or the job re-runs.
		if json.Unmarshal(payload, &jr) != nil || jr.Error != "" || jr.Result == nil ||
			jr.Seed != seed || jr.Scenario != sc {
			continue
		}
		jr.Index = i
		results[i] = jr
		ready[i] = true
		loaded++
	}

	var pending []int
	for i := range scenarios {
		if !ready[i] {
			pending = append(pending, i)
		}
	}

	var (
		mu         sync.Mutex
		done       = loaded
		cursor     int
		persistErr error
	)
	flush := func() {
		for opts.OnResult != nil && cursor < len(ready) && ready[cursor] {
			opts.OnResult(results[cursor])
			cursor++
		}
	}
	flush() // loaded prefix streams before any job runs
	pool.Run(len(pending), opts.Workers, func(pi int) {
		i := pending[pi]
		results[i] = executeJob(i, scenarios[i], opts)
		var perr error
		if results[i].Error == "" && results[i].Result != nil {
			payload, err := json.Marshal(results[i])
			if err == nil {
				err = store.Put(keys[i], payload)
			}
			perr = err
		}
		mu.Lock()
		defer mu.Unlock()
		if perr != nil && persistErr == nil {
			persistErr = fmt.Errorf("harness: checkpoint job %d (%s): %w", i, scenarios[i].Label(), perr)
		}
		done++
		if opts.Progress != nil {
			opts.Progress(done, len(scenarios), results[i])
		}
		ready[i] = true
		flush()
	})
	return results, persistErr
}
