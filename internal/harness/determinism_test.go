package harness

import (
	"strings"
	"testing"
)

// serialize runs the matrix with the given worker count and returns the
// JSON and CSV payload bytes.
func serialize(t *testing.T, m Matrix, seed uint64, workers int) (string, string) {
	t.Helper()
	opts := Options{
		Workers:  workers,
		Seed:     seed,
		Protocol: Protocol{Warmup: 300, Packets: 150},
	}
	results, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	var js, csv strings.Builder
	if err := WriteJSON(&js, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	return js.String(), csv.String()
}

// TestDeterminismAcrossWorkerCounts is the harness's core guarantee,
// and — run under -race in CI — also certifies the worker pool: the
// same seed must produce byte-identical serialized results no matter
// how the jobs were sharded over workers.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	m := Matrix{
		Routers:  []string{"wormhole", "vc", "spec-vc"},
		Ks:       []int{4},
		Patterns: []string{"uniform", "transpose", "bit-complement"},
		Loads:    []float64{0.1, 0.3},
	}
	baseJSON, baseCSV := serialize(t, m, 42, 1)
	for _, workers := range []int{2, 4, 16} {
		js, csv := serialize(t, m, 42, workers)
		if js != baseJSON {
			t.Errorf("JSON payload diverged between 1 and %d workers", workers)
		}
		if csv != baseCSV {
			t.Errorf("CSV payload diverged between 1 and %d workers", workers)
		}
	}
}

// TestDeterminismRepeatedRuns: the same seed must reproduce the same
// bytes across repeated runs of the same process.
func TestDeterminismRepeatedRuns(t *testing.T) {
	m := Matrix{Ks: []int{4}, Loads: []float64{0.1, 0.2}}
	a, _ := serialize(t, m, 7, 0)
	b, _ := serialize(t, m, 7, 0)
	if a != b {
		t.Error("same seed diverged across runs")
	}
}

// TestStepperDeterminism certifies the parallel network stepper at the
// harness level: the same matrix run with the serial engine and with
// parallel steppers of several widths must produce byte-identical
// measurement payloads. The scenario's step_workers field necessarily
// differs, so the comparison covers the serialized *results* of each
// job. Run under -race in CI, this also certifies the stepper gang.
func TestStepperDeterminism(t *testing.T) {
	run := func(stepWorkers int) []JobResult {
		m := Matrix{
			Routers:     []string{"wormhole", "vc", "spec-vc"},
			Ks:          []int{4},
			Loads:       []float64{0.2, 0.5},
			StepWorkers: []int{stepWorkers},
		}
		results, err := Run(m, Options{Seed: 42, Protocol: Protocol{Warmup: 300, Packets: 150}})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	base := run(1)
	for _, workers := range []int{2, 4} {
		results := run(workers)
		if len(results) != len(base) {
			t.Fatalf("%d stepper workers: %d jobs vs %d serial", workers, len(results), len(base))
		}
		for i := range base {
			var b, r strings.Builder
			if err := WriteJSON(&b, []JobResult{{Result: base[i].Result, Seed: base[i].Seed}}); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&r, []JobResult{{Result: results[i].Result, Seed: results[i].Seed}}); err != nil {
				t.Fatal(err)
			}
			if b.String() != r.String() {
				t.Errorf("job %d (%s): result payload diverged between serial and %d-worker stepper",
					i, base[i].Scenario.Label(), workers)
			}
		}
	}
}

// TestSeedChangesPayload: a different seed must actually change the
// measurements (otherwise the seed is not wired through).
func TestSeedChangesPayload(t *testing.T) {
	m := Matrix{Ks: []int{4}, Loads: []float64{0.2}}
	a, _ := serialize(t, m, 1, 0)
	b, _ := serialize(t, m, 2, 0)
	if a == b {
		t.Error("different seeds produced identical payloads (suspicious)")
	}
}
