package harness

import (
	"strings"
	"testing"
)

// serialize runs the matrix with the given worker count and returns the
// JSON and CSV payload bytes.
func serialize(t *testing.T, m Matrix, seed uint64, workers int) (string, string) {
	t.Helper()
	opts := Options{
		Workers:  workers,
		Seed:     seed,
		Protocol: Protocol{Warmup: 300, Packets: 150},
	}
	results, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	var js, csv strings.Builder
	if err := WriteJSON(&js, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csv, results); err != nil {
		t.Fatal(err)
	}
	return js.String(), csv.String()
}

// TestDeterminismAcrossWorkerCounts is the harness's core guarantee,
// and — run under -race in CI — also certifies the worker pool: the
// same seed must produce byte-identical serialized results no matter
// how the jobs were sharded over workers.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	m := Matrix{
		Routers:  []string{"wormhole", "vc", "spec-vc"},
		Ks:       []int{4},
		Patterns: []string{"uniform", "transpose", "bit-complement"},
		Loads:    []float64{0.1, 0.3},
	}
	baseJSON, baseCSV := serialize(t, m, 42, 1)
	for _, workers := range []int{2, 4, 16} {
		js, csv := serialize(t, m, 42, workers)
		if js != baseJSON {
			t.Errorf("JSON payload diverged between 1 and %d workers", workers)
		}
		if csv != baseCSV {
			t.Errorf("CSV payload diverged between 1 and %d workers", workers)
		}
	}
}

// TestDeterminismRepeatedRuns: the same seed must reproduce the same
// bytes across repeated runs of the same process.
func TestDeterminismRepeatedRuns(t *testing.T) {
	m := Matrix{Ks: []int{4}, Loads: []float64{0.1, 0.2}}
	a, _ := serialize(t, m, 7, 0)
	b, _ := serialize(t, m, 7, 0)
	if a != b {
		t.Error("same seed diverged across runs")
	}
}

// TestStepperDeterminism certifies the parallel network stepper at the
// harness level: the same matrix run with the serial engine and with
// parallel steppers of several widths must produce byte-identical
// measurement payloads. The scenario's step_workers field necessarily
// differs, so the comparison covers the serialized *results* of each
// job. Run under -race in CI, this also certifies the stepper gang.
func TestStepperDeterminism(t *testing.T) {
	run := func(stepWorkers int) []JobResult {
		m := Matrix{
			Routers:     []string{"wormhole", "vc", "spec-vc"},
			Ks:          []int{4},
			Loads:       []float64{0.2, 0.5},
			StepWorkers: []int{stepWorkers},
		}
		results, err := Run(m, Options{Seed: 42, Protocol: Protocol{Warmup: 300, Packets: 150}})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	base := run(1)
	for _, workers := range []int{2, 4} {
		results := run(workers)
		if len(results) != len(base) {
			t.Fatalf("%d stepper workers: %d jobs vs %d serial", workers, len(results), len(base))
		}
		for i := range base {
			var b, r strings.Builder
			if err := WriteJSON(&b, []JobResult{{Result: base[i].Result, Seed: base[i].Seed}}); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&r, []JobResult{{Result: results[i].Result, Seed: results[i].Seed}}); err != nil {
				t.Fatal(err)
			}
			if b.String() != r.String() {
				t.Errorf("job %d (%s): result payload diverged between serial and %d-worker stepper",
					i, base[i].Scenario.Label(), workers)
			}
		}
	}
}

// TestShardDeterminism certifies the lookahead-sharded engine at the
// harness level: the same matrix run single-range and with several
// shard counts must produce byte-identical measurement payloads. The
// scenario's shards field necessarily differs, so the comparison
// covers the serialized *results* of each job. Run under -race in CI,
// this also certifies the shard gang and window barriers.
func TestShardDeterminism(t *testing.T) {
	run := func(shards int) []JobResult {
		m := Matrix{
			Routers: []string{"wormhole", "spec-vc"},
			Ks:      []int{4},
			Loads:   []float64{0.2, 0.5},
			Shards:  []int{shards},
		}
		results, err := Run(m, Options{Seed: 42, Protocol: Protocol{Warmup: 300, Packets: 150}})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	base := run(0)
	for _, shards := range []int{2, 4} {
		results := run(shards)
		if len(results) != len(base) {
			t.Fatalf("%d shards: %d jobs vs %d single-range", shards, len(results), len(base))
		}
		for i := range base {
			var b, r strings.Builder
			if err := WriteJSON(&b, []JobResult{{Result: base[i].Result, Seed: base[i].Seed}}); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&r, []JobResult{{Result: results[i].Result, Seed: results[i].Seed}}); err != nil {
				t.Fatal(err)
			}
			if b.String() != r.String() {
				t.Errorf("job %d (%s): result payload diverged between single-range and %d-shard engine",
					i, base[i].Scenario.Label(), shards)
			}
		}
	}
}

// TestReplayDeterminismAcrossWorkersAndSeeds closes the record/replay
// loop at the harness level: a workload recorded once and replayed
// through the matrix engine must serialize byte-identically across
// pool worker counts, stepper widths (the scenario matrix crosses
// serial and parallel steppers, so both appear in one payload), and —
// because a replayed workload consumes no randomness — across base
// seeds as well, once the per-job seed column is normalized out. Run
// under -race in CI, this certifies the whole replay path end to end.
func TestReplayDeterminismAcrossWorkersAndSeeds(t *testing.T) {
	path := t.TempDir() + "/recorded.trace"
	rec := Scenario{
		Router: "spec-vc", K: 4,
		Source: "mmpp:on=20,off=60",
		Sizes:  "bimodal:small=1,large=9,p=0.1",
		Load:   0.2,
	}
	if _, err := RunScenarioRecorded(rec, Options{Seed: 11, Protocol: Protocol{Warmup: 300, Packets: 150}}, path); err != nil {
		t.Fatal(err)
	}
	m := Matrix{
		Routers:     []string{"spec-vc"},
		Ks:          []int{4},
		Sources:     []string{"trace:file=" + path},
		StepWorkers: []int{0, 2},
	}
	baseJSON, baseCSV := serialize(t, m, 42, 1)
	if !strings.Contains(baseCSV, "trace:file=") {
		t.Fatalf("CSV payload does not carry the source column:\n%s", baseCSV)
	}
	for _, workers := range []int{2, 8} {
		js, csv := serialize(t, m, 42, workers)
		if js != baseJSON {
			t.Errorf("replay JSON payload diverged between 1 and %d workers", workers)
		}
		if csv != baseCSV {
			t.Errorf("replay CSV payload diverged between 1 and %d workers", workers)
		}
	}
	// A different base seed changes each job's derived seed but must not
	// change any measurement: strip the seed fields and compare.
	otherJSON, _ := serialize(t, m, 1234, 1)
	if stripSeeds(otherJSON) != stripSeeds(baseJSON) {
		t.Error("replay measurements changed with the base seed; the replayer is consuming randomness")
	}
}

// stripSeeds removes `"seed":N` fields from a JSON payload so replay
// runs under different base seeds can be compared on measurements.
func stripSeeds(js string) string {
	for {
		i := strings.Index(js, `"seed":`)
		if i < 0 {
			return js
		}
		j := i + len(`"seed":`)
		for j < len(js) && js[j] >= '0' && js[j] <= '9' {
			j++
		}
		js = js[:i] + js[j:]
	}
}

// TestSeedChangesPayload: a different seed must actually change the
// measurements (otherwise the seed is not wired through).
func TestSeedChangesPayload(t *testing.T) {
	m := Matrix{Ks: []int{4}, Loads: []float64{0.2}}
	a, _ := serialize(t, m, 1, 0)
	b, _ := serialize(t, m, 2, 0)
	if a == b {
		t.Error("different seeds produced identical payloads (suspicious)")
	}
}
