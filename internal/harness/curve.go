package harness

import (
	"fmt"

	"routersim/internal/sim"
)

// Curve runs one scenario across a load range — one latency-throughput
// curve — through the matrix engine and returns one point per load, in
// input order. Loads must be distinct (the matrix engine collapses
// exact-duplicate scenarios, which would silently shorten the curve).
// It is the harness-native replacement for sim.SweepLoads that the
// experiments package builds figures from.
func Curve(sc Scenario, loads []float64, opts Options) ([]sim.LoadPoint, error) {
	seen := make(map[float64]bool, len(loads))
	for _, l := range loads {
		if seen[l] {
			return nil, fmt.Errorf("harness: duplicate load %v in curve", l)
		}
		seen[l] = true
	}
	m := sc.Matrix()
	m.Loads = loads
	results, err := Run(m, opts)
	if err != nil {
		return nil, err
	}
	pts := make([]sim.LoadPoint, len(results))
	for i, r := range results {
		if r.Error != "" {
			return nil, fmt.Errorf("harness: %s: %s", r.Scenario.Label(), r.Error)
		}
		pts[i] = sim.LoadPoint{Load: r.Scenario.Load, Result: *r.Result}
	}
	return pts, nil
}
