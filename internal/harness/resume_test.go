package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"routersim/internal/checkpoint"
	"routersim/internal/rng"
	"routersim/internal/sim"
)

func resumeMatrix() Matrix {
	return Matrix{
		Routers: []string{"wormhole", "vc"},
		Loads:   []float64{0.1, 0.3},
	}
}

// render serializes results both ways; resume identity is a claim
// about output bytes, not in-memory structs.
func render(t *testing.T, results []JobResult) (jsonB, csvB []byte) {
	t.Helper()
	var jb, cb bytes.Buffer
	if err := WriteJSON(&jb, results); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&cb, results); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), cb.Bytes()
}

// TestResumeIdentity: an interrupted-then-resumed sweep must emit
// byte-identical JSON and CSV to an uninterrupted one, at any worker
// count — both from a cold store (everything runs) and from a store
// holding a partial prior run (only the remainder runs).
func TestResumeIdentity(t *testing.T) {
	m := resumeMatrix()
	opts := tinyOptions()
	base, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := render(t, base)

	for _, workers := range []int{1, 2, 8} {
		store, err := checkpoint.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Workers = workers
		var streamed []JobResult
		o.OnResult = func(r JobResult) { streamed = append(streamed, r) }
		results, err := RunResumable(m, o, store)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		gotJSON, gotCSV := render(t, results)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("workers=%d: cold-store JSON diverges from plain Run", workers)
		}
		if !bytes.Equal(gotCSV, wantCSV) {
			t.Fatalf("workers=%d: cold-store CSV diverges from plain Run", workers)
		}
		sj, _ := render(t, streamed)
		if !bytes.Equal(sj, wantJSON) {
			t.Fatalf("workers=%d: OnResult stream diverges from returned results", workers)
		}
		if n, err := store.Len(); err != nil || n != len(base) {
			t.Fatalf("workers=%d: store holds %d entries (err %v), want %d", workers, n, err, len(base))
		}

		// Interrupt simulation: drop some persisted entries, resume, and
		// check that only the dropped jobs re-run and the bytes still match.
		removed := removeSomeEntries(t, store.Dir(), 2)
		var ran int
		var mu sync.Mutex
		o.OnResult = nil
		o.Progress = func(done, total int, r JobResult) { mu.Lock(); ran++; mu.Unlock() }
		resumed, err := RunResumable(m, o, store)
		if err != nil {
			t.Fatalf("workers=%d resume: %v", workers, err)
		}
		if ran != removed {
			t.Errorf("workers=%d: resume ran %d jobs, want %d (the interrupted remainder)", workers, ran, removed)
		}
		gotJSON, gotCSV = render(t, resumed)
		if !bytes.Equal(gotJSON, wantJSON) || !bytes.Equal(gotCSV, wantCSV) {
			t.Fatalf("workers=%d: resumed output diverges from uninterrupted run", workers)
		}
	}
}

// removeSomeEntries deletes n checkpoint entries from dir, simulating
// a sweep killed before those jobs persisted. Returns how many it
// removed.
func removeSomeEntries(t *testing.T, dir string, n int) int {
	t.Helper()
	names := entryNames(t, dir)
	if len(names) < n {
		t.Fatalf("store has %d entries, need %d to remove", len(names), n)
	}
	for _, name := range names[:n] {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func entryNames(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".ck") {
			names = append(names, de.Name())
		}
	}
	return names
}

// TestResumeSkipsQuarantined: a corrupted store entry is quarantined,
// its job re-runs, and the output is unchanged — disk rot costs a
// re-run, never wrong numbers and never a crash.
func TestResumeSkipsQuarantined(t *testing.T) {
	m := resumeMatrix()
	opts := tinyOptions()
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunResumable(m, opts, store)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, wantCSV := render(t, base)

	names := entryNames(t, store.Dir())
	path := filepath.Join(store.Dir(), names[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var ran int
	opts.Progress = func(done, total int, r JobResult) { ran++ }
	resumed, err := RunResumable(m, opts, store)
	if err != nil {
		t.Fatal(err)
	}
	if store.Quarantined() != 1 {
		t.Errorf("Quarantined() = %d, want 1", store.Quarantined())
	}
	if ran != 1 {
		t.Errorf("resume ran %d jobs, want 1 (the quarantined one)", ran)
	}
	gotJSON, gotCSV := render(t, resumed)
	if !bytes.Equal(gotJSON, wantJSON) || !bytes.Equal(gotCSV, wantCSV) {
		t.Fatal("output after quarantine diverges from clean run")
	}
	if _, err := os.Stat(path + checkpoint.QuarantineExt); err != nil {
		t.Errorf("corrupt entry not moved aside: %v", err)
	}
}

// fakeResult builds a minimal successful JobResult the resume
// verifier accepts: correct index, canonical scenario, derived seed,
// non-nil Result.
func fakeResult(i int, sc Scenario, opts Options) JobResult {
	return JobResult{
		Index:    i,
		Scenario: sc,
		Seed:     rng.Derive(opts.Seed, uint64(i)),
		Result:   &sim.Result{Cycles: int64(1000 + i)},
	}
}

// TestPanicIsolation: one deliberately panicking job must land as a
// structured JobError row while every other job completes, and the
// failed row must not be persisted — a resume retries it.
func TestPanicIsolation(t *testing.T) {
	m := resumeMatrix()
	opts := tinyOptions()
	opts.Retries = -1
	opts.runFn = func(i int, sc Scenario, o Options) JobResult {
		if i == 1 {
			panic("synthetic job failure")
		}
		return fakeResult(i, sc, o)
	}
	store, err := checkpoint.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunResumable(m, opts, store)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if i == 1 {
			continue
		}
		if r.Error != "" || r.Result == nil {
			t.Errorf("job %d: collateral damage from job 1's panic: %+v", i, r)
		}
	}
	bad := results[1]
	if bad.Error != "panic: synthetic job failure" {
		t.Errorf("Error = %q, want panic message", bad.Error)
	}
	if bad.Failure == nil {
		t.Fatal("panicked job carries no structured Failure")
	}
	if bad.Failure.Scenario != m.Expand()[1].Label() {
		t.Errorf("Failure.Scenario = %q, want %q", bad.Failure.Scenario, m.Expand()[1].Label())
	}
	if bad.Failure.Message != "synthetic job failure" {
		t.Errorf("Failure.Message = %q", bad.Failure.Message)
	}
	if bad.Failure.Attempts != 1 {
		t.Errorf("Failure.Attempts = %d, want 1 with retries disabled", bad.Failure.Attempts)
	}
	if !strings.Contains(bad.Failure.Stack, "recover_test.go") &&
		!strings.Contains(bad.Failure.Stack, "resume_test.go") {
		t.Errorf("stack does not reach the panic site:\n%s", bad.Failure.Stack)
	}
	if regexp.MustCompile(`goroutine \d`).MatchString(bad.Failure.Stack) {
		t.Errorf("stack keeps a nondeterministic goroutine ID:\n%s", bad.Failure.Stack)
	}
	// Hex addresses are masked so identical failures serialize
	// identically across runs.
	for _, line := range strings.Split(bad.Failure.Stack, "\n") {
		if i := strings.Index(line, "0x"); i >= 0 && !strings.HasPrefix(line[i:], "0x…") {
			t.Errorf("unmasked address in stack line %q", line)
		}
	}
	if n, err := store.Len(); err != nil || n != len(results)-1 {
		t.Errorf("store holds %d entries (err %v); the failed job must not be persisted", n, err)
	}

	// The resume retries exactly the failed job — this time it succeeds.
	var reran []int
	opts.runFn = func(i int, sc Scenario, o Options) JobResult {
		reran = append(reran, i)
		return fakeResult(i, sc, o)
	}
	opts.Workers = 1
	again, err := RunResumable(m, opts, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(reran) != 1 || reran[0] != 1 {
		t.Errorf("resume re-ran jobs %v, want [1]", reran)
	}
	if again[1].Error != "" || again[1].Result == nil {
		t.Errorf("retried job still failing: %+v", again[1])
	}
}

// TestRetrySemantics exercises the retry budget through the plain Run
// path: default single retry recovers a transient panic, a negative
// budget disables retries, and a positive budget is honored exactly.
func TestRetrySemantics(t *testing.T) {
	m := Matrix{Routers: []string{"wormhole"}, Loads: []float64{0.1}}

	t.Run("default-retry-recovers-transient", func(t *testing.T) {
		attempts := 0
		opts := tinyOptions()
		opts.Workers = 1
		opts.runFn = func(i int, sc Scenario, o Options) JobResult {
			attempts++
			if attempts == 1 {
				panic("transient")
			}
			return fakeResult(i, sc, o)
		}
		results, err := Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Error != "" || results[0].Failure != nil {
			t.Errorf("transient panic not absorbed by the default retry: %+v", results[0])
		}
		if attempts != 2 {
			t.Errorf("job ran %d times, want 2", attempts)
		}
	})

	t.Run("negative-disables", func(t *testing.T) {
		attempts := 0
		opts := tinyOptions()
		opts.Workers = 1
		opts.Retries = -1
		opts.runFn = func(i int, sc Scenario, o Options) JobResult {
			attempts++
			panic("persistent")
		}
		results, err := Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if attempts != 1 {
			t.Errorf("job ran %d times with retries disabled, want 1", attempts)
		}
		if results[0].Failure == nil || results[0].Failure.Attempts != 1 {
			t.Errorf("failure row wrong: %+v", results[0].Failure)
		}
	})

	t.Run("positive-budget-exact", func(t *testing.T) {
		attempts := 0
		opts := tinyOptions()
		opts.Workers = 1
		opts.Retries = 2
		opts.runFn = func(i int, sc Scenario, o Options) JobResult {
			attempts++
			panic("persistent")
		}
		results, err := Run(m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if attempts != 3 {
			t.Errorf("job ran %d times with a 2-retry budget, want 3", attempts)
		}
		if results[0].Failure == nil || results[0].Failure.Attempts != 3 {
			t.Errorf("failure row wrong: %+v", results[0].Failure)
		}
	})

	t.Run("plain-errors-not-retried", func(t *testing.T) {
		// A scenario the simulation rejects returns an error, not a panic;
		// it must fail once, immediately, with no Failure record.
		bad := Matrix{Routers: []string{"no-such-router"}, Loads: []float64{0.1}}
		opts := tinyOptions()
		results, err := Run(bad, opts)
		if err != nil {
			t.Fatal(err)
		}
		if results[0].Error == "" || results[0].Failure != nil {
			t.Errorf("config error row wrong: %+v", results[0])
		}
	})
}
