#!/usr/bin/env bash
# scripts/bench.sh <n> [extra go-test args...]
#
# Runs the performance-tracking benchmark suite and writes BENCH_<n>.json
# (ns/op, B/op, allocs/op, and the reported paper metrics per benchmark),
# so the perf trajectory is recorded once per PR. Compare two PRs with
# benchstat on the raw output, or diff the JSON directly; see PERF.md for
# the methodology.
#
#   scripts/bench.sh 2            # writes BENCH_2.json
#   scripts/bench.sh 3 -benchtime=5s
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:?usage: scripts/bench.sh <pr-number> [extra go test args]}"
shift || true
out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Hot-path micro benchmarks and the whole-network cycle benchmark.
go test -run '^$' -benchmem -benchtime=2s "$@" \
    -bench 'BenchmarkNetworkCycle$|BenchmarkMatrixArbiterGrant$|BenchmarkSeparableSwitchAllocate$|BenchmarkVCAllocatorAllocate$|BenchmarkPipelineDesign$' \
    . | tee "$raw"

# One full figure reproduction (latency-throughput curves + paper
# metrics); a single iteration is already a complete load sweep.
go test -run '^$' -benchmem -benchtime=1x "$@" \
    -bench 'BenchmarkFigure13$' \
    . | tee -a "$raw"

awk -v pr="$n" '
/^(goos|goarch|pkg|cpu):/ {
    key = $1; sub(/:$/, "", key)
    val = $0; sub(/^[a-z]+:[ \t]*/, "", val)
    gsub(/"/, "\\\"", val)
    env[key] = val
    next
}
$1 ~ /^Benchmark/ && NF >= 4 {
    name = $1; sub(/-[0-9]+$/, "", name)
    s = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        s = s sprintf(", \"%s\": %s", $(i+1), $i)
    }
    s = s "}"
    bench[nb++] = s
}
END {
    printf "{\n  \"pr\": %s,\n  \"env\": {", pr
    split("goos goarch pkg cpu", order, " ")
    sep = ""
    for (j = 1; j <= 4; j++) {
        k = order[j]
        if (k in env) {
            printf "%s\"%s\": \"%s\"", sep, k, env[k]
            sep = ", "
        }
    }
    printf "},\n  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) {
        printf "%s%s", bench[i], (i < nb - 1 ? ",\n" : "\n")
    }
    print "  ]\n}"
}' "$raw" > "$out"

echo "wrote $out" >&2
