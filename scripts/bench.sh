#!/usr/bin/env bash
# scripts/bench.sh <n> [extra go-test args...]
#
# Runs the performance-tracking benchmark suite and writes BENCH_<n>.json
# (ns/op, B/op, allocs/op, and the reported paper metrics per benchmark),
# so the perf trajectory is recorded once per PR. Compare two PRs with
# benchstat on the raw output, or diff the JSON directly; see PERF.md for
# the methodology.
#
#   scripts/bench.sh 2            # writes BENCH_2.json
#   scripts/bench.sh 3 -benchtime=5s
set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:?usage: scripts/bench.sh <pr-number> [extra go test args]}"
shift || true
out="BENCH_${n}.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Hot-path micro benchmarks and the whole-network cycle benchmarks —
# the 8×8 40%-load inner loop, and the 1,024-router 5%-load pair that
# measures the active-set scheduler against its full-scan baseline.
# Three repetitions; the JSON records each benchmark's best run (the
# minimum is the standard noise-robust statistic for microbenchmarks —
# scheduler preemption and frequency drift only ever slow a run down).
# -timeout covers the sharded pair's steady-state warm-ups (8,000
# cycles of a 4,096-router network per measurement probe).
go test -run '^$' -benchmem -benchtime=2s -count=3 -timeout=60m "$@" \
    -bench 'BenchmarkNetworkCycle$|BenchmarkNetworkCycleAudit$|BenchmarkNetworkCycleLowLoad$|BenchmarkNetworkCycleLowLoadFullScan$|BenchmarkNetworkCycleSharded$|BenchmarkNetworkCycleShardedBaseline$|BenchmarkNetworkCycleShardedLowLoad$|BenchmarkMatrixArbiterGrant$|BenchmarkSeparableSwitchAllocate$|BenchmarkVCAllocatorAllocate$|BenchmarkPipelineDesign$' \
    . | tee "$raw"

# Quiescence fast-forward: a drain-dominated ultra-low-load run on the
# active-set engine vs stepping every cycle (best of three, as above).
go test -run '^$' -benchmem -benchtime=3x -count=3 "$@" \
    -bench 'BenchmarkDrainTail$|BenchmarkDrainTailFullScan$' \
    . | tee -a "$raw"

# One full figure reproduction (latency-throughput curves + paper
# metrics); a single iteration is already a complete load sweep.
go test -run '^$' -benchmem -benchtime=1x "$@" \
    -bench 'BenchmarkFigure13$' \
    . | tee -a "$raw"

awk -v pr="$n" '
/^(goos|goarch|pkg|cpu):/ {
    key = $1; sub(/:$/, "", key)
    val = $0; sub(/^[a-z]+:[ \t]*/, "", val)
    gsub(/"/, "\\\"", val)
    env[key] = val
    next
}
$1 ~ /^Benchmark/ && NF >= 4 {
    name = $1; sub(/-[0-9]+$/, "", name)
    s = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, $2)
    for (i = 3; i + 1 <= NF; i += 2) {
        s = s sprintf(", \"%s\": %s", $(i+1), $i)
    }
    s = s "}"
    # Repetitions (-count) keep only the fastest run per benchmark.
    if (!(name in best) || $3 + 0 < best[name]) {
        if (!(name in best)) order_b[nb++] = name
        best[name] = $3 + 0
        bench[name] = s
    }
}
END {
    printf "{\n  \"pr\": %s,\n  \"env\": {", pr
    split("goos goarch pkg cpu", order, " ")
    sep = ""
    for (j = 1; j <= 4; j++) {
        k = order[j]
        if (k in env) {
            printf "%s\"%s\": \"%s\"", sep, k, env[k]
            sep = ", "
        }
    }
    printf "},\n  \"benchmarks\": [\n"
    for (i = 0; i < nb; i++) {
        printf "%s%s", bench[order_b[i]], (i < nb - 1 ? ",\n" : "\n")
    }
    print "  ]\n}"
}' "$raw" > "$out"

echo "wrote $out" >&2

# Guard the perf trajectory: the inner-loop benchmark must not regress
# more than 10% against the most recent prior recording (same machine
# class) — not every PR records, so walk back past gaps. CI re-checks
# the same pair of checked-in files.
prev=""
for ((m = n - 1; m >= 1; m--)); do
    if [ -f "BENCH_${m}.json" ]; then
        prev="BENCH_${m}.json"
        break
    fi
done
if [ -n "$prev" ]; then
    "$(dirname "$0")/bench_compare.sh" "$prev" "$out"
else
    echo "no prior BENCH_<n>.json to compare against; skipping regression check" >&2
fi
