#!/usr/bin/env bash
# scripts/bench_compare.sh <old.json> <new.json> [max-regression-pct]
#
# Compares the ns/op of the gated benchmarks across two BENCH_<n>.json
# files — BenchmarkNetworkCycle (the simulator's inner-loop cost) and
# BenchmarkNetworkCycleSharded (the parallel engine's window cost) —
# and fails when the newer file shows a regression beyond the threshold
# (default 10%). A gated benchmark absent from the older file is skipped
# with a note (it post-dates that recording). Both files must come
# from the same machine class to be meaningful — which holds for the
# checked-in per-PR trajectory, recorded on the CI-class box. Run by
# scripts/bench.sh after recording a new file, and by the CI bench-smoke
# job over the two most recent checked-in files.
set -euo pipefail

old="${1:?usage: scripts/bench_compare.sh <old.json> <new.json> [max-regression-pct]}"
new="${2:?usage: scripts/bench_compare.sh <old.json> <new.json> [max-regression-pct]}"
limit="${3:-10}"

python3 - "$old" "$new" "$limit" <<'EOF'
import json
import sys

old_path, new_path, limit = sys.argv[1], sys.argv[2], float(sys.argv[3])

def ns_per_op(path, name):
    with open(path) as f:
        doc = json.load(f)
    for b in doc["benchmarks"]:
        if b["name"] == name:
            return b["ns/op"]
    return None

failures = []
for name in ("BenchmarkNetworkCycle", "BenchmarkNetworkCycleSharded"):
    old_ns = ns_per_op(old_path, name)
    new_ns = ns_per_op(new_path, name)
    if new_ns is None:
        sys.exit(f"{name} missing from {new_path}")
    if old_ns is None:
        print(f"{name}: not in {old_path} (pre-dates this benchmark); skipping")
        continue
    delta = 100.0 * (new_ns - old_ns) / old_ns
    print(f"{name}: {old_ns:g} ns/op ({old_path}) -> {new_ns:g} ns/op ({new_path}): "
          f"{delta:+.1f}% (limit +{limit:g}%)")
    if delta > limit:
        failures.append(f"{name} slowed {delta:.1f}% > {limit:g}% allowed")
if failures:
    sys.exit("regression: " + "; ".join(failures))
EOF
