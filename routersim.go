// Package routersim is a complete Go implementation of Peh and Dally's
// "A Delay Model and Speculative Architecture for Pipelined Routers"
// (HPCA 2001): the technology-independent router delay model, the EQ-1
// pipeline design methodology, the speculative virtual-channel router
// microarchitecture, and the cycle-accurate flit-level mesh simulator
// used by the paper's evaluation.
//
// The package is a facade over the implementation packages:
//
//   - The delay model (Table 1 equations, pipeline packing, Figures
//     11–12) — see DesignPipeline and Table1.
//   - The network simulator (wormhole / VC / speculative-VC / unit-
//     latency routers on a k×k mesh with credit flow control) — see
//     Simulate and Sweep.
//   - The paper's experiments (Figures 13–18) — see Reproduce.
//
// Quick start:
//
//	pipe, _ := routersim.DesignPipeline(routersim.SpeculativeVCFlow, routersim.PaperDelayParams())
//	fmt.Print(pipe)                      // 3-stage speculative pipeline
//
//	cfg := routersim.DefaultSimConfig(routersim.SpecVCRouter)
//	cfg.LoadFraction = 0.4               // 40% of network capacity
//	res, _ := routersim.Simulate(cfg)
//	fmt.Println(res.Latency.MeanLatency) // ≈ 35 cycles
package routersim

import (
	"fmt"
	"io"

	"routersim/internal/checkpoint"
	"routersim/internal/core"
	"routersim/internal/harness"
	"routersim/internal/network"
	"routersim/internal/router"
	"routersim/internal/sim"
	"routersim/internal/topology"
	"routersim/internal/traffic"
)

// ---------------------------------------------------------------------
// Delay model
// ---------------------------------------------------------------------

// FlowControl selects the flow-control method for the delay model.
type FlowControl = core.FlowControl

// Flow-control methods understood by the delay model.
const (
	WormholeFlow       = core.Wormhole
	VirtualChannelFlow = core.VirtualChannel
	SpeculativeVCFlow  = core.SpeculativeVC
)

// RoutingRange is the range of the routing function (R→v, R→p, R→pv),
// which sets the virtual-channel allocator's complexity.
type RoutingRange = core.RoutingRange

// Routing-function ranges (Figure 8 of the paper).
const (
	RangeVC  = core.RangeVC
	RangePC  = core.RangePC
	RangeAll = core.RangeAll
)

// DelayParams are the delay-model parameters: physical channels P,
// virtual channels per channel V, channel width W (bits), clock cycle in
// τ4 units, and the routing range.
type DelayParams = core.Params

// PaperDelayParams returns the evaluation point of the paper's Table 1:
// p=5, w=32, v=2, clk=20 τ4, R→pv.
func PaperDelayParams() DelayParams { return core.PaperParams() }

// Pipeline is a pipeline design prescribed by the model (EQ 1).
type Pipeline = core.Pipeline

// DesignPipeline applies the general router model: it packs the atomic
// modules of the chosen flow control into pipeline stages that fit the
// clock cycle, returning the per-hop router pipeline.
func DesignPipeline(fc FlowControl, p DelayParams) (Pipeline, error) {
	return core.DesignPipeline(fc, p, core.DefaultSpecOptions())
}

// Table1Row is one row of the paper's Table 1 with our computed value
// and the paper's reference values.
type Table1Row = core.Table1Row

// Table1 evaluates every delay equation at the paper's parameter point.
func Table1() []Table1Row { return core.Table1() }

// ---------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------

// RouterKind selects the simulated router microarchitecture.
type RouterKind = router.Kind

// Simulated router microarchitectures.
const (
	WormholeRouter      = router.Wormhole
	VCRouter            = router.VirtualChannel
	SpecVCRouter        = router.SpeculativeVC
	SingleCycleWormhole = router.SingleCycleWormhole
	SingleCycleVC       = router.SingleCycleVC
)

// TrafficPattern chooses packet destinations.
type TrafficPattern = traffic.Pattern

// UniformTraffic is the paper's workload: uniformly distributed random
// destinations.
func UniformTraffic() TrafficPattern { return traffic.Uniform{} }

// TrafficByName resolves a traffic pattern spec ("uniform", "transpose",
// "bit-reversal", "bit-complement", "hotspot[:NODE:FRAC]") for a
// network of the given node count.
func TrafficByName(spec string, nodes int) (TrafficPattern, error) { return traffic.New(spec, nodes) }

// Topology is a network topology: node graph, deterministic routing,
// port metadata, and deadlock-avoidance VC-class policy.
type Topology = topology.Topology

// TopologyByName resolves a topology spec ("mesh", "torus", "ring",
// "hypercube", optionally parameterized: "mesh:k=8", "torus:k=4,n=3",
// "hypercube:64", "ring:16"). Specs that don't state their own size
// take k as the radix (mesh/torus) or node count (ring/hypercube).
func TopologyByName(spec string, k int) (Topology, error) { return topology.New(spec, k) }

// ParseRouterKind resolves a router kind from its name.
func ParseRouterKind(s string) (RouterKind, bool) { return router.ParseKind(s) }

// ---------------------------------------------------------------------
// Experiment harness
// ---------------------------------------------------------------------

// Scenario is one fully-specified simulation job of a scenario matrix.
type Scenario = harness.Scenario

// ScenarioMatrix is a declarative experiment matrix: the cross product
// of router kinds, topologies, radices, traffic patterns, VC counts,
// buffer depths, packet sizes, credit delays, and offered loads.
type ScenarioMatrix = harness.Matrix

// MatrixOptions parameterize one matrix run: worker pool size, base
// seed (each job derives an independent seed), measurement protocol,
// and progress/streaming callbacks.
type MatrixOptions = harness.Options

// MatrixProtocol is the per-job measurement protocol of a matrix run.
type MatrixProtocol = harness.Protocol

// MatrixResult is the outcome of one scenario job.
type MatrixResult = harness.JobResult

// ScenarioDelayModel is the paper's delay model evaluated at a
// scenario's topology port count and VC count (see Scenario.DelayModel).
type ScenarioDelayModel = harness.DelayModel

// RunMatrix expands the matrix and runs every job on a bounded,
// deterministic worker pool. Results come back in job-index order; the
// same seed produces identical results regardless of the worker count.
func RunMatrix(m ScenarioMatrix, opts MatrixOptions) ([]MatrixResult, error) {
	return harness.Run(m, opts)
}

// RunScenario runs a single scenario through the matrix engine and
// returns its one result.
func RunScenario(sc Scenario, opts MatrixOptions) (MatrixResult, error) {
	return harness.RunScenario(sc, opts)
}

// RecordScenario runs a single scenario with a workload recorder
// attached and writes the captured packet trace to path (".jsonl" or
// ".json" extensions select the JSONL encoding, anything else the
// binary one). Replaying the file — a scenario whose Source is
// "trace:file=PATH" — reproduces the recorded packet workload event
// for event, independent of engine variant or worker count.
func RecordScenario(sc Scenario, opts MatrixOptions, path string) (MatrixResult, error) {
	return harness.RunScenarioRecorded(sc, opts, path)
}

// CheckpointStore is an on-disk, content-addressed store of completed
// matrix-job results: entries are keyed by engine version, canonical
// scenario, derived seed, and measurement protocol; writes are atomic
// (temp file + rename) and checksummed; corrupt entries are
// quarantined, never trusted and never fatal.
type CheckpointStore = checkpoint.Store

// MatrixJobError is the structured record of a recovered job panic:
// scenario label, panic message, normalized stack, attempt count.
type MatrixJobError = harness.JobError

// OpenCheckpointStore opens (creating if needed) a checkpoint
// directory for resumable matrix runs.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return checkpoint.Open(dir) }

// RunMatrixResumable is RunMatrix with crash-safe persistence: every
// successful job is checkpointed as it finishes, and a rerun against
// the same store loads completed jobs and runs only the remainder. An
// interrupted-then-resumed sweep emits byte-identical JSON and CSV to
// an uninterrupted one, at any worker count. Failed jobs are never
// persisted, so a resume retries them.
func RunMatrixResumable(m ScenarioMatrix, opts MatrixOptions, store *CheckpointStore) ([]MatrixResult, error) {
	return harness.RunResumable(m, opts, store)
}

// WriteMatrixJSON serializes matrix results as one JSON array with a
// byte-deterministic payload.
func WriteMatrixJSON(w io.Writer, results []MatrixResult) error {
	return harness.WriteJSON(w, results)
}

// WriteMatrixCSV serializes matrix results as CSV with a
// byte-deterministic payload.
func WriteMatrixCSV(w io.Writer, results []MatrixResult) error {
	return harness.WriteCSV(w, results)
}

// MatrixProgressPrinter returns a Progress callback printing one line
// per completed job (with per-job wall time) to w.
func MatrixProgressPrinter(w io.Writer) func(done, total int, r MatrixResult) {
	return harness.ProgressPrinter(w)
}

// SaturationSearch parameterizes the adaptive saturation search:
// bracket, load resolution, latency cap, and probe budget.
type SaturationSearch = harness.SearchOptions

// SaturationResult is the outcome of one adaptive saturation search:
// the knee load, its delivered throughput, and the probes that found it.
type SaturationResult = harness.SaturationResult

// FindSaturation locates a scenario's saturation point by adaptive
// bisection on offered load — the replacement for sweeping a fixed load
// grid past the knee. Each probe runs one simulation at the bracket
// midpoint under the run's saturation predicate (censored sample,
// throughput shortfall, or the latency cap); the search needs
// ~log2(1/step) simulations where a grid needs 1/step.
func FindSaturation(sc Scenario, opts MatrixOptions, so SaturationSearch) (SaturationResult, error) {
	return harness.FindSaturation(sc, opts, so)
}

// FindSaturations runs the adaptive saturation search for every
// scenario of the matrix (the Loads axis is ignored) on a bounded,
// deterministic worker pool.
func FindSaturations(m ScenarioMatrix, opts MatrixOptions, so SaturationSearch) ([]SaturationResult, error) {
	return harness.FindSaturations(m, opts, so)
}

// WriteSaturationCSV serializes saturation-search results as CSV with a
// byte-deterministic payload.
func WriteSaturationCSV(w io.Writer, results []SaturationResult) error {
	return harness.WriteSaturationCSV(w, results)
}

// WriteSaturationJSON serializes saturation-search results as one JSON
// array with a byte-deterministic payload.
func WriteSaturationJSON(w io.Writer, results []SaturationResult) error {
	return harness.WriteSaturationJSON(w, results)
}

// SimConfig parameterizes one network simulation.
type SimConfig struct {
	// Router microarchitecture and resources.
	Kind     RouterKind
	VCs      int // virtual channels per physical channel
	BufPerVC int // flit buffers per VC (per port for wormhole)

	// Network parameters.
	Topology     string  // topology spec (empty = "mesh"; see TopologyByName)
	MeshRadix    int     // radix k for mesh/torus, node count for ring/hypercube (paper: 8)
	PacketSize   int     // flits per packet (paper: 5)
	CreditDelay  int     // credit propagation delay in cycles (paper: 1)
	LoadFraction float64 // offered load as a fraction of capacity

	// Traffic (nil = uniform random, the paper's workload).
	Pattern TrafficPattern

	// Routing is the routing-policy spec: empty or "dor" for the paper's
	// deterministic dimension-order routing, "adaptive:minimal" for
	// minimal-adaptive routing over escape VCs.
	Routing string

	// Faults is the deterministic fault-injection spec: ';'-separated
	// events such as "link:3-7@cycle=1000", "router:12@cycle=0", or
	// "rand:links=2,seed=9@cycle=500". Empty means no faults.
	Faults string

	// StepWorkers selects the deterministic parallel network stepper
	// (0 or 1 = serial engine; > 1 = that many workers). Results are
	// byte-identical for every value; see PERF.md.
	StepWorkers int

	// Shards selects the lookahead-sharded engine (0 or 1 = single
	// range; > 1 = that many shards stepping windows concurrently
	// between boundary barriers). Results are byte-identical for every
	// value, and Shards composes with StepWorkers; see PERF.md.
	Shards int

	// FullScan selects the legacy cycle engine that visits every router
	// and source each cycle instead of the active-set scheduler.
	// Results are byte-identical; it exists as the reference engine for
	// identity tests and as the benchmark baseline (see PERF.md).
	FullScan bool

	// Measurement protocol.
	WarmupCycles   int64 // paper: 10,000
	MeasurePackets int   // paper: 100,000
	Seed           uint64

	// Audit, when > 0, enables the engine's invariant auditor at that
	// cycle interval: flit conservation, per-wire credit conservation,
	// and buffer-occupancy bounds are checked across the whole network
	// every Audit cycles, on every engine variant. A violation panics
	// with a diagnostic snapshot. Results are byte-identical with
	// auditing on or off.
	Audit int

	// StallCycles tunes the progress watchdog: the run aborts with a
	// diagnostic error when no packet is delivered for this many cycles
	// while packets are outstanding. 0 uses a diameter-scaled default;
	// negative disables the watchdog.
	StallCycles int64

	// ExactLatency stores every latency sample for exact percentiles
	// (the paper-figure reproduction mode); the default streams samples
	// into a log-binned histogram with O(1) memory (exact mean/max,
	// ≤ 1.6% percentile error).
	ExactLatency bool
	// CITarget, when > 0, ends the tagged sample early once the
	// relative 95% batch-means CI half-width of mean latency reaches it
	// (e.g. 0.02 for ±2%).
	CITarget float64
}

// DefaultSimConfig returns the paper's configuration for a router kind
// (Figure 13 buffering: 8 flit buffers per input port).
func DefaultSimConfig(kind RouterKind) SimConfig {
	rc := router.DefaultConfig(kind)
	return SimConfig{
		Kind:           kind,
		VCs:            rc.VCs,
		BufPerVC:       rc.BufPerVC,
		MeshRadix:      8,
		PacketSize:     5,
		CreditDelay:    1,
		LoadFraction:   0.2,
		WarmupCycles:   10000,
		MeasurePackets: 100000,
		Seed:           1,
	}
}

// SimResult is the outcome of one simulation run.
type SimResult = sim.Result

// LoadPoint is one point of a latency-throughput curve.
type LoadPoint = sim.LoadPoint

func (c SimConfig) lower() (sim.Config, error) {
	rc := router.DefaultConfig(c.Kind)
	if c.VCs > 0 {
		rc.VCs = c.VCs
	}
	if c.BufPerVC > 0 {
		rc.BufPerVC = c.BufPerVC
	}
	k := c.MeshRadix
	if k == 0 {
		k = 8
	}
	size := c.PacketSize
	if size == 0 {
		size = 5
	}
	if c.LoadFraction < 0 {
		return sim.Config{}, fmt.Errorf("routersim: negative load fraction")
	}
	topo, err := topology.New(c.Topology, k)
	if err != nil {
		return sim.Config{}, err
	}
	ncfg := network.Config{
		K:           k,
		Topo:        topo,
		Router:      rc,
		PacketSize:  size,
		Pattern:     c.Pattern,
		CreditDelay: c.CreditDelay,
		StepWorkers: c.StepWorkers,
		Shards:      c.Shards,
		FullScan:    c.FullScan,
		Routing:     c.Routing,
		Faults:      c.Faults,
		Seed:        c.Seed,
		Audit:       c.Audit,
	}
	ncfg.InjectionRate = sim.RateForLoad(c.LoadFraction, ncfg)
	return sim.Config{
		Net:            ncfg,
		WarmupCycles:   c.WarmupCycles,
		MeasurePackets: c.MeasurePackets,
		StallCycles:    c.StallCycles,
		ExactLatency:   c.ExactLatency,
		CITarget:       c.CITarget,
	}, nil
}

// Simulate runs one simulation with the paper's measurement protocol:
// warm-up, a tagged packet sample, and a drain phase; latency is
// measured from packet creation to last-flit ejection.
func Simulate(c SimConfig) (SimResult, error) {
	low, err := c.lower()
	if err != nil {
		return SimResult{}, err
	}
	return sim.Run(low)
}

// SimulateWithTurnaroundProbe runs Simulate with buffer-turnaround
// probes installed on every router; the result's MinTurnaround reports
// the architectural credit-loop length (Figure 16): 4 cycles for
// wormhole and speculative VC routers, 5 for the non-speculative VC
// router, 2 for single-cycle routers.
func SimulateWithTurnaroundProbe(c SimConfig) (SimResult, error) {
	low, err := c.lower()
	if err != nil {
		return SimResult{}, err
	}
	low.Probe = true
	return sim.Run(low)
}

// Sweep runs one simulation per offered load (fractions of capacity) in
// parallel, producing a latency-throughput curve.
func Sweep(c SimConfig, loads []float64) ([]LoadPoint, error) {
	low, err := c.lower()
	if err != nil {
		return nil, err
	}
	return sim.SweepLoads(low, loads)
}

// SaturationLoad estimates the saturation point of a swept curve using
// the paper's 140-cycle plot clip.
func SaturationLoad(pts []LoadPoint) float64 { return sim.SaturationLoad(pts, 140) }
