package routersim_test

import (
	"math"
	"strings"
	"testing"

	"routersim"
)

func TestFacadeTable1(t *testing.T) {
	rows := routersim.Table1()
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Model-r.Paper) > 0.1 {
			t.Errorf("%s: model %.2f vs paper %.1f", r.Module, r.Model, r.Paper)
		}
	}
}

func TestFacadeDesignPipeline(t *testing.T) {
	params := routersim.PaperDelayParams()
	params.Range = routersim.RangeVC
	cases := []struct {
		fc   routersim.FlowControl
		want int
	}{
		{routersim.WormholeFlow, 3},
		{routersim.VirtualChannelFlow, 4},
		{routersim.SpeculativeVCFlow, 3},
	}
	for _, c := range cases {
		pipe, err := routersim.DesignPipeline(c.fc, params)
		if err != nil {
			t.Fatal(err)
		}
		if pipe.Depth() != c.want {
			t.Errorf("%v: %d stages, want %d", c.fc, pipe.Depth(), c.want)
		}
	}
	if _, err := routersim.DesignPipeline(routersim.WormholeFlow, routersim.DelayParams{}); err == nil {
		t.Error("zero params should fail validation")
	}
}

func TestFacadeSimulate(t *testing.T) {
	cfg := routersim.DefaultSimConfig(routersim.SpecVCRouter)
	cfg.LoadFraction = 0.2
	cfg.WarmupCycles = 1500
	cfg.MeasurePackets = 800
	res, err := routersim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated || res.Latency.Packets != 800 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Latency.MeanLatency < 25 || res.Latency.MeanLatency > 40 {
		t.Errorf("latency %.1f out of plausible range", res.Latency.MeanLatency)
	}

	cfg.LoadFraction = -1
	if _, err := routersim.Simulate(cfg); err == nil {
		t.Error("negative load should error")
	}
}

func TestFacadeSweepAndSaturation(t *testing.T) {
	cfg := routersim.DefaultSimConfig(routersim.WormholeRouter)
	cfg.WarmupCycles = 1500
	cfg.MeasurePackets = 800
	pts, err := routersim.Sweep(cfg, []float64{0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if sat := routersim.SaturationLoad(pts); sat != 0.3 {
		t.Errorf("saturation %.2f, want 0.3 (both points below the knee)", sat)
	}
}

func TestFacadeReproduceUnknown(t *testing.T) {
	if _, err := routersim.Reproduce("figure99", routersim.QuickProtocol()); err == nil {
		t.Error("unknown figure should error")
	}
	if _, err := routersim.Reproduce("figure16", routersim.QuickProtocol()); err == nil {
		t.Error("figure16 is a probe, not a sweep; should error")
	}
}

func TestFacadeReproduceFigure18(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	pr := routersim.QuickProtocol()
	pr.Warmup = 2000
	pr.Packets = 1200
	pr.Loads = []float64{0.3, 0.45, 0.55, 0.65}
	fig, err := routersim.Reproduce("figure18", pr)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := routersim.WriteFigure(&buf, fig); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "credit propagation") {
		t.Error("rendering missing curve names")
	}
	var csv strings.Builder
	if err := routersim.WriteFigureCSV(&csv, fig); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(csv.String()), "\n")) != 1+2*len(pr.Loads) {
		t.Errorf("csv rows wrong:\n%s", csv.String())
	}
}

func TestFacadeTurnaroundProbe(t *testing.T) {
	cfg := routersim.DefaultSimConfig(routersim.VCRouter)
	cfg.LoadFraction = 0.9
	cfg.WarmupCycles = 500
	cfg.MeasurePackets = 500
	res, err := routersim.SimulateWithTurnaroundProbe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MinTurnaround != 5 {
		t.Errorf("VC router turnaround %d, want 5", res.MinTurnaround)
	}
}

func TestUniformTrafficPattern(t *testing.T) {
	if routersim.UniformTraffic().Name() != "uniform" {
		t.Error("uniform pattern misnamed")
	}
}
