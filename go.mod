module routersim

go 1.24
